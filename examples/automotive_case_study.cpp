// Automotive case study (Sec. V-C) at a single operating point: runs all
// five evaluated systems at one (VM count, utilization) and prints success
// ratio, goodput and response-time percentiles of the critical tasks.
//
//   $ ./build/examples/automotive_case_study [num_vms] [utilization%]
//   e.g. ./build/examples/automotive_case_study 8 85
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "system/experiment.hpp"

using namespace ioguard;
using namespace ioguard::sys;

int main(int argc, char** argv) {
  const std::size_t num_vms =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
  const double util = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.85;

  std::cout << "Automotive case study: " << num_vms << " VMs, "
            << fmt_double(util * 100, 0) << "% target utilization\n\n";

  TextTable table({"system", "success", "goodput (Mbit/s)", "resp p50 (us)",
                   "resp p99 (us)", "miss rate"});
  for (const auto& system : figure7_systems()) {
    std::size_t successes = 0;
    double goodput = 0.0;
    SampleSet responses;
    std::uint64_t misses = 0, counted = 0;
    const std::size_t trials = 6;
    for (std::size_t t = 0; t < trials; ++t) {
      TrialConfig tc;
      tc.kind = system.kind;
      tc.workload.num_vms = num_vms;
      tc.workload.target_utilization = util;
      tc.workload.preload_fraction = system.preload_fraction;
      tc.min_jobs_per_task = 20;
      tc.trial_seed = 100 + t;
      tc.collect_response_times = true;
      auto r = run_trial(tc);
      if (r.success()) ++successes;
      goodput += r.goodput_bytes_per_s * 8.0 / 1e6;
      misses += r.critical_misses;
      counted += r.jobs_counted;
      for (std::size_t i = 0; i < r.response_slots.count(); ++i)
        responses.add(r.response_slots.percentile(
            100.0 * static_cast<double>(i) /
            std::max<std::size_t>(1, r.response_slots.count() - 1)));
    }
    table.add(system.label,
              fmt_double(static_cast<double>(successes) / trials, 2),
              fmt_double(goodput / trials, 1),
              responses.empty() ? std::string("-")
                                : fmt_double(responses.percentile(50) * 10, 0),
              responses.empty() ? std::string("-")
                                : fmt_double(responses.percentile(99) * 10, 0),
              fmt_double(counted ? static_cast<double>(misses) / counted : 0.0,
                         4));
  }
  table.render(std::cout);
  std::cout << "\n(1 slot = 10 us; response times cover safety+function "
               "tasks only)\n";
  return 0;
}
