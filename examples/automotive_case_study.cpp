// Automotive case study (Sec. V-C) at a single operating point: runs all
// five evaluated systems at one (VM count, utilization) and prints success
// ratio, goodput and response-time percentiles of the critical tasks.
//
//   $ ./build/examples/automotive_case_study [num_vms] [utilization%]
//   e.g. ./build/examples/automotive_case_study 8 85 --faults=device-stall
#include <cstdlib>
#include <iostream>

#include "common/cli.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "system/experiment.hpp"

using namespace ioguard;
using namespace ioguard::sys;

namespace {

CliSpec make_spec() {
  CliSpec spec("run all five evaluated systems at one operating point");
  spec.positional("num_vms", "active VMs (default 8)")
      .positional("utilization%", "target utilization in percent (default 85)")
      .flag("faults", "none", "fault plan applied to every trial");
  return spec;
}

Status run(const CliArgs& args) {
  const auto& pos = args.positional();
  const std::size_t num_vms =
      !pos.empty() ? static_cast<std::size_t>(std::atoi(pos[0].c_str())) : 8;
  const double util =
      pos.size() > 1 ? std::atof(pos[1].c_str()) / 100.0 : 0.85;
  IOGUARD_ASSIGN_OR_RETURN(const faults::FaultPlan plan,
                           faults::FaultPlan::parse(args.get("faults")));
  if (num_vms == 0 || util <= 0.0)
    return InvalidArgumentError("num_vms and utilization%% must be positive");

  std::cout << "Automotive case study: " << num_vms << " VMs, "
            << fmt_double(util * 100, 0) << "% target utilization\n\n";

  TextTable table({"system", "success", "goodput (Mbit/s)", "resp p50 (us)",
                   "resp p99 (us)", "miss rate"});
  for (const auto& system : figure7_systems()) {
    std::size_t successes = 0;
    double goodput = 0.0;
    SampleSet responses;
    std::uint64_t misses = 0, counted = 0;
    const std::size_t trials = 6;
    for (std::size_t t = 0; t < trials; ++t) {
      TrialConfig tc;
      tc.kind = system.kind;
      tc.workload.num_vms = num_vms;
      tc.workload.target_utilization = util;
      tc.workload.preload_fraction = system.preload_fraction;
      tc.min_jobs_per_task = 20;
      tc.trial_seed = 100 + t;
      tc.faults = plan;
      tc.collect_response_times = true;
      auto r = run_trial(tc);
      if (r.success()) ++successes;
      goodput += r.goodput_bytes_per_s * 8.0 / 1e6;
      misses += r.critical_misses;
      counted += r.jobs_counted;
      for (std::size_t i = 0; i < r.response_slots.count(); ++i)
        responses.add(r.response_slots.percentile(
            100.0 * static_cast<double>(i) /
            std::max<std::size_t>(1, r.response_slots.count() - 1)));
    }
    table.add(system.label,
              fmt_double(static_cast<double>(successes) / trials, 2),
              fmt_double(goodput / trials, 1),
              responses.empty() ? std::string("-")
                                : fmt_double(responses.percentile(50) * 10, 0),
              responses.empty() ? std::string("-")
                                : fmt_double(responses.percentile(99) * 10, 0),
              fmt_double(counted ? static_cast<double>(misses) / counted : 0.0,
                         4));
  }
  table.render(std::cout);
  std::cout << "\n(1 slot = 10 us; response times cover safety+function "
               "tasks only)\n";
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  const CliSpec spec = make_spec();
  const auto args = spec.parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "error: " << args.status() << "\n\n"
              << spec.help_text(argc > 0 ? argv[0] : "automotive_case_study");
    return exit_code(args.status());
  }
  if (args->help_requested()) {
    std::cout << spec.help_text(args->program());
    return 0;
  }
  const Status status = run(*args);
  if (!status.ok()) std::cerr << "error: " << status << "\n";
  return exit_code(status);
}
