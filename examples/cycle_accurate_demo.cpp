// Cycle-accurate co-simulation demo: the wormhole mesh carries every I/O
// request/response packet for the baselines while I/O-GUARD uses its
// dedicated links -- at cycle granularity, with optional background memory
// traffic loading the interconnect.
//
//   $ ./build/examples/cycle_accurate_demo [--slots=10000] [--util=0.6]
//         [--vms=8] [--bg=0.002]
#include <iostream>

#include "common/cli.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "system/cosim.hpp"

using namespace ioguard;
using namespace ioguard::sys;

namespace {

CliSpec make_spec() {
  CliSpec spec("cycle-accurate co-simulation of all four architectures");
  spec.flag_int("slots", 4000, "simulated slots")
      .flag_double("util", 0.6, "target utilization")
      .flag_int("vms", 8, "active VMs")
      .flag_double("bg", 0.002, "background traffic in pkt/node/cycle");
  return spec;
}

Status run(const CliArgs& args) {
  const Slot slots = static_cast<Slot>(args.get_int("slots"));
  const double util = args.get_double("util");
  const auto vms = static_cast<std::size_t>(args.get_int("vms"));
  const double bg = args.get_double("bg");
  if (slots == 0) return InvalidArgumentError("--slots must be > 0");

  std::cout << "Cycle-accurate co-simulation: " << slots << " slots ("
            << slots / 100 << " ms), " << vms << " VMs, "
            << fmt_double(util * 100, 0) << "% utilization, background "
            << fmt_double(bg, 4) << " pkt/node/cycle\n\n";

  TextTable table({"system", "counted", "on time", "crit misses", "dropped",
                   "req latency p50/p99 (cy)", "resp p99 (us)",
                   "noc packets"});
  for (SystemKind kind : {SystemKind::kLegacy, SystemKind::kRtXen,
                          SystemKind::kBlueVisor, SystemKind::kIoGuard}) {
    CosimConfig cfg;
    cfg.kind = kind;
    cfg.workload.num_vms = vms;
    cfg.workload.target_utilization = util;
    cfg.workload.preload_fraction = 0.7;
    cfg.horizon_slots = slots;
    cfg.background_rate = bg;
    auto r = run_cosim(cfg);

    std::string req = "-";
    if (!r.request_latency_cycles.empty())
      req = fmt_double(r.request_latency_cycles.percentile(50), 0) + " / " +
            fmt_double(r.request_latency_cycles.percentile(99), 0);
    std::string resp = "-";
    if (!r.response_slots.empty())
      resp = fmt_double(r.response_slots.percentile(99) * 10, 0);
    table.add(std::string(to_string(kind)), r.jobs_counted, r.jobs_on_time,
              r.critical_misses, r.dropped, req, resp,
              r.noc_packets_delivered);
  }
  table.render(std::cout);
  std::cout << "\n(I/O-GUARD shows no request-latency column: its dedicated "
               "processor-hypervisor links bypass the routers entirely)\n";
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  const CliSpec spec = make_spec();
  const auto args = spec.parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "error: " << args.status() << "\n\n"
              << spec.help_text(argc > 0 ? argv[0] : "cycle_accurate_demo");
    return exit_code(args.status());
  }
  if (args->help_requested()) {
    std::cout << spec.help_text(args->program());
    return 0;
  }
  const Status status = run(*args);
  if (!status.ok()) std::cerr << "error: " << status << "\n";
  return exit_code(status);
}
