// Cycle-accurate co-simulation demo: the wormhole mesh carries every I/O
// request/response packet for the baselines while I/O-GUARD uses its
// dedicated links -- at cycle granularity, with optional background memory
// traffic loading the interconnect.
//
//   $ ./build/examples/cycle_accurate_demo [--slots=10000] [--util=0.6]
//         [--vms=8] [--bg=0.002]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "system/cosim.hpp"

using namespace ioguard;
using namespace ioguard::sys;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Slot slots = static_cast<Slot>(args.get_int("slots", 4000));
  const double util = args.get_double("util", 0.6);
  const auto vms = static_cast<std::size_t>(args.get_int("vms", 8));
  const double bg = args.get_double("bg", 0.002);

  std::cout << "Cycle-accurate co-simulation: " << slots << " slots ("
            << slots / 100 << " ms), " << vms << " VMs, "
            << fmt_double(util * 100, 0) << "% utilization, background "
            << fmt_double(bg, 4) << " pkt/node/cycle\n\n";

  TextTable table({"system", "counted", "on time", "crit misses", "dropped",
                   "req latency p50/p99 (cy)", "resp p99 (us)",
                   "noc packets"});
  for (SystemKind kind : {SystemKind::kLegacy, SystemKind::kRtXen,
                          SystemKind::kBlueVisor, SystemKind::kIoGuard}) {
    CosimConfig cfg;
    cfg.kind = kind;
    cfg.workload.num_vms = vms;
    cfg.workload.target_utilization = util;
    cfg.workload.preload_fraction = 0.7;
    cfg.horizon_slots = slots;
    cfg.background_rate = bg;
    auto r = run_cosim(cfg);

    std::string req = "-";
    if (!r.request_latency_cycles.empty())
      req = fmt_double(r.request_latency_cycles.percentile(50), 0) + " / " +
            fmt_double(r.request_latency_cycles.percentile(99), 0);
    std::string resp = "-";
    if (!r.response_slots.empty())
      resp = fmt_double(r.response_slots.percentile(99) * 10, 0);
    table.add(std::string(to_string(kind)), r.jobs_counted, r.jobs_on_time,
              r.critical_misses, r.dropped, req, resp,
              r.noc_packets_delivered);
  }
  table.render(std::cout);
  std::cout << "\n(I/O-GUARD shows no request-latency column: its dedicated "
               "processor-hypervisor links bypass the routers entirely)\n";
  return 0;
}
