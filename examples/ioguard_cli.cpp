// Command-line trial driver: run any of the four architectures on the
// automotive case-study workload with one command.
//
//   $ ./build/examples/ioguard_cli --system=ioguard --vms=8 --util=0.9
//         --preload=0.7 --trials=10 --seed=1 --jobs=4
//         [--export-tasks=tasks.csv]
//
// Systems: legacy | rtxen | bv | ioguard.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/artifact_builder.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "system/experiment.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/prometheus.hpp"
#include "workload/trace_io.hpp"

using namespace ioguard;
using namespace ioguard::sys;

namespace {

SystemKind parse_system(const std::string& name) {
  if (name == "legacy") return SystemKind::kLegacy;
  if (name == "rtxen") return SystemKind::kRtXen;
  if (name == "bv") return SystemKind::kBlueVisor;
  if (name == "ioguard") return SystemKind::kIoGuard;
  std::cerr << "unknown system '" << name
            << "' (expected legacy|rtxen|bv|ioguard); using ioguard\n";
  return SystemKind::kIoGuard;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "usage: " << args.program() << " [flags]\n"
        << "  --system=legacy|rtxen|bv|ioguard   architecture (ioguard)\n"
        << "  --vms=N                            active VMs (8)\n"
        << "  --util=U                           target utilization (0.9)\n"
        << "  --preload=X                        P-channel fraction (0.7)\n"
        << "  --trials=N                         repetitions (10)\n"
        << "  --min-jobs=N                       jobs per task (25)\n"
        << "  --seed=N                           base seed (42)\n"
        << "  --jobs=N                           worker threads; 0 = auto\n"
        << "                                     (IOGUARD_JOBS env or cores).\n"
        << "                                     Results are identical for\n"
        << "                                     any value (1 = sequential)\n"
        << "  --export-tasks=FILE                dump the task set CSV\n"
        << "  --telemetry-out=DIR                write trace.perfetto.json\n"
        << "                                     (trial 0), metrics.prom\n"
        << "                                     (all trials) + summary.json\n"
        << "  --verify                           statically verify the\n"
        << "                                     scheduling artifacts first;\n"
        << "                                     refuse to run on errors\n";
    return 0;
  }

  const SystemKind kind = parse_system(args.get("system", "ioguard"));
  const auto vms = static_cast<std::size_t>(args.get_int("vms", 8));
  const double util = args.get_double("util", 0.9);
  const double preload =
      kind == SystemKind::kIoGuard ? args.get_double("preload", 0.7) : 0.0;
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 10));
  const auto min_jobs = static_cast<std::size_t>(args.get_int("min-jobs", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 0));

  // Trial t's seed, shared with the batch experiment drivers: depends only
  // on (base seed, sweep point, t), never on jobs or execution order.
  const auto seed_of = [&](std::size_t t) {
    return mix_seed(seed, sweep_point_key(vms, util), t);
  };

  ParallelRunner runner(jobs);
  std::cout << "system=" << to_string(kind) << " vms=" << vms
            << " util=" << fmt_double(util, 2) << " preload="
            << fmt_double(preload, 2) << " trials=" << trials
            << " jobs=" << runner.jobs() << "\n\n";

  if (args.has("verify")) {
    // Static preflight (ioguard-verify): refuse to burn trial time on
    // artifacts the admission theorems cannot vouch for.
    workload::CaseStudyConfig vcfg;
    vcfg.num_vms = vms;
    vcfg.target_utilization = util;
    vcfg.preload_fraction = preload;
    vcfg.seed = seed_of(0) * 1000003ULL + 17;  // trial-0 workload seed
    const auto report = analysis::verify_case_study(vcfg, trials, min_jobs);
    if (!report.ok()) {
      report.render_text(std::cerr);
      std::cerr << "artifact verification failed; aborting\n";
      return 1;
    }
    std::cout << "artifacts verified (" << report.diagnostics().size()
              << " informational finding(s))\n\n";
  }

  // Telemetry sinks (only populated with --telemetry-out): the registry
  // aggregates counters across all trials; the event trace and the summary
  // cover trial 0.
  const bool telemetry_on = args.has("telemetry-out");
  const std::filesystem::path telemetry_dir =
      args.get("telemetry-out", "telemetry");
  if (telemetry_on) {
    // Preflight the output directory so a bad path fails before the trials
    // run, not after.
    std::error_code ec;
    std::filesystem::create_directories(telemetry_dir, ec);
    if (ec) {
      std::cerr << "error: --telemetry-out=" << telemetry_dir.string()
                << ": " << ec.message() << "\n";
      return 2;
    }
  }
  core::EventTrace events(1 << 20);
  telemetry::MetricsRegistry metrics;

  // Fan the trials out. The event trace and the per-trial summary cover
  // trial 0 only (one trace buffer, one attached trial); the registry is
  // merged across all trials in index order.
  const auto make_config = [&](std::size_t t) {
    TrialConfig tc;
    tc.kind = kind;
    tc.workload.num_vms = vms;
    tc.workload.target_utilization = util;
    tc.workload.preload_fraction = preload;
    tc.min_jobs_per_task = min_jobs;
    tc.trial_seed = seed_of(t);
    if (telemetry_on && t == 0) {
      tc.trace = &events;
      tc.collect_response_times = true;
      tc.collect_stage_latencies = true;
    }
    return tc;
  };

  BatchTiming timing;
  const auto results = runner.run_trials(
      trials, make_config, telemetry_on ? &metrics : nullptr, &timing);

  TextTable table({"trial", "success", "counted", "crit misses", "dropped",
                   "goodput Mbit/s", "busy", "admitted"});
  std::size_t successes = 0;
  double goodput = 0.0;
  for (std::size_t t = 0; t < results.size(); ++t) {
    const TrialResult& r = results[t];
    if (r.success()) ++successes;
    goodput += r.goodput_bytes_per_s * 8.0 / 1e6;
    table.add(t, std::string(r.success() ? "yes" : "NO"), r.jobs_counted,
              r.critical_misses, r.dropped,
              fmt_double(r.goodput_bytes_per_s * 8.0 / 1e6, 1),
              fmt_double(r.device_busy_frac, 3),
              std::string(r.admitted ? "yes" : "no"));
  }

  if (args.has("export-tasks") && trials > 0) {
    auto wcfg = make_config(0).workload;
    if (kind != SystemKind::kIoGuard) wcfg.preload_fraction = 0.0;
    wcfg.seed = seed_of(0) * 1000003ULL + 17;
    const auto wl = workload::build_case_study(wcfg);
    std::ofstream out(args.get("export-tasks", "tasks.csv"));
    workload::write_taskset_csv(out, wl.tasks);
    std::cout << "task set written to "
              << args.get("export-tasks", "tasks.csv") << "\n";
  }
  table.render(std::cout);
  std::cout << "\nsuccess ratio "
            << fmt_double(static_cast<double>(successes) / trials, 2)
            << ", mean goodput " << fmt_double(goodput / trials, 1)
            << " Mbit/s\n"
            << fmt_double(timing.trials_per_second(), 1)
            << " trials/s on " << timing.jobs << " worker(s), speedup "
            << fmt_double(timing.speedup_estimate(), 2)
            << "x over sequential\n";

  if (telemetry_on) {
    const std::filesystem::path& dir = telemetry_dir;
    bool write_ok = true;
    {
      std::ofstream out(dir / "trace.perfetto.json");
      telemetry::write_perfetto_json(out, events);
      write_ok &= static_cast<bool>(out);
    }
    {
      std::ofstream out(dir / "metrics.prom");
      telemetry::write_prometheus(out, metrics);
      write_ok &= static_cast<bool>(out);
    }
    if (!results.empty()) {
      std::ofstream out(dir / "summary.json");
      write_trial_summary_json(out, make_config(0), results[0]);
      write_ok &= static_cast<bool>(out);
    }
    if (!write_ok) {
      std::cerr << "error: cannot write telemetry to " << dir.string() << "\n";
      return 2;
    }
    std::cout << "telemetry written to " << dir.string()
              << "/{trace.perfetto.json, metrics.prom, summary.json}\n";
  }
  return 0;
}
