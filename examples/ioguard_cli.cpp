// Command-line trial driver: run any of the four architectures on the
// automotive case-study workload with one command.
//
//   $ ./build/examples/ioguard_cli --system=ioguard --vms=8 --util=0.9
//         --preload=0.7 --trials=10 --seed=1 --jobs=4
//         [--faults=device-stall] [--export-tasks=tasks.csv]
//
// Systems: legacy | rtxen | bv | ioguard.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/artifact_builder.hpp"
#include "analysis/verify_resilience.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "system/experiment.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/prometheus.hpp"
#include "workload/trace_io.hpp"

using namespace ioguard;
using namespace ioguard::sys;

namespace {

StatusOr<SystemKind> parse_system(const std::string& name) {
  if (name == "legacy") return SystemKind::kLegacy;
  if (name == "rtxen") return SystemKind::kRtXen;
  if (name == "bv") return SystemKind::kBlueVisor;
  if (name == "ioguard") return SystemKind::kIoGuard;
  return InvalidArgumentError("unknown system '" + name +
                              "' (expected legacy|rtxen|bv|ioguard)");
}

CliSpec make_spec() {
  CliSpec spec("run case-study trials of one architecture");
  spec.flag("system", "ioguard", "architecture: legacy|rtxen|bv|ioguard")
      .flag_int("vms", 8, "active VMs")
      .flag_double("util", 0.9, "target utilization")
      .flag_double("preload", 0.7, "P-channel fraction (ioguard only)")
      .flag_int("trials", 10, "repetitions")
      .flag_int("min-jobs", 25, "jobs per task")
      .flag_int("seed", 42, "base seed")
      .flag_int("jobs", 0,
                "worker threads; 0 = auto (IOGUARD_JOBS env or cores); "
                "results are identical for any value (1 = sequential)")
      .flag("faults", "none",
            "fault plan: a canned name (none|device-stall|lossy-frames|"
            "noc-flaky|translator-jitter|mixed) or a spec like "
            "\"stall:rate=0.002,param=12;flit:rate=0.001\"")
      .flag("export-tasks", "", "dump the task set CSV to this file")
      .flag("telemetry-out", "",
            "write trace.perfetto.json (trial 0), metrics.prom (all trials) "
            "and summary.json to this directory")
      .flag_switch("verify",
                   "statically verify the scheduling artifacts (and any "
                   "fault plan) first; refuse to run on errors");
  return spec;
}

Status run(const CliArgs& args) {
  IOGUARD_ASSIGN_OR_RETURN(const SystemKind kind,
                           parse_system(args.get("system")));
  const auto vms = static_cast<std::size_t>(args.get_int("vms"));
  const double util = args.get_double("util");
  const double preload =
      kind == SystemKind::kIoGuard ? args.get_double("preload") : 0.0;
  const auto trials = static_cast<std::size_t>(args.get_int("trials"));
  const auto min_jobs = static_cast<std::size_t>(args.get_int("min-jobs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs"));
  IOGUARD_ASSIGN_OR_RETURN(const faults::FaultPlan plan,
                           faults::FaultPlan::parse(args.get("faults")));
  const faults::ResilienceConfig resilience;

  // Trial t's seed, shared with the batch experiment drivers: depends only
  // on (base seed, sweep point, t), never on jobs or execution order.
  const auto seed_of = [&](std::size_t t) {
    return mix_seed(seed, sweep_point_key(vms, util), t);
  };

  ParallelRunner runner(jobs);
  std::cout << "system=" << to_string(kind) << " vms=" << vms
            << " util=" << fmt_double(util, 2) << " preload="
            << fmt_double(preload, 2) << " trials=" << trials
            << " jobs=" << runner.jobs();
  if (!plan.empty()) std::cout << " faults=" << plan.spec_string();
  std::cout << "\n\n";

  if (args.get_bool("verify")) {
    // Static preflight (ioguard-verify): refuse to burn trial time on
    // artifacts the admission theorems cannot vouch for.
    workload::CaseStudyConfig vcfg;
    vcfg.num_vms = vms;
    vcfg.target_utilization = util;
    vcfg.preload_fraction = preload;
    vcfg.seed = seed_of(0) * 1000003ULL + 17;  // trial-0 workload seed
    auto report = analysis::verify_case_study(vcfg, trials, min_jobs);
    analysis::verify_resilience(plan, resilience, report);
    if (!report.ok()) {
      report.render_text(std::cerr);
      return FailedPreconditionError("artifact verification failed");
    }
    std::cout << "artifacts verified (" << report.diagnostics().size()
              << " informational finding(s))\n\n";
  }

  // Telemetry sinks (only populated with --telemetry-out): the registry
  // aggregates counters across all trials; the event trace and the summary
  // cover trial 0.
  const bool telemetry_on = !args.get("telemetry-out").empty();
  const std::filesystem::path telemetry_dir = args.get("telemetry-out");
  if (telemetry_on) {
    // Preflight the output directory so a bad path fails before the trials
    // run, not after.
    std::error_code ec;
    std::filesystem::create_directories(telemetry_dir, ec);
    if (ec)
      return UnavailableError("--telemetry-out=" + telemetry_dir.string() +
                              ": " + ec.message());
  }
  core::EventTrace events(1 << 20);
  telemetry::MetricsRegistry metrics;

  // Fan the trials out. The event trace and the per-trial summary cover
  // trial 0 only (one trace buffer, one attached trial); the registry is
  // merged across all trials in index order.
  const auto make_config = [&](std::size_t t) {
    TrialConfig tc;
    tc.kind = kind;
    tc.workload.num_vms = vms;
    tc.workload.target_utilization = util;
    tc.workload.preload_fraction = preload;
    tc.min_jobs_per_task = min_jobs;
    tc.trial_seed = seed_of(t);
    tc.faults = plan;
    tc.resilience = resilience;
    if (telemetry_on && t == 0) {
      tc.trace = &events;
      tc.collect_response_times = true;
      tc.collect_stage_latencies = true;
    }
    return tc;
  };
  IOGUARD_ASSIGN_OR_RETURN(const TrialConfig preflight,
                           TrialConfig::validated(make_config(0)));
  (void)preflight;

  BatchTiming timing;
  const auto results = runner.run_trials(
      trials, make_config, telemetry_on ? &metrics : nullptr, &timing);

  TextTable table({"trial", "success", "counted", "crit misses", "dropped",
                   "goodput Mbit/s", "busy", "admitted"});
  std::size_t successes = 0;
  double goodput = 0.0;
  FaultCounters fc;
  for (std::size_t t = 0; t < results.size(); ++t) {
    const TrialResult& r = results[t];
    if (r.success()) ++successes;
    goodput += r.goodput_bytes_per_s * 8.0 / 1e6;
    fc.injected_total += r.faults.injected_total;
    fc.watchdog_aborts += r.faults.watchdog_aborts;
    fc.retries += r.faults.retries;
    fc.jobs_shed += r.faults.jobs_shed;
    fc.transit_drops += r.faults.transit_drops;
    table.add(t, std::string(r.success() ? "yes" : "NO"), r.jobs_counted,
              r.critical_misses, r.dropped,
              fmt_double(r.goodput_bytes_per_s * 8.0 / 1e6, 1),
              fmt_double(r.device_busy_frac, 3),
              std::string(r.admitted ? "yes" : "no"));
  }

  if (!args.get("export-tasks").empty() && trials > 0) {
    auto wcfg = make_config(0).workload;
    if (kind != SystemKind::kIoGuard) wcfg.preload_fraction = 0.0;
    wcfg.seed = seed_of(0) * 1000003ULL + 17;
    const auto wl = workload::build_case_study(wcfg);
    std::ofstream out(args.get("export-tasks"));
    workload::write_taskset_csv(out, wl.tasks);
    if (!out)
      return UnavailableError("cannot write " + args.get("export-tasks"));
    std::cout << "task set written to " << args.get("export-tasks") << "\n";
  }
  table.render(std::cout);
  std::cout << "\nsuccess ratio "
            << fmt_double(static_cast<double>(successes) / trials, 2)
            << ", mean goodput " << fmt_double(goodput / trials, 1)
            << " Mbit/s\n"
            << fmt_double(timing.trials_per_second(), 1)
            << " trials/s on " << timing.jobs << " worker(s), speedup "
            << fmt_double(timing.speedup_estimate(), 2)
            << "x over sequential\n";
  if (!plan.empty()) {
    std::cout << "faults injected " << fc.injected_total
              << ", watchdog aborts " << fc.watchdog_aborts << ", retries "
              << fc.retries << ", jobs shed " << fc.jobs_shed
              << ", transit drops " << fc.transit_drops << "\n";
  }

  if (telemetry_on) {
    const std::filesystem::path& dir = telemetry_dir;
    bool write_ok = true;
    {
      std::ofstream out(dir / "trace.perfetto.json");
      telemetry::write_perfetto_json(out, events);
      write_ok &= static_cast<bool>(out);
    }
    {
      std::ofstream out(dir / "metrics.prom");
      telemetry::write_prometheus(out, metrics);
      write_ok &= static_cast<bool>(out);
    }
    if (!results.empty()) {
      std::ofstream out(dir / "summary.json");
      write_trial_summary_json(out, make_config(0), results[0]);
      write_ok &= static_cast<bool>(out);
    }
    if (!write_ok)
      return UnavailableError("cannot write telemetry to " + dir.string());
    std::cout << "telemetry written to " << dir.string()
              << "/{trace.perfetto.json, metrics.prom, summary.json}\n";
  }
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  const CliSpec spec = make_spec();
  const auto args = spec.parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "error: " << args.status() << "\n\n"
              << spec.help_text(argc > 0 ? argv[0] : "ioguard_cli");
    return exit_code(args.status());
  }
  if (args->help_requested()) {
    std::cout << spec.help_text(args->program());
    return 0;
  }
  const Status status = run(*args);
  if (!status.ok()) std::cerr << "error: " << status << "\n";
  return exit_code(status);
}
