// Command-line trial driver: run any of the four architectures on the
// automotive case-study workload with one command.
//
//   $ ./build/examples/ioguard_cli --system=ioguard --vms=8 --util=0.9
//         --preload=0.7 --trials=10 --seed=1 --jobs=4
//         [--faults=device-stall] [--export-tasks=tasks.csv]
//         [--checkpoint=ck.bin [--resume]] [--trial-timeout=SECONDS]
//
// Systems: legacy | rtxen | bv | ioguard.
//
// Exit codes: 0 success, 1 errors, 2 usage, 3 interrupted after a graceful
// drain (re-run with --checkpoint=... --resume to continue).
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/artifact_builder.hpp"
#include "analysis/verify_checkpoint.hpp"
#include "analysis/verify_resilience.hpp"
#include "common/atomic_file.hpp"
#include "common/checksum.hpp"
#include "common/cli.hpp"
#include "common/env.hpp"
#include "common/interrupt.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "core/mode_controller.hpp"
#include "system/checkpoint.hpp"
#include "system/experiment.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/prometheus.hpp"
#include "workload/trace_io.hpp"

using namespace ioguard;
using namespace ioguard::sys;

namespace {

StatusOr<SystemKind> parse_system(const std::string& name) {
  if (name == "legacy") return SystemKind::kLegacy;
  if (name == "rtxen") return SystemKind::kRtXen;
  if (name == "bv") return SystemKind::kBlueVisor;
  if (name == "ioguard") return SystemKind::kIoGuard;
  return InvalidArgumentError("unknown system '" + name +
                              "' (expected legacy|rtxen|bv|ioguard)");
}

/// --mode-switch spec: "off" | "on" | "on:THRESHOLD:HYSTERESIS:FACTOR
/// [:PROPAGATION]". "on" alone takes every ModeSwitchConfig default;
/// numeric range checks stay in TrialConfig::validated (the single
/// validated construction path), this only rejects malformed syntax.
StatusOr<core::ModeSwitchConfig> parse_mode_switch(const std::string& spec) {
  core::ModeSwitchConfig cfg;
  if (spec == "off") return cfg;

  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  const Status bad = InvalidArgumentError(
      "--mode-switch expects off, on, or "
      "on:THRESHOLD:HYSTERESIS:FACTOR[:PROPAGATION], got '" + spec + "'");
  if (parts[0] != "on") return bad;
  cfg.enabled = true;
  if (parts.size() == 1) return cfg;
  if (parts.size() != 4 && parts.size() != 5) return bad;

  const auto as_u64 = [&](const std::string& s,
                          std::uint64_t& out) -> bool {
    if (s.empty()) return false;
    char* end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
  };
  std::uint64_t threshold = 0;
  std::uint64_t hysteresis = 0;
  if (!as_u64(parts[1], threshold) || !as_u64(parts[2], hysteresis))
    return bad;
  char* end = nullptr;
  const double factor = std::strtod(parts[3].c_str(), &end);
  if (parts[3].empty() || end == nullptr || *end != '\0') return bad;
  cfg.overrun_threshold = static_cast<std::uint32_t>(threshold);
  cfg.recovery_hysteresis_slots = static_cast<Slot>(hysteresis);
  cfg.hi_budget_factor = factor;
  if (parts.size() == 5) {
    std::uint64_t propagation = 0;
    if (!as_u64(parts[4], propagation)) return bad;
    cfg.propagation_threshold = static_cast<std::size_t>(propagation);
  }
  return cfg;
}

CliSpec make_spec() {
  CliSpec spec("run case-study trials of one architecture");
  spec.flag("system", "ioguard", "architecture: legacy|rtxen|bv|ioguard")
      .flag_int("vms", 8, "active VMs")
      .flag_double("util", 0.9, "target utilization")
      .flag_double("preload", 0.7, "P-channel fraction (ioguard only)")
      .flag_int("trials", 10, "repetitions")
      .flag_int("min-jobs", 25, "jobs per task")
      .flag_int("seed", 42, "base seed")
      .flag_int("jobs", 0,
                "worker threads; 0 = auto (IOGUARD_JOBS env or cores); "
                "results are identical for any value (1 = sequential)")
      .flag("faults", "none",
            "fault plan: a canned name (none|device-stall|lossy-frames|"
            "noc-flaky|translator-jitter|mixed) or a spec like "
            "\"stall:rate=0.002,param=12;flit:rate=0.001\"")
      .flag_switch("criticality",
                   "mixed-criticality workload: safety tasks carry HI "
                   "budgets (C_hi >= C_lo); everything else is LO and "
                   "sheddable under HI mode")
      .flag("mode-switch", "off",
            "LO->HI mode switching (ioguard only, needs --criticality): "
            "off | on | on:THRESHOLD:HYSTERESIS:FACTOR[:PROPAGATION], e.g. "
            "on:1:500:1.5 -- pair with --faults=translator-jitter to "
            "produce the overrun evidence that triggers switches")
      .flag("checkpoint", "",
            "journal every finished trial to this file (crash-safe; see "
            "--resume); SIGINT/SIGTERM drain gracefully and exit 3")
      .flag_switch("resume",
                   "restore finished trials from --checkpoint instead of "
                   "re-running them; merged results are byte-identical to "
                   "an uninterrupted run")
      .flag_double("trial-timeout", 0.0,
                   "soft per-trial deadline in seconds; slower trials are "
                   "flagged as wedged (0 = off)")
      .flag_int("crash-after", 0,
                "test hook: simulate a hard crash (exit 70) after N "
                "checkpoint records have been appended (0 = off)")
      .flag("export-tasks", "", "dump the task set CSV to this file")
      .flag("telemetry-out", "",
            "write trace.perfetto.json (trial 0), metrics.prom (all trials) "
            "and summary.json to this directory")
      .flag("flight-recorder", "",
            "on every deadline miss / fault recovery, dump the last trace "
            "events + scheduler state to per-trial files in this directory "
            "(ioguard only; bounded per trial)")
      .flag_switch("profile",
                   "attribute every slot of every component to "
                   "busy/stall/quiescent (printed for trial 0; exported "
                   "with --telemetry-out)")
      .flag_switch("verify",
                   "statically verify the scheduling artifacts (and any "
                   "fault plan / checkpoint) first; refuse to run on errors")
      .flag_switch("stepped",
                   "run the slot-stepped reference loop instead of the "
                   "event-driven advance (bit-identical results; also "
                   "IOGUARD_STEPPED=1)");
  return spec;
}

Status run(const CliArgs& args) {
  IOGUARD_ASSIGN_OR_RETURN(const SystemKind kind,
                           parse_system(args.get("system")));
  const auto vms = static_cast<std::size_t>(args.get_int("vms"));
  const double util = args.get_double("util");
  const double preload =
      kind == SystemKind::kIoGuard ? args.get_double("preload") : 0.0;
  const auto trials = static_cast<std::size_t>(args.get_int("trials"));
  const auto min_jobs = static_cast<std::size_t>(args.get_int("min-jobs"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs"));
  // Execution mode is NOT part of the checkpoint fingerprint: both loops are
  // bit-identical, so a stepped-written journal resumes cleanly event-driven
  // (and vice versa) -- CI exercises exactly that.
  const bool stepped =
      args.get_bool("stepped") || env_int("IOGUARD_STEPPED", 0) != 0;
  IOGUARD_ASSIGN_OR_RETURN(const faults::FaultPlan plan,
                           faults::FaultPlan::parse(args.get("faults")));
  const faults::ResilienceConfig resilience;
  const bool criticality = args.get_bool("criticality");
  IOGUARD_ASSIGN_OR_RETURN(const core::ModeSwitchConfig mode_cfg,
                           parse_mode_switch(args.get("mode-switch")));
  if (mode_cfg.enabled && kind != SystemKind::kIoGuard)
    return InvalidArgumentError(
        "--mode-switch requires --system=ioguard (the controller hangs off "
        "the hypervisor's G-Sched and translator overrun sites)");
  if (mode_cfg.enabled && !criticality)
    return InvalidArgumentError(
        "--mode-switch requires --criticality: with a single-criticality "
        "workload every task is LO, so a switch would shed the safety tasks "
        "it is meant to protect");

  const std::string checkpoint_path = args.get("checkpoint");
  const bool resume = args.get_bool("resume");
  if (resume && checkpoint_path.empty())
    return InvalidArgumentError("--resume requires --checkpoint=PATH");
  const double trial_timeout = args.get_double("trial-timeout");
  if (trial_timeout < 0.0)
    return OutOfRangeError("--trial-timeout must be >= 0");
  const auto crash_after =
      static_cast<std::size_t>(args.get_int("crash-after"));
  if (crash_after > 0 && checkpoint_path.empty())
    return InvalidArgumentError("--crash-after requires --checkpoint=PATH");

  // The canonical config string fingerprints the checkpoint: resuming with
  // different flags is refused (CKP002). --jobs is deliberately excluded --
  // resuming at a different fan-out width is supported and bit-identical.
  const std::string canonical =
      point_config_string(kind, vms, util, preload, trials, min_jobs, seed,
                          plan, resilience, criticality, mode_cfg);
  const std::uint64_t fingerprint = fnv1a64(canonical);

  // Trial t's seed, shared with the batch experiment drivers: depends only
  // on (base seed, sweep point, t), never on jobs or execution order.
  const auto seed_of = [&](std::size_t t) {
    return mix_seed(seed, sweep_point_key(vms, util), t);
  };

  ParallelRunner runner(jobs);
  std::cout << "system=" << to_string(kind) << " vms=" << vms
            << " util=" << fmt_double(util, 2) << " preload="
            << fmt_double(preload, 2) << " trials=" << trials
            << " jobs=" << runner.jobs();
  if (!plan.empty()) std::cout << " faults=" << plan.spec_string();
  if (criticality) std::cout << " criticality=1";
  if (mode_cfg.enabled)
    std::cout << " mode-switch=on:" << mode_cfg.overrun_threshold << ":"
              << mode_cfg.recovery_hysteresis_slots << ":"
              << fmt_double(mode_cfg.hi_budget_factor, 2) << ":"
              << mode_cfg.propagation_threshold;
  if (!checkpoint_path.empty())
    std::cout << " checkpoint=" << checkpoint_path
              << (resume ? " (resume)" : "");
  std::cout << "\n\n";

  if (args.get_bool("verify")) {
    // Static preflight (ioguard-verify): refuse to burn trial time on
    // artifacts the admission theorems cannot vouch for.
    workload::CaseStudyConfig vcfg;
    vcfg.num_vms = vms;
    vcfg.target_utilization = util;
    vcfg.preload_fraction = preload;
    vcfg.mixed_criticality = criticality;
    vcfg.seed = seed_of(0) * 1000003ULL + 17;  // trial-0 workload seed
    auto report = analysis::verify_case_study(vcfg, trials, min_jobs);
    analysis::verify_resilience(plan, resilience, report);
    if (resume) {
      // CKP001-CKP004: the checkpoint pair must be consistent and match
      // this configuration before we trust a single restored trial.
      analysis::verify_checkpoint(inspect_checkpoint(checkpoint_path),
                                  fingerprint, report);
    }
    if (!report.ok()) {
      report.render_text(std::cerr);
      return FailedPreconditionError("artifact verification failed");
    }
    std::cout << "artifacts verified (" << report.diagnostics().size()
              << " informational finding(s))\n\n";
  }

  std::unique_ptr<CheckpointJournal> journal;
  if (!checkpoint_path.empty()) {
    CheckpointMeta meta;
    meta.fingerprint = fingerprint;
    meta.planned_trials = trials;
    meta.config_echo = canonical;
    IOGUARD_ASSIGN_OR_RETURN(
        journal, CheckpointJournal::open(checkpoint_path, meta, resume));
    journal->set_crash_after(crash_after);
    if (resume)
      std::cout << "resuming: " << journal->loaded()
                << " journaled trial record(s)"
                << (journal->truncated_tail()
                        ? " (dropped a truncated tail frame)"
                        : "")
                << "\n\n";
  }

  // Telemetry sinks (only populated with --telemetry-out): the registry
  // aggregates counters across all trials; the event trace and the summary
  // cover trial 0.
  const bool telemetry_on = !args.get("telemetry-out").empty();
  const std::filesystem::path telemetry_dir = args.get("telemetry-out");
  if (telemetry_on) {
    // Preflight the output directory so a bad path fails before the trials
    // run, not after.
    std::error_code ec;
    std::filesystem::create_directories(telemetry_dir, ec);
    if (ec)
      return UnavailableError("--telemetry-out=" + telemetry_dir.string() +
                              ": " + ec.message());
  }
  core::EventTrace events(1 << 20);
  telemetry::MetricsRegistry metrics;

  // Flight recorder: preflight the dump directory the same way, so an
  // unwritable path is a usage error (exit 2) before any trial runs.
  const bool profile_on = args.get_bool("profile");
  const std::string flight_dir = args.get("flight-recorder");
  if (!flight_dir.empty()) {
    if (kind != SystemKind::kIoGuard)
      return InvalidArgumentError(
          "--flight-recorder requires --system=ioguard (the recorder hangs "
          "off the hypervisor's trace ring)");
    std::error_code ec;
    std::filesystem::create_directories(flight_dir, ec);
    if (ec)
      return UnavailableError("--flight-recorder=" + flight_dir + ": " +
                              ec.message());
  }

  // Fan the trials out. The event trace and the per-trial summary cover
  // trial 0 only (one trace buffer, one attached trial); the registry is
  // merged across all trials in index order.
  const auto make_config = [&](std::size_t t) {
    TrialConfig tc;
    tc.kind = kind;
    tc.workload.num_vms = vms;
    tc.workload.target_utilization = util;
    tc.workload.preload_fraction = preload;
    tc.workload.mixed_criticality = criticality;
    tc.min_jobs_per_task = min_jobs;
    tc.trial_seed = seed_of(t);
    tc.faults = plan;
    tc.resilience = resilience;
    tc.mode_switch = mode_cfg;
    tc.stepped = stepped;
    if (telemetry_on && t == 0) {
      tc.trace = &events;
      tc.collect_response_times = true;
      tc.collect_stage_latencies = true;
    }
    // Jitter rides with telemetry on every trial: the registry merges the
    // per-trial histograms in index order, so the exported series are
    // byte-identical for any --jobs value.
    tc.collect_jitter = telemetry_on;
    tc.collect_profile = profile_on;
    if (!flight_dir.empty()) {
      tc.flight_dir = flight_dir;
      tc.flight_stem = "trial" + std::to_string(t);
    }
    return tc;
  };
  IOGUARD_ASSIGN_OR_RETURN(const TrialConfig preflight,
                           TrialConfig::validated(make_config(0)));
  (void)preflight;

  // First SIGINT/SIGTERM finishes in-flight trials, flushes the journal
  // and exits 3; nothing is lost when a checkpoint is attached.
  InterruptGuard interrupt_guard;

  SupervisionPolicy policy;
  policy.trial_timeout_seconds = trial_timeout;
  policy.stop = InterruptGuard::flag();
  policy.journal = journal.get();
  policy.point_key = checkpoint_point_key(kind, preload, vms, util);

  BatchTiming timing;
  const BatchResult batch = runner.run_supervised(
      trials, make_config, policy, telemetry_on ? &metrics : nullptr,
      &timing);
  const auto& results = batch.results;
  IOGUARD_RETURN_IF_ERROR(batch.journal_error);

  std::vector<std::string> columns = {
      "trial", "success", "counted", "crit misses", "dropped",
      "goodput Mbit/s", "busy", "admitted"};
  if (journal) columns.push_back("outcome");
  TextTable table(columns);
  std::size_t successes = 0;
  std::size_t aggregated = 0;
  double goodput = 0.0;
  std::uint64_t flight_total = 0;
  FaultCounters fc;
  ModeSwitchCounters mcs;
  for (std::size_t t = 0; t < results.size(); ++t) {
    const TrialOutcome outcome = batch.outcomes[t];
    if (outcome == TrialOutcome::kAbandoned ||
        outcome == TrialOutcome::kSkipped) {
      if (journal)
        table.add(t, std::string("-"), std::string("-"), std::string("-"),
                  std::string("-"), std::string("-"), std::string("-"),
                  std::string("-"), std::string(to_string(outcome)));
      continue;
    }
    const TrialResult& r = results[t];
    ++aggregated;
    if (r.success()) ++successes;
    goodput += r.goodput_bytes_per_s * 8.0 / 1e6;
    fc.injected_total += r.faults.injected_total;
    fc.watchdog_aborts += r.faults.watchdog_aborts;
    fc.retries += r.faults.retries;
    fc.jobs_shed += r.faults.jobs_shed;
    fc.transit_drops += r.faults.transit_drops;
    mcs.switches_to_hi += r.mcs.switches_to_hi;
    mcs.recoveries += r.mcs.recoveries;
    mcs.propagated += r.mcs.propagated;
    mcs.overruns_observed += r.mcs.overruns_observed;
    mcs.lo_jobs_shed += r.mcs.lo_jobs_shed;
    mcs.lo_rejected += r.mcs.lo_rejected;
    mcs.hi_vms_at_end += r.mcs.hi_vms_at_end;
    mcs.hi_misses += r.mcs.hi_misses;
    flight_total += r.flight_dumps;
    if (journal) {
      table.add(t, std::string(r.success() ? "yes" : "NO"), r.jobs_counted,
                r.critical_misses, r.dropped,
                fmt_double(r.goodput_bytes_per_s * 8.0 / 1e6, 1),
                fmt_double(r.device_busy_frac, 3),
                std::string(r.admitted ? "yes" : "no"),
                std::string(to_string(outcome)));
    } else {
      table.add(t, std::string(r.success() ? "yes" : "NO"), r.jobs_counted,
                r.critical_misses, r.dropped,
                fmt_double(r.goodput_bytes_per_s * 8.0 / 1e6, 1),
                fmt_double(r.device_busy_frac, 3),
                std::string(r.admitted ? "yes" : "no"));
    }
  }

  if (!args.get("export-tasks").empty() && trials > 0) {
    auto wcfg = make_config(0).workload;
    if (kind != SystemKind::kIoGuard) wcfg.preload_fraction = 0.0;
    wcfg.seed = seed_of(0) * 1000003ULL + 17;
    const auto wl = workload::build_case_study(wcfg);
    AtomicFileWriter out(args.get("export-tasks"));
    workload::write_taskset_csv(out.stream(), wl.tasks);
    IOGUARD_RETURN_IF_ERROR(out.commit());
    std::cout << "task set written to " << args.get("export-tasks") << "\n";
  }
  table.render(std::cout);
  for (const auto& note : batch.notes) std::cout << "note: " << note << "\n";
  std::cout << "\nsuccess ratio "
            << fmt_double(aggregated > 0 ? static_cast<double>(successes) /
                                               static_cast<double>(aggregated)
                                         : 0.0,
                          2)
            << ", mean goodput "
            << fmt_double(
                   aggregated > 0 ? goodput / static_cast<double>(aggregated)
                                  : 0.0,
                   1)
            << " Mbit/s\n"
            << fmt_double(timing.trials_per_second(), 1)
            << " trials/s on " << timing.jobs << " worker(s), speedup "
            << fmt_double(timing.speedup_estimate(), 2)
            << "x over sequential\n";
  if (journal) {
    std::cout << "checkpoint: " << batch.executed() << " executed, "
              << batch.restored << " restored, " << batch.retried
              << " retried, " << batch.abandoned << " abandoned, "
              << batch.skipped << " skipped";
    if (batch.wedged > 0) std::cout << ", " << batch.wedged << " wedged";
    std::cout << "\n";
  }
  if (!plan.empty()) {
    std::cout << "faults injected " << fc.injected_total
              << ", watchdog aborts " << fc.watchdog_aborts << ", retries "
              << fc.retries << ", jobs shed " << fc.jobs_shed
              << ", transit drops " << fc.transit_drops << "\n";
  }
  if (mode_cfg.enabled) {
    std::cout << "mode switching: " << mcs.switches_to_hi << " LO->HI ("
              << mcs.propagated << " propagated), " << mcs.recoveries
              << " recoveries, " << mcs.overruns_observed
              << " overruns observed, " << mcs.lo_jobs_shed
              << " LO jobs shed, " << mcs.lo_rejected
              << " LO submissions rejected, " << mcs.hi_vms_at_end
              << " HI VM(s) at horizon, " << mcs.hi_misses
              << " HI deadline miss(es)\n";
  }
  if (!flight_dir.empty())
    std::cout << "flight recorder: " << flight_total << " dump(s) in "
              << flight_dir << "\n";
  if (profile_on && !results.empty() && !results[0].profile.empty()) {
    std::cout << "\ncycle attribution, trial 0 (slots; every component sums "
                 "to the horizon):\n";
    TextTable profile_table(
        {"component", "busy", "stall", "quiescent", "total"});
    for (const ComponentProfile& c : results[0].profile)
      profile_table.add(c.name, c.busy_slots, c.stall_slots,
                        c.quiescent_slots, c.total_slots());
    profile_table.render(std::cout);
  }

  if (batch.interrupted) {
    return CancelledError(
        "interrupted after " +
        std::to_string(trials - batch.skipped) + "/" +
        std::to_string(trials) + " trials" +
        (journal ? "; finished trials are journaled, re-run with "
                   "--checkpoint=" +
                       checkpoint_path + " --resume to continue"
                 : "; re-run with --checkpoint=PATH to make interrupts "
                   "resumable"));
  }

  if (telemetry_on) {
    const std::filesystem::path& dir = telemetry_dir;
    // All three artifacts publish atomically (temp file + rename): a crash
    // here can leave a stale staging file (CKP003) but never a torn one.
    {
      // Trial 0's cycle attribution rides along as Perfetto counter tracks.
      std::vector<telemetry::ProfileCounterTrack> counters;
      if (!results.empty()) {
        for (const ComponentProfile& c : results[0].profile)
          counters.push_back({c.name, c.busy_slots, c.stall_slots,
                              c.quiescent_slots});
      }
      AtomicFileWriter out(dir / "trace.perfetto.json");
      telemetry::write_perfetto_json(out.stream(), events, {}, counters);
      IOGUARD_RETURN_IF_ERROR(out.commit());
    }
    {
      AtomicFileWriter out(dir / "metrics.prom");
      telemetry::write_prometheus(out.stream(), metrics);
      IOGUARD_RETURN_IF_ERROR(out.commit());
    }
    if (!results.empty() &&
        batch.outcomes[0] != TrialOutcome::kAbandoned &&
        batch.outcomes[0] != TrialOutcome::kSkipped) {
      AtomicFileWriter out(dir / "summary.json");
      write_trial_summary_json(out.stream(), make_config(0), results[0]);
      IOGUARD_RETURN_IF_ERROR(out.commit());
    }
    std::cout << "telemetry written to " << dir.string()
              << "/{trace.perfetto.json, metrics.prom, summary.json}\n";
  }
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  const CliSpec spec = make_spec();
  const auto args = spec.parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "error: " << args.status() << "\n\n"
              << spec.help_text(argc > 0 ? argv[0] : "ioguard_cli");
    return exit_code(args.status());
  }
  if (args->help_requested()) {
    std::cout << spec.help_text(args->program());
    return 0;
  }
  const Status status = run(*args);
  if (!status.ok()) std::cerr << "error: " << status << "\n";
  return exit_code(status);
}
