// Trace inspector: runs a short I/O-GUARD window with the on-chip event
// trace enabled, prints what the two channels did, and decomposes the
// R-channel job lifecycles into per-stage latencies (the Fig.-6 view).
//
//   $ ./build/examples/trace_inspector [--slots=N] [--csv=FILE]
//                                      [--perfetto=FILE] [--faults=PLAN]
//                                      [--profile]
//
// Offline inspection modes (no simulation; exit 2 on malformed files):
//   $ ./build/examples/trace_inspector --flight=trial0.flight1.txt
//   $ ./build/examples/trace_inspector --check-csv=trace.csv
#include <iostream>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/cli.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "core/hypervisor.hpp"
#include "faults/injector.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/spans.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

using namespace ioguard;

namespace {

CliSpec make_spec() {
  CliSpec spec(
      "run a short traced I/O-GUARD window and decompose job lifecycles");
  spec.flag_int("slots", 2000, "simulated slots")
      .flag("faults", "none", "fault plan (canned name or spec string)")
      .flag("csv", "", "dump the full trace CSV to this file")
      .flag("perfetto", "", "write a Perfetto JSON trace to this file")
      .flag_switch("profile",
                   "print the per-device busy/stall/quiescent attribution")
      .flag("flight", "",
            "inspect a flight-recorder dump instead of simulating (exit 2 "
            "on a truncated or malformed file)")
      .flag("check-csv", "",
            "validate a dumped trace CSV instead of simulating (exit 2 on "
            "a truncated or malformed file)");
  return spec;
}

/// --flight=FILE: parse and pretty-print one flight-recorder dump.
Status inspect_flight(const std::string& path) {
  IOGUARD_ASSIGN_OR_RETURN(const telemetry::FlightDump dump,
                           telemetry::read_flight_dump(path));
  std::cout << "flight dump " << path << "\ntrigger " << dump.trigger
            << " at slot " << dump.slot << " (dump " << dump.seq
            << " of stem " << dump.stem << ", " << dump.events.size()
            << " ring events)\n\n";
  TextTable events({"slot", "kind", "device", "vm", "task", "job", "aux"});
  for (const auto& e : dump.events)
    events.add(e.slot, std::string(core::to_string(e.kind)), e.device.value,
               e.vm.value, e.task.value, e.job.value, e.aux);
  events.render(std::cout);
  if (!dump.state_lines.empty()) {
    std::cout << "\nscheduler state at dump time:\n";
    for (const auto& s : dump.state_lines) std::cout << "  " << s << '\n';
  }
  return OkStatus();
}

/// --check-csv=FILE: validate a trace CSV and summarize it per event kind.
Status check_csv(const std::string& path) {
  IOGUARD_ASSIGN_OR_RETURN(const std::vector<core::TraceEvent> events,
                           telemetry::read_trace_csv(path));
  std::vector<std::uint64_t> counts(core::kTraceEventKindCount, 0);
  for (const auto& e : events) ++counts[static_cast<std::size_t>(e.kind)];
  std::cout << path << ": valid trace CSV, " << events.size()
            << " events\n\n";
  TextTable summary({"event", "count"});
  for (auto kind : core::all_trace_event_kinds()) {
    const std::uint64_t n = counts[static_cast<std::size_t>(kind)];
    if (n > 0) summary.add(std::string(core::to_string(kind)), n);
  }
  summary.render(std::cout);
  return OkStatus();
}

Status run(const CliArgs& args) {
  if (!args.get("flight").empty()) return inspect_flight(args.get("flight"));
  if (!args.get("check-csv").empty()) return check_csv(args.get("check-csv"));

  const Slot slots = static_cast<Slot>(args.get_int("slots"));
  IOGUARD_ASSIGN_OR_RETURN(const faults::FaultPlan plan,
                           faults::FaultPlan::parse(args.get("faults")));

  workload::CaseStudyConfig wcfg;
  wcfg.num_vms = 4;
  wcfg.target_utilization = 0.7;
  wcfg.preload_fraction = 0.5;
  const auto wl = workload::build_case_study(wcfg);

  faults::FaultInjector injector(plan, /*trial_seed=*/1);
  core::HypervisorConfig hcfg;
  hcfg.num_vms = wcfg.num_vms;
  if (!plan.empty()) hcfg.injector = &injector;
  core::Hypervisor hyp(wl, hcfg);
  core::EventTrace trace;
  hyp.set_tracer(&trace);

  workload::ArrivalConfig acfg;
  acfg.horizon = slots;
  const auto jobs = workload::generate_trace(wl.runtime(), acfg);

  std::vector<iodev::Completion> done;
  std::size_t next = 0;
  for (Slot now = 0; now < slots; ++now) {
    while (next < jobs.size() && jobs[next].release <= now)
      (void)hyp.submit(jobs[next++], now);
    hyp.tick_slot(now, done);
  }

  std::cout << "I/O-GUARD event trace over " << slots << " slots ("
            << slots / 100 << " ms)";
  if (!plan.empty()) std::cout << ", faults=" << plan.spec_string();
  std::cout << "\n\n";
  TextTable summary({"event", "count"});
  for (auto kind : core::all_trace_event_kinds()) {
    // Fault-kind and mode-transition rows appear only when something
    // actually fired, mirroring the exporters' byte-identity rule.
    if (core::is_conditional_kind(kind) && trace.count(kind) == 0) continue;
    summary.add(std::string(core::to_string(kind)), trace.count(kind));
  }
  summary.render(std::cout);
  if (trace.overwritten() > 0)
    std::cout << "(ring saturated: " << trace.overwritten()
              << " oldest events overwritten)\n";

  if (args.get_bool("profile")) {
    // Cycle attribution: every tick of a device manager is exactly one of
    // busy/stall/quiescent, so each row sums to the simulated slot count.
    std::cout << "\ncycle attribution (slots; each device sums to " << slots
              << "):\n";
    TextTable attribution({"component", "busy", "stall", "quiescent"});
    for (std::size_t d = 0; d < hyp.device_count(); ++d) {
      const auto& m = hyp.manager(DeviceId{static_cast<std::uint32_t>(d)});
      attribution.add("device" + std::to_string(d), m.busy_slots(),
                      m.profile_stall_slots(), m.profile_quiescent_slots());
    }
    attribution.render(std::cout);
  }

  // Per-stage latency decomposition of the R-channel job lifecycles.
  std::cout << "\nstage breakdown (R-channel jobs):\n";
  auto breakdown = telemetry::fold_stages(telemetry::collect_spans(trace));
  telemetry::print_stage_breakdown(std::cout, breakdown);

  // First few events, human readable.
  std::cout << "\nfirst events:\n";
  const std::size_t show = std::min<std::size_t>(trace.size(), 20);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& e = trace.events()[i];
    std::cout << "  slot " << e.slot << ": " << core::to_string(e.kind)
              << " dev=" << e.device.value;
    if (e.vm.valid()) std::cout << " vm=" << e.vm.value;
    if (e.task.valid()) std::cout << " task=" << e.task.value;
    std::cout << '\n';
  }

  // Both dumps publish atomically (temp file + rename) so a crash or a
  // full disk never leaves a torn artifact under the requested name.
  if (!args.get("csv").empty()) {
    const std::string path = args.get("csv");
    AtomicFileWriter out(path);
    trace.dump_csv(out.stream());
    IOGUARD_RETURN_IF_ERROR(out.commit());
    std::cout << "\nfull trace (" << trace.size() << " events) written to "
              << path << '\n';
  }
  if (!args.get("perfetto").empty()) {
    const std::string path = args.get("perfetto");
    AtomicFileWriter out(path);
    telemetry::write_perfetto_json(out.stream(), trace);
    IOGUARD_RETURN_IF_ERROR(out.commit());
    std::cout << "\nPerfetto trace written to " << path
              << " (open in https://ui.perfetto.dev)\n";
  }
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  const CliSpec spec = make_spec();
  const auto args = spec.parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "error: " << args.status() << "\n\n"
              << spec.help_text(argc > 0 ? argv[0] : "trace_inspector");
    return exit_code(args.status());
  }
  if (args->help_requested()) {
    std::cout << spec.help_text(args->program());
    return 0;
  }
  const Status status = run(*args);
  if (!status.ok()) std::cerr << "error: " << status << "\n";
  return exit_code(status);
}
