// Trace inspector: runs a short I/O-GUARD window with the on-chip event
// trace enabled, prints what the two channels did, and decomposes the
// R-channel job lifecycles into per-stage latencies (the Fig.-6 view).
//
//   $ ./build/examples/trace_inspector [--slots=N] [--csv=FILE]
//                                      [--perfetto=FILE] [--faults=PLAN]
#include <iostream>

#include "common/atomic_file.hpp"
#include "common/cli.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "core/hypervisor.hpp"
#include "faults/injector.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/spans.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

using namespace ioguard;

namespace {

CliSpec make_spec() {
  CliSpec spec(
      "run a short traced I/O-GUARD window and decompose job lifecycles");
  spec.flag_int("slots", 2000, "simulated slots")
      .flag("faults", "none", "fault plan (canned name or spec string)")
      .flag("csv", "", "dump the full trace CSV to this file")
      .flag("perfetto", "", "write a Perfetto JSON trace to this file");
  return spec;
}

Status run(const CliArgs& args) {
  const Slot slots = static_cast<Slot>(args.get_int("slots"));
  IOGUARD_ASSIGN_OR_RETURN(const faults::FaultPlan plan,
                           faults::FaultPlan::parse(args.get("faults")));

  workload::CaseStudyConfig wcfg;
  wcfg.num_vms = 4;
  wcfg.target_utilization = 0.7;
  wcfg.preload_fraction = 0.5;
  const auto wl = workload::build_case_study(wcfg);

  faults::FaultInjector injector(plan, /*trial_seed=*/1);
  core::HypervisorConfig hcfg;
  hcfg.num_vms = wcfg.num_vms;
  if (!plan.empty()) hcfg.injector = &injector;
  core::Hypervisor hyp(wl, hcfg);
  core::EventTrace trace;
  hyp.set_tracer(&trace);

  workload::ArrivalConfig acfg;
  acfg.horizon = slots;
  const auto jobs = workload::generate_trace(wl.runtime(), acfg);

  std::vector<iodev::Completion> done;
  std::size_t next = 0;
  for (Slot now = 0; now < slots; ++now) {
    while (next < jobs.size() && jobs[next].release <= now)
      (void)hyp.submit(jobs[next++], now);
    hyp.tick_slot(now, done);
  }

  std::cout << "I/O-GUARD event trace over " << slots << " slots ("
            << slots / 100 << " ms)";
  if (!plan.empty()) std::cout << ", faults=" << plan.spec_string();
  std::cout << "\n\n";
  TextTable summary({"event", "count"});
  for (auto kind : core::all_trace_event_kinds()) {
    // Fault-kind rows appear only when something actually fired, mirroring
    // the exporters' byte-identity rule for fault-free runs.
    if (core::is_fault_kind(kind) && trace.count(kind) == 0) continue;
    summary.add(std::string(core::to_string(kind)), trace.count(kind));
  }
  summary.render(std::cout);
  if (trace.overwritten() > 0)
    std::cout << "(ring saturated: " << trace.overwritten()
              << " oldest events overwritten)\n";

  // Per-stage latency decomposition of the R-channel job lifecycles.
  std::cout << "\nstage breakdown (R-channel jobs):\n";
  auto breakdown = telemetry::fold_stages(telemetry::collect_spans(trace));
  telemetry::print_stage_breakdown(std::cout, breakdown);

  // First few events, human readable.
  std::cout << "\nfirst events:\n";
  const std::size_t show = std::min<std::size_t>(trace.size(), 20);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& e = trace.events()[i];
    std::cout << "  slot " << e.slot << ": " << core::to_string(e.kind)
              << " dev=" << e.device.value;
    if (e.vm.valid()) std::cout << " vm=" << e.vm.value;
    if (e.task.valid()) std::cout << " task=" << e.task.value;
    std::cout << '\n';
  }

  // Both dumps publish atomically (temp file + rename) so a crash or a
  // full disk never leaves a torn artifact under the requested name.
  if (!args.get("csv").empty()) {
    const std::string path = args.get("csv");
    AtomicFileWriter out(path);
    trace.dump_csv(out.stream());
    IOGUARD_RETURN_IF_ERROR(out.commit());
    std::cout << "\nfull trace (" << trace.size() << " events) written to "
              << path << '\n';
  }
  if (!args.get("perfetto").empty()) {
    const std::string path = args.get("perfetto");
    AtomicFileWriter out(path);
    telemetry::write_perfetto_json(out.stream(), trace);
    IOGUARD_RETURN_IF_ERROR(out.commit());
    std::cout << "\nPerfetto trace written to " << path
              << " (open in https://ui.perfetto.dev)\n";
  }
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  const CliSpec spec = make_spec();
  const auto args = spec.parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "error: " << args.status() << "\n\n"
              << spec.help_text(argc > 0 ? argv[0] : "trace_inspector");
    return exit_code(args.status());
  }
  if (args->help_requested()) {
    std::cout << spec.help_text(args->program());
    return 0;
  }
  const Status status = run(*args);
  if (!status.ok()) std::cerr << "error: " << status << "\n";
  return exit_code(status);
}
