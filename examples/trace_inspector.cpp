// Trace inspector: runs a short I/O-GUARD window with the on-chip event
// trace enabled, prints what the two channels did, and decomposes the
// R-channel job lifecycles into per-stage latencies (the Fig.-6 view).
//
//   $ ./build/examples/trace_inspector [--slots=N] [--csv=FILE]
//                                      [--perfetto=FILE]
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/hypervisor.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/spans.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

using namespace ioguard;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Slot slots = static_cast<Slot>(args.get_int("slots", 2000));

  workload::CaseStudyConfig wcfg;
  wcfg.num_vms = 4;
  wcfg.target_utilization = 0.7;
  wcfg.preload_fraction = 0.5;
  const auto wl = workload::build_case_study(wcfg);

  core::HypervisorConfig hcfg;
  hcfg.num_vms = wcfg.num_vms;
  core::Hypervisor hyp(wl, hcfg);
  core::EventTrace trace;
  hyp.set_tracer(&trace);

  workload::ArrivalConfig acfg;
  acfg.horizon = slots;
  const auto jobs = workload::generate_trace(wl.runtime(), acfg);

  std::vector<iodev::Completion> done;
  std::size_t next = 0;
  for (Slot now = 0; now < slots; ++now) {
    while (next < jobs.size() && jobs[next].release <= now)
      (void)hyp.submit(jobs[next++], now);
    hyp.tick_slot(now, done);
  }

  std::cout << "I/O-GUARD event trace over " << slots << " slots ("
            << slots / 100 << " ms)\n\n";
  TextTable summary({"event", "count"});
  for (auto kind : core::all_trace_event_kinds())
    summary.add(std::string(core::to_string(kind)), trace.count(kind));
  summary.render(std::cout);
  if (trace.overwritten() > 0)
    std::cout << "(ring saturated: " << trace.overwritten()
              << " oldest events overwritten)\n";

  // Per-stage latency decomposition of the R-channel job lifecycles.
  std::cout << "\nstage breakdown (R-channel jobs):\n";
  auto breakdown = telemetry::fold_stages(telemetry::collect_spans(trace));
  telemetry::print_stage_breakdown(std::cout, breakdown);

  // First few events, human readable.
  std::cout << "\nfirst events:\n";
  const std::size_t show = std::min<std::size_t>(trace.size(), 20);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& e = trace.events()[i];
    std::cout << "  slot " << e.slot << ": " << core::to_string(e.kind)
              << " dev=" << e.device.value;
    if (e.vm.valid()) std::cout << " vm=" << e.vm.value;
    if (e.task.valid()) std::cout << " task=" << e.task.value;
    std::cout << '\n';
  }

  if (args.has("csv")) {
    const std::string path = args.get("csv", "trace.csv");
    std::ofstream out(path);
    trace.dump_csv(out);
    std::cout << "\nfull trace (" << trace.size() << " events) written to "
              << path << '\n';
  }
  if (args.has("perfetto")) {
    const std::string path = args.get("perfetto", "trace.perfetto.json");
    std::ofstream out(path);
    telemetry::write_perfetto_json(out, trace);
    if (!out) {
      std::cerr << "error: cannot write " << path << "\n";
      return 2;
    }
    std::cout << "\nPerfetto trace written to " << path
              << " (open in https://ui.perfetto.dev)\n";
  }
  return 0;
}
