// Walkthrough of the Sec. IV analysis on a concrete device: builds the Time
// Slot Table for the pre-defined tasks, admits each VM through the
// service::AdmissionEngine façade (which synthesizes per-VM servers and runs
// Theorems 2 + 4), re-runs the exhaustive theorems for agreement, and
// cross-checks the verdict against a reference P-EDF simulation on the
// table's free slots.
//
//   $ ./build/examples/admission_analysis
#include <iostream>

#include "common/cli.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "sched/admission.hpp"
#include "sched/edf_ref.hpp"
#include "sched/slot_table.hpp"
#include "service/admission_engine.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

using namespace ioguard;
using namespace ioguard::sched;

namespace {

Status run() {
  std::cout << "Two-layer schedulability analysis walkthrough\n"
            << "=============================================\n\n";

  // The case-study workload's CAN device at 70% utilization, 40% preloaded.
  workload::CaseStudyConfig wcfg;
  wcfg.num_vms = 4;
  wcfg.target_utilization = 0.7;
  wcfg.preload_fraction = 0.4;
  const auto wl = workload::build_case_study(wcfg);
  const DeviceId dev = workload::device_id(workload::CaseStudyDevice::kCan);

  const auto predefined = wl.predefined().filter_device(dev);
  const auto runtime = wl.runtime().filter_device(dev);
  std::cout << "CAN device: " << predefined.size() << " pre-defined + "
            << runtime.size() << " run-time tasks, utilization "
            << fmt_double(predefined.utilization(), 3) << " + "
            << fmt_double(runtime.utilization(), 3) << "\n\n";

  // 1. P-channel: offline slot-EDF placement into sigma*.
  const auto build = build_time_slot_table(predefined);
  if (!build.feasible)
    return FailedPreconditionError("slot table infeasible: " + build.failure);
  TableSupply supply(build.table);
  std::cout << "sigma*: H = " << supply.hyperperiod()
            << " slots, F = " << supply.free_per_period() << " free (bandwidth "
            << fmt_double(supply.bandwidth(), 3) << ")\n";
  std::cout << "sbf(sigma, t) samples: ";
  for (Slot t : {10u, 100u, 1000u, 10000u})
    std::cout << "sbf(" << t << ")=" << supply.sbf(t) << "  ";
  std::cout << "\n\n";

  // 2. Admit each VM through the service façade: the engine synthesizes a
  //    G-Sched server (Theorem 4) and re-checks the fleet (Theorem 2) on
  //    every request, exactly as the long-lived daemon would.
  service::AdmissionEngine engine(build.table,
                                  service::AdmissionEngineConfig{});
  bool all_applied = true;
  for (std::uint32_t v = 0; v < wcfg.num_vms; ++v) {
    const auto vm_set = runtime.filter_vm(VmId{v});
    if (vm_set.empty()) continue;
    service::AdmissionRequest req;
    req.op = service::RequestOp::kAdmit;
    req.tenant = "can";
    req.vm = "vm" + std::to_string(v);
    req.tasks = vm_set;
    IOGUARD_ASSIGN_OR_RETURN(const auto decision, engine.handle(req));
    if (!decision.applied) all_applied = false;
  }

  service::AdmissionRequest query;
  query.op = service::RequestOp::kQuery;
  IOGUARD_ASSIGN_OR_RETURN(const auto fleet, engine.handle(query));

  TextTable servers({"VM", "tasks", "util", "Pi", "Theta", "bandwidth",
                     "Theorem 4"});
  for (const auto& v : fleet.per_vm)
    servers.add(v.vm, v.task_count, fmt_double(v.utilization, 3), v.server.pi,
                v.server.theta, fmt_double(v.server.bandwidth(), 3),
                std::string(v.local.schedulable ? "pass" : "fail"));
  servers.render(std::cout);
  const bool feasible = all_applied && fleet.admitted;
  std::cout << "system admission (service facade): "
            << (feasible ? "SCHEDULABLE"
                         : "REJECTED (" + fleet.reason + ")")
            << "  [fleet fingerprint 0x" << std::hex << fleet.fleet_fingerprint
            << std::dec << "]\n\n";

  // 3. Exhaustive vs pseudo-polynomial agreement on the global layer.
  std::vector<ServerParams> active;
  for (const auto& v : fleet.per_vm)
    if (v.server.theta > 0) active.push_back(v.server);
  const auto t1 = theorem1_exhaustive(supply, active);
  const auto t2 = theorem2_check(supply, active);
  std::cout << "Theorem 1 (exhaustive, checked to t<" << t1.checked_until
            << "): " << (t1 ? "pass" : "fail") << '\n'
            << "Theorem 2 (pseudo-poly, checked to t<" << t2.checked_until
            << "): " << (t2 ? "pass" : "fail") << "\n\n";

  // 4. Empirical cross-check: P-EDF of all runtime tasks on the free slots.
  workload::ArrivalConfig acfg;
  acfg.horizon = 200000;
  acfg.jitter_frac = 0.0;
  acfg.exec_frac_lo = acfg.exec_frac_hi = 1.0;
  const auto trace = workload::generate_trace(runtime, acfg);
  const auto sim = simulate_edf(
      trace, [&](Slot s) { return build.table.is_free_abs(s); }, acfg.horizon);
  std::cout << "reference P-EDF on free slots: " << trace.size() << " jobs, "
            << sim.misses << " misses over " << acfg.horizon << " slots\n";
  if (feasible && sim.misses == 0)
    std::cout << "analysis and execution agree: admitted and no misses.\n";
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  CliSpec spec("walk through the Sec. IV two-layer admission analysis");
  const auto args = spec.parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "error: " << args.status() << "\n\n"
              << spec.help_text(argc > 0 ? argv[0] : "admission_analysis");
    return exit_code(args.status());
  }
  if (args->help_requested()) {
    std::cout << spec.help_text(args->program());
    return 0;
  }
  const Status status = run();
  if (!status.ok()) std::cerr << "error: " << status << "\n";
  return exit_code(status);
}
