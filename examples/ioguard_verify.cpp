// ioguard_verify: static verifier for scheduling artifacts.
//
// Builds the automotive case-study workload, derives the per-device
// scheduling artifacts exactly like the hypervisor does at initialization
// (offline Time Slot Table + per-VM server synthesis), then runs every
// SIG/SUP/LVL/CFG check over them (plus RES checks with --faults and CKP
// checks with --checkpoint):
//
//   $ ./build/examples/ioguard_verify --vms=4 --util=0.4 --preload=0.7
//   OK: 0 error(s), 0 warning(s), 0 finding(s)
//
// `--corrupt=NAME` injects a named artifact corruption before verification,
// which is how the checks themselves are exercised end-to-end (each
// corruption must produce a non-zero exit with a stable diagnostic code):
//
//   $ ./build/examples/ioguard_verify --corrupt=steal-slot; echo $?
//   SIG003 error [device 0 task 3 (...)]: job 2 ... holds 1 of 2 slots ...
//   1
//
// Exit status: 0 artifacts verified, 1 diagnostics at error severity,
// 2 usage error (e.g. unknown corruption name).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/artifact_builder.hpp"
#include "analysis/verifier.hpp"
#include "analysis/verify_checkpoint.hpp"
#include "analysis/verify_resilience.hpp"
#include "analysis/verify_modeswitch.hpp"
#include "analysis/verify_service.hpp"
#include "common/checksum.hpp"
#include "core/mode_controller.hpp"
#include "common/cli.hpp"
#include "common/status.hpp"
#include "sched/slot_table.hpp"
#include "system/checkpoint.hpp"
#include "workload/generator.hpp"

using namespace ioguard;
using analysis::ExperimentArtifacts;

namespace {

// ---- corruption injection --------------------------------------------------

struct Corruption {
  const char* name;
  const char* expected_code;
  const char* what;
};

constexpr Corruption kCorruptions[] = {
    {"steal-slot", "SIG003", "free a reserved slot of a pre-defined task"},
    {"surplus-slot", "SIG004", "reserve an extra slot for a pre-defined task"},
    {"alien-task", "SIG002", "reserve a slot for a task id outside the set"},
    {"truncate-table", "SIG006", "drop the last slot of sigma*"},
    {"theta-gt-pi", "LVL001", "inflate a server budget past its period"},
    {"zero-slack", "SUP004", "scale server budgets until slack c <= 0"},
    {"starve-server", "LVL003", "shrink a busy VM's budget below its load"},
    {"drop-server", "LVL005", "drop the last VM's server"},
    {"deadline-gt-period", "LVL002", "stretch a VM task deadline past T"},
    {"zero-wcet", "LVL006", "zero out a VM task's WCET"},
    {"unknown-device", "CFG003", "point a task at a non-existent device"},
    {"vm-overflow", "CFG002", "configure more VMs than the mesh can place"},
    {"vm-out-of-range", "CFG004", "assign a task to a VM past num_vms"},
    {"bad-util", "CFG005", "set target utilization above 1"},
    {"zero-trials", "CFG006", "configure an experiment with zero trials"},
    {"sbf-nonmonotone", "SUP001", "verify a supply function that decreases"},
    {"stale-cache", "ADM002", "poison the admission engine's verdict cache"},
    {"hi-budget-underrun", "MCS001", "shrink a task's HI budget below C_lo"},
    {"forged-mode-switch", "MCS005",
     "record a LO->HI switch that kept LO backlog"},
};

/// First device with at least one reserved slot (preload > 0 guarantees one).
std::size_t busiest_device(const ExperimentArtifacts& a) {
  std::size_t best = 0;
  Slot best_used = 0;
  for (std::size_t d = 0; d < a.tables.size(); ++d) {
    const Slot used = a.tables[d].hyperperiod() - a.tables[d].free_slots();
    if (used > best_used) {
      best_used = used;
      best = d;
    }
  }
  return best;
}

/// Rebuilds device d's table from tampered raw slots.
void retable(ExperimentArtifacts& a, std::size_t d, std::vector<std::uint32_t> raw) {
  a.tables[d] = sched::TimeSlotTable::from_slots(std::move(raw));
}

/// First (device, vm) whose task set is non-empty.
std::pair<std::size_t, std::size_t> busiest_vm(const ExperimentArtifacts& a) {
  for (std::size_t d = 0; d < a.vm_tasks.size(); ++d)
    for (std::size_t v = 0; v < a.vm_tasks[d].size(); ++v)
      if (!a.vm_tasks[d][v].empty()) return {d, v};
  return {0, 0};
}

/// Applies the named corruption. Returns false for an unknown name.
bool apply_corruption(ExperimentArtifacts& a, const std::string& name) {
  const std::size_t d = busiest_device(a);
  auto raw = a.tables[d].raw();

  const auto first_reserved = [&]() -> std::size_t {
    for (std::size_t s = 0; s < raw.size(); ++s)
      if (raw[s] != sched::TimeSlotTable::kFree) return s;
    return raw.size();
  };
  const auto first_free = [&]() -> std::size_t {
    for (std::size_t s = 0; s < raw.size(); ++s)
      if (raw[s] == sched::TimeSlotTable::kFree) return s;
    return raw.size();
  };

  if (name == "steal-slot") {
    const std::size_t s = first_reserved();
    if (s == raw.size()) return false;
    raw[s] = sched::TimeSlotTable::kFree;
    retable(a, d, std::move(raw));
  } else if (name == "surplus-slot") {
    const std::size_t s = first_reserved();
    const std::size_t f = first_free();
    if (s == raw.size() || f == raw.size()) return false;
    raw[f] = raw[s];
    retable(a, d, std::move(raw));
  } else if (name == "alien-task") {
    const std::size_t f = first_free();
    if (f == raw.size()) return false;
    raw[f] = 0xdeadu;  // not a task id of the pre-defined set
    retable(a, d, std::move(raw));
  } else if (name == "truncate-table") {
    if (raw.size() < 2) return false;
    raw.pop_back();
    retable(a, d, std::move(raw));
  } else if (name == "theta-gt-pi") {
    auto& g = a.servers[d].front();
    g = sched::ServerParams{g.pi == 0 ? 10 : g.pi, (g.pi == 0 ? 10 : g.pi) + 5};
  } else if (name == "zero-slack") {
    // Budget every server to its full period: sum(Theta/Pi) >= 1 >= F/H,
    // so the slack c = F/H - sum(Theta/Pi) cannot be positive.
    if (a.servers[d].empty()) return false;
    for (auto& g : a.servers[d]) g = sched::ServerParams{1, 1};
  } else if (name == "starve-server") {
    const auto [dd, v] = busiest_vm(a);
    auto& g = a.servers[dd][v];
    g = sched::ServerParams{1000, 1};  // bandwidth 0.001 under a real load
  } else if (name == "drop-server") {
    if (a.servers[d].empty()) return false;
    a.servers[d].pop_back();
  } else if (name == "deadline-gt-period") {
    const auto [dd, v] = busiest_vm(a);
    auto tasks = a.vm_tasks[dd][v].tasks();
    tasks.front().deadline = 2 * tasks.front().period;
    a.vm_tasks[dd][v] = workload::TaskSet(std::move(tasks));
  } else if (name == "zero-wcet") {
    const auto [dd, v] = busiest_vm(a);
    auto tasks = a.vm_tasks[dd][v].tasks();
    tasks.front().wcet = 0;
    a.vm_tasks[dd][v] = workload::TaskSet(std::move(tasks));
  } else if (name == "unknown-device") {
    auto tasks = a.all.tasks();
    tasks.front().device = DeviceId{17};
    a.all = workload::TaskSet(std::move(tasks));
  } else if (name == "vm-overflow") {
    a.experiment.num_vms = 40;  // the 5x5 mesh places at most 16
  } else if (name == "vm-out-of-range") {
    auto tasks = a.all.tasks();
    tasks.front().vm = VmId{99};
    a.all = workload::TaskSet(std::move(tasks));
  } else if (name == "bad-util") {
    a.experiment.target_utilization = 1.7;
  } else if (name == "zero-trials") {
    a.experiment.trials = 0;
  } else if (name == "hi-budget-underrun") {
    const auto [dd, v] = busiest_vm(a);
    auto tasks = a.vm_tasks[dd][v].tasks();
    auto it = std::find_if(tasks.begin(), tasks.end(),
                           [](const auto& t) { return t.wcet >= 2; });
    if (it == tasks.end()) return false;
    it->criticality = workload::Criticality::kHi;
    it->wcet_hi = it->wcet - 1;  // inverts the C_lo <= C_hi order
    a.vm_tasks[dd][v] = workload::TaskSet(std::move(tasks));
  } else if (name != "sbf-nonmonotone" && name != "stale-cache" &&
             name != "forged-mode-switch") {
    // sbf-nonmonotone, stale-cache and forged-mode-switch are handled at
    // verification time.
    return false;
  }
  return true;
}


CliSpec make_spec() {
  CliSpec spec("statically verify the scheduling artifacts of one workload");
  spec.flag_int("vms", 4, "active VMs")
      .flag_double("util", 0.4, "per-device target utilization")
      .flag_double("preload", 0.7, "P-channel fraction")
      .flag_int("trials", 10, "declared experiment trials")
      .flag_int("min-jobs", 25, "declared jobs per task")
      .flag_int("seed", 42, "workload seed")
      .flag("faults", "none",
            "also verify this fault plan / resilience policy (RES checks)")
      .flag("checkpoint", "",
            "also verify this checkpoint journal/manifest pair (CKP checks)")
      .flag("system", "",
            "with --checkpoint: cross-check the journal fingerprint against "
            "the flags above for this architecture "
            "(legacy|rtxen|bv|ioguard); omit to skip the CKP002 check")
      .flag_switch("criticality",
                   "generate a mixed-criticality workload (safety tasks get "
                   "HI budgets), making the MCS admission checks non-vacuous")
      .flag_switch("json", "emit the report as JSON")
      .flag("corrupt", "", "inject a named corruption first")
      .flag_switch("list-corruptions", "list corruption names and exit");
  return spec;
}

/// Runs verification; on success `report_ok` distinguishes a clean report
/// from diagnostics at error severity (exit 1 vs 0, mapped in main).
Status run(const CliArgs& args, bool& report_ok) {
  report_ok = true;
  if (args.get_bool("list-corruptions")) {
    for (const auto& c : kCorruptions)
      std::cout << c.name << " -> " << c.expected_code << ": " << c.what
                << "\n";
    return OkStatus();
  }

  workload::CaseStudyConfig cfg;
  cfg.num_vms = static_cast<std::size_t>(args.get_int("vms"));
  cfg.target_utilization = args.get_double("util");
  cfg.preload_fraction = args.get_double("preload");
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  cfg.mixed_criticality = args.get_bool("criticality");
  const auto trials = static_cast<std::size_t>(args.get_int("trials"));
  const auto min_jobs = static_cast<std::size_t>(args.get_int("min-jobs"));
  IOGUARD_ASSIGN_OR_RETURN(const faults::FaultPlan plan,
                           faults::FaultPlan::parse(args.get("faults")));

  ExperimentArtifacts a =
      analysis::build_experiment_artifacts(cfg, trials, min_jobs);

  const std::string corrupt = args.get("corrupt");
  if (!corrupt.empty()) {
    bool known = false;
    for (const auto& c : kCorruptions) known |= (corrupt == c.name);
    if (!known || !apply_corruption(a, corrupt))
      return NotFoundError("unknown or inapplicable corruption '" + corrupt +
                           "' (see --list-corruptions)");
  }

  std::vector<analysis::DeviceArtifacts> devices;
  devices.reserve(a.tables.size());
  for (std::size_t d = 0; d < a.tables.size(); ++d)
    devices.push_back(analysis::DeviceArtifacts{
        &a.tables[d], &a.predefined[d], &a.servers[d], &a.vm_tasks[d]});

  analysis::Report report = analysis::verify_system(
      a.platform, a.experiment, a.all, devices);
  analysis::verify_resilience(plan, faults::ResilienceConfig{}, report);

  if (!args.get("checkpoint").empty()) {
    // CKP checks: a read-only scan of the journal/manifest pair. With
    // --system we can reconstruct the exact config string ioguard_cli
    // fingerprints, enabling the CKP002 cross-check; without it only the
    // structural checks (CKP001/003/004) run.
    std::uint64_t expected_fingerprint = 0;
    const std::string system_name = args.get("system");
    if (!system_name.empty()) {
      sys::SystemKind kind;
      if (system_name == "legacy") kind = sys::SystemKind::kLegacy;
      else if (system_name == "rtxen") kind = sys::SystemKind::kRtXen;
      else if (system_name == "bv") kind = sys::SystemKind::kBlueVisor;
      else if (system_name == "ioguard") kind = sys::SystemKind::kIoGuard;
      else
        return InvalidArgumentError("unknown system '" + system_name +
                                    "' (expected legacy|rtxen|bv|ioguard)");
      const double preload = kind == sys::SystemKind::kIoGuard
                                 ? cfg.preload_fraction
                                 : 0.0;
      expected_fingerprint = fnv1a64(sys::point_config_string(
          kind, cfg.num_vms, cfg.target_utilization, preload, trials,
          min_jobs, cfg.seed, plan, faults::ResilienceConfig{}));
    }
    analysis::verify_checkpoint(sys::inspect_checkpoint(args.get("checkpoint")),
                                expected_fingerprint, report);
  }

  // ADM checks: churn-replay every device's VM task sets through the
  // admission service engines. --corrupt=stale-cache poisons the memoizing
  // engine's Theorem 4 cache on every device (not just the busiest: at high
  // --preload the busiest device can have all its load in the predefined
  // table and no runtime VMs to churn), which ADM002 must catch.
  for (std::size_t d = 0; d < a.tables.size(); ++d) {
    analysis::ServiceCheckOptions service_options;
    service_options.poison_cache_for_testing = corrupt == "stale-cache";
    analysis::verify_service(a.tables[d], a.vm_tasks[d], service_options,
                             report);
  }

  // MCS checks: the dual-criticality admission regimes per device (vacuous
  // on the default single-criticality workload; --criticality makes them
  // real) plus a protocol audit of a canned ModeController episode, which
  // --corrupt=forged-mode-switch tampers with (MCS005 must catch it).
  core::ModeSwitchConfig mode_cfg;
  mode_cfg.enabled = true;
  mode_cfg.recovery_hysteresis_slots = 50;
  for (std::size_t d = 0; d < a.tables.size(); ++d)
    analysis::verify_mcs_admission(a.servers[d], a.vm_tasks[d],
                                   mode_cfg.hi_budget_factor, report);
  {
    core::ModeController ctl(cfg.num_vms, mode_cfg);
    std::vector<std::size_t> to_hi;
    std::vector<std::size_t> to_lo;
    ctl.note_budget_overrun(VmId{0}, 10);
    for (Slot s = 10; s <= Slot{10} + mode_cfg.recovery_hysteresis_slots;
         ++s) {
      to_hi.clear();
      to_lo.clear();
      ctl.advance(s, to_hi, to_lo);
      for (const std::size_t vm : to_hi)
        ctl.finalize_switch(vm, /*lo_pending=*/3, /*jobs_shed=*/3);
    }
    std::vector<core::ModeTransitionRecord> transitions = ctl.transitions();
    if (corrupt == "forged-mode-switch" && !transitions.empty())
      transitions.front().jobs_shed = 0;  // switch "kept" its LO backlog
    analysis::verify_mode_transitions(transitions, mode_cfg, report);
  }

  if (corrupt == "sbf-nonmonotone") {
    // Supply-shape corruption cannot be expressed through TimeSlotTable (its
    // API keeps F consistent), so probe the checker with a broken function.
    const sched::TableSupply supply(a.tables[busiest_device(a)]);
    analysis::verify_supply_function(
        [&](Slot t) { return t == 100 ? Slot{0} : supply.sbf(t); },
        supply.hyperperiod(), supply.free_per_period(), {}, report);
  }

  if (args.get_bool("json")) {
    report.render_json(std::cout);
  } else {
    report.render_text(std::cout);
  }
  report_ok = report.ok();
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  const CliSpec spec = make_spec();
  const auto args = spec.parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "error: " << args.status() << "\n\n"
              << spec.help_text(argc > 0 ? argv[0] : "ioguard_verify");
    return exit_code(args.status());
  }
  if (args->help_requested()) {
    std::cout << spec.help_text(args->program())
              << "exit status: 0 verified, 1 errors found, 2 usage error\n";
    return 0;
  }
  bool report_ok = true;
  const Status status = run(*args, report_ok);
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return exit_code(status);
  }
  return report_ok ? 0 : 1;
}
