// Cycle-level NoC exploration: measures request-path latency distributions
// on the 5x5 mesh as background load rises -- the on-chip interference that
// motivates I/O-GUARD's dedicated processor-hypervisor links (Sec. I/II).
//
//   $ ./build/examples/noc_explorer [--flit-loss=RATE]
#include <iostream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "faults/injector.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "noc/mesh.hpp"

using namespace ioguard;

namespace {

Status run(const CliArgs& args) {
  const double flit_loss = args.get_double("flit-loss");
  if (flit_loss < 0.0 || flit_loss > 1.0)
    return OutOfRangeError("--flit-loss must be in [0, 1]");
  faults::FaultPlan plan;
  if (flit_loss > 0.0) {
    plan.events.push_back(
        {faults::FaultKind::kLinkFlitLoss, flit_loss, /*param=*/0});
  }

  std::cout << "NoC explorer: 5x5 wormhole mesh, XY routing, credit flow "
               "control\n\n";

  TextTable table({"injection rate (pkt/node/100cy)", "delivered",
                   "probe p50 (cy)", "probe p95 (cy)", "probe max (cy)"});

  for (double rate : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    noc::MeshConfig cfg;
    noc::Mesh mesh(cfg);
    faults::FaultInjector injector(plan, /*trial_seed=*/17);
    if (!plan.empty()) mesh.set_fault_injector(&injector);
    Rng rng(17);
    SampleSet probe_lat;

    // The "I/O node" sits at (4,4); probes model I/O requests from (0,0).
    mesh.set_delivery_handler(mesh.node_at(4, 4),
                              [&](const noc::Packet& p, Cycle) {
                                if (p.kind == noc::PacketKind::kIoRequest)
                                  probe_lat.add(static_cast<double>(p.latency()));
                              });

    Cycle now = 0;
    const Cycle horizon = 60000;
    Cycle next_probe = 0;
    while (now < horizon) {
      // Background traffic: uniform-random pairs at the configured rate.
      if (rate > 0.0) {
        for (std::size_t n = 0; n < mesh.node_count(); ++n) {
          if (rng.bernoulli(rate / 100.0)) {
            noc::Packet bg;
            bg.src = NodeId{static_cast<std::uint32_t>(n)};
            bg.dst = NodeId{static_cast<std::uint32_t>(rng.index(mesh.node_count()))};
            bg.kind = noc::PacketKind::kBackground;
            bg.payload_bytes = 128;
            mesh.send(bg, now);
          }
        }
      }
      if (now >= next_probe) {
        noc::Packet probe;
        probe.src = mesh.node_at(0, 0);
        probe.dst = mesh.node_at(4, 4);
        probe.kind = noc::PacketKind::kIoRequest;
        probe.payload_bytes = 32;
        mesh.send(probe, now);
        next_probe = now + 500;
      }
      mesh.tick(now++);
    }

    if (!plan.empty())
      std::cout << "rate " << fmt_double(rate, 2) << ": "
                << mesh.packets_dropped() << " packets eaten by flit loss\n";
    table.add(fmt_double(rate, 2), mesh.packets_delivered(),
              probe_lat.empty() ? std::string("-")
                                : fmt_double(probe_lat.percentile(50), 0),
              probe_lat.empty() ? std::string("-")
                                : fmt_double(probe_lat.percentile(95), 0),
              probe_lat.empty() ? std::string("-")
                                : fmt_double(probe_lat.max(), 0));
  }
  table.render(std::cout);

  noc::MeshConfig cfg;
  noc::Mesh mesh(cfg);
  std::cout << "\nzero-load model check: (0,0)->(4,4), 32 B payload: "
            << mesh.zero_load_latency(mesh.node_at(0, 0), mesh.node_at(4, 4), 32)
            << " cycles predicted\n"
            << "(I/O-GUARD replaces this shared path with a dedicated link "
               "of ~4 cycles + bounded translation)\n";
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  CliSpec spec("measure request-path latency on the mesh under rising load");
  spec.flag_double("flit-loss", 0.0,
                   "per-packet NoC loss probability (fault injection)");
  const auto args = spec.parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "error: " << args.status() << "\n\n"
              << spec.help_text(argc > 0 ? argv[0] : "noc_explorer");
    return exit_code(args.status());
  }
  if (args->help_requested()) {
    std::cout << spec.help_text(args->program());
    return 0;
  }
  const Status status = run(*args);
  if (!status.ok()) std::cerr << "error: " << status << "\n";
  return exit_code(status);
}
