// Quickstart: build an I/O-GUARD hypervisor for a small workload, submit
// run-time I/O jobs, and watch the two-layer scheduler execute them.
//
//   $ ./build/examples/quickstart [--jobs=N] [--telemetry-out=DIR]
//         [--checkpoint=FILE [--resume]]
//
// Walks through the public API end to end:
//   1. describe I/O tasks (workload::TaskSet / CaseStudyWorkload),
//   2. let the design layer build the Time Slot Table and periodic servers,
//   3. run the slot-level hypervisor and collect completions,
//   4. fan a batch of trials out over worker threads (--jobs=N; results are
//      identical for any N) under crash-safe supervision when --checkpoint
//      is given (SIGINT/SIGTERM drain gracefully; --resume restores
//      finished trials from the journal),
//   5. (with --telemetry-out) run one instrumented trial and export the
//      telemetry artifacts: trace.perfetto.json (open in ui.perfetto.dev),
//      metrics.prom (Prometheus text exposition) and summary.json.
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/checksum.hpp"
#include "common/cli.hpp"
#include "common/interrupt.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "core/hypervisor.hpp"
#include "system/checkpoint.hpp"
#include "system/parallel.hpp"
#include "system/runner.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/spans.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

using namespace ioguard;

namespace {

CliSpec make_spec() {
  CliSpec spec("end-to-end tour of the public API on a small workload");
  spec.flag_int("jobs", 0, "batch worker threads; 0 = auto")
      .flag("checkpoint", "",
            "journal each finished batch trial to this file (crash-safe)")
      .flag_switch("resume",
                   "restore finished batch trials from --checkpoint")
      .flag("telemetry-out", "",
            "run one instrumented trial and write trace.perfetto.json, "
            "metrics.prom and summary.json to this directory")
      .flag("flight-recorder", "",
            "on the instrumented trial, dump trace + scheduler state to this "
            "directory whenever a deadline miss or fault recovery fires")
      .flag_switch("profile",
                   "collect busy/stall/quiescent cycle attribution on the "
                   "instrumented trial");
  return spec;
}

Status run(const CliArgs& args) {
  std::cout << "I/O-GUARD quickstart\n====================\n\n";

  // 1. A small automotive workload: 4 VMs, 60% target utilization per
  //    device, 40% of tasks pre-loaded into the P-channel.
  workload::CaseStudyConfig wcfg;
  wcfg.num_vms = 4;
  wcfg.target_utilization = 0.6;
  wcfg.preload_fraction = 0.4;
  wcfg.seed = 1;
  const auto wl = workload::build_case_study(wcfg);

  std::cout << "workload: " << wl.tasks.size() << " I/O tasks ("
            << wl.predefined().size() << " pre-defined, "
            << wl.runtime().size() << " run-time), utilization "
            << fmt_double(wl.tasks.utilization(), 2) << " across "
            << wl.tasks.devices().size() << " devices\n\n";

  // 2. Build the hypervisor: per device this constructs the Time Slot Table
  //    (offline slot-EDF) and synthesizes periodic servers via Theorems 2/4.
  core::HypervisorConfig hcfg;
  hcfg.num_vms = wcfg.num_vms;
  core::Hypervisor hyp(wl, hcfg);

  TextTable design({"device", "H", "F", "table", "servers (Pi,Theta)"});
  for (const auto& d : hyp.designs()) {
    std::string servers;
    for (const auto& s : d.servers) {
      if (!servers.empty()) servers += " ";
      servers += "(" + std::to_string(s.pi) + "," + std::to_string(s.theta) + ")";
    }
    design.add(std::string(d.spec.name), d.hyperperiod, d.free_slots,
               std::string(d.table_feasible && d.servers_feasible ? "admitted"
                                                                  : "fallback"),
               servers);
  }
  design.render(std::cout);
  std::cout << "fully admitted: " << (hyp.fully_admitted() ? "yes" : "no")
            << "\n\n";

  // 3. Drive it: release the run-time jobs of the first 50 ms and tick the
  //    hypervisor slot by slot (1 slot = 10 us).
  workload::ArrivalConfig acfg;
  acfg.horizon = 5000;
  acfg.seed = 7;
  const auto trace = workload::generate_trace(wl.runtime(), acfg);

  std::vector<iodev::Completion> completions;
  std::size_t next = 0;
  std::size_t submitted = 0;
  for (Slot now = 0; now < acfg.horizon; ++now) {
    while (next < trace.size() && trace[next].release <= now) {
      if (hyp.submit(trace[next], now)) ++submitted;
      ++next;
    }
    hyp.tick_slot(now, completions);
  }

  std::size_t on_time = 0;
  for (const auto& c : completions)
    if (!c.missed()) ++on_time;

  std::cout << "submitted " << submitted << " run-time jobs; "
            << completions.size() << " completions (P+R channel), " << on_time
            << " on time, " << completions.size() - on_time << " late, "
            << hyp.dropped_jobs() << " dropped\n";

  const auto& eth = hyp.manager(DeviceId{0});
  std::cout << "ethernet manager: " << eth.busy_slots() << " busy slots, "
            << eth.runtime_jobs_completed() << " R-channel jobs, "
            << eth.pchannel().jobs_completed() << " P-channel jobs\n";

  // 4. Batch evaluation: the same workload, 8 independent trials fanned out
  //    over a thread pool. Per-trial seeds come from mix_seed and the merge
  //    happens in trial-index order, so the aggregate below is bit-identical
  //    whether --jobs is 1 or 16 -- and whether the batch ran in one piece
  //    or was interrupted and resumed from a --checkpoint journal.
  {
    const auto jobs = static_cast<std::size_t>(args.get_int("jobs"));
    const std::string checkpoint_path = args.get("checkpoint");
    const bool resume = args.get_bool("resume");
    if (resume && checkpoint_path.empty())
      return InvalidArgumentError("--resume requires --checkpoint=PATH");
    sys::ParallelRunner runner(jobs);
    sys::BatchTiming timing;
    const std::size_t batch_trials = 8;

    std::unique_ptr<sys::CheckpointJournal> journal;
    if (!checkpoint_path.empty()) {
      sys::CheckpointMeta meta;
      meta.config_echo = "quickstart batch vms=" +
                         std::to_string(wcfg.num_vms) +
                         " trials=" + std::to_string(batch_trials) +
                         " seed=" + std::to_string(wcfg.seed);
      meta.fingerprint = fnv1a64(meta.config_echo);
      meta.planned_trials = batch_trials;
      IOGUARD_ASSIGN_OR_RETURN(
          journal, sys::CheckpointJournal::open(checkpoint_path, meta, resume));
      if (resume)
        std::cout << "\nresuming batch: " << journal->loaded()
                  << " journaled trial record(s)\n";
    }

    InterruptGuard interrupt_guard;
    sys::SupervisionPolicy policy;
    policy.stop = InterruptGuard::flag();
    policy.journal = journal.get();
    policy.point_key = sys::checkpoint_point_key(
        sys::SystemKind::kIoGuard, wcfg.preload_fraction, wcfg.num_vms,
        wcfg.target_utilization);

    const sys::BatchResult batch = runner.run_supervised(
        batch_trials,
        [&](std::size_t t) {
          sys::TrialConfig tc;
          tc.kind = sys::SystemKind::kIoGuard;
          tc.workload = wcfg;
          tc.min_jobs_per_task = 10;
          tc.trial_seed = mix_seed(wcfg.seed, /*stream=*/0, t);
          return tc;
        },
        policy, /*metrics=*/nullptr, &timing);
    IOGUARD_RETURN_IF_ERROR(batch.journal_error);

    std::size_t batch_successes = 0;
    for (std::size_t t = 0; t < batch.results.size(); ++t) {
      if (batch.outcomes[t] == sys::TrialOutcome::kAbandoned ||
          batch.outcomes[t] == sys::TrialOutcome::kSkipped)
        continue;
      if (batch.results[t].success()) ++batch_successes;
    }
    std::cout << "\nbatch of " << batch_trials << " trials on "
              << runner.jobs() << " worker(s): " << batch_successes
              << " successes, " << fmt_double(timing.trials_per_second(), 1)
              << " trials/s, speedup "
              << fmt_double(timing.speedup_estimate(), 2)
              << "x over sequential\n";
    if (journal)
      std::cout << "checkpoint: " << batch.executed() << " executed, "
                << batch.restored << " restored\n";
    if (batch.interrupted)
      return CancelledError(
          "batch interrupted" +
          std::string(journal ? "; re-run with --resume to continue" : ""));
  }

  // 5. Telemetry export: run one fully instrumented trial through the system
  //    runner and write the three artifacts. Off by default -- the plain
  //    quickstart run records nothing.
  if (!args.get("telemetry-out").empty()) {
    const std::filesystem::path dir = args.get("telemetry-out");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
      return UnavailableError("--telemetry-out=" + dir.string() + ": " +
                              ec.message());

    const std::string flight_dir = args.get("flight-recorder");
    if (!flight_dir.empty()) {
      std::filesystem::create_directories(flight_dir, ec);
      if (ec)
        return UnavailableError("--flight-recorder=" + flight_dir + ": " +
                                ec.message());
    }

    core::EventTrace events(1 << 20);
    telemetry::MetricsRegistry metrics;
    sys::TrialConfig tc;
    tc.kind = sys::SystemKind::kIoGuard;
    tc.workload = wcfg;
    tc.min_jobs_per_task = 10;
    tc.collect_response_times = true;
    tc.collect_stage_latencies = true;
    tc.collect_jitter = true;
    tc.collect_profile = args.get_bool("profile");
    tc.flight_dir = flight_dir;
    tc.trace = &events;
    tc.metrics = &metrics;
    auto result = sys::run_trial(tc);

    // Publish atomically (temp file + rename): readers never observe a
    // torn artifact, even if this process dies mid-write.
    {
      std::vector<telemetry::ProfileCounterTrack> counters;
      for (const sys::ComponentProfile& c : result.profile)
        counters.push_back({c.name, c.busy_slots, c.stall_slots,
                            c.quiescent_slots});
      AtomicFileWriter out(dir / "trace.perfetto.json");
      telemetry::write_perfetto_json(out.stream(), events, {}, counters);
      IOGUARD_RETURN_IF_ERROR(out.commit());
    }
    {
      AtomicFileWriter out(dir / "metrics.prom");
      telemetry::write_prometheus(out.stream(), metrics);
      IOGUARD_RETURN_IF_ERROR(out.commit());
    }
    {
      AtomicFileWriter out(dir / "summary.json");
      sys::write_trial_summary_json(out.stream(), tc, result);
      IOGUARD_RETURN_IF_ERROR(out.commit());
    }

    std::cout << "\ninstrumented trial: " << events.total_recorded()
              << " trace events over " << result.horizon << " slots\n";
    if (!flight_dir.empty())
      std::cout << "flight recorder: " << result.flight_dumps
                << " dump(s) in " << flight_dir << "\n";
    if (tc.collect_profile) {
      TextTable profile_table(
          {"component", "busy", "stall", "quiescent", "total"});
      for (const sys::ComponentProfile& c : result.profile)
        profile_table.add(c.name, c.busy_slots, c.stall_slots,
                          c.quiescent_slots, c.total_slots());
      profile_table.render(std::cout);
    }
    auto breakdown = telemetry::fold_stages(telemetry::collect_spans(events));
    telemetry::print_stage_breakdown(std::cout, breakdown);
    std::cout << "telemetry written to " << dir.string()
              << "/{trace.perfetto.json, metrics.prom, summary.json}\n"
              << "open trace.perfetto.json in https://ui.perfetto.dev\n";
  }
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  const CliSpec spec = make_spec();
  const auto args = spec.parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "error: " << args.status() << "\n\n"
              << spec.help_text(argc > 0 ? argv[0] : "quickstart");
    return exit_code(args.status());
  }
  if (args->help_requested()) {
    std::cout << spec.help_text(args->program());
    return 0;
  }
  const Status status = run(*args);
  if (!status.ok()) std::cerr << "error: " << status << "\n";
  return exit_code(status);
}
