// Unit tests for the I/O-GUARD hypervisor micro-architecture: priority
// queue, I/O pools / L-Sched, G-Sched budgets, P-channel and the assembled
// virtualization manager.
#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "core/gsched.hpp"
#include "core/hypervisor.hpp"
#include "core/io_pool.hpp"
#include "core/pchannel.hpp"
#include "core/priority_queue.hpp"
#include "core/translator.hpp"
#include "core/vmanager.hpp"

namespace ioguard::core {
namespace {

workload::Job make_job(std::uint32_t id, Slot release, Slot deadline,
                       Slot wcet, std::uint32_t vm = 0,
                       std::uint32_t dev = 0) {
  workload::Job j;
  j.id = JobId{id};
  j.task = TaskId{id};
  j.vm = VmId{vm};
  j.device = DeviceId{dev};
  j.release = release;
  j.absolute_deadline = deadline;
  j.wcet = wcet;
  j.payload_bytes = 32;
  return j;
}

// ------------------------------------------------------------ priority queue

TEST(HwPriorityQueue, EarliestDeadlineWins) {
  HwPriorityQueue q(8);
  auto h1 = q.insert(make_job(0, 0, 100, 1));
  auto h2 = q.insert(make_job(1, 0, 50, 1));
  auto h3 = q.insert(make_job(2, 0, 75, 1));
  ASSERT_TRUE(h1 && h2 && h3);
  EXPECT_EQ(q.peek_earliest().value(), *h2);
  q.remove(*h2);
  EXPECT_EQ(q.peek_earliest().value(), *h3);
}

TEST(HwPriorityQueue, TiesBreakByReleaseThenJobId) {
  HwPriorityQueue q(4);
  auto a = q.insert(make_job(5, 10, 100, 1));
  auto b = q.insert(make_job(3, 10, 100, 1));  // same deadline+release, lower id
  ASSERT_TRUE(a && b);
  EXPECT_EQ(q.peek_earliest().value(), *b);
}

TEST(HwPriorityQueue, CapacityBackPressure) {
  HwPriorityQueue q(2);
  EXPECT_TRUE(q.insert(make_job(0, 0, 10, 1)).has_value());
  EXPECT_TRUE(q.insert(make_job(1, 0, 10, 1)).has_value());
  EXPECT_FALSE(q.insert(make_job(2, 0, 10, 1)).has_value());
  EXPECT_TRUE(q.full());
}

TEST(HwPriorityQueue, RandomAccessUpdateAndConsume) {
  HwPriorityQueue q(4);
  auto h = q.insert(make_job(0, 0, 40, 3)).value();
  EXPECT_EQ(q.params(h).remaining, 3u);
  EXPECT_FALSE(q.consume_one_slot(h));
  EXPECT_FALSE(q.consume_one_slot(h));
  EXPECT_EQ(q.params(h).remaining, 1u);
  EXPECT_TRUE(q.consume_one_slot(h));  // reached zero
  q.remove(h);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW((void)q.params(h), CheckFailure);
}

TEST(HwPriorityQueue, SetDeadlineReprioritizes) {
  HwPriorityQueue q(4);
  auto a = q.insert(make_job(0, 0, 100, 1)).value();
  auto b = q.insert(make_job(1, 0, 200, 1)).value();
  EXPECT_EQ(q.peek_earliest().value(), a);
  q.set_deadline(b, 50);  // random-access parameter write
  EXPECT_EQ(q.peek_earliest().value(), b);
}

TEST(HwPriorityQueue, HandleReuseAfterRemove) {
  HwPriorityQueue q(2);
  auto a = q.insert(make_job(0, 0, 10, 1)).value();
  q.remove(a);
  auto b = q.insert(make_job(1, 0, 20, 1));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.live_handles().size(), 1u);
}

TEST(HwPriorityQueue, ComparatorDepthIsLog2) {
  EXPECT_EQ(HwPriorityQueue(1).comparator_depth(), 0u);
  EXPECT_EQ(HwPriorityQueue(2).comparator_depth(), 1u);
  EXPECT_EQ(HwPriorityQueue(8).comparator_depth(), 3u);
  EXPECT_EQ(HwPriorityQueue(9).comparator_depth(), 4u);
}

// ------------------------------------------------------------------- I/O pool

TEST(IoPool, ShadowTracksEarliestDeadline) {
  IoPool pool(VmId{0}, 4);
  EXPECT_FALSE(pool.shadow().valid);
  ASSERT_TRUE(pool.submit(make_job(0, 0, 100, 2)));
  ASSERT_TRUE(pool.submit(make_job(1, 0, 60, 2)));
  pool.refresh_shadow();
  EXPECT_TRUE(pool.shadow().valid);
  EXPECT_EQ(pool.shadow().absolute_deadline, 60u);
}

TEST(IoPool, ExecuteShadowConsumesAndCompletes) {
  IoPool pool(VmId{0}, 4, /*dispatch_overhead_slots=*/0);
  ASSERT_TRUE(pool.submit(make_job(0, 0, 30, 2)));
  pool.refresh_shadow();
  EXPECT_FALSE(pool.execute_shadow_slot().has_value());  // 1 of 2 slots
  pool.refresh_shadow();
  auto done = pool.execute_shadow_slot();
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->job, JobId{0});
  EXPECT_FALSE(pool.has_pending());
}

TEST(IoPool, RejectsWrongVmAndCountsDrops) {
  IoPool pool(VmId{1}, 1);
  EXPECT_THROW((void)pool.submit(make_job(0, 0, 10, 1, /*vm=*/0)),
               CheckFailure);
  EXPECT_TRUE(pool.submit(make_job(1, 0, 10, 1, 1)));
  EXPECT_FALSE(pool.submit(make_job(2, 0, 10, 1, 1)));  // full
  EXPECT_EQ(pool.dropped(), 1u);
}

// -------------------------------------------------------------------- G-Sched

TEST(GSched, BudgetsEnforcedWithSlackReclamation) {
  // One VM, Pi = 4, Theta = 2: two budgeted grants per period; the other
  // two slots (which would otherwise idle) arrive as slack grants.
  GSched g({{4, 2}});
  std::vector<ShadowRegister> shadows(1);
  shadows[0].valid = true;
  shadows[0].absolute_deadline = 1000;

  int grants = 0;
  for (Slot t = 0; t < 4; ++t)
    if (g.pick(t, shadows)) ++grants;
  EXPECT_EQ(grants, 4);
  EXPECT_EQ(g.slack_granted(0), 2u);  // only 2 consumed budget
  EXPECT_EQ(g.budget(0), 0u);
  // Next period replenishes the budget.
  (void)g.pick(4, shadows);
  EXPECT_EQ(g.budget(0), 1u);
}

TEST(GSched, SlackGoesToEarliestDeadlineAcrossVms) {
  // VM0 exhausts its budget; VM1 has none pending. Further slots flow to
  // VM0 as slack instead of idling (work-conserving).
  GSched g({{8, 1}, {8, 1}});
  std::vector<ShadowRegister> shadows(2);
  shadows[0].valid = true;
  shadows[0].absolute_deadline = 100;
  EXPECT_EQ(g.pick(0, shadows).value(), 0u);  // budgeted
  EXPECT_EQ(g.pick(1, shadows).value(), 0u);  // slack
  EXPECT_EQ(g.slack_granted(0), 1u);
  EXPECT_EQ(g.slack_granted(1), 0u);
}

TEST(GSched, ServerEdfPrefersEarlierReplenishmentDeadline) {
  // VM0: Pi 10 (deadline 10), VM1: Pi 4 (deadline 4): server EDF picks VM1
  // even though VM0's job deadline is earlier.
  GSched g({{10, 5}, {4, 2}}, GschedPolicy::kServerEdf);
  std::vector<ShadowRegister> shadows(2);
  shadows[0].valid = true;
  shadows[0].absolute_deadline = 5;
  shadows[1].valid = true;
  shadows[1].absolute_deadline = 500;
  EXPECT_EQ(g.pick(0, shadows).value(), 1u);
}

TEST(GSched, JobEdfPolicyPicksEarliestJob) {
  GSched g({{10, 5}, {4, 2}}, GschedPolicy::kJobEdf);
  std::vector<ShadowRegister> shadows(2);
  shadows[0].valid = true;
  shadows[0].absolute_deadline = 5;
  shadows[1].valid = true;
  shadows[1].absolute_deadline = 500;
  EXPECT_EQ(g.pick(0, shadows).value(), 0u);
}

TEST(GSched, ExhaustedBudgetFallsBackToOtherVm) {
  GSched g({{4, 1}, {4, 3}}, GschedPolicy::kJobEdf);
  std::vector<ShadowRegister> shadows(2);
  shadows[0].valid = true;
  shadows[0].absolute_deadline = 10;  // most urgent
  shadows[1].valid = true;
  shadows[1].absolute_deadline = 20;
  EXPECT_EQ(g.pick(0, shadows).value(), 0u);  // grant 1: vm0 urgent
  EXPECT_EQ(g.pick(1, shadows).value(), 1u);  // vm0 budget gone, vm1 budgeted
  EXPECT_EQ(g.budget(0), 0u);
  EXPECT_EQ(g.slack_granted(1), 0u);
}

TEST(GSched, NoBudgetPolicyIgnoresServers) {
  GSched g({{4, 0}, {4, 0}}, GschedPolicy::kGlobalEdfNoBudget);
  std::vector<ShadowRegister> shadows(2);
  shadows[0].valid = true;
  shadows[0].absolute_deadline = 10;
  for (Slot t = 0; t < 10; ++t) EXPECT_EQ(g.pick(t, shadows).value(), 0u);
}

TEST(GSched, IdleWhenNoShadowValid) {
  GSched g({{4, 2}});
  std::vector<ShadowRegister> shadows(1);
  EXPECT_FALSE(g.pick(0, shadows).has_value());
  EXPECT_EQ(g.budget(0), 2u);  // nothing consumed
}

// ------------------------------------------------------------------ P-channel

workload::IoTaskSpec predefined(std::uint32_t id, Slot t, Slot c,
                                Slot offset = 0) {
  workload::IoTaskSpec s;
  s.id = TaskId{id};
  s.vm = VmId{0};
  s.device = DeviceId{0};
  s.name = "p" + std::to_string(id);
  s.kind = workload::TaskKind::kPredefined;
  s.period = t;
  s.wcet = c;
  s.deadline = t;
  s.offset = offset;
  s.payload_bytes = 16;
  return s;
}

TEST(PChannel, ExecutesTableReservedSlotsAndCompletesJobs) {
  workload::TaskSet ts;
  ts.add(predefined(0, 10, 3));
  auto build = sched::build_time_slot_table(ts);
  ASSERT_TRUE(build.feasible);
  PChannel pch(ts, build.table);

  std::vector<iodev::Completion> done;
  for (Slot s = 0; s < 100; ++s) {
    bool used = false;
    if (auto c = pch.execute_slot(s, used)) done.push_back(*c);
  }
  EXPECT_EQ(done.size(), 10u);
  EXPECT_EQ(pch.jobs_completed(), 10u);
  EXPECT_EQ(pch.busy_slots(), 30u);
  for (const auto& c : done) EXPECT_FALSE(c.missed());
}

TEST(PChannel, FreeSlotsReportedFree) {
  workload::TaskSet ts;
  ts.add(predefined(0, 10, 2));
  auto build = sched::build_time_slot_table(ts);
  ASSERT_TRUE(build.feasible);
  PChannel pch(ts, build.table);
  int free_count = 0;
  for (Slot s = 0; s < 10; ++s)
    if (pch.slot_is_free(s)) ++free_count;
  EXPECT_EQ(free_count, 8);
}

// ----------------------------------------------------------------- translator

TEST(Translator, NeverExceedsWcetBound) {
  TranslatorConfig cfg;
  cfg.wcet_cycles = 40;
  cfg.best_case_cycles = 12;
  RtTranslator tr(cfg, 5);
  for (int i = 0; i < 10000; ++i) {
    const Cycle c = tr.translate();
    EXPECT_GE(c, 12u);
    EXPECT_LE(c, 40u);
  }
  EXPECT_EQ(tr.translations(), 10000u);
  EXPECT_LE(tr.worst_observed(), tr.wcet());
}

TEST(Translator, RejectsInvertedBounds) {
  TranslatorConfig cfg;
  cfg.wcet_cycles = 5;
  cfg.best_case_cycles = 10;
  EXPECT_THROW(RtTranslator bad(cfg), CheckFailure);
}

// ---------------------------------------------------- virtualization manager

VirtManager make_manager(std::size_t num_vms,
                         GschedPolicy policy = GschedPolicy::kServerEdf) {
  workload::TaskSet empty_predef;
  auto build = sched::build_time_slot_table(empty_predef);
  std::vector<sched::ServerParams> servers(num_vms, {4, 1});
  VManagerConfig cfg;
  cfg.num_vms = num_vms;
  cfg.pool_capacity = 8;
  cfg.policy = policy;
  cfg.dispatch_overhead_slots = 0;  // slot-exact expectations below
  return VirtManager(iodev::device_spec(iodev::DeviceKind::kSpi),
                     empty_predef, build.table, servers, cfg);
}

TEST(VirtManager, RuntimeJobRunsToCompletion) {
  auto vm = make_manager(2);
  ASSERT_TRUE(vm.submit(make_job(0, 0, 50, 3, /*vm=*/1), 0));
  std::vector<iodev::Completion> done;
  for (Slot s = 0; s < 40; ++s) vm.tick_slot(s, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].job.id, JobId{0});
  EXPECT_EQ(done[0].job.vm, VmId{1});
  EXPECT_FALSE(done[0].missed());
  EXPECT_EQ(vm.runtime_jobs_completed(), 1u);
}

TEST(VirtManager, PreemptionBetweenVms) {
  // VM0 submits a long job; VM1 then submits an urgent one. With job-EDF
  // and no budget limits the urgent job overtakes at slot granularity --
  // impossible on a FIFO controller.
  auto vm = make_manager(2, GschedPolicy::kGlobalEdfNoBudget);
  ASSERT_TRUE(vm.submit(make_job(0, 0, 1000, 20, 0), 0));
  std::vector<iodev::Completion> done;
  for (Slot s = 0; s < 5; ++s) vm.tick_slot(s, done);
  ASSERT_TRUE(vm.submit(make_job(1, 5, 15, 3, 1), 5));
  for (Slot s = 5; s < 40; ++s) vm.tick_slot(s, done);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].job.id, JobId{1});  // urgent job finished first
  EXPECT_FALSE(done[0].missed());
  EXPECT_EQ(done[1].job.id, JobId{0});
}

TEST(VirtManager, PChannelHasPriorityOverRChannel) {
  workload::TaskSet predef;
  predef.add(predefined(7, 4, 2));  // slots 0,1 of every 4 reserved
  auto build = sched::build_time_slot_table(predef);
  ASSERT_TRUE(build.feasible);
  std::vector<sched::ServerParams> servers(1, {4, 2});
  VManagerConfig cfg;
  cfg.num_vms = 1;
  cfg.dispatch_overhead_slots = 0;  // slot-exact expectations below
  VirtManager vm(iodev::device_spec(iodev::DeviceKind::kSpi), predef,
                 build.table, servers, cfg);

  ASSERT_TRUE(vm.submit(make_job(0, 0, 100, 4, 0), 0));
  std::vector<iodev::Completion> done;
  for (Slot s = 0; s < 8; ++s) vm.tick_slot(s, done);
  // Runtime job only got the free slots 2,3,6,7.
  ASSERT_GE(done.size(), 1u);
  bool found_runtime = false;
  for (const auto& c : done) {
    if (c.job.task == TaskId{0}) {  // the runtime job (task 7 is pre-defined)
      found_runtime = true;
      // Four slots of work through a half-reserved table: the last needed
      // free slot lies in the second table period (slots 7 or 8 depending
      // on where spread placement put the reservations).
      EXPECT_GE(c.completed_at, 7u);
      EXPECT_LE(c.completed_at, 8u);
    }
  }
  EXPECT_TRUE(found_runtime);
  EXPECT_EQ(vm.pchannel().busy_slots(), 4u);  // slots 0,1,4,5
}

TEST(VirtManager, PoolIsolationUnderOverflow) {
  // VM0 floods its pool; VM1's job still completes on time.
  auto vm = make_manager(2, GschedPolicy::kServerEdf);
  for (std::uint32_t i = 0; i < 50; ++i)
    (void)vm.submit(make_job(i, 0, 100000, 10, 0), 0);
  EXPECT_GT(vm.dropped_jobs(), 0u);
  ASSERT_TRUE(vm.submit(make_job(100, 0, 40, 2, 1), 0));
  std::vector<iodev::Completion> done;
  for (Slot s = 0; s < 40; ++s) vm.tick_slot(s, done);
  bool vm1_on_time = false;
  for (const auto& c : done)
    if (c.job.vm == VmId{1} && !c.missed()) vm1_on_time = true;
  EXPECT_TRUE(vm1_on_time);
}

// ----------------------------------------------------------------- hypervisor

TEST(Hypervisor, BuildsFromCaseStudyWorkloadAndRoutesByDevice) {
  workload::CaseStudyConfig wcfg;
  wcfg.num_vms = 4;
  wcfg.target_utilization = 0.5;
  wcfg.preload_fraction = 0.4;
  const auto wl = workload::build_case_study(wcfg);

  HypervisorConfig hcfg;
  hcfg.num_vms = 4;
  Hypervisor hyp(wl, hcfg);
  EXPECT_EQ(hyp.device_count(), workload::kCaseStudyDeviceCount);
  ASSERT_EQ(hyp.designs().size(), workload::kCaseStudyDeviceCount);
  for (const auto& d : hyp.designs()) {
    EXPECT_TRUE(d.table_feasible) << d.note;
    EXPECT_GT(d.hyperperiod, 0u);
  }

  // Submit one runtime job per device and watch completions route back.
  std::vector<iodev::Completion> done;
  std::uint32_t id = 1000;
  for (std::uint32_t d = 0; d < workload::kCaseStudyDeviceCount; ++d)
    ASSERT_TRUE(hyp.submit(make_job(id++, 0, 5000, 2, 0, d), 0));
  for (Slot s = 0; s < 5000 && done.size() < 4; ++s) hyp.tick_slot(s, done);
  std::set<std::uint32_t> devices_seen;
  for (const auto& c : done)
    if (c.job.id.value >= 1000) devices_seen.insert(c.job.device.value);
  EXPECT_EQ(devices_seen.size(), 4u);
}

TEST(Hypervisor, LightLoadIsFullyAdmitted) {
  workload::CaseStudyConfig wcfg;
  wcfg.num_vms = 4;
  wcfg.target_utilization = 0.45;
  wcfg.preload_fraction = 0.4;
  const auto wl = workload::build_case_study(wcfg);
  HypervisorConfig hcfg;
  hcfg.num_vms = 4;
  Hypervisor hyp(wl, hcfg);
  EXPECT_TRUE(hyp.fully_admitted());
}

}  // namespace
}  // namespace ioguard::core
