// Determinism contract of the parallel experiment runner (DESIGN.md):
// for a fixed config and base seed, every aggregate -- TrialResult fields,
// merged MetricsRegistry, exported Prometheus text -- is bit-identical for
// any --jobs value. These tests run the same batches at jobs=1 (inline,
// exactly the old sequential loop) and jobs=4 and compare outputs
// field-by-field and byte-by-byte.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "system/experiment.hpp"
#include "system/parallel.hpp"
#include "telemetry/prometheus.hpp"

namespace ioguard::sys {
namespace {

TrialConfig small_trial(std::size_t t, SystemKind kind,
                        bool collect_everything = false) {
  TrialConfig tc;
  tc.kind = kind;
  tc.workload.num_vms = 4;
  tc.workload.target_utilization = 0.8;
  tc.workload.preload_fraction = kind == SystemKind::kIoGuard ? 0.5 : 0.0;
  tc.min_jobs_per_task = 8;
  tc.trial_seed = mix_seed(42, sweep_point_key(4, 0.8), t);
  tc.collect_response_times = collect_everything;
  tc.collect_stage_latencies = collect_everything;
  return tc;
}

void expect_identical(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.jobs_counted, b.jobs_counted);
  EXPECT_EQ(a.jobs_on_time, b.jobs_on_time);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.critical_misses, b.critical_misses);
  EXPECT_EQ(a.dropped, b.dropped);
  // Bitwise equality, not EXPECT_DOUBLE_EQ: same trial, same arithmetic.
  EXPECT_EQ(a.goodput_bytes_per_s, b.goodput_bytes_per_s);
  EXPECT_EQ(a.device_busy_frac, b.device_busy_frac);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.misses_by_task, b.misses_by_task);
  EXPECT_EQ(a.response_slots.count(), b.response_slots.count());
  EXPECT_EQ(a.stage_issue.count(), b.stage_issue.count());
  EXPECT_EQ(a.stage_issue.mean(), b.stage_issue.mean());
  EXPECT_EQ(a.stage_backend.count(), b.stage_backend.count());
  EXPECT_EQ(a.stage_backend.mean(), b.stage_backend.mean());
}

TEST(ParallelRunner, TrialResultsIdenticalAcrossJobCounts) {
  for (SystemKind kind : {SystemKind::kLegacy, SystemKind::kIoGuard}) {
    ParallelRunner seq(1), par(4);
    ASSERT_EQ(seq.jobs(), 1u);
    ASSERT_EQ(par.jobs(), 4u);
    const std::size_t trials = 6;
    const auto make = [&](std::size_t t) { return small_trial(t, kind); };
    const auto a = seq.run_trials(trials, make);
    const auto b = par.run_trials(trials, make);
    ASSERT_EQ(a.size(), trials);
    ASSERT_EQ(b.size(), trials);
    for (std::size_t t = 0; t < trials; ++t) {
      SCOPED_TRACE("trial " + std::to_string(t));
      expect_identical(a[t], b[t]);
    }
  }
}

TEST(ParallelRunner, MergedPrometheusTextIdenticalAcrossJobCounts) {
  // Gauges are last-writer-wins, so this only holds if registries merge in
  // trial-index order -- the strongest observable form of the contract.
  const auto run = [](std::size_t jobs) {
    ParallelRunner runner(jobs);
    telemetry::MetricsRegistry metrics;
    runner.run_trials(
        5, [](std::size_t t) { return small_trial(t, SystemKind::kIoGuard); },
        &metrics);
    std::ostringstream os;
    telemetry::write_prometheus(os, metrics);
    return os.str();
  };
  const std::string seq = run(1);
  const std::string par = run(4);
  EXPECT_FALSE(seq.empty());
  EXPECT_EQ(seq, par);
}

TEST(ParallelRunner, ObservabilitySeriesIdenticalAcrossJobCounts) {
  // The new timing-accuracy series (jitter histograms, profiler counters)
  // ride the same merge contract: exported bytes identical for any jobs
  // width, per-trial jitter/profile fields identical trial by trial.
  const auto run = [](std::size_t jobs, std::string& prom) {
    ParallelRunner runner(jobs);
    telemetry::MetricsRegistry metrics;
    auto results = runner.run_trials(
        5,
        [](std::size_t t) {
          auto tc = small_trial(t, SystemKind::kIoGuard);
          tc.collect_jitter = true;
          tc.collect_profile = true;
          return tc;
        },
        &metrics);
    std::ostringstream os;
    telemetry::write_prometheus(os, metrics);
    prom = os.str();
    return results;
  };
  std::string seq_prom, par_prom;
  const auto seq = run(1, seq_prom);
  const auto par = run(4, par_prom);
  EXPECT_NE(seq_prom.find("ioguard_timing_jitter_cycles"), std::string::npos);
  EXPECT_NE(seq_prom.find("ioguard_profile_cycles_total"), std::string::npos);
  EXPECT_EQ(seq_prom, par_prom);

  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t t = 0; t < seq.size(); ++t) {
    SCOPED_TRACE("trial " + std::to_string(t));
    ASSERT_TRUE(seq[t].jitter.collected);
    ASSERT_EQ(seq[t].jitter.r_by_vm.size(), par[t].jitter.r_by_vm.size());
    for (std::size_t v = 0; v < seq[t].jitter.r_by_vm.size(); ++v) {
      EXPECT_EQ(seq[t].jitter.p_by_vm[v].samples(),
                par[t].jitter.p_by_vm[v].samples());
      EXPECT_EQ(seq[t].jitter.r_by_vm[v].samples(),
                par[t].jitter.r_by_vm[v].samples());
    }
    ASSERT_EQ(seq[t].profile.size(), par[t].profile.size());
    for (std::size_t i = 0; i < seq[t].profile.size(); ++i) {
      EXPECT_EQ(seq[t].profile[i].name, par[t].profile[i].name);
      EXPECT_EQ(seq[t].profile[i].busy_slots, par[t].profile[i].busy_slots);
      EXPECT_EQ(seq[t].profile[i].stall_slots, par[t].profile[i].stall_slots);
      EXPECT_EQ(seq[t].profile[i].quiescent_slots,
                par[t].profile[i].quiescent_slots);
    }
  }
}

TEST(ParallelRunner, RunPointAggregatesIdenticalAcrossJobCounts) {
  ExperimentConfig cfg;
  cfg.trials = 6;
  cfg.min_jobs_per_task = 8;
  cfg.base_seed = 42;
  const EvaluatedSystem system{SystemKind::kIoGuard, 0.7, "I/O-GUARD-70"};

  cfg.jobs = 1;
  const auto a = run_point(system, 4, 0.85, cfg);
  cfg.jobs = 4;
  const auto b = run_point(system, 4, 0.85, cfg);

  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.goodput_mbps.count(), b.goodput_mbps.count());
  EXPECT_EQ(a.goodput_mbps.mean(), b.goodput_mbps.mean());
  EXPECT_EQ(a.goodput_mbps.variance(), b.goodput_mbps.variance());
  EXPECT_EQ(a.busy_frac.mean(), b.busy_frac.mean());
  EXPECT_EQ(a.critical_miss_rate.mean(), b.critical_miss_rate.mean());
}

TEST(ParallelRunner, SummaryJsonIsNonDestructiveAndIdentical) {
  const auto tc = small_trial(0, SystemKind::kIoGuard,
                              /*collect_everything=*/true);
  const TrialResult r = run_trial(tc);

  std::ostringstream first, second;
  write_trial_summary_json(first, tc, r);
  // A second summary of the same (const) result must be byte-identical:
  // percentile extraction works on a scratch copy, not the sample buffer.
  write_trial_summary_json(second, tc, r);
  EXPECT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());
}

TEST(ParallelRunner, BatchTimingAccountsEveryTrial) {
  ParallelRunner runner(2);
  BatchTiming timing;
  runner.run_trials(
      4, [](std::size_t t) { return small_trial(t, SystemKind::kLegacy); },
      nullptr, &timing);
  EXPECT_EQ(timing.trials, 4u);
  EXPECT_EQ(timing.jobs, 2u);
  EXPECT_GT(timing.wall_seconds, 0.0);
  EXPECT_GT(timing.trial_seconds_sum, 0.0);
  EXPECT_EQ(timing.trial_seconds.count(), 4u);
  EXPECT_GT(timing.trials_per_second(), 0.0);
  EXPECT_GT(timing.speedup_estimate(), 0.0);

  // accumulate() folds a second batch in.
  BatchTiming total;
  total.accumulate(timing);
  total.accumulate(timing);
  EXPECT_EQ(total.trials, 8u);
  EXPECT_EQ(total.trial_seconds.count(), 8u);
}

TEST(ParallelRunner, RejectsSharedRegistryInTrialConfig) {
  ParallelRunner runner(1);
  telemetry::MetricsRegistry shared;
  EXPECT_THROW(runner.run_trials(2,
                                 [&](std::size_t t) {
                                   auto tc = small_trial(t, SystemKind::kLegacy);
                                   tc.metrics = &shared;  // data race by design
                                   return tc;
                                 }),
               CheckFailure);
}

TEST(TrialSeeds, MatchBetweenBatchAndSingleTrialDrivers) {
  // The CLI's --verify preflight and export paths reconstruct trial seeds
  // via trial_seed_for; they must agree with what run_point feeds run_trial.
  ExperimentConfig cfg;
  cfg.base_seed = 42;
  EXPECT_EQ(trial_seed_for(cfg, 8, 0.9, 0),
            mix_seed(42, sweep_point_key(8, 0.9), 0));
  // Quantization: a parsed 0.85 and a computed 17*0.05 hit the same stream.
  EXPECT_EQ(sweep_point_key(8, 0.85), sweep_point_key(8, 17 * 0.05));
  EXPECT_NE(sweep_point_key(8, 0.85), sweep_point_key(8, 0.9));
  EXPECT_NE(sweep_point_key(8, 0.85), sweep_point_key(4, 0.85));
}

}  // namespace
}  // namespace ioguard::sys
