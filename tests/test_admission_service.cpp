// Tests for the admission-control service (ISSUE-9): golden decisions over
// the redesigned API, cache invalidation on churn, the memoized-vs-full
// byte-identity contract, the JSON-lines wire codec (malformed input is a
// diagnostic, never a crash), and determinism across worker widths.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "sched/slot_table.hpp"
#include "service/admission_engine.hpp"
#include "service/admission_json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"
#include "workload/generator.hpp"
#include "workload/task.hpp"

namespace ioguard::service {
namespace {

workload::IoTaskSpec task(std::uint32_t id, Slot t, Slot c, Slot d) {
  workload::IoTaskSpec s;
  s.id = TaskId{id};
  s.vm = VmId{0};
  s.device = DeviceId{0};
  s.name = "t";
  s.name += std::to_string(id);
  s.period = t;
  s.wcet = c;
  s.deadline = d;
  s.payload_bytes = 8;
  return s;
}

/// A 20-slot table with slots 0-3 reserved: 0.8 free bandwidth.
sched::TimeSlotTable small_table() {
  sched::TimeSlotTable table(20);
  for (Slot s = 0; s < 4; ++s) table.reserve(s, TaskId{99});
  return table;
}

AdmissionRequest admit(const std::string& tenant, const std::string& vm,
                       const workload::TaskSet& tasks) {
  AdmissionRequest r;
  r.op = RequestOp::kAdmit;
  r.tenant = tenant;
  r.vm = vm;
  r.tasks = tasks;
  return r;
}

// ------------------------------------------------------------ decisions

TEST(AdmissionEngine, GoldenAdmitDecision) {
  AdmissionEngine engine(small_table(), AdmissionEngineConfig{});
  workload::TaskSet ts;
  ts.add(task(1, 100, 5, 80));
  AdmissionRequest req = admit("t0", "vm0", ts);
  req.server = sched::ServerParams{10, 2};

  const auto decision = engine.handle(req);
  ASSERT_TRUE(decision.ok()) << decision.status();
  EXPECT_TRUE(decision->applied);
  EXPECT_TRUE(decision->admitted);

  // The canonical string is the byte-identity contract's unit: pin it.
  const auto replay = AdmissionEngine(small_table(), AdmissionEngineConfig{})
                          .handle(req);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(decision->canonical_string(), replay->canonical_string());
  EXPECT_NE(decision->canonical_string().find(
                "decision|op=admit|tenant=t0|vm=vm0|applied=1|admitted=1"),
            std::string::npos)
      << decision->canonical_string();
  EXPECT_NE(decision->canonical_string().find("vm|t0/vm0|pi=10|theta=2"),
            std::string::npos)
      << decision->canonical_string();
}

TEST(AdmissionEngine, CallerErrorsAreStatusNotDecisions) {
  AdmissionEngine engine(small_table(), AdmissionEngineConfig{});
  workload::TaskSet ts;
  ts.add(task(1, 100, 5, 80));

  // Evicting a VM that was never admitted: NOT_FOUND, exit-2 class.
  AdmissionRequest evict;
  evict.op = RequestOp::kEvict;
  evict.tenant = "t0";
  evict.vm = "ghost";
  const auto missing = engine.handle(evict);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(exit_code(missing.status()), 2);

  // Empty task set on admit (TaskSet::add enforces the per-task invariants
  // at construction, so emptiness is the malformed shape reachable through
  // the C++ facade): INVALID_ARGUMENT.
  const auto malformed = engine.handle(admit("t0", "vm0", {}));
  ASSERT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.status().code(), StatusCode::kInvalidArgument);

  // Theta > Pi on an explicit server: INVALID_ARGUMENT.
  AdmissionRequest req = admit("t0", "vm0", ts);
  req.server = sched::ServerParams{10, 11};
  EXPECT_EQ(engine.handle(req).status().code(), StatusCode::kInvalidArgument);

  // Double admit: FAILED_PRECONDITION (update is the mutation op).
  ASSERT_TRUE(engine.handle(admit("t0", "vm0", ts)).ok());
  EXPECT_EQ(engine.handle(admit("t0", "vm0", ts)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.fleet_size(), 1u);
}

TEST(AdmissionEngine, AnalyticRejectionLeavesFleetUntouched) {
  AdmissionEngine engine(small_table(), AdmissionEngineConfig{});
  workload::TaskSet light;
  light.add(task(1, 100, 2, 100));
  ASSERT_TRUE(engine.handle(admit("t0", "vm0", light)).ok());
  const std::uint64_t before = engine.fleet_fingerprint();

  // A set the 0.8-bandwidth table can never host: rejection, not error.
  workload::TaskSet heavy;
  heavy.add(task(2, 10, 9, 10));
  const auto rejected = engine.handle(admit("t0", "vm1", heavy));
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  EXPECT_FALSE(rejected->applied);
  EXPECT_FALSE(rejected->admitted);
  EXPECT_FALSE(rejected->reason.empty());
  EXPECT_EQ(engine.fleet_size(), 1u);
  EXPECT_EQ(engine.fleet_fingerprint(), before);
  EXPECT_EQ(engine.counters().rejected, 1u);
}

// ------------------------------------------------------- cache behaviour

TEST(AdmissionEngine, ChurnReusesAndInvalidatesCaches) {
  AdmissionEngine engine(small_table(), AdmissionEngineConfig{});
  workload::TaskSet a;
  a.add(task(1, 100, 5, 80));
  workload::TaskSet b;
  b.add(task(1, 100, 8, 80));  // same id, different demand -> new fingerprint

  ASSERT_TRUE(engine.handle(admit("t0", "vm0", a)).ok());
  const std::uint64_t misses_after_admit = engine.counters().local_misses;
  EXPECT_GE(misses_after_admit, 1u);

  AdmissionRequest evict;
  evict.op = RequestOp::kEvict;
  evict.tenant = "t0";
  evict.vm = "vm0";
  ASSERT_TRUE(engine.handle(evict).ok());

  // Re-admitting the same profile must be served from the cache...
  ASSERT_TRUE(engine.handle(admit("t0", "vm0", a)).ok());
  EXPECT_EQ(engine.counters().local_misses, misses_after_admit);
  EXPECT_GE(engine.counters().local_hits, 1u);

  // ...while updating to a different profile re-analyzes (cache key moves).
  AdmissionRequest update = admit("t0", "vm0", b);
  update.op = RequestOp::kUpdate;
  ASSERT_TRUE(engine.handle(update).ok());
  EXPECT_GT(engine.counters().local_misses, misses_after_admit);
}

/// The tentpole contract, ctest-enforced: memoized and full re-analysis
/// produce byte-identical decisions over a randomized churn sequence.
TEST(AdmissionEngine, MemoizedMatchesFullReanalysisByteForByte) {
  Rng rng(11);
  std::vector<workload::TaskSet> profiles;
  for (std::uint32_t v = 0; v < 12; ++v) {
    workload::TaskSet ts;
    const auto shares = workload::uunifast(rng, 3, 0.04);
    for (std::uint32_t i = 0; i < 3; ++i) {
      const Slot period = static_cast<Slot>(rng.log_uniform(50, 500));
      const Slot deadline = period - rng.uniform_int(0, period / 8);
      Slot wcet = std::max<Slot>(
          1, static_cast<Slot>(shares[i] * static_cast<double>(period)));
      if (wcet > deadline) wcet = deadline;
      ts.add(task(v * 8 + i, period, wcet, deadline));
    }
    profiles.push_back(std::move(ts));
  }

  AdmissionEngineConfig memo_cfg;
  AdmissionEngineConfig full_cfg;
  full_cfg.memoize = false;
  AdmissionEngine memo(small_table(), memo_cfg);
  AdmissionEngine full(small_table(), full_cfg);

  std::vector<bool> in_fleet(profiles.size(), false);
  std::uint64_t state = 7;
  for (int step = 0; step < 240; ++step) {
    state += 0x9e3779b97f4a7c15ULL;
    const std::uint64_t r = splitmix64_step(state);
    const auto i = static_cast<std::size_t>(r % profiles.size());
    AdmissionRequest req;
    req.tenant = "tenant" + std::to_string(i % 3);
    req.vm = "vm" + std::to_string(i);
    if (!in_fleet[i]) {
      req.op = RequestOp::kAdmit;
      req.tasks = profiles[i];
      in_fleet[i] = true;
    } else if (((r >> 32) & 1) != 0) {
      req.op = RequestOp::kUpdate;
      req.tasks = profiles[i];
    } else {
      req.op = RequestOp::kEvict;
      in_fleet[i] = false;
    }
    const auto md = memo.handle(req);
    const auto fd = full.handle(req);
    ASSERT_EQ(md.ok(), fd.ok()) << "step " << step;
    if (!md.ok()) continue;
    ASSERT_EQ(md->canonical_string(), fd->canonical_string())
        << "decisions diverge at step " << step;
  }
  EXPECT_EQ(memo.fleet_fingerprint(), full.fleet_fingerprint());
  // Memoization must actually have fired, or the contract test is vacuous.
  EXPECT_GT(memo.counters().local_hits, 0u);
  EXPECT_EQ(full.counters().local_hits, 0u);
}

TEST(AdmissionEngine, PoisonedCacheBreaksByteIdentity) {
  workload::TaskSet ts;
  ts.add(task(1, 100, 5, 80));
  AdmissionEngine memo(small_table(), AdmissionEngineConfig{});
  AdmissionEngineConfig full_cfg;
  full_cfg.memoize = false;
  AdmissionEngine full(small_table(), full_cfg);

  ASSERT_TRUE(memo.handle(admit("t0", "vm0", ts)).ok());
  ASSERT_TRUE(full.handle(admit("t0", "vm0", ts)).ok());
  memo.poison_local_cache_for_testing();

  AdmissionRequest query;
  query.op = RequestOp::kQuery;
  const auto md = memo.handle(query);
  const auto fd = full.handle(query);
  ASSERT_TRUE(md.ok());
  ASSERT_TRUE(fd.ok());
  EXPECT_NE(md->canonical_string(), fd->canonical_string())
      << "poisoning the cache must be observable, or ADM002 checks nothing";
}

// -------------------------------------------------------------- telemetry

TEST(AdmissionEngine, ExportsCountersAsMetrics) {
  AdmissionEngine engine(small_table(), AdmissionEngineConfig{});
  workload::TaskSet ts;
  ts.add(task(1, 100, 5, 80));
  ASSERT_TRUE(engine.handle(admit("t0", "vm0", ts)).ok());

  telemetry::MetricsRegistry registry;
  engine.export_metrics(registry);
  std::ostringstream os;
  telemetry::write_prometheus(os, registry);
  const std::string text = os.str();
  EXPECT_NE(text.find("ioguard_admission_requests_total 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ioguard_admission_fleet_vms 1"), std::string::npos)
      << text;
}

// ------------------------------------------------------------ wire codec

TEST(AdmissionJson, DecodeAdmitRequest) {
  const auto wire = decode_request(
      R"({"op":"admit","tenant":"t0","vm":"vm1","server":{"pi":20,"theta":5},)"
      R"("tasks":[{"id":7,"period":100,"wcet":5,"deadline":80}]})");
  ASSERT_TRUE(wire.ok()) << wire.status();
  EXPECT_FALSE(wire->stats);
  EXPECT_EQ(wire->request.op, RequestOp::kAdmit);
  EXPECT_EQ(wire->request.tenant, "t0");
  EXPECT_EQ(wire->request.vm, "vm1");
  ASSERT_TRUE(wire->request.server.has_value());
  EXPECT_EQ(wire->request.server->pi, 20u);
  EXPECT_EQ(wire->request.server->theta, 5u);
  ASSERT_EQ(wire->request.tasks.size(), 1u);
  const auto& t = wire->request.tasks.tasks()[0];
  EXPECT_EQ(t.id.value, 7u);
  EXPECT_EQ(t.period, 100u);
  EXPECT_EQ(t.wcet, 5u);
  EXPECT_EQ(t.deadline, 80u);
}

TEST(AdmissionJson, DeadlineDefaultsToPeriod) {
  const auto wire = decode_request(
      R"({"op":"admit","tenant":"t","vm":"v",)"
      R"("tasks":[{"id":1,"period":50,"wcet":2}]})");
  ASSERT_TRUE(wire.ok()) << wire.status();
  EXPECT_EQ(wire->request.tasks.tasks()[0].deadline, 50u);
}

TEST(AdmissionJson, MalformedInputIsDiagnosticNotCrash) {
  // JSON syntax error: DATA_LOSS.
  const auto syntax = decode_request("{\"op\":");
  ASSERT_FALSE(syntax.ok());
  EXPECT_EQ(syntax.status().code(), StatusCode::kDataLoss);

  // Schema violations: INVALID_ARGUMENT, the usage (exit-2) class.
  for (const char* line : {
           "{}",
           R"({"op":"frobnicate"})",
           R"({"op":"admit","tenant":"t","vm":"v","tasks":[]})",
           R"({"op":"admit","tenant":"t","vm":"v","tasks":[{"id":1}]})",
           R"({"op":"admit","tenant":"t","vm":"v",
               "tasks":[{"id":-3,"period":10,"wcet":1}]})",
           // Wire tasks violating 0 < C <= D <= T must be rejected by the
           // codec, never CHECK-crash the daemon in TaskSet::add.
           R"({"op":"admit","tenant":"t","vm":"v",
               "tasks":[{"id":1,"period":10,"wcet":20}]})",
           R"({"op":"admit","tenant":"t","vm":"v",
               "tasks":[{"id":1,"period":10,"wcet":0}]})",
           R"({"op":"admit","tenant":"t","vm":"v",
               "tasks":[{"id":1,"period":10,"wcet":2,"deadline":15}]})",
           R"({"op":"evict","tenant":"t"})",
       }) {
    const auto wire = decode_request(line);
    ASSERT_FALSE(wire.ok()) << line;
    EXPECT_EQ(wire.status().code(), StatusCode::kInvalidArgument) << line;
    EXPECT_EQ(exit_code(wire.status()), 2) << line;
  }

  // The error line a daemon would answer with is well-formed JSON itself.
  const std::string err = encode_error(syntax.status());
  const auto parsed = parse_json(err);
  ASSERT_TRUE(parsed.ok()) << err;
  ASSERT_NE(parsed->find("code"), nullptr);
  EXPECT_EQ(parsed->find("code")->str, "data_loss");
}

TEST(AdmissionJson, DecisionRoundTripsThroughWireFormat) {
  AdmissionEngine engine(small_table(), AdmissionEngineConfig{});
  workload::TaskSet ts;
  ts.add(task(1, 100, 5, 80));
  const auto decision = engine.handle(admit("t0", "vm0", ts));
  ASSERT_TRUE(decision.ok());

  const std::string line = encode_decision(*decision);
  const auto parsed = parse_json(line);
  ASSERT_TRUE(parsed.ok()) << line;
  ASSERT_NE(parsed->find("ok"), nullptr);
  EXPECT_TRUE(parsed->find("ok")->boolean);
  EXPECT_EQ(parsed->find("op")->str, "admit");
  EXPECT_EQ(parsed->find("tenant")->str, "t0");
  EXPECT_TRUE(parsed->find("admitted")->boolean);
  ASSERT_NE(parsed->find("per_vm"), nullptr);
  ASSERT_EQ(parsed->find("per_vm")->items.size(), 1u);
  EXPECT_EQ(parsed->find("per_vm")->items[0].find("vm")->str, "vm0");

  // Canonical encoding: the same decision always encodes to the same bytes.
  EXPECT_EQ(line, encode_decision(*decision));
}

TEST(AdmissionJson, StatsLineCarriesEngineCounters) {
  AdmissionEngine engine(small_table(), AdmissionEngineConfig{});
  workload::TaskSet ts;
  ts.add(task(1, 100, 5, 80));
  ASSERT_TRUE(engine.handle(admit("t0", "vm0", ts)).ok());

  const auto wire = decode_request(R"({"op":"stats"})");
  ASSERT_TRUE(wire.ok());
  EXPECT_TRUE(wire->stats);

  const std::string line = encode_counters(
      engine.counters(), engine.fleet_size(), engine.fleet_fingerprint());
  const auto parsed = parse_json(line);
  ASSERT_TRUE(parsed.ok()) << line;
  const Json* stats = parsed->find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->find("requests")->number, 1.0);
  EXPECT_EQ(stats->find("fleet_vms")->number, 1.0);
}

// ----------------------------------------------------------- determinism

/// The service must be jobs-width independent: N engines replaying the same
/// script on N threads land on the same decisions as a sequential replay.
TEST(AdmissionEngine, DeterministicAcrossWorkerWidths) {
  workload::TaskSet a;
  a.add(task(1, 100, 5, 80));
  workload::TaskSet b;
  b.add(task(2, 200, 20, 150));

  std::vector<AdmissionRequest> script;
  script.push_back(admit("t0", "vm0", a));
  script.push_back(admit("t1", "vm1", b));
  AdmissionRequest update = admit("t0", "vm0", b);
  update.op = RequestOp::kUpdate;
  script.push_back(update);
  AdmissionRequest evict;
  evict.op = RequestOp::kEvict;
  evict.tenant = "t1";
  evict.vm = "vm1";
  script.push_back(evict);

  const auto replay = [&script] {
    AdmissionEngine engine(small_table(), AdmissionEngineConfig{});
    std::string all;
    for (const auto& req : script) {
      const auto d = engine.handle(req);
      all += d.ok() ? d->canonical_string()
                    : "error|" + d.status().to_string();
      all += '\n';
    }
    all += "fingerprint=" + std::to_string(engine.fleet_fingerprint());
    return all;
  };

  const std::string sequential = replay();
  constexpr int kJobs = 4;
  std::vector<std::string> results(kJobs);
  {
    std::vector<std::thread> workers;
    workers.reserve(kJobs);
    for (int j = 0; j < kJobs; ++j)
      workers.emplace_back([&results, &replay, j] { results[j] = replay(); });
    for (auto& w : workers) w.join();
  }
  for (int j = 0; j < kJobs; ++j) EXPECT_EQ(results[j], sequential) << j;
}

}  // namespace
}  // namespace ioguard::service
