// NEGATIVE-COMPILE fixture: this file must FAIL to compile under clang with
// -Wthread-safety -Werror=thread-safety (scripts/check_thread_safety.py
// asserts exactly that). It is NOT part of any CMake target.
//
// The violation: reading and writing a IOGUARD_GUARDED_BY member without
// holding its mutex. If the toolchain ever stops diagnosing this, the whole
// annotation layer is decorative -- the check exists to notice that.
#include "common/sync.hpp"

#include <cstdint>

namespace {

class Counter {
 public:
  void bump() {
    ++value_;  // BAD: writing value_ without holding mutex_
  }

  [[nodiscard]] std::uint64_t read() const {
    return value_;  // BAD: reading value_ without holding mutex_
  }

 private:
  mutable ioguard::Mutex mutex_;
  std::uint64_t value_ IOGUARD_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return static_cast<int>(c.read());
}
