// POSITIVE control for scripts/check_thread_safety.py: the same shape as
// guarded_by_violation.cpp with correct locking. Must compile cleanly under
// clang -Wthread-safety -Werror=thread-safety; if it does not, the failure
// of the violation fixture proves nothing (the flags may simply be broken).
#include "common/sync.hpp"

#include <cstdint>

namespace {

class Counter {
 public:
  void bump() {
    const ioguard::MutexLock lock(mutex_);
    ++value_;
  }

  [[nodiscard]] std::uint64_t read() const {
    const ioguard::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable ioguard::Mutex mutex_;
  std::uint64_t value_ IOGUARD_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return static_cast<int>(c.read());
}
