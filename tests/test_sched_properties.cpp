// Property-based tests for the Sec. IV analysis, using parameterized sweeps:
//  * sbf(sigma, t) equals a brute-force sliding-window minimum and satisfies
//    the structural identities of Eqs. (1)-(2);
//  * sbf(Gamma, t) (Eq. 8) equals the supply of the Shin & Lee worst-case
//    pattern;
//  * Theorems 2/4 are sound and agree with the exhaustive Theorems 1/3;
//  * admitted task sets never miss deadlines in simulation (empirical
//    soundness of the whole two-layer analysis).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "sched/admission.hpp"
#include "sched/edf_ref.hpp"
#include "sched/sbf.hpp"
#include "sched/server_design.hpp"
#include "sched/slot_table.hpp"
#include "workload/arrivals.hpp"

namespace ioguard::sched {
namespace {

using workload::TaskSet;

TimeSlotTable random_table(Rng& rng, Slot h, double busy_frac) {
  TimeSlotTable t(h);
  for (Slot s = 0; s < h; ++s)
    if (rng.bernoulli(busy_frac)) t.reserve(s, TaskId{0});
  if (t.free_slots() == 0) t.release(0);  // keep at least one free slot
  return t;
}

/// Brute-force sbf: minimum free slots over every window of length t
/// starting anywhere in one hyper-period (the table repeats).
Slot brute_sbf(const TimeSlotTable& table, Slot t) {
  const Slot h = table.hyperperiod();
  Slot best = kNeverSlot;
  for (Slot start = 0; start < h; ++start) {
    Slot got = 0;
    for (Slot i = 0; i < t; ++i)
      if (table.is_free((start + i) % h)) ++got;
    best = std::min(best, got);
  }
  return best;
}

// -------------------------------------------------- sbf(sigma, t) properties

class TableSupplyProperty : public ::testing::TestWithParam<int> {};

TEST_P(TableSupplyProperty, MatchesBruteForceAndStructuralIdentities) {
  Rng rng(1000 + GetParam());
  const Slot h = 5 + rng.uniform_int(0, 45);
  const auto table = random_table(rng, h, rng.uniform(0.2, 0.8));
  const TableSupply supply(table);
  const Slot f = table.free_slots();

  Slot prev = 0;
  for (Slot t = 0; t <= 3 * h; ++t) {
    const Slot got = supply.sbf(t);
    // Eq. (1)/(2) against brute force within one period...
    if (t < h) {
      EXPECT_EQ(got, brute_sbf(table, t)) << "t=" << t;
    }
    // ...and the periodic extension identity for larger t.
    EXPECT_EQ(supply.sbf(t + h), got + f) << "t=" << t;
    // Supply is monotone and 1-Lipschitz (one slot per slot at most).
    EXPECT_GE(got, prev);
    EXPECT_LE(got - prev, 1u);
    EXPECT_LE(got, t);
    prev = got;
  }
  // A full period always supplies exactly F.
  EXPECT_EQ(supply.sbf(h), f);
}

INSTANTIATE_TEST_SUITE_P(RandomTables, TableSupplyProperty,
                         ::testing::Range(0, 25));

// ------------------------------------------------- sbf(Gamma, t) properties

class ServerSupplyProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ServerSupplyProperty, MatchesWorstCasePattern) {
  const Slot pi = static_cast<Slot>(std::get<0>(GetParam()));
  const Slot theta = static_cast<Slot>(std::get<1>(GetParam()));
  if (theta > pi) GTEST_SKIP();
  const ServerParams g{pi, theta};

  // Shin & Lee worst case: the budget arrives at the start of period 0 and
  // as late as possible in every later period, leaving a 2(Pi-Theta)
  // blackout. The worst window starts right after the period-0 budget.
  auto pattern = [&](Slot s) {
    if (s < theta) return true;       // period 0: early budget
    if (s < pi) return false;        // rest of period 0: nothing
    return (s % pi) >= pi - theta;   // later periods: late budget
  };
  for (Slot t = 0; t <= 4 * pi; ++t) {
    Slot brute = 0;
    for (Slot i = 0; i < t; ++i)
      if (pattern(theta + i)) ++brute;
    EXPECT_EQ(sbf_server(g, t), brute) << "Pi=" << pi << " Theta=" << theta
                                       << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PiThetaGrid, ServerSupplyProperty,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 13),
                       ::testing::Values(1, 2, 3, 5, 8)));

// ----------------------------------------------------- dbf(tau, t) property

class SporadicDemandProperty : public ::testing::TestWithParam<int> {};

TEST_P(SporadicDemandProperty, MatchesJobCountingBruteForce) {
  Rng rng(500 + GetParam());
  const Slot period = 2 + rng.uniform_int(0, 30);
  const Slot deadline = 1 + rng.uniform_int(0, period - 1);
  const Slot wcet = 1 + rng.uniform_int(0, deadline - 1 ? deadline - 1 : 0);

  for (Slot t = 0; t <= 5 * period; ++t) {
    // Brute force: jobs released at 0, T, 2T, ... with deadline r + D; count
    // those with release >= 0 and deadline <= t.
    Slot demand = 0;
    for (Slot r = 0; r + deadline <= t; r += period) demand += wcet;
    EXPECT_EQ(dbf_sporadic(period, wcet, deadline, t), demand)
        << "T=" << period << " C=" << wcet << " D=" << deadline << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSporadic, SporadicDemandProperty,
                         ::testing::Range(0, 30));

// -------------------------------------- Theorem 2 vs exhaustive Theorem 1

class GlobalAdmissionProperty : public ::testing::TestWithParam<int> {};

TEST_P(GlobalAdmissionProperty, Theorem2NeverDisagreesWithTheorem1) {
  Rng rng(9000 + GetParam());
  const Slot h = 8 + rng.uniform_int(0, 24);
  const auto table = random_table(rng, h, rng.uniform(0.1, 0.6));
  const TableSupply supply(table);

  std::vector<ServerParams> servers;
  const std::size_t n = 1 + rng.index(4);
  for (std::size_t i = 0; i < n; ++i) {
    const Slot pi = 2 + rng.uniform_int(0, 14);
    const Slot theta = 1 + rng.uniform_int(0, pi - 1);
    servers.push_back({pi, theta});
  }

  double bw = 0.0;
  for (const auto& s : servers) bw += s.bandwidth();
  const bool has_slack = supply.bandwidth() - bw > 1e-9;

  const auto t2 = theorem2_check(supply, servers);
  const auto t1 = theorem1_exhaustive(supply, servers);
  if (has_slack) {
    // With positive slack Theorem 2 is exact w.r.t. Theorem 1.
    EXPECT_EQ(static_cast<bool>(t2), static_cast<bool>(t1));
  } else {
    // Without slack Theorem 2 conservatively rejects.
    EXPECT_FALSE(t2);
  }
  // Soundness either way: if T2 accepts, T1 must accept.
  if (t2) {
    EXPECT_TRUE(static_cast<bool>(t1));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, GlobalAdmissionProperty,
                         ::testing::Range(0, 40));

// ------------------------------------------ Theorem 4 empirical soundness

class VmAdmissionProperty : public ::testing::TestWithParam<int> {};

TEST_P(VmAdmissionProperty, AdmittedTaskSetsNeverMissOnWorstCaseSupply) {
  Rng rng(7100 + GetParam());
  const Slot pi = 4 + rng.uniform_int(0, 12);
  const Slot theta = 1 + rng.uniform_int(0, pi - 1);
  const ServerParams g{pi, theta};

  TaskSet ts;
  const std::size_t n = 1 + rng.index(4);
  for (std::size_t i = 0; i < n; ++i) {
    workload::IoTaskSpec s;
    s.id = TaskId{static_cast<std::uint32_t>(i)};
    s.vm = VmId{0};
    s.device = DeviceId{0};
    s.name = "x" + std::to_string(i);
    s.period = 20 + rng.uniform_int(0, 180);
    s.deadline = s.period - rng.uniform_int(0, s.period / 4);
    s.wcet = 1 + rng.uniform_int(0, std::max<Slot>(1, s.deadline / 8) - 1);
    s.payload_bytes = 8;
    ts.add(s);
  }

  if (!theorem4_check(g, ts)) GTEST_SKIP() << "not admitted";

  // Simulate P-EDF on the worst-case periodic-resource supply with strictly
  // periodic (densest sporadic) releases and full WCET demand.
  workload::ArrivalConfig cfg;
  cfg.horizon = 40 * ts.hyperperiod() < 400000 ? 4 * ts.hyperperiod() : 100000;
  cfg.jitter_frac = 0.0;
  cfg.exec_frac_lo = cfg.exec_frac_hi = 1.0;
  const auto trace = workload::generate_trace(ts, cfg);
  auto worst_supply = [pi, theta](Slot s) {
    if (s < theta) return true;
    if (s < pi) return false;
    return (s % pi) >= pi - theta;
  };
  const auto r = simulate_edf(trace, worst_supply, cfg.horizon);
  EXPECT_EQ(r.misses, 0u) << "Pi=" << pi << " Theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(RandomVms, VmAdmissionProperty,
                         ::testing::Range(0, 50));

// ---------------------------------- end-to-end: design + simulate a device

class DesignSimProperty : public ::testing::TestWithParam<int> {};

TEST_P(DesignSimProperty, DesignedServersDeliverTheirBudgets) {
  Rng rng(31000 + GetParam());
  // Random table with >= 40% free slots.
  const Slot h = 20 + rng.uniform_int(0, 30);
  const auto table = random_table(rng, h, 0.3);
  const TableSupply supply(table);

  // Two VMs with light task sets.
  std::vector<TaskSet> vms(2);
  for (std::size_t v = 0; v < 2; ++v) {
    workload::IoTaskSpec s;
    s.id = TaskId{static_cast<std::uint32_t>(v)};
    s.vm = VmId{static_cast<std::uint32_t>(v)};
    s.device = DeviceId{0};
    s.name = "vm" + std::to_string(v);
    s.period = 100 + rng.uniform_int(0, 100);
    s.deadline = s.period;
    s.wcet = 1 + rng.uniform_int(0, 5);
    s.payload_bytes = 8;
    vms[v].add(s);
  }

  const auto design = design_system(supply, vms);
  if (!design.feasible) GTEST_SKIP() << design.reason;

  // Simulate the union of both VMs' tasks under EDF on the table's free
  // slots: the two-layer guarantee implies the flat schedule also fits.
  TaskSet merged;
  for (const auto& vm : vms)
    for (const auto& t : vm.tasks()) merged.add(t);
  workload::ArrivalConfig cfg;
  cfg.horizon = 50 * h;
  cfg.jitter_frac = 0.0;
  cfg.exec_frac_lo = cfg.exec_frac_hi = 1.0;
  const auto trace = workload::generate_trace(merged, cfg);
  const auto r = simulate_edf(
      trace, [&](Slot s) { return table.is_free_abs(s); }, cfg.horizon);
  EXPECT_EQ(r.misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomDesigns, DesignSimProperty,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace ioguard::sched
