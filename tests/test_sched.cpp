// Unit tests for src/sched: Time Slot Table construction, the supply/demand
// bound functions of Sec. IV (Eqs. 1-3, 8-9), Theorems 1-4, server design
// and the reference EDF/FIFO simulators.
#include <gtest/gtest.h>

#include <map>

#include "common/check.hpp"
#include "sched/admission.hpp"
#include "sched/edf_ref.hpp"
#include "sched/sbf.hpp"
#include "sched/server_design.hpp"
#include "sched/slot_table.hpp"
#include "workload/arrivals.hpp"

namespace ioguard::sched {
namespace {

using workload::IoTaskSpec;
using workload::TaskKind;
using workload::TaskSet;

IoTaskSpec predefined_task(std::uint32_t id, Slot t, Slot c, Slot d,
                           Slot offset = 0) {
  IoTaskSpec s;
  s.id = TaskId{id};
  s.vm = VmId{0};
  s.device = DeviceId{0};
  s.name = "p" + std::to_string(id);
  s.kind = TaskKind::kPredefined;
  s.period = t;
  s.wcet = c;
  s.deadline = d;
  s.offset = offset;
  s.payload_bytes = 16;
  return s;
}

IoTaskSpec runtime_task(std::uint32_t id, Slot t, Slot c, Slot d) {
  IoTaskSpec s = predefined_task(id, t, c, d);
  s.kind = TaskKind::kRuntime;
  s.name = "r" + std::to_string(id);
  return s;
}

// ---------------------------------------------------------------- slot table

TEST(SlotTable, EmptyPredefinedGivesAllFreeTable) {
  const auto build = build_time_slot_table(TaskSet{});
  ASSERT_TRUE(build.feasible);
  EXPECT_EQ(build.table.hyperperiod(), 1u);
  EXPECT_EQ(build.table.free_slots(), 1u);
}

TEST(SlotTable, SingleTaskOccupiesExactlyItsDemand) {
  TaskSet ts;
  ts.add(predefined_task(0, 10, 3, 10));
  const auto build = build_time_slot_table(ts);
  ASSERT_TRUE(build.feasible) << build.failure;
  EXPECT_EQ(build.table.hyperperiod(), 10u);
  EXPECT_EQ(build.table.free_slots(), 7u);
  // All three reserved slots belong to the task and sit inside its window;
  // spread placement distributes them rather than packing the front.
  Slot reserved = 0;
  for (Slot s = 0; s < 10; ++s)
    if (auto occ = build.table.occupant(s)) {
      EXPECT_EQ(*occ, TaskId{0});
      ++reserved;
    }
  EXPECT_EQ(reserved, 3u);
  EXPECT_FALSE(build.table.occupant(0).has_value() &&
               build.table.occupant(1).has_value() &&
               build.table.occupant(2).has_value())
      << "slots should be spread, not packed";
}

TEST(SlotTable, EveryJobGetsItsSlotsWithinItsWindow) {
  TaskSet ts;
  ts.add(predefined_task(0, 10, 2, 10));
  ts.add(predefined_task(1, 20, 5, 15));
  ts.add(predefined_task(2, 40, 8, 40, 3));
  const auto build = build_time_slot_table(ts);
  ASSERT_TRUE(build.feasible) << build.failure;
  const Slot h = build.table.hyperperiod();
  EXPECT_EQ(h, 40u);

  // Count each task's slots per hyper-period: must equal C * (H / T).
  std::map<std::uint32_t, Slot> count;
  for (Slot s = 0; s < h; ++s)
    if (auto occ = build.table.occupant(s)) ++count[occ->value];
  EXPECT_EQ(count[0], 2u * 4);
  EXPECT_EQ(count[1], 5u * 2);
  EXPECT_EQ(count[2], 8u * 1);
}

TEST(SlotTable, OverUtilizedIsInfeasible) {
  TaskSet ts;
  ts.add(predefined_task(0, 10, 6, 10));
  ts.add(predefined_task(1, 10, 6, 10));
  const auto build = build_time_slot_table(ts);
  EXPECT_FALSE(build.feasible);
  EXPECT_FALSE(build.failure.empty());
}

TEST(SlotTable, TightDeadlinesCanBeInfeasibleEvenUnderUnitUtilization) {
  TaskSet ts;
  // Two tasks both demanding their full WCET inside the same tight window.
  ts.add(predefined_task(0, 10, 3, 3));
  ts.add(predefined_task(1, 10, 3, 3));
  const auto build = build_time_slot_table(ts);
  EXPECT_FALSE(build.feasible);
}

TEST(SlotTable, ReserveReleaseRoundTrip) {
  TimeSlotTable t(5);
  EXPECT_EQ(t.free_slots(), 5u);
  t.reserve(2, TaskId{9});
  EXPECT_EQ(t.free_slots(), 4u);
  EXPECT_EQ(t.occupant(2).value(), TaskId{9});
  EXPECT_THROW(t.reserve(2, TaskId{1}), CheckFailure);
  t.release(2);
  EXPECT_EQ(t.free_slots(), 5u);
  EXPECT_THROW(t.release(2), CheckFailure);
  EXPECT_TRUE(t.is_free_abs(7));  // 7 mod 5 = 2
}

// ------------------------------------------------------------------- sbf/dbf

TEST(TableSupply, HandComputedExample) {
  // H = 4, slots: busy, free, busy, free  =>  F = 2.
  TimeSlotTable t(4);
  t.reserve(0, TaskId{0});
  t.reserve(2, TaskId{0});
  TableSupply supply(t);
  EXPECT_EQ(supply.hyperperiod(), 4u);
  EXPECT_EQ(supply.free_per_period(), 2u);
  EXPECT_EQ(supply.sbf(0), 0u);
  EXPECT_EQ(supply.sbf(1), 0u);  // a window of one busy slot exists
  EXPECT_EQ(supply.sbf(2), 1u);
  EXPECT_EQ(supply.sbf(3), 1u);
  EXPECT_EQ(supply.sbf(4), 2u);   // Eq. (2): full period
  EXPECT_EQ(supply.sbf(5), 2u);   // sbf(1) + F
  EXPECT_EQ(supply.sbf(9), 4u);   // sbf(1) + 2F
  EXPECT_DOUBLE_EQ(supply.bandwidth(), 0.5);
}

TEST(DbfServer, Equation3) {
  ServerParams g{10, 3};
  EXPECT_EQ(dbf_server(g, 0), 0u);
  EXPECT_EQ(dbf_server(g, 9), 0u);
  EXPECT_EQ(dbf_server(g, 10), 3u);
  EXPECT_EQ(dbf_server(g, 25), 6u);
  EXPECT_EQ(dbf_server(g, 30), 9u);
}

TEST(SbfServer, Equation8HandValues) {
  ServerParams g{5, 2};  // gap = 3
  EXPECT_EQ(sbf_server(g, 0), 0u);
  EXPECT_EQ(sbf_server(g, 3), 0u);
  EXPECT_EQ(sbf_server(g, 6), 0u);   // 2(Pi-Theta) blackout
  EXPECT_EQ(sbf_server(g, 7), 1u);
  EXPECT_EQ(sbf_server(g, 8), 2u);
  EXPECT_EQ(sbf_server(g, 13), 4u);  // t' = 10: two full budgets
}

TEST(SbfServer, FullBandwidthServerSuppliesEverything) {
  ServerParams g{7, 7};
  for (Slot t = 0; t <= 30; ++t) EXPECT_EQ(sbf_server(g, t), t);
}

TEST(DbfSporadic, Equation9) {
  // (T, C, D) = (10, 2, 7)
  EXPECT_EQ(dbf_sporadic(10, 2, 7, 6), 0u);
  EXPECT_EQ(dbf_sporadic(10, 2, 7, 7), 2u);
  EXPECT_EQ(dbf_sporadic(10, 2, 7, 16), 2u);
  EXPECT_EQ(dbf_sporadic(10, 2, 7, 17), 4u);
  EXPECT_EQ(dbf_sporadic(10, 2, 7, 27), 6u);
}

// ------------------------------------------------------------- theorems 1-4

TEST(Theorem1, AcceptsFeasibleServersOnHandTable) {
  TimeSlotTable t(4);
  t.reserve(0, TaskId{0});
  t.reserve(2, TaskId{0});
  TableSupply supply(t);  // F/H = 0.5
  // One server demanding 1 slot every 4: bandwidth 0.25 <= 0.5.
  EXPECT_TRUE(theorem1_exhaustive(supply, {{4, 1}}));
  // Demanding more than the free bandwidth must fail.
  EXPECT_FALSE(theorem1_exhaustive(supply, {{4, 3}}));
}

TEST(Theorem1, ReportsViolationInstant) {
  TimeSlotTable t(4);
  t.reserve(0, TaskId{0});
  t.reserve(1, TaskId{0});
  t.reserve(2, TaskId{0});
  TableSupply supply(t);  // F = 1
  const auto r = theorem1_exhaustive(supply, {{2, 1}});  // needs 0.5, has 0.25
  EXPECT_FALSE(r.schedulable);
  ASSERT_TRUE(r.violation_t.has_value());
  EXPECT_EQ(dbf_server({2, 1}, *r.violation_t) > supply.sbf(*r.violation_t),
            true);
}

TEST(Theorem2, AgreesWithTheorem1WhenSlackPositive) {
  TimeSlotTable t(10);
  for (Slot s = 0; s < 4; ++s) t.reserve(s, TaskId{0});  // F = 6
  TableSupply supply(t);
  const std::vector<ServerParams> ok = {{5, 1}, {10, 2}};   // bw 0.4 < 0.6
  const std::vector<ServerParams> bad = {{5, 2}, {10, 3}};  // bw 0.7 > 0.6
  EXPECT_EQ(static_cast<bool>(theorem2_check(supply, ok)),
            static_cast<bool>(theorem1_exhaustive(supply, ok)));
  EXPECT_FALSE(theorem2_check(supply, bad));
  EXPECT_FALSE(theorem1_exhaustive(supply, bad));
}

TEST(Theorem2, RejectsZeroSlackByStatedLimitation) {
  TimeSlotTable t(2);
  t.reserve(0, TaskId{0});  // F/H = 0.5
  TableSupply supply(t);
  // Exactly F/H = sum Theta/Pi: Theorem 2's precondition c > 0 fails.
  EXPECT_FALSE(theorem2_check(supply, {{2, 1}}));
}

TEST(Theorem3, SimpleVmTaskSet) {
  ServerParams g{5, 3};
  TaskSet ts;
  ts.add(runtime_task(0, 20, 3, 20));
  ts.add(runtime_task(1, 50, 10, 50));
  EXPECT_TRUE(theorem3_exhaustive(g, ts));

  TaskSet heavy;
  heavy.add(runtime_task(0, 10, 7, 10));  // U = 0.7 > 3/5
  EXPECT_FALSE(theorem3_exhaustive(g, heavy));
}

TEST(Theorem4, MatchesTheorem3OnConstrainedDeadlines) {
  ServerParams g{10, 6};
  TaskSet ts;
  ts.add(runtime_task(0, 40, 4, 30));
  ts.add(runtime_task(1, 100, 12, 80));
  EXPECT_EQ(static_cast<bool>(theorem4_check(g, ts)),
            static_cast<bool>(theorem3_exhaustive(g, ts)));
}

TEST(Theorem4, EmptyTaskSetTriviallySchedulable) {
  EXPECT_TRUE(theorem4_check({10, 1}, TaskSet{}));
}

// --------------------------------------------------------------- server design

TEST(ServerDesign, MinThetaIsMinimal) {
  TaskSet ts;
  ts.add(runtime_task(0, 100, 10, 100));
  ts.add(runtime_task(1, 200, 30, 200));  // U = 0.25
  const auto server = min_theta_for_pi(20, ts);
  ASSERT_TRUE(server.ok());
  EXPECT_TRUE(theorem4_check(*server, ts));
  if (server->theta > 1) {
    EXPECT_FALSE(theorem4_check({server->pi, server->theta - 1}, ts))
        << "theta not minimal";
  }
  EXPECT_GE(server->bandwidth(), ts.utilization());
}

TEST(ServerDesign, InfeasibleWhenUtilizationExceedsOne) {
  TaskSet ts;
  ts.add(runtime_task(0, 10, 9, 10));
  ts.add(runtime_task(1, 10, 5, 10));
  const auto per_pi = min_theta_for_pi(10, ts);
  ASSERT_FALSE(per_pi.ok());
  EXPECT_EQ(per_pi.status().code(), StatusCode::kFailedPrecondition);
  const auto synthesized = synthesize_server(ts);
  ASSERT_FALSE(synthesized.ok());
  EXPECT_EQ(synthesized.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServerDesign, SystemDesignAdmitsLightLoad) {
  TimeSlotTable table(20);
  for (Slot s = 0; s < 4; ++s) table.reserve(s, TaskId{99});
  TableSupply supply(table);  // 0.8 free bandwidth

  std::vector<TaskSet> vms(2);
  vms[0].add(runtime_task(0, 100, 8, 100));
  vms[1].add(runtime_task(1, 200, 10, 200));
  const auto design = design_system(supply, vms);
  EXPECT_TRUE(design.feasible) << design.reason;
  ASSERT_EQ(design.servers.size(), 2u);
  for (const auto& s : design.servers) EXPECT_GT(s.theta, 0u);
}

TEST(ServerDesign, EmptyVmGetsZeroBudget) {
  TimeSlotTable table(10);
  TableSupply supply(table);
  std::vector<TaskSet> vms(2);
  vms[1].add(runtime_task(0, 50, 5, 50));
  const auto design = design_system(supply, vms);
  EXPECT_TRUE(design.feasible);
  EXPECT_EQ(design.servers[0].theta, 0u);
  EXPECT_GT(design.servers[1].theta, 0u);
}

// ------------------------------------------------------------ reference sims

TEST(EdfRef, MeetsDeadlinesAtFullUtilizationImplicitDeadlines) {
  TaskSet ts;
  ts.add(runtime_task(0, 4, 2, 4));
  ts.add(runtime_task(1, 8, 4, 8));  // U = 1.0
  workload::ArrivalConfig cfg;
  cfg.horizon = 800;
  cfg.jitter_frac = 0.0;
  cfg.exec_frac_lo = cfg.exec_frac_hi = 1.0;
  const auto trace = workload::generate_trace(ts, cfg);
  const auto r = simulate_edf(trace, full_supply(), cfg.horizon);
  EXPECT_EQ(r.misses, 0u);
}

TEST(EdfRef, FifoSuffersPriorityInversionWhereEdfDoesNot) {
  // A long job released just before a short-deadline job: FIFO blocks the
  // short job (the paper's hardware-level dilemma); EDF preempts.
  std::vector<workload::Job> trace(2);
  trace[0] = {JobId{0}, TaskId{0}, VmId{0}, DeviceId{0}, 0, 100, 50, 0};
  trace[1] = {JobId{1}, TaskId{1}, VmId{0}, DeviceId{0}, 1, 11, 5, 0};
  const auto fifo = simulate_fifo(trace, full_supply(), 200);
  const auto edf = simulate_edf(trace, full_supply(), 200);
  EXPECT_EQ(fifo.misses, 1u);
  EXPECT_EQ(edf.misses, 0u);
  EXPECT_EQ(edf.jobs[1].completion, 6u);  // ran in slots 1..5
}

TEST(EdfRef, UnfinishedJobsCountAsMisses) {
  std::vector<workload::Job> trace(1);
  trace[0] = {JobId{0}, TaskId{0}, VmId{0}, DeviceId{0}, 0, 10, 5, 0};
  const auto r = simulate_edf(trace, [](Slot) { return false; }, 20);
  EXPECT_EQ(r.misses, 1u);
  EXPECT_EQ(r.busy_slots, 0u);
}

TEST(EdfRef, RespectsSupplyFunction) {
  std::vector<workload::Job> trace(1);
  trace[0] = {JobId{0}, TaskId{0}, VmId{0}, DeviceId{0}, 0, 20, 4, 0};
  // Supply only every other slot: 4 units of work finish at slot 7 (slots
  // 0,2,4,6).
  const auto r = simulate_edf(
      trace, [](Slot t) { return t % 2 == 0; }, 40);
  EXPECT_EQ(r.misses, 0u);
  EXPECT_EQ(r.jobs[0].completion, 7u);
}

}  // namespace
}  // namespace ioguard::sched
