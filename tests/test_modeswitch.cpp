// Mixed-criticality mode switching (DESIGN.md §17): ModeController protocol
// units, dual-criticality admission regimes, the MCS verification checks,
// and the end-to-end determinism contracts -- byte-identical results across
// --jobs widths and event/stepped execution modes with mid-trial switches,
// plus checkpoint resume of a trial that ended (crashed) in HI mode.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/verify_modeswitch.hpp"
#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "core/mode_controller.hpp"
#include "faults/fault_plan.hpp"
#include "sched/mcs_admission.hpp"
#include "system/checkpoint.hpp"
#include "system/experiment.hpp"
#include "system/parallel.hpp"
#include "system/runner.hpp"
#include "telemetry/prometheus.hpp"
#include "workload/task.hpp"

namespace ioguard {
namespace {

namespace fs = std::filesystem;
using core::CritMode;
using core::ModeController;
using core::ModeSwitchConfig;
using core::ModeTransitionRecord;

ModeSwitchConfig small_mode_config() {
  ModeSwitchConfig cfg;
  cfg.enabled = true;
  cfg.overrun_threshold = 2;
  cfg.recovery_hysteresis_slots = 100;
  cfg.hi_budget_factor = 1.5;
  return cfg;
}

// ---- ModeController protocol ----------------------------------------------

TEST(ModeController, ThresholdArmsSwitchAndRecordsDetectLatency) {
  ModeController ctl(2, small_mode_config());
  std::vector<std::size_t> to_hi;
  std::vector<std::size_t> to_lo;

  ctl.note_budget_overrun(VmId{0}, 10);
  ctl.advance(11, to_hi, to_lo);
  EXPECT_TRUE(to_hi.empty()) << "below threshold: no switch";
  EXPECT_EQ(ctl.vm_mode(0), CritMode::kLo);

  ctl.note_budget_overrun(VmId{0}, 14);
  ctl.advance(15, to_hi, to_lo);
  ASSERT_EQ(to_hi, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(ctl.hi(0));
  EXPECT_FALSE(ctl.hi(1));
  ctl.finalize_switch(0, /*lo_pending=*/5, /*jobs_shed=*/5);

  EXPECT_EQ(ctl.switches_to_hi(), 1u);
  EXPECT_EQ(ctl.overruns_observed(), 2u);
  ASSERT_EQ(ctl.switch_latencies().size(), 1u);
  EXPECT_EQ(ctl.switch_latencies()[0], Slot{5});  // first evidence 10 -> 15
  ASSERT_EQ(ctl.transitions().size(), 1u);
  const ModeTransitionRecord& rec = ctl.transitions()[0];
  EXPECT_TRUE(rec.to_hi);
  EXPECT_EQ(rec.vm.value, 0u);
  EXPECT_EQ(rec.lo_pending, 5u);
  EXPECT_EQ(rec.jobs_shed, 5u);
  EXPECT_EQ(rec.detect_latency, Slot{5});
}

TEST(ModeController, RecoveryIsHystereticAndEvidenceRestartsTheWindow) {
  auto cfg = small_mode_config();
  cfg.overrun_threshold = 1;
  ModeController ctl(1, cfg);
  std::vector<std::size_t> to_hi;
  std::vector<std::size_t> to_lo;

  ctl.note_budget_overrun(VmId{0}, 50);
  ctl.advance(50, to_hi, to_lo);
  ASSERT_EQ(to_hi.size(), 1u);
  ctl.finalize_switch(0, 0, 0);

  // One slot short of the window: still HI.
  to_hi.clear();
  ctl.advance(50 + cfg.recovery_hysteresis_slots - 1, to_hi, to_lo);
  EXPECT_TRUE(to_lo.empty());
  EXPECT_TRUE(ctl.hi(0));

  // Fresh evidence while HI restarts the window without a second switch.
  ctl.note_budget_overrun(VmId{0}, 120);
  ctl.advance(50 + cfg.recovery_hysteresis_slots, to_hi, to_lo);
  EXPECT_TRUE(to_lo.empty()) << "window restarted by the overrun at 120";
  EXPECT_EQ(ctl.switches_to_hi(), 1u);

  ctl.advance(120 + cfg.recovery_hysteresis_slots, to_hi, to_lo);
  ASSERT_EQ(to_lo, (std::vector<std::size_t>{0}));
  EXPECT_EQ(ctl.vm_mode(0), CritMode::kLo);
  EXPECT_EQ(ctl.recoveries(), 1u);
  ASSERT_EQ(ctl.transitions().size(), 2u);
  EXPECT_FALSE(ctl.transitions()[1].to_hi);
}

TEST(ModeController, BlockPropagationEscalatesEveryVm) {
  auto cfg = small_mode_config();
  cfg.overrun_threshold = 1;
  cfg.propagation_threshold = 1;
  ModeController ctl(3, cfg);
  std::vector<std::size_t> to_hi;
  std::vector<std::size_t> to_lo;

  ctl.note_budget_overrun(VmId{1}, 20);
  ctl.advance(20, to_hi, to_lo);
  // VM 1 by evidence, VMs 0 and 2 by propagation, ascending order.
  ASSERT_EQ(to_hi, (std::vector<std::size_t>{1, 0, 2}));
  EXPECT_TRUE(ctl.block_hi());
  EXPECT_EQ(ctl.hi_vms(), 3u);
  EXPECT_EQ(ctl.switches_to_hi(), 3u);
  EXPECT_EQ(ctl.propagated_switches(), 2u);
  for (const auto& rec : ctl.transitions())
    ctl.finalize_switch(rec.vm.value, 0, 0);

  // All quiet: the whole block recovers and the escalation latch clears.
  to_hi.clear();
  to_lo.clear();
  ctl.advance(20 + cfg.recovery_hysteresis_slots, to_hi, to_lo);
  EXPECT_EQ(to_lo.size(), 3u);
  EXPECT_FALSE(ctl.block_hi());
  EXPECT_EQ(ctl.hi_vms(), 0u);
}

TEST(ModeController, NextTransitionDueFeedsTheWakeHint) {
  auto cfg = small_mode_config();
  cfg.overrun_threshold = 1;
  ModeController ctl(1, cfg);
  EXPECT_EQ(ctl.next_transition_due(), kNeverSlot);

  ctl.note_budget_overrun(VmId{0}, 30);
  EXPECT_EQ(ctl.next_transition_due(), Slot{0}) << "armed switch: due now";

  std::vector<std::size_t> to_hi;
  std::vector<std::size_t> to_lo;
  ctl.advance(30, to_hi, to_lo);
  ctl.finalize_switch(0, 0, 0);
  EXPECT_EQ(ctl.next_transition_due(),
            Slot{30} + cfg.recovery_hysteresis_slots)
      << "HI VM: due at the recovery deadline";
}

// ---- dual-criticality admission (sched/mcs_admission) ----------------------

workload::IoTaskSpec task_spec(std::uint32_t id, Slot period, Slot wcet,
                               Slot wcet_hi) {
  workload::IoTaskSpec s;
  s.id = TaskId{id};
  s.name = "t" + std::to_string(id);
  s.period = period;
  s.deadline = period;
  s.wcet = wcet;
  s.wcet_hi = wcet_hi;
  if (wcet_hi != 0) s.criticality = workload::Criticality::kHi;
  return s;
}

TEST(McsAdmission, InflateServerClampsAtThePeriod) {
  const sched::ServerParams lo{10, 6};
  const auto hi = sched::inflate_server(lo, 1.5);
  EXPECT_EQ(hi.pi, Slot{10});
  EXPECT_EQ(hi.theta, Slot{9});
  const auto clamped = sched::inflate_server(lo, 5.0);
  EXPECT_EQ(clamped.theta, Slot{10}) << "Theta_hi never exceeds Pi";
}

TEST(McsAdmission, HiModeTasksetShedsLoAndInflatesBudgets) {
  workload::TaskSet set;
  set.add(task_spec(0, 100, 4, 8));
  set.add(task_spec(1, 50, 3, 0));  // LO: shed in HI mode
  const workload::TaskSet hi = sched::hi_mode_taskset(set);
  ASSERT_EQ(hi.size(), 1u);
  EXPECT_EQ(hi[0].wcet, Slot{8}) << "HI view runs at C_hi";
  EXPECT_EQ(sched::transition_carry_over(set), Slot{4});  // 8 - 4
}

TEST(McsAdmission, SingleCriticalityDegeneratesToTheoremFour) {
  workload::TaskSet set;
  set.add(task_spec(0, 20, 2, 0));
  set.add(task_spec(1, 40, 4, 0));
  const auto r = sched::mcs_admission_check({10, 4}, set, 1.5);
  EXPECT_TRUE(r.schedulable);
  EXPECT_TRUE(r.hi.schedulable) << "no HI tasks: vacuously schedulable";
  EXPECT_TRUE(r.transition.schedulable);
  EXPECT_TRUE(r.reason.empty());
}

TEST(McsAdmission, OverloadedTransitionRegimeIsRejected) {
  workload::TaskSet set;
  // HI task whose carry-over surcharge cannot fit a barely-adequate server.
  set.add(task_spec(0, 10, 4, 9));
  const auto r = sched::mcs_admission_check({10, 5}, set, 1.2);
  EXPECT_FALSE(r.schedulable);
  EXPECT_FALSE(r.reason.empty());
}

// ---- MCS verification checks (analysis/verify_modeswitch) ------------------

TEST(VerifyModeswitch, BudgetOrderViolationFiresMcs001) {
  // The bulk TaskSet constructor is the deserialization path: it bypasses
  // add()'s invariant check, which is exactly how a corrupt artifact with
  // C_hi < C_lo reaches the verifier.
  std::vector<workload::IoTaskSpec> specs;
  auto bad = task_spec(0, 20, 4, 0);
  bad.criticality = workload::Criticality::kHi;
  bad.wcet_hi = 2;  // C_hi < C_lo
  specs.push_back(bad);
  const std::vector<workload::TaskSet> vms = {
      workload::TaskSet(std::move(specs))};
  const std::vector<sched::ServerParams> servers = {{10, 5}};

  analysis::Report report;
  analysis::verify_mcs_admission(servers, vms, 1.5, report);
  ASSERT_FALSE(report.ok());
  ASSERT_FALSE(report.diagnostics().empty());
  EXPECT_EQ(report.diagnostics()[0].code, analysis::DiagCode::kMcsBudgetOrder);
}

TEST(VerifyModeswitch, ForgedSwitchFiresMcs005) {
  ModeTransitionRecord rec;
  rec.slot = 40;
  rec.vm = VmId{1};
  rec.to_hi = true;
  rec.lo_pending = 7;
  rec.jobs_shed = 3;  // kept part of the LO backlog: forged
  analysis::Report report;
  analysis::verify_mode_transitions({rec}, small_mode_config(), report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.diagnostics()[0].code,
            analysis::DiagCode::kMcsForgedModeSwitch);
}

TEST(VerifyModeswitch, ShortHiResidencyWarnsMcs006ButStaysOk) {
  ModeTransitionRecord up;
  up.slot = 40;
  up.vm = VmId{0};
  up.to_hi = true;
  ModeTransitionRecord down;
  down.slot = 60;  // residency 20 < hysteresis 100
  down.vm = VmId{0};
  down.to_hi = false;
  analysis::Report report;
  analysis::verify_mode_transitions({up, down}, small_mode_config(), report);
  EXPECT_TRUE(report.ok()) << "thrash is a warning, not an error";
  ASSERT_EQ(report.diagnostics().size(), 1u);
  EXPECT_EQ(report.diagnostics()[0].code,
            analysis::DiagCode::kMcsHysteresisThrash);
}

TEST(VerifyModeswitch, CleanTransitionLedgerPasses) {
  ModeTransitionRecord up;
  up.slot = 40;
  up.vm = VmId{0};
  up.to_hi = true;
  up.lo_pending = 4;
  up.jobs_shed = 4;
  ModeTransitionRecord down;
  down.slot = 200;
  down.vm = VmId{0};
  down.to_hi = false;
  analysis::Report report;
  analysis::verify_mode_transitions({up, down}, small_mode_config(), report);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics().empty());
}

// ---- end-to-end trials ------------------------------------------------------

sys::TrialConfig mcs_trial(std::size_t t, bool stepped = false) {
  sys::TrialConfig tc;
  tc.kind = sys::SystemKind::kIoGuard;
  tc.workload.num_vms = 4;
  tc.workload.target_utilization = 0.8;
  tc.workload.preload_fraction = 0.5;
  tc.workload.mixed_criticality = true;
  tc.min_jobs_per_task = 8;
  tc.trial_seed = mix_seed(42, sys::sweep_point_key(4, 0.8), t);
  auto plan = faults::FaultPlan::parse("overrun:rate=0.05,param=40");
  tc.faults = std::move(plan).value();
  tc.mode_switch.enabled = true;
  tc.mode_switch.overrun_threshold = 1;
  tc.mode_switch.recovery_hysteresis_slots = 200;
  tc.mode_switch.hi_budget_factor = 1.5;
  tc.stepped = stepped;
  return tc;
}

void expect_mcs_identical(const sys::TrialResult& a,
                          const sys::TrialResult& b) {
  EXPECT_EQ(a.jobs_counted, b.jobs_counted);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.critical_misses, b.critical_misses);
  EXPECT_EQ(a.goodput_bytes_per_s, b.goodput_bytes_per_s);
  EXPECT_EQ(a.misses_by_task, b.misses_by_task);
  EXPECT_EQ(a.mcs.switches_to_hi, b.mcs.switches_to_hi);
  EXPECT_EQ(a.mcs.recoveries, b.mcs.recoveries);
  EXPECT_EQ(a.mcs.propagated, b.mcs.propagated);
  EXPECT_EQ(a.mcs.overruns_observed, b.mcs.overruns_observed);
  EXPECT_EQ(a.mcs.lo_jobs_shed, b.mcs.lo_jobs_shed);
  EXPECT_EQ(a.mcs.lo_rejected, b.mcs.lo_rejected);
  EXPECT_EQ(a.mcs.hi_vms_at_end, b.mcs.hi_vms_at_end);
  EXPECT_EQ(a.mcs.hi_misses, b.mcs.hi_misses);
  EXPECT_EQ(a.mcs.switch_latency_slots.samples(),
            b.mcs.switch_latency_slots.samples());
}

TEST(ModeSwitchTrial, OverrunsDriveSwitchesSheddingAndRecovery) {
  const sys::TrialResult r = sys::run_trial(mcs_trial(0));
  EXPECT_GT(r.mcs.overruns_observed, 0u);
  EXPECT_GT(r.mcs.switches_to_hi, 0u);
  EXPECT_GT(r.mcs.lo_jobs_shed + r.mcs.lo_rejected, 0u)
      << "a switch must shed or reject LO work";
  EXPECT_EQ(r.mcs.switch_latency_slots.count(), r.mcs.switches_to_hi);
}

TEST(ModeSwitchTrial, DisabledFeatureLeavesCountersZero) {
  auto tc = mcs_trial(0);
  tc.mode_switch = ModeSwitchConfig{};  // disabled
  tc.workload.mixed_criticality = false;
  tc.faults = faults::FaultPlan{};
  const sys::TrialResult r = sys::run_trial(tc);
  EXPECT_EQ(r.mcs.switches_to_hi, 0u);
  EXPECT_EQ(r.mcs.overruns_observed, 0u);
  EXPECT_EQ(r.mcs.lo_jobs_shed, 0u);
  EXPECT_EQ(r.mcs.hi_misses, 0u);
  EXPECT_EQ(r.mcs.hi_vms_at_end, 0u);
  EXPECT_EQ(r.mcs.switch_latency_slots.count(), 0u);
}

TEST(ModeSwitchTrial, ResultsIdenticalAcrossJobCounts) {
  sys::ParallelRunner seq(1), par(4);
  const std::size_t trials = 5;
  const auto make = [](std::size_t t) { return mcs_trial(t); };
  const auto a = seq.run_trials(trials, make);
  const auto b = par.run_trials(trials, make);
  ASSERT_EQ(a.size(), trials);
  for (std::size_t t = 0; t < trials; ++t) {
    SCOPED_TRACE("trial " + std::to_string(t));
    expect_mcs_identical(a[t], b[t]);
  }
}

TEST(ModeSwitchTrial, EventAndSteppedModesAreByteEqual) {
  for (std::size_t t = 0; t < 3; ++t) {
    SCOPED_TRACE("trial " + std::to_string(t));
    const sys::TrialResult event = sys::run_trial(mcs_trial(t, false));
    const sys::TrialResult stepped = sys::run_trial(mcs_trial(t, true));
    expect_mcs_identical(event, stepped);
    EXPECT_GT(event.mcs.switches_to_hi, 0u)
        << "the equality must be exercised by actual mid-trial switches";
  }
}

TEST(ModeSwitchTrial, MetricsSeriesExportedEvenWhenAllZero) {
  // Satellite contract: once the feature flag is on, every shed/mode-switch
  // series appears in the export even at value 0, so check_faults.py-style
  // baselines cannot go order-dependent on which trial fired first.
  telemetry::MetricsRegistry on;
  auto quiet = mcs_trial(0);
  quiet.faults = faults::FaultPlan{};  // no overruns -> nothing ever fires
  quiet.metrics = &on;
  (void)sys::run_trial(quiet);
  std::ostringstream on_os;
  telemetry::write_prometheus(on_os, on);
  const std::string on_text = on_os.str();
  for (const char* series :
       {"ioguard_mode_switches_total", "ioguard_mode_lo_jobs_shed_total",
        "ioguard_mode_lo_rejected_total", "ioguard_mode_hi_misses_total",
        "ioguard_mode_overruns_observed_total", "ioguard_mode_hi_vms"}) {
    EXPECT_NE(on_text.find(series), std::string::npos)
        << series << " must be registered even at 0";
  }

  telemetry::MetricsRegistry off;
  auto disabled = mcs_trial(0);
  disabled.mode_switch = ModeSwitchConfig{};
  disabled.workload.mixed_criticality = false;
  disabled.faults = faults::FaultPlan{};
  disabled.metrics = &off;
  (void)sys::run_trial(disabled);
  std::ostringstream off_os;
  telemetry::write_prometheus(off_os, off);
  EXPECT_EQ(off_os.str().find("ioguard_mode_"), std::string::npos)
      << "flag off: no mode series may appear (pre-MCS byte-identity)";
}

TEST(ModeSwitchTrial, SummaryJsonCarriesMcsBlockOnlyWhenEnabled) {
  const auto tc = mcs_trial(0);
  const sys::TrialResult r = sys::run_trial(tc);
  std::ostringstream with;
  sys::write_trial_summary_json(with, tc, r);
  EXPECT_NE(with.str().find("\"mcs\""), std::string::npos);
  EXPECT_NE(with.str().find("\"hi_misses\""), std::string::npos);

  auto off = tc;
  off.mode_switch = ModeSwitchConfig{};
  off.workload.mixed_criticality = false;
  off.faults = faults::FaultPlan{};
  const sys::TrialResult r_off = sys::run_trial(off);
  std::ostringstream without;
  sys::write_trial_summary_json(without, off, r_off);
  EXPECT_EQ(without.str().find("\"mcs\""), std::string::npos);
}

// ---- checkpoint integration -------------------------------------------------

TEST(ModeSwitchCheckpoint, ConfigStringTokensAppearOnlyWhenEnabled) {
  const faults::FaultPlan plan;
  const faults::ResilienceConfig res;
  const std::string base = sys::point_config_string(
      sys::SystemKind::kIoGuard, 4, 0.8, 0.5, 4, 8, 42, plan, res);
  EXPECT_EQ(base.find("criticality"), std::string::npos);
  EXPECT_EQ(base.find("mcs="), std::string::npos);

  ModeSwitchConfig mode = small_mode_config();
  const std::string full = sys::point_config_string(
      sys::SystemKind::kIoGuard, 4, 0.8, 0.5, 4, 8, 42, plan, res,
      /*mixed_criticality=*/true, mode);
  EXPECT_NE(full.find(" criticality=1"), std::string::npos);
  EXPECT_NE(full.find(" mcs=2/100/0/15000"), std::string::npos);
  EXPECT_NE(fnv1a64(base), fnv1a64(full))
      << "an MCS journal must not resume under a non-MCS config (CKP002)";
}

TEST(ModeSwitchCheckpoint, TrialCrashedInHiModeResumesByteIdentical) {
  const auto dir = fs::temp_directory_path() / "ioguard_mcs_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "ck.bin").string();

  // Sticky hysteresis so the trial is still in HI mode at the horizon --
  // the state a crash mid-sweep would have journaled last.
  auto tc = mcs_trial(0);
  tc.mode_switch.recovery_hysteresis_slots = 1000000;
  const sys::TrialResult r = sys::run_trial(tc);
  ASSERT_GT(r.mcs.hi_vms_at_end, 0u) << "trial must end in HI mode";

  sys::CheckpointMeta meta;
  meta.config_echo = "mcs resume test";
  meta.fingerprint = fnv1a64(meta.config_echo);
  meta.planned_trials = 2;
  {
    auto journal = sys::CheckpointJournal::open(path, meta, /*resume=*/false);
    ASSERT_TRUE(journal.ok()) << journal.status();
    ASSERT_TRUE((*journal)->append(7, 0, false, r, nullptr).ok());
    // Journal destructor flushes; process "crashes" before trial 1 here.
  }
  auto resumed = sys::CheckpointJournal::open(path, meta, /*resume=*/true);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ASSERT_EQ((*resumed)->loaded(), 1u);
  const sys::CheckpointRecord* rec = (*resumed)->find(7, 0);
  ASSERT_NE(rec, nullptr);
  expect_mcs_identical(rec->result, r);
  EXPECT_EQ(rec->result.mcs.hi_vms_at_end, r.mcs.hi_vms_at_end);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace ioguard
