// Tests for the determinism linter (lint/lint.hpp): code table, module
// classification, the comment/string stripper, suppression semantics, the
// golden fixture corpus under tests/data/lint/, and report rendering.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace ioguard::lint {
namespace {

// Injected by tests/CMakeLists.txt; points at tests/data/lint in the source
// tree.
const std::string kFixtures = IOGUARD_LINT_FIXTURE_DIR;

// The suppression marker, assembled so the linter cannot mistake this test
// for carrying real suppressions when pointed at the tests/ tree.
const std::string kAllow = std::string("IOGUARD_LINT_") + "ALLOW";

/// (code, line, suppressed) triples of a scan, sorted, for golden compares.
std::vector<std::tuple<std::string, std::size_t, bool>> triples(
    const Linter& linter) {
  std::vector<std::tuple<std::string, std::size_t, bool>> out;
  for (const LintFinding& f : linter.findings())
    out.emplace_back(code_string(f.code), f.line, f.suppressed);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              return std::get<1>(a) != std::get<1>(b)
                         ? std::get<1>(a) < std::get<1>(b)
                         : std::get<0>(a) < std::get<0>(b);
            });
  return out;
}

TEST(LintCodes, StableStringsRoundTrip) {
  for (std::size_t v = 1; v <= kLintCodeCount; ++v) {
    const auto code = static_cast<LintCode>(v);
    LintCode parsed{};
    ASSERT_TRUE(parse_code(code_string(code), &parsed)) << code_string(code);
    EXPECT_EQ(parsed, code);
    EXPECT_STRNE(code_summary(code), "?");
  }
}

TEST(LintCodes, ParseRejectsUnknownSpellings) {
  LintCode code{};
  EXPECT_FALSE(parse_code("LNT000", &code));
  EXPECT_FALSE(parse_code("LNT011", &code));
  EXPECT_FALSE(parse_code("LNT1", &code));
  EXPECT_FALSE(parse_code("SIG101", &code));
  EXPECT_FALSE(parse_code("LNT00a", &code));
  EXPECT_FALSE(parse_code("", &code));
}

TEST(LintModules, ClassifiesByPathComponent) {
  EXPECT_TRUE(deterministic_module("src/core/vmanager.hpp"));
  EXPECT_TRUE(deterministic_module("src/system/runner.cpp"));
  EXPECT_TRUE(deterministic_module("tests/data/lint/core/x.cpp"));
  EXPECT_FALSE(deterministic_module("src/common/log.cpp"));
  EXPECT_FALSE(deterministic_module("tools/ioguard_lint.cpp"));
  // The component must match exactly: "coreutils" is not "core".
  EXPECT_FALSE(deterministic_module("src/coreutils/x.cpp"));
}

TEST(LintStripper, RemovesCommentsAndLiteralsKeepingLines) {
  const auto lines = strip_to_code_lines(
      "int a; // rand()\n"
      "const char* s = \"rand() \\\" still string\";\n"
      "/* time(nullptr)\n"
      "   spans lines */ int b;\n"
      "auto r = R\"x(getenv(\"HOME\"))x\";\n");
  ASSERT_EQ(lines.size(), 6u);  // trailing newline yields one empty tail
  EXPECT_EQ(lines[0], "int a; ");
  EXPECT_EQ(lines[1], "const char* s = \"\";");
  EXPECT_EQ(lines[2], "");
  EXPECT_EQ(lines[3], " int b;");
  EXPECT_EQ(lines[4], "auto r = ;");
}

TEST(LintStripper, CharLiteralsAndDivisionSurvive) {
  const auto lines = strip_to_code_lines("int c = x / y; char q = '\\'';");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "int c = x / y; char q = '';");
}

TEST(LintScan, FixtureBadRandom) {
  Linter linter;
  ASSERT_TRUE(linter.scan_file(kFixtures + "/core/bad_random.cpp"));
  const auto got = triples(linter);
  const std::vector<std::tuple<std::string, std::size_t, bool>> want = {
      {"LNT001", 7, false},  // std::mt19937
      {"LNT001", 7, false},  // std::random_device
      {"LNT001", 8, false},  // rand()
      {"LNT001", 9, false},  // srand()
  };
  EXPECT_EQ(got, want);
}

TEST(LintScan, FixtureBadUnordered) {
  Linter linter;
  ASSERT_TRUE(linter.scan_file(kFixtures + "/core/bad_unordered.cpp"));
  const auto got = triples(linter);
  const std::vector<std::tuple<std::string, std::size_t, bool>> want = {
      {"LNT003", 7, false},   // unordered_map member
      {"LNT004", 10, false},  // .get() < .get()
      {"LNT004", 13, false},  // std::less<int*>
      {"LNT008", 16, false},  // std::getenv
  };
  EXPECT_EQ(got, want);
}

TEST(LintScan, FixtureBadDenseLoop) {
  Linter linter;
  ASSERT_TRUE(linter.scan_file(kFixtures + "/core/bad_dense_loop.cpp"));
  const auto got = triples(linter);
  const std::vector<std::tuple<std::string, std::size_t, bool>> want = {
      {"LNT009", 10, false},  // for (Slot ... < horizon)
      {"LNT009", 15, false},  // for (Cycle ... < horizon_cycles)
      {"LNT009", 21, true},   // sanctioned reference loop, marker above
  };
  EXPECT_EQ(got, want);
  EXPECT_EQ(linter.active_count(), 2u);
}

TEST(LintScan, FixtureBadModeState) {
  Linter linter;
  ASSERT_TRUE(linter.scan_file(kFixtures + "/core/bad_mode_state.cpp"));
  const auto got = triples(linter);
  const std::vector<std::tuple<std::string, std::size_t, bool>> want = {
      {"LNT010", 10, false},  // vm_modes_[vm] in a scheduler fast path
      {"LNT010", 12, false},  // raw block_hi_ read
      {"LNT010", 15, true},   // suppressed migration shim, marker above
      {"LNT010", 17, false},  // shadow copy of vm_modes_
      {"LNT010", 18, false},  // shadow copy of block_hi_
  };
  EXPECT_EQ(got, want);
  EXPECT_EQ(linter.active_count(), 4u);
}

TEST(LintScan, ModeStateRuleExemptsTheControllerAndOtherModules) {
  // The controller's own sources define the members; naming them there is
  // the point, not a violation.
  Linter home;
  home.scan_source("src/core/mode_controller.cpp",
                   "void f() { vm_modes_[0] = {}; block_hi_ = true; }\n");
  EXPECT_TRUE(home.findings().empty());

  // Outside deterministic modules the tokens are legal (tools may mirror
  // controller state for display).
  Linter tool;
  tool.scan_source("tools/mode_dump.cpp",
                   "bool g(const C& c) { return c.block_hi_; }\n");
  EXPECT_TRUE(tool.findings().empty());

  // Substrings of longer identifiers never fire.
  Linter sub;
  sub.scan_source("src/core/x.cpp",
                  "int shadow_vm_modes_count = 0; int my_block_hi_x = 1;\n");
  EXPECT_TRUE(sub.findings().empty());
}

TEST(LintScan, DenseLoopRuleIsModuleScoped) {
  // The same loop outside a deterministic module is legal: analysis
  // utilities and tools may step densely without a marker.
  Linter linter;
  linter.scan_source("tools/sweep_tool.cpp",
                     "void f(Slot horizon) {\n"
                     "  for (Slot t = 0; t < horizon; ++t) {}\n"
                     "}\n");
  EXPECT_TRUE(linter.findings().empty());
}

TEST(LintScan, FixtureClockUseScopesModuleRules) {
  Linter linter;
  ASSERT_TRUE(linter.scan_file(kFixtures + "/common/clock_use.cpp"));
  // Only the wall clock fires: "common" is not a deterministic module, so
  // the unordered_map and getenv in the same file are legal there.
  const auto got = triples(linter);
  const std::vector<std::tuple<std::string, std::size_t, bool>> want = {
      {"LNT002", 11, false},
  };
  EXPECT_EQ(got, want);
}

TEST(LintScan, FixtureSuppressedCoversBothLinesAndHygiene) {
  Linter linter;
  ASSERT_TRUE(linter.scan_file(kFixtures + "/core/suppressed.cpp"));
  const auto got = triples(linter);
  const std::vector<std::tuple<std::string, std::size_t, bool>> want = {
      {"LNT003", 8, true},    // marker on line 7 covers the next line
      {"LNT005", 10, true},   // marker on its own line
      {"LNT006", 12, false},  // malformed marker (no colon)
      {"LNT007", 15, false},  // well-formed marker with nothing to cover
  };
  EXPECT_EQ(got, want);
  EXPECT_EQ(linter.active_count(), 2u);
  EXPECT_EQ(linter.suppressed_count(), 2u);
  for (const LintFinding& f : linter.findings()) {
    if (f.suppressed) {
      EXPECT_FALSE(f.suppress_reason.empty());
    }
  }
}

TEST(LintScan, FixtureCleanHasNoFindings) {
  Linter linter;
  ASSERT_TRUE(linter.scan_file(kFixtures + "/clean/clean.cpp"));
  EXPECT_TRUE(linter.findings().empty());
  EXPECT_EQ(linter.files_scanned(), 1u);
}

TEST(LintScan, MissingFileReturnsFalse) {
  Linter linter;
  EXPECT_FALSE(linter.scan_file(kFixtures + "/no_such_file.cpp"));
}

TEST(LintScan, TokenBoundariesAndWhitelists) {
  Linter linter;
  linter.scan_source("src/core/x.cpp",
                     "auto a = steady_clock::now();\n"
                     "int b = operand_count(2);\n"
                     "int c = myrand();\n");
  EXPECT_TRUE(linter.findings().empty());

  Linter rng;
  rng.scan_source("src/common/rng.hpp", "auto d = std::mt19937{};\n");
  EXPECT_TRUE(rng.findings().empty()) << "rng.hpp is the sanctioned RNG";

  Linter hit;
  hit.scan_source("src/common/other.hpp", "auto d = std::mt19937{};\n");
  EXPECT_EQ(hit.active_count(), 1u);
}

TEST(LintScan, SuppressionReasonIsRequired) {
  Linter linter;
  linter.scan_source("src/core/x.cpp",
                     "int a = rand();  // " + kAllow + "(LNT001:   )\n");
  // The empty reason is LNT006 and the rand() finding stays active.
  ASSERT_EQ(linter.findings().size(), 2u);
  EXPECT_EQ(linter.active_count(), 2u);
}

TEST(LintScan, WrongCodeSuppressionGoesStale) {
  Linter linter;
  linter.scan_source("src/core/x.cpp",
                     "// " + kAllow + "(LNT002: wrong code for the line)\n" +
                         "int a = rand();\n");
  // The LNT001 finding stays active and the LNT002 marker is stale.
  const auto got = triples(linter);
  const std::vector<std::tuple<std::string, std::size_t, bool>> want = {
      {"LNT007", 1, false},
      {"LNT001", 2, false},
  };
  EXPECT_EQ(got, want);
}

TEST(LintReport, JsonCarriesSchemaAndEscapes) {
  Linter linter;
  linter.scan_source("src/core/quo\"te.cpp", "int a = rand();\n");
  std::ostringstream os;
  linter.render_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"tool\": \"ioguard_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"code\": \"LNT001\""), std::string::npos);
  EXPECT_NE(json.find("quo\\\"te.cpp"), std::string::npos)
      << "quotes in paths must be escaped";
}

TEST(LintReport, TextRendersSummaryLine) {
  Linter linter;
  linter.scan_source("src/core/x.cpp", "int a = rand();\n");
  std::ostringstream os;
  linter.render_text(os);
  EXPECT_NE(os.str().find("1 active finding(s)"), std::string::npos);
  EXPECT_NE(os.str().find("src/core/x.cpp:1: LNT001"), std::string::npos);
}

TEST(LintSelfScan, LinterSourcesAreExemptPatternTables) {
  Linter linter;
  // The real lint.cpp contains every pattern as a string literal; pointing
  // the linter at itself must not report the rule table as violations.
  linter.scan_source("src/lint/lint.cpp", "int a = rand();\n");
  EXPECT_TRUE(linter.findings().empty());
}

}  // namespace
}  // namespace ioguard::lint
