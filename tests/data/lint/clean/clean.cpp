// Lint fixture: a clean file. Every trigger token below hides in a comment,
// a string, or a raw string -- the stripper must remove them all, so the
// golden expectation for this file is zero findings.
//
//   rand() srand() std::unordered_map std::ofstream getenv("X")
#include <string>

const char* kDoc = "std::random_device and system_clock::now() as prose";
const char* kRaw = R"lint(rand(); std::unordered_map<int,int> m; /* " */)lint";
/* block comment: time(nullptr) gettimeofday clock_gettime */

int operand_count(int operands) { return operands; }  // 'rand' inside a word
