// Lint fixture: LNT009 -- dense full-horizon stepping in a deterministic
// module. Slot/Cycle loops bounded by a horizon fire; loops over other
// bounds, or with a written suppression, do not.
#include <cstdint>

using Slot = std::uint64_t;
using Cycle = std::uint64_t;

void dense(Slot horizon) {
  for (Slot now = 0; now < horizon; ++now) {  // line 10: LNT009
  }
}

void dense_cycles(Cycle horizon_cycles) {
  for (Cycle now = 0; now < horizon_cycles; ++now) {  // line 15: LNT009
  }
}

void sanctioned(Slot horizon) {
  // IOGUARD_LINT_ALLOW(LNT009: fixture -- reference simulator is dense)
  for (Slot now = 0; now < horizon; ++now) {  // line 21: suppressed
  }
}

void fine(Slot releases) {
  // Bounded by the release count, not the horizon: no finding.
  for (Slot i = 0; i < releases; ++i) {
  }
}
