// Lint fixture: module-scoped rules LNT003/LNT004/LNT008 -- this file sits
// under a "core" path component, so it counts as a deterministic module.
#include <cstdlib>
#include <memory>
#include <unordered_map>

std::unordered_map<int, int> table;  // line 7: LNT003

bool before(const std::unique_ptr<int>& a, const std::unique_ptr<int>& b) {
  return a.get() < b.get();  // line 10: LNT004
}

std::map<std::unique_ptr<int>, int, std::less<int*>> by_addr;  // line 13: LNT004

int config() {
  const char* env = std::getenv("IOGUARD_FIXTURE");  // line 16: LNT008
  return env != nullptr;
}
