// Lint fixture: LNT001 (nondeterministic randomness). NOT compiled; scanned
// by test_lint.cpp, which pins the exact (code, line) set found here.
#include <cstdlib>
#include <random>

int noisy() {
  std::mt19937 gen{std::random_device{}()};  // line 7: two LNT001 hits
  int x = rand();                            // line 8: LNT001
  srand(42);                                 // line 9: LNT001
  int ok = mix_seed(7);       // sanctioned path: no finding
  int myrand_value = myrand();  // identifier boundary: not rand()
  // rand() in a comment must not fire; nor "rand()" here:
  const char* s = "call rand() for chaos";
  return x + ok + myrand_value + (s != nullptr);
}
