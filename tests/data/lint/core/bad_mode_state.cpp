// Lint fixture: LNT010 -- criticality-mode state read outside
// ModeController. Raw accesses to the private members (`vm_modes_`,
// `block_hi_`) fire in deterministic modules; accessor calls and a written
// suppression do not.
#include <cstdint>
#include <vector>

struct ShadowSched {
  bool hi_fast_path(std::size_t vm) const {
    return vm_modes_[vm] != 0;  // line 10: LNT010
  }
  bool block_escalated() const { return block_hi_; }  // line 12: LNT010

  // IOGUARD_LINT_ALLOW(LNT010: fixture -- migration shim reads the old copy)
  bool legacy(std::size_t vm) const { return vm_modes_[vm] != 0; }  // line 15

  std::vector<std::uint8_t> vm_modes_;  // line 17: LNT010 (shadow copy)
  bool block_hi_ = false;               // line 18: LNT010 (shadow copy)
};

struct Sanctioned {
  // Accessor names are fine: only the raw members are flagged.
  bool ok(std::size_t vm) const { return hi(vm) || block_hi(); }
  bool hi(std::size_t) const { return false; }
  bool block_hi() const { return false; }
};
