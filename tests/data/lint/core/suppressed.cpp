// Lint fixture: suppression semantics. One good marker covering the next
// line, one covering its own line, one malformed (LNT006), one stale
// (LNT007).
#include <fstream>
#include <unordered_map>

// IOGUARD_LINT_ALLOW(LNT003: fixture -- lookup table, never iterated)
std::unordered_map<int, int> covered_next_line;  // line 8: suppressed

std::ofstream raw_log;  // IOGUARD_LINT_ALLOW(LNT005: fixture -- append log)

// IOGUARD_LINT_ALLOW(LNT001 missing colon and reason)
int no_rng_here = 0;  // line 13: the marker above is LNT006

// IOGUARD_LINT_ALLOW(LNT002: nothing on this or the next line reads a clock)
int no_clock_here = 0;  // line 16: the marker above is LNT007
