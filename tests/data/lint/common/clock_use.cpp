// Lint fixture: LNT002 fires tree-wide, but the module-scoped rules must
// NOT fire here -- "common" is not a deterministic module, so the hash map
// and getenv below are legal (infrastructure code orders its own output).
#include <chrono>
#include <cstdlib>
#include <unordered_map>

std::unordered_map<int, int> cache;  // no finding: not a result module

long stamp() {
  auto wall = std::chrono::system_clock::now();  // line 11: LNT002
  auto mono = std::chrono::steady_clock::now();  // sanctioned: no finding
  const char* home = std::getenv("HOME");        // no finding here
  (void)home;
  return wall.time_since_epoch().count() + mono.time_since_epoch().count();
}
