// Tests for the tooling layer: CLI parser, event trace buffer, and
// task/trace CSV round-tripping.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/status.hpp"
#include "core/event_trace.hpp"
#include "core/hypervisor.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"
#include "workload/trace_io.hpp"

namespace ioguard {
namespace {

// ------------------------------------------------------------------- CLI

TEST(Cli, ParsesEqualsAndSwitchForms) {
  const char* argv[] = {"prog", "--vms=8", "--util=0.7", "--verbose",
                        "input.csv"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("vms", 0), 8);
  EXPECT_DOUBLE_EQ(args.get_double("util", 0.0), 0.7);
  EXPECT_TRUE(args.get_bool("verbose", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, FallbacksForMissingAndMalformed) {
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.get_int("n", 5), 5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_EQ(args.get("missing", "x"), "x");
  EXPECT_FALSE(args.get_bool("missing", false));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_TRUE(args.has("n"));
}

TEST(Cli, BooleanSwitchValues) {
  const char* argv[] = {"prog", "--a", "--b=0", "--c=yes"};
  CliArgs args(4, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
}

// ----------------------------------------------------------- event trace

core::TraceEvent event(Slot slot, core::TraceEventKind kind) {
  core::TraceEvent e;
  e.slot = slot;
  e.kind = kind;
  e.device = DeviceId{0};
  e.vm = VmId{1};
  e.task = TaskId{2};
  e.job = JobId{3};
  return e;
}

TEST(EventTrace, RecordsAndCounts) {
  core::EventTrace trace(16);
  trace.record(event(1, core::TraceEventKind::kSubmit));
  trace.record(event(2, core::TraceEventKind::kComplete));
  trace.record(event(3, core::TraceEventKind::kComplete));
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.count(core::TraceEventKind::kSubmit), 1u);
  EXPECT_EQ(trace.count(core::TraceEventKind::kComplete), 2u);
  EXPECT_EQ(trace.total_recorded(), 3u);
}

TEST(EventTrace, RingOverwritesOldest) {
  core::EventTrace trace(4);
  for (Slot s = 0; s < 10; ++s)
    trace.record(event(s, core::TraceEventKind::kSubmit));
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.overwritten(), 6u);
  std::ostringstream os;
  trace.dump_csv(os);
  // Oldest surviving event is slot 6.
  EXPECT_NE(os.str().find("\n6,"), std::string::npos);
  EXPECT_EQ(os.str().find("\n5,"), std::string::npos);
}

TEST(EventTrace, OverwrittenAccountingAcrossWraps) {
  core::EventTrace trace(3);
  EXPECT_EQ(trace.overwritten(), 0u);
  for (Slot s = 0; s < 3; ++s)
    trace.record(event(s, core::TraceEventKind::kSubmit));
  EXPECT_EQ(trace.overwritten(), 0u);  // exactly full: nothing lost yet
  trace.record(event(3, core::TraceEventKind::kSubmit));
  EXPECT_EQ(trace.overwritten(), 1u);
  for (Slot s = 4; s < 10; ++s)
    trace.record(event(s, core::TraceEventKind::kSubmit));
  EXPECT_EQ(trace.overwritten(), 7u);  // 10 recorded - 3 kept
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_EQ(trace.size(), 3u);
}

TEST(EventTrace, OrderedIsInsertionOrderAfterSaturation) {
  core::EventTrace trace(4);
  for (Slot s = 0; s < 11; ++s)  // head ends mid-ring, not at index 0
    trace.record(event(s, core::TraceEventKind::kSubmit));
  // ordered() must walk oldest -> newest across the wrap point: 7,8,9,10.
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(trace.ordered(i).slot, 7 + i);
  // CSV dumps in the same oldest-first order.
  std::ostringstream os;
  trace.dump_csv(os);
  const std::string csv = os.str();
  EXPECT_LT(csv.find("\n7,"), csv.find("\n8,"));
  EXPECT_LT(csv.find("\n8,"), csv.find("\n9,"));
  EXPECT_LT(csv.find("\n9,"), csv.find("\n10,"));
}

TEST(EventTrace, PerKindCountsSurviveOverwrite) {
  core::EventTrace trace(2);
  for (int i = 0; i < 5; ++i)
    trace.record(event(i, core::TraceEventKind::kSubmit));
  for (int i = 0; i < 3; ++i)
    trace.record(event(5 + i, core::TraceEventKind::kComplete));
  // Only 2 events survive in the ring, but the per-kind totals cover
  // everything ever recorded.
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.count(core::TraceEventKind::kSubmit), 5u);
  EXPECT_EQ(trace.count(core::TraceEventKind::kComplete), 3u);
  trace.clear();
  EXPECT_EQ(trace.count(core::TraceEventKind::kSubmit), 0u);
  EXPECT_EQ(trace.overwritten(), 0u);
}

TEST(EventTrace, ToStringCoversEveryKind) {
  ASSERT_EQ(core::all_trace_event_kinds().size(),
            core::kTraceEventKindCount);
  std::set<std::string> names;
  for (auto kind : core::all_trace_event_kinds()) {
    const std::string name = core::to_string(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(name.find('?'), std::string::npos) << "unnamed kind";
    names.insert(name);
  }
  EXPECT_EQ(names.size(), core::kTraceEventKindCount);  // all distinct
  EXPECT_EQ(std::string(core::to_string(core::TraceEventKind::kDeadlineMiss)),
            "deadline_miss");
  EXPECT_EQ(std::string(core::to_string(core::TraceEventKind::kDemote)),
            "demote");
}

TEST(EventTrace, CsvHeaderAndRow) {
  core::EventTrace trace(8);
  core::TraceEvent e = event(42, core::TraceEventKind::kRchannelGrant);
  e.aux = 17;
  trace.record(e);
  std::ostringstream os;
  trace.dump_csv(os);
  EXPECT_NE(os.str().find("slot,kind,device,vm,task,job,aux"),
            std::string::npos);
  EXPECT_NE(os.str().find("42,rchannel_grant,0,1,2,3,17"), std::string::npos);
}

TEST(EventTrace, HypervisorEmitsEvents) {
  workload::CaseStudyConfig wcfg;
  wcfg.num_vms = 2;
  wcfg.target_utilization = 0.5;
  wcfg.preload_fraction = 0.4;
  const auto wl = workload::build_case_study(wcfg);
  core::HypervisorConfig hcfg;
  hcfg.num_vms = 2;
  core::Hypervisor hyp(wl, hcfg);
  core::EventTrace trace;
  hyp.set_tracer(&trace);

  workload::Job j;
  j.id = JobId{1};
  j.task = wl.runtime()[0].id;
  j.vm = wl.runtime()[0].vm;
  j.device = wl.runtime()[0].device;
  j.release = 0;
  j.absolute_deadline = 100000;
  j.wcet = 2;
  j.payload_bytes = 8;
  ASSERT_TRUE(hyp.submit(j, 0));
  std::vector<iodev::Completion> done;
  for (Slot s = 0; s < 20000 && trace.count(core::TraceEventKind::kComplete) ==
                                    0; ++s)
    hyp.tick_slot(s, done);

  EXPECT_GE(trace.count(core::TraceEventKind::kSubmit), 1u);
  EXPECT_GE(trace.count(core::TraceEventKind::kRchannelGrant), 1u);
  EXPECT_GE(trace.count(core::TraceEventKind::kComplete), 1u);
}

// -------------------------------------------------------------- Status

TEST(Status, OkAndErrorBasics) {
  EXPECT_TRUE(OkStatus().ok());
  const Status err = InvalidArgumentError("bad flag");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.message(), "bad flag");
  EXPECT_NE(err.to_string().find("bad flag"), std::string::npos);
}

TEST(Status, ExitCodeMapping) {
  EXPECT_EQ(exit_code(OkStatus()), 0);
  EXPECT_EQ(exit_code(InvalidArgumentError("x")), 2);
  EXPECT_EQ(exit_code(NotFoundError("x")), 2);
  EXPECT_EQ(exit_code(OutOfRangeError("x")), 2);
  EXPECT_EQ(exit_code(UnavailableError("x")), 2);
  EXPECT_EQ(exit_code(FailedPreconditionError("x")), 1);
  EXPECT_EQ(exit_code(DataLossError("x")), 1);
  EXPECT_EQ(exit_code(InternalError("x")), 1);
}

TEST(Status, StatusOrValueAndError) {
  StatusOr<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(7), 42);

  StatusOr<int> bad = NotFoundError("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(7), 7);
}

// -------------------------------------------------------------- CliSpec

TEST(CliSpec, TypedDefaultsAndParsedValues) {
  CliSpec spec("test tool");
  spec.flag_int("vms", 8, "VM count");
  spec.flag_double("util", 0.7, "target utilization");
  spec.flag("out", "", "output path");
  spec.flag_switch("verbose", "chatty");

  const char* argv[] = {"prog", "--vms=4", "--verbose"};
  const auto args = spec.parse(3, argv);
  ASSERT_TRUE(args.ok()) << args.status().to_string();
  EXPECT_EQ(args->get_int("vms"), 4);              // parsed
  EXPECT_DOUBLE_EQ(args->get_double("util"), 0.7); // registered default
  EXPECT_TRUE(args->get_bool("verbose"));
  EXPECT_EQ(args->get("out"), "");
}

TEST(CliSpec, RejectsUnknownFlagsAndBadTypes) {
  CliSpec spec("test tool");
  spec.flag_int("vms", 8, "VM count");

  const char* unknown[] = {"prog", "--bogus=1"};
  const auto u = spec.parse(2, unknown);
  ASSERT_FALSE(u.ok());
  EXPECT_EQ(u.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(u.status().message().find("bogus"), std::string::npos);

  const char* bad_type[] = {"prog", "--vms=abc"};
  const auto b = spec.parse(2, bad_type);
  ASSERT_FALSE(b.ok());
  EXPECT_NE(b.status().message().find("vms"), std::string::npos);
}

TEST(CliSpec, RequiredFlagsAndPositionals) {
  CliSpec spec("test tool");
  spec.required("in", "input file");
  spec.positional("FILE", "extra input");

  const char* missing[] = {"prog"};
  ASSERT_FALSE(spec.parse(1, missing).ok());

  const char* full[] = {"prog", "--in=x.csv", "pos.csv"};
  const auto args = spec.parse(3, full);
  ASSERT_TRUE(args.ok()) << args.status().to_string();
  EXPECT_EQ(args->get("in"), "x.csv");
  ASSERT_EQ(args->positional().size(), 1u);
  EXPECT_EQ(args->positional()[0], "pos.csv");
}

TEST(CliSpec, HelpShortCircuitsValidation) {
  CliSpec spec("test tool");
  spec.required("in", "input file");
  const char* argv[] = {"prog", "--help"};
  const auto args = spec.parse(2, argv);
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->help_requested());
  const std::string help = spec.help_text("prog");
  EXPECT_NE(help.find("--in"), std::string::npos);
  EXPECT_NE(help.find("test tool"), std::string::npos);
}

TEST(CliSpec, ExtractRemovesOwnFlagsFromArgv) {
  CliSpec spec("bench tool");
  spec.flag_int("jobs", 1, "fan-out");
  spec.flag("faults", "", "fault plan");

  const char* a0 = "prog";
  const char* a1 = "--jobs=4";
  const char* a2 = "--benchmark_filter=foo";
  const char* a3 = "--faults=device-stall";
  char* argv[] = {const_cast<char*>(a0), const_cast<char*>(a1),
                  const_cast<char*>(a2), const_cast<char*>(a3), nullptr};
  int argc = 4;
  const auto args = spec.extract(&argc, argv);
  ASSERT_TRUE(args.ok()) << args.status().to_string();
  EXPECT_EQ(args->get_int("jobs"), 4);
  EXPECT_EQ(args->get("faults"), "device-stall");
  // Only the unregistered benchmark flag survives for the harness.
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "--benchmark_filter=foo");
}

// ---------------------------------------------------------------- CSV I/O

TEST(TraceIo, TaskSetRoundTrip) {
  workload::CaseStudyConfig cfg;
  cfg.num_vms = 4;
  cfg.preload_fraction = 0.4;
  const auto wl = workload::build_case_study(cfg);

  std::stringstream buffer;
  workload::write_taskset_csv(buffer, wl.tasks);
  const auto restored_or = workload::read_taskset_csv(buffer);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().to_string();
  const auto& restored = *restored_or;

  ASSERT_EQ(restored.size(), wl.tasks.size());
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored[i].id, wl.tasks[i].id);
    EXPECT_EQ(restored[i].name, wl.tasks[i].name);
    EXPECT_EQ(restored[i].cls, wl.tasks[i].cls);
    EXPECT_EQ(restored[i].kind, wl.tasks[i].kind);
    EXPECT_EQ(restored[i].period, wl.tasks[i].period);
    EXPECT_EQ(restored[i].wcet, wl.tasks[i].wcet);
    EXPECT_EQ(restored[i].deadline, wl.tasks[i].deadline);
    EXPECT_EQ(restored[i].offset, wl.tasks[i].offset);
    EXPECT_EQ(restored[i].payload_bytes, wl.tasks[i].payload_bytes);
  }
}

TEST(TraceIo, JobTraceRoundTrip) {
  workload::CaseStudyConfig cfg;
  const auto wl = workload::build_case_study(cfg);
  workload::ArrivalConfig acfg;
  acfg.horizon = 5000;
  const auto trace = workload::generate_trace(wl.tasks, acfg);

  std::stringstream buffer;
  workload::write_trace_csv(buffer, trace);
  const auto restored_or = workload::read_trace_csv(buffer);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().to_string();
  const auto& restored = *restored_or;

  ASSERT_EQ(restored.size(), trace.size());
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored[i].id, trace[i].id);
    EXPECT_EQ(restored[i].release, trace[i].release);
    EXPECT_EQ(restored[i].absolute_deadline, trace[i].absolute_deadline);
    EXPECT_EQ(restored[i].wcet, trace[i].wcet);
  }
}

TEST(TraceIo, MalformedRowsRejected) {
  std::stringstream missing_header;
  const auto no_header = workload::read_taskset_csv(missing_header);
  ASSERT_FALSE(no_header.ok());
  EXPECT_EQ(no_header.status().code(), StatusCode::kInvalidArgument);

  std::stringstream short_row;
  short_row << "id,vm,device,name,class,kind,period,wcet,deadline,offset,"
               "payload\n1,2,3\n";
  const auto bad_row = workload::read_taskset_csv(short_row);
  ASSERT_FALSE(bad_row.ok());
  EXPECT_NE(bad_row.status().message().find("line 2"), std::string::npos);

  std::stringstream bad_class;
  bad_class << "id,vm,device,name,class,kind,period,wcet,deadline,offset,"
               "payload\n0,0,0,x,alien,runtime,10,1,10,0,8\n";
  const auto bad_cls = workload::read_taskset_csv(bad_class);
  ASSERT_FALSE(bad_cls.ok());
  EXPECT_NE(bad_cls.status().message().find("alien"), std::string::npos);
}

}  // namespace
}  // namespace ioguard
