// Telemetry subsystem tests: metrics registry semantics, exporter formats,
// span reconstruction from the event trace, and the runner wiring.
#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/event_trace.hpp"
#include "system/runner.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/spans.hpp"

namespace ioguard {
namespace {

using core::EventTrace;
using core::TraceEvent;
using core::TraceEventKind;
using telemetry::LatencyHistogram;
using telemetry::Labels;
using telemetry::MetricsRegistry;

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, CounterSeriesAreDistinctPerLabels) {
  MetricsRegistry reg;
  reg.counter("jobs_total", {{"vm", "0"}}).inc(3);
  reg.counter("jobs_total", {{"vm", "1"}}).inc();
  EXPECT_EQ(reg.counter("jobs_total", {{"vm", "0"}}).value(), 3u);
  EXPECT_EQ(reg.counter("jobs_total", {{"vm", "1"}}).value(), 1u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, GaugeKeepsLastWrite) {
  MetricsRegistry reg;
  reg.gauge("busy_frac").set(0.25);
  reg.gauge("busy_frac").set(0.75);
  EXPECT_DOUBLE_EQ(reg.gauge("busy_frac").value(), 0.75);
}

TEST(MetricsRegistry, InstrumentReferencesStayStable) {
  MetricsRegistry reg;
  auto& c = reg.counter("a_total");
  // Force more family/instrument allocations, then write via the old ref.
  for (int i = 0; i < 64; ++i)
    reg.counter("churn_total", {{"i", std::to_string(i)}}).inc();
  c.inc(7);
  EXPECT_EQ(reg.counter("a_total").value(), 7u);
}

TEST(MetricsRegistry, MergeAddsCountersAndHistogramsGaugesLastWin) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("n_total").inc(2);
  b.counter("n_total").inc(5);
  a.gauge("g").set(1.0);
  b.gauge("g").set(9.0);
  a.histogram("h_slots", {}, {1.0, 2.0}).observe(0.5);
  b.histogram("h_slots", {}, {1.0, 2.0}).observe(1.5);
  a.merge(b);
  EXPECT_EQ(a.counter("n_total").value(), 7u);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 9.0);
  EXPECT_EQ(a.histogram("h_slots", {}, {1.0, 2.0}).count(), 2u);
}

TEST(LatencyHistogram, BucketsCumulativeAndPercentile) {
  LatencyHistogram h({1.0, 2.0, 4.0});
  for (double x : {0.5, 1.5, 1.5, 3.0, 100.0}) h.observe(x);
  EXPECT_EQ(h.count(), 5u);
  ASSERT_EQ(h.counts().size(), 4u);  // 3 finite + implicit +Inf
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);  // +Inf tail
  EXPECT_EQ(h.cumulative(2), 4u);
  // Cumulative counts must be monotone.
  for (std::size_t i = 1; i < h.counts().size(); ++i)
    EXPECT_GE(h.cumulative(i), h.cumulative(i - 1));
  const double p50 = h.percentile(50.0);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  // The +Inf bucket clamps to the largest finite bound.
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 4.0);
}

TEST(LatencyHistogram, EmptyPercentileIsNaN) {
  LatencyHistogram h({1.0});
  EXPECT_TRUE(std::isnan(h.percentile(50.0)));
}

TEST(MetricsRegistry, FormatLabelsCanonical) {
  EXPECT_EQ(telemetry::format_labels({}), "");
  EXPECT_EQ(telemetry::format_labels({{"a", "x"}, {"b", "y"}}),
            "{a=\"x\",b=\"y\"}");
}

// --------------------------------------------------------------- prometheus

TEST(Prometheus, TextExpositionFormat) {
  MetricsRegistry reg;
  reg.counter("ioguard_jobs_total", {{"vm", "0"}}).inc(4);
  reg.gauge("ioguard_busy_fraction").set(0.5);
  auto& h = reg.histogram("ioguard_latency_slots", {}, {1.0, 8.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(100.0);

  std::ostringstream os;
  telemetry::write_prometheus(os, reg);
  const std::string text = os.str();

  EXPECT_NE(text.find("# TYPE ioguard_jobs_total counter"), std::string::npos);
  EXPECT_NE(text.find("ioguard_jobs_total{vm=\"0\"} 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ioguard_busy_fraction gauge"),
            std::string::npos);
  EXPECT_NE(text.find("ioguard_busy_fraction 0.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ioguard_latency_slots histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ioguard_latency_slots_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ioguard_latency_slots_bucket{le=\"8\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ioguard_latency_slots_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ioguard_latency_slots_count 3"), std::string::npos);
  EXPECT_NE(text.find("ioguard_latency_slots_sum"), std::string::npos);
}

// -------------------------------------------------------------------- spans

/// A well-formed lifecycle for job 7 on device 0, VM 1, task 3.
void record_lifecycle(EventTrace& trace) {
  const DeviceId dev{0};
  const VmId vm{1};
  const TaskId task{3};
  const JobId job{7};
  trace.record({10, TraceEventKind::kSubmit, dev, vm, task, job, 0});
  trace.record({12, TraceEventKind::kShadowExpose, dev, vm, task, job, 0});
  trace.record({15, TraceEventKind::kRchannelGrant, dev, vm, task, job, 0});
  trace.record({15, TraceEventKind::kDeviceBegin, dev, vm, task, job, 0});
  trace.record({18, TraceEventKind::kComplete, dev, vm, task, job, 0});
}

TEST(Spans, CollectReconstructsLifecycle) {
  EventTrace trace(64);
  record_lifecycle(trace);
  const auto spans = telemetry::collect_spans(trace);
  ASSERT_EQ(spans.size(), 1u);
  const auto& s = spans[0];
  EXPECT_EQ(s.job.value, 7u);
  EXPECT_EQ(s.vm.value, 1u);
  EXPECT_EQ(s.submit, 10u);
  EXPECT_EQ(s.expose, 12u);
  EXPECT_EQ(s.first_grant, 15u);
  EXPECT_EQ(s.device_begin, 15u);
  EXPECT_EQ(s.complete, 18u);
  EXPECT_TRUE(s.finished());
  EXPECT_FALSE(s.dropped);
  EXPECT_FALSE(s.deadline_missed);
}

TEST(Spans, PchannelAndInvalidJobsAreNotSpanned) {
  EventTrace trace(64);
  // P-channel synthetic id (high bit) and an invalid id must be skipped.
  trace.record({5, TraceEventKind::kPchannelSlot, DeviceId{0}, VmId{0},
                TaskId{1}, JobId{0x40000001u}, 0});
  trace.record({5, TraceEventKind::kComplete, DeviceId{0}, VmId{0}, TaskId{1},
                JobId{0x40000001u}, 0});
  trace.record({6, TraceEventKind::kDemote, DeviceId{0}, VmId{0}, TaskId{2},
                JobId{}, 0});
  EXPECT_TRUE(telemetry::collect_spans(trace).empty());
}

TEST(Spans, DropAndDeadlineMissAnnotate) {
  EventTrace trace(64);
  trace.record({4, TraceEventKind::kDrop, DeviceId{0}, VmId{0}, TaskId{1},
                JobId{2}, 0});
  record_lifecycle(trace);
  trace.record({18, TraceEventKind::kDeadlineMiss, DeviceId{0}, VmId{1},
                TaskId{3}, JobId{7}, 5});
  const auto spans = telemetry::collect_spans(trace);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(spans[0].dropped);
  EXPECT_EQ(spans[0].submit, 4u);  // drop slot doubles as submit time
  EXPECT_TRUE(spans[1].deadline_missed);
  EXPECT_EQ(spans[1].lateness_slots, 5u);
}

TEST(Spans, FoldStagesComputesWaits) {
  EventTrace trace(64);
  record_lifecycle(trace);
  auto b = telemetry::fold_stages(telemetry::collect_spans(trace));
  EXPECT_EQ(b.finished_jobs, 1u);
  EXPECT_EQ(b.unfinished_jobs, 0u);
  ASSERT_EQ(b.pool_wait.count(), 1u);
  EXPECT_DOUBLE_EQ(b.pool_wait.percentile(50.0), 2.0);   // 12 - 10
  EXPECT_DOUBLE_EQ(b.shadow_wait.percentile(50.0), 3.0); // 15 - 12
  EXPECT_DOUBLE_EQ(b.service.percentile(50.0), 4.0);     // 18 - 15 + 1
  EXPECT_DOUBLE_EQ(b.total.percentile(50.0), 9.0);       // 18 - 10 + 1
}

TEST(Spans, UnfinishedJobCounted) {
  EventTrace trace(64);
  trace.record({10, TraceEventKind::kSubmit, DeviceId{0}, VmId{0}, TaskId{1},
                JobId{9}, 0});
  auto b = telemetry::fold_stages(telemetry::collect_spans(trace));
  EXPECT_EQ(b.finished_jobs, 0u);
  EXPECT_EQ(b.unfinished_jobs, 1u);
  EXPECT_TRUE(b.total.empty());
}

TEST(Spans, PrintStageBreakdownRendersTable) {
  EventTrace trace(64);
  record_lifecycle(trace);
  auto b = telemetry::fold_stages(telemetry::collect_spans(trace));
  std::ostringstream os;
  telemetry::print_stage_breakdown(os, b);
  const std::string out = os.str();
  EXPECT_NE(out.find("pool wait"), std::string::npos);
  EXPECT_NE(out.find("p95"), std::string::npos);
  EXPECT_NE(out.find("1 finished"), std::string::npos);
}

TEST(Spans, RegisterSpanMetricsFillsRegistry) {
  EventTrace trace(64);
  record_lifecycle(trace);
  trace.record({18, TraceEventKind::kTranslate, DeviceId{0}, VmId{1},
                TaskId{3}, JobId{7}, 40});
  MetricsRegistry reg;
  telemetry::register_span_metrics(trace, reg);
  EXPECT_EQ(reg.counter("ioguard_trace_events_total", {{"kind", "submit"}})
                .value(),
            1u);
  EXPECT_EQ(reg.histogram("ioguard_stage_latency_slots",
                          {{"stage", "total"}, {"device", "0"}})
                .count(),
            1u);
  EXPECT_EQ(reg.histogram("ioguard_translation_cycles", {{"device", "0"}},
                          telemetry::default_cycle_buckets())
                .count(),
            1u);
}

// ----------------------------------------------------------------- perfetto

TEST(Perfetto, EmitsTracksSpansAndInstants) {
  EventTrace trace(64);
  record_lifecycle(trace);
  trace.record({20, TraceEventKind::kPchannelSlot, DeviceId{1}, VmId{0},
                TaskId{0}, JobId{0x40000001u}, 0});
  trace.record({21, TraceEventKind::kDrop, DeviceId{0}, VmId{2}, TaskId{4},
                JobId{11}, 0});

  std::ostringstream os;
  telemetry::write_perfetto_json(os, trace);
  const std::string json = os.str();

  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // job span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // drop instant
  // Balanced braces/brackets => at least structurally sane JSON.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ------------------------------------------------------------ runner wiring

sys::TrialConfig small_trial() {
  sys::TrialConfig tc;
  tc.kind = sys::SystemKind::kIoGuard;
  tc.workload.num_vms = 4;
  tc.workload.target_utilization = 0.4;
  tc.min_jobs_per_task = 5;
  tc.trial_seed = 3;
  return tc;
}

TEST(RunnerTelemetry, TraceAndMetricsFilledWhenAttached) {
  // Large enough that no event is overwritten: every span keeps its submit.
  core::EventTrace trace(1 << 20);
  telemetry::MetricsRegistry reg;
  sys::TrialConfig tc = small_trial();
  tc.trace = &trace;
  tc.metrics = &reg;
  const auto result = sys::run_trial(tc);
  EXPECT_GT(result.jobs_counted, 0u);

  // The hypervisor recorded full lifecycles...
  ASSERT_EQ(trace.overwritten(), 0u);
  EXPECT_GT(trace.count(TraceEventKind::kSubmit), 0u);
  EXPECT_GT(trace.count(TraceEventKind::kShadowExpose), 0u);
  EXPECT_GT(trace.count(TraceEventKind::kRchannelGrant), 0u);
  EXPECT_GT(trace.count(TraceEventKind::kDeviceBegin), 0u);
  EXPECT_GT(trace.count(TraceEventKind::kComplete), 0u);
  EXPECT_GT(trace.count(TraceEventKind::kTranslate), 0u);

  // ...spans reconstruct with consistent ordering...
  const auto spans = telemetry::collect_spans(trace);
  ASSERT_FALSE(spans.empty());
  std::size_t finished = 0;
  for (const auto& s : spans) {
    if (!s.finished() || s.dropped) continue;
    ++finished;
    ASSERT_NE(s.submit, kNeverSlot);
    EXPECT_LE(s.submit, s.expose);
    EXPECT_LE(s.expose, s.first_grant);
    EXPECT_LE(s.first_grant, s.complete);
  }
  EXPECT_GT(finished, 0u);

  // ...and the registry carries both runner counters and span metrics.
  EXPECT_EQ(reg.counter("ioguard_trial_jobs_total",
                        {{"system", "I/O-GUARD"}, {"outcome", "counted"}})
                .value(),
            result.jobs_counted);
  EXPECT_GT(reg.counter("ioguard_trace_events_total", {{"kind", "complete"}})
                .value(),
            0u);
  EXPECT_GT(reg.counter("ioguard_translations_total", {{"device", "0"}})
                .value(),
            0u);
}

TEST(RunnerTelemetry, DeterministicAcrossRuns) {
  core::EventTrace t1(1 << 16);
  core::EventTrace t2(1 << 16);
  sys::TrialConfig tc = small_trial();
  tc.trace = &t1;
  (void)sys::run_trial(tc);
  tc.trace = &t2;
  (void)sys::run_trial(tc);
  ASSERT_EQ(t1.size(), t2.size());
  std::ostringstream a;
  std::ostringstream b;
  t1.dump_csv(a);
  t2.dump_csv(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(RunnerTelemetry, DisabledHooksRecordNothing) {
  sys::TrialConfig tc = small_trial();
  const auto with_off = sys::run_trial(tc);
  core::EventTrace trace(1 << 16);
  tc.trace = &trace;
  const auto with_on = sys::run_trial(tc);
  // Telemetry must not perturb the simulation.
  EXPECT_EQ(with_off.jobs_counted, with_on.jobs_counted);
  EXPECT_EQ(with_off.jobs_on_time, with_on.jobs_on_time);
  EXPECT_EQ(with_off.misses, with_on.misses);
  EXPECT_DOUBLE_EQ(with_off.goodput_bytes_per_s, with_on.goodput_bytes_per_s);
}

TEST(RunnerTelemetry, SummaryJsonHasRequiredKeys) {
  sys::TrialConfig tc = small_trial();
  tc.collect_response_times = true;
  auto result = sys::run_trial(tc);
  std::ostringstream os;
  sys::write_trial_summary_json(os, tc, result);
  const std::string json = os.str();
  for (const char* key :
       {"\"system\"", "\"horizon_slots\"", "\"jobs_counted\"",
        "\"jobs_on_time\"", "\"misses\"", "\"critical_misses\"",
        "\"dropped\"", "\"goodput_bytes_per_s\"", "\"device_busy_frac\"",
        "\"admitted\"", "\"success\"", "\"response_slots\"",
        "\"misses_by_task\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace ioguard
