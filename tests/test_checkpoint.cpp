// Crash-safe checkpointing and trial supervision (DESIGN.md §12): journal
// round-trips, crash-tail tolerance, corruption rejection, bit-identical
// resume at any --jobs width (with and without faults and metrics),
// deterministic re-execution, graceful stop, and the CKP diagnostics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/verify_checkpoint.hpp"
#include "common/atomic_file.hpp"
#include "common/checksum.hpp"
#include "common/interrupt.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "system/checkpoint.hpp"
#include "system/experiment.hpp"
#include "system/parallel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/metrics_io.hpp"
#include "telemetry/prometheus.hpp"

namespace ioguard::sys {
namespace {

namespace fs = std::filesystem;

// ---- fixture: every test gets a private scratch directory ------------------

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("ioguard_ckpt_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

CheckpointMeta test_meta() {
  CheckpointMeta meta;
  meta.config_echo = "test config echo";
  meta.fingerprint = fnv1a64(meta.config_echo);
  meta.planned_trials = 4;
  return meta;
}

TrialConfig small_trial(std::size_t t, const faults::FaultPlan& plan = {}) {
  TrialConfig tc;
  tc.kind = SystemKind::kIoGuard;
  tc.workload.num_vms = 4;
  tc.workload.target_utilization = 0.8;
  tc.workload.preload_fraction = 0.5;
  tc.min_jobs_per_task = 8;
  tc.trial_seed = mix_seed(42, sweep_point_key(4, 0.8), t);
  tc.faults = plan;
  return tc;
}

void expect_identical(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.jobs_counted, b.jobs_counted);
  EXPECT_EQ(a.jobs_on_time, b.jobs_on_time);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.critical_misses, b.critical_misses);
  EXPECT_EQ(a.dropped, b.dropped);
  // Bitwise double equality: restored state must be exact, not approximate.
  EXPECT_EQ(a.goodput_bytes_per_s, b.goodput_bytes_per_s);
  EXPECT_EQ(a.device_busy_frac, b.device_busy_frac);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.misses_by_task, b.misses_by_task);
  EXPECT_EQ(a.response_slots.samples(), b.response_slots.samples());
  EXPECT_EQ(a.stage_issue.count(), b.stage_issue.count());
  EXPECT_EQ(a.stage_issue.mean(), b.stage_issue.mean());
  EXPECT_EQ(a.stage_vmm.count(), b.stage_vmm.count());
  EXPECT_EQ(a.stage_transit.mean(), b.stage_transit.mean());
  EXPECT_EQ(a.stage_backend.mean(), b.stage_backend.mean());
  EXPECT_EQ(a.faults.injected_total, b.faults.injected_total);
  EXPECT_EQ(a.faults.watchdog_aborts, b.faults.watchdog_aborts);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
}

std::string prometheus_text(const telemetry::MetricsRegistry& reg) {
  std::ostringstream os;
  telemetry::write_prometheus(os, reg);
  return std::move(os).str();
}

// ---- checksum primitives ---------------------------------------------------

TEST(Checksum, Crc32MatchesKnownVector) {
  // The CRC-32/ISO-HDLC check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(Checksum, Fnv1a64IsStable) {
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
}

// ---- OnlineStats raw state round trip --------------------------------------

TEST(OnlineStatsRaw, RoundTripsExactly) {
  OnlineStats s;
  for (double x : {3.5, -1.25, 7.0, 0.125}) s.add(x);
  const OnlineStats restored = OnlineStats::from_raw(s.raw());
  EXPECT_EQ(restored.count(), s.count());
  EXPECT_EQ(restored.mean(), s.mean());
  EXPECT_EQ(restored.stddev(), s.stddev());
  EXPECT_EQ(restored.min(), s.min());
  EXPECT_EQ(restored.max(), s.max());
}

TEST(OnlineStatsRaw, EmptyRoundTripsExactly) {
  const OnlineStats restored = OnlineStats::from_raw(OnlineStats{}.raw());
  EXPECT_EQ(restored.count(), 0u);
  // Continuing to accumulate after a restore behaves like a fresh object.
  OnlineStats cont = restored;
  cont.add(2.0);
  EXPECT_EQ(cont.min(), 2.0);
  EXPECT_EQ(cont.max(), 2.0);
}

// ---- atomic file writes ----------------------------------------------------

class AtomicFileTest : public CheckpointTest {};

TEST_F(AtomicFileTest, WriteFileAtomicPublishesContentAndNoTempRemains) {
  const std::string target = path("out.txt");
  ASSERT_TRUE(write_file_atomic(target, "hello\n").ok());
  std::ifstream in(target);
  std::stringstream got;
  got << in.rdbuf();
  EXPECT_EQ(got.str(), "hello\n");
  for (const auto& entry : fs::directory_iterator(dir_))
    EXPECT_EQ(entry.path().filename().string().find(atomic_temp_marker()),
              std::string::npos);
}

TEST_F(AtomicFileTest, WriterCommitReplacesExistingFile) {
  const std::string target = path("out.txt");
  ASSERT_TRUE(write_file_atomic(target, "old").ok());
  AtomicFileWriter w(target);
  w.stream() << "new contents";
  ASSERT_TRUE(w.commit().ok());
  std::ifstream in(target);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "new contents");
}

TEST_F(AtomicFileTest, OrphanScanFindsPlantedStagingFile) {
  const std::string orphan =
      (dir_ / (std::string(atomic_temp_marker()) + "1234")).string();
  std::ofstream(orphan) << "partial";
  const auto found = find_orphaned_temp_files(dir_.string());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0].find(atomic_temp_marker()), std::string::npos);
}

// ---- metrics encode/decode -------------------------------------------------

TEST(MetricsIo, RegistryRoundTripsToIdenticalPrometheusText) {
  telemetry::MetricsRegistry reg;
  reg.counter("ioguard_jobs_total", {{"vm", "0"}}).inc(17);
  reg.counter("ioguard_jobs_total", {{"vm", "1"}}).inc(3);
  reg.gauge("ioguard_backlog").set(2.5);
  auto& h = reg.histogram("ioguard_stage_latency_slots", {},
                          telemetry::default_slot_buckets());
  for (double x : {1.0, 3.0, 700.0, 0.5}) h.observe(x);

  std::string blob;
  telemetry::encode_metrics(reg, blob);
  telemetry::MetricsRegistry restored;
  ASSERT_TRUE(telemetry::decode_metrics(blob, restored).ok());
  EXPECT_EQ(prometheus_text(restored), prometheus_text(reg));
}

TEST(MetricsIo, DecodeRejectsCorruptBlob) {
  telemetry::MetricsRegistry reg;
  reg.counter("ioguard_jobs_total").inc(1);
  std::string blob;
  telemetry::encode_metrics(reg, blob);
  blob.resize(blob.size() / 2);  // truncation
  telemetry::MetricsRegistry sink;
  EXPECT_EQ(telemetry::decode_metrics(blob, sink).code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(telemetry::decode_metrics("garbage", sink).code(),
            StatusCode::kDataLoss);
}

// ---- journal basics --------------------------------------------------------

class JournalTest : public CheckpointTest {};

TEST_F(JournalTest, RoundTripsRecordsAcrossReopen) {
  const std::string ck = path("ck.bin");
  const auto meta = test_meta();
  TrialResult r0 = run_trial(small_trial(0));
  TrialResult r1 = run_trial(small_trial(1));

  telemetry::MetricsRegistry metrics;
  metrics.counter("ioguard_jobs_total").inc(9);
  {
    auto journal = CheckpointJournal::open(ck, meta, /*resume=*/false);
    ASSERT_TRUE(journal.ok()) << journal.status();
    ASSERT_TRUE((*journal)->append(7, 0, false, r0, &metrics).ok());
    ASSERT_TRUE((*journal)->append(7, 1, false, r1, nullptr).ok());
  }

  auto journal = CheckpointJournal::open(ck, meta, /*resume=*/true);
  ASSERT_TRUE(journal.ok()) << journal.status();
  EXPECT_EQ((*journal)->loaded(), 2u);
  EXPECT_FALSE((*journal)->truncated_tail());

  const CheckpointRecord* rec0 = (*journal)->find(7, 0);
  ASSERT_NE(rec0, nullptr);
  EXPECT_TRUE(rec0->has_metrics);
  expect_identical(rec0->result, r0);
  telemetry::MetricsRegistry restored;
  ASSERT_TRUE(telemetry::decode_metrics(rec0->metrics_blob, restored).ok());
  EXPECT_EQ(prometheus_text(restored), prometheus_text(metrics));

  const CheckpointRecord* rec1 = (*journal)->find(7, 1);
  ASSERT_NE(rec1, nullptr);
  EXPECT_FALSE(rec1->has_metrics);
  expect_identical(rec1->result, r1);
  EXPECT_EQ((*journal)->find(7, 2), nullptr);
  EXPECT_EQ((*journal)->find(8, 0), nullptr);
}

TEST_F(JournalTest, FreshOpenDiscardsExistingRecords) {
  const std::string ck = path("ck.bin");
  const auto meta = test_meta();
  {
    auto j = CheckpointJournal::open(ck, meta, false);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE((*j)->append(1, 0, false, TrialResult{}, nullptr).ok());
  }
  {
    auto j = CheckpointJournal::open(ck, meta, false);  // fresh again
    ASSERT_TRUE(j.ok());
    EXPECT_EQ((*j)->loaded(), 0u);
  }
  auto j = CheckpointJournal::open(ck, meta, true);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ((*j)->loaded(), 0u);
}

TEST_F(JournalTest, ToleratesTruncatedTailFrame) {
  const std::string ck = path("ck.bin");
  const auto meta = test_meta();
  {
    auto j = CheckpointJournal::open(ck, meta, false);
    ASSERT_TRUE(j.ok());
    for (std::uint32_t t = 0; t < 3; ++t)
      ASSERT_TRUE(
          (*j)->append(1, t, false, run_trial(small_trial(t)), nullptr).ok());
  }
  // Chop a few bytes off the last frame: the crash-mid-append signature.
  fs::resize_file(ck, fs::file_size(ck) - 5);

  auto j = CheckpointJournal::open(ck, meta, true);
  ASSERT_TRUE(j.ok()) << j.status();
  EXPECT_EQ((*j)->loaded(), 2u);
  EXPECT_TRUE((*j)->truncated_tail());
  EXPECT_NE((*j)->find(1, 0), nullptr);
  EXPECT_NE((*j)->find(1, 1), nullptr);
  EXPECT_EQ((*j)->find(1, 2), nullptr);

  // The resumed journal must stay appendable: the torn tail was physically
  // dropped, so the next frame starts at a clean boundary.
  ASSERT_TRUE(
      (*j)->append(1, 2, false, run_trial(small_trial(2)), nullptr).ok());
  j->reset();
  auto again = CheckpointJournal::open(ck, meta, true);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ((*again)->loaded(), 3u);
  EXPECT_FALSE((*again)->truncated_tail());
}

TEST_F(JournalTest, RejectsChecksumCorruptionInRetainedPrefix) {
  const std::string ck = path("ck.bin");
  const auto meta = test_meta();
  {
    auto j = CheckpointJournal::open(ck, meta, false);
    ASSERT_TRUE(j.ok());
    for (std::uint32_t t = 0; t < 2; ++t)
      ASSERT_TRUE(
          (*j)->append(1, t, false, run_trial(small_trial(t)), nullptr).ok());
  }
  // Flip one payload byte inside the first record.
  std::fstream f(ck, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(16);
  char b = 0;
  f.seekg(16);
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(16);
  f.write(&b, 1);
  f.close();

  auto j = CheckpointJournal::open(ck, meta, true);
  ASSERT_FALSE(j.ok());
  EXPECT_EQ(j.status().code(), StatusCode::kDataLoss);
}

TEST_F(JournalTest, RefusesMismatchedFingerprintWithCkp002) {
  const std::string ck = path("ck.bin");
  {
    auto j = CheckpointJournal::open(ck, test_meta(), false);
    ASSERT_TRUE(j.ok());
  }
  CheckpointMeta other = test_meta();
  other.fingerprint ^= 1;
  auto j = CheckpointJournal::open(ck, other, true);
  ASSERT_FALSE(j.ok());
  EXPECT_EQ(j.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(j.status().message().find("CKP002"), std::string::npos);
}

TEST_F(JournalTest, ResumeWithoutManifestIsNotFound) {
  auto j = CheckpointJournal::open(path("absent.bin"), test_meta(), true);
  ASSERT_FALSE(j.ok());
  EXPECT_EQ(j.status().code(), StatusCode::kNotFound);
}

// ---- point keys and fingerprints -------------------------------------------

TEST(CheckpointKeys, DistinguishWhatSweepPointKeyCannot) {
  // sweep_point_key deliberately collides across systems (same workloads);
  // the journal key must not, or fig7's five systems would share records.
  EXPECT_EQ(sweep_point_key(8, 0.9), sweep_point_key(8, 0.9));
  EXPECT_NE(checkpoint_point_key(SystemKind::kLegacy, 0.0, 8, 0.9),
            checkpoint_point_key(SystemKind::kIoGuard, 0.0, 8, 0.9));
  EXPECT_NE(checkpoint_point_key(SystemKind::kIoGuard, 0.4, 8, 0.9),
            checkpoint_point_key(SystemKind::kIoGuard, 0.7, 8, 0.9));
  EXPECT_NE(checkpoint_point_key(SystemKind::kIoGuard, 0.7, 8, 0.9, 0),
            checkpoint_point_key(SystemKind::kIoGuard, 0.7, 8, 0.9, 1));
  EXPECT_EQ(checkpoint_point_key(SystemKind::kIoGuard, 0.7, 8, 0.9),
            checkpoint_point_key(SystemKind::kIoGuard, 0.7, 8, 0.9));
}

TEST(CheckpointKeys, ConfigStringCoversEverythingButJobs) {
  const faults::ResilienceConfig res;
  const auto base = point_config_string(SystemKind::kIoGuard, 8, 0.9, 0.7, 10,
                                        25, 42, {}, res);
  EXPECT_NE(base, point_config_string(SystemKind::kLegacy, 8, 0.9, 0.0, 10,
                                      25, 42, {}, res));
  EXPECT_NE(base, point_config_string(SystemKind::kIoGuard, 8, 0.9, 0.7, 11,
                                      25, 42, {}, res));
  EXPECT_NE(base, point_config_string(SystemKind::kIoGuard, 8, 0.9, 0.7, 10,
                                      25, 43, {}, res));
  auto plan = faults::FaultPlan::parse("device-stall");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(base, point_config_string(SystemKind::kIoGuard, 8, 0.9, 0.7, 10,
                                      25, 42, *plan, res));
}

// ---- supervised resume: the bit-identity contract --------------------------

class ResumeTest : public CheckpointTest {};

void expect_resume_bit_identity(const fs::path& dir,
                                const faults::FaultPlan& plan,
                                bool with_metrics) {
  const std::string ck = (dir / "ck.bin").string();
  const auto meta = test_meta();
  const std::size_t n = 6;
  const auto make_config = [&](std::size_t t) { return small_trial(t, plan); };

  // Uninterrupted baseline at jobs=1.
  ParallelRunner baseline_runner(1);
  telemetry::MetricsRegistry baseline_metrics;
  const BatchResult baseline = baseline_runner.run_supervised(
      n, make_config, {}, with_metrics ? &baseline_metrics : nullptr,
      nullptr);
  ASSERT_EQ(baseline.completed, n);

  // "Crashed" first pass: journal only the first 3 trials.
  {
    auto journal = CheckpointJournal::open(ck, meta, false);
    ASSERT_TRUE(journal.ok());
    SupervisionPolicy policy;
    policy.journal = journal->get();
    policy.point_key = 77;
    telemetry::MetricsRegistry partial;
    ParallelRunner runner(2);
    const BatchResult first = runner.run_supervised(
        3, make_config, policy, with_metrics ? &partial : nullptr, nullptr);
    ASSERT_EQ(first.completed, 3u);
    ASSERT_TRUE(first.journal_error.ok()) << first.journal_error;
  }

  // Resume at two widths; both must reproduce the baseline bit for bit.
  // The first pass (jobs=1) finishes and journals the remaining trials, so
  // the second pass (jobs=4) is fully restored -- it re-runs nothing.
  bool fully_restored = false;
  for (std::size_t jobs : {1u, 4u}) {
    auto journal = CheckpointJournal::open(ck, meta, true);
    ASSERT_TRUE(journal.ok()) << journal.status();
    EXPECT_EQ((*journal)->loaded(), fully_restored ? n : 3u);
    SupervisionPolicy policy;
    policy.journal = journal->get();
    policy.point_key = 77;
    telemetry::MetricsRegistry resumed_metrics;
    ParallelRunner runner(jobs);
    const BatchResult resumed = runner.run_supervised(
        n, make_config, policy, with_metrics ? &resumed_metrics : nullptr,
        nullptr);
    ASSERT_TRUE(resumed.journal_error.ok()) << resumed.journal_error;
    EXPECT_EQ(resumed.restored, fully_restored ? n : 3u);
    EXPECT_EQ(resumed.completed, fully_restored ? 0u : 3u);
    ASSERT_EQ(resumed.results.size(), n);
    for (std::size_t t = 0; t < n; ++t) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) + " trial " +
                   std::to_string(t));
      EXPECT_EQ(resumed.outcomes[t], (fully_restored || t < 3)
                                         ? TrialOutcome::kRestored
                                         : TrialOutcome::kCompleted);
      expect_identical(resumed.results[t], baseline.results[t]);
    }
    fully_restored = true;
    if (with_metrics) {
      EXPECT_EQ(prometheus_text(resumed_metrics),
                prometheus_text(baseline_metrics));
    }
  }
}

TEST_F(ResumeTest, BitIdenticalAcrossJobsWithMetrics) {
  expect_resume_bit_identity(dir_, {}, /*with_metrics=*/true);
}

TEST_F(ResumeTest, BitIdenticalWithoutMetrics) {
  expect_resume_bit_identity(dir_, {}, /*with_metrics=*/false);
}

TEST_F(ResumeTest, BitIdenticalUnderFaultPlan) {
  auto plan = faults::FaultPlan::parse("device-stall");
  ASSERT_TRUE(plan.ok());
  expect_resume_bit_identity(dir_, *plan, /*with_metrics=*/true);
}

TEST_F(ResumeTest, RecordWithoutMetricsIsReExecutedWhenMetricsNeeded) {
  // First pass journals without a metrics registry; the resuming run wants
  // metrics, so the journaled record is insufficient and the trial must be
  // deterministically re-executed rather than restored without its delta.
  const std::string ck = path("ck.bin");
  const auto meta = test_meta();
  const auto make_config = [](std::size_t t) { return small_trial(t); };
  {
    auto journal = CheckpointJournal::open(ck, meta, false);
    ASSERT_TRUE(journal.ok());
    SupervisionPolicy policy;
    policy.journal = journal->get();
    policy.point_key = 5;
    ParallelRunner runner(1);
    (void)runner.run_supervised(2, make_config, policy, nullptr, nullptr);
  }
  auto journal = CheckpointJournal::open(ck, meta, true);
  ASSERT_TRUE(journal.ok());
  SupervisionPolicy policy;
  policy.journal = journal->get();
  policy.point_key = 5;
  telemetry::MetricsRegistry metrics;
  ParallelRunner runner(1);
  const BatchResult batch =
      runner.run_supervised(2, make_config, policy, &metrics, nullptr);
  EXPECT_EQ(batch.restored, 0u);
  EXPECT_EQ(batch.completed, 2u);

  // And the re-executed pass wrote metrics-bearing records: a second resume
  // with metrics restores both.
  journal = CheckpointJournal::open(ck, meta, true);
  ASSERT_TRUE(journal.ok());
  policy.journal = journal->get();
  telemetry::MetricsRegistry metrics2;
  const BatchResult batch2 =
      runner.run_supervised(2, make_config, policy, &metrics2, nullptr);
  EXPECT_EQ(batch2.restored, 2u);
  EXPECT_EQ(prometheus_text(metrics2), prometheus_text(metrics));
}

// ---- supervision: retries, abandonment, stop, deadline ---------------------

TEST(Supervision, RetriedTrialIsBitIdenticalToCleanRun) {
  const auto make_config = [](std::size_t t) { return small_trial(t); };
  ParallelRunner runner(2);
  const BatchResult clean =
      runner.run_supervised(4, make_config, {}, nullptr, nullptr);

  std::atomic<int> throws_left{1};
  SupervisionPolicy policy;
  policy.trial_fn = [&](const TrialConfig& tc) {
    if (tc.trial_seed == small_trial(2).trial_seed &&
        throws_left.fetch_sub(1) > 0)
      throw std::runtime_error("transient trial failure");
    return run_trial(tc);
  };
  const BatchResult flaky =
      runner.run_supervised(4, make_config, policy, nullptr, nullptr);
  EXPECT_EQ(flaky.retried, 1u);
  EXPECT_EQ(flaky.completed, 3u);
  EXPECT_EQ(flaky.outcomes[2], TrialOutcome::kRetried);
  for (std::size_t t = 0; t < 4; ++t)
    expect_identical(flaky.results[t], clean.results[t]);
}

TEST(Supervision, ExhaustedAttemptsAbandonWithoutAborting) {
  const auto make_config = [](std::size_t t) { return small_trial(t); };
  SupervisionPolicy policy;
  policy.max_attempts = 3;
  policy.trial_fn = [](const TrialConfig& tc) -> TrialResult {
    if (tc.trial_seed == small_trial(1).trial_seed)
      throw std::runtime_error("persistent failure");
    return run_trial(tc);
  };
  ParallelRunner runner(2);
  const BatchResult batch =
      runner.run_supervised(3, make_config, policy, nullptr, nullptr);
  EXPECT_EQ(batch.abandoned, 1u);
  EXPECT_EQ(batch.completed, 2u);
  EXPECT_EQ(batch.outcomes[1], TrialOutcome::kAbandoned);
  ASSERT_FALSE(batch.notes.empty());
  EXPECT_NE(batch.notes[0].find("persistent failure"), std::string::npos);
}

class SupervisionJournalTest : public CheckpointTest {};

TEST_F(SupervisionJournalTest, AbandonedTrialsAreJournaledAndCarriedOver) {
  const std::string ck = path("ck.bin");
  const auto meta = test_meta();
  const auto make_config = [](std::size_t t) { return small_trial(t); };
  {
    auto journal = CheckpointJournal::open(ck, meta, false);
    ASSERT_TRUE(journal.ok());
    SupervisionPolicy policy;
    policy.journal = journal->get();
    policy.point_key = 9;
    policy.trial_fn = [](const TrialConfig& tc) -> TrialResult {
      if (tc.trial_seed == small_trial(0).trial_seed)
        throw std::runtime_error("hard failure");
      return run_trial(tc);
    };
    ParallelRunner runner(1);
    const BatchResult batch =
        runner.run_supervised(2, make_config, policy, nullptr, nullptr);
    ASSERT_EQ(batch.abandoned, 1u);
    ASSERT_TRUE(batch.journal_error.ok());
  }
  // On resume the abandoned record is honoured (not silently re-run): the
  // sweep converges instead of re-failing forever.
  auto journal = CheckpointJournal::open(ck, meta, true);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ((*journal)->loaded(), 2u);
  SupervisionPolicy policy;
  policy.journal = journal->get();
  policy.point_key = 9;
  ParallelRunner runner(1);
  const BatchResult batch =
      runner.run_supervised(2, make_config, policy, nullptr, nullptr);
  EXPECT_EQ(batch.abandoned, 1u);
  EXPECT_EQ(batch.restored, 1u);
  EXPECT_EQ(batch.completed, 0u);
  EXPECT_EQ(batch.outcomes[0], TrialOutcome::kAbandoned);
  ASSERT_FALSE(batch.notes.empty());
  EXPECT_NE(batch.notes[0].find("journaled"), std::string::npos);
}

TEST(Supervision, StopFlagSkipsEverythingAndMarksInterrupted) {
  std::atomic<bool> stop{true};
  SupervisionPolicy policy;
  policy.stop = &stop;
  ParallelRunner runner(2);
  const BatchResult batch = runner.run_supervised(
      3, [](std::size_t t) { return small_trial(t); }, policy, nullptr,
      nullptr);
  EXPECT_EQ(batch.skipped, 3u);
  EXPECT_EQ(batch.completed, 0u);
  EXPECT_TRUE(batch.interrupted);
  for (const auto outcome : batch.outcomes)
    EXPECT_EQ(outcome, TrialOutcome::kSkipped);
}

TEST(Supervision, SoftDeadlineFlagsWedgedTrials) {
  SupervisionPolicy policy;
  policy.trial_timeout_seconds = 1e-9;  // everything real blows this
  ParallelRunner runner(1);
  const BatchResult batch = runner.run_supervised(
      2, [](std::size_t t) { return small_trial(t); }, policy, nullptr,
      nullptr);
  EXPECT_EQ(batch.wedged, 2u);
  EXPECT_EQ(batch.completed, 2u);  // flagged, never killed
  ASSERT_FALSE(batch.notes.empty());
  EXPECT_NE(batch.notes[0].find("wedged"), std::string::npos);
}

TEST(Supervision, LegacyRunTrialsStillRethrows) {
  ParallelRunner runner(1);
  SupervisionPolicy policy;
  policy.max_attempts = 1;
  policy.rethrow_on_failure = true;
  policy.trial_fn = [](const TrialConfig&) -> TrialResult {
    throw std::runtime_error("boom");
  };
  EXPECT_THROW(
      runner.run_supervised(
          1, [](std::size_t t) { return small_trial(t); }, policy, nullptr,
          nullptr),
      std::runtime_error);
}

// ---- interrupt plumbing ----------------------------------------------------

TEST(Interrupt, CancelledStatusMapsToExitCode3) {
  EXPECT_EQ(exit_code(CancelledError("interrupted")), kInterruptedExitCode);
  EXPECT_EQ(kInterruptedExitCode, 3);
}

TEST(Interrupt, GuardFlagObservesManualRequest) {
  InterruptGuard guard;
  EXPECT_FALSE(InterruptGuard::requested());
  InterruptGuard::request();
  EXPECT_TRUE(InterruptGuard::requested());
  EXPECT_TRUE(InterruptGuard::flag()->load());
}

// ---- inspection + CKP diagnostics ------------------------------------------

class VerifyCheckpointTest : public CheckpointTest {};

TEST_F(VerifyCheckpointTest, CleanPairYieldsNoFindings) {
  const std::string ck = path("ck.bin");
  const auto meta = test_meta();
  {
    auto j = CheckpointJournal::open(ck, meta, false);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(
        (*j)->append(1, 0, false, run_trial(small_trial(0)), nullptr).ok());
  }
  const CheckpointFacts facts = inspect_checkpoint(ck);
  EXPECT_TRUE(facts.journal_present);
  EXPECT_TRUE(facts.manifest_parsed);
  EXPECT_EQ(facts.records, 1u);
  analysis::Report report;
  analysis::verify_checkpoint(facts, meta.fingerprint, report);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics().empty());
}

TEST_F(VerifyCheckpointTest, MissingManifestIsCkp001) {
  const std::string ck = path("ck.bin");
  {
    auto j = CheckpointJournal::open(ck, test_meta(), false);
    ASSERT_TRUE(j.ok());
  }
  fs::remove(ck + ".manifest");
  analysis::Report report;
  analysis::verify_checkpoint(inspect_checkpoint(ck), 0, report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(analysis::DiagCode::kCkpStaleManifest));
}

TEST_F(VerifyCheckpointTest, FingerprintMismatchIsCkp002) {
  const std::string ck = path("ck.bin");
  {
    auto j = CheckpointJournal::open(ck, test_meta(), false);
    ASSERT_TRUE(j.ok());
  }
  analysis::Report report;
  analysis::verify_checkpoint(inspect_checkpoint(ck),
                              test_meta().fingerprint ^ 1, report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(analysis::DiagCode::kCkpConfigMismatch));
}

TEST_F(VerifyCheckpointTest, OrphanedTempIsCkp003Warning) {
  const std::string ck = path("ck.bin");
  {
    auto j = CheckpointJournal::open(ck, test_meta(), false);
    ASSERT_TRUE(j.ok());
  }
  std::ofstream(dir_ / (std::string(atomic_temp_marker()) + "999")) << "x";
  analysis::Report report;
  analysis::verify_checkpoint(inspect_checkpoint(ck), test_meta().fingerprint,
                              report);
  EXPECT_TRUE(report.ok());  // warning, not error
  EXPECT_TRUE(report.has(analysis::DiagCode::kCkpOrphanedTempFiles));
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST_F(VerifyCheckpointTest, AbandonedRecordsAreCkp004Warning) {
  const std::string ck = path("ck.bin");
  {
    auto j = CheckpointJournal::open(ck, test_meta(), false);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE((*j)->append(1, 0, /*abandoned=*/true, TrialResult{}, nullptr,
                             "kept throwing")
                    .ok());
  }
  const CheckpointFacts facts = inspect_checkpoint(ck);
  EXPECT_EQ(facts.abandoned, 1u);
  analysis::Report report;
  analysis::verify_checkpoint(facts, test_meta().fingerprint, report);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.has(analysis::DiagCode::kCkpAbandonedTrials));
}

TEST_F(VerifyCheckpointTest, TruncatedTailIsInformationalOnly) {
  const std::string ck = path("ck.bin");
  {
    auto j = CheckpointJournal::open(ck, test_meta(), false);
    ASSERT_TRUE(j.ok());
    for (std::uint32_t t = 0; t < 2; ++t)
      ASSERT_TRUE((*j)->append(1, t, false, TrialResult{}, nullptr).ok());
  }
  fs::resize_file(ck, fs::file_size(ck) - 3);
  const CheckpointFacts facts = inspect_checkpoint(ck);
  EXPECT_TRUE(facts.truncated_tail);
  EXPECT_FALSE(facts.corrupt);
  EXPECT_EQ(facts.records, 1u);
  analysis::Report report;
  analysis::verify_checkpoint(facts, test_meta().fingerprint, report);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.has(analysis::DiagCode::kCkpStaleManifest));
}

}  // namespace
}  // namespace ioguard::sys
