// Unit tests for src/common: rng, stats, ring buffer, table, env, check.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace ioguard {
namespace {

TEST(Check, ThrowsWithLocationAndMessage) {
  try {
    IOGUARD_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
  }
}

TEST(Check, ComparisonMacrosPrintBothOperands) {
  try {
    const int lhs = 3, rhs = 7;
    IOGUARD_CHECK_EQ(lhs, rhs);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find('3'), std::string::npos);
    EXPECT_NE(what.find('7'), std::string::npos);
  }
  EXPECT_NO_THROW(IOGUARD_CHECK_EQ(4, 4));
  EXPECT_NO_THROW(IOGUARD_CHECK_LE(4, 5));
  EXPECT_NO_THROW(IOGUARD_CHECK_LT(4, 5));
  EXPECT_NO_THROW(IOGUARD_CHECK_GE(5, 5));
  EXPECT_NO_THROW(IOGUARD_CHECK_GT(6, 5));
  EXPECT_NO_THROW(IOGUARD_CHECK_NE(6, 5));
  EXPECT_THROW(IOGUARD_CHECK_GT(5, 5), CheckFailure);
}

TEST(Check, ComparisonMsgMacrosCarryContext) {
  try {
    IOGUARD_CHECK_LE_MSG(9, 2, "budget overran");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("budget overran"), std::string::npos);
    EXPECT_NE(what.find('9'), std::string::npos);
  }
}

TEST(Check, CheckOpEvaluatesOperandsOnce) {
  int calls = 0;
  const auto bump = [&calls] { return ++calls; };
  IOGUARD_CHECK_GE(bump(), 1);
  EXPECT_EQ(calls, 1);
}

TEST(Check, DcheckMsgCompilesInBothModes) {
  // Under NDEBUG this is ((void)sizeof(...)): the condition must stay
  // type-checked but unevaluated; in debug builds a true condition is a
  // no-op either way.
  int touched = 0;
  IOGUARD_DCHECK_MSG(touched == 0, "untouched");
  IOGUARD_DCHECK(touched >= 0);
#ifdef NDEBUG
  IOGUARD_DCHECK((++touched, true));  // must not evaluate
  EXPECT_EQ(touched, 0);
#endif
}

TEST(Types, CycleSlotConversions) {
  EXPECT_EQ(cycles_to_slots(250, 100), 2u);
  EXPECT_EQ(slots_to_cycles(3, 100), 300u);
  EXPECT_DOUBLE_EQ(cycles_to_seconds(kClockHz), 1.0);
  EXPECT_EQ(us_to_cycles(1.0), 100u);
}

TEST(Types, StrongIdsDoNotMix) {
  VmId vm{3};
  TaskId task{3};
  EXPECT_TRUE(vm.valid());
  EXPECT_FALSE(VmId{}.valid());
  EXPECT_EQ(vm, VmId{3});
  EXPECT_NE(vm, VmId{4});
  // Different tag types are distinct types; equality across them would not
  // compile. Hash support works in maps:
  std::hash<VmId> h;
  EXPECT_EQ(h(vm), h(VmId{3}));
  (void)task;
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(123);
  Rng f1 = a.fork(1);
  Rng f2 = a.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (f1() == f2()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, LogUniformStaysInRange) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.log_uniform(10.0, 100.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 100.0 + 1e-9);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, EmptyExtremaAreNaN) {
  OnlineStats s;
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all, a, b;
  Rng r(17);
  for (int i = 0; i < 500; ++i) {
    const double x = r.uniform(-3, 10);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.05);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);   // clamps to bin 0
  h.add(0.5);
  h.add(9.99);
  h.add(42.0);   // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(RingBuffer, FifoOrderAndBackPressure) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.push(3));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push(4));  // back-pressure, not overwrite
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.at(2), 3);
  EXPECT_EQ(rb.pop().value(), 1);
  EXPECT_EQ(rb.pop().value(), 2);
  EXPECT_TRUE(rb.push(5));
  EXPECT_EQ(rb.pop().value(), 3);
  EXPECT_EQ(rb.pop().value(), 5);
  EXPECT_FALSE(rb.pop().has_value());
}

TEST(RingBuffer, WrapsManyTimes) {
  RingBuffer<int> rb(2);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(rb.push(i));
    ASSERT_EQ(rb.pop().value(), i);
  }
}

TEST(TextTable, RendersAlignedAndCsv) {
  TextTable t({"name", "value"});
  t.add(std::string("alpha"), 42);
  t.add(std::string("b,c"), 3.14159);
  EXPECT_EQ(t.rows(), 2u);

  std::ostringstream box;
  t.render(box);
  EXPECT_NE(box.str().find("| alpha"), std::string::npos);

  std::ostringstream csv;
  t.render_csv(csv);
  EXPECT_NE(csv.str().find("\"b,c\""), std::string::npos);
  EXPECT_NE(csv.str().find("3.14"), std::string::npos);
}

TEST(TextTable, RejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(Env, FallbacksAndParsing) {
  ::setenv("IOGUARD_TEST_INT", "42", 1);
  ::setenv("IOGUARD_TEST_BAD", "xyz", 1);
  EXPECT_EQ(env_int("IOGUARD_TEST_INT", 7), 42);
  EXPECT_EQ(env_int("IOGUARD_TEST_BAD", 7), 7);
  EXPECT_EQ(env_int("IOGUARD_TEST_UNSET_123", 7), 7);
  ::setenv("IOGUARD_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("IOGUARD_TEST_DBL", 1.0), 2.5);
  EXPECT_EQ(env_string("IOGUARD_TEST_UNSET_123", "d"), "d");
}

TEST(MixSeed, DeterministicAndOrderSensitive) {
  EXPECT_EQ(mix_seed(42, 3, 7), mix_seed(42, 3, 7));
  // Swapping stream and index must land in a different stream -- the affine
  // base*7919+t scheme this replaces collided exactly here.
  EXPECT_NE(mix_seed(42, 3, 7), mix_seed(42, 7, 3));
  EXPECT_NE(mix_seed(42, 3, 7), mix_seed(43, 3, 7));
  EXPECT_NE(mix_seed(42, 3, 7), mix_seed(42, 3, 8));
}

TEST(MixSeed, NoCollisionsAcrossRealisticGrid) {
  // base x stream x index grid of the size the experiment drivers use; all
  // derived seeds must be distinct (the old scheme collided whenever
  // base1*7919 + t1 == base2*7919 + t2).
  std::set<std::uint64_t> seen;
  std::size_t n = 0;
  for (std::uint64_t base : {1ULL, 2ULL, 42ULL, 43ULL}) {
    for (std::uint64_t stream = 0; stream < 16; ++stream) {
      for (std::uint64_t t = 0; t < 64; ++t) {
        seen.insert(mix_seed(base, stream, t));
        ++n;
      }
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(MixSeed, AdjacentInputsFlipManyBits) {
  // splitmix64 avalanche: neighbouring trial indices must not produce
  // near-identical seeds (popcount of the XOR stays near 32).
  for (std::uint64_t t = 0; t < 32; ++t) {
    const auto d = mix_seed(42, 0, t) ^ mix_seed(42, 0, t + 1);
    EXPECT_GE(std::popcount(d), 10u) << "t=" << t;
  }
}

TEST(OnlineStats, MergeEmptySides) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);  // empty lhs: adopt rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  OnlineStats c, d;
  c.merge(d);  // both empty
  EXPECT_EQ(c.count(), 0u);
}

TEST(SampleSet, MergeMatchesSequentialAndHandlesEmpty) {
  SampleSet all, a, b;
  Rng r(23);
  for (int i = 0; i < 301; ++i) {
    const double x = r.uniform(-5, 5);
    all.add(x);
    (i % 3 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.percentile(50.0), all.percentile(50.0));
  EXPECT_DOUBLE_EQ(a.percentile(99.0), all.percentile(99.0));
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());

  SampleSet empty;
  a.merge(empty);  // empty rhs: no-op
  EXPECT_EQ(a.count(), all.count());
  empty.merge(a);  // empty lhs: adopt rhs
  EXPECT_EQ(empty.count(), all.count());
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), all.percentile(50.0));
}

TEST(SampleSet, ConstPercentileMatchesSortingPath) {
  SampleSet sorting, scratch;
  Rng r(31);
  for (int i = 0; i < 257; ++i) {
    const double x = r.uniform(0, 1000);
    sorting.add(x);
    scratch.add(x);
  }
  const SampleSet& c = scratch;  // const overload: nth_element on a copy
  for (double p : {0.0, 12.5, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(c.percentile(p), sorting.percentile(p)) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(c.min(), sorting.min());
  EXPECT_DOUBLE_EQ(c.max(), sorting.max());
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.jobs(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  // The pool must be reusable across batches.
  pool.parallel_for(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 2);
}

TEST(ThreadPool, SingleJobRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(3);
  pool.parallel_for(3, [&](std::size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Still usable after a failed batch.
  std::atomic<int> n{0};
  pool.parallel_for(10, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

}  // namespace
}  // namespace ioguard
