// Tests for the NoC traffic generators and saturation behaviour.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "noc/traffic.hpp"

namespace ioguard::noc {
namespace {

TEST(TrafficDest, TransposeMapsCoordinates) {
  Mesh mesh(MeshConfig{});
  Rng rng(1);
  TrafficConfig cfg;
  cfg.pattern = TrafficPattern::kTranspose;
  EXPECT_EQ(traffic_destination(mesh, mesh.node_at(1, 3), cfg, rng),
            mesh.node_at(3, 1));
  EXPECT_EQ(traffic_destination(mesh, mesh.node_at(2, 2), cfg, rng),
            mesh.node_at(2, 2));
}

TEST(TrafficDest, BitComplementMirrorsIndex) {
  Mesh mesh(MeshConfig{});
  Rng rng(1);
  TrafficConfig cfg;
  cfg.pattern = TrafficPattern::kBitComplement;
  EXPECT_EQ(traffic_destination(mesh, NodeId{0}, cfg, rng), NodeId{24});
  EXPECT_EQ(traffic_destination(mesh, NodeId{24}, cfg, rng), NodeId{0});
}

TEST(TrafficDest, UniformNeverSelf) {
  Mesh mesh(MeshConfig{});
  Rng rng(7);
  TrafficConfig cfg;
  for (int i = 0; i < 500; ++i) {
    const NodeId src{static_cast<std::uint32_t>(rng.index(mesh.node_count()))};
    EXPECT_NE(traffic_destination(mesh, src, cfg, rng), src);
  }
}

TEST(TrafficDest, HotspotConcentrates) {
  Mesh mesh(MeshConfig{});
  Rng rng(9);
  TrafficConfig cfg;
  cfg.pattern = TrafficPattern::kHotspot;
  cfg.hotspot_fraction = 0.8;
  int hot = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i)
    if (traffic_destination(mesh, NodeId{0}, cfg, rng) == NodeId{24}) ++hot;
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.8, 0.05);
}

TEST(TrafficRun, LowLoadDeliversEverything) {
  Mesh mesh(MeshConfig{});
  TrafficConfig cfg;
  cfg.injection_rate = 0.01;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 5000;
  const auto r = run_traffic(mesh, cfg);
  EXPECT_EQ(r.delivered_packets, r.offered_packets);
  EXPECT_GT(r.latency_p50, 0.0);
  EXPECT_LE(r.latency_p50, r.latency_p99);
}

TEST(TrafficRun, LatencyGrowsWithLoad) {
  Mesh light(MeshConfig{}), heavy(MeshConfig{});
  TrafficConfig low;
  low.injection_rate = 0.01;
  low.measure_cycles = 8000;
  TrafficConfig high = low;
  high.injection_rate = 0.12;
  const auto rl = run_traffic(light, low);
  const auto rh = run_traffic(heavy, high);
  EXPECT_GT(rh.latency_p99, rl.latency_p99);
}

TEST(TrafficRun, HotspotSaturatesBeforeUniform) {
  Mesh uniform_mesh(MeshConfig{}), hotspot_mesh(MeshConfig{});
  TrafficConfig uniform_cfg;
  uniform_cfg.injection_rate = 0.08;
  uniform_cfg.measure_cycles = 8000;
  TrafficConfig hotspot_cfg = uniform_cfg;
  hotspot_cfg.pattern = TrafficPattern::kHotspot;
  hotspot_cfg.hotspot_fraction = 0.7;
  const auto ru = run_traffic(uniform_mesh, uniform_cfg);
  const auto rh = run_traffic(hotspot_mesh, hotspot_cfg);
  // The hot ejection port is the bottleneck: tail latency inflates.
  EXPECT_GT(rh.latency_p99, ru.latency_p99);
}

}  // namespace
}  // namespace ioguard::noc
