// Tests for the sensitivity analysis (breakdown factor, slack, budget
// margins) layered over Theorems 3/4.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/sensitivity.hpp"
#include "sched/server_design.hpp"

namespace ioguard::sched {
namespace {

workload::IoTaskSpec task(std::uint32_t id, Slot t, Slot c, Slot d) {
  workload::IoTaskSpec s;
  s.id = TaskId{id};
  s.vm = VmId{0};
  s.device = DeviceId{0};
  s.name = "t" + std::to_string(id);
  s.period = t;
  s.wcet = c;
  s.deadline = d;
  s.payload_bytes = 8;
  return s;
}

TEST(Breakdown, UnschedulableIsFailedPrecondition) {
  workload::TaskSet ts;
  ts.add(task(0, 10, 9, 10));
  const auto alpha = breakdown_factor({10, 5}, ts);
  ASSERT_FALSE(alpha.ok());
  EXPECT_EQ(alpha.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Breakdown, BadParametersAreInvalidArgument) {
  workload::TaskSet ts;
  ts.add(task(0, 1000, 10, 1000));
  EXPECT_EQ(breakdown_factor({10, 8}, ts, 0.5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(breakdown_factor({10, 8}, ts, 8.0, 0.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Breakdown, LightLoadHasLargeMargin) {
  workload::TaskSet ts;
  ts.add(task(0, 1000, 10, 1000));
  const auto alpha = breakdown_factor({10, 8}, ts);
  ASSERT_TRUE(alpha.ok());
  EXPECT_GT(*alpha, 2.0);
}

TEST(Breakdown, ScaledSetStillSchedulableAtAlpha) {
  workload::TaskSet ts;
  ts.add(task(0, 100, 10, 90));
  ts.add(task(1, 200, 30, 150));
  const ServerParams g{20, 12};
  if (!theorem4_check(g, ts)) GTEST_SKIP();
  const auto alpha_or = breakdown_factor(g, ts);
  ASSERT_TRUE(alpha_or.ok());
  const double alpha = *alpha_or;
  ASSERT_GE(alpha, 1.0);
  // Scaling by slightly less than alpha must stay schedulable.
  workload::TaskSet scaled;
  for (auto t : ts.tasks()) {
    t.wcet = std::max<Slot>(
        1, static_cast<Slot>(std::floor(0.98 * alpha *
                                        static_cast<double>(t.wcet))));
    if (t.wcet > t.deadline) t.wcet = t.deadline;
    scaled.add(std::move(t));
  }
  EXPECT_TRUE(theorem4_check(g, scaled));
}

TEST(MinSlack, PositiveIffSchedulable) {
  Rng rng(3);
  for (int rep = 0; rep < 40; ++rep) {
    workload::TaskSet ts;
    const Slot period = 50 + rng.uniform_int(0, 200);
    const Slot deadline = period - rng.uniform_int(0, period / 4);
    const Slot wcet = 1 + rng.uniform_int(0, deadline / 3);
    ts.add(task(0, period, wcet, deadline));
    const Slot pi = 5 + rng.uniform_int(0, 20);
    const ServerParams g{pi, 1 + rng.uniform_int(0, pi - 1)};

    if (g.bandwidth() <= ts.utilization()) continue;  // covered below
    const auto slack = min_slack(g, ts);
    ASSERT_TRUE(slack.ok());
    const bool sched = static_cast<bool>(theorem4_check(g, ts));
    EXPECT_EQ(*slack >= 0, sched)
        << "Pi=" << g.pi << " Theta=" << g.theta << " T=" << period
        << " C=" << wcet << " D=" << deadline << " slack=" << *slack;
  }
}

TEST(MinSlack, OverUtilizedServerIsNegative) {
  workload::TaskSet ts;
  ts.add(task(0, 10, 6, 10));  // util 0.6
  const auto slack = min_slack({10, 3}, ts);  // bandwidth 0.3
  ASSERT_TRUE(slack.ok());
  EXPECT_LT(*slack, 0);
}

TEST(MinSlack, EmptySetIsFailedPrecondition) {
  const auto slack = min_slack({10, 5}, workload::TaskSet{});
  ASSERT_FALSE(slack.ok());
  EXPECT_EQ(slack.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MinTheta, MatchesDirectSearch) {
  workload::TaskSet ts;
  ts.add(task(0, 100, 10, 80));
  ts.add(task(1, 400, 40, 300));
  const ServerParams g{20, 20};
  const auto needed = min_required_theta(g, ts);
  ASSERT_TRUE(needed.ok());
  EXPECT_TRUE(theorem4_check({20, *needed}, ts));
  if (*needed > 1) {
    EXPECT_FALSE(theorem4_check({20, *needed - 1}, ts));
  }
  // Consistent with the designer's minimal budget for the same Pi.
  const auto designed = min_theta_for_pi(20, ts);
  ASSERT_TRUE(designed.ok());
  EXPECT_EQ(designed->theta, *needed);
}

TEST(GlobalSlack, DetectsViolationMagnitude) {
  TimeSlotTable t(10);
  for (Slot s = 0; s < 5; ++s) t.reserve(s, TaskId{0});
  TableSupply supply(t);  // bandwidth 0.5
  // Demand 0.6: negative slack.
  const auto bad = global_min_slack(supply, {{10, 6}});
  ASSERT_TRUE(bad.ok());
  EXPECT_LT(*bad, 0);
  // Demand 0.3: non-negative slack.
  const auto good = global_min_slack(supply, {{10, 3}});
  ASSERT_TRUE(good.ok());
  EXPECT_GE(*good, 0);
}

TEST(GlobalSlack, AgreesWithTheorem1) {
  Rng rng(17);
  for (int rep = 0; rep < 30; ++rep) {
    TimeSlotTable t(20);
    for (Slot s = 0; s < 20; ++s)
      if (rng.bernoulli(0.4)) t.reserve(s, TaskId{0});
    if (t.free_slots() == 0) t.release(0);
    TableSupply supply(t);
    std::vector<ServerParams> servers;
    for (int k = 0; k < 2; ++k) {
      const Slot pi = 4 + rng.uniform_int(0, 12);
      servers.push_back({pi, 1 + rng.uniform_int(0, pi - 1)});
    }
    const auto slack = global_min_slack(supply, servers);
    ASSERT_TRUE(slack.ok());
    EXPECT_EQ(*slack >= 0,
              static_cast<bool>(theorem1_exhaustive(supply, servers)));
  }
}

}  // namespace
}  // namespace ioguard::sched
