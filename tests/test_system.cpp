// Unit tests for the full-system models: pipeline stages, the trial runner
// on all four architectures, and the software footprint model (Fig. 6).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "system/config.hpp"
#include "system/experiment.hpp"
#include "system/runner.hpp"
#include "system/stages.hpp"
#include "system/sw_footprint.hpp"

namespace ioguard::sys {
namespace {

workload::Job make_job(std::uint32_t id, std::uint32_t vm = 0) {
  workload::Job j;
  j.id = JobId{id};
  j.task = TaskId{id};
  j.vm = VmId{vm};
  j.device = DeviceId{0};
  j.release = 0;
  j.absolute_deadline = 1000;
  j.wcet = 2;
  j.payload_bytes = 16;
  return j;
}

// -------------------------------------------------------------------- stages

TEST(IssueStage, ThroughputLimitedByIssueCost) {
  // 1000-cycle issues on a 100-cycle slot: one request per 10 slots.
  IssueStage stage(1000, 100);
  for (std::uint32_t i = 0; i < 3; ++i) stage.push(make_job(i));
  std::vector<workload::Job> out;
  int slots_to_first = 0;
  while (out.empty()) {
    stage.tick_slot(out);
    ++slots_to_first;
  }
  EXPECT_EQ(slots_to_first, 10);
  out.clear();
  for (int s = 0; s < 20; ++s) stage.tick_slot(out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(stage.idle());
}

TEST(IssueStage, CheapIssuesBatchInOneSlot) {
  IssueStage stage(20, 100);  // five issues per slot
  for (std::uint32_t i = 0; i < 5; ++i) stage.push(make_job(i));
  std::vector<workload::Job> out;
  stage.tick_slot(out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(IssueStage, PreservesFifoOrder) {
  IssueStage stage(150, 100);
  for (std::uint32_t i = 0; i < 4; ++i) stage.push(make_job(i));
  std::vector<workload::Job> out;
  for (int s = 0; s < 10; ++s) stage.tick_slot(out);
  ASSERT_EQ(out.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].id.value, i);
}

TEST(VmmStage, AddsQuantumDelayAndServiceTime) {
  Calibration cal;
  VmmStage vmm(cal, 4, 1);
  vmm.push(make_job(0), 0);
  std::vector<workload::Job> out;
  Slot finished_at = 0;
  for (Slot s = 0; s < 200 && out.empty(); ++s) {
    vmm.tick_slot(s, out);
    finished_at = s;
  }
  ASSERT_EQ(out.size(), 1u);
  // At least the service time (12+4*0.15 us = ~18 slots worst), at most
  // quantum + service.
  EXPECT_LE(finished_at, cal.vmm_quantum_slots + 60);
}

TEST(VmmStage, ServiceScalesWithVmCount) {
  Calibration cal;
  VmmStage few(cal, 2, 1), many(cal, 16, 1);
  EXPECT_LT(few.op_cycles(), many.op_cycles());
}

TEST(VmmStage, BacklogDrainsInOrder) {
  Calibration cal;
  cal.vmm_quantum_slots = 1;  // isolate the server behaviour
  VmmStage vmm(cal, 4, 1);
  for (std::uint32_t i = 0; i < 10; ++i) vmm.push(make_job(i), 0);
  std::vector<workload::Job> out;
  for (Slot s = 0; s < 500; ++s) vmm.tick_slot(s, out);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].id.value, i);
  EXPECT_TRUE(vmm.idle());
}

TEST(TransitModel, IoGuardIsFastAndDeterministicallyBounded) {
  Calibration cal;
  TransitModel t(cal, SystemKind::kIoGuard, 8, 0.9, 1);
  EXPECT_LT(t.mean_cycles(), 100.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LE(t.sample(), 1u);
}

TEST(TransitModel, NocContentionGrowsWithVmsAndLoad) {
  Calibration cal;
  TransitModel light(cal, SystemKind::kLegacy, 4, 0.4, 1);
  TransitModel heavy(cal, SystemKind::kLegacy, 8, 0.9, 1);
  EXPECT_GT(heavy.mean_cycles(), light.mean_cycles());
}

TEST(TransitModel, SampleMeanTracksModelMean) {
  Calibration cal;
  TransitModel t(cal, SystemKind::kBlueVisor, 8, 0.7, 42);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(t.sample());
  const double mean_slots =
      t.mean_cycles() / static_cast<double>(kDefaultCyclesPerSlot);
  EXPECT_NEAR(sum / n, mean_slots, 0.05 + mean_slots * 0.1);
}

// -------------------------------------------------------------------- runner

TrialConfig base_trial(SystemKind kind, double util, double preload = 0.0) {
  TrialConfig tc;
  tc.kind = kind;
  tc.workload.num_vms = 4;
  tc.workload.target_utilization = util;
  tc.workload.preload_fraction = preload;
  tc.min_jobs_per_task = 5;  // short horizons keep unit tests fast
  tc.trial_seed = 3;
  return tc;
}

TEST(Runner, AllSystemsSucceedAtLowUtilization) {
  for (SystemKind kind :
       {SystemKind::kLegacy, SystemKind::kRtXen, SystemKind::kBlueVisor,
        SystemKind::kIoGuard}) {
    const auto r =
        run_trial(base_trial(kind, 0.4, kind == SystemKind::kIoGuard ? 0.4 : 0.0));
    EXPECT_TRUE(r.success()) << to_string(kind) << " misses="
                             << r.critical_misses << "/" << r.jobs_counted;
    EXPECT_GT(r.jobs_counted, 100u);
    EXPECT_GT(r.goodput_bytes_per_s, 0.0);
  }
}

TEST(Runner, FifoBaselinesDegradeAtHighUtilization) {
  // At 95% target utilization the non-preemptive FIFO systems miss
  // deadlines; I/O-GUARD-70 keeps the critical tasks safe far more often.
  std::uint64_t fifo_misses = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto tc = base_trial(SystemKind::kLegacy, 0.95);
    tc.trial_seed = seed;
    fifo_misses += run_trial(tc).critical_misses;
  }
  std::uint64_t ioguard_misses = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto tc = base_trial(SystemKind::kIoGuard, 0.95, 0.7);
    tc.trial_seed = seed;
    ioguard_misses += run_trial(tc).critical_misses;
  }
  EXPECT_GT(fifo_misses, 0u);
  EXPECT_LT(ioguard_misses, fifo_misses / 2 + 1);
}

TEST(Runner, DeterministicForSameConfig) {
  const auto a = run_trial(base_trial(SystemKind::kBlueVisor, 0.7));
  const auto b = run_trial(base_trial(SystemKind::kBlueVisor, 0.7));
  EXPECT_EQ(a.jobs_counted, b.jobs_counted);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_DOUBLE_EQ(a.goodput_bytes_per_s, b.goodput_bytes_per_s);
}

TEST(Runner, DeviceBusyFractionTracksUtilization) {
  const auto r = run_trial(base_trial(SystemKind::kLegacy, 0.6));
  EXPECT_GT(r.device_busy_frac, 0.3);
  EXPECT_LT(r.device_busy_frac, 0.75);
}

TEST(Runner, IoGuardAdmissionReportedAtLowLoad) {
  const auto r = run_trial(base_trial(SystemKind::kIoGuard, 0.45, 0.4));
  EXPECT_TRUE(r.admitted);
}

/// Full trial summary (config echo + every result figure) as bytes, the
/// same serialization CI artifacts use — so equality here is equality of
/// everything a consumer can observe from a trial.
std::string summary_bytes(const TrialConfig& tc) {
  std::ostringstream os;
  write_trial_summary_json(os, tc, run_trial(tc));
  return os.str();
}

TEST(Runner, EventDrivenMatchesSteppedReferenceAllSystems) {
  for (const SystemKind kind :
       {SystemKind::kLegacy, SystemKind::kBlueVisor, SystemKind::kRtXen,
        SystemKind::kIoGuard}) {
    auto tc = base_trial(kind, 0.5, 0.4);
    tc.stepped = false;
    const std::string event = summary_bytes(tc);
    tc.stepped = true;
    const std::string stepped = summary_bytes(tc);
    EXPECT_EQ(event, stepped) << "system kind " << static_cast<int>(kind);
  }
}

TEST(Runner, EventDrivenMatchesSteppedReferenceUnderFaults) {
  auto tc = base_trial(SystemKind::kIoGuard, 0.6, 0.5);
  auto plan = faults::FaultPlan::parse("mixed");
  ASSERT_TRUE(plan.ok());
  tc.faults = *plan;
  tc.stepped = false;
  const std::string event = summary_bytes(tc);
  tc.stepped = true;
  EXPECT_EQ(event, summary_bytes(tc));
}

TEST(Runner, EventDrivenMatchesSteppedReferenceWithObservability) {
  // Profiling exercises the skipped-slot attribution: quiescent stretches
  // the event loop jumps must land in the same per-component counters the
  // dense loop fills one slot at a time.
  for (const double util : {0.05, 0.9}) {
    auto tc = base_trial(SystemKind::kIoGuard, util, 0.3);
    tc.collect_profile = true;
    tc.collect_jitter = true;
    tc.stepped = false;
    const std::string event = summary_bytes(tc);
    tc.stepped = true;
    EXPECT_EQ(event, summary_bytes(tc)) << "util " << util;
  }
}

TEST(Runner, HorizonOverrideRespected) {
  auto tc = base_trial(SystemKind::kLegacy, 0.5);
  tc.horizon = 12345;
  const auto r = run_trial(tc);
  EXPECT_EQ(r.horizon, 12345u);
}

// ---------------------------------------------------------------- experiment

TEST(Experiment, Figure7SystemsListMatchesPaper) {
  const auto systems = figure7_systems();
  ASSERT_EQ(systems.size(), 5u);
  EXPECT_EQ(systems[0].label, "BS|Legacy");
  EXPECT_EQ(systems[3].label, "I/O-GUARD-40");
  EXPECT_DOUBLE_EQ(systems[4].preload_fraction, 0.7);
}

TEST(Experiment, UtilizationSweepMatchesPaper) {
  const auto sweep = utilization_sweep();
  ASSERT_EQ(sweep.size(), 13u);
  EXPECT_DOUBLE_EQ(sweep.front(), 0.40);
  EXPECT_DOUBLE_EQ(sweep.back(), 1.00);
}

TEST(Experiment, RunPointAggregates) {
  ExperimentConfig cfg;
  cfg.trials = 3;
  cfg.min_jobs_per_task = 5;
  const auto p = run_point(figure7_systems()[0], 4, 0.4, cfg);
  EXPECT_EQ(p.trials, 3u);
  EXPECT_GE(p.success_ratio(), 0.0);
  EXPECT_LE(p.success_ratio(), 1.0);
  EXPECT_EQ(p.goodput_mbps.count(), 3u);
}

// -------------------------------------------------------------- sw footprint

TEST(SwFootprint, RtXenOverheadMatchesPaperAnchor) {
  // "an additional 61 KB (129.8%) memory footprint compared to the legacy
  // system".
  const auto legacy = kernel_stack_footprint(SystemKind::kLegacy);
  const auto rtxen = kernel_stack_footprint(SystemKind::kRtXen);
  const double extra_kb = rtxen.total_kb() - legacy.total_kb();
  EXPECT_NEAR(extra_kb, 61.0, 1.0);
  EXPECT_NEAR(extra_kb / legacy.total_kb(), 1.298, 0.05);
}

TEST(SwFootprint, OrderingAcrossSystems) {
  // RT-XEN > Legacy > BV > I/O-GUARD on every component group.
  const auto k = [](SystemKind s) { return kernel_stack_footprint(s).total(); };
  EXPECT_GT(k(SystemKind::kRtXen), k(SystemKind::kLegacy));
  EXPECT_GT(k(SystemKind::kLegacy), k(SystemKind::kBlueVisor));
  EXPECT_GT(k(SystemKind::kBlueVisor), k(SystemKind::kIoGuard));

  for (SwComponent c :
       {SwComponent::kUartDriver, SwComponent::kEthernetDriver,
        SwComponent::kFlexRayDriver}) {
    EXPECT_GT(sw_footprint(SystemKind::kRtXen, c).total(),
              sw_footprint(SystemKind::kLegacy, c).total());
    EXPECT_GT(sw_footprint(SystemKind::kLegacy, c).total(),
              sw_footprint(SystemKind::kBlueVisor, c).total());
    EXPECT_GT(sw_footprint(SystemKind::kBlueVisor, c).total(),
              sw_footprint(SystemKind::kIoGuard, c).total());
  }
}

TEST(SwFootprint, IoGuardHasNoSoftwareHypervisor) {
  EXPECT_EQ(sw_footprint(SystemKind::kIoGuard, SwComponent::kHypervisor).total(),
            0u);
  EXPECT_EQ(sw_footprint(SystemKind::kLegacy, SwComponent::kHypervisor).total(),
            0u);
  EXPECT_GT(sw_footprint(SystemKind::kRtXen, SwComponent::kHypervisor).total(),
            50u * 1024u);
}

TEST(SwFootprint, TotalsAreComponentSums) {
  for (SystemKind s : {SystemKind::kLegacy, SystemKind::kRtXen,
                       SystemKind::kBlueVisor, SystemKind::kIoGuard}) {
    Footprint sum;
    for (SwComponent c : all_sw_components()) sum = sum + sw_footprint(s, c);
    EXPECT_EQ(sum.total(), total_sw_footprint(s).total());
  }
}

}  // namespace
}  // namespace ioguard::sys
