// Unit tests for the I/O device models and the legacy FIFO controller.
#include <gtest/gtest.h>

#include "iodev/device.hpp"
#include "iodev/fifo_controller.hpp"

namespace ioguard::iodev {
namespace {

workload::Job make_job(std::uint32_t id, Slot release, Slot deadline,
                       Slot wcet, std::uint32_t bytes = 64) {
  workload::Job j;
  j.id = JobId{id};
  j.task = TaskId{id};
  j.vm = VmId{0};
  j.device = DeviceId{0};
  j.release = release;
  j.absolute_deadline = deadline;
  j.wcet = wcet;
  j.payload_bytes = bytes;
  return j;
}

TEST(DeviceCatalog, ContainsAllKinds) {
  EXPECT_EQ(device_catalog().size(), 7u);
  EXPECT_EQ(device_spec(DeviceKind::kEthernet).bandwidth_bps, 1'000'000'000u);
  EXPECT_EQ(device_spec(DeviceKind::kFlexRay).bandwidth_bps, 10'000'000u);
  EXPECT_EQ(std::string(to_string(DeviceKind::kSpi)), "spi");
}

TEST(DeviceService, EthernetFrameTiming) {
  const auto& eth = device_spec(DeviceKind::kEthernet);
  // 1500 B at 1 Gbps = 12 us = 1200 cycles, plus 100 fixed = 13 us.
  EXPECT_EQ(service_cycles(eth, 1500), 100u + 1200u);
  EXPECT_EQ(service_slots(eth, 1500), 2u);  // 10 us slots
}

TEST(DeviceService, FlexRayIsSlow) {
  const auto& fr = device_spec(DeviceKind::kFlexRay);
  // 128 B at 10 Mbps = 102.4 us.
  const Cycle c = service_cycles(fr, 128);
  EXPECT_NEAR(static_cast<double>(c), 200.0 + 10240.0, 1.0);
  EXPECT_GE(service_slots(fr, 128), 11u);  // >= 104 us in 10 us slots
}

TEST(DeviceService, GpioHasNoSerialization) {
  const auto& gpio = device_spec(DeviceKind::kGpio);
  EXPECT_EQ(service_cycles(gpio, 4), gpio.fixed_op_cycles);
  EXPECT_EQ(service_slots(gpio, 4), 1u);
}

TEST(FifoController, ServesInArrivalOrder) {
  FifoController fifo(8);
  ASSERT_TRUE(fifo.enqueue(make_job(0, 0, 100, 2), 0));
  ASSERT_TRUE(fifo.enqueue(make_job(1, 0, 50, 3), 0));

  std::vector<std::uint32_t> completed;
  for (Slot s = 0; s < 10; ++s)
    if (auto done = fifo.tick_slot(s)) completed.push_back(done->job.id.value);
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(completed[0], 0u);  // arrival order, not deadline order
  EXPECT_EQ(completed[1], 1u);
  EXPECT_EQ(fifo.busy_slots(), 5u);
  EXPECT_TRUE(fifo.idle());
}

TEST(FifoController, NonPreemptiveBlocking) {
  FifoController fifo(8);
  ASSERT_TRUE(fifo.enqueue(make_job(0, 0, 1000, 50), 0));
  Slot s = 0;
  // Long job starts; a short urgent job arrives at slot 10.
  for (; s < 10; ++s) fifo.tick_slot(s);
  ASSERT_TRUE(fifo.enqueue(make_job(1, 10, 20, 2), 10));
  std::optional<Completion> short_done;
  for (; s < 100; ++s) {
    if (auto done = fifo.tick_slot(s))
      if (done->job.id.value == 1) short_done = done;
  }
  ASSERT_TRUE(short_done.has_value());
  EXPECT_TRUE(short_done->missed());             // blocked behind the long job
  EXPECT_EQ(short_done->completed_at, 52u);      // 50 + 2 slots
}

TEST(FifoController, CompletionTimestampsAndDeadlines) {
  FifoController fifo(4);
  ASSERT_TRUE(fifo.enqueue(make_job(0, 0, 3, 3), 0));
  std::optional<Completion> done;
  for (Slot s = 0; s < 5 && !done; ++s) done = fifo.tick_slot(s);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->completed_at, 3u);
  EXPECT_FALSE(done->missed());
}

TEST(FifoController, RejectsWhenFull) {
  FifoController fifo(2);
  EXPECT_TRUE(fifo.enqueue(make_job(0, 0, 100, 5), 0));
  EXPECT_TRUE(fifo.enqueue(make_job(1, 0, 100, 5), 0));
  EXPECT_FALSE(fifo.enqueue(make_job(2, 0, 100, 5), 0));
  EXPECT_EQ(fifo.rejected(), 1u);
  // Draining frees capacity again.
  for (Slot s = 0; s < 20; ++s) fifo.tick_slot(s);
  EXPECT_TRUE(fifo.enqueue(make_job(3, 20, 100, 5), 20));
}

TEST(FifoController, IdleSlotsConsumeNothing) {
  FifoController fifo(4);
  for (Slot s = 0; s < 10; ++s) EXPECT_FALSE(fifo.tick_slot(s).has_value());
  EXPECT_EQ(fifo.busy_slots(), 0u);
}

}  // namespace
}  // namespace ioguard::iodev
