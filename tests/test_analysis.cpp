// Unit tests for src/analysis: one test per diagnostic code, each proving
// the code fires on a corrupted artifact and stays silent on a valid one.
// Corruptions go through the same public surfaces the verifier consumes:
// raw slot vectors re-ingested via TimeSlotTable::from_slots, malformed
// ServerParams / task sets, and injected supply functions.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/artifact_builder.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/verifier.hpp"
#include "analysis/verify_config.hpp"
#include "analysis/verify_servers.hpp"
#include "analysis/verify_supply.hpp"
#include "analysis/verify_table.hpp"
#include "sched/admission.hpp"
#include "sched/sbf.hpp"
#include "sched/slot_table.hpp"
#include "workload/generator.hpp"

namespace ioguard::analysis {
namespace {

using sched::ServerParams;
using sched::TableSupply;
using sched::TimeSlotTable;
using workload::IoTaskSpec;
using workload::TaskKind;
using workload::TaskSet;

IoTaskSpec predef(std::uint32_t id, Slot t, Slot c, Slot d, Slot offset = 0) {
  IoTaskSpec s;
  s.id = TaskId{id};
  s.vm = VmId{0};
  s.device = DeviceId{0};
  s.name = "p" + std::to_string(id);
  s.kind = TaskKind::kPredefined;
  s.period = t;
  s.wcet = c;
  s.deadline = d;
  s.offset = offset;
  s.payload_bytes = 16;
  return s;
}

IoTaskSpec vm_task(std::uint32_t id, Slot t, Slot c, Slot d,
                   std::uint32_t vm = 0, std::uint32_t dev = 0) {
  IoTaskSpec s = predef(id, t, c, d);
  s.kind = TaskKind::kRuntime;
  s.vm = VmId{vm};
  s.device = DeviceId{dev};
  s.name = "r" + std::to_string(id);
  return s;
}

/// Two pre-defined tasks with H = 20, demand 8, F = 12.
TaskSet small_predefined() {
  TaskSet set;
  set.add(predef(1, 10, 2, 10));
  set.add(predef(2, 20, 4, 20));
  return set;
}

TimeSlotTable small_table() {
  auto build = sched::build_time_slot_table(small_predefined());
  EXPECT_TRUE(build.feasible);
  return build.table;
}

std::size_t find_owned(const std::vector<std::uint32_t>& raw,
                       std::uint32_t id) {
  for (std::size_t s = 0; s < raw.size(); ++s)
    if (raw[s] == id) return s;
  return raw.size();
}

std::size_t find_free(const std::vector<std::uint32_t>& raw) {
  return find_owned(raw, TimeSlotTable::kFree);
}

Report verify_raw(std::vector<std::uint32_t> raw, const TaskSet& predefined) {
  Report report;
  verify_slot_table(TimeSlotTable::from_slots(std::move(raw)), predefined,
                    report);
  return report;
}

// ---- SIGxxx: sigma* invariants ---------------------------------------------

TEST(VerifyTable, CleanTableIsSilent) {
  Report report;
  verify_slot_table(small_table(), small_predefined(), report);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics().empty());
}

TEST(VerifyTable, Sig001FiresOnFreeCountMismatch) {
  auto raw = small_table().raw();
  // Freeing a reserved slot keeps raw()/free_slots() consistent (from_slots
  // recounts), but breaks the demand identity F = H - sum(C * H/T).
  raw[find_owned(raw, 1)] = TimeSlotTable::kFree;
  const auto report = verify_raw(std::move(raw), small_predefined());
  EXPECT_TRUE(report.has(DiagCode::kSigFreeCountMismatch));
  EXPECT_FALSE(report.ok());
}

TEST(VerifyTable, Sig002FiresOnUnknownOccupant) {
  auto raw = small_table().raw();
  raw[find_free(raw)] = 999;  // not a task id of the pre-defined set
  const auto report = verify_raw(std::move(raw), small_predefined());
  EXPECT_TRUE(report.has(DiagCode::kSigUnknownOccupant));
}

TEST(VerifyTable, Sig003FiresOnStolenSlot) {
  auto raw = small_table().raw();
  raw[find_owned(raw, 2)] = TimeSlotTable::kFree;
  const auto report = verify_raw(std::move(raw), small_predefined());
  EXPECT_TRUE(report.has(DiagCode::kSigJobUnderAllocated));
}

TEST(VerifyTable, Sig004FiresOnSurplusSlot) {
  auto raw = small_table().raw();
  raw[find_free(raw)] = 1;  // a fifth slot for a task needing 2 * 2
  const auto report = verify_raw(std::move(raw), small_predefined());
  EXPECT_TRUE(report.has(DiagCode::kSigTaskSlotSurplus));
}

TEST(VerifyTable, Sig005FiresOnSlotOutsideJobWindow) {
  // One task (T=10, C=1, D=2): its only slot must sit in [0, 2).
  TaskSet set;
  set.add(predef(1, 10, 1, 2));
  auto build = sched::build_time_slot_table(set);
  ASSERT_TRUE(build.feasible);
  auto raw = build.table.raw();
  const std::size_t s = find_owned(raw, 1);
  ASSERT_LT(s, std::size_t{2});
  raw[s] = TimeSlotTable::kFree;
  raw[5] = 1;  // deadline long past, next job not yet released
  const auto report = verify_raw(std::move(raw), set);
  EXPECT_TRUE(report.has(DiagCode::kSigSlotOutsideWindow));
  EXPECT_TRUE(report.has(DiagCode::kSigJobUnderAllocated));
}

TEST(VerifyTable, Sig006FiresOnPeriodNotDividingHyperperiod) {
  auto raw = small_table().raw();
  raw.pop_back();  // 19 slots; neither period 10 nor 20 divides 19
  const auto report = verify_raw(std::move(raw), small_predefined());
  EXPECT_TRUE(report.has(DiagCode::kSigPeriodNotDividingH));
}

TEST(VerifyTable, Sig007FiresOnBadPredefinedParameters) {
  // TaskSet::add rejects broken specs up front; the vector constructor is
  // the unvalidated ingestion path (deserialized artifacts), which is what
  // the verifier exists to cover.
  const TaskSet zero_wcet(std::vector<IoTaskSpec>{predef(1, 10, 0, 10)});
  Report report;
  verify_slot_table(TimeSlotTable(10), zero_wcet, report);
  EXPECT_TRUE(report.has(DiagCode::kSigBadPredefinedTask));

  TaskSet offset_past_period;
  offset_past_period.add(predef(2, 10, 1, 10, /*offset=*/10));
  Report report2;
  verify_slot_table(TimeSlotTable(10), offset_past_period, report2);
  EXPECT_TRUE(report2.has(DiagCode::kSigBadPredefinedTask));
}

// ---- SUPxxx: supply bound function shape + global admission ----------------

TEST(VerifySupply, RealTableSupplyIsSilent) {
  const TableSupply supply(small_table());
  Report report;
  verify_supply(supply, {}, report);
  EXPECT_TRUE(report.diagnostics().empty());
}

TEST(VerifySupply, Sup001FiresOnNonMonotoneSupply) {
  Report report;
  verify_supply_function(
      [](Slot t) { return t == 3 ? Slot{0} : t / 2; }, /*h=*/10, /*f=*/5, {},
      report);
  EXPECT_TRUE(report.has(DiagCode::kSupNonMonotone));
}

TEST(VerifySupply, Sup002FiresOnSuperadditivityViolation) {
  // sbf jumps to 1 immediately and to 2 only at t >= 8: two short windows
  // claim more supply than the window covering both.
  Report report;
  verify_supply_function(
      [](Slot t) { return std::min<Slot>(t, 1) + (t >= 8 ? Slot{1} : Slot{0}); },
      /*h=*/10, /*f=*/2, {}, report);
  EXPECT_TRUE(report.has(DiagCode::kSupSuperadditivity));
}

TEST(VerifySupply, Sup003FiresOnBrokenPeriodicExtension) {
  // A plateau at 3 cannot satisfy sbf(t + H) = sbf(t) + F with F = 5.
  Report report;
  verify_supply_function([](Slot t) { return std::min<Slot>(t, 3); },
                         /*h=*/10, /*f=*/5, {}, report);
  EXPECT_TRUE(report.has(DiagCode::kSupPeriodicExtension));
}

TEST(VerifySupply, Sup006FiresOnSupplyExceedingWindow) {
  Report report;
  verify_supply_function([](Slot t) { return 2 * t; }, /*h=*/10, /*f=*/5, {},
                         report);
  EXPECT_TRUE(report.has(DiagCode::kSupExceedsWindow));
}

TEST(VerifySupply, Sup004FiresOnZeroSlack) {
  const TableSupply supply(small_table());  // F/H = 12/20
  Report report;
  verify_global_admission(supply, {{10, 10}, {10, 10}}, {}, report);
  EXPECT_TRUE(report.has(DiagCode::kSupZeroSlack));

  Report fine;
  verify_global_admission(supply, {{10, 2}}, {}, fine);
  EXPECT_FALSE(fine.has(DiagCode::kSupZeroSlack));
  EXPECT_TRUE(fine.ok());  // theorems 1 and 2 agree on the sound system
}

TEST(VerifySupply, Sup005FiresOnTheoremDisagreement) {
  sched::AdmissionResult yes;
  yes.schedulable = true;
  sched::AdmissionResult no;
  no.schedulable = false;
  no.violation_t = 7;

  Report report;
  check_global_agreement(yes, no, report);
  EXPECT_TRUE(report.has(DiagCode::kSupTheoremDisagreement));

  Report agree;
  check_global_agreement(yes, yes, agree);
  EXPECT_FALSE(agree.has(DiagCode::kSupTheoremDisagreement));
}

TEST(VerifySupply, Sup007ReportsSkippedAgreementAtInfoSeverity) {
  const TableSupply supply(small_table());  // H = 20
  SupplyCheckOptions options;
  options.lcm_cap = 4;  // lcm(20, 7) = 140 is far past the cap
  Report report;
  verify_global_admission(supply, {{7, 1}}, options, report);
  EXPECT_TRUE(report.has(DiagCode::kSupCheckSkipped));
  EXPECT_TRUE(report.ok());  // info severity never fails a run
}

// ---- LVLxxx: per-VM server checks ------------------------------------------

TaskSet one_vm_tasks() {
  TaskSet set;
  set.add(vm_task(10, 10, 1, 10));
  return set;
}

TEST(VerifyServers, SoundServerIsSilent) {
  Report report;
  verify_servers({{10, 5}}, {one_vm_tasks()}, {}, report);
  EXPECT_TRUE(report.diagnostics().empty());
}

TEST(VerifyServers, Lvl001FiresOnBudgetPastPeriod) {
  Report report;
  verify_servers({{10, 15}}, {one_vm_tasks()}, {}, report);
  EXPECT_TRUE(report.has(DiagCode::kLvlBadServerParams));

  Report zero_pi;
  verify_servers({{0, 0}}, {one_vm_tasks()}, {}, zero_pi);
  EXPECT_TRUE(zero_pi.has(DiagCode::kLvlBadServerParams));
}

TEST(VerifyServers, Lvl002FiresOnDeadlinePastPeriod) {
  const TaskSet set(std::vector<IoTaskSpec>{vm_task(10, 10, 1, 20)});
  Report report;
  verify_servers({{10, 5}}, {set}, {}, report);
  EXPECT_TRUE(report.has(DiagCode::kLvlDeadlineExceedsPeriod));
}

TEST(VerifyServers, Lvl003FiresOnBandwidthDeficit) {
  TaskSet set;
  set.add(vm_task(10, 10, 5, 10));  // utilization 0.5
  Report report;
  verify_servers({{1000, 1}}, {set}, {}, report);  // bandwidth 0.001
  EXPECT_TRUE(report.has(DiagCode::kLvlBandwidthDeficit));
}

TEST(VerifyServers, Lvl004FiresOnTheoremDisagreement) {
  sched::AdmissionResult yes;
  yes.schedulable = true;
  sched::AdmissionResult no;
  no.schedulable = false;

  Report report;
  check_vm_agreement(no, yes, /*vm=*/2, report);
  EXPECT_TRUE(report.has(DiagCode::kLvlTheoremDisagreement));

  Report agree;
  check_vm_agreement(no, no, /*vm=*/2, agree);
  EXPECT_FALSE(agree.has(DiagCode::kLvlTheoremDisagreement));
}

TEST(VerifyServers, Lvl005FiresOnServerCountMismatch) {
  Report report;
  verify_servers({{10, 5}, {10, 5}}, {one_vm_tasks()}, {}, report);
  EXPECT_TRUE(report.has(DiagCode::kLvlServerCountMismatch));
}

TEST(VerifyServers, Lvl006FiresOnZeroTaskParameters) {
  const TaskSet set(std::vector<IoTaskSpec>{vm_task(10, 10, 0, 10)});
  Report report;
  verify_servers({{10, 5}}, {set}, {}, report);
  EXPECT_TRUE(report.has(DiagCode::kLvlBadTaskParams));
}

TEST(VerifyServers, Lvl007ReportsSkippedAgreementAtInfoSeverity) {
  ServerCheckOptions options;
  options.lcm_cap = 4;  // lcm(7, 10) = 70 is past the cap
  Report report;
  verify_servers({{7, 6}}, {one_vm_tasks()}, options, report);
  EXPECT_TRUE(report.has(DiagCode::kLvlCheckSkipped));
  EXPECT_TRUE(report.ok());
}

// ---- CFGxxx: platform / experiment configuration ---------------------------

ExperimentSpec valid_experiment() {
  ExperimentSpec e;
  e.num_vms = 4;
  e.target_utilization = 0.4;
  e.preload_fraction = 0.7;
  e.trials = 10;
  e.min_jobs_per_task = 25;
  return e;
}

TaskSet one_config_task() {
  TaskSet set;
  set.add(vm_task(1, 10, 1, 10, /*vm=*/0, /*dev=*/0));
  return set;
}

TEST(VerifyConfig, ValidConfigIsSilent) {
  Report report;
  verify_config({}, valid_experiment(), one_config_task(), report);
  EXPECT_TRUE(report.diagnostics().empty());
}

TEST(VerifyConfig, Cfg001FiresWhenMeshCannotHostFloorplan) {
  PlatformSpec platform;
  platform.device_count = 10;  // nodes 20..29 overflow the 5x5 mesh
  Report report;
  verify_config(platform, valid_experiment(), one_config_task(), report);
  EXPECT_TRUE(report.has(DiagCode::kCfgBadNocDims));

  PlatformSpec degenerate;
  degenerate.noc_width = 0;
  Report report2;
  verify_config(degenerate, valid_experiment(), one_config_task(), report2);
  EXPECT_TRUE(report2.has(DiagCode::kCfgBadNocDims));
}

TEST(VerifyConfig, Cfg002FiresOnVmPlacementOverflow) {
  auto experiment = valid_experiment();
  experiment.num_vms = 40;  // the 5x5 mesh places at most 16 VMs
  Report report;
  verify_config({}, experiment, one_config_task(), report);
  EXPECT_TRUE(report.has(DiagCode::kCfgVmPlacementOverflow));
}

TEST(VerifyConfig, Cfg003FiresOnUnknownDeviceReference) {
  TaskSet set;
  set.add(vm_task(1, 10, 1, 10, /*vm=*/0, /*dev=*/17));
  Report report;
  verify_config({}, valid_experiment(), set, report);
  EXPECT_TRUE(report.has(DiagCode::kCfgUnknownDevice));
}

TEST(VerifyConfig, Cfg004FiresOnVmOutOfRange) {
  TaskSet set;
  set.add(vm_task(1, 10, 1, 10, /*vm=*/9, /*dev=*/0));
  Report report;
  verify_config({}, valid_experiment(), set, report);  // num_vms = 4
  EXPECT_TRUE(report.has(DiagCode::kCfgVmOutOfRange));
}

TEST(VerifyConfig, Cfg005FiresOnOutOfRangeFractions) {
  auto experiment = valid_experiment();
  experiment.target_utilization = 1.7;
  Report report;
  verify_config({}, experiment, one_config_task(), report);
  EXPECT_TRUE(report.has(DiagCode::kCfgBadFraction));

  auto negative = valid_experiment();
  negative.preload_fraction = -0.5;
  Report report2;
  verify_config({}, negative, one_config_task(), report2);
  EXPECT_TRUE(report2.has(DiagCode::kCfgBadFraction));
}

TEST(VerifyConfig, Cfg006FiresOnDegenerateExperiment) {
  auto experiment = valid_experiment();
  experiment.trials = 0;
  Report report;
  verify_config({}, experiment, one_config_task(), report);
  EXPECT_TRUE(report.has(DiagCode::kCfgDegenerateExperiment));
}

// ---- diagnostics plumbing --------------------------------------------------

TEST(Diagnostics, CodeStringsAreStable) {
  EXPECT_STREQ(code_string(DiagCode::kSigFreeCountMismatch), "SIG001");
  EXPECT_STREQ(code_string(DiagCode::kSigJobUnderAllocated), "SIG003");
  EXPECT_STREQ(code_string(DiagCode::kSupZeroSlack), "SUP004");
  EXPECT_STREQ(code_string(DiagCode::kLvlCheckSkipped), "LVL007");
  EXPECT_STREQ(code_string(DiagCode::kCfgDegenerateExperiment), "CFG006");
}

TEST(Diagnostics, SkippedChecksDefaultToInfoSeverity) {
  EXPECT_EQ(default_severity(DiagCode::kSupCheckSkipped), Severity::kInfo);
  EXPECT_EQ(default_severity(DiagCode::kLvlCheckSkipped), Severity::kInfo);
  EXPECT_EQ(default_severity(DiagCode::kSigJobUnderAllocated),
            Severity::kError);
}

TEST(Diagnostics, ReportCountsAndRenders) {
  Report report;
  report.add(DiagCode::kSigJobUnderAllocated, "job 0 holds 1 of 2 slots",
             "device 0 task 1");
  report.add(DiagCode::kSupCheckSkipped, "bound too large");
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(DiagCode::kSigJobUnderAllocated));
  EXPECT_EQ(report.with_code(DiagCode::kSigJobUnderAllocated).size(), 1u);

  std::ostringstream text;
  report.render_text(text);
  EXPECT_NE(text.str().find("SIG003"), std::string::npos);
  EXPECT_NE(text.str().find("device 0 task 1"), std::string::npos);

  std::ostringstream json;
  report.render_json(json);
  EXPECT_NE(json.str().find("\"SIG003\""), std::string::npos);
  EXPECT_NE(json.str().find("\"SUP007\""), std::string::npos);
}

// ---- end-to-end: the case-study artifacts verify clean ---------------------

TEST(ArtifactBuilder, CaseStudyArtifactsVerifyClean) {
  workload::CaseStudyConfig cfg;
  cfg.num_vms = 4;
  cfg.target_utilization = 0.4;
  cfg.preload_fraction = 0.7;
  cfg.seed = 42;
  const Report report = verify_case_study(cfg, /*trials=*/2, /*min_jobs=*/5);
  if (!report.ok()) {
    std::ostringstream os;
    report.render_text(os);
    ADD_FAILURE() << os.str();
  }
}

TEST(ArtifactBuilder, CorruptedCaseStudyFailsSystemVerification) {
  workload::CaseStudyConfig cfg;
  cfg.num_vms = 4;
  cfg.target_utilization = 0.4;
  cfg.preload_fraction = 0.7;
  cfg.seed = 42;
  auto a = build_experiment_artifacts(cfg, /*trials=*/2, /*min_jobs=*/5);
  // Steal one reserved slot from the first device holding any.
  for (std::size_t d = 0; d < a.tables.size(); ++d) {
    auto raw = a.tables[d].raw();
    std::size_t owned = raw.size();
    for (std::size_t i = 0; i < raw.size(); ++i)
      if (raw[i] != TimeSlotTable::kFree) {
        owned = i;
        break;
      }
    if (owned == raw.size()) continue;
    raw[owned] = TimeSlotTable::kFree;
    a.tables[d] = TimeSlotTable::from_slots(std::move(raw));
    const Report report =
        verify_system(a.platform, a.experiment, a.all, a.device_views());
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(DiagCode::kSigFreeCountMismatch) ||
                report.has(DiagCode::kSigJobUnderAllocated));
    return;
  }
  ADD_FAILURE() << "no device table held a reserved slot";
}

}  // namespace
}  // namespace ioguard::analysis
