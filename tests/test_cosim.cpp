// Tests for the cycle-accurate co-simulation (NoC in the loop), including
// cross-validation against the analytic slot-level runner.
#include <gtest/gtest.h>

#include "system/cosim.hpp"
#include "system/runner.hpp"

namespace ioguard::sys {
namespace {

CosimConfig base_config(SystemKind kind, double util) {
  CosimConfig cfg;
  cfg.kind = kind;
  cfg.workload.num_vms = 4;
  cfg.workload.target_utilization = util;
  cfg.workload.preload_fraction = kind == SystemKind::kIoGuard ? 0.4 : 0.0;
  cfg.horizon_slots = 1500;  // 15 ms keeps the cycle loop test-fast
  cfg.seed = 5;
  return cfg;
}

TEST(Cosim, AllSystemsMeetDeadlinesAtModerateLoad) {
  for (SystemKind kind : {SystemKind::kLegacy, SystemKind::kBlueVisor,
                          SystemKind::kIoGuard}) {
    const auto r = run_cosim(base_config(kind, 0.5));
    EXPECT_GT(r.jobs_counted, 20u) << to_string(kind);
    EXPECT_TRUE(r.success()) << to_string(kind) << " misses="
                             << r.critical_misses;
    EXPECT_EQ(r.dropped, 0u);
  }
}

TEST(Cosim, BaselineRequestsActuallyTraverseTheMesh) {
  auto r = run_cosim(base_config(SystemKind::kLegacy, 0.5));
  EXPECT_GT(r.request_latency_cycles.count(), 20u);
  // Zero-load latency for a few hops is ~10 cycles; contention adds more.
  EXPECT_GE(r.request_latency_cycles.percentile(50), 5.0);
  EXPECT_GT(r.noc_packets_delivered, 2 * r.request_latency_cycles.count() - 10);
}

TEST(Cosim, IoGuardBypassesTheRouters) {
  const auto r = run_cosim(base_config(SystemKind::kIoGuard, 0.5));
  // Dedicated links: no request packets on the mesh at zero background.
  EXPECT_EQ(r.request_latency_cycles.count(), 0u);
  EXPECT_EQ(r.noc_packets_delivered, 0u);
}

TEST(Cosim, BackgroundTrafficLoadsTheMeshAndInflatesLatency) {
  auto quiet = base_config(SystemKind::kLegacy, 0.5);
  auto noisy = quiet;
  noisy.background_rate = 0.02;
  auto rq = run_cosim(quiet);
  auto rn = run_cosim(noisy);
  EXPECT_GT(rn.noc_packets_delivered, rq.noc_packets_delivered);
  ASSERT_GT(rn.request_latency_cycles.count(), 0u);
  EXPECT_GE(rn.request_latency_cycles.percentile(99),
            rq.request_latency_cycles.percentile(99));
}

TEST(Cosim, Deterministic) {
  const auto a = run_cosim(base_config(SystemKind::kBlueVisor, 0.6));
  const auto b = run_cosim(base_config(SystemKind::kBlueVisor, 0.6));
  EXPECT_EQ(a.jobs_counted, b.jobs_counted);
  EXPECT_EQ(a.jobs_on_time, b.jobs_on_time);
  EXPECT_EQ(a.noc_packets_delivered, b.noc_packets_delivered);
}

TEST(Cosim, AgreesWithAnalyticRunnerOnOutcome) {
  // Same workload seed and utilization: the cycle-accurate and analytic
  // models must agree on the qualitative outcome (all deadlines met at
  // moderate load on both paths).
  const auto cyc = run_cosim(base_config(SystemKind::kLegacy, 0.5));

  TrialConfig tc;
  tc.kind = SystemKind::kLegacy;
  tc.workload.num_vms = 4;
  tc.workload.target_utilization = 0.5;
  tc.horizon = 1500;
  tc.trial_seed = 5;
  const auto ana = run_trial(tc);

  EXPECT_TRUE(cyc.success());
  EXPECT_TRUE(ana.success());
  // Identical workload construction: same number of counted jobs.
  EXPECT_EQ(cyc.jobs_counted, ana.jobs_counted);
}

}  // namespace
}  // namespace ioguard::sys
