// Unit tests for the cycle-level wormhole mesh NoC.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "noc/mesh.hpp"
#include "noc/packet.hpp"
#include "noc/router.hpp"
#include "sim/engine.hpp"

namespace ioguard::noc {
namespace {

TEST(Packet, FlitCount) {
  EXPECT_EQ(flits_for(0, 16), 1u);    // head only
  EXPECT_EQ(flits_for(1, 16), 2u);
  EXPECT_EQ(flits_for(16, 16), 2u);
  EXPECT_EQ(flits_for(17, 16), 3u);
  EXPECT_EQ(flits_for(1500, 16), 1u + 94u);
}

TEST(Routing, XyDimensionOrder) {
  EXPECT_EQ(route_xy({1, 1}, {3, 1}), Port::kEast);
  EXPECT_EQ(route_xy({1, 1}, {0, 2}), Port::kWest);  // x first
  EXPECT_EQ(route_xy({1, 1}, {1, 3}), Port::kSouth);
  EXPECT_EQ(route_xy({1, 1}, {1, 0}), Port::kNorth);
  EXPECT_EQ(route_xy({2, 2}, {2, 2}), Port::kLocal);
}

TEST(Link, OneCycleDelay) {
  Link link;
  Flit f;
  f.packet_id = 7;
  link.put(f, 10);
  EXPECT_FALSE(link.take(10).has_value());  // not visible same cycle
  auto got = link.take(11);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->packet_id, 7u);
  EXPECT_FALSE(link.take(12).has_value());  // consumed
}

TEST(Link, CreditsArriveNextCycle) {
  Link link;
  link.put_credit(5);
  link.put_credit(5);
  EXPECT_EQ(link.take_credits(5), 0u);
  EXPECT_EQ(link.take_credits(6), 2u);
  EXPECT_EQ(link.take_credits(7), 0u);
}

class MeshFixture : public ::testing::Test {
 protected:
  MeshConfig cfg_{};
  void run(Mesh& mesh, Cycle cycles) {
    for (Cycle c = 0; c < cycles; ++c) mesh.tick(c);
  }
};

TEST_F(MeshFixture, SinglePacketDelivered) {
  Mesh mesh(cfg_);
  bool delivered = false;
  Packet seen;
  mesh.set_delivery_handler(mesh.node_at(4, 4),
                            [&](const Packet& p, Cycle) {
                              delivered = true;
                              seen = p;
                            });
  Packet p;
  p.src = mesh.node_at(0, 0);
  p.dst = mesh.node_at(4, 4);
  p.payload_bytes = 64;
  p.tag = 123;
  mesh.send(p, 0);
  run(mesh, 200);
  ASSERT_TRUE(delivered);
  EXPECT_EQ(seen.tag, 123u);
  EXPECT_GT(seen.latency(), 0u);
  EXPECT_TRUE(mesh.idle());
}

TEST_F(MeshFixture, ZeroLoadLatencyMatchesModel) {
  Mesh mesh(cfg_);
  Cycle measured = 0;
  mesh.set_delivery_handler(mesh.node_at(3, 2), [&](const Packet& p, Cycle) {
    measured = p.latency();
  });
  Packet p;
  p.src = mesh.node_at(0, 0);
  p.dst = mesh.node_at(3, 2);
  p.payload_bytes = 32;
  mesh.send(p, 0);
  run(mesh, 300);
  ASSERT_GT(measured, 0u);
  const Cycle predicted = mesh.zero_load_latency(p.src, p.dst, 32);
  // The closed form tracks the simulated pipeline within a couple of cycles.
  EXPECT_NEAR(static_cast<double>(measured), static_cast<double>(predicted),
              3.0);
}

TEST_F(MeshFixture, LocalDeliveryWorks) {
  Mesh mesh(cfg_);
  int count = 0;
  mesh.set_delivery_handler(mesh.node_at(2, 2),
                            [&](const Packet&, Cycle) { ++count; });
  Packet p;
  p.src = mesh.node_at(2, 2);
  p.dst = mesh.node_at(2, 2);
  p.payload_bytes = 4;
  mesh.send(p, 0);
  run(mesh, 50);
  EXPECT_EQ(count, 1);
}

TEST_F(MeshFixture, PerLinkCountersFollowXyPath) {
  Mesh mesh(cfg_);
  mesh.set_delivery_handler(mesh.node_at(3, 2), [](const Packet&, Cycle) {});
  Packet p;
  p.src = mesh.node_at(0, 0);
  p.dst = mesh.node_at(3, 2);
  p.payload_bytes = 64;  // head + 4 body flits at the 16-byte flit size
  mesh.send(p, 0);
  run(mesh, 300);
  ASSERT_TRUE(mesh.idle());
  const auto flits = flits_for(64, 16);
  // XY routing goes east along y=0 through x=0..2, turns south at (3,0).
  EXPECT_EQ(mesh.router(mesh.node_at(0, 0)).flits_routed(Port::kEast), flits);
  EXPECT_EQ(mesh.router(mesh.node_at(0, 0)).packets_routed(Port::kEast), 1u);
  EXPECT_EQ(mesh.router(mesh.node_at(2, 0)).flits_routed(Port::kEast), flits);
  EXPECT_EQ(mesh.router(mesh.node_at(3, 0)).flits_routed(Port::kSouth), flits);
  EXPECT_EQ(mesh.router(mesh.node_at(3, 2)).flits_routed(Port::kLocal), flits);
  EXPECT_EQ(mesh.router(mesh.node_at(3, 2)).packets_routed(Port::kLocal), 1u);
  // A router off the XY path saw nothing.
  EXPECT_EQ(mesh.router(mesh.node_at(4, 4)).flits_routed(), 0u);
  EXPECT_EQ(mesh.nic(mesh.node_at(3, 2)).packets_received(), 1u);
}

TEST_F(MeshFixture, NoLossUnderRandomTraffic) {
  Mesh mesh(cfg_);
  Rng rng(99);
  std::map<std::uint64_t, int> outstanding;
  for (int n = 0; n < static_cast<int>(mesh.node_count()); ++n)
    mesh.set_delivery_handler(NodeId{static_cast<std::uint32_t>(n)},
                              [&](const Packet& p, Cycle) {
                                --outstanding[p.tag];
                              });
  std::uint64_t tag = 0;
  Cycle now = 0;
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 10; ++i) {
      Packet p;
      p.src = NodeId{static_cast<std::uint32_t>(rng.index(mesh.node_count()))};
      p.dst = NodeId{static_cast<std::uint32_t>(rng.index(mesh.node_count()))};
      p.payload_bytes = static_cast<std::uint32_t>(rng.uniform_int(0, 256));
      p.tag = ++tag;
      ++outstanding[p.tag];
      mesh.send(p, now);
    }
    for (int c = 0; c < 50; ++c) mesh.tick(now++);
  }
  for (int c = 0; c < 5000 && !mesh.idle(); ++c) mesh.tick(now++);
  EXPECT_TRUE(mesh.idle());
  EXPECT_EQ(mesh.packets_delivered(), 200u);
  for (const auto& [t, n] : outstanding) EXPECT_EQ(n, 0) << "tag " << t;
}

TEST_F(MeshFixture, PerFlowOrderingPreserved) {
  // Wormhole + fixed XY routing: packets of one src->dst flow arrive in
  // injection order.
  Mesh mesh(cfg_);
  std::vector<std::uint64_t> arrivals;
  mesh.set_delivery_handler(mesh.node_at(4, 0), [&](const Packet& p, Cycle) {
    arrivals.push_back(p.tag);
  });
  Cycle now = 0;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    Packet p;
    p.src = mesh.node_at(0, 0);
    p.dst = mesh.node_at(4, 0);
    p.payload_bytes = 48;
    p.tag = i;
    mesh.send(p, now);
  }
  for (int c = 0; c < 2000; ++c) mesh.tick(now++);
  ASSERT_EQ(arrivals.size(), 10u);
  for (std::uint64_t i = 0; i < arrivals.size(); ++i)
    EXPECT_EQ(arrivals[i], i + 1);
}

TEST_F(MeshFixture, ContentionIncreasesLatency) {
  // Many flows crossing the mesh center raise latency above zero-load.
  Mesh idle_mesh(cfg_), busy_mesh(cfg_);
  Cycle now = 0;

  Packet probe;
  probe.src = idle_mesh.node_at(0, 2);
  probe.dst = idle_mesh.node_at(4, 2);
  probe.payload_bytes = 64;
  idle_mesh.send(probe, 0);
  for (int c = 0; c < 500; ++c) idle_mesh.tick(now++);
  const double idle_lat = idle_mesh.latencies().mean();

  now = 0;
  // Background flows sharing the row-2 links.
  for (int i = 0; i < 12; ++i) {
    Packet bg;
    bg.src = busy_mesh.node_at(0, 2);
    bg.dst = busy_mesh.node_at(4, 2);
    bg.payload_bytes = 256;
    busy_mesh.send(bg, 0);
  }
  busy_mesh.send(probe, 0);
  for (int c = 0; c < 5000; ++c) busy_mesh.tick(now++);
  EXPECT_GT(busy_mesh.latencies().max(), idle_lat * 3);
}

TEST_F(MeshFixture, EngineIntegration) {
  Mesh mesh(cfg_);
  sim::Engine engine;
  engine.add(&mesh);
  int delivered = 0;
  mesh.set_delivery_handler(mesh.node_at(1, 1),
                            [&](const Packet&, Cycle) { ++delivered; });
  engine.at(5, [&](Cycle now) {
    Packet p;
    p.src = mesh.node_at(0, 0);
    p.dst = mesh.node_at(1, 1);
    p.payload_bytes = 16;
    mesh.send(p, now);
  });
  engine.run_until(100);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(engine.now(), 101u);
}

TEST(MeshConfigTest, NonSquareMeshWorks) {
  MeshConfig cfg;
  cfg.width = 3;
  cfg.height = 2;
  Mesh mesh(cfg);
  int got = 0;
  mesh.set_delivery_handler(mesh.node_at(2, 1),
                            [&](const Packet&, Cycle) { ++got; });
  Packet p;
  p.src = mesh.node_at(0, 0);
  p.dst = mesh.node_at(2, 1);
  p.payload_bytes = 8;
  mesh.send(p, 0);
  for (Cycle c = 0; c < 100; ++c) mesh.tick(c);
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace ioguard::noc
