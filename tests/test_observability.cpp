// Timing-accuracy observability (DESIGN.md §14): the HDR histogram, the
// per-operation jitter recorder, the deadline-miss flight recorder, and
// the cycle-attribution profiler.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/jitter.hpp"
#include "core/event_trace.hpp"
#include "sim/engine.hpp"
#include "system/checkpoint.hpp"
#include "system/runner.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/hdr_histogram.hpp"
#include "telemetry/metrics.hpp"

namespace ioguard {
namespace {

namespace fs = std::filesystem;

// ---- HDR log-linear histogram ----------------------------------------------

TEST(HdrHistogram, SmallValuesAreExact) {
  telemetry::HdrHistogram h;  // sub_bucket_bits=4: values < 16 are exact
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10 + 11 + 12 +
                         13 + 14 + 15);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  for (std::uint64_t v = 0; v < 16; ++v) {
    const std::size_t i = h.index_of(v);
    EXPECT_EQ(h.bucket_lower(i), v) << "value " << v;
    EXPECT_EQ(h.bucket_upper(i), v) << "value " << v;
    EXPECT_EQ(h.count_at(i), 1u) << "value " << v;
  }
}

TEST(HdrHistogram, EmptyHistogramReportsZeros) {
  telemetry::HdrHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.value_at_percentile(50.0), 0u);
  EXPECT_EQ(h.value_at_percentile(100.0), 0u);
}

TEST(HdrHistogram, BucketBoundsPartitionTheRange) {
  const telemetry::HdrHistogram h;
  // Buckets tile [0, max_trackable] with no gaps and no overlaps.
  EXPECT_EQ(h.bucket_lower(0), 0u);
  for (std::size_t i = 1; i < h.bucket_count(); ++i)
    EXPECT_EQ(h.bucket_lower(i), h.bucket_upper(i - 1) + 1) << "bucket " << i;
  // index_of is the inverse of the bounds at both edges of every bucket.
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    EXPECT_EQ(h.index_of(h.bucket_lower(i)), i);
    EXPECT_EQ(h.index_of(h.bucket_upper(i)), i);
  }
}

TEST(HdrHistogram, RelativeQuantizationErrorIsBounded) {
  // 2^4 sub-buckets: a value lands in [8w, 16w) for its bucket width w, so
  // the recorded-to-reported error is bounded by w <= v/8.
  telemetry::HdrHistogram h;
  for (std::uint64_t v : {17u, 100u, 999u, 12345u, 1000000u}) {
    const std::size_t i = h.index_of(v);
    const std::uint64_t reported = h.bucket_upper(i);
    ASSERT_GE(reported, v);
    EXPECT_LE(reported - v, v / 8 + 1) << "value " << v;
  }
}

TEST(HdrHistogram, SaturatesAboveMaxValue) {
  telemetry::HdrConfig cfg;
  cfg.max_value = 1000;
  telemetry::HdrHistogram h(cfg);
  h.record(999);
  h.record(50000);  // saturates
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.saturated(), 1u);
  // The clamp is what sum()/max() see, so merged replicas agree exactly.
  EXPECT_LE(h.max(), h.bucket_upper(h.bucket_count() - 1));
}

TEST(HdrHistogram, MergeIsOrderIndependent) {
  const std::vector<std::uint64_t> samples = {0,  3,   17,  250, 251, 4096,
                                              99, 100, 101, 7,   1 << 20};
  telemetry::HdrHistogram all;
  for (auto v : samples) all.record(v);

  // Split across three shards two different ways; merge in opposite orders.
  telemetry::HdrHistogram a, b, c;
  for (std::size_t i = 0; i < samples.size(); ++i)
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(samples[i]);
  telemetry::HdrHistogram forward;
  forward.merge(a);
  forward.merge(b);
  forward.merge(c);
  telemetry::HdrHistogram backward;
  backward.merge(c);
  backward.merge(b);
  backward.merge(a);

  for (const auto* m : {&forward, &backward}) {
    EXPECT_EQ(m->count(), all.count());
    EXPECT_EQ(m->sum(), all.sum());
    EXPECT_EQ(m->min(), all.min());
    EXPECT_EQ(m->max(), all.max());
    for (std::size_t i = 0; i < all.bucket_count(); ++i)
      EXPECT_EQ(m->count_at(i), all.count_at(i)) << "bucket " << i;
  }
}

TEST(HdrHistogram, QuantilesLandInTheRightBuckets) {
  telemetry::HdrHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);  // uniform 1..1000
  // Reported quantile is the upper bound of the owning bucket: never below
  // the true quantile, within the 1/8 relative error above it.
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const auto truth = static_cast<std::uint64_t>(p / 100.0 * 1000.0);
    const std::uint64_t got = h.value_at_percentile(p);
    EXPECT_GE(got, truth) << "p" << p;
    EXPECT_LE(got, truth + truth / 8 + 1) << "p" << p;
  }
  EXPECT_EQ(h.value_at_percentile(0.0), h.bucket_upper(h.index_of(1)));
  EXPECT_EQ(h.value_at_percentile(100.0), h.bucket_upper(h.index_of(1000)));
}

TEST(HdrHistogram, BoundsMatchLatencyHistogramBucketing) {
  // The Prometheus bridge hands bounds() to MetricsRegistry::histogram();
  // both sides must land every integer sample in the same bucket.
  telemetry::HdrHistogram hdr;
  telemetry::LatencyHistogram lat(hdr.bounds());
  const std::vector<std::uint64_t> samples = {0,   1,    15,  16,  17,
                                              255, 4095, 4096, 1u << 20};
  for (auto v : samples) {
    hdr.record(v);
    lat.observe(static_cast<double>(v));
  }
  ASSERT_EQ(lat.bounds().size(), hdr.bucket_count());
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < hdr.bucket_count(); ++i) {
    cumulative += hdr.count_at(i);
    EXPECT_EQ(lat.cumulative(i), cumulative) << "bucket " << i;
  }
  EXPECT_EQ(lat.count(), hdr.count());
}

// ---- jitter recorder -------------------------------------------------------

TEST(JitterRecorder, RoutesSamplesByChannelAndVm) {
  JitterRecorder rec(2);
  rec.record(JitterChannel::kPChannel, VmId{0}, TaskId{7}, 100, 100);
  rec.record(JitterChannel::kRChannel, VmId{1}, TaskId{9}, 100, 104);
  rec.record(JitterChannel::kRChannel, VmId{1}, TaskId{9}, 200, 212);
  rec.record(JitterChannel::kFifo, VmId{0}, TaskId{3}, 50, 55);

  EXPECT_EQ(rec.samples(JitterChannel::kPChannel, 0).count(), 1u);
  EXPECT_EQ(rec.samples(JitterChannel::kPChannel, 0).max(), 0.0);
  EXPECT_EQ(rec.samples(JitterChannel::kRChannel, 1).count(), 2u);
  EXPECT_EQ(rec.samples(JitterChannel::kRChannel, 1).max(), 12.0);
  EXPECT_EQ(rec.samples(JitterChannel::kRChannel, 0).count(), 0u);
  EXPECT_EQ(rec.samples(JitterChannel::kFifo, 0).max(), 5.0);

  const auto tasks = rec.by_task();
  ASSERT_EQ(tasks.size(), 3u);  // ascending by task id
  EXPECT_EQ(tasks[0].task, 3u);
  EXPECT_EQ(tasks[1].task, 7u);
  EXPECT_EQ(tasks[2].task, 9u);
  EXPECT_EQ(tasks[2].ops, 2u);
  EXPECT_EQ(tasks[2].worst_slots, 12u);
}

TEST(JitterRecorder, TranslatorSamplesGrowPerDevice) {
  JitterRecorder rec(1);
  rec.record_translator(DeviceId{2}, 17);
  rec.record_translator(DeviceId{0}, 3);
  const auto& t = rec.translator_by_device();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].count(), 1u);
  EXPECT_EQ(t[0].max(), 3.0);
  EXPECT_EQ(t[1].count(), 0u);
  EXPECT_EQ(t[2].max(), 17.0);
}

// ---- flight recorder -------------------------------------------------------

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("ioguard_flight_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static core::TraceEvent event(Slot slot, core::TraceEventKind kind,
                                std::uint32_t aux = 0) {
    core::TraceEvent e;
    e.slot = slot;
    e.kind = kind;
    e.device = DeviceId{1};
    e.vm = VmId{2};
    e.task = TaskId{30};
    e.job = JobId{4};
    e.aux = aux;
    return e;
  }

  fs::path dir_;
};

TEST_F(FlightTest, DumpRoundTripsThroughReader) {
  core::EventTrace trace(128);
  telemetry::FlightRecorderConfig cfg;
  cfg.dir = dir_.string();
  cfg.stem = "t3";
  cfg.last_n = 4;
  telemetry::FlightRecorder rec(cfg);
  rec.set_state_writer(
      [](std::ostream& os) { os << "state,device=1,backlog=5\n"; });
  trace.set_observer(&rec);

  for (Slot s = 0; s < 6; ++s)
    trace.record(event(s, core::TraceEventKind::kComplete));
  trace.record(event(6, core::TraceEventKind::kDeadlineMiss, /*aux=*/3));
  trace.set_observer(nullptr);

  ASSERT_EQ(rec.dumps_written(), 1u);
  ASSERT_TRUE(rec.status().ok()) << rec.status();
  const auto dump = telemetry::read_flight_dump(path("t3.flight1.txt"));
  ASSERT_TRUE(dump.ok()) << dump.status();
  EXPECT_EQ(dump->trigger, "deadline_miss");
  EXPECT_EQ(dump->slot, 6u);
  EXPECT_EQ(dump->seq, 1u);
  EXPECT_EQ(dump->stem, "t3");
  ASSERT_EQ(dump->events.size(), 4u);  // last_n, oldest first
  EXPECT_EQ(dump->events.front().slot, 3u);
  EXPECT_EQ(dump->events.back().slot, 6u);
  EXPECT_EQ(dump->events.back().kind, core::TraceEventKind::kDeadlineMiss);
  EXPECT_EQ(dump->events.back().aux, 3u);
  EXPECT_EQ(dump->events.back().vm.value, 2u);
  ASSERT_EQ(dump->state_lines.size(), 1u);
  EXPECT_EQ(dump->state_lines[0], "state,device=1,backlog=5");
}

TEST_F(FlightTest, MaxDumpsBoundsFilesPerTrial) {
  core::EventTrace trace(128);
  telemetry::FlightRecorderConfig cfg;
  cfg.dir = dir_.string();
  cfg.max_dumps = 2;
  telemetry::FlightRecorder rec(cfg);
  trace.set_observer(&rec);
  for (Slot s = 0; s < 10; ++s)
    trace.record(event(s, core::TraceEventKind::kDeadlineMiss));
  trace.set_observer(nullptr);

  EXPECT_EQ(rec.dumps_written(), 2u);
  EXPECT_EQ(rec.triggers_seen(), 10u);
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir_)) ++files;
  EXPECT_EQ(files, 2u);
}

TEST_F(FlightTest, NonTriggerEventsDoNotDump) {
  EXPECT_TRUE(telemetry::flight_trigger(core::TraceEventKind::kDeadlineMiss));
  EXPECT_TRUE(telemetry::flight_trigger(core::TraceEventKind::kWatchdogAbort));
  EXPECT_TRUE(telemetry::flight_trigger(core::TraceEventKind::kShed));
  EXPECT_FALSE(telemetry::flight_trigger(core::TraceEventKind::kComplete));
  EXPECT_FALSE(telemetry::flight_trigger(core::TraceEventKind::kSubmit));

  core::EventTrace trace(16);
  telemetry::FlightRecorderConfig cfg;
  cfg.dir = dir_.string();
  telemetry::FlightRecorder rec(cfg);
  trace.set_observer(&rec);
  trace.record(event(0, core::TraceEventKind::kComplete));
  trace.set_observer(nullptr);
  EXPECT_EQ(rec.dumps_written(), 0u);
}

TEST_F(FlightTest, ReaderRejectsTruncatedAndMalformedDumps) {
  core::EventTrace trace(16);
  telemetry::FlightRecorderConfig cfg;
  cfg.dir = dir_.string();
  telemetry::FlightRecorder rec(cfg);
  trace.set_observer(&rec);
  trace.record(event(0, core::TraceEventKind::kComplete));
  trace.record(event(1, core::TraceEventKind::kDeadlineMiss));
  trace.set_observer(nullptr);
  const std::string good = path("trial0.flight1.txt");
  ASSERT_TRUE(telemetry::read_flight_dump(good).ok());

  // Chop the file anywhere: the reader must refuse, never mis-parse.
  std::ifstream in(good, std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  for (std::size_t cut : {full.size() / 4, full.size() / 2, full.size() - 2}) {
    const std::string cut_path = path("cut.txt");
    // IOGUARD_LINT_ALLOW(LNT005: deliberately torn/garbage fixture file)
    std::ofstream(cut_path, std::ios::binary) << full.substr(0, cut);
    const auto result = telemetry::read_flight_dump(cut_path);
    ASSERT_FALSE(result.ok()) << "cut at " << cut;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(exit_code(result.status()), 2) << "cut at " << cut;
  }

  // IOGUARD_LINT_ALLOW(LNT005: deliberately torn/garbage fixture file)
  std::ofstream(path("bad.txt")) << "not a flight dump\n";
  EXPECT_EQ(telemetry::read_flight_dump(path("bad.txt")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(telemetry::read_flight_dump(path("absent.txt")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(FlightTest, TraceCsvRoundTripsAndRejectsGarbage) {
  core::EventTrace trace(16);
  trace.record(event(0, core::TraceEventKind::kSubmit));
  trace.record(event(5, core::TraceEventKind::kTranslate, /*aux=*/12));
  const std::string csv = path("trace.csv");
  {
    // IOGUARD_LINT_ALLOW(LNT005: deliberately torn/garbage fixture file)
    std::ofstream out(csv);
    trace.dump_csv(out);
  }
  const auto events = telemetry::read_trace_csv(csv);
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[1].kind, core::TraceEventKind::kTranslate);
  EXPECT_EQ((*events)[1].aux, 12u);

  // IOGUARD_LINT_ALLOW(LNT005: deliberately torn/garbage fixture file)
  std::ofstream(path("hdr.csv")) << "wrong,header\n1,2\n";
  EXPECT_EQ(telemetry::read_trace_csv(path("hdr.csv")).status().code(),
            StatusCode::kInvalidArgument);
  // IOGUARD_LINT_ALLOW(LNT005: deliberately torn/garbage fixture file)
  std::ofstream(path("row.csv"))
      << "slot,kind,device,vm,task,job,aux\n1,complete,0,0\n";
  EXPECT_EQ(telemetry::read_trace_csv(path("row.csv")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(telemetry::read_trace_csv(path("nope.csv")).status().code(),
            StatusCode::kNotFound);
}

// ---- trial-level integration -----------------------------------------------

sys::TrialConfig observed_trial(std::uint64_t seed, double util = 0.5) {
  sys::TrialConfig tc;
  tc.kind = sys::SystemKind::kIoGuard;
  tc.workload.num_vms = 4;
  tc.workload.target_utilization = util;
  tc.workload.preload_fraction = 0.5;
  tc.min_jobs_per_task = 10;
  tc.trial_seed = seed;
  tc.collect_jitter = true;
  tc.collect_profile = true;
  return tc;
}

TEST(ObservabilityTrial, UnloadedPchannelHasZeroJitter) {
  // ROTA-I/O invariant: the sigma* table prescribes P-channel completion
  // slots, so a fault-free run's P-channel deviation is identically zero.
  const auto result = sys::run_trial(observed_trial(7, /*util=*/0.4));
  ASSERT_TRUE(result.jitter.collected);
  std::uint64_t p_samples = 0;
  for (const auto& set : result.jitter.p_by_vm) {
    p_samples += set.count();
    EXPECT_EQ(set.max(), 0.0);
  }
  EXPECT_GT(p_samples, 0u);
  // The R-channel, by contrast, folds in queueing: some deviation exists.
  std::uint64_t r_samples = 0;
  for (const auto& set : result.jitter.r_by_vm) r_samples += set.count();
  EXPECT_GT(r_samples, 0u);
}

TEST(ObservabilityTrial, ProfilePartitionsTheHorizon) {
  const auto result = sys::run_trial(observed_trial(11));
  ASSERT_FALSE(result.profile.empty());
  for (const auto& c : result.profile) {
    EXPECT_EQ(c.total_slots(), result.horizon) << c.name;
    EXPECT_EQ(c.busy_slots + c.stall_slots + c.quiescent_slots,
              result.horizon)
        << c.name;
  }
  // The device managers are named and present exactly once each.
  std::size_t devices = 0;
  for (const auto& c : result.profile)
    if (c.name.rfind("device", 0) == 0) ++devices;
  EXPECT_EQ(devices, 4u);
}

TEST(ObservabilityTrial, ObservabilityOffLeavesResultEmpty) {
  auto tc = observed_trial(11);
  tc.collect_jitter = false;
  tc.collect_profile = false;
  const auto result = sys::run_trial(tc);
  EXPECT_FALSE(result.jitter.collected);
  EXPECT_TRUE(result.profile.empty());
  EXPECT_EQ(result.flight_dumps, 0u);
}

TEST_F(FlightTest, TrialWritesBoundedDumpsUnderFaultLoad) {
  auto tc = observed_trial(3, /*util=*/0.9);
  tc.workload.num_vms = 8;
  auto plan = faults::FaultPlan::parse("device-stall");
  ASSERT_TRUE(plan.ok());
  tc.faults = *plan;
  tc.flight_dir = dir_.string();
  tc.flight_stem = "trial0";
  tc.flight_max_dumps = 3;
  const auto result = sys::run_trial(tc);

  EXPECT_LE(result.flight_dumps, 3u);
  EXPECT_GT(result.flight_dumps, 0u);
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    ++files;
    const auto dump = telemetry::read_flight_dump(e.path().string());
    ASSERT_TRUE(dump.ok()) << e.path() << ": " << dump.status();
    EXPECT_EQ(dump->stem, "trial0");
  }
  EXPECT_EQ(files, result.flight_dumps);
}

TEST_F(FlightTest, CheckpointRoundTripsObservabilityFields) {
  auto tc = observed_trial(5, /*util=*/0.8);
  const auto original = sys::run_trial(tc);
  ASSERT_TRUE(original.jitter.collected);
  ASSERT_FALSE(original.profile.empty());

  sys::CheckpointMeta meta;
  meta.config_echo = "observability-roundtrip";
  meta.fingerprint = 99;
  const std::string ck = path("ck.bin");
  {
    auto journal = sys::CheckpointJournal::open(ck, meta, /*resume=*/false);
    ASSERT_TRUE(journal.ok()) << journal.status();
    ASSERT_TRUE((*journal)->append(1, 0, false, original, nullptr).ok());
  }
  auto journal = sys::CheckpointJournal::open(ck, meta, /*resume=*/true);
  ASSERT_TRUE(journal.ok()) << journal.status();
  const sys::CheckpointRecord* rec = (*journal)->find(1, 0);
  ASSERT_NE(rec, nullptr);
  const sys::TrialResult& restored = rec->result;

  ASSERT_TRUE(restored.jitter.collected);
  ASSERT_EQ(restored.jitter.p_by_vm.size(), original.jitter.p_by_vm.size());
  for (std::size_t v = 0; v < original.jitter.p_by_vm.size(); ++v) {
    EXPECT_EQ(restored.jitter.p_by_vm[v].samples(),
              original.jitter.p_by_vm[v].samples());
    EXPECT_EQ(restored.jitter.r_by_vm[v].samples(),
              original.jitter.r_by_vm[v].samples());
  }
  ASSERT_EQ(restored.jitter.translator_by_device.size(),
            original.jitter.translator_by_device.size());
  for (std::size_t d = 0; d < original.jitter.translator_by_device.size();
       ++d)
    EXPECT_EQ(restored.jitter.translator_by_device[d].samples(),
              original.jitter.translator_by_device[d].samples());
  ASSERT_EQ(restored.jitter.by_task.size(), original.jitter.by_task.size());
  for (std::size_t i = 0; i < original.jitter.by_task.size(); ++i) {
    EXPECT_EQ(restored.jitter.by_task[i].task, original.jitter.by_task[i].task);
    EXPECT_EQ(restored.jitter.by_task[i].ops, original.jitter.by_task[i].ops);
    EXPECT_EQ(restored.jitter.by_task[i].worst_slots,
              original.jitter.by_task[i].worst_slots);
  }
  ASSERT_EQ(restored.profile.size(), original.profile.size());
  for (std::size_t i = 0; i < original.profile.size(); ++i) {
    EXPECT_EQ(restored.profile[i].name, original.profile[i].name);
    EXPECT_EQ(restored.profile[i].busy_slots, original.profile[i].busy_slots);
    EXPECT_EQ(restored.profile[i].stall_slots,
              original.profile[i].stall_slots);
    EXPECT_EQ(restored.profile[i].quiescent_slots,
              original.profile[i].quiescent_slots);
  }
  EXPECT_EQ(restored.flight_dumps, original.flight_dumps);
}

// ---- engine cycle-attribution profiler -------------------------------------

class ToggleComponent : public sim::Tickable {
 public:
  explicit ToggleComponent(std::string name) : name_(std::move(name)) {}
  sim::Activity tick(Cycle now) override {
    activity_ = now % 3 == 0   ? sim::Activity::kBusy
                : now % 3 == 1 ? sim::Activity::kStall
                               : sim::Activity::kQuiescent;
    return activity_;
  }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] sim::Activity activity() const override { return activity_; }

 private:
  std::string name_;
  sim::Activity activity_ = sim::Activity::kQuiescent;
};

TEST(EngineProfiler, CountsPartitionProfiledCycles) {
  sim::Engine engine;
  ToggleComponent toggling("toggling");
  engine.add(&toggling);
  engine.enable_profiling();
  engine.run_until(299);  // cycles 0..299

  const auto profile = engine.profile();
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_EQ(profile[0].name, "toggling");
  EXPECT_EQ(profile[0].total_cycles(), 300u);
  EXPECT_EQ(profile[0].busy_cycles, 100u);
  EXPECT_EQ(profile[0].stall_cycles, 100u);
  EXPECT_EQ(profile[0].quiescent_cycles, 100u);
}

TEST(EngineProfiler, OffByDefaultAndCountsOnlyWhileEnabled) {
  sim::Engine engine;
  ToggleComponent c("c");
  engine.add(&c);
  engine.run_until(99);
  EXPECT_FALSE(engine.profiling());
  auto profile = engine.profile();
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_EQ(profile[0].total_cycles(), 0u);

  engine.enable_profiling();
  engine.run_until(149);  // cycles 100..149
  profile = engine.profile();
  EXPECT_EQ(profile[0].total_cycles(), 50u);
}

}  // namespace
}  // namespace ioguard
