// Unit + property tests for the CAN bus substrate: frame timing, the Davis
// et al. response-time analysis, and analysis-vs-simulation soundness.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "iodev/can_bus.hpp"

namespace ioguard::iodev {
namespace {

CanMessage msg(std::uint32_t id, std::uint8_t dlc, std::uint64_t period_us,
               std::uint64_t deadline_us = 0) {
  CanMessage m;
  m.id = id;
  m.dlc = dlc;
  m.period_us = period_us;
  m.deadline_us = deadline_us ? deadline_us : period_us;
  m.name = "m" + std::to_string(id);
  return m;
}

TEST(CanFrame, BitCounts) {
  // 8-byte standard frame, worst-case stuffing:
  // 34 + 64 + 13 + floor(97/4) = 111 + 24 = 135 bits.
  EXPECT_EQ(can_frame_bits(8, true), 135u);
  EXPECT_EQ(can_frame_bits(8, false), 111u);
  // 0-byte frame: 34 + 0 + 13 + floor(33/4) = 47 + 8 = 55.
  EXPECT_EQ(can_frame_bits(0, true), 55u);
}

TEST(CanFrame, TimeAtOneMbit) {
  CanBusConfig bus;  // 1 Mbit/s
  EXPECT_DOUBLE_EQ(can_frame_us(bus, 8), 135.0);
  bus.bitrate_bps = 500'000;
  EXPECT_DOUBLE_EQ(can_frame_us(bus, 8), 270.0);
}

TEST(CanRtaTest, HighestPriorityOnlySuffersBlocking) {
  CanBusConfig bus;
  const std::vector<CanMessage> set = {
      msg(0x10, 8, 10'000),
      msg(0x20, 8, 10'000),
      msg(0x30, 8, 10'000),
  };
  const auto rta = can_response_times(bus, set);
  ASSERT_EQ(rta.size(), 3u);
  // Highest priority: blocked by one lower-priority frame, then transmits.
  EXPECT_DOUBLE_EQ(rta[0].blocking_us, 135.0);
  EXPECT_DOUBLE_EQ(rta[0].response_us, 135.0 + 135.0);
  EXPECT_TRUE(rta[0].schedulable);
  // Lowest priority: no blocking but interference from both higher.
  EXPECT_DOUBLE_EQ(rta[2].blocking_us, 0.0);
  EXPECT_GT(rta[2].response_us, rta[0].response_us);
}

TEST(CanRtaTest, OverloadDetected) {
  CanBusConfig bus;
  // Three 8-byte frames every 300 us: utilization 1.35 > 1.
  const std::vector<CanMessage> set = {
      msg(1, 8, 300), msg(2, 8, 300), msg(3, 8, 300)};
  EXPECT_GT(can_utilization(bus, set), 1.0);
  const auto rta = can_response_times(bus, set);
  EXPECT_FALSE(rta[2].schedulable);
}

TEST(CanSim, PeriodicSendAndBusUtilization) {
  CanBusConfig bus;
  CanBusSim sim(bus, {msg(1, 8, 1000)});
  const auto r = sim.run(100'000);
  EXPECT_EQ(r.frames_sent[0], 100u);
  EXPECT_EQ(r.deadline_misses, 0u);
  EXPECT_NEAR(r.bus_busy_frac, 0.135, 0.01);
}

TEST(CanSim, ArbitrationFavorsLowerId) {
  CanBusConfig bus;
  // Both released together every period; the lower id always wins the bus.
  CanBusSim sim(bus, {msg(0x100, 8, 1000), msg(0x050, 8, 1000)});
  const auto r = sim.run(100'000);
  // Index 1 has the lower id: its worst response is one frame (no queueing
  // beyond its own transmission, since it always wins arbitration at idle
  // or waits at most one in-flight frame).
  EXPECT_LE(r.worst_response_us[1], 2 * 135.0 + 1e-9);
  EXPECT_GE(r.worst_response_us[0], r.worst_response_us[1]);
}

TEST(CanSim, NonPreemptiveBlockingVisible) {
  CanBusConfig bus;
  // A low-priority hog with a long frame; co-prime periods make the urgent
  // message eventually arrive while the hog's frame is in flight.
  CanBusSim sim(bus, {msg(0x700, 8, 490, 490), msg(0x001, 1, 500, 500)});
  const auto r = sim.run(500'000);
  // The urgent message gets blocked by an 8-byte frame at least once.
  EXPECT_GT(r.worst_response_us[1], can_frame_us(bus, 1) + 1.0);
  EXPECT_LE(r.worst_response_us[1],
            can_frame_us(bus, 1) + can_frame_us(bus, 8));
}

class CanAnalysisProperty : public ::testing::TestWithParam<int> {};

TEST_P(CanAnalysisProperty, AnalysisBoundsSimulation) {
  Rng rng(800 + GetParam());
  CanBusConfig bus;
  std::vector<CanMessage> set;
  const std::size_t n = 2 + rng.index(6);
  for (std::size_t i = 0; i < n; ++i) {
    CanMessage m;
    m.id = static_cast<std::uint32_t>(i * 16 + rng.uniform_int(0, 15));
    m.dlc = static_cast<std::uint8_t>(rng.uniform_int(1, 8));
    m.period_us = 1000 * rng.uniform_int(2, 20);
    m.deadline_us = m.period_us;
    m.name = "p" + std::to_string(i);
    set.push_back(m);
  }
  // Unique, strictly ordered ids.
  for (std::size_t i = 1; i < set.size(); ++i)
    if (set[i].id <= set[i - 1].id) set[i].id = set[i - 1].id + 1;

  if (can_utilization(bus, set) > 0.95) GTEST_SKIP();
  const auto rta = can_response_times(bus, set);
  CanBusSim sim(bus, set);
  const auto r = sim.run(2'000'000);

  for (std::size_t i = 0; i < set.size(); ++i) {
    if (!rta[i].schedulable) continue;
    EXPECT_LE(r.worst_response_us[i], rta[i].response_us + 1e-6)
        << set[i].name << ": simulation exceeded the analytic bound";
  }
  EXPECT_EQ(r.deadline_misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomSets, CanAnalysisProperty,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace ioguard::iodev
