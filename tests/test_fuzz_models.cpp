// Fuzz/property tests against independent reference models:
//  * HwPriorityQueue vs a std::multiset oracle under random operations,
//  * mesh flit conservation under random traffic,
//  * G-Sched budget guarantee over random server sets,
//  * P-channel conformance to its Time Slot Table,
//  * energy and decision-cost model sanity.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "core/gsched.hpp"
#include "core/pchannel.hpp"
#include "core/priority_queue.hpp"
#include "hwmodel/decision_cost.hpp"
#include "hwmodel/energy.hpp"
#include "noc/mesh.hpp"
#include "sched/slot_table.hpp"

namespace ioguard {
namespace {

// ------------------------------------------- priority queue vs multiset

class PqFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PqFuzz, MatchesMultisetOracle) {
  Rng rng(4000 + GetParam());
  core::HwPriorityQueue q(16);
  // Oracle: (deadline, release, job id) -> handle.
  using Key = std::tuple<Slot, Slot, std::uint32_t>;
  std::map<Key, core::EntryHandle> oracle;
  std::uint32_t next_id = 0;

  for (int step = 0; step < 3000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.5 && !q.full()) {
      workload::Job j;
      j.id = JobId{next_id++};
      j.task = TaskId{j.id.value};
      j.vm = VmId{0};
      j.device = DeviceId{0};
      j.release = rng.uniform_int(0, 100);
      j.absolute_deadline = j.release + rng.uniform_int(1, 1000);
      j.wcet = 1 + rng.uniform_int(0, 5);
      const auto h = q.insert(j);
      ASSERT_TRUE(h.has_value());
      oracle.emplace(Key{j.absolute_deadline, j.release, j.id.value}, *h);
    } else if (!oracle.empty()) {
      // The queue's earliest must match the oracle's first key.
      const auto earliest = q.peek_earliest();
      ASSERT_TRUE(earliest.has_value());
      EXPECT_EQ(*earliest, oracle.begin()->second);
      if (rng.bernoulli(0.7)) {
        q.remove(*earliest);
        oracle.erase(oracle.begin());
      } else {
        // Random-access deadline update on a random live entry.
        auto it = oracle.begin();
        std::advance(it, static_cast<long>(rng.index(oracle.size())));
        const auto handle = it->second;
        const auto params = q.params(handle);
        Key new_key{params.release + rng.uniform_int(1, 1000), params.release,
                    params.job.value};
        q.set_deadline(handle, std::get<0>(new_key));
        oracle.erase(it);
        oracle.emplace(new_key, handle);
      }
    }
    ASSERT_EQ(q.size(), oracle.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Streams, PqFuzz, ::testing::Range(0, 10));

// ---------------------------------------------------- mesh conservation

class MeshFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MeshFuzz, EveryInjectedPacketDeliveredExactlyOnce) {
  Rng rng(6000 + GetParam());
  noc::MeshConfig cfg;
  cfg.width = 2 + static_cast<int>(rng.index(4));
  cfg.height = 2 + static_cast<int>(rng.index(4));
  cfg.fifo_depth = 2 + rng.index(8);
  cfg.arbitration = rng.bernoulli(0.5) ? noc::Arbitration::kRoundRobin
                                       : noc::Arbitration::kPriority;
  noc::Mesh mesh(cfg);

  std::map<std::uint64_t, int> seen;
  for (std::uint32_t n = 0; n < mesh.node_count(); ++n)
    mesh.set_delivery_handler(NodeId{n}, [&](const noc::Packet& p, Cycle) {
      ++seen[p.tag];
    });

  std::uint64_t tag = 0;
  Cycle now = 0;
  const int packets = 100;
  std::map<std::uint64_t, std::uint32_t> expected_dst;
  for (int i = 0; i < packets; ++i) {
    noc::Packet p;
    p.src = NodeId{static_cast<std::uint32_t>(rng.index(mesh.node_count()))};
    p.dst = NodeId{static_cast<std::uint32_t>(rng.index(mesh.node_count()))};
    p.priority = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
    p.payload_bytes = static_cast<std::uint32_t>(rng.uniform_int(0, 300));
    p.tag = ++tag;
    expected_dst[p.tag] = p.dst.value;
    mesh.send(p, now);
    for (Cycle c = 0; c < rng.uniform_int(0, 30); ++c) mesh.tick(now++);
  }
  for (int c = 0; c < 100000 && !mesh.idle(); ++c) mesh.tick(now++);

  ASSERT_TRUE(mesh.idle());
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(packets));
  for (const auto& [t, count] : seen) EXPECT_EQ(count, 1) << "tag " << t;
}

INSTANTIATE_TEST_SUITE_P(Streams, MeshFuzz, ::testing::Range(0, 10));

// -------------------------------------------------- G-Sched budget law

class GschedProperty : public ::testing::TestWithParam<int> {};

TEST_P(GschedProperty, BudgetedGrantsReachThetaPerPeriodWhenBacklogged) {
  Rng rng(7000 + GetParam());
  const std::size_t n = 1 + rng.index(5);
  std::vector<sched::ServerParams> servers;
  Slot total_theta = 0, common_pi = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Slot pi = 10;  // common period isolates the per-period guarantee
    const Slot theta = 1 + rng.uniform_int(0, 1);
    servers.push_back({pi, theta});
    total_theta += theta;
    common_pi = pi;
  }
  if (total_theta > common_pi) GTEST_SKIP() << "over-committed";

  core::GSched g(servers);
  std::vector<core::ShadowRegister> shadows(n);
  for (std::size_t i = 0; i < n; ++i) {
    shadows[i].valid = true;  // permanently backlogged
    shadows[i].absolute_deadline = 1000 + i;
  }
  const Slot periods = 50;
  for (Slot t = 0; t < periods * common_pi; ++t) (void)g.pick(t, shadows);

  for (std::size_t i = 0; i < n; ++i) {
    const Slot budgeted = g.granted(i) - g.slack_granted(i);
    EXPECT_GE(budgeted, (periods - 1) * servers[i].theta)
        << "VM " << i << " Theta=" << servers[i].theta;
  }
}

INSTANTIATE_TEST_SUITE_P(Streams, GschedProperty, ::testing::Range(0, 20));

// ------------------------------------------------ P-channel conformance

TEST(PchannelConformance, ExecutesExactlyTheTableSlots) {
  workload::TaskSet ts;
  workload::IoTaskSpec a;
  a.id = TaskId{0};
  a.vm = VmId{0};
  a.device = DeviceId{0};
  a.name = "a";
  a.kind = workload::TaskKind::kPredefined;
  a.period = 20;
  a.wcet = 4;
  a.deadline = 20;
  a.payload_bytes = 8;
  ts.add(a);
  workload::IoTaskSpec b = a;
  b.id = TaskId{1};
  b.name = "b";
  b.period = 40;
  b.wcet = 10;
  b.deadline = 40;
  ts.add(b);

  const auto build = sched::build_time_slot_table(ts);
  ASSERT_TRUE(build.feasible);
  core::PChannel pch(ts, build.table);

  const Slot horizon = 10 * build.table.hyperperiod();
  Slot executed = 0;
  for (Slot s = 0; s < horizon; ++s) {
    bool used = false;
    const auto done = pch.execute_slot(s, used);
    const bool reserved = !build.table.is_free_abs(s);
    EXPECT_EQ(used || done.has_value(), reserved) << "slot " << s;
    if (used || done) ++executed;
  }
  // Every reserved slot was consumed (no startup transient for offset 0).
  const Slot reserved_per_h =
      build.table.hyperperiod() - build.table.free_slots();
  EXPECT_EQ(executed, 10 * reserved_per_h);
  EXPECT_EQ(pch.wasted_slots(), 0u);
}

// ----------------------------------------------- energy / decision cost

TEST(Energy, SystemOrderingOnCpuSide) {
  const hw::EnergyModel model;
  const std::uint32_t bytes = 256;
  const double legacy = model.op_energy_nj(hw::legacy_path_work(bytes, 8));
  const double rtxen = model.op_energy_nj(hw::rtxen_path_work(bytes, 8));
  const double bv = model.op_energy_nj(hw::bluevisor_path_work(bytes, 8));
  const double iog = model.op_energy_nj(hw::ioguard_path_work(bytes, 8));
  EXPECT_GT(rtxen, legacy);
  EXPECT_GT(legacy, bv);
  EXPECT_GT(bv, iog);
}

TEST(Energy, RtxenGrowsWithVmCount) {
  const hw::EnergyModel model;
  EXPECT_GT(model.op_energy_nj(hw::rtxen_path_work(64, 16)),
            model.op_energy_nj(hw::rtxen_path_work(64, 2)));
  // Hardware systems do not.
  EXPECT_DOUBLE_EQ(model.op_energy_nj(hw::ioguard_path_work(64, 16)),
                   model.op_energy_nj(hw::ioguard_path_work(64, 2)));
}

TEST(DecisionCost, TreeDepthAndCycles) {
  hw::DecisionCostConfig c;
  c.num_vms = 16;
  c.pool_depth = 4;
  EXPECT_EQ(hw::scheduler_tree_depth(c), 2u + 4u);
  EXPECT_GE(hw::scheduler_decision_cycles(c), 1u);
}

TEST(DecisionCost, FitsSlotForEveryEvaluatedConfiguration) {
  for (std::uint32_t vms : {1u, 4u, 16u, 64u, 256u}) {
    for (std::uint32_t depth : {2u, 4u, 16u, 64u}) {
      hw::DecisionCostConfig c;
      c.num_vms = vms;
      c.pool_depth = depth;
      EXPECT_TRUE(hw::decision_fits_slot(c))
          << vms << " VMs, pool depth " << depth;
    }
  }
}

TEST(DecisionCost, MonotoneInScale) {
  hw::DecisionCostConfig small{4, 4, 2, 4};
  hw::DecisionCostConfig big{1024, 64, 2, 4};
  EXPECT_LE(hw::scheduler_decision_cycles(small),
            hw::scheduler_decision_cycles(big));
}

}  // namespace
}  // namespace ioguard
