// Unit tests for the hardware cost model: Table I anchors and Fig. 8 trends.
#include <gtest/gtest.h>

#include "hwmodel/catalog.hpp"
#include "hwmodel/hypervisor_model.hpp"
#include "hwmodel/scaling.hpp"

namespace ioguard::hw {
namespace {

TEST(Catalog, TableIReferenceRowsVerbatim) {
  const auto& mb = reference(ReferenceIp::kMicroBlazeFull).resources;
  EXPECT_EQ(mb.luts, 4908u);
  EXPECT_EQ(mb.registers, 4385u);
  EXPECT_EQ(mb.dsp, 6u);
  EXPECT_EQ(mb.ram_kb, 256u);
  EXPECT_DOUBLE_EQ(mb.power_mw, 359.0);

  const auto& rv = reference(ReferenceIp::kRiscVOoo).resources;
  EXPECT_EQ(rv.luts, 7432u);
  EXPECT_EQ(rv.registers, 16321u);

  const auto& bv = reference(ReferenceIp::kBlueIo).resources;
  EXPECT_EQ(bv.luts, 3236u);
  EXPECT_DOUBLE_EQ(bv.power_mw, 297.0);
}

TEST(HypervisorModel, ProposedRowMatchesTableI) {
  // 16 VMs, 2 I/Os: the paper's configuration for Table I.
  const auto r = hypervisor_core_resources({16, 2, 4});
  EXPECT_NEAR(r.luts, 2777.0, 2777 * 0.01);
  EXPECT_NEAR(r.registers, 2974.0, 2974 * 0.01);
  EXPECT_EQ(r.dsp, 0u);
  EXPECT_EQ(r.ram_kb, 256u);
  EXPECT_NEAR(r.power_mw, 279.0, 279 * 0.02);
}

TEST(HypervisorModel, Observation2ResourceComparisons) {
  // Obs 2: less hardware than full-featured processors, more than plain I/O
  // controllers, and less LUTs/registers than BlueVisor at equal memory.
  const auto prop = hypervisor_core_resources({16, 2, 4});
  const auto& mb = reference(ReferenceIp::kMicroBlazeFull).resources;
  const auto& rv = reference(ReferenceIp::kRiscVOoo).resources;
  const auto& spi = reference(ReferenceIp::kSpiController).resources;
  const auto& eth = reference(ReferenceIp::kEthernetController).resources;
  const auto& bv = reference(ReferenceIp::kBlueIo).resources;

  EXPECT_LT(prop.luts, mb.luts);
  EXPECT_LT(prop.registers, mb.registers);
  EXPECT_LT(prop.power_mw, mb.power_mw);
  EXPECT_LT(prop.luts, rv.luts);
  EXPECT_GT(prop.luts, spi.luts);
  EXPECT_GT(prop.luts, eth.luts);
  EXPECT_LT(prop.luts, bv.luts);
  EXPECT_LT(prop.registers, bv.registers);
  EXPECT_EQ(prop.ram_kb, bv.ram_kb);

  // Paper's ratios: 56.6% of MicroBlaze LUTs, 67.8% of its registers.
  EXPECT_NEAR(static_cast<double>(prop.luts) / mb.luts, 0.566, 0.02);
  EXPECT_NEAR(static_cast<double>(prop.registers) / mb.registers, 0.678, 0.02);
}

TEST(HypervisorModel, ScalesLinearlyInVmsAndIos) {
  const auto r8 = hypervisor_core_resources({8, 2, 4});
  const auto r16 = hypervisor_core_resources({16, 2, 4});
  const auto r32 = hypervisor_core_resources({32, 2, 4});
  const auto d1 = r16.luts - r8.luts;
  const auto d2 = r32.luts - r16.luts;
  EXPECT_NEAR(static_cast<double>(d2) / d1, 2.0, 0.05);  // doubling VM step

  const auto one_io = hypervisor_core_resources({16, 1, 4});
  EXPECT_NEAR(static_cast<double>(r16.luts) / one_io.luts, 2.0, 0.01);
}

TEST(HypervisorModel, PoolDepthGrowsQueueCost) {
  const auto shallow = hypervisor_core_resources({16, 2, 4});
  const auto deep = hypervisor_core_resources({16, 2, 16});
  EXPECT_GT(deep.luts, shallow.luts);
  EXPECT_GT(deep.registers, shallow.registers);
}

TEST(Fmax, HypervisorAboveLegacyAndAbovePlatformClock) {
  // Obs 6: the hypervisor never becomes the critical path.
  for (std::uint32_t eta = 0; eta <= 5; ++eta) {
    const std::uint32_t vms = 1u << eta;
    const double hyp = hypervisor_fmax_mhz({vms, 2, 4});
    const double legacy = legacy_router_fmax_mhz(vms);
    EXPECT_GT(hyp, legacy) << "eta=" << eta;
    EXPECT_GT(hyp, 100.0) << "must sustain the 100 MHz platform clock";
    EXPECT_GT(legacy, 100.0);
  }
}

TEST(Fmax, DecreasesWithScale) {
  EXPECT_GT(hypervisor_fmax_mhz({2, 2, 4}), hypervisor_fmax_mhz({32, 2, 4}));
}

TEST(Scaling, AreaOverheadBoundedBy20Percent) {
  // Obs 5: I/O-GUARD area exceeds legacy by a margin always below 20%.
  for (const auto& p : scaling_sweep(5)) {
    EXPECT_GT(p.ioguard.luts, p.legacy.luts);
    const double margin =
        static_cast<double>(p.ioguard.luts - p.legacy.luts) / p.legacy.luts;
    EXPECT_LT(margin, 0.20) << "eta=" << p.eta;
    EXPECT_GT(p.ioguard_area_norm, p.legacy_area_norm);
  }
}

TEST(Scaling, AreaAndPowerIncreaseMonotonically) {
  const auto sweep = scaling_sweep(5);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].legacy.luts, sweep[i - 1].legacy.luts);
    EXPECT_GT(sweep[i].ioguard.luts, sweep[i - 1].ioguard.luts);
    EXPECT_GT(sweep[i].legacy.power_mw, sweep[i - 1].legacy.power_mw);
    EXPECT_GT(sweep[i].ioguard.power_mw, sweep[i - 1].ioguard.power_mw);
  }
}

TEST(Scaling, HypervisorDeltaScalesLinearlyInVms) {
  // The hypervisor delta (I/O-GUARD minus legacy) doubles with eta once the
  // per-VM terms dominate.
  const auto sweep = scaling_sweep(5);
  const auto delta = [&](std::size_t i) {
    return static_cast<double>(sweep[i].ioguard.luts - sweep[i].legacy.luts);
  };
  EXPECT_NEAR(delta(5) / delta(4), 2.0, 0.25);
}

TEST(Scaling, PowerFollowsAreaModel) {
  const PowerModel pm;
  for (const auto& p : scaling_sweep(4)) {
    EXPECT_NEAR(p.ioguard.power_mw, pm.power(p.ioguard), 1e-9);
    EXPECT_GT(p.ioguard.power_mw, p.legacy.power_mw);
  }
}

}  // namespace
}  // namespace ioguard::hw
