// Deterministic fault injection + resilience (DESIGN.md §11).
//
// The contract under test, in increasing order of strength:
//   1. FaultPlan round-trips through its spec string and rejects malformed
//      or out-of-range specs with the right Status codes.
//   2. A FaultInjector replays bit-identically for the same (plan, trial
//      seed), and zero-rate kinds never fire or draw.
//   3. An *empty* plan is byte-identical to the fault-free baseline --
//      TrialResult fields and exported Prometheus text -- because the
//      runner never constructs an injector. A *zero-rate* plan constructs
//      one and must still not perturb the simulation (private streams).
//   4. A non-empty plan replays bit-identically at any --jobs value.
//   5. Resilience honors its bounds: the watchdog aborts within its slot
//      budget, retries never exceed max_retries, and degradation never
//      touches the P-channel's reserved sigma* slots.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/verify_resilience.hpp"
#include "common/rng.hpp"
#include "core/event_trace.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "system/experiment.hpp"
#include "system/parallel.hpp"
#include "telemetry/prometheus.hpp"

namespace ioguard {
namespace {

using sys::ParallelRunner;
using sys::SystemKind;
using sys::TrialConfig;
using sys::TrialResult;

TrialConfig small_trial(std::size_t t, SystemKind kind,
                        const faults::FaultPlan& plan = {}) {
  TrialConfig tc;
  tc.kind = kind;
  tc.workload.num_vms = 4;
  tc.workload.target_utilization = 0.8;
  tc.workload.preload_fraction = kind == SystemKind::kIoGuard ? 0.5 : 0.0;
  tc.min_jobs_per_task = 8;
  tc.trial_seed = mix_seed(42, sys::sweep_point_key(4, 0.8), t);
  tc.faults = plan;
  return tc;
}

faults::FaultPlan plan_of(const std::string& spec) {
  auto plan = faults::FaultPlan::parse(spec);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return std::move(plan).value();
}

void expect_identical(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.jobs_counted, b.jobs_counted);
  EXPECT_EQ(a.jobs_on_time, b.jobs_on_time);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.critical_misses, b.critical_misses);
  EXPECT_EQ(a.dropped, b.dropped);
  // Bitwise, not EXPECT_DOUBLE_EQ: same trial, same arithmetic.
  EXPECT_EQ(a.goodput_bytes_per_s, b.goodput_bytes_per_s);
  EXPECT_EQ(a.device_busy_frac, b.device_busy_frac);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.misses_by_task, b.misses_by_task);
  EXPECT_EQ(a.faults.injected_total, b.faults.injected_total);
  EXPECT_EQ(a.faults.watchdog_aborts, b.faults.watchdog_aborts);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.retries_exhausted, b.faults.retries_exhausted);
  EXPECT_EQ(a.faults.max_retry_attempt, b.faults.max_retry_attempt);
  EXPECT_EQ(a.faults.jobs_shed, b.faults.jobs_shed);
  EXPECT_EQ(a.faults.degraded_vms, b.faults.degraded_vms);
  EXPECT_EQ(a.faults.frame_faults, b.faults.frame_faults);
  EXPECT_EQ(a.faults.stalled_slots, b.faults.stalled_slots);
  EXPECT_EQ(a.faults.spurious_irq_slots, b.faults.spurious_irq_slots);
  EXPECT_EQ(a.faults.transit_drops, b.faults.transit_drops);
  EXPECT_EQ(a.faults.fifo_frames_lost, b.faults.fifo_frames_lost);
  EXPECT_EQ(a.faults.fifo_stalled_slots, b.faults.fifo_stalled_slots);
}

// --- FaultPlan parsing --------------------------------------------------

TEST(FaultPlan, CannedPlansRoundTripThroughSpecStrings) {
  for (const auto& name : faults::FaultPlan::canned_plan_names()) {
    SCOPED_TRACE(name);
    auto canned = faults::FaultPlan::canned(name);
    ASSERT_TRUE(canned.ok()) << canned.status();
    // parse() accepts both the canned name and the canonical spec string,
    // and both land on the same plan value.
    auto by_name = faults::FaultPlan::parse(name);
    ASSERT_TRUE(by_name.ok()) << by_name.status();
    EXPECT_EQ(*by_name, *canned);
    auto by_spec = faults::FaultPlan::parse(canned->spec_string());
    ASSERT_TRUE(by_spec.ok()) << by_spec.status();
    EXPECT_EQ(*by_spec, *canned);
  }
  EXPECT_TRUE(plan_of("none").empty());
  EXPECT_EQ(plan_of("none").spec_string(), "none");
}

TEST(FaultPlan, ParsesSpecStringsWithSeedRatesAndParams) {
  const auto plan = plan_of("seed=7;stall:rate=0.002,param=12;flit:rate=0.001");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.rate(faults::FaultKind::kDeviceStall), 0.002);
  EXPECT_EQ(plan.param(faults::FaultKind::kDeviceStall), 12u);
  EXPECT_EQ(plan.rate(faults::FaultKind::kLinkFlitLoss), 0.001);
  // Unset param falls back to the kind default; unlisted kinds have rate 0.
  EXPECT_EQ(plan.param(faults::FaultKind::kLinkFlitLoss),
            faults::default_param(faults::FaultKind::kLinkFlitLoss));
  EXPECT_EQ(plan.rate(faults::FaultKind::kSpuriousInterrupt), 0.0);
}

TEST(FaultPlan, RejectsMalformedSpecsWithTypedStatusCodes) {
  EXPECT_EQ(faults::FaultPlan::parse("bogus").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(faults::FaultPlan::parse("stall:rate=1.5").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(faults::FaultPlan::parse("stall:rate=nope").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      faults::FaultPlan::parse("stall:rate=0.1;stall:rate=0.2").status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(faults::FaultPlan::parse("warp:rate=0.1").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultPlan, DiagnosticsNameTheOffendingSegment) {
  // Every rejection names the 1-based segment and echoes its text, so a
  // typo deep in a scripted fault matrix is located without bisection.
  const auto unknown =
      faults::FaultPlan::parse("stall:rate=0.1;warp:rate=0.1").status();
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.message().find("segment 2"), std::string::npos)
      << unknown.message();
  EXPECT_NE(unknown.message().find("warp:rate=0.1"), std::string::npos);
  EXPECT_NE(unknown.message().find("unknown fault kind"), std::string::npos);

  const auto bad_rate =
      faults::FaultPlan::parse("seed=3;drop:rate=0.1;stall:rate=9").status();
  EXPECT_EQ(bad_rate.code(), StatusCode::kOutOfRange)
      << "segment wrapping must preserve the typed code";
  EXPECT_NE(bad_rate.message().find("segment 3"), std::string::npos)
      << bad_rate.message();
}

TEST(FaultPlan, EmptySegmentsAreRejectedButATrailingSemicolonIsNot) {
  const auto doubled =
      faults::FaultPlan::parse("stall:rate=0.1;;drop:rate=0.1").status();
  EXPECT_EQ(doubled.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(doubled.message().find("segment 2"), std::string::npos)
      << doubled.message();
  EXPECT_NE(doubled.message().find("empty segment"), std::string::npos);

  // A single trailing ';' is a shell-quoting artifact, not an error.
  auto trailing = faults::FaultPlan::parse("stall:rate=0.1;");
  ASSERT_TRUE(trailing.ok()) << trailing.status();
  EXPECT_EQ(trailing->events.size(), 1u);
}

TEST(FaultPlan, ZeroRateSegmentParsesButContributesNoEvent) {
  auto plan = faults::FaultPlan::parse("stall:rate=0;drop:rate=0.1");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->events.size(), 1u);
  EXPECT_EQ(plan->rate(faults::FaultKind::kDeviceStall), 0.0);
  EXPECT_EQ(plan->rate(faults::FaultKind::kDroppedFrame), 0.1);
}

// --- FaultInjector determinism ------------------------------------------

TEST(FaultInjector, ReplaysBitIdenticallyForSamePlanAndSeed) {
  const auto plan = plan_of("mixed");
  faults::FaultInjector a(plan, /*trial_seed=*/99);
  faults::FaultInjector b(plan, /*trial_seed=*/99);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t site = static_cast<std::size_t>(i) % 3;
    EXPECT_EQ(a.device_stall_begins(site), b.device_stall_begins(site));
    EXPECT_EQ(a.drop_frame(site), b.drop_frame(site));
    EXPECT_EQ(a.drop_packet(site), b.drop_packet(site));
    EXPECT_EQ(a.translator_overrun(site), b.translator_overrun(site));
    EXPECT_EQ(a.spurious_interrupt(site), b.spurious_interrupt(site));
  }
  EXPECT_EQ(a.total_injected(), b.total_injected());
  for (auto kind : faults::all_fault_kinds())
    EXPECT_EQ(a.injected(kind), b.injected(kind));
}

TEST(FaultInjector, ZeroRateKindsNeverFire) {
  const auto plan = plan_of("stall:rate=0.5,param=4");
  faults::FaultInjector inj(plan, /*trial_seed=*/7);
  std::uint64_t stalls = 0;
  for (int i = 0; i < 1000; ++i) {
    stalls += inj.device_stall_begins(0) > 0 ? 1 : 0;
    EXPECT_FALSE(inj.drop_frame(0));
    EXPECT_FALSE(inj.corrupt_frame(0));
    EXPECT_FALSE(inj.drop_packet(0));
    EXPECT_EQ(inj.translator_overrun(0), 0u);
    EXPECT_FALSE(inj.spurious_interrupt(0));
  }
  EXPECT_GT(stalls, 0u);
  EXPECT_EQ(inj.injected(faults::FaultKind::kDeviceStall), stalls);
  EXPECT_EQ(inj.total_injected(), stalls);
}

// --- byte-identity of the fault-free path -------------------------------

TEST(FaultTrials, EmptyPlanIsBitIdenticalToBaseline) {
  for (SystemKind kind : {SystemKind::kLegacy, SystemKind::kIoGuard}) {
    const TrialResult base = sys::run_trial(small_trial(0, kind));
    const TrialResult none =
        sys::run_trial(small_trial(0, kind, plan_of("none")));
    expect_identical(base, none);
    EXPECT_EQ(none.faults.injected_total, 0u);
  }
}

TEST(FaultTrials, ZeroRatePlanDoesNotPerturbTheSimulation) {
  // Non-empty plan, all rates zero: the injector is constructed and queried
  // at every opportunity, but its draws come from private streams, so the
  // simulated outcome must match the no-injector baseline exactly.
  const auto plan = plan_of("stall:rate=0;drop:rate=0;flit:rate=0");
  for (SystemKind kind : {SystemKind::kLegacy, SystemKind::kIoGuard}) {
    const TrialResult base = sys::run_trial(small_trial(0, kind));
    const TrialResult zero = sys::run_trial(small_trial(0, kind, plan));
    expect_identical(base, zero);
  }
}

TEST(FaultTrials, EmptyPlanPrometheusBytesIdenticalToBaseline) {
  const auto run = [](const faults::FaultPlan& plan) {
    ParallelRunner runner(1);
    telemetry::MetricsRegistry metrics;
    runner.run_trials(
        3,
        [&](std::size_t t) {
          return small_trial(t, SystemKind::kIoGuard, plan);
        },
        &metrics);
    std::ostringstream os;
    telemetry::write_prometheus(os, metrics);
    return os.str();
  };
  const std::string base = run({});
  const std::string none = run(plan_of("none"));
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(base, none);
  EXPECT_EQ(base.find("ioguard_fault"), std::string::npos);
  EXPECT_EQ(base.find("ioguard_resilience"), std::string::npos);
}

// --- deterministic replay under load ------------------------------------

TEST(FaultTrials, FaultedTrialsIdenticalAcrossJobCounts) {
  const auto plan = plan_of("mixed");
  ParallelRunner seq(1), par(4);
  const std::size_t trials = 6;
  const auto make = [&](std::size_t t) {
    return small_trial(t, SystemKind::kIoGuard, plan);
  };
  telemetry::MetricsRegistry ma, mb;
  const auto a = seq.run_trials(trials, make, &ma);
  const auto b = par.run_trials(trials, make, &mb);
  ASSERT_EQ(a.size(), trials);
  ASSERT_EQ(b.size(), trials);
  std::uint64_t injected = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    SCOPED_TRACE("trial " + std::to_string(t));
    expect_identical(a[t], b[t]);
    injected += a[t].faults.injected_total;
  }
  EXPECT_GT(injected, 0u) << "mixed plan injected nothing; test is vacuous";
  std::ostringstream pa, pb;
  telemetry::write_prometheus(pa, ma);
  telemetry::write_prometheus(pb, mb);
  EXPECT_EQ(pa.str(), pb.str());
  EXPECT_NE(pa.str().find("ioguard_faults_injected_total"), std::string::npos);
}

// --- resilience bounds --------------------------------------------------

TEST(Resilience, WatchdogAbortsWithinItsSlotBudget) {
  core::EventTrace trace;
  auto tc = small_trial(0, SystemKind::kIoGuard, plan_of("device-stall"));
  tc.trace = &trace;
  const TrialResult r = sys::run_trial(tc);
  EXPECT_GT(r.faults.stalled_slots, 0u);
  ASSERT_GT(r.faults.watchdog_aborts, 0u);
  std::size_t aborts_seen = 0;
  for (const auto& e : trace.events()) {
    if (e.kind != core::TraceEventKind::kWatchdogAbort) continue;
    ++aborts_seen;
    // aux = slots the op was watched before the abort; the watchdog must
    // fire the moment the budget is reached, never later.
    EXPECT_LE(e.aux, tc.resilience.watchdog_timeout_slots);
  }
  EXPECT_GT(aborts_seen, 0u);
}

TEST(Resilience, RetriesNeverExceedTheConfiguredBudget) {
  for (std::uint32_t budget : {1u, 2u, 3u}) {
    auto tc = small_trial(0, SystemKind::kIoGuard, plan_of("device-stall"));
    tc.resilience.max_retries = budget;
    core::EventTrace trace;
    tc.trace = &trace;
    const TrialResult r = sys::run_trial(tc);
    EXPECT_LE(r.faults.max_retry_attempt, budget);
    for (const auto& e : trace.events()) {
      if (e.kind == core::TraceEventKind::kRetry) {
        EXPECT_LE(e.aux, budget);
      }
    }
  }
}

TEST(Resilience, DegradationNeverTouchesPchannelSlots) {
  // sigma* execution is reserved-slot hardware: the same seed must execute
  // the same number of P-channel slots whether the R-channel is being
  // shredded by faults or not.
  core::EventTrace clean_trace, faulted_trace;
  auto clean = small_trial(0, SystemKind::kIoGuard);
  clean.trace = &clean_trace;
  auto faulted = small_trial(
      0, SystemKind::kIoGuard,
      plan_of("stall:rate=0.01,param=12;drop:rate=0.05;irq:rate=0.01"));
  faulted.resilience.degradation_threshold = 4;  // force sheds
  faulted.trace = &faulted_trace;
  const TrialResult rc = sys::run_trial(clean);
  const TrialResult rf = sys::run_trial(faulted);
  EXPECT_GT(rf.faults.injected_total, 0u);
  EXPECT_EQ(clean_trace.count(core::TraceEventKind::kPchannelSlot),
            faulted_trace.count(core::TraceEventKind::kPchannelSlot));
  // Fault kinds never appear in a clean trace.
  for (auto kind : core::all_trace_event_kinds()) {
    if (core::is_fault_kind(kind)) {
      EXPECT_EQ(clean_trace.count(kind), 0u) << core::to_string(kind);
    }
  }
  (void)rc;
}

// --- validated construction + static verification -----------------------

TEST(ValidatedConfigs, TrialConfigRangeChecks) {
  EXPECT_TRUE(TrialConfig::validated(small_trial(0, SystemKind::kIoGuard)).ok());

  auto bad_vms = small_trial(0, SystemKind::kIoGuard);
  bad_vms.workload.num_vms = 0;
  EXPECT_EQ(TrialConfig::validated(bad_vms).status().code(),
            StatusCode::kInvalidArgument);

  auto bad_util = small_trial(0, SystemKind::kIoGuard);
  bad_util.workload.target_utilization = 3.0;
  EXPECT_EQ(TrialConfig::validated(bad_util).status().code(),
            StatusCode::kOutOfRange);

  auto bad_watchdog = small_trial(0, SystemKind::kIoGuard);
  bad_watchdog.resilience.watchdog_timeout_slots = 0;
  EXPECT_FALSE(TrialConfig::validated(bad_watchdog).ok());

  auto bad_retries = small_trial(0, SystemKind::kIoGuard);
  bad_retries.resilience.max_retries = 17;
  EXPECT_EQ(TrialConfig::validated(bad_retries).status().code(),
            StatusCode::kOutOfRange);
}

TEST(VerifyResilience, FlagsBrokenPlansAndPolicies) {
  // RES001: rates outside [0, 1] cannot come from parse(); build by hand.
  faults::FaultPlan bad_rate;
  bad_rate.events.push_back({faults::FaultKind::kDroppedFrame, 1.5, 0});
  analysis::Report r1;
  analysis::verify_resilience(bad_rate, {}, r1);
  EXPECT_TRUE(r1.has(analysis::DiagCode::kResRateOutOfRange));
  EXPECT_FALSE(r1.ok());

  faults::ResilienceConfig no_watchdog;
  no_watchdog.watchdog_timeout_slots = 0;
  analysis::Report r2;
  analysis::verify_resilience(plan_of("device-stall"), no_watchdog, r2);
  EXPECT_TRUE(r2.has(analysis::DiagCode::kResWatchdogZero));
  EXPECT_FALSE(r2.ok());

  faults::ResilienceConfig silly_budget;
  silly_budget.max_retries = 20;
  analysis::Report r3;
  analysis::verify_resilience(plan_of("device-stall"), silly_budget, r3);
  EXPECT_TRUE(r3.has(analysis::DiagCode::kResRetryBudgetExcessive));

  faults::ResilienceConfig overflow;
  overflow.max_retries = 8;
  overflow.retry_backoff_base_slots = Slot{1} << 60;
  analysis::Report r4;
  analysis::verify_resilience(plan_of("device-stall"), overflow, r4);
  EXPECT_TRUE(r4.has(analysis::DiagCode::kResBackoffOverflow));

  // RES005/RES006 are warnings: findings, but the report stays ok().
  faults::ResilienceConfig slow_watchdog;
  slow_watchdog.watchdog_timeout_slots = 1000;
  analysis::Report r5;
  analysis::verify_resilience(plan_of("stall:rate=0.01,param=4"),
                              slow_watchdog, r5);
  EXPECT_TRUE(r5.has(analysis::DiagCode::kResWatchdogIneffective));
  EXPECT_TRUE(r5.ok());

  faults::ResilienceConfig no_degradation;
  no_degradation.degradation_enabled = false;
  analysis::Report r6;
  analysis::verify_resilience(plan_of("drop:rate=0.04;irq:rate=0.04"),
                              no_degradation, r6);
  EXPECT_TRUE(r6.has(analysis::DiagCode::kResDegradationDisabled));
  EXPECT_TRUE(r6.ok());

  // A clean canned plan with the default policy verifies silently.
  analysis::Report r7;
  analysis::verify_resilience(plan_of("mixed"), {}, r7);
  EXPECT_TRUE(r7.ok());
}

}  // namespace
}  // namespace ioguard
