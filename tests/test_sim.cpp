// Unit tests for the cycle-driven simulation engine and logging.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "sim/engine.hpp"

namespace ioguard::sim {
namespace {

/// Records the cycles at which it was ticked.
class Recorder : public Tickable {
 public:
  void tick(Cycle now) override { ticks.push_back(now); }
  [[nodiscard]] std::string name() const override { return "recorder"; }
  std::vector<Cycle> ticks;
};

TEST(Engine, TicksEveryCycleInclusive) {
  Engine engine;
  Recorder r;
  engine.add(&r);
  engine.run_until(4);
  ASSERT_EQ(r.ticks.size(), 5u);  // cycles 0..4 inclusive
  for (Cycle c = 0; c <= 4; ++c) EXPECT_EQ(r.ticks[c], c);
  EXPECT_EQ(engine.now(), 5u);
}

TEST(Engine, RunForContinuesFromNow) {
  Engine engine;
  Recorder r;
  engine.add(&r);
  engine.run_until(2);           // ticks 0..2, now == 3
  engine.run_for(3);             // run_until(6): ticks 3..6
  EXPECT_EQ(engine.now(), 7u);
  EXPECT_EQ(r.ticks.size(), 7u);
}

TEST(Engine, EventsFireBeforeComponentTicks) {
  Engine engine;
  Recorder r;
  engine.add(&r);
  std::vector<Cycle> fired;
  engine.at(3, [&](Cycle now) {
    fired.push_back(now);
    EXPECT_EQ(r.ticks.size(), 3u);  // cycles 0..2 ticked, not yet 3
  });
  engine.run_until(5);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3u);
}

TEST(Engine, SameCycleEventsFifoOrder) {
  Engine engine;
  std::vector<int> order;
  engine.at(2, [&](Cycle) { order.push_back(1); });
  engine.at(2, [&](Cycle) { order.push_back(2); });
  engine.at(1, [&](Cycle) { order.push_back(0); });
  engine.run_until(3);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(Engine, EventsMayScheduleFurtherEvents) {
  Engine engine;
  std::vector<Cycle> fired;
  engine.at(1, [&](Cycle now) {
    fired.push_back(now);
    engine.at(now + 2, [&](Cycle later) { fired.push_back(later); });
  });
  engine.run_until(10);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], 3u);
}

TEST(Engine, EveryRepeats) {
  Engine engine;
  std::vector<Cycle> fired;
  engine.every(2, 3, [&](Cycle now) { fired.push_back(now); });
  engine.run_until(11);
  // Fires at 2, 5, 8, 11.
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[3], 11u);
}

TEST(Engine, StopEndsRunEarly) {
  Engine engine;
  Recorder r;
  engine.add(&r);
  engine.at(3, [&](Cycle) { engine.stop(); });
  engine.run_until(1000);
  EXPECT_EQ(r.ticks.size(), 4u);  // 0..3, then stop takes effect
  // A later run resumes from where it stopped.
  engine.run_until(5);
  EXPECT_GE(r.ticks.size(), 6u);
}

TEST(Engine, RejectsPastEvents) {
  Engine engine;
  engine.run_until(5);
  EXPECT_THROW(engine.at(2, [](Cycle) {}), CheckFailure);
}

TEST(Engine, ComponentCount) {
  Engine engine;
  Recorder a, b;
  engine.add(&a);
  engine.add(&b);
  EXPECT_EQ(engine.component_count(), 2u);
  EXPECT_THROW(engine.add(nullptr), CheckFailure);
}

TEST(Log, ThresholdFiltering) {
  const LogLevel saved = log_threshold();
  set_log_threshold(LogLevel::kWarn);
  EXPECT_EQ(log_threshold(), LogLevel::kWarn);
  // Compile-and-run smoke: macros expand and filter without crashing.
  LOG_DEBUG("invisible " << 1);
  LOG_WARN("visible " << 2);
  set_log_threshold(LogLevel::kOff);
  LOG_ERROR("also filtered " << 3);
  set_log_threshold(saved);
}

}  // namespace
}  // namespace ioguard::sim
