// Unit tests for the cycle-driven simulation engine and logging.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "sim/engine.hpp"

namespace ioguard::sim {
namespace {

/// Records the cycles at which it was ticked.
class Recorder : public Tickable {
 public:
  Activity tick(Cycle now) override {
    ticks.push_back(now);
    return Activity::kBusy;
  }
  [[nodiscard]] std::string name() const override { return "recorder"; }
  std::vector<Cycle> ticks;
};

TEST(Engine, TicksEveryCycleInclusive) {
  Engine engine;
  Recorder r;
  engine.add(&r);
  engine.run_until(4);
  ASSERT_EQ(r.ticks.size(), 5u);  // cycles 0..4 inclusive
  for (Cycle c = 0; c <= 4; ++c) EXPECT_EQ(r.ticks[c], c);
  EXPECT_EQ(engine.now(), 5u);
}

TEST(Engine, RunForContinuesFromNow) {
  Engine engine;
  Recorder r;
  engine.add(&r);
  engine.run_until(2);           // ticks 0..2, now == 3
  engine.run_for(3);             // run_until(6): ticks 3..6
  EXPECT_EQ(engine.now(), 7u);
  EXPECT_EQ(r.ticks.size(), 7u);
}

TEST(Engine, EventsFireBeforeComponentTicks) {
  Engine engine;
  Recorder r;
  engine.add(&r);
  std::vector<Cycle> fired;
  engine.at(3, [&](Cycle now) {
    fired.push_back(now);
    EXPECT_EQ(r.ticks.size(), 3u);  // cycles 0..2 ticked, not yet 3
  });
  engine.run_until(5);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3u);
}

TEST(Engine, SameCycleEventsFifoOrder) {
  Engine engine;
  std::vector<int> order;
  engine.at(2, [&](Cycle) { order.push_back(1); });
  engine.at(2, [&](Cycle) { order.push_back(2); });
  engine.at(1, [&](Cycle) { order.push_back(0); });
  engine.run_until(3);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(Engine, EventsMayScheduleFurtherEvents) {
  Engine engine;
  std::vector<Cycle> fired;
  engine.at(1, [&](Cycle now) {
    fired.push_back(now);
    engine.at(now + 2, [&](Cycle later) { fired.push_back(later); });
  });
  engine.run_until(10);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], 3u);
}

TEST(Engine, EveryRepeats) {
  Engine engine;
  std::vector<Cycle> fired;
  engine.every(2, 3, [&](Cycle now) { fired.push_back(now); });
  engine.run_until(11);
  // Fires at 2, 5, 8, 11.
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[3], 11u);
}

TEST(Engine, StopEndsRunEarly) {
  Engine engine;
  Recorder r;
  engine.add(&r);
  engine.at(3, [&](Cycle) { engine.stop(); });
  engine.run_until(1000);
  EXPECT_EQ(r.ticks.size(), 4u);  // 0..3, then stop takes effect
  // A later run resumes from where it stopped.
  engine.run_until(5);
  EXPECT_GE(r.ticks.size(), 6u);
}

TEST(Engine, RejectsPastEvents) {
  Engine engine;
  engine.run_until(5);
  EXPECT_THROW(engine.at(2, [](Cycle) {}), CheckFailure);
}

TEST(Engine, ComponentCount) {
  Engine engine;
  Recorder a, b;
  engine.add(&a);
  engine.add(&b);
  EXPECT_EQ(engine.component_count(), 2u);
  EXPECT_THROW(engine.add(nullptr), CheckFailure);
}

/// Busy on the first `busy` cycles of every `period`, quiescent otherwise.
/// With `hinted` set it reports the next burst start so the engine can park
/// it between bursts; without, it is the identical dense component.
class Pulser : public Tickable {
 public:
  Pulser(Cycle busy, Cycle period, bool hinted)
      : busy_(busy), period_(period), hinted_(hinted) {}

  Activity tick(Cycle now) override {
    ticks.push_back(now);
    if (now % period_ < busy_) {
      ++work;
      return Activity::kBusy;
    }
    return Activity::kQuiescent;
  }
  [[nodiscard]] std::string name() const override { return "pulser"; }
  [[nodiscard]] bool provides_wake_hints() const override { return hinted_; }
  [[nodiscard]] Cycle next_event(Cycle now) const override {
    const Cycle pos = now % period_;
    return pos < busy_ ? now + 1 : now + (period_ - pos);
  }

  std::vector<Cycle> ticks;
  std::uint64_t work = 0;

 private:
  Cycle busy_;
  Cycle period_;
  bool hinted_;
};

TEST(EngineCalendar, HintedComponentDoesSameWorkWithFewerTicks) {
  Engine dense_engine, cal_engine;
  Pulser dense(3, 10, false), cal(3, 10, true);
  dense_engine.add(&dense);
  cal_engine.add(&cal);
  dense_engine.run_until(99);
  cal_engine.run_until(99);
  EXPECT_EQ(dense_engine.now(), cal_engine.now());
  EXPECT_EQ(dense.work, cal.work);          // identical useful work...
  EXPECT_EQ(dense.ticks.size(), 100u);
  EXPECT_LT(cal.ticks.size(), 50u);         // ...with the gaps jumped
  // Every busy cycle was actually ticked: parking never skips work.
  std::size_t i = 0;
  for (Cycle c = 0; c < 100; ++c) {
    if (c % 10 < 3) {
      while (i < cal.ticks.size() && cal.ticks[i] < c) ++i;
      ASSERT_LT(i, cal.ticks.size());  // extra edge ticks are allowed,
      EXPECT_EQ(cal.ticks[i], c);      // missing busy cycles are not
    }
  }
}

TEST(EngineCalendar, ParkedCountAndMidRunState) {
  Engine engine;
  Pulser p(1, 100, true);
  engine.add(&p);
  engine.run_until(10);  // busy at 0, parked until 100
  EXPECT_EQ(engine.parked_count(), 1u);
  EXPECT_EQ(engine.component_count(), 1u);
  engine.run_until(100);
  EXPECT_EQ(p.work, 2u);  // cycles 0 and 100
}

TEST(EngineCalendar, AtDuringJumpFiresAtExactCycle) {
  Engine engine;
  Pulser p(1, 1000, true);
  engine.add(&p);
  std::vector<Cycle> fired;
  engine.at(500, [&](Cycle now) { fired.push_back(now); });
  engine.run_until(999);
  // The event interrupted the 1..999 quiescent jump at exactly cycle 500.
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 500u);
}

TEST(EngineCalendar, SameCycleEventsKeepFifoOrderAcrossJump) {
  Engine engine;
  Pulser p(1, 1000, true);  // parked across the event cycle
  engine.add(&p);
  std::vector<int> order;
  engine.at(700, [&](Cycle) { order.push_back(1); });
  engine.at(700, [&](Cycle) { order.push_back(2); });
  engine.at(300, [&](Cycle) { order.push_back(0); });
  engine.run_until(999);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(EngineCalendar, StopMidJumpHaltsAtTheEventCycle) {
  Engine engine;
  Pulser p(1, 1000, true);
  engine.add(&p);
  engine.at(400, [&](Cycle) { engine.stop(); });
  engine.run_until(999);
  EXPECT_EQ(engine.now(), 401u);  // stopped right after the jumped-to cycle
  engine.run_until(999);          // and resumes cleanly
  EXPECT_EQ(engine.now(), 1000u);
}

TEST(EngineCalendar, EveryFiresIdenticallyHintedAndDense) {
  Engine dense_engine, cal_engine;
  Pulser dense(2, 50, false), cal(2, 50, true);
  dense_engine.add(&dense);
  cal_engine.add(&cal);
  std::vector<Cycle> dense_fired, cal_fired;
  dense_engine.every(3, 7, [&](Cycle now) { dense_fired.push_back(now); });
  cal_engine.every(3, 7, [&](Cycle now) { cal_fired.push_back(now); });
  dense_engine.run_until(499);
  cal_engine.run_until(499);
  EXPECT_EQ(dense_fired, cal_fired);  // periodic events ignore parking
  EXPECT_EQ(dense.work, cal.work);
}

TEST(EngineCalendar, ParkedCyclesAttributedQuiescent) {
  Engine dense_engine, cal_engine;
  Pulser dense(5, 40, false), cal(5, 40, true);
  dense_engine.add(&dense);
  cal_engine.add(&cal);
  dense_engine.enable_profiling();
  cal_engine.enable_profiling();
  dense_engine.run_until(399);
  cal_engine.run_until(399);
  const auto dp = dense_engine.profile();
  const auto cp = cal_engine.profile();
  ASSERT_EQ(dp.size(), 1u);
  ASSERT_EQ(cp.size(), 1u);
  // Bit-identical attribution: parked stretches count as quiescent, so the
  // three counters partition the 400 profiled cycles in both engines.
  EXPECT_EQ(dp[0].busy_cycles, cp[0].busy_cycles);
  EXPECT_EQ(dp[0].stall_cycles, cp[0].stall_cycles);
  EXPECT_EQ(dp[0].quiescent_cycles, cp[0].quiescent_cycles);
  EXPECT_EQ(cp[0].total_cycles(), 400u);
}

TEST(EngineCalendar, WakeReArmsParkedComponent) {
  Engine engine;
  Pulser p(1, 1000, true);
  engine.add(&p);
  engine.run_until(10);
  ASSERT_EQ(engine.parked_count(), 1u);
  engine.wake(&p);  // external stimulus before the hinted cycle
  EXPECT_EQ(engine.parked_count(), 0u);
  const std::size_t before = p.ticks.size();
  engine.run_until(11);
  // Ticking early is safe by the next_event contract; the component just
  // reports quiescent and re-parks.
  EXPECT_GT(p.ticks.size(), before);
  EXPECT_EQ(engine.parked_count(), 1u);
}

TEST(Log, ThresholdFiltering) {
  const LogLevel saved = log_threshold();
  set_log_threshold(LogLevel::kWarn);
  EXPECT_EQ(log_threshold(), LogLevel::kWarn);
  // Compile-and-run smoke: macros expand and filter without crashing.
  LOG_DEBUG("invisible " << 1);
  LOG_WARN("visible " << 2);
  set_log_threshold(LogLevel::kOff);
  LOG_ERROR("also filtered " << 3);
  set_log_threshold(saved);
}

}  // namespace
}  // namespace ioguard::sim
