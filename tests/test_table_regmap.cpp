// Tests for the Time Slot Table quality metrics, the placement-policy knob,
// and the hypervisor's MMIO register map.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/pchannel.hpp"
#include "core/regmap.hpp"
#include "sched/table_metrics.hpp"
#include "workload/generator.hpp"

namespace ioguard {
namespace {

using sched::SlotPlacement;
using sched::TimeSlotTable;

workload::IoTaskSpec predefined(std::uint32_t id, Slot t, Slot c,
                                Slot offset = 0) {
  workload::IoTaskSpec s;
  s.id = TaskId{id};
  s.vm = VmId{0};
  s.device = DeviceId{0};
  s.name = "p" + std::to_string(id);
  s.kind = workload::TaskKind::kPredefined;
  s.period = t;
  s.wcet = c;
  s.deadline = t;
  s.offset = offset;
  s.payload_bytes = 16;
  return s;
}

// ------------------------------------------------------------- table metrics

TEST(TableMetrics, HandBuiltTable) {
  // H = 8: slots 0,1 busy; 4 busy; rest free (circularly: busy runs {0,1},
  // {4}; free runs {2,3}, {5,6,7}).
  TimeSlotTable t(8);
  t.reserve(0, TaskId{1});
  t.reserve(1, TaskId{1});
  t.reserve(4, TaskId{1});
  const auto m = sched::analyze_table(t);
  EXPECT_EQ(m.hyperperiod, 8u);
  EXPECT_EQ(m.free_slots, 5u);
  EXPECT_EQ(m.longest_busy_run, 2u);
  EXPECT_EQ(m.longest_free_gap, 3u);
  EXPECT_EQ(m.busy_runs, 2u);
  // Worst window of length 3 (slots 0,1 busy + one more) still has a free
  // slot? Window [7,0,1] has one free (7). Window [0,1,2]: one free. So
  // sbf(3) >= 1, but sbf(2) = 0 because [0,1] is all busy.
  EXPECT_EQ(m.first_supply_at, 3u);
}

TEST(TableMetrics, CircularBusyRunDetected) {
  // Busy run wrapping the boundary: slots 6,7,0 reserved.
  TimeSlotTable t(8);
  t.reserve(6, TaskId{1});
  t.reserve(7, TaskId{1});
  t.reserve(0, TaskId{1});
  const auto m = sched::analyze_table(t);
  EXPECT_EQ(m.longest_busy_run, 3u);
  EXPECT_EQ(m.busy_runs, 1u);
}

TEST(TableMetrics, AllFreeAndAllBusyEdges) {
  TimeSlotTable free_table(6);
  const auto mf = sched::analyze_table(free_table);
  EXPECT_EQ(mf.longest_busy_run, 0u);
  EXPECT_EQ(mf.longest_free_gap, 6u);
  EXPECT_EQ(mf.first_supply_at, 1u);
  EXPECT_DOUBLE_EQ(mf.bandwidth, 1.0);
}

TEST(TableMetrics, SpreadPlacementBeatsEdfPackOnEveryAxis) {
  // The design choice DESIGN.md calls out: same pre-defined demand, two
  // placements -- spread leaves shorter busy runs and more admissible
  // R-channel bandwidth.
  workload::TaskSet ts;
  ts.add(predefined(0, 100, 20));
  ts.add(predefined(1, 200, 30));
  ts.add(predefined(2, 400, 60));

  const auto spread =
      sched::build_time_slot_table(ts, Slot{1} << 24, SlotPlacement::kSpread);
  const auto packed =
      sched::build_time_slot_table(ts, Slot{1} << 24, SlotPlacement::kEdfPack);
  ASSERT_TRUE(spread.feasible);
  ASSERT_TRUE(packed.feasible);

  const auto ms = sched::analyze_table(spread.table);
  const auto mp = sched::analyze_table(packed.table);
  EXPECT_EQ(ms.free_slots, mp.free_slots) << "same demand => same F";
  EXPECT_LT(ms.longest_busy_run, mp.longest_busy_run);
  EXPECT_LT(ms.first_supply_at, mp.first_supply_at);
  EXPECT_GT(ms.supply_efficiency_100, mp.supply_efficiency_100);

  const double bw_spread = sched::admissible_bandwidth(spread.table);
  const double bw_packed = sched::admissible_bandwidth(packed.table);
  EXPECT_GT(bw_spread, bw_packed);
}

TEST(TableMetrics, AdmissibleBandwidthBelowFreeBandwidth) {
  workload::TaskSet ts;
  ts.add(predefined(0, 50, 15));
  const auto build = sched::build_time_slot_table(ts);
  ASSERT_TRUE(build.feasible);
  const auto m = sched::analyze_table(build.table);
  const double admissible = sched::admissible_bandwidth(build.table);
  EXPECT_GT(admissible, 0.0);
  EXPECT_LE(admissible, m.bandwidth + 1e-9);
}

// ----------------------------------------------------------------- regmap

TEST(RegMap, ResetStateAndReadOnlyRegisters) {
  core::RegisterFile regs;
  EXPECT_EQ(regs.read(core::reg::kId), core::reg::kMagic);
  regs.write(core::reg::kId, 0xdeadbeef);      // ignored: RO
  regs.write(core::reg::kStatus, 0xffffffff);  // ignored: RO
  EXPECT_EQ(regs.read(core::reg::kId), core::reg::kMagic);
  EXPECT_EQ(regs.read(core::reg::kStatus), 0u);
  EXPECT_EQ(regs.read(0x7777), 0u);  // unmapped reads as zero
  EXPECT_FALSE(regs.enabled());
  regs.write(core::reg::kCtrl, core::reg::kCtrlEnable);
  EXPECT_TRUE(regs.enabled());
}

TEST(RegMap, ProgramDecodeRoundTrip) {
  workload::TaskSet ts;
  ts.add(predefined(3, 100, 10, 5));
  ts.add(predefined(7, 200, 20));
  const auto build = sched::build_time_slot_table(ts);
  ASSERT_TRUE(build.feasible);
  const std::vector<sched::ServerParams> servers = {{20, 5}, {50, 10}};

  core::RegisterFile regs;
  core::program_registers(regs, ts, build.table, servers);
  regs.write(core::reg::kCtrl, core::reg::kCtrlEnable);
  const auto decoded = core::decode_registers(regs);

  ASSERT_TRUE(decoded.valid) << decoded.error;
  EXPECT_TRUE(regs.read(core::reg::kStatus) & core::reg::kStatusRunning);
  ASSERT_EQ(decoded.servers.size(), 2u);
  EXPECT_EQ(decoded.servers[0].pi, 20u);
  EXPECT_EQ(decoded.servers[1].theta, 10u);
  ASSERT_EQ(decoded.predefined.size(), 2u);
  EXPECT_EQ(decoded.predefined.by_id(TaskId{3}).offset, 5u);
  EXPECT_EQ(decoded.predefined.by_id(TaskId{7}).wcet, 20u);
  ASSERT_EQ(decoded.table.hyperperiod(), build.table.hyperperiod());
  for (Slot s = 0; s < build.table.hyperperiod(); ++s)
    EXPECT_EQ(decoded.table.occupant(s), build.table.occupant(s)) << s;
}

TEST(RegMap, MalformedConfigsFlagStatusError) {
  // Zero-period task.
  {
    core::RegisterFile regs;
    regs.write(core::reg::kNumVms, 1);
    regs.write(core::reg::kServerBase, 10);
    regs.write(core::reg::kServerBase + 1, 2);
    regs.write(core::reg::kNumTasks, 1);
    regs.write(core::reg::kTableLen, 4);
    // TASK[0] left zeroed => period == 0.
    const auto decoded = core::decode_registers(regs);
    EXPECT_FALSE(decoded.valid);
    EXPECT_TRUE(regs.read(core::reg::kStatus) &
                core::reg::kStatusConfigError);
  }
  // Server with Theta > Pi.
  {
    core::RegisterFile regs;
    regs.write(core::reg::kNumVms, 1);
    regs.write(core::reg::kServerBase, 4);
    regs.write(core::reg::kServerBase + 1, 9);
    regs.write(core::reg::kTableLen, 4);
    const auto decoded = core::decode_registers(regs);
    EXPECT_FALSE(decoded.valid);
    EXPECT_NE(decoded.error.find("SERVER"), std::string::npos);
  }
  // Table slot referencing an unloaded task.
  {
    core::RegisterFile regs;
    regs.write(core::reg::kNumVms, 1);
    regs.write(core::reg::kServerBase, 10);
    regs.write(core::reg::kServerBase + 1, 2);
    regs.write(core::reg::kNumTasks, 0);
    regs.write(core::reg::kTableLen, 2);
    regs.write(core::reg::kTableBase, 42);  // unknown task id
    const auto decoded = core::decode_registers(regs);
    EXPECT_FALSE(decoded.valid);
    EXPECT_NE(decoded.error.find("TABLE"), std::string::npos);
  }
}

TEST(RegMap, DecodedTableDrivesPchannelIdentically) {
  // End-to-end: firmware programs registers, hardware decodes, and the
  // decoded configuration runs the P-channel exactly like the original.
  workload::TaskSet ts;
  ts.add(predefined(0, 10, 3));
  const auto build = sched::build_time_slot_table(ts);
  ASSERT_TRUE(build.feasible);

  core::RegisterFile regs;
  core::program_registers(regs, ts, build.table, {{10, 2}});
  const auto decoded = core::decode_registers(regs);
  ASSERT_TRUE(decoded.valid) << decoded.error;

  core::PChannel original(ts, build.table);
  core::PChannel restored(decoded.predefined, decoded.table);
  for (Slot s = 0; s < 100; ++s) {
    bool u1 = false, u2 = false;
    const auto c1 = original.execute_slot(s, u1);
    const auto c2 = restored.execute_slot(s, u2);
    EXPECT_EQ(u1, u2) << "slot " << s;
    EXPECT_EQ(c1.has_value(), c2.has_value()) << "slot " << s;
  }
  EXPECT_EQ(original.jobs_completed(), restored.jobs_completed());
}

}  // namespace
}  // namespace ioguard
