// Unit tests for src/workload: task sets, automotive DB, UUniFast,
// case-study builder, arrival traces.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/check.hpp"
#include "workload/arrivals.hpp"
#include "workload/automotive.hpp"
#include "workload/generator.hpp"
#include "workload/task.hpp"

namespace ioguard::workload {
namespace {

IoTaskSpec make_task(std::uint32_t id, Slot t, Slot c, Slot d,
                     std::uint32_t vm = 0, std::uint32_t dev = 0) {
  IoTaskSpec s;
  s.id = TaskId{id};
  s.vm = VmId{vm};
  s.device = DeviceId{dev};
  s.name = "t" + std::to_string(id);
  s.period = t;
  s.wcet = c;
  s.deadline = d;
  s.payload_bytes = 64;
  return s;
}

TEST(TaskSet, RejectsMalformedTasks) {
  TaskSet ts;
  EXPECT_THROW(ts.add(make_task(0, 0, 1, 1)), CheckFailure);   // period 0
  EXPECT_THROW(ts.add(make_task(0, 10, 0, 10)), CheckFailure); // wcet 0
  EXPECT_THROW(ts.add(make_task(0, 10, 5, 12)), CheckFailure); // D > T
  EXPECT_THROW(ts.add(make_task(0, 10, 8, 5)), CheckFailure);  // C > D
}

TEST(TaskSet, UtilizationAndFilters) {
  TaskSet ts;
  ts.add(make_task(0, 10, 2, 10, 0, 0));
  ts.add(make_task(1, 20, 5, 20, 1, 0));
  ts.add(make_task(2, 40, 4, 40, 0, 1));
  EXPECT_NEAR(ts.utilization(), 0.2 + 0.25 + 0.1, 1e-12);
  EXPECT_NEAR(ts.utilization_on(DeviceId{0}), 0.45, 1e-12);
  EXPECT_EQ(ts.filter_vm(VmId{0}).size(), 2u);
  EXPECT_EQ(ts.filter_device(DeviceId{1}).size(), 1u);
  EXPECT_EQ(ts.vms().size(), 2u);
  EXPECT_EQ(ts.devices().size(), 2u);
  EXPECT_EQ(ts.hyperperiod(), 40u);
  EXPECT_EQ(ts.by_id(TaskId{1}).period, 20u);
}

TEST(TaskSet, HyperperiodOverflowThrows) {
  TaskSet ts;
  ts.add(make_task(0, 1'000'003, 1, 1'000'003));
  ts.add(make_task(1, 999'983, 1, 999'983));
  ts.add(make_task(2, 999'979, 1, 999'979));
  EXPECT_THROW((void)ts.hyperperiod(Slot{1} << 30), CheckFailure);
}

TEST(Automotive, DatabaseShape) {
  const auto& entries = automotive_entries();
  ASSERT_EQ(entries.size(), 40u);
  std::size_t safety = 0, function = 0;
  std::set<std::string_view> names;
  for (const auto& e : entries) {
    names.insert(e.name);
    if (e.cls == TaskClass::kSafety) ++safety;
    if (e.cls == TaskClass::kFunction) ++function;
    EXPECT_GT(e.period_ms, 0u);
    EXPECT_GT(e.io_demand_us, 0u);
  }
  EXPECT_EQ(safety, 20u);
  EXPECT_EQ(function, 20u);
  EXPECT_EQ(names.size(), 40u) << "names must be unique";
}

TEST(Automotive, BaseUtilizationNearFortyPercent) {
  // Sec. V-C: "overall system utilization approximately 40%".
  EXPECT_NEAR(automotive_base_utilization(), 0.40, 0.05);
}

TEST(UUniFast, SumsToTotalAndPositive) {
  Rng rng(3);
  for (int rep = 0; rep < 50; ++rep) {
    const auto u = uunifast(rng, 6, 0.75);
    double sum = 0.0;
    for (double x : u) {
      EXPECT_GT(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 0.75, 1e-9);
  }
}

TEST(CaseStudy, BuilderHitsTargetUtilizationPerDevice) {
  CaseStudyConfig cfg;
  cfg.num_vms = 4;
  cfg.target_utilization = 0.8;
  cfg.seed = 5;
  const auto wl = build_case_study(cfg);
  for (std::size_t d = 0; d < kCaseStudyDeviceCount; ++d) {
    const double u = wl.tasks.utilization_on(DeviceId{(std::uint32_t)d});
    EXPECT_NEAR(u, 0.8, 0.06) << "device " << d;
  }
}

TEST(CaseStudy, PreloadFractionAssignsPredefinedPerClass) {
  CaseStudyConfig cfg;
  cfg.num_vms = 4;
  cfg.target_utilization = 0.6;
  cfg.preload_fraction = 0.4;
  const auto wl = build_case_study(cfg);
  const auto pre = wl.predefined();
  const auto total = wl.tasks.size();
  EXPECT_NEAR(static_cast<double>(pre.size()) / total, 0.4, 0.06);
  // Proportional selection: ~40% of each class is pre-loaded.
  std::map<TaskClass, std::size_t> pre_count, all_count;
  for (const auto& t : wl.tasks.tasks()) {
    ++all_count[t.cls];
    if (t.kind == TaskKind::kPredefined) ++pre_count[t.cls];
  }
  for (auto cls : {TaskClass::kSafety, TaskClass::kFunction,
                   TaskClass::kSynthetic}) {
    ASSERT_GT(all_count[cls], 0u);
    EXPECT_NEAR(static_cast<double>(pre_count[cls]) / all_count[cls], 0.4,
                0.15)
        << to_string(cls);
  }
}

TEST(CaseStudy, PredefinedPeriodsSnapToMenu) {
  CaseStudyConfig cfg;
  cfg.num_vms = 8;
  cfg.target_utilization = 0.9;
  cfg.preload_fraction = 1.0;  // force synthetic tasks to snap too
  const auto wl = build_case_study(cfg);
  std::set<Slot> menu;
  for (auto ms : cfg.period_menu_ms) menu.insert(Slot{ms} * kSlotsPerMs);
  const auto pre = wl.predefined();
  for (const auto& t : pre.tasks())
    EXPECT_TRUE(menu.count(t.period)) << t.name << " period " << t.period;
  // Menu lcm is 100 ms => hyper-period of pre-defined tasks stays bounded.
  EXPECT_LE(wl.predefined().hyperperiod(), Slot{100} * kSlotsPerMs);
}

TEST(CaseStudy, DeterministicForSameSeed) {
  CaseStudyConfig cfg;
  cfg.seed = 77;
  const auto a = build_case_study(cfg);
  const auto b = build_case_study(cfg);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].name, b.tasks[i].name);
    EXPECT_EQ(a.tasks[i].period, b.tasks[i].period);
    EXPECT_EQ(a.tasks[i].wcet, b.tasks[i].wcet);
    EXPECT_EQ(a.tasks[i].vm, b.tasks[i].vm);
  }
}

TEST(CaseStudy, VmAssignmentCoversAllVms) {
  CaseStudyConfig cfg;
  cfg.num_vms = 8;
  const auto wl = build_case_study(cfg);
  EXPECT_EQ(wl.tasks.vms().size(), 8u);
}

TEST(Arrivals, PredefinedStrictlyPeriodic) {
  TaskSet ts;
  auto t = make_task(0, 100, 5, 100);
  t.kind = TaskKind::kPredefined;
  t.offset = 10;
  ts.add(t);
  ArrivalConfig cfg;
  cfg.horizon = 1000;
  const auto trace = generate_trace(ts, cfg);
  ASSERT_EQ(trace.size(), 10u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].release, 10 + 100 * i);
    EXPECT_EQ(trace[i].absolute_deadline, trace[i].release + 100);
  }
}

TEST(Arrivals, SporadicRespectsMinimumSeparation) {
  TaskSet ts;
  ts.add(make_task(0, 50, 5, 50));
  ArrivalConfig cfg;
  cfg.horizon = 100000;
  cfg.jitter_frac = 0.3;
  const auto trace = generate_trace(ts, cfg);
  ASSERT_GT(trace.size(), 100u);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].release - trace[i - 1].release, 50u);
}

TEST(Arrivals, ExecutionDemandWithinWcet) {
  TaskSet ts;
  ts.add(make_task(0, 50, 10, 50));
  ArrivalConfig cfg;
  cfg.horizon = 50000;
  const auto trace = generate_trace(ts, cfg);
  for (const auto& j : trace) {
    EXPECT_GE(j.wcet, 1u);
    EXPECT_LE(j.wcet, 10u);
  }
}

TEST(Arrivals, SortedAndDenseJobIds) {
  CaseStudyConfig cfg;
  const auto wl = build_case_study(cfg);
  ArrivalConfig acfg;
  acfg.horizon = 20000;
  const auto trace = generate_trace(wl.tasks, acfg);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id.value, i);
    if (i) {
      EXPECT_LE(trace[i - 1].release, trace[i].release);
    }
  }
}

TEST(Arrivals, HorizonForMinJobsCoversEveryTask) {
  CaseStudyConfig cfg;
  const auto wl = build_case_study(cfg);
  const Slot h = horizon_for_min_jobs(wl.tasks, 5);
  ArrivalConfig acfg;
  acfg.horizon = h;
  acfg.jitter_frac = 0.0;
  const auto trace = generate_trace(wl.tasks, acfg);
  std::map<std::uint32_t, int> counts;
  for (const auto& j : trace) counts[j.task.value]++;
  for (const auto& t : wl.tasks.tasks())
    EXPECT_GE(counts[t.id.value], 5) << t.name;
}

}  // namespace
}  // namespace ioguard::workload
