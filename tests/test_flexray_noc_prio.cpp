// Tests for the FlexRay TDMA bus model and the NoC priority arbitration.
#include <gtest/gtest.h>

#include "iodev/flexray_bus.hpp"
#include "noc/mesh.hpp"

namespace ioguard {
namespace {

using iodev::FlexRayBusSim;
using iodev::FlexRayConfig;
using iodev::FlexRayDynamicFrame;
using iodev::FlexRayStaticFrame;

// ----------------------------------------------------------------- FlexRay

FlexRayStaticFrame sframe(std::uint32_t slot, std::uint32_t period = 1) {
  FlexRayStaticFrame f;
  f.slot = slot;
  f.period_cycles = period;
  f.name = "s" + std::to_string(slot);
  return f;
}

FlexRayDynamicFrame dframe(std::uint32_t id, std::uint64_t period_us) {
  FlexRayDynamicFrame f;
  f.frame_id = id;
  f.period_us = period_us;
  f.name = "d" + std::to_string(id);
  return f;
}

TEST(FlexRay, CycleTiming) {
  FlexRayConfig bus;
  // 20*280 + 40*10 = 6000 bits at 10 Mbit/s = 600 us per cycle.
  EXPECT_EQ(bus.cycle_bits(), 6000u);
  EXPECT_DOUBLE_EQ(bus.cycle_us(), 600.0);
}

TEST(FlexRay, StaticWorstLatencyFormula) {
  FlexRayConfig bus;
  // Slot 1, every cycle: one full cycle + slot-1 end (28 us).
  EXPECT_DOUBLE_EQ(flexray_static_worst_latency_us(bus, sframe(1)), 628.0);
  // Slot 20: 600 + 560.
  EXPECT_DOUBLE_EQ(flexray_static_worst_latency_us(bus, sframe(20)), 1160.0);
  // Period 4 cycles: 4*600 + 28.
  EXPECT_DOUBLE_EQ(flexray_static_worst_latency_us(bus, sframe(1, 4)), 2428.0);
}

TEST(FlexRay, StaticSegmentIsJitterFree) {
  FlexRayConfig bus;
  FlexRayBusSim sim(bus, {sframe(1), sframe(5, 2)}, {});
  const auto r = sim.run(60'000);  // 100 cycles
  EXPECT_EQ(r.static_sent[0], 100u);
  EXPECT_EQ(r.static_sent[1], 50u);
}

TEST(FlexRay, DynamicGuaranteeRule) {
  FlexRayConfig bus;  // 40 minislots; one frame = 28 minislots
  const std::vector<FlexRayDynamicFrame> frames = {dframe(1, 5000),
                                                   dframe(2, 5000)};
  EXPECT_TRUE(iodev::flexray_dynamic_guaranteed(bus, frames, 1));
  // Frame 2 behind frame 1's 28 minislots: 28 + 28 > 40 -> not guaranteed.
  EXPECT_FALSE(iodev::flexray_dynamic_guaranteed(bus, frames, 2));
}

TEST(FlexRay, DynamicContentionDefersLowPriority) {
  FlexRayConfig bus;
  // Both want every cycle; only the lower id fits per dynamic segment.
  FlexRayBusSim sim(bus, {}, {dframe(1, 600), dframe(2, 600)});
  const auto r = sim.run(60'000);
  EXPECT_GT(r.dynamic_sent[0], 90u);
  EXPECT_GT(r.dynamic_deferrals, 0u);
  EXPECT_LT(r.dynamic_sent[1], r.dynamic_sent[0]);
}

TEST(FlexRay, UncontendedDynamicLatencyWithinTwoCycles) {
  FlexRayConfig bus;
  FlexRayBusSim sim(bus, {}, {dframe(1, 5000)});
  const auto r = sim.run(600'000);
  EXPECT_GT(r.dynamic_sent[0], 100u);
  EXPECT_LE(r.dynamic_worst_latency_us[0], 2.0 * bus.cycle_us());
}

// ------------------------------------------------- NoC priority arbitration

TEST(NocPriority, UrgentTrafficProtectedUnderContention) {
  // Two flows fight for the same output port. Under round-robin they share;
  // under priority arbitration the urgent flow's latency stays near
  // zero-load while bulk traffic absorbs the queueing.
  auto run = [](noc::Arbitration arb) {
    noc::MeshConfig cfg;
    cfg.arbitration = arb;
    noc::Mesh mesh(cfg);
    SampleSet urgent_lat;
    mesh.set_delivery_handler(mesh.node_at(4, 2),
                              [&](const noc::Packet& p, Cycle) {
                                if (p.priority == 0)
                                  urgent_lat.add(
                                      static_cast<double>(p.latency()));
                              });
    Cycle now = 0;
    for (int burst = 0; burst < 40; ++burst) {
      // Bulk streams converge on (4,2)'s ejection port from north and
      // south; the urgent packet arrives from the west. Three inputs
      // compete for one output, so round-robin rotates through both bulk
      // wormholes before the urgent one.
      for (int i = 0; i < 3; ++i) {
        for (int y : {0, 4}) {
          noc::Packet bulk;  // large, low-priority
          bulk.src = mesh.node_at(4, y);
          bulk.dst = mesh.node_at(4, 2);
          bulk.priority = 7;
          bulk.payload_bytes = 512;
          mesh.send(bulk, now);
        }
      }
      noc::Packet urgent;  // small, high-priority
      urgent.src = mesh.node_at(0, 2);
      urgent.dst = mesh.node_at(4, 2);
      urgent.priority = 0;
      urgent.payload_bytes = 16;
      mesh.send(urgent, now);
      for (int c = 0; c < 500; ++c) mesh.tick(now++);
    }
    for (int c = 0; c < 20000 && !mesh.idle(); ++c) mesh.tick(now++);
    return urgent_lat;
  };

  auto rr = run(noc::Arbitration::kRoundRobin);
  auto prio = run(noc::Arbitration::kPriority);
  ASSERT_EQ(rr.count(), 40u);
  ASSERT_EQ(prio.count(), 40u);
  EXPECT_LT(prio.percentile(99), rr.percentile(99));
  EXPECT_LT(prio.max(), rr.max());
}

TEST(NocPriority, StillDeliversAllTraffic) {
  noc::MeshConfig cfg;
  cfg.arbitration = noc::Arbitration::kPriority;
  noc::Mesh mesh(cfg);
  int delivered = 0;
  for (std::uint32_t n = 0; n < mesh.node_count(); ++n)
    mesh.set_delivery_handler(NodeId{n},
                              [&](const noc::Packet&, Cycle) { ++delivered; });
  Cycle now = 0;
  for (std::uint32_t i = 0; i < 50; ++i) {
    noc::Packet p;
    p.src = NodeId{i % static_cast<std::uint32_t>(mesh.node_count())};
    p.dst = NodeId{(i * 7 + 3) % static_cast<std::uint32_t>(mesh.node_count())};
    if (p.src == p.dst) continue;
    p.priority = static_cast<std::uint8_t>(i % 8);
    p.payload_bytes = 64;
    mesh.send(p, now);
  }
  for (int c = 0; c < 30000 && !mesh.idle(); ++c) mesh.tick(now++);
  EXPECT_TRUE(mesh.idle());
  EXPECT_GT(delivered, 40);
}

}  // namespace
}  // namespace ioguard
