// Unit tests for the extended device substrate: DMA engine and interrupt
// controller.
#include <gtest/gtest.h>

#include <vector>

#include "iodev/dma.hpp"
#include "iodev/interrupt.hpp"

namespace ioguard::iodev {
namespace {

// ------------------------------------------------------------------ DMA

DmaDescriptor desc(std::uint64_t id, std::uint32_t channel,
                   std::uint32_t bytes) {
  DmaDescriptor d;
  d.id = id;
  d.channel = channel;
  d.bytes = bytes;
  return d;
}

TEST(Dma, SingleTransferCompletes) {
  DmaConfig cfg;
  cfg.channels = 2;
  cfg.burst_bytes = 64;
  cfg.cycles_per_burst = 8;
  cfg.setup_cycles = 12;
  DmaEngine dma(cfg);
  std::vector<DmaCompletion> done;
  dma.set_completion_handler([&](const DmaCompletion& c) { done.push_back(c); });

  ASSERT_TRUE(dma.submit(desc(1, 0, 256), 0));  // 4 bursts
  Cycle now = 0;
  while (done.empty() && now < 1000) dma.tick(now++);
  ASSERT_EQ(done.size(), 1u);
  // setup 12 + 4 bursts x 8 cycles = 44 cycles.
  EXPECT_EQ(done[0].completed_at, 12u + 32u);
  EXPECT_EQ(dma.bytes_moved(), 256u);
  EXPECT_TRUE(dma.idle());
}

TEST(Dma, RoundRobinSharesBandwidth) {
  DmaConfig cfg;
  cfg.channels = 2;
  cfg.arbitration = DmaArbitration::kRoundRobin;
  cfg.setup_cycles = 0;
  DmaEngine dma(cfg);
  std::vector<DmaCompletion> done;
  dma.set_completion_handler([&](const DmaCompletion& c) { done.push_back(c); });

  ASSERT_TRUE(dma.submit(desc(1, 0, 640), 0));  // 10 bursts each
  ASSERT_TRUE(dma.submit(desc(2, 1, 640), 0));
  Cycle now = 0;
  while (done.size() < 2 && now < 10000) dma.tick(now++);
  ASSERT_EQ(done.size(), 2u);
  // Interleaved bursts: both finish within one burst of each other.
  const Cycle delta = done[1].completed_at - done[0].completed_at;
  EXPECT_LE(delta, cfg.cycles_per_burst + 1);
}

TEST(Dma, FixedPriorityStarvesLowChannelLast) {
  DmaConfig cfg;
  cfg.channels = 2;
  cfg.arbitration = DmaArbitration::kFixedPriority;
  cfg.setup_cycles = 0;
  DmaEngine dma(cfg);
  std::vector<DmaCompletion> done;
  dma.set_completion_handler([&](const DmaCompletion& c) { done.push_back(c); });

  ASSERT_TRUE(dma.submit(desc(1, 1, 640), 0));  // low priority first
  ASSERT_TRUE(dma.submit(desc(2, 0, 640), 0));  // high priority
  Cycle now = 0;
  while (done.size() < 2 && now < 10000) dma.tick(now++);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].descriptor.id, 2u);  // channel 0 drained first
  EXPECT_EQ(done[1].descriptor.id, 1u);
}

TEST(Dma, RingBackPressure) {
  DmaConfig cfg;
  cfg.channels = 1;
  cfg.queue_depth = 2;
  DmaEngine dma(cfg);
  EXPECT_TRUE(dma.submit(desc(1, 0, 64), 0));
  EXPECT_TRUE(dma.submit(desc(2, 0, 64), 0));
  EXPECT_FALSE(dma.submit(desc(3, 0, 64), 0));
  EXPECT_EQ(dma.rejected(), 1u);
  EXPECT_EQ(dma.backlog(0), 2u);
}

TEST(Dma, PartialLastBurstMovesRemainderOnly) {
  DmaConfig cfg;
  cfg.channels = 1;
  cfg.burst_bytes = 64;
  cfg.setup_cycles = 0;
  DmaEngine dma(cfg);
  std::vector<DmaCompletion> done;
  dma.set_completion_handler([&](const DmaCompletion& c) { done.push_back(c); });
  ASSERT_TRUE(dma.submit(desc(1, 0, 100), 0));  // 64 + 36
  Cycle now = 0;
  while (done.empty() && now < 1000) dma.tick(now++);
  EXPECT_EQ(dma.bytes_moved(), 100u);
}

// ------------------------------------------------------------ interrupts

TEST(Interrupts, ImmediateDeliveryWithDispatchLatency) {
  InterruptConfig cfg;
  cfg.dispatch_cycles = 30;
  InterruptController intc(cfg);
  std::vector<InterruptEvent> seen;
  intc.set_handler([&](const InterruptEvent& e) { seen.push_back(e); });

  intc.raise(3, 5);
  for (Cycle c = 5; c < 100 && seen.empty(); ++c) intc.tick(c);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].line, 3u);
  EXPECT_EQ(seen[0].raised_count, 1u);
  EXPECT_GE(seen[0].latency(), cfg.dispatch_cycles);
  EXPECT_LE(seen[0].latency(), cfg.dispatch_cycles + 2);
}

TEST(Interrupts, PriorityOrderLowLineFirst) {
  InterruptController intc(InterruptConfig{});
  std::vector<std::uint32_t> order;
  intc.set_handler([&](const InterruptEvent& e) { order.push_back(e.line); });
  intc.raise(7, 0);
  intc.raise(2, 0);
  for (Cycle c = 0; c < 200 && order.size() < 2; ++c) intc.tick(c);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 7u);
}

TEST(Interrupts, MaskingDefersDelivery) {
  InterruptController intc(InterruptConfig{});
  std::vector<InterruptEvent> seen;
  intc.set_handler([&](const InterruptEvent& e) { seen.push_back(e); });
  intc.set_mask(1, true);
  intc.raise(1, 0);
  for (Cycle c = 0; c < 100; ++c) intc.tick(c);
  EXPECT_TRUE(seen.empty());
  EXPECT_TRUE(intc.pending());
  intc.set_mask(1, false);
  for (Cycle c = 100; c < 200 && seen.empty(); ++c) intc.tick(c);
  ASSERT_EQ(seen.size(), 1u);
}

TEST(Interrupts, CoalescingFoldsBursts) {
  InterruptConfig cfg;
  cfg.coalesce_window = 50;
  InterruptController intc(cfg);
  std::vector<InterruptEvent> seen;
  intc.set_handler([&](const InterruptEvent& e) { seen.push_back(e); });

  for (Cycle c = 0; c < 10; ++c) {
    intc.raise(0, c);
    intc.tick(c);
  }
  for (Cycle c = 10; c < 200 && seen.empty(); ++c) intc.tick(c);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].raised_count, 10u);   // burst folded into one delivery
  EXPECT_GE(seen[0].latency(), cfg.coalesce_window);
}

TEST(Interrupts, EdgeFoldingWithoutCoalescingStillCounts) {
  InterruptController intc(InterruptConfig{});
  std::vector<InterruptEvent> seen;
  intc.set_handler([&](const InterruptEvent& e) { seen.push_back(e); });
  intc.raise(0, 0);
  intc.raise(0, 0);  // second edge before dispatch
  for (Cycle c = 0; c < 100 && seen.empty(); ++c) intc.tick(c);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].raised_count, 2u);
}

}  // namespace
}  // namespace ioguard::iodev
