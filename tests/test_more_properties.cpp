// Additional cross-cutting property tests:
//  * slot-table placement conformance: every pre-defined job receives
//    exactly C slots inside its release window, under both policies;
//  * admission monotonicity: more demand never helps, more budget never
//    hurts (Theorem 4), and freeing a table slot never lowers sbf;
//  * workload builder conservation: per-device utilization is preserved by
//    preload marking and snapping within tolerance.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "sched/admission.hpp"
#include "sched/slot_table.hpp"
#include "workload/generator.hpp"

namespace ioguard {
namespace {

using sched::ServerParams;
using sched::SlotPlacement;
using workload::TaskSet;

TaskSet random_predefined(Rng& rng, std::size_t n) {
  TaskSet ts;
  const Slot menu[] = {10, 20, 40, 80};
  for (std::size_t i = 0; i < n; ++i) {
    workload::IoTaskSpec s;
    s.id = TaskId{static_cast<std::uint32_t>(i)};
    s.vm = VmId{0};
    s.device = DeviceId{0};
    s.name = "p" + std::to_string(i);
    s.kind = workload::TaskKind::kPredefined;
    s.period = menu[rng.index(4)];
    s.deadline = s.period;
    s.wcet = 1 + rng.uniform_int(0, s.period / 4);
    s.offset = rng.uniform_int(0, s.period - 1);
    s.payload_bytes = 8;
    ts.add(s);
  }
  return ts;
}

class PlacementConformance
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlacementConformance, EveryJobGetsItsSlotsInsideItsWindow) {
  Rng rng(12000 + std::get<0>(GetParam()));
  const auto policy = std::get<1>(GetParam()) == 0 ? SlotPlacement::kSpread
                                                   : SlotPlacement::kEdfPack;
  const auto ts = random_predefined(rng, 1 + rng.index(4));
  if (ts.utilization() > 0.9) GTEST_SKIP();

  const auto build = sched::build_time_slot_table(ts, Slot{1} << 24, policy);
  if (!build.feasible) GTEST_SKIP() << build.failure;
  const Slot h = build.table.hyperperiod();

  // Count each task's reserved slots inside each of its job windows.
  for (const auto& t : ts.tasks()) {
    for (Slot r = t.offset; r < h; r += t.period) {
      Slot got = 0;
      for (Slot s = r; s < r + t.deadline; ++s)
        if (build.table.occupant(s % h) == t.id) ++got;
      // Window-local count can exceed C only if another job of the same
      // task overlaps modulo H -- excluded because D <= T. It must be at
      // least C for the job to be schedulable at its reserved instants.
      EXPECT_GE(got, t.wcet) << t.name << " window at " << r;
    }
    // Global conservation: exactly C * H/T slots per hyper-period.
    Slot total = 0;
    for (Slot s = 0; s < h; ++s)
      if (build.table.occupant(s) == t.id) ++total;
    EXPECT_EQ(total, t.wcet * (h / t.period)) << t.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, PlacementConformance,
                         ::testing::Combine(::testing::Range(0, 15),
                                            ::testing::Values(0, 1)));

class MonotonicityProperty : public ::testing::TestWithParam<int> {};

TEST_P(MonotonicityProperty, MoreDemandNeverHelpsMoreBudgetNeverHurts) {
  Rng rng(13000 + GetParam());
  const Slot pi = 5 + rng.uniform_int(0, 20);
  const Slot theta = 1 + rng.uniform_int(0, pi - 1);

  TaskSet base;
  for (std::size_t i = 0; i < 2; ++i) {
    workload::IoTaskSpec s;
    s.id = TaskId{static_cast<std::uint32_t>(i)};
    s.vm = VmId{0};
    s.device = DeviceId{0};
    s.name = "t" + std::to_string(i);
    s.period = 50 + rng.uniform_int(0, 200);
    s.deadline = s.period - rng.uniform_int(0, s.period / 5);
    s.wcet = 1 + rng.uniform_int(0, s.deadline / 6);
    s.payload_bytes = 8;
    base.add(s);
  }

  const bool before =
      static_cast<bool>(sched::theorem4_check({pi, theta}, base));

  // Add one more task: schedulable(after) => schedulable(before).
  TaskSet more = base;
  {
    workload::IoTaskSpec extra;
    extra.id = TaskId{99};
    extra.vm = VmId{0};
    extra.device = DeviceId{0};
    extra.name = "extra";
    extra.period = 100;
    extra.deadline = 90;
    extra.wcet = 1 + rng.uniform_int(0, 10);
    extra.payload_bytes = 8;
    more.add(extra);
  }
  const bool after =
      static_cast<bool>(sched::theorem4_check({pi, theta}, more));
  if (after) {
    EXPECT_TRUE(before);
  }

  // Raise Theta: schedulable(before) must be preserved.
  if (before && theta < pi) {
    EXPECT_TRUE(sched::theorem4_check({pi, theta + 1}, base));
  }
}

INSTANTIATE_TEST_SUITE_P(Random, MonotonicityProperty,
                         ::testing::Range(0, 40));

class SbfMonotoneInSupply : public ::testing::TestWithParam<int> {};

TEST_P(SbfMonotoneInSupply, FreeingASlotNeverLowersSbf) {
  Rng rng(14000 + GetParam());
  const Slot h = 8 + rng.uniform_int(0, 24);
  sched::TimeSlotTable dense(h);
  for (Slot s = 0; s < h; ++s)
    if (rng.bernoulli(0.5)) dense.reserve(s, TaskId{0});
  if (dense.free_slots() == h) dense.reserve(0, TaskId{0});

  // Pick one reserved slot and free it in a copy.
  Slot victim = 0;
  while (dense.is_free(victim)) ++victim;
  sched::TimeSlotTable sparse = dense;
  sparse.release(victim);

  sched::TableSupply dense_supply(dense);
  sched::TableSupply sparse_supply(sparse);
  for (Slot t = 0; t <= 3 * h; ++t)
    EXPECT_GE(sparse_supply.sbf(t), dense_supply.sbf(t)) << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Random, SbfMonotoneInSupply,
                         ::testing::Range(0, 20));

class BuilderConservation : public ::testing::TestWithParam<int> {};

TEST_P(BuilderConservation, PreloadMarkingPreservesDeviceUtilization) {
  Rng rng(15000 + GetParam());
  workload::CaseStudyConfig cfg;
  cfg.num_vms = 4 + 4 * rng.index(2);
  cfg.target_utilization = rng.uniform(0.4, 1.0);
  cfg.preload_fraction = rng.uniform(0.0, 1.0);
  cfg.seed = 15000 + static_cast<std::uint64_t>(GetParam());
  const auto wl = workload::build_case_study(cfg);

  for (std::size_t d = 0; d < workload::kCaseStudyDeviceCount; ++d) {
    const DeviceId dev{static_cast<std::uint32_t>(d)};
    const double u = wl.tasks.utilization_on(dev);
    // Snapping rescales WCETs, so the device total stays near the target.
    EXPECT_NEAR(u, cfg.target_utilization, 0.10)
        << "device " << d << " preload " << cfg.preload_fraction;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, BuilderConservation,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace ioguard
