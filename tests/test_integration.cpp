// Cross-module integration tests:
//  * the analytic transit model vs. the cycle-level NoC under load,
//  * end-to-end: cycle-level NoC carrying I/O requests into the hypervisor,
//  * analysis-vs-execution: Theorem-admitted I/O-GUARD runs have zero misses,
//  * FIFO-vs-EDF crossover on the real case-study workload.
#include <gtest/gtest.h>

#include <deque>

#include "core/hypervisor.hpp"
#include "noc/mesh.hpp"
#include "sched/sbf.hpp"
#include "system/runner.hpp"
#include "system/stages.hpp"

namespace ioguard {
namespace {

// ---------------------------------------------------------------------------
// The analytic TransitModel is the substitution used by the Fig. 7 sweeps;
// validate its zero-load base against the cycle-level mesh.
TEST(Integration, TransitModelBaseMatchesMeshZeroLoad) {
  noc::MeshConfig mcfg;
  noc::Mesh mesh(mcfg);
  // Average zero-load latency over representative processor->I/O pairs.
  double total = 0.0;
  int pairs = 0;
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) {
      total += static_cast<double>(mesh.zero_load_latency(
          mesh.node_at(x, y), mesh.node_at(4, 4), 16));
      ++pairs;
    }
  }
  const double mesh_mean = total / pairs;

  sys::Calibration cal;
  sys::TransitModel legacy(cal, sys::SystemKind::kLegacy, 4, 0.0, 1);
  // The analytic model should sit above the bare zero-load mean (it folds in
  // injection/ejection and background kernel/memory traffic) but stay within
  // one order of magnitude of it.
  EXPECT_GT(legacy.mean_cycles(), mesh_mean * 0.5);
  EXPECT_LT(legacy.mean_cycles(), mesh_mean * 10.0);
}

// ---------------------------------------------------------------------------
// Cycle-level end-to-end: processors on a mesh send I/O request packets to a
// hypervisor node; the hypervisor executes them at slot granularity and
// responses travel back over the mesh.
TEST(Integration, MeshCarriesRequestsIntoHypervisorAndBack) {
  noc::MeshConfig mcfg;
  mcfg.width = 3;
  mcfg.height = 3;
  noc::Mesh mesh(mcfg);

  // Hypervisor with an empty P-channel, 4 VMs, SPI device.
  workload::TaskSet no_predef;
  auto build = sched::build_time_slot_table(no_predef);
  std::vector<sched::ServerParams> servers(4, sched::ServerParams{4, 1});
  core::VManagerConfig vc;
  vc.num_vms = 4;
  core::VirtManager manager(iodev::device_spec(iodev::DeviceKind::kSpi),
                            no_predef, build.table, servers, vc);

  const NodeId hyp_node = mesh.node_at(2, 2);
  std::deque<workload::Job> inbox;
  mesh.set_delivery_handler(hyp_node, [&](const noc::Packet& p, Cycle) {
    workload::Job j;
    j.id = JobId{static_cast<std::uint32_t>(p.tag)};
    j.task = TaskId{static_cast<std::uint32_t>(p.tag)};
    j.vm = VmId{static_cast<std::uint32_t>(p.tag % 4)};
    j.device = DeviceId{0};
    j.release = 0;
    j.absolute_deadline = 4000;
    j.wcet = 2;
    j.payload_bytes = p.payload_bytes;
    inbox.push_back(j);
  });

  int responses = 0;
  for (int v = 0; v < 4; ++v)
    mesh.set_delivery_handler(mesh.node_at(v % 3, v / 3),
                              [&](const noc::Packet&, Cycle) { ++responses; });

  // Four processors each send one request packet.
  for (std::uint32_t v = 0; v < 4; ++v) {
    noc::Packet p;
    p.src = mesh.node_at(static_cast<int>(v) % 3, static_cast<int>(v) / 3);
    p.dst = hyp_node;
    p.kind = noc::PacketKind::kIoRequest;
    p.payload_bytes = 32;
    p.tag = v;
    mesh.send(p, 0);
  }

  // Co-simulate: mesh at cycle granularity, hypervisor every 100 cycles.
  std::vector<iodev::Completion> done;
  Cycle now = 0;
  for (; now < 20000 && done.size() < 4; ++now) {
    mesh.tick(now);
    if (now % 100 == 99) {
      while (!inbox.empty()) {
        ASSERT_TRUE(manager.submit(inbox.front(), now / 100));
        inbox.pop_front();
      }
      std::vector<iodev::Completion> finished;
      manager.tick_slot(now / 100, finished);
      for (const auto& c : finished) {
        done.push_back(c);
        noc::Packet resp;
        resp.src = hyp_node;
        resp.dst = mesh.node_at(static_cast<int>(c.job.vm.value) % 3,
                                static_cast<int>(c.job.vm.value) / 3);
        resp.kind = noc::PacketKind::kIoResponse;
        resp.payload_bytes = c.job.payload_bytes;
        resp.tag = c.job.id.value;
        mesh.send(resp, now);
      }
    }
  }
  for (Cycle c = now; c < now + 5000; ++c) mesh.tick(c);

  EXPECT_EQ(done.size(), 4u);
  EXPECT_EQ(responses, 4);
  for (const auto& c : done) EXPECT_FALSE(c.missed());
}

// ---------------------------------------------------------------------------
// Analysis-execution agreement: when the hypervisor admits the workload
// (Theorems 2 + 4 hold on every device), the executed schedule has zero
// deadline misses.
TEST(Integration, AdmittedWorkloadsRunWithoutMisses) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sys::TrialConfig tc;
    tc.kind = sys::SystemKind::kIoGuard;
    tc.workload.num_vms = 4;
    tc.workload.target_utilization = 0.5;
    tc.workload.preload_fraction = 0.4;
    tc.min_jobs_per_task = 5;
    tc.trial_seed = seed;
    const auto r = sys::run_trial(tc);
    if (!r.admitted) continue;  // only the admitted runs carry the guarantee
    EXPECT_EQ(r.misses, 0u) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// The paper's qualitative crossover on the real workload: at moderate
// utilization everything works; pushing utilization up breaks the FIFO
// baselines before I/O-GUARD.
TEST(Integration, FifoVsEdfCrossoverOnCaseStudyWorkload) {
  auto misses_at = [](sys::SystemKind kind, double util, double preload) {
    std::uint64_t total = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      sys::TrialConfig tc;
      tc.kind = kind;
      tc.workload.num_vms = 8;
      tc.workload.target_utilization = util;
      tc.workload.preload_fraction = preload;
      tc.min_jobs_per_task = 5;
      tc.trial_seed = seed;
      total += sys::run_trial(tc).critical_misses;
    }
    return total;
  };

  const auto legacy_low = misses_at(sys::SystemKind::kLegacy, 0.45, 0.0);
  const auto legacy_high = misses_at(sys::SystemKind::kLegacy, 1.0, 0.0);
  const auto ioguard_high = misses_at(sys::SystemKind::kIoGuard, 1.0, 0.7);

  EXPECT_EQ(legacy_low, 0u);
  EXPECT_GT(legacy_high, 0u);
  EXPECT_LT(ioguard_high, legacy_high);
}

// ---------------------------------------------------------------------------
// The two-layer scheduler's bandwidth guarantee observed in execution:
// granted slots per VM never fall below what its server guarantees over the
// measured span (Theorem 1's conclusion).
TEST(Integration, GschedDeliversServerBandwidthUnderSaturation) {
  workload::TaskSet no_predef;
  auto build = sched::build_time_slot_table(no_predef);
  std::vector<sched::ServerParams> servers = {{4, 1}, {4, 2}};
  core::VManagerConfig vc;
  vc.num_vms = 2;
  vc.pool_capacity = 64;
  core::VirtManager manager(iodev::device_spec(iodev::DeviceKind::kSpi),
                            no_predef, build.table, servers, vc);

  // Saturate both pools so every granted slot is consumed.
  for (std::uint32_t i = 0; i < 40; ++i) {
    workload::Job j;
    j.id = JobId{i};
    j.task = TaskId{i};
    j.vm = VmId{i % 2};
    j.device = DeviceId{0};
    j.release = 0;
    j.absolute_deadline = 100000 + i;
    j.wcet = 50;
    j.payload_bytes = 8;
    ASSERT_TRUE(manager.submit(j, 0));
  }
  std::vector<iodev::Completion> done;
  const Slot span = 400;  // 100 server periods
  for (Slot s = 0; s < span; ++s) manager.tick_slot(s, done);

  EXPECT_GE(manager.gsched().granted(0), span / 4 * 1);
  EXPECT_GE(manager.gsched().granted(1), span / 4 * 2);
}

}  // namespace
}  // namespace ioguard
