// ioguard_admitd -- JSON-lines admission-control daemon (ISSUE-9).
//
// Long-lived front-end of service::AdmissionEngine: reads one JSON request
// per line from stdin, answers one JSON decision (or error) per line on
// stdout, and never crashes on malformed input -- a bad line yields an
// {"ok":false,...} diagnostic and the loop continues, mirroring the tools'
// exit-code contract (kDataLoss / kInvalidArgument) per request instead of
// per process. EOF ends the session with exit 0.
//
//   $ printf '%s\n' '{"op":"admit","tenant":"t0","vm":"vm0",
//     "tasks":[{"id":1,"period":100,"wcet":5}]}' '{"op":"stats"}' |
//     ioguard_admitd --hyperperiod=1000 --busy-every=4
//
// Two table sources:
//   * synthetic (default): an H-slot table with every Nth slot reserved for
//     the P-channel (--hyperperiod, --busy-every);
//   * --case-study: the automotive case study's busiest device, built from
//     the same artifacts as ioguard_cli / ioguard_verify. Workload knobs
//     (--vms/--util/--preload/--seed) go through sys::TrialConfig::validated,
//     the single validated construction path for experiment configs.
//
// Blank lines and lines starting with '#' are ignored, so request scripts
// can be commented.

#include <fstream>
#include <iostream>
#include <string>

#include "analysis/artifact_builder.hpp"
#include "common/cli.hpp"
#include "common/status.hpp"
#include "sched/slot_table.hpp"
#include "service/admission_engine.hpp"
#include "service/admission_json.hpp"
#include "system/runner.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"

namespace {

using ioguard::Slot;
using ioguard::Status;
using ioguard::StatusOr;
using ioguard::TaskId;

/// Builds the synthetic serving table: `hyperperiod` slots with every
/// `busy_every`-th slot reserved (0 = fully free).
StatusOr<ioguard::sched::TimeSlotTable> synthetic_table(
    std::int64_t hyperperiod, std::int64_t busy_every) {
  if (hyperperiod <= 0)
    return ioguard::InvalidArgumentError("--hyperperiod must be positive");
  if (busy_every < 0)
    return ioguard::InvalidArgumentError("--busy-every must be >= 0");
  ioguard::sched::TimeSlotTable table(static_cast<Slot>(hyperperiod));
  if (busy_every > 0)
    for (Slot s = 0; s < table.hyperperiod();
         s += static_cast<Slot>(busy_every))
      table.reserve(s, TaskId{0});
  return table;
}

/// Builds the case-study serving table: validates the workload knobs through
/// sys::TrialConfig::validated (the same path ioguard_cli and the benches
/// use), then serves the busiest device of the resulting artifacts.
StatusOr<ioguard::sched::TimeSlotTable> case_study_table(
    const ioguard::CliArgs& args) {
  ioguard::sys::TrialConfig raw;
  raw.workload.num_vms = static_cast<std::size_t>(args.get_int("vms"));
  raw.workload.target_utilization = args.get_double("util");
  raw.workload.preload_fraction = args.get_double("preload");
  raw.workload.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  IOGUARD_ASSIGN_OR_RETURN(const ioguard::sys::TrialConfig cfg,
                           ioguard::sys::TrialConfig::validated(raw));

  const auto artifacts =
      ioguard::analysis::build_experiment_artifacts(cfg.workload);
  if (artifacts.tables.empty())
    return ioguard::FailedPreconditionError(
        "case-study artifacts contain no device tables");
  std::size_t busiest = 0;
  for (std::size_t d = 1; d < artifacts.tables.size(); ++d) {
    const auto used = [&artifacts](std::size_t i) {
      return artifacts.tables[i].hyperperiod() -
             artifacts.tables[i].free_slots();
    };
    if (used(d) > used(busiest)) busiest = d;
  }
  return artifacts.tables[busiest];
}

Status run(const ioguard::CliArgs& args) {
  StatusOr<ioguard::sched::TimeSlotTable> table =
      args.get_bool("case-study")
          ? case_study_table(args)
          : synthetic_table(args.get_int("hyperperiod"),
                            args.get_int("busy-every"));
  IOGUARD_RETURN_IF_ERROR(table.status());

  ioguard::service::AdmissionEngineConfig config;
  config.memoize = !args.get_bool("no-memoize");
  ioguard::service::AdmissionEngine engine(*std::move(table), config);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto wire = ioguard::service::decode_request(line);
    if (!wire.ok()) {
      std::cout << ioguard::service::encode_error(wire.status()) << "\n"
                << std::flush;
      continue;
    }
    if (wire->stats) {
      std::cout << ioguard::service::encode_counters(engine.counters(),
                                                     engine.fleet_size(),
                                                     engine.fleet_fingerprint())
                << "\n"
                << std::flush;
      continue;
    }
    const auto decision = engine.handle(wire->request);
    std::cout << (decision.ok()
                      ? ioguard::service::encode_decision(*decision)
                      : ioguard::service::encode_error(decision.status()))
              << "\n"
              << std::flush;
  }

  const std::string metrics_out = args.get("metrics-out");
  if (!metrics_out.empty()) {
    ioguard::telemetry::MetricsRegistry registry;
    engine.export_metrics(registry);
    std::ofstream os(metrics_out);
    if (!os)
      return ioguard::UnavailableError("cannot open --metrics-out file " +
                                       metrics_out);
    ioguard::telemetry::write_prometheus(os, registry);
  }
  return ioguard::OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  ioguard::CliSpec spec(
      "JSON-lines admission-control daemon (one request per stdin line, one "
      "decision per stdout line)");
  spec.flag_int("hyperperiod", 1000, "synthetic table size in slots")
      .flag_int("busy-every", 4,
                "reserve every Nth slot for the P-channel (0 = all free)")
      .flag_switch("case-study",
                   "serve the case study's busiest device table instead of "
                   "the synthetic one")
      .flag_int("vms", 4, "case-study: active VMs")
      .flag_double("util", 0.4, "case-study: target device utilization")
      .flag_double("preload", 0.0, "case-study: preloaded task fraction")
      .flag_int("seed", 1, "case-study: workload seed")
      .flag_switch("no-memoize",
                   "full re-analysis on every request (reference mode)")
      .flag("metrics-out", "",
            "write Prometheus engine counters to this file at EOF");

  const auto args = spec.parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "ioguard_admitd: " << args.status() << "\n";
    return 2;
  }
  if (args->help_requested()) {
    std::cout << spec.help_text(args->program());
    return 0;
  }
  const Status status = run(*args);
  if (!status.ok()) std::cerr << "ioguard_admitd: " << status << "\n";
  return ioguard::exit_code(status);
}
