// ioguard_lint: CLI front-end of the determinism linter (DESIGN.md §13).
//
//   ioguard_lint [--json=report.json] [--quiet] <path>...
//
// Paths may be files or directories; directories are walked recursively and
// C++ sources (.hpp/.h/.cpp/.cc) are scanned in sorted path order, so the
// report -- text and JSON alike -- is byte-stable across runs and machines.
//
// Exit codes follow the verifier tools: 0 = clean (suppressed findings are
// still clean), 1 = at least one active finding, 2 = usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/cli.hpp"
#include "common/status.hpp"
#include "lint/lint.hpp"

namespace fs = std::filesystem;
using ioguard::lint::LintCode;

namespace {

// Assembled at runtime so the linter never mistakes this string for a real
// suppression marker when scanning its own CLI.
const std::string kAllowMarker = std::string("IOGUARD_LINT_") + "ALLOW";

[[nodiscard]] bool is_cpp_source(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

/// Expands files/directories into a sorted, deduplicated list of sources.
[[nodiscard]] ioguard::StatusOr<std::vector<std::string>> collect_sources(
    const std::vector<std::string>& paths) {
  std::vector<std::string> out;
  for (const std::string& p : paths) {
    std::error_code ec;
    const fs::file_status st = fs::status(p, ec);
    if (ec || st.type() == fs::file_type::not_found)
      return ioguard::InvalidArgumentError("no such file or directory: " + p);
    if (fs::is_directory(st)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && is_cpp_source(it->path()))
          out.push_back(it->path().generic_string());
      }
      if (ec)
        return ioguard::UnavailableError("cannot walk directory " + p + ": " +
                                         ec.message());
    } else {
      out.push_back(fs::path(p).generic_string());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void print_code_table(std::ostream& os) {
  os << "ioguard_lint codes (stable; suppress inline with\n"
     << "  // " << kAllowMarker << "(LNTxxx: reason)\n"
     << "covering the marker's line and the next):\n\n";
  for (std::size_t v = 1; v <= ioguard::lint::kLintCodeCount; ++v) {
    const auto code = static_cast<LintCode>(v);
    os << "  " << ioguard::lint::code_string(code) << "  "
       << ioguard::lint::code_summary(code) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  ioguard::CliSpec spec(
      "scan C++ sources for determinism and artifact-safety violations");
  spec.flag("json", "", "also write a machine-readable report to this path")
      .flag_switch("list-codes", "print the LNTxxx code table and exit")
      .flag_switch("quiet", "print only the summary line, not each finding")
      .positional("path", "file or directory to scan (directories recurse)");

  const auto args = spec.parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "ioguard_lint: " << args.status() << "\n";
    return 2;
  }
  if (args->help_requested()) {
    std::cout << spec.help_text(args->program());
    return 0;
  }
  if (args->get_bool("list-codes")) {
    print_code_table(std::cout);
    return 0;
  }
  if (args->positional().empty()) {
    std::cerr << "ioguard_lint: no paths given (try --help)\n";
    return 2;
  }

  const auto sources = collect_sources(args->positional());
  if (!sources.ok()) {
    std::cerr << "ioguard_lint: " << sources.status() << "\n";
    return 2;
  }

  ioguard::lint::Linter linter;
  for (const std::string& file : *sources) {
    if (!linter.scan_file(file)) {
      std::cerr << "ioguard_lint: cannot read " << file << "\n";
      return 2;
    }
  }

  if (args->get_bool("quiet")) {
    std::cout << linter.files_scanned() << " file(s) scanned, "
              << linter.active_count() << " active finding(s), "
              << linter.suppressed_count() << " suppressed\n";
  } else {
    linter.render_text(std::cout);
  }

  const std::string json_path = args->get("json");
  if (!json_path.empty()) {
    ioguard::AtomicFileWriter writer{fs::path(json_path)};
    linter.render_json(writer.stream());
    if (const ioguard::Status st = writer.commit(); !st.ok()) {
      std::cerr << "ioguard_lint: cannot write " << json_path << ": " << st
                << "\n";
      return 2;
    }
  }

  return linter.active_count() == 0 ? 0 : 1;
}
