// FlexRay bus model: TDMA communication cycle with a static segment
// (time-triggered slots bound to frame ids) and a dynamic segment
// (minislot-based priority access for event-triggered frames).
//
// FlexRay is the case study's result channel (10 Mbit/s). The static
// segment is the bus-level analogue of the paper's Time Slot Table: a frame
// bound to static slot s transmits at a known offset every cycle with zero
// jitter, while dynamic frames contend by frame id. The model exposes
// worst-case latency formulas and a cycle-accurate simulation that tests
// cross-check.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ioguard::iodev {

struct FlexRayConfig {
  std::uint64_t bitrate_bps = 10'000'000;
  std::uint32_t static_slots = 20;       ///< slots per static segment
  std::uint32_t static_slot_bits = 280;  ///< fits a 16-byte static frame
  std::uint32_t minislots = 40;          ///< dynamic segment minislots
  std::uint32_t minislot_bits = 10;
  std::uint32_t dynamic_frame_bits = 280;///< one dynamic frame's duration

  /// Communication cycle length in bit-times.
  [[nodiscard]] std::uint64_t cycle_bits() const {
    return static_cast<std::uint64_t>(static_slots) * static_slot_bits +
           static_cast<std::uint64_t>(minislots) * minislot_bits;
  }
  /// Cycle length in microseconds.
  [[nodiscard]] double cycle_us() const {
    return static_cast<double>(cycle_bits()) * 1e6 /
           static_cast<double>(bitrate_bps);
  }
};

/// A static-segment reservation: frame id == slot number (FlexRay rule).
struct FlexRayStaticFrame {
  std::uint32_t slot = 1;        ///< 1-based static slot
  std::uint32_t period_cycles = 1;  ///< transmit every N communication cycles
  std::string name;
};

/// A dynamic-segment frame stream: lower frame id = earlier minislot = wins.
struct FlexRayDynamicFrame {
  std::uint32_t frame_id = 1;    ///< 1-based dynamic priority
  std::uint64_t period_us = 0;   ///< generation period
  std::string name;
};

/// Worst-case latency of a static frame (us): release just after its slot
/// passed => wait (period_cycles - 1) full cycles + one cycle to its slot.
[[nodiscard]] double flexray_static_worst_latency_us(
    const FlexRayConfig& bus, const FlexRayStaticFrame& frame);

/// Whether a dynamic frame can be *guaranteed* to transmit in the cycle it
/// becomes ready, assuming all higher-priority dynamic frames also transmit:
/// the minislot counter must still be within the dynamic segment when its
/// turn comes (pLatestTx rule).
[[nodiscard]] bool flexray_dynamic_guaranteed(
    const FlexRayConfig& bus,
    const std::vector<FlexRayDynamicFrame>& frames, std::uint32_t frame_id);

/// Cycle-accurate simulation of the TDMA schedule.
class FlexRayBusSim {
 public:
  FlexRayBusSim(const FlexRayConfig& bus,
                std::vector<FlexRayStaticFrame> static_frames,
                std::vector<FlexRayDynamicFrame> dynamic_frames);

  struct Result {
    std::vector<std::uint64_t> static_sent;       ///< per static frame
    std::vector<std::uint64_t> dynamic_sent;      ///< per dynamic frame
    std::vector<double> dynamic_worst_latency_us; ///< release -> tx end
    std::uint64_t dynamic_deferrals = 0;  ///< frames pushed to a later cycle
  };
  [[nodiscard]] Result run(std::uint64_t horizon_us);

 private:
  FlexRayConfig bus_;
  std::vector<FlexRayStaticFrame> static_frames_;
  std::vector<FlexRayDynamicFrame> dynamic_frames_;
};

}  // namespace ioguard::iodev
