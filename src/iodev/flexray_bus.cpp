#include "iodev/flexray_bus.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ioguard::iodev {

double flexray_static_worst_latency_us(const FlexRayConfig& bus,
                                       const FlexRayStaticFrame& frame) {
  IOGUARD_CHECK(frame.slot >= 1 && frame.slot <= bus.static_slots);
  IOGUARD_CHECK(frame.period_cycles >= 1);
  // Released immediately after its slot started: waits the rest of this
  // cycle, (period_cycles - 1) skipped cycles, then up to its slot end.
  const double cycle = bus.cycle_us();
  const double slot_end = static_cast<double>(frame.slot) *
                          static_cast<double>(bus.static_slot_bits) * 1e6 /
                          static_cast<double>(bus.bitrate_bps);
  return cycle * static_cast<double>(frame.period_cycles) + slot_end;
}

bool flexray_dynamic_guaranteed(
    const FlexRayConfig& bus,
    const std::vector<FlexRayDynamicFrame>& frames, std::uint32_t frame_id) {
  // Worst case: every dynamic frame with a lower id transmits first. Each
  // transmission consumes ceil(frame_bits / minislot_bits) minislots; each
  // skipped id consumes one minislot. The target frame must still start
  // within the dynamic segment.
  const std::uint32_t frame_minislots =
      (bus.dynamic_frame_bits + bus.minislot_bits - 1) / bus.minislot_bits;
  std::uint32_t counter = 0;
  for (std::uint32_t id = 1; id <= frame_id; ++id) {
    const bool exists = std::any_of(
        frames.begin(), frames.end(),
        [&](const FlexRayDynamicFrame& f) { return f.frame_id == id; });
    if (id == frame_id) {
      return counter + frame_minislots <= bus.minislots;
    }
    counter += exists ? frame_minislots : 1;  // transmission or empty minislot
    if (counter >= bus.minislots) return false;
  }
  return false;  // frame_id not reached (id 0 or past the loop)
}

FlexRayBusSim::FlexRayBusSim(const FlexRayConfig& bus,
                             std::vector<FlexRayStaticFrame> static_frames,
                             std::vector<FlexRayDynamicFrame> dynamic_frames)
    : bus_(bus),
      static_frames_(std::move(static_frames)),
      dynamic_frames_(std::move(dynamic_frames)) {
  for (const auto& f : static_frames_) {
    IOGUARD_CHECK(f.slot >= 1 && f.slot <= bus_.static_slots);
    IOGUARD_CHECK(f.period_cycles >= 1);
  }
  for (const auto& f : dynamic_frames_) {
    IOGUARD_CHECK(f.frame_id >= 1);
    IOGUARD_CHECK(f.period_us > 0);
  }
}

FlexRayBusSim::Result FlexRayBusSim::run(std::uint64_t horizon_us) {
  Result result;
  result.static_sent.assign(static_frames_.size(), 0);
  result.dynamic_sent.assign(dynamic_frames_.size(), 0);
  result.dynamic_worst_latency_us.assign(dynamic_frames_.size(), 0.0);

  const double cycle_us = bus_.cycle_us();
  const double us_per_bit = 1e6 / static_cast<double>(bus_.bitrate_bps);
  const double static_segment_us =
      static_cast<double>(bus_.static_slots) *
      static_cast<double>(bus_.static_slot_bits) * us_per_bit;
  const std::uint32_t frame_minislots =
      (bus_.dynamic_frame_bits + bus_.minislot_bits - 1) / bus_.minislot_bits;

  // Pending releases per dynamic frame (release time, FIFO).
  std::vector<std::deque<double>> pending(dynamic_frames_.size());
  std::vector<double> next_release(dynamic_frames_.size(), 0.0);

  const auto cycles =
      static_cast<std::uint64_t>(static_cast<double>(horizon_us) / cycle_us);
  for (std::uint64_t c = 0; c < cycles; ++c) {
    const double cycle_start = static_cast<double>(c) * cycle_us;

    // Static segment: slot s transmits when its frame's period divides c.
    for (std::size_t i = 0; i < static_frames_.size(); ++i)
      if (c % static_frames_[i].period_cycles == 0)
        ++result.static_sent[i];

    // Release dynamic frames up to the end of this cycle's static segment
    // (frames released later catch the dynamic segment of the next cycle in
    // the worst case; this keeps the model conservative and simple).
    for (std::size_t i = 0; i < dynamic_frames_.size(); ++i) {
      while (next_release[i] <= cycle_start + static_segment_us) {
        pending[i].push_back(next_release[i]);
        next_release[i] += static_cast<double>(dynamic_frames_[i].period_us);
      }
    }

    // Dynamic segment: walk minislots in frame-id order.
    std::vector<std::size_t> order(dynamic_frames_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return dynamic_frames_[a].frame_id < dynamic_frames_[b].frame_id;
    });

    std::uint32_t counter = 0;
    const double dyn_start = cycle_start + static_segment_us;
    for (std::size_t idx : order) {
      if (pending[idx].empty()) {
        counter += 1;  // empty minislot
        continue;
      }
      if (counter + frame_minislots > bus_.minislots) {
        ++result.dynamic_deferrals;  // pLatestTx exceeded: wait a cycle
        continue;
      }
      const double release = pending[idx].front();
      pending[idx].pop_front();
      counter += frame_minislots;
      const double tx_end =
          dyn_start + static_cast<double>(counter) *
                          static_cast<double>(bus_.minislot_bits) * us_per_bit;
      ++result.dynamic_sent[idx];
      result.dynamic_worst_latency_us[idx] = std::max(
          result.dynamic_worst_latency_us[idx], tx_end - release);
    }
  }
  return result;
}

}  // namespace ioguard::iodev
