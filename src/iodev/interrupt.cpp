#include "iodev/interrupt.hpp"

#include "common/check.hpp"

namespace ioguard::iodev {

InterruptController::InterruptController(const InterruptConfig& config)
    : config_(config), lines_(config.lines) {
  IOGUARD_CHECK(config.lines > 0);
  IOGUARD_CHECK(config.dispatch_cycles > 0);
}

void InterruptController::raise(std::uint32_t line, Cycle now) {
  IOGUARD_CHECK(line < lines_.size());
  Line& l = lines_[line];
  if (!l.raised) {
    l.raised = true;
    l.first_raised_at = now;
    l.count = 0;
  }
  ++l.count;
}

void InterruptController::set_mask(std::uint32_t line, bool masked) {
  IOGUARD_CHECK(line < lines_.size());
  lines_[line].masked = masked;
}

bool InterruptController::masked(std::uint32_t line) const {
  IOGUARD_CHECK(line < lines_.size());
  return lines_[line].masked;
}

bool InterruptController::pending() const {
  if (in_flight_) return true;
  for (const auto& l : lines_)
    if (l.raised) return true;  // masked-but-raised still counts as pending
  return false;
}

sim::Activity InterruptController::tick(Cycle now) {
  if (in_flight_) {
    if (now < dispatch_done_at_) return activity();
    Line& l = lines_[*in_flight_];
    InterruptEvent e;
    e.line = *in_flight_;
    e.raised_count = l.count;
    e.first_raised_at = l.first_raised_at;
    e.delivered_at = now;
    l.raised = false;
    l.count = 0;
    in_flight_.reset();
    ++delivered_;
    if (handler_) handler_(e);
    return activity();
  }

  // Highest priority = lowest line index among raised & unmasked lines whose
  // coalescing window has elapsed.
  for (std::uint32_t i = 0; i < lines_.size(); ++i) {
    Line& l = lines_[i];
    if (!l.raised || l.masked) continue;
    if (config_.coalesce_window > 0 &&
        now < l.first_raised_at + config_.coalesce_window)
      continue;
    in_flight_ = i;
    dispatch_done_at_ = now + config_.dispatch_cycles;
    return activity();
  }
  return activity();
}

}  // namespace ioguard::iodev
