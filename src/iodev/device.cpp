#include "iodev/device.hpp"

#include "common/check.hpp"

namespace ioguard::iodev {

const char* to_string(DeviceKind k) {
  switch (k) {
    case DeviceKind::kEthernet: return "ethernet";
    case DeviceKind::kFlexRay: return "flexray";
    case DeviceKind::kCan: return "can";
    case DeviceKind::kSpi: return "spi";
    case DeviceKind::kI2c: return "i2c";
    case DeviceKind::kUart: return "uart";
    case DeviceKind::kGpio: return "gpio";
  }
  return "?";
}

const std::vector<DeviceSpec>& device_catalog() {
  static const std::vector<DeviceSpec> catalog = {
      // kind, name, bandwidth (bit/s), fixed per-op cycles (@100 MHz), frame
      {DeviceKind::kEthernet, "eth0", 1'000'000'000, 100, 1500},  // 1 Gbps, 1 us setup
      {DeviceKind::kFlexRay, "flexray0", 10'000'000, 200, 254},   // 10 Mbps
      {DeviceKind::kCan, "can0", 1'000'000, 150, 8},              // CAN 2.0
      {DeviceKind::kSpi, "spi0", 50'000'000, 80, 4096},           // 50 MHz SPI
      {DeviceKind::kI2c, "i2c0", 400'000, 300, 256},              // fast-mode I2C
      {DeviceKind::kUart, "uart0", 1'000'000, 100, 64},
      {DeviceKind::kGpio, "gpio0", 0, 10, 4},                     // register poke
  };
  return catalog;
}

const DeviceSpec& device_spec(DeviceKind kind) {
  for (const auto& spec : device_catalog())
    if (spec.kind == kind) return spec;
  IOGUARD_CHECK_MSG(false, "unknown device kind");
  __builtin_unreachable();
}

Cycle service_cycles(const DeviceSpec& spec, std::uint32_t payload_bytes) {
  Cycle serialization = 0;
  if (spec.bandwidth_bps > 0 && payload_bytes > 0) {
    // bits / (bits per second) * cycles per second
    const double seconds = static_cast<double>(payload_bytes) * 8.0 /
                           static_cast<double>(spec.bandwidth_bps);
    serialization = static_cast<Cycle>(seconds * static_cast<double>(kClockHz));
  }
  return spec.fixed_op_cycles + serialization;
}

Slot service_slots(const DeviceSpec& spec, std::uint32_t payload_bytes,
                   Cycle cycles_per_slot) {
  IOGUARD_CHECK(cycles_per_slot > 0);
  const Cycle c = service_cycles(spec, payload_bytes);
  return (c + cycles_per_slot - 1) / cycles_per_slot;
}

}  // namespace ioguard::iodev
