// Interrupt controller model with fixed priorities, masking and optional
// coalescing.
//
// The legacy I/O path signals completions through interrupts whose delivery
// latency adds to the response path; coalescing (batching completions to cut
// CPU overhead) trades latency for throughput -- one of the software-stack
// effects the paper's hardware response channel eliminates.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace ioguard::iodev {

struct InterruptConfig {
  std::size_t lines = 16;
  Cycle dispatch_cycles = 30;     ///< controller prioritization + CPU entry
  Cycle coalesce_window = 0;      ///< 0 = immediate; else batch window
};

/// One delivered interrupt.
struct InterruptEvent {
  std::uint32_t line = 0;
  std::uint64_t raised_count = 1;  ///< events folded by coalescing
  Cycle first_raised_at = 0;
  Cycle delivered_at = 0;

  [[nodiscard]] Cycle latency() const { return delivered_at - first_raised_at; }
};

class InterruptController : public sim::Tickable {
 public:
  explicit InterruptController(const InterruptConfig& config);

  /// Raises line `line` at time `now` (edge; multiple raises fold).
  void raise(std::uint32_t line, Cycle now);

  void set_mask(std::uint32_t line, bool masked);
  [[nodiscard]] bool masked(std::uint32_t line) const;

  using Handler = std::function<void(const InterruptEvent&)>;
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  sim::Activity tick(Cycle now) override;
  [[nodiscard]] std::string name() const override { return "intc"; }
  [[nodiscard]] sim::Activity activity() const override {
    return pending() || in_flight_ ? sim::Activity::kBusy
                                   : sim::Activity::kQuiescent;
  }

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] bool pending() const;

 private:
  struct Line {
    bool masked = false;
    bool raised = false;
    std::uint64_t count = 0;
    Cycle first_raised_at = 0;
  };

  InterruptConfig config_;
  std::vector<Line> lines_;
  std::optional<std::uint32_t> in_flight_;  ///< line being dispatched
  Cycle dispatch_done_at_ = 0;
  std::uint64_t delivered_ = 0;
  Handler handler_;
};

}  // namespace ioguard::iodev
