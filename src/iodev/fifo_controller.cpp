#include "iodev/fifo_controller.hpp"

#include "common/check.hpp"

namespace ioguard::iodev {

FifoController::FifoController(std::size_t queue_capacity,
                               Slot dispatch_overhead_slots)
    : capacity_(queue_capacity), dispatch_overhead_(dispatch_overhead_slots) {
  IOGUARD_CHECK(queue_capacity > 0);
}

bool FifoController::enqueue(const workload::Job& job, Slot now) {
  if (queue_.size() >= capacity_) {
    ++rejected_;
    return false;
  }
  queue_.push_back(Request{job, now});
  return true;
}

std::optional<Completion> FifoController::tick_slot(Slot now) {
  if (injector_ != nullptr) {
    if (stall_remaining_ == 0) {
      stall_remaining_ = injector_->device_stall_begins(fault_site_);
    }
    if (stall_remaining_ > 0) {
      // No watchdog here: the FIFO head (and everything behind it) waits
      // out the whole stall.
      --stall_remaining_;
      ++stalled_slots_;
      ++profile_stall_slots_;
      return std::nullopt;
    }
  }
  if (!current_ && !queue_.empty()) {
    Request r = queue_.front();
    queue_.pop_front();
    current_ = Active{r, r.job.wcet + dispatch_overhead_};
  }
  if (!current_) {
    ++profile_quiescent_slots_;
    return std::nullopt;
  }

  ++busy_slots_;
  if (--current_->remaining == 0) {
    if (injector_ != nullptr && (injector_->drop_frame(fault_site_) ||
                                 injector_->corrupt_frame(fault_site_))) {
      // Lost/corrupt frame with no retransmission: the job silently never
      // completes (the system layer accounts the deadline miss).
      ++frames_lost_;
      current_.reset();
      return std::nullopt;
    }
    Completion done;
    done.job = current_->request.job;
    done.enqueued_at = current_->request.enqueued_at;
    done.completed_at = now + 1;
    if (jitter_ != nullptr)
      jitter_->record(JitterChannel::kFifo, done.job.vm, done.job.task,
                      done.job.release + done.job.wcet + dispatch_overhead_,
                      done.completed_at);
    ++jobs_completed_;
    bytes_completed_ += done.job.payload_bytes;
    current_.reset();
    return done;
  }
  return std::nullopt;
}

}  // namespace ioguard::iodev
