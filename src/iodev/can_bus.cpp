#include "iodev/can_bus.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.hpp"

namespace ioguard::iodev {

std::uint64_t can_frame_bits(std::uint8_t dlc, bool worst_case_stuffing) {
  IOGUARD_CHECK(dlc <= 8);
  // Standard (11-bit id) data frame: 34 control bits + 8s data bits + 13
  // bits of interframe space / EOF not subject to stuffing. Worst-case
  // stuffing adds floor((34 + 8s - 1) / 4) bits (Davis et al. 2007).
  const std::uint64_t g = 34;
  const std::uint64_t data = 8ull * dlc;
  std::uint64_t bits = g + data + 13;
  if (worst_case_stuffing) bits += (g + data - 1) / 4;
  return bits;
}

double can_frame_us(const CanBusConfig& bus, std::uint8_t dlc,
                    bool worst_case_stuffing) {
  IOGUARD_CHECK(bus.bitrate_bps > 0);
  return static_cast<double>(can_frame_bits(dlc, worst_case_stuffing)) * 1e6 /
         static_cast<double>(bus.bitrate_bps);
}

double can_utilization(const CanBusConfig& bus,
                       const std::vector<CanMessage>& messages) {
  double u = 0.0;
  for (const auto& m : messages)
    u += can_frame_us(bus, m.dlc, bus.extended_stuffing) /
         static_cast<double>(m.period_us);
  return u;
}

std::vector<CanRta> can_response_times(
    const CanBusConfig& bus, const std::vector<CanMessage>& messages) {
  std::vector<CanRta> out(messages.size());
  const double tau_bit = 1e6 / static_cast<double>(bus.bitrate_bps);

  for (std::size_t m = 0; m < messages.size(); ++m) {
    const auto& msg = messages[m];
    const double c_m = can_frame_us(bus, msg.dlc, bus.extended_stuffing);

    // B_m: longest frame among strictly lower-priority (higher id) messages.
    double blocking = 0.0;
    for (const auto& other : messages)
      if (other.id > msg.id)
        blocking = std::max(blocking,
                            can_frame_us(bus, other.dlc, bus.extended_stuffing));

    // Fixed-point iteration: w = B + sum_{hp} ceil((w + tau_bit)/T_j) * C_j.
    double w = blocking;
    bool converged = false;
    const double deadline = static_cast<double>(msg.deadline_us);
    for (int iter = 0; iter < 10000; ++iter) {
      double next = blocking;
      for (const auto& hp : messages) {
        if (hp.id >= msg.id) continue;  // same or lower priority
        const double c_j = can_frame_us(bus, hp.dlc, bus.extended_stuffing);
        next += std::ceil((w + tau_bit) / static_cast<double>(hp.period_us)) *
                c_j;
      }
      if (std::abs(next - w) < 1e-9) {
        converged = true;
        w = next;
        break;
      }
      w = next;
      if (w + c_m > deadline) break;  // already past the deadline
    }

    out[m].blocking_us = blocking;
    out[m].queueing_us = w;
    out[m].response_us = w + c_m;
    out[m].schedulable = converged && out[m].response_us <= deadline;
  }
  return out;
}

CanBusSim::CanBusSim(const CanBusConfig& bus, std::vector<CanMessage> messages)
    : bus_(bus), messages_(std::move(messages)) {
  IOGUARD_CHECK(!messages_.empty());
  for (const auto& m : messages_) {
    IOGUARD_CHECK(m.period_us > 0);
    IOGUARD_CHECK(m.deadline_us > 0 && m.deadline_us <= m.period_us);
  }
}

CanBusSim::Result CanBusSim::run(std::uint64_t horizon_us) {
  // Event-driven in nanoseconds to keep frame times exact at 1 Mbit/s.
  const auto horizon_ns = horizon_us * 1000;
  struct Pending {
    std::size_t msg;
    std::uint64_t queued_ns;
    std::uint64_t deadline_ns;
  };
  // Arbitration: lowest identifier first; FIFO within a stream.
  auto lower_priority = [&](const Pending& a, const Pending& b) {
    if (messages_[a.msg].id != messages_[b.msg].id)
      return messages_[a.msg].id > messages_[b.msg].id;
    return a.queued_ns > b.queued_ns;
  };
  std::priority_queue<Pending, std::vector<Pending>, decltype(lower_priority)>
      ready(lower_priority);

  std::vector<std::uint64_t> next_release_ns(messages_.size(), 0);
  std::vector<std::uint64_t> frame_ns(messages_.size());
  for (std::size_t m = 0; m < messages_.size(); ++m)
    frame_ns[m] = can_frame_bits(messages_[m].dlc, bus_.extended_stuffing) *
                  1'000'000'000ull / bus_.bitrate_bps;

  Result result;
  result.worst_response_us.assign(messages_.size(), 0.0);
  result.frames_sent.assign(messages_.size(), 0);

  std::uint64_t now = 0;
  std::uint64_t busy_ns = 0;
  while (now < horizon_ns) {
    // Queue all releases up to `now`.
    for (std::size_t m = 0; m < messages_.size(); ++m) {
      while (next_release_ns[m] <= now) {
        ready.push(Pending{m, next_release_ns[m],
                           next_release_ns[m] +
                               messages_[m].deadline_us * 1000});
        next_release_ns[m] += messages_[m].period_us * 1000;
      }
    }
    if (ready.empty()) {
      // Idle until the next release.
      std::uint64_t next = horizon_ns;
      for (std::size_t m = 0; m < messages_.size(); ++m)
        next = std::min(next, next_release_ns[m]);
      now = next;
      continue;
    }
    // Arbitration happens at bus-idle: the lowest pending id wins and
    // transmits non-preemptively.
    const Pending winner = ready.top();
    ready.pop();
    const std::uint64_t done = now + frame_ns[winner.msg];
    busy_ns += frame_ns[winner.msg];
    const auto response_ns = done - winner.queued_ns;
    auto& worst = result.worst_response_us[winner.msg];
    worst = std::max(worst, static_cast<double>(response_ns) / 1000.0);
    ++result.frames_sent[winner.msg];
    if (done > winner.deadline_ns) ++result.deadline_misses;
    now = done;
  }
  result.bus_busy_frac =
      static_cast<double>(busy_ns) / static_cast<double>(horizon_ns);
  return result;
}

}  // namespace ioguard::iodev
