#include "iodev/dma.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ioguard::iodev {

DmaEngine::DmaEngine(const DmaConfig& config)
    : config_(config), channels_(config.channels) {
  IOGUARD_CHECK(config.channels > 0);
  IOGUARD_CHECK(config.burst_bytes > 0);
  IOGUARD_CHECK(config.cycles_per_burst > 0);
  IOGUARD_CHECK(config.queue_depth > 0);
}

bool DmaEngine::submit(DmaDescriptor descriptor, Cycle now) {
  IOGUARD_CHECK(descriptor.channel < channels_.size());
  IOGUARD_CHECK(descriptor.bytes > 0);
  Channel& ch = channels_[descriptor.channel];
  if (ch.ring.size() >= config_.queue_depth) {
    ++rejected_;
    return false;
  }
  ch.ring.emplace_back(descriptor, now);
  return true;
}

std::size_t DmaEngine::backlog(std::uint32_t channel) const {
  IOGUARD_CHECK(channel < channels_.size());
  const Channel& ch = channels_[channel];
  return ch.ring.size() + (ch.active ? 1 : 0);
}

bool DmaEngine::idle() const {
  for (const auto& ch : channels_)
    if (!ch.ring.empty() || ch.active) return false;
  return true;
}

std::optional<std::uint32_t> DmaEngine::arbitrate() {
  auto has_work = [&](std::uint32_t c) {
    const Channel& ch = channels_[c];
    return ch.active.has_value() || !ch.ring.empty();
  };
  switch (config_.arbitration) {
    case DmaArbitration::kFixedPriority:
      for (std::uint32_t c = 0; c < channels_.size(); ++c)
        if (has_work(c)) return c;
      return std::nullopt;
    case DmaArbitration::kRoundRobin:
      for (std::uint32_t k = 0; k < channels_.size(); ++k) {
        const std::uint32_t c =
            (rr_next_ + k) % static_cast<std::uint32_t>(channels_.size());
        if (has_work(c)) {
          rr_next_ = (c + 1) % static_cast<std::uint32_t>(channels_.size());
          return c;
        }
      }
      return std::nullopt;
  }
  return std::nullopt;
}

sim::Activity DmaEngine::tick(Cycle now) {
  // Arbitration happens at burst boundaries: once a burst starts, the memory
  // port belongs to that channel until the burst's cycles elapse.
  if (!bus_owner_) {
    const auto winner = arbitrate();
    if (!winner) return activity();
    bus_owner_ = winner;
    Channel& ch = channels_[*winner];
    if (!ch.active) {
      auto [desc, enq] = ch.ring.front();
      ch.ring.pop_front();
      Active a;
      a.descriptor = desc;
      a.enqueued_at = enq;
      a.bytes_left = desc.bytes;
      a.setup_cycles_left = config_.setup_cycles;
      ch.active = a;
    }
    Active& a = *ch.active;
    if (a.setup_done || a.setup_cycles_left == 0) {
      a.setup_done = true;
      a.burst_cycles_left = config_.cycles_per_burst;
    }
  }

  Channel& ch = channels_[*bus_owner_];
  IOGUARD_CHECK(ch.active.has_value());
  Active& a = *ch.active;

  if (!a.setup_done) {
    if (--a.setup_cycles_left == 0) a.setup_done = true;
    if (a.setup_done) a.burst_cycles_left = config_.cycles_per_burst;
    return activity();
  }

  IOGUARD_CHECK(a.burst_cycles_left > 0);
  if (--a.burst_cycles_left == 0) {
    const std::uint32_t moved = std::min(a.bytes_left, config_.burst_bytes);
    a.bytes_left -= moved;
    bytes_moved_ += moved;
    if (a.bytes_left == 0) {
      DmaCompletion done;
      done.descriptor = a.descriptor;
      done.enqueued_at = a.enqueued_at;
      done.completed_at = now + 1;
      ch.active.reset();
      ++completed_;
      if (on_complete_) on_complete_(done);
    }
    bus_owner_.reset();  // re-arbitrate at the next burst boundary
  }
  return activity();
}

}  // namespace ioguard::iodev
