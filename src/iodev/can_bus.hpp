// CAN 2.0A bus model with identifier-based arbitration, plus the classical
// non-preemptive fixed-priority response-time analysis (Davis et al.,
// "Controller Area Network (CAN) schedulability analysis", RTSJ 2007).
//
// The case study's safety tasks ride on CAN; this substrate models what the
// paper's FIFO-vs-scheduled comparison abstracts away: on the physical bus,
// the *identifier* decides who wins arbitration, and a frame in flight is
// never preempted. The analysis gives per-message worst-case response times
// that tests cross-check against the bit-level simulation.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ioguard::iodev {

/// Static description of a periodic CAN message stream.
struct CanMessage {
  std::uint32_t id = 0;       ///< 11-bit identifier; lower wins arbitration
  std::uint8_t dlc = 8;       ///< data length code, 0..8 bytes
  std::uint64_t period_us = 0;///< transmission period
  std::uint64_t deadline_us = 0;  ///< relative deadline (<= period)
  std::string name;
};

/// Bus-level configuration.
struct CanBusConfig {
  std::uint64_t bitrate_bps = 1'000'000;  ///< CAN high-speed: 1 Mbit/s
  bool extended_stuffing = true;          ///< account worst-case bit stuffing
};

/// Worst-case frame transmission time in bit-times: standard frame with
/// worst-case stuffing: C_m = (55 + 10 * s_m) / 47-ish; we use the exact
/// Davis et al. formula: C = (g + 8*s + 13 + floor((g + 8*s - 1) / 4)) where
/// g = 34 control bits for standard ids.
[[nodiscard]] std::uint64_t can_frame_bits(std::uint8_t dlc,
                                           bool worst_case_stuffing = true);

/// Frame time in microseconds at the configured bitrate.
[[nodiscard]] double can_frame_us(const CanBusConfig& bus, std::uint8_t dlc,
                                  bool worst_case_stuffing = true);

/// Response-time analysis result for one message stream.
struct CanRta {
  bool schedulable = false;
  double blocking_us = 0.0;   ///< B_m: longest lower-priority frame
  double queueing_us = 0.0;   ///< w_m: worst-case queueing delay
  double response_us = 0.0;   ///< R_m = w_m + C_m
};

/// Non-preemptive fixed-priority (by identifier) response-time analysis for
/// the message set. Returns one entry per message, same order as input.
/// Messages with R > D are flagged unschedulable (iteration also aborts when
/// the bus is over-utilized).
[[nodiscard]] std::vector<CanRta> can_response_times(
    const CanBusConfig& bus, const std::vector<CanMessage>& messages);

/// Total bus utilization of the message set.
[[nodiscard]] double can_utilization(const CanBusConfig& bus,
                                     const std::vector<CanMessage>& messages);

/// Bit-level behavioural simulation of the bus: periodic queueing of frames,
/// identifier arbitration at every bus-idle instant, non-preemptive
/// transmission. Time unit: microseconds (double accumulation avoided by
/// using integer nanoseconds internally).
class CanBusSim {
 public:
  CanBusSim(const CanBusConfig& bus, std::vector<CanMessage> messages);

  /// Runs until `horizon_us`; returns per-message worst observed response
  /// time (us), same order as the message set.
  struct Result {
    std::vector<double> worst_response_us;
    std::vector<std::uint64_t> frames_sent;
    std::uint64_t deadline_misses = 0;
    double bus_busy_frac = 0.0;
  };
  [[nodiscard]] Result run(std::uint64_t horizon_us);

  [[nodiscard]] const std::vector<CanMessage>& messages() const {
    return messages_;
  }

 private:
  CanBusConfig bus_;
  std::vector<CanMessage> messages_;
};

}  // namespace ioguard::iodev
