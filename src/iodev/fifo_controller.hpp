// Legacy FIFO I/O controller (slot-level behavioural model).
//
// "The implementation of traditional I/O controllers relies on FIFO queues,
// which forbids context switches at the hardware level" (Sec. I). Jobs are
// served strictly in arrival order and non-preemptively: once started, a job
// occupies the device until its service demand is exhausted. This is the
// I/O-side behaviour of BS|Legacy, BS|RT-XEN (backend) and BS|BV.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "common/jitter.hpp"
#include "common/types.hpp"
#include "faults/injector.hpp"
#include "workload/task.hpp"

namespace ioguard::iodev {

/// A queued request: which job wants how many device slots.
struct Request {
  workload::Job job;
  Slot enqueued_at = 0;
};

/// Completion record produced when a job's last slot of service finishes.
struct Completion {
  workload::Job job;
  Slot enqueued_at = 0;
  Slot completed_at = 0;  ///< slot index after which the job is done
  [[nodiscard]] bool missed() const {
    return completed_at > job.absolute_deadline;
  }
};

class FifoController {
 public:
  /// `queue_capacity` models the hardware FIFO depth; pushes beyond it are
  /// rejected (counted, job lost => deadline miss at the system layer).
  /// `dispatch_overhead_slots` is the per-job controller setup / framing
  /// occupancy added to the payload service time (same physical device cost
  /// the I/O-GUARD virtualization driver pays).
  explicit FifoController(std::size_t queue_capacity = 64,
                          Slot dispatch_overhead_slots = 0);

  /// Enqueues a request at slot `now`; false when the FIFO is full.
  [[nodiscard]] bool enqueue(const workload::Job& job, Slot now);

  /// Advances one slot; returns the completion finishing in this slot, if any.
  std::optional<Completion> tick_slot(Slot now);

  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] bool busy() const { return current_.has_value(); }
  [[nodiscard]] Slot busy_slots() const { return busy_slots_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  [[nodiscard]] bool idle() const { return queue_.empty() && !current_; }

  /// Telemetry counters: completed jobs and their cumulative payload.
  [[nodiscard]] std::uint64_t jobs_completed() const { return jobs_completed_; }
  [[nodiscard]] std::uint64_t bytes_completed() const {
    return bytes_completed_;
  }

  /// Attaches a fault injector (not owned); `site` keys this controller's
  /// fault RNG streams. Legacy controllers have *no* resilience: a stall
  /// just blocks the head of line, a lost frame is simply gone -- the
  /// contrast the I/O-GUARD watchdog/retry path is measured against.
  void set_fault_injector(faults::FaultInjector* injector, std::size_t site) {
    injector_ = injector;
    fault_site_ = site;
  }

  [[nodiscard]] std::uint64_t stalled_slots() const { return stalled_slots_; }
  [[nodiscard]] std::uint64_t frames_lost() const { return frames_lost_; }

  /// Attaches a jitter recorder (not owned; nullptr detaches). Completions
  /// record their deviation from release + wcet + dispatch overhead (the
  /// unloaded service demand) on the "fifo" channel.
  void set_jitter_recorder(JitterRecorder* recorder) { jitter_ = recorder; }

  // ---- Cycle attribution (DESIGN.md §14): busy (busy_slots()) + stall +
  // quiescent partition the ticks exactly. -------------------------------
  /// Slots lost to an injected device stall while wedged or blocked.
  [[nodiscard]] std::uint64_t profile_stall_slots() const {
    return profile_stall_slots_;
  }
  /// Slots with an empty FIFO and no job in service.
  [[nodiscard]] std::uint64_t profile_quiescent_slots() const {
    return profile_quiescent_slots_;
  }

  // ---- Event-driven runner support (DESIGN.md §15). ----------------------
  /// Earliest slot >= `from` at which ticking could do anything: `from`
  /// while work is queued or in service, kNeverSlot when idle. With a fault
  /// injector attached every slot draws stall RNG, so the hint degenerates
  /// to `from` (faulted runs never skip).
  [[nodiscard]] Slot next_busy_slot(Slot from) const {
    if (injector_ != nullptr) return from;
    return idle() ? kNeverSlot : from;
  }

  /// Batch attribution for slots the runner proved quiescent and skipped.
  void note_skipped_slots(std::uint64_t n) { profile_quiescent_slots_ += n; }

 private:
  struct Active {
    Request request;
    Slot remaining;
  };

  std::size_t capacity_;
  Slot dispatch_overhead_;
  std::deque<Request> queue_;
  std::optional<Active> current_;
  Slot busy_slots_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t bytes_completed_ = 0;
  faults::FaultInjector* injector_ = nullptr;
  std::size_t fault_site_ = 0;
  Slot stall_remaining_ = 0;
  std::uint64_t stalled_slots_ = 0;
  std::uint64_t frames_lost_ = 0;
  JitterRecorder* jitter_ = nullptr;
  std::uint64_t profile_stall_slots_ = 0;
  std::uint64_t profile_quiescent_slots_ = 0;
};

}  // namespace ioguard::iodev
