// Physical I/O device models.
//
// Devices are characterized by their link bandwidth and a fixed per-operation
// overhead (protocol framing, controller setup). The case study's data plane
// matches the paper: raw inputs arrive over 1 Gbps Ethernet and results leave
// over 10 Mbps FlexRay; safety peripherals sit on CAN / SPI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ioguard::iodev {

enum class DeviceKind : std::uint8_t {
  kEthernet,
  kFlexRay,
  kCan,
  kSpi,
  kI2c,
  kUart,
  kGpio,
};

[[nodiscard]] const char* to_string(DeviceKind k);

/// Static device characteristics.
struct DeviceSpec {
  DeviceKind kind = DeviceKind::kGpio;
  std::string name;
  std::uint64_t bandwidth_bps = 0;  ///< payload bandwidth of the physical link
  Cycle fixed_op_cycles = 0;        ///< per-operation setup/framing overhead
  std::uint32_t max_frame_bytes = 0;///< largest single transfer unit
};

/// Catalog entry lookup (SPI, I2C, UART, GPIO, CAN, Ethernet, FlexRay).
[[nodiscard]] const DeviceSpec& device_spec(DeviceKind kind);

/// All catalog entries.
[[nodiscard]] const std::vector<DeviceSpec>& device_catalog();

/// Cycles to move `payload_bytes` through the device (fixed + serialization).
[[nodiscard]] Cycle service_cycles(const DeviceSpec& spec,
                                   std::uint32_t payload_bytes);

/// Same, rounded up to whole scheduler slots.
[[nodiscard]] Slot service_slots(const DeviceSpec& spec,
                                 std::uint32_t payload_bytes,
                                 Cycle cycles_per_slot = kDefaultCyclesPerSlot);

}  // namespace ioguard::iodev
