// DMA engine model: multi-channel descriptor-driven transfers with either
// fixed-priority or round-robin channel arbitration at burst granularity.
//
// The paper's virtualization driver moves payloads between memory banks and
// the I/O controller; in a deployed system that path is a DMA engine whose
// arbitration policy decides whether one VM's bulk transfer can starve
// another's. This substrate lets tests and ablations quantify that.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace ioguard::iodev {

enum class DmaArbitration : std::uint8_t {
  kFixedPriority,  ///< lowest channel index wins
  kRoundRobin,     ///< rotate between back-logged channels per burst
};

/// One queued transfer.
struct DmaDescriptor {
  std::uint64_t id = 0;
  std::uint32_t channel = 0;
  std::uint32_t bytes = 0;
  std::uint64_t tag = 0;  ///< opaque caller context
};

/// A finished transfer.
struct DmaCompletion {
  DmaDescriptor descriptor;
  Cycle enqueued_at = 0;
  Cycle completed_at = 0;
};

struct DmaConfig {
  std::uint32_t channels = 4;
  std::uint32_t burst_bytes = 64;     ///< arbitration granularity
  Cycle cycles_per_burst = 8;         ///< memory-port service per burst
  Cycle setup_cycles = 12;            ///< per-descriptor programming cost
  DmaArbitration arbitration = DmaArbitration::kRoundRobin;
  std::size_t queue_depth = 16;       ///< descriptors per channel
};

class DmaEngine : public sim::Tickable {
 public:
  explicit DmaEngine(const DmaConfig& config);

  /// Queues a descriptor; false when the channel's descriptor ring is full.
  [[nodiscard]] bool submit(DmaDescriptor descriptor, Cycle now);

  using CompletionHandler = std::function<void(const DmaCompletion&)>;
  void set_completion_handler(CompletionHandler handler) {
    on_complete_ = std::move(handler);
  }

  sim::Activity tick(Cycle now) override;
  [[nodiscard]] std::string name() const override { return "dma"; }
  [[nodiscard]] sim::Activity activity() const override {
    return idle() ? sim::Activity::kQuiescent : sim::Activity::kBusy;
  }

  [[nodiscard]] std::size_t backlog(std::uint32_t channel) const;
  [[nodiscard]] bool idle() const;
  [[nodiscard]] std::uint64_t transfers_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t bytes_moved() const { return bytes_moved_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  struct Active {
    DmaDescriptor descriptor;
    Cycle enqueued_at = 0;
    std::uint32_t bytes_left = 0;
    Cycle burst_cycles_left = 0;
    bool setup_done = false;
    Cycle setup_cycles_left = 0;
  };
  struct Channel {
    std::deque<std::pair<DmaDescriptor, Cycle>> ring;
    std::optional<Active> active;
  };

  /// Picks the channel to receive the next burst slot.
  [[nodiscard]] std::optional<std::uint32_t> arbitrate();

  DmaConfig config_;
  std::vector<Channel> channels_;
  std::uint32_t rr_next_ = 0;
  std::optional<std::uint32_t> bus_owner_;  ///< channel holding the port
  std::uint64_t completed_ = 0;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t rejected_ = 0;
  CompletionHandler on_complete_;
};

}  // namespace ioguard::iodev
