#include "faults/injector.hpp"

namespace ioguard::faults {

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t trial_seed)
    : plan_(plan),
      stream_base_(mix_seed(plan.seed ^ 0xFA117EC7ED5EEDULL, trial_seed)) {
  for (FaultKind k : all_fault_kinds()) {
    const auto i = static_cast<std::size_t>(k);
    rates_[i] = plan_.rate(k);
    params_[i] = plan_.param(k);
  }
}

Rng& FaultInjector::stream(FaultKind kind, std::size_t site) {
  const auto i = static_cast<std::size_t>(kind);
  auto& per_site = streams_[i];
  while (per_site.size() <= site) {
    per_site.emplace_back(
        mix_seed(stream_base_, i + 1, per_site.size()));
  }
  return per_site[site];
}

bool FaultInjector::fire(FaultKind kind, std::size_t site) {
  const auto i = static_cast<std::size_t>(kind);
  if (rates_[i] <= 0.0) return false;
  if (!stream(kind, site).bernoulli(rates_[i])) return false;
  ++injected_[i];
  return true;
}

Slot FaultInjector::device_stall_begins(std::size_t site) {
  if (!fire(FaultKind::kDeviceStall, site)) return 0;
  return params_[static_cast<std::size_t>(FaultKind::kDeviceStall)];
}

bool FaultInjector::drop_frame(std::size_t site) {
  return fire(FaultKind::kDroppedFrame, site);
}

bool FaultInjector::corrupt_frame(std::size_t site) {
  return fire(FaultKind::kCorruptFrame, site);
}

bool FaultInjector::drop_packet(std::size_t site) {
  return fire(FaultKind::kLinkFlitLoss, site);
}

Cycle FaultInjector::translator_overrun(std::size_t site) {
  if (!fire(FaultKind::kTranslatorOverrun, site)) return 0;
  return params_[static_cast<std::size_t>(FaultKind::kTranslatorOverrun)];
}

bool FaultInjector::spurious_interrupt(std::size_t site) {
  return fire(FaultKind::kSpuriousInterrupt, site);
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (auto n : injected_) total += n;
  return total;
}

}  // namespace ioguard::faults
