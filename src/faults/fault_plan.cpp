#include "faults/fault_plan.hpp"

#include <cstdlib>
#include <sstream>

namespace ioguard::faults {

namespace {

struct Canned {
  const char* name;
  const char* spec;  ///< parsed lazily via FaultPlan::parse
};

// Canned plans, referenced by CI's fault matrix and the README quickstart.
// "none" is special-cased to the empty plan (== fault-free baseline).
constexpr Canned kCanned[] = {
    {"none", ""},
    {"device-stall", "stall:rate=0.002,param=12"},
    {"lossy-frames", "drop:rate=0.01;corrupt:rate=0.005"},
    {"noc-flaky", "flit:rate=0.001"},
    {"translator-jitter", "overrun:rate=0.01,param=25"},
    {"mixed",
     "seed=3;stall:rate=0.001,param=10;drop:rate=0.005;flit:rate=0.0005;"
     "overrun:rate=0.005;irq:rate=0.002"},
};

StatusOr<FaultKind> kind_from_token(std::string_view token) {
  for (FaultKind k : all_fault_kinds())
    if (token == spec_token(k)) return k;
  return InvalidArgumentError("unknown fault kind '" + std::string(token) +
                              "' (want stall|drop|corrupt|flit|overrun|irq)");
}

StatusOr<double> parse_rate(std::string_view text) {
  const std::string s(text);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end == nullptr || *end != '\0')
    return InvalidArgumentError("bad fault rate '" + s + "'");
  if (v < 0.0 || v > 1.0)
    return OutOfRangeError("fault rate " + s + " outside [0, 1]");
  return v;
}

StatusOr<std::uint64_t> parse_u64(std::string_view text,
                                  const std::string& what) {
  const std::string s(text);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (s.empty() || end == nullptr || *end != '\0')
    return InvalidArgumentError("bad " + what + " '" + s + "'");
  return static_cast<std::uint64_t>(v);
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const auto pos = text.find(sep);
    if (pos == std::string_view::npos) {
      if (!text.empty()) out.push_back(text);
      return out;
    }
    if (pos > 0) out.push_back(text.substr(0, pos));
    text.remove_prefix(pos + 1);
  }
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceStall: return "device_stall";
    case FaultKind::kDroppedFrame: return "dropped_frame";
    case FaultKind::kCorruptFrame: return "corrupt_frame";
    case FaultKind::kLinkFlitLoss: return "link_flit_loss";
    case FaultKind::kTranslatorOverrun: return "translator_overrun";
    case FaultKind::kSpuriousInterrupt: return "spurious_interrupt";
  }
  return "?";
}

const char* spec_token(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceStall: return "stall";
    case FaultKind::kDroppedFrame: return "drop";
    case FaultKind::kCorruptFrame: return "corrupt";
    case FaultKind::kLinkFlitLoss: return "flit";
    case FaultKind::kTranslatorOverrun: return "overrun";
    case FaultKind::kSpuriousInterrupt: return "irq";
  }
  return "?";
}

std::uint64_t default_param(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceStall: return 10;        // slots of stall
    case FaultKind::kTranslatorOverrun: return 20;  // cycles beyond WCET
    case FaultKind::kDroppedFrame:
    case FaultKind::kCorruptFrame:
    case FaultKind::kLinkFlitLoss:
    case FaultKind::kSpuriousInterrupt:
      return 1;  // magnitude is inherent: one frame / packet / slot
  }
  return 1;
}

double FaultPlan::rate(FaultKind kind) const {
  for (const auto& e : events)
    if (e.kind == kind) return e.rate;
  return 0.0;
}

std::uint64_t FaultPlan::param(FaultKind kind) const {
  for (const auto& e : events)
    if (e.kind == kind && e.param != 0) return e.param;
  return default_param(kind);
}

std::string FaultPlan::spec_string() const {
  if (empty()) return "none";
  std::ostringstream os;
  os << "seed=" << seed;
  for (const auto& e : events) {
    os << ";" << spec_token(e.kind) << ":rate=" << e.rate;
    if (e.param != 0) os << ",param=" << e.param;
  }
  return os.str();
}

StatusOr<FaultPlan> FaultPlan::parse(std::string_view spec) {
  if (spec.empty() || spec == "none") return FaultPlan{};
  // Canned name? (no ':' or ';' or '=' in canned names)
  if (spec.find(':') == std::string_view::npos &&
      spec.find('=') == std::string_view::npos) {
    return canned(spec);
  }

  // Split on ';' keeping empty segments so every diagnostic can name the
  // exact 1-based segment it refers to. A single trailing ';' is tolerated
  // (shell-quoting artifact); interior empties are rejected below.
  std::vector<std::string_view> parts;
  {
    std::string_view rest = spec;
    while (true) {
      const auto pos = rest.find(';');
      if (pos == std::string_view::npos) {
        parts.push_back(rest);
        break;
      }
      parts.push_back(rest.substr(0, pos));
      rest.remove_prefix(pos + 1);
    }
    if (parts.size() > 1 && parts.back().empty()) parts.pop_back();
  }

  FaultPlan plan;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::string_view part = parts[i];
    // Every rejection names the offending segment: "segment 3 ('typo:...')".
    const auto reject = [&](StatusCode code, const std::string& msg) {
      return Status(code, "fault spec segment " + std::to_string(i + 1) +
                              " ('" + std::string(part) + "'): " + msg);
    };
    if (part.empty())
      return reject(StatusCode::kInvalidArgument,
                    "empty segment (doubled ';'?)");
    if (part.rfind("seed=", 0) == 0) {
      auto s = parse_u64(part.substr(5), "plan seed");
      if (!s.ok()) return reject(s.status().code(), s.status().message());
      plan.seed = *s;
      continue;
    }
    const auto colon = part.find(':');
    if (colon == std::string_view::npos)
      return reject(StatusCode::kInvalidArgument,
                    "want kind:rate=R[,param=P]");
    auto kind = kind_from_token(part.substr(0, colon));
    if (!kind.ok())
      return reject(StatusCode::kInvalidArgument, kind.status().message());
    if (plan.rate(*kind) != 0.0)
      return reject(StatusCode::kInvalidArgument,
                    std::string("duplicate fault kind '") +
                        spec_token(*kind) + "' in plan");

    FaultSpec event;
    event.kind = *kind;
    bool have_rate = false;
    for (std::string_view kv : split(part.substr(colon + 1), ',')) {
      if (kv.rfind("rate=", 0) == 0) {
        auto r = parse_rate(kv.substr(5));
        if (!r.ok()) return reject(r.status().code(), r.status().message());
        event.rate = *r;
        have_rate = true;
      } else if (kv.rfind("param=", 0) == 0) {
        auto p = parse_u64(kv.substr(6), "fault param");
        if (!p.ok()) return reject(p.status().code(), p.status().message());
        event.param = *p;
      } else {
        return reject(StatusCode::kInvalidArgument,
                      "bad fault attribute '" + std::string(kv) +
                          "' (want rate= or param=)");
      }
    }
    if (!have_rate)
      return reject(StatusCode::kInvalidArgument,
                    std::string("fault kind '") + spec_token(*kind) +
                        "' is missing rate=");
    // rate=0 keeps the segment valid but contributes no event: a disabled
    // kind in a scripted matrix parses cleanly instead of being a surprise.
    if (event.rate > 0.0) plan.events.push_back(event);
  }
  return plan;
}

StatusOr<FaultPlan> FaultPlan::canned(std::string_view name) {
  for (const auto& c : kCanned) {
    if (name == c.name) {
      if (c.spec[0] == '\0') return FaultPlan{};
      return parse(c.spec);
    }
  }
  std::string names;
  for (const auto& c : kCanned) {
    if (!names.empty()) names += ", ";
    names += c.name;
  }
  return NotFoundError("unknown fault plan '" + std::string(name) +
                       "' (canned plans: " + names + ")");
}

std::vector<std::string> FaultPlan::canned_plan_names() {
  std::vector<std::string> out;
  for (const auto& c : kCanned) out.emplace_back(c.name);
  return out;
}

}  // namespace ioguard::faults
