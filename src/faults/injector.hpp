// FaultInjector: the runtime half of a FaultPlan. One injector serves one
// trial; components query it at each fault *opportunity* (a slot tick, a
// frame completion, a head-flit arbitration, a translation).
//
// Determinism contract: each (fault kind, site) pair owns a private Rng
// seeded from mix_seed(plan.seed ^ trial_seed, kind, site), so
//   * the same (plan, trial seed) replays bit-identically at any --jobs=N
//     (sites are queried in simulation order, which is deterministic), and
//   * injector draws never touch the baseline RNG streams (workload,
//     translator latency), so a zero-rate kind changes *nothing*.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "faults/fault_plan.hpp"

namespace ioguard::faults {

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::uint64_t trial_seed);

  /// Slots of stall beginning now at device `site` (0 = no fault). Callers
  /// must query once per opportunity (per slot while un-stalled).
  [[nodiscard]] Slot device_stall_begins(std::size_t site);
  /// The completed frame at `site` is lost in flight.
  [[nodiscard]] bool drop_frame(std::size_t site);
  /// The completed frame at `site` arrives corrupted.
  [[nodiscard]] bool corrupt_frame(std::size_t site);
  /// The packet whose head flit is being arbitrated at router `site` is lost.
  [[nodiscard]] bool drop_packet(std::size_t site);
  /// Extra cycles beyond WCET for this translation at `site` (0 = no fault).
  [[nodiscard]] Cycle translator_overrun(std::size_t site);
  /// A phantom interrupt burns the current free slot at device `site`.
  [[nodiscard]] bool spurious_interrupt(std::size_t site);

  [[nodiscard]] std::uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t total_injected() const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  /// Draws a bernoulli(rate[kind]) from the (kind, site) stream and counts
  /// injections. Zero-rate kinds never construct a stream (and never draw).
  [[nodiscard]] bool fire(FaultKind kind, std::size_t site);
  [[nodiscard]] Rng& stream(FaultKind kind, std::size_t site);

  FaultPlan plan_;
  std::uint64_t stream_base_ = 0;
  std::array<double, kFaultKindCount> rates_{};
  std::array<std::uint64_t, kFaultKindCount> params_{};
  std::array<std::uint64_t, kFaultKindCount> injected_{};
  std::array<std::vector<Rng>, kFaultKindCount> streams_;  // indexed by site
};

}  // namespace ioguard::faults
