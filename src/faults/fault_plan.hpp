// Fault plans: a *seeded schedule* of injectable events, and the resilience
// policy knobs the architecture uses to survive them.
//
// A FaultPlan is pure configuration -- which fault kinds fire, at what
// per-opportunity rate, with what magnitude. All randomness lives in the
// FaultInjector (injector.hpp), which derives its streams from
// (plan.seed, trial seed, fault kind, site); the plan itself is value-
// comparable and round-trips through a compact spec string so a plan can be
// passed on the command line (`--faults=device-stall` or
// `--faults="seed=7;stall:rate=0.002,param=12;flit:rate=0.001"`) and logged.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace ioguard::faults {

/// The injectable event taxonomy (DESIGN.md §11).
enum class FaultKind : std::uint8_t {
  kDeviceStall = 0,   ///< device stops draining for `param` slots
  kDroppedFrame,      ///< completed R-channel frame is lost in flight
  kCorruptFrame,      ///< completed R-channel frame arrives corrupted
  kLinkFlitLoss,      ///< NoC link eats a packet (head flit loss)
  kTranslatorOverrun, ///< translation takes `param` cycles beyond its WCET
  kSpuriousInterrupt, ///< hypervisor burns a free slot on a phantom IRQ
};

inline constexpr std::size_t kFaultKindCount = 6;

[[nodiscard]] const char* to_string(FaultKind kind);
/// The short token used in plan spec strings ("stall", "drop", ...).
[[nodiscard]] const char* spec_token(FaultKind kind);

[[nodiscard]] constexpr std::array<FaultKind, kFaultKindCount>
all_fault_kinds() {
  return {FaultKind::kDeviceStall,       FaultKind::kDroppedFrame,
          FaultKind::kCorruptFrame,      FaultKind::kLinkFlitLoss,
          FaultKind::kTranslatorOverrun, FaultKind::kSpuriousInterrupt};
}

/// One line of a plan: fire `kind` with probability `rate` per opportunity;
/// `param` scales the fault (stall duration in slots, overrun in cycles).
struct FaultSpec {
  FaultKind kind = FaultKind::kDeviceStall;
  double rate = 0.0;          ///< per-opportunity probability, in [0, 1]
  std::uint64_t param = 0;    ///< 0 = kind-specific default

  friend bool operator==(const FaultSpec& a, const FaultSpec& b) {
    return a.kind == b.kind && a.rate == b.rate && a.param == b.param;
  }
};

/// Kind-specific default magnitudes, applied when FaultSpec::param == 0.
[[nodiscard]] std::uint64_t default_param(FaultKind kind);

/// A deterministic fault schedule. Empty plan (no events) == fault-free
/// baseline: the runner then skips injector construction entirely, so the
/// simulation is *bit-identical* to a build without this subsystem.
struct FaultPlan {
  std::uint64_t seed = 1;  ///< plan-level seed, mixed with the trial seed
  std::vector<FaultSpec> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  /// Rate for `kind`, 0 when the plan does not mention it.
  [[nodiscard]] double rate(FaultKind kind) const;
  /// Effective param for `kind` (default_param() when unset or unlisted).
  [[nodiscard]] std::uint64_t param(FaultKind kind) const;

  /// Canonical spec string, parseable by parse(). Empty plan -> "none".
  [[nodiscard]] std::string spec_string() const;

  /// Parses `--faults=` values: either a canned plan name (see
  /// canned_plan_names()) or a spec "[seed=N;]kind:rate=R[,param=P];...".
  /// Duplicate kinds and rates outside [0, 1] are errors.
  [[nodiscard]] static StatusOr<FaultPlan> parse(std::string_view spec);

  /// Canned plan by name; kNotFound for unknown names.
  [[nodiscard]] static StatusOr<FaultPlan> canned(std::string_view name);
  [[nodiscard]] static std::vector<std::string> canned_plan_names();

  friend bool operator==(const FaultPlan& a, const FaultPlan& b) {
    return a.seed == b.seed && a.events == b.events;
  }
};

/// Resilience policy: how hard the virtualization driver / hypervisor fight
/// back. Validated by TrialConfig::validated() and verify_resilience().
struct ResilienceConfig {
  /// Hypervisor watchdog: abort an in-flight R-channel op after the device
  /// has been stalled under it for this many slots.
  Slot watchdog_timeout_slots = 8;
  /// Bounded retry: a faulted job is re-submitted at most this many times.
  std::uint32_t max_retries = 2;
  /// Exponential backoff base: retry k waits base << (k-1) slots.
  Slot retry_backoff_base_slots = 1;
  /// Graceful degradation: after this many faults on one VM, shed its
  /// R-channel queue and reject new jobs (P-channel slots are never touched).
  std::uint32_t degradation_threshold = 32;
  bool degradation_enabled = true;

  friend bool operator==(const ResilienceConfig& a, const ResilienceConfig& b) {
    return a.watchdog_timeout_slots == b.watchdog_timeout_slots &&
           a.max_retries == b.max_retries &&
           a.retry_backoff_base_slots == b.retry_backoff_base_slots &&
           a.degradation_threshold == b.degradation_threshold &&
           a.degradation_enabled == b.degradation_enabled;
  }
};

}  // namespace ioguard::faults
