// Static verification of fault plans and resilience policy (RESxxx codes).
//
// Runs before a faulted experiment the same way verify_table runs before a
// scheduled one: catches plans that cannot possibly behave as intended
// (rates outside [0,1], a watchdog that can never fire, a retry backoff
// that overflows) without simulating a single slot.
#pragma once

#include "analysis/diagnostics.hpp"
#include "faults/fault_plan.hpp"

namespace ioguard::analysis {

/// Checks `plan` + `resilience` for internal consistency; findings are
/// appended to `report` (RES001..RES006). Empty plans pass trivially --
/// policy-only checks (watchdog/backoff) still run so a bad resilience
/// config is caught even before any plan is chosen.
void verify_resilience(const faults::FaultPlan& plan,
                       const faults::ResilienceConfig& resilience,
                       Report& report);

}  // namespace ioguard::analysis
