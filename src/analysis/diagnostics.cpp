#include "analysis/diagnostics.hpp"

#include <ostream>

#include "common/check.hpp"

namespace ioguard::analysis {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const char* code_string(DiagCode code) {
  switch (code) {
    case DiagCode::kSigFreeCountMismatch: return "SIG001";
    case DiagCode::kSigUnknownOccupant: return "SIG002";
    case DiagCode::kSigJobUnderAllocated: return "SIG003";
    case DiagCode::kSigTaskSlotSurplus: return "SIG004";
    case DiagCode::kSigSlotOutsideWindow: return "SIG005";
    case DiagCode::kSigPeriodNotDividingH: return "SIG006";
    case DiagCode::kSigBadPredefinedTask: return "SIG007";
    case DiagCode::kSupNonMonotone: return "SUP001";
    case DiagCode::kSupSuperadditivity: return "SUP002";
    case DiagCode::kSupPeriodicExtension: return "SUP003";
    case DiagCode::kSupZeroSlack: return "SUP004";
    case DiagCode::kSupTheoremDisagreement: return "SUP005";
    case DiagCode::kSupExceedsWindow: return "SUP006";
    case DiagCode::kSupCheckSkipped: return "SUP007";
    case DiagCode::kLvlBadServerParams: return "LVL001";
    case DiagCode::kLvlDeadlineExceedsPeriod: return "LVL002";
    case DiagCode::kLvlBandwidthDeficit: return "LVL003";
    case DiagCode::kLvlTheoremDisagreement: return "LVL004";
    case DiagCode::kLvlServerCountMismatch: return "LVL005";
    case DiagCode::kLvlBadTaskParams: return "LVL006";
    case DiagCode::kLvlCheckSkipped: return "LVL007";
    case DiagCode::kCfgBadNocDims: return "CFG001";
    case DiagCode::kCfgVmPlacementOverflow: return "CFG002";
    case DiagCode::kCfgUnknownDevice: return "CFG003";
    case DiagCode::kCfgVmOutOfRange: return "CFG004";
    case DiagCode::kCfgBadFraction: return "CFG005";
    case DiagCode::kCfgDegenerateExperiment: return "CFG006";
    case DiagCode::kResRateOutOfRange: return "RES001";
    case DiagCode::kResWatchdogZero: return "RES002";
    case DiagCode::kResBackoffOverflow: return "RES003";
    case DiagCode::kResRetryBudgetExcessive: return "RES004";
    case DiagCode::kResWatchdogIneffective: return "RES005";
    case DiagCode::kResDegradationDisabled: return "RES006";
    case DiagCode::kCkpStaleManifest: return "CKP001";
    case DiagCode::kCkpConfigMismatch: return "CKP002";
    case DiagCode::kCkpOrphanedTempFiles: return "CKP003";
    case DiagCode::kCkpAbandonedTrials: return "CKP004";
    case DiagCode::kAdmDecisionMismatch: return "ADM001";
    case DiagCode::kAdmCacheIncoherent: return "ADM002";
    case DiagCode::kAdmFingerprintUnstable: return "ADM003";
    case DiagCode::kAdmBandwidthOverflow: return "ADM004";
    case DiagCode::kAdmCountersInconsistent: return "ADM005";
    case DiagCode::kMcsBudgetOrder: return "MCS001";
    case DiagCode::kMcsLoModeUnschedulable: return "MCS002";
    case DiagCode::kMcsHiModeUnschedulable: return "MCS003";
    case DiagCode::kMcsTransitionUnschedulable: return "MCS004";
    case DiagCode::kMcsForgedModeSwitch: return "MCS005";
    case DiagCode::kMcsHysteresisThrash: return "MCS006";
  }
  return "UNK000";
}

const char* code_summary(DiagCode code) {
  switch (code) {
    case DiagCode::kSigFreeCountMismatch:
      return "free-slot count F inconsistent with table contents or demand";
    case DiagCode::kSigUnknownOccupant:
      return "slot reserved for a task outside the pre-defined set";
    case DiagCode::kSigJobUnderAllocated:
      return "a pre-defined job receives fewer than C slots by its deadline";
    case DiagCode::kSigTaskSlotSurplus:
      return "a task owns more slots per hyper-period than C*H/T";
    case DiagCode::kSigSlotOutsideWindow:
      return "a reserved slot lies outside every job window of its task";
    case DiagCode::kSigPeriodNotDividingH:
      return "a pre-defined task period does not divide the hyper-period";
    case DiagCode::kSigBadPredefinedTask:
      return "pre-defined task has invalid (T, C, D, offset) parameters";
    case DiagCode::kSupNonMonotone:
      return "sbf(sigma, t) decreases with t";
    case DiagCode::kSupSuperadditivity:
      return "sbf(sigma, a) + sbf(sigma, b) exceeds sbf(sigma, a+b)";
    case DiagCode::kSupPeriodicExtension:
      return "sbf(t+H) != sbf(t) + F, violating Eq. (2)";
    case DiagCode::kSupZeroSlack:
      return "slack c = F/H - sum(Theta/Pi) is not positive; Theorem 2 void";
    case DiagCode::kSupTheoremDisagreement:
      return "Theorem 1 (exhaustive) and Theorem 2 disagree";
    case DiagCode::kSupExceedsWindow:
      return "sbf(sigma, t) exceeds the window length t";
    case DiagCode::kSupCheckSkipped:
      return "supply agreement check skipped (check bound too large)";
    case DiagCode::kLvlBadServerParams:
      return "server has Pi == 0 or Theta > Pi";
    case DiagCode::kLvlDeadlineExceedsPeriod:
      return "VM task has deadline > period (analysis assumes D <= T)";
    case DiagCode::kLvlBandwidthDeficit:
      return "server bandwidth Theta/Pi below the VM's utilization";
    case DiagCode::kLvlTheoremDisagreement:
      return "Theorem 3 (exhaustive) and Theorem 4 disagree";
    case DiagCode::kLvlServerCountMismatch:
      return "server list and VM task-set list differ in length";
    case DiagCode::kLvlBadTaskParams:
      return "VM task has zero period, WCET, or deadline";
    case DiagCode::kLvlCheckSkipped:
      return "L-level agreement check skipped (check bound too large)";
    case DiagCode::kCfgBadNocDims:
      return "NoC mesh cannot host the device floorplan";
    case DiagCode::kCfgVmPlacementOverflow:
      return "more VMs than the mesh floorplan can place";
    case DiagCode::kCfgUnknownDevice:
      return "task references a device id absent from the platform";
    case DiagCode::kCfgVmOutOfRange:
      return "task assigned to a VM index >= the configured VM count";
    case DiagCode::kCfgBadFraction:
      return "utilization or preload fraction outside its valid range";
    case DiagCode::kCfgDegenerateExperiment:
      return "experiment would run zero trials or zero jobs per task";
    case DiagCode::kResRateOutOfRange:
      return "fault rate outside the [0, 1] probability range";
    case DiagCode::kResWatchdogZero:
      return "watchdog timeout of zero slots can never bound a stall";
    case DiagCode::kResBackoffOverflow:
      return "final retry backoff (base << (max_retries-1)) overflows";
    case DiagCode::kResRetryBudgetExcessive:
      return "max_retries exceeds the supported cap of 16";
    case DiagCode::kResWatchdogIneffective:
      return "planned stalls end before the watchdog can fire";
    case DiagCode::kResDegradationDisabled:
      return "high-rate fault plan with graceful degradation disabled";
    case DiagCode::kCkpStaleManifest:
      return "checkpoint manifest missing, unparsable, or journal-less";
    case DiagCode::kCkpConfigMismatch:
      return "checkpoint journal written under a different configuration";
    case DiagCode::kCkpOrphanedTempFiles:
      return "stale atomic-write staging files next to the checkpoint";
    case DiagCode::kCkpAbandonedTrials:
      return "checkpoint journal carries abandoned (excluded) trials";
    case DiagCode::kAdmDecisionMismatch:
      return "engine admission verdict disagrees with the direct theorems";
    case DiagCode::kAdmCacheIncoherent:
      return "memoized and full re-analysis decisions differ byte-wise";
    case DiagCode::kAdmFingerprintUnstable:
      return "fleet fingerprint differs between identical request replays";
    case DiagCode::kAdmBandwidthOverflow:
      return "admitted server bandwidth exceeds the table's supply F/H";
    case DiagCode::kAdmCountersInconsistent:
      return "engine cache/requests counters violate their invariants";
    case DiagCode::kMcsBudgetOrder:
      return "a task's HI budget C_hi is below its LO budget C_lo";
    case DiagCode::kMcsLoModeUnschedulable:
      return "LO mode fails Theorem 4 (full task set at C_lo)";
    case DiagCode::kMcsHiModeUnschedulable:
      return "HI mode fails Theorem 4 (HI tasks at C_hi, inflated server)";
    case DiagCode::kMcsTransitionUnschedulable:
      return "mode-switch carry-over demand exceeds the HI server supply";
    case DiagCode::kMcsForgedModeSwitch:
      return "a LO->HI record kept LO backlog (lo_pending > jobs_shed)";
    case DiagCode::kMcsHysteresisThrash:
      return "LO<->HI transitions cycle faster than the hysteresis window";
  }
  return "unknown diagnostic";
}

Severity default_severity(DiagCode code) {
  switch (code) {
    case DiagCode::kSupCheckSkipped:
    case DiagCode::kLvlCheckSkipped:
      return Severity::kInfo;
    case DiagCode::kResWatchdogIneffective:
    case DiagCode::kResDegradationDisabled:
    case DiagCode::kCkpOrphanedTempFiles:
    case DiagCode::kCkpAbandonedTrials:
    case DiagCode::kMcsHysteresisThrash:
      return Severity::kWarning;
    default:
      return Severity::kError;
  }
}

void Report::add(DiagCode code, std::string message, std::string context) {
  add(code, default_severity(code), std::move(message), std::move(context));
}

void Report::add(DiagCode code, Severity severity, std::string message,
                 std::string context) {
  if (severity == Severity::kError) ++errors_;
  if (severity == Severity::kWarning) ++warnings_;
  diags_.push_back(Diagnostic{code, severity, std::move(message),
                              std::move(context)});
}

bool Report::has(DiagCode code) const {
  for (const auto& d : diags_)
    if (d.code == code) return true;
  return false;
}

std::vector<Diagnostic> Report::with_code(DiagCode code) const {
  std::vector<Diagnostic> out;
  for (const auto& d : diags_)
    if (d.code == code) out.push_back(d);
  return out;
}

void Report::merge(const Report& other) {
  for (const auto& d : other.diags_)
    add(d.code, d.severity, d.message, d.context);
}

void Report::render_text(std::ostream& os) const {
  for (const auto& d : diags_) {
    os << code_string(d.code) << ' ' << to_string(d.severity);
    if (!d.context.empty()) os << " [" << d.context << ']';
    os << ": " << d.message << '\n';
  }
  os << (ok() ? "OK" : "FAIL") << ": " << errors_ << " error(s), "
     << warnings_ << " warning(s), " << diags_.size() << " finding(s)\n";
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Control characters are not expected in diagnostic text; drop them
          // rather than emitting invalid JSON.
          break;
        }
        os << c;
    }
  }
}

}  // namespace

void Report::render_json(std::ostream& os) const {
  os << "{\"ok\":" << (ok() ? "true" : "false")
     << ",\"errors\":" << errors_ << ",\"warnings\":" << warnings_
     << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const auto& d = diags_[i];
    if (i > 0) os << ',';
    os << "{\"code\":\"" << code_string(d.code) << "\",\"severity\":\""
       << to_string(d.severity) << "\",\"summary\":\"";
    json_escape(os, code_summary(d.code));
    os << "\",\"message\":\"";
    json_escape(os, d.message);
    os << "\",\"context\":\"";
    json_escape(os, d.context);
    os << "\"}";
  }
  os << "]}\n";
}

}  // namespace ioguard::analysis
