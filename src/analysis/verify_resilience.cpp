#include "analysis/verify_resilience.hpp"

#include <string>

namespace ioguard::analysis {

void verify_resilience(const faults::FaultPlan& plan,
                       const faults::ResilienceConfig& resilience,
                       Report& report) {
  // --- plan-level checks ----------------------------------------------------
  double total_rate = 0.0;
  for (const auto& spec : plan.events) {
    total_rate += spec.rate;
    if (spec.rate < 0.0 || spec.rate > 1.0) {
      report.add(DiagCode::kResRateOutOfRange,
                 "rate " + std::to_string(spec.rate) + " for " +
                     faults::to_string(spec.kind) + " is not a probability",
                 std::string("fault ") + faults::spec_token(spec.kind));
    }
  }

  // --- policy-level checks --------------------------------------------------
  if (resilience.watchdog_timeout_slots == 0) {
    report.add(DiagCode::kResWatchdogZero,
               "watchdog_timeout_slots is 0; a stalled op would never be "
               "aborted within its slot budget");
  }
  if (resilience.max_retries > 16) {
    report.add(DiagCode::kResRetryBudgetExcessive,
               "max_retries " + std::to_string(resilience.max_retries) +
                   " exceeds the supported cap of 16");
  } else if (resilience.max_retries > 0) {
    // Final retry waits base << (max_retries - 1) slots; detect shifts that
    // lose bits (Slot is 64-bit, so shifting past bit 63 is the overflow).
    const unsigned shift = resilience.max_retries - 1;
    const Slot base = resilience.retry_backoff_base_slots;
    if (base > 0 && shift < 64 && (base << shift) >> shift != base) {
      report.add(DiagCode::kResBackoffOverflow,
                 "retry backoff base " + std::to_string(base) + " << " +
                     std::to_string(shift) + " overflows the slot counter");
    }
  }

  const double stall_rate = plan.rate(faults::FaultKind::kDeviceStall);
  if (stall_rate > 0.0 && resilience.watchdog_timeout_slots > 0 &&
      plan.param(faults::FaultKind::kDeviceStall) <
          resilience.watchdog_timeout_slots) {
    report.add(DiagCode::kResWatchdogIneffective,
               "planned stalls last " +
                   std::to_string(plan.param(faults::FaultKind::kDeviceStall)) +
                   " slots but the watchdog waits " +
                   std::to_string(resilience.watchdog_timeout_slots) +
                   "; every stall ends before the watchdog fires");
  }
  if (total_rate > 0.05 && !resilience.degradation_enabled) {
    report.add(DiagCode::kResDegradationDisabled,
               "aggregate fault rate " + std::to_string(total_rate) +
                   " with degradation disabled; a faulty VM can monopolize "
                   "recovery bandwidth");
  }
}

}  // namespace ioguard::analysis
