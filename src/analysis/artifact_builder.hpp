// Builds the scheduling artifacts of a case-study experiment the same way
// core::Hypervisor does at system initialization -- per-device offline Time
// Slot Table (with demotion of unplaceable pre-defined tasks to the
// R-channel) plus per-VM server synthesis -- but as plain owned data, so the
// verifier can inspect (and fault-injection can tamper with) every piece.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/verifier.hpp"
#include "sched/slot_table.hpp"
#include "workload/generator.hpp"

namespace ioguard::analysis {

/// All scheduling artifacts of one experiment, owned flat.
struct ExperimentArtifacts {
  workload::TaskSet all;
  std::vector<workload::TaskSet> predefined;              ///< per device
  std::vector<sched::TimeSlotTable> tables;               ///< per device
  std::vector<std::vector<sched::ServerParams>> servers;  ///< per device, VM
  std::vector<std::vector<workload::TaskSet>> vm_tasks;   ///< per device, VM
  PlatformSpec platform;
  ExperimentSpec experiment;

  /// Borrowing views for verify_system().
  [[nodiscard]] std::vector<DeviceArtifacts> device_views() const;
};

/// Derives every device's artifacts for `cfg`. `trials`/`min_jobs` only fill
/// the ExperimentSpec under CFG verification; they do not affect the build.
/// `dispatch_overhead_slots` is charged onto every R-channel task's WCET
/// like core::Hypervisor does (Calibration::dispatch_overhead_slots).
[[nodiscard]] ExperimentArtifacts build_experiment_artifacts(
    const workload::CaseStudyConfig& cfg, std::size_t trials = 1,
    std::size_t min_jobs = 1, Slot dispatch_overhead_slots = 1);

/// Convenience: builds the artifacts and verifies everything.
[[nodiscard]] Report verify_case_study(const workload::CaseStudyConfig& cfg,
                                       std::size_t trials = 1,
                                       std::size_t min_jobs = 1);

}  // namespace ioguard::analysis
