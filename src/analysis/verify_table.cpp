#include "analysis/verify_table.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace ioguard::analysis {

namespace {

std::string task_ctx(const workload::IoTaskSpec& t) {
  return "task " + std::to_string(t.id.value) + " (" + t.name + ")";
}

/// True when the spec can be meaningfully laid out in a slot table.
bool check_params(const workload::IoTaskSpec& t, Report& report) {
  std::string why;
  if (t.period == 0) why = "period is 0";
  else if (t.wcet == 0) why = "wcet is 0";
  else if (t.deadline == 0) why = "deadline is 0";
  else if (t.wcet > t.deadline)
    why = "wcet " + std::to_string(t.wcet) + " exceeds deadline " +
          std::to_string(t.deadline);
  else if (t.deadline > t.period)
    why = "deadline " + std::to_string(t.deadline) + " exceeds period " +
          std::to_string(t.period);
  else if (t.offset >= t.period)
    why = "offset " + std::to_string(t.offset) + " not below period " +
          std::to_string(t.period);
  if (why.empty()) return true;
  report.add(DiagCode::kSigBadPredefinedTask, std::move(why), task_ctx(t));
  return false;
}

}  // namespace

void verify_slot_table(const sched::TimeSlotTable& table,
                       const workload::TaskSet& predefined, Report& report) {
  const Slot h = table.hyperperiod();
  const auto& raw = table.raw();

  // -- bookkeeping: the cached F must equal the raw free-slot count. -------
  const auto raw_free = static_cast<Slot>(
      std::count(raw.begin(), raw.end(), sched::TimeSlotTable::kFree));
  if (raw_free != table.free_slots()) {
    report.add(DiagCode::kSigFreeCountMismatch,
               "free_slots() reports " + std::to_string(table.free_slots()) +
                   " but raw() holds " + std::to_string(raw_free) +
                   " free slots");
  }

  // -- per-task parameter and hyper-period divisibility checks. ------------
  // Ordered by task id: the per-task loops below emit diagnostics while
  // iterating, and the report is an exported artifact -- hash order would
  // leak the standard library's bucket layout into its bytes (LNT003).
  std::map<std::uint32_t, const workload::IoTaskSpec*> layoutable;
  bool all_layoutable = true;
  for (const auto& t : predefined.tasks()) {
    if (!check_params(t, report)) {
      all_layoutable = false;
      continue;
    }
    if (h % t.period != 0) {
      report.add(DiagCode::kSigPeriodNotDividingH,
                 "period " + std::to_string(t.period) +
                     " does not divide hyper-period " + std::to_string(h),
                 task_ctx(t));
      all_layoutable = false;
      continue;
    }
    layoutable.emplace(t.id.value, &t);
  }

  // -- ownership scan: every reserved slot must belong to a known task. ----
  std::map<std::uint32_t, Slot> owned;  // task id -> slot count (ordered)
  for (Slot s = 0; s < h; ++s) {
    const std::uint32_t v = raw[static_cast<std::size_t>(s)];
    if (v == sched::TimeSlotTable::kFree) continue;
    ++owned[v];
    if (layoutable.count(v) == 0 &&
        !report.has(DiagCode::kSigUnknownOccupant)) {
      bool declared = false;
      for (const auto& t : predefined.tasks()) declared |= (t.id.value == v);
      if (!declared)
        report.add(DiagCode::kSigUnknownOccupant,
                   "slot " + std::to_string(s) + " reserved for task id " +
                       std::to_string(v) +
                       " which is not in the pre-defined set");
    }
  }

  // -- demand accounting: F must equal H minus the pre-defined demand. -----
  if (all_layoutable) {
    Slot demand = 0;
    for (const auto& [id, t] : layoutable) demand += t->wcet * (h / t->period);
    if (demand <= h && table.free_slots() != h - demand) {
      report.add(DiagCode::kSigFreeCountMismatch,
                 "expected F = H - sum(C*H/T) = " + std::to_string(h - demand) +
                     " free slots, table has " +
                     std::to_string(table.free_slots()));
    }
  }

  // -- per-job allocation: slot-EDF matching of owned slots to jobs. -------
  // Each physical slot recurs once per hyper-period, so it may serve exactly
  // one job instance; windows of jobs released near H wrap into the start of
  // the (identical) next period. Walking the absolute timeline and handing
  // each owned slot to the earliest-deadline pending job mirrors
  // build_time_slot_table() and is maximal, so a job reported short here is
  // short under *every* slot-to-job attribution.
  for (const auto& [id, tptr] : layoutable) {
    const auto& t = *tptr;
    std::vector<bool> used(static_cast<std::size_t>(h), false);
    const Slot jobs = h / t.period;

    struct JobState {
      Slot release, deadline, remaining;
    };
    std::vector<JobState> states;
    states.reserve(static_cast<std::size_t>(jobs));
    Slot max_deadline = 0;
    for (Slot k = 0; k < jobs; ++k) {
      const Slot release = t.offset + k * t.period;
      states.push_back({release, release + t.deadline, t.wcet});
      max_deadline = std::max(max_deadline, release + t.deadline);
    }

    // Releases and deadlines are both ascending in k, so the earliest-
    // deadline pending job is always the lowest unfinished, unexpired index.
    std::size_t front = 0, next_release = 0;
    for (Slot at = 0; at < max_deadline; ++at) {
      while (next_release < states.size() &&
             states[next_release].release <= at)
        ++next_release;
      const Slot phys = at % h;
      if (raw[static_cast<std::size_t>(phys)] != id) continue;
      if (used[static_cast<std::size_t>(phys)]) continue;
      while (front < states.size() &&
             (states[front].remaining == 0 || states[front].deadline <= at))
        ++front;
      if (front >= next_release) continue;  // no pending job wants this slot
      used[static_cast<std::size_t>(phys)] = true;
      --states[front].remaining;
    }

    Slot assigned_total = 0;
    for (std::size_t k = 0; k < states.size(); ++k) {
      const auto& j = states[k];
      assigned_total += t.wcet - j.remaining;
      if (j.remaining > 0) {
        report.add(DiagCode::kSigJobUnderAllocated,
                   "job " + std::to_string(k) + " released at slot " +
                       std::to_string(j.release) + " holds " +
                       std::to_string(t.wcet - j.remaining) + " of " +
                       std::to_string(t.wcet) +
                       " slots before its deadline at slot " +
                       std::to_string(j.deadline),
                   task_ctx(t));
      }
    }

    const Slot total = owned.count(id) != 0 ? owned[id] : 0;
    const Slot needed = t.wcet * jobs;
    if (total > needed) {
      report.add(DiagCode::kSigTaskSlotSurplus,
                 "owns " + std::to_string(total) +
                     " slots per hyper-period but its jobs only need " +
                     std::to_string(needed),
                 task_ctx(t));
    }
    if (total > assigned_total) {
      // Slots the matching could not attribute to any job window: either
      // surplus or reserved at an instant where the task has no active job.
      for (Slot s = 0; s < h; ++s) {
        if (raw[static_cast<std::size_t>(s)] == id &&
            !used[static_cast<std::size_t>(s)]) {
          report.add(DiagCode::kSigSlotOutsideWindow,
                     "slot " + std::to_string(s) +
                         " serves no job window of its task",
                     task_ctx(t));
        }
      }
    }
  }
}

}  // namespace ioguard::analysis
