// Structured diagnostics for the static verifier (ioguard-verify).
//
// Every check failure is reported as a Diagnostic with a *stable* code
// (e.g. "SIG003"): tests key on codes, CI greps for them, and downstream
// tooling can suppress or escalate individual codes without parsing prose.
// Codes are grouped by artifact family:
//   SIGxxx -- Time Slot Table sigma* invariants        (verify_table)
//   SUPxxx -- supply/demand bound cross-checks         (verify_supply)
//   LVLxxx -- L-level (per-VM server) checks           (verify_servers)
//   CFGxxx -- experiment / platform config sanity      (verify_config)
//   RESxxx -- fault plan / resilience policy sanity    (verify_resilience)
//   CKPxxx -- checkpoint / resume artifact sanity      (verify_checkpoint)
//   ADMxxx -- admission service engine coherence       (verify_service)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ioguard::analysis {

enum class Severity : std::uint8_t {
  kInfo,     ///< observation, never fails a run
  kWarning,  ///< suspicious but not provably wrong
  kError,    ///< artifact is inconsistent; downstream results are void
};

[[nodiscard]] const char* to_string(Severity s);

/// Stable diagnostic codes. Never renumber an existing entry; append only.
enum class DiagCode : std::uint16_t {
  // --- sigma* Time Slot Table invariants --------------------------------
  kSigFreeCountMismatch = 101,   ///< SIG001: F disagrees with raw()/task demand
  kSigUnknownOccupant = 102,     ///< SIG002: slot owned by a non-predefined task
  kSigJobUnderAllocated = 103,   ///< SIG003: a job gets < C slots by deadline
  kSigTaskSlotSurplus = 104,     ///< SIG004: task owns more slots than C*H/T
  kSigSlotOutsideWindow = 105,   ///< SIG005: reserved slot serves no job window
  kSigPeriodNotDividingH = 106,  ///< SIG006: task period does not divide H
  kSigBadPredefinedTask = 107,   ///< SIG007: invalid (T,C,D,offset) parameters

  // --- supply/demand bound functions ------------------------------------
  kSupNonMonotone = 201,         ///< SUP001: sbf decreases
  kSupSuperadditivity = 202,     ///< SUP002: sbf(a)+sbf(b) > sbf(a+b)
  kSupPeriodicExtension = 203,   ///< SUP003: sbf(t+H) != sbf(t)+F (Eq. 2)
  kSupZeroSlack = 204,           ///< SUP004: c = F/H - sum(Theta/Pi) <= 0
  kSupTheoremDisagreement = 205, ///< SUP005: Theorem 1 vs Theorem 2 differ
  kSupExceedsWindow = 206,       ///< SUP006: sbf(t) > t
  kSupCheckSkipped = 207,        ///< SUP007: agreement bound too large (info)

  // --- L-level (per-VM server) checks ------------------------------------
  kLvlBadServerParams = 301,     ///< LVL001: Pi == 0 or Theta > Pi
  kLvlDeadlineExceedsPeriod = 302, ///< LVL002: D > T in a VM task set
  kLvlBandwidthDeficit = 303,    ///< LVL003: Theta/Pi < VM utilization
  kLvlTheoremDisagreement = 304, ///< LVL004: Theorem 3 vs Theorem 4 differ
  kLvlServerCountMismatch = 305, ///< LVL005: |servers| != |vm task sets|
  kLvlBadTaskParams = 306,       ///< LVL006: T, C or D is zero
  kLvlCheckSkipped = 307,        ///< LVL007: agreement bound too large (info)

  // --- platform / experiment configuration -------------------------------
  kCfgBadNocDims = 401,          ///< CFG001: mesh cannot host the floorplan
  kCfgVmPlacementOverflow = 402, ///< CFG002: more VMs than compute nodes
  kCfgUnknownDevice = 403,       ///< CFG003: task references absent device
  kCfgVmOutOfRange = 404,        ///< CFG004: task assigned to VM >= num_vms
  kCfgBadFraction = 405,         ///< CFG005: utilization/preload out of range
  kCfgDegenerateExperiment = 406,///< CFG006: zero trials or zero jobs/task

  // --- fault plan / resilience policy -------------------------------------
  kResRateOutOfRange = 501,      ///< RES001: fault rate outside [0, 1]
  kResWatchdogZero = 502,        ///< RES002: watchdog timeout of 0 slots
  kResBackoffOverflow = 503,     ///< RES003: final retry backoff overflows
  kResRetryBudgetExcessive = 504,///< RES004: max_retries above the 16 cap
  kResWatchdogIneffective = 505, ///< RES005: stalls end before the watchdog
  kResDegradationDisabled = 506, ///< RES006: heavy plan, degradation off

  // --- checkpoint / resume artifacts --------------------------------------
  kCkpStaleManifest = 601,       ///< CKP001: manifest/journal pair inconsistent
  kCkpConfigMismatch = 602,      ///< CKP002: journal written under other config
  kCkpOrphanedTempFiles = 603,   ///< CKP003: stale atomic-write staging files
  kCkpAbandonedTrials = 604,     ///< CKP004: journal carries abandoned trials

  // --- admission service (verify_service) ---------------------------------
  kAdmDecisionMismatch = 701,    ///< ADM001: engine vs direct theorem disagree
  kAdmCacheIncoherent = 702,     ///< ADM002: memoized vs full decisions differ
  kAdmFingerprintUnstable = 703, ///< ADM003: fleet fingerprint varies on replay
  kAdmBandwidthOverflow = 704,   ///< ADM004: admitted bandwidth exceeds supply
  kAdmCountersInconsistent = 705,///< ADM005: engine counters self-inconsistent

  // --- mixed-criticality mode switching (verify_modeswitch) ---------------
  kMcsBudgetOrder = 801,         ///< MCS001: a task has C_hi < C_lo
  kMcsLoModeUnschedulable = 802, ///< MCS002: LO regime fails Theorem 4
  kMcsHiModeUnschedulable = 803, ///< MCS003: HI regime fails at C_hi
  kMcsTransitionUnschedulable = 804, ///< MCS004: carry-over demand overflows
  kMcsForgedModeSwitch = 805,    ///< MCS005: switch record kept LO backlog
  kMcsHysteresisThrash = 806,    ///< MCS006: LO<->HI cycling faster than window
};

/// Stable string form, e.g. kSigJobUnderAllocated -> "SIG003".
[[nodiscard]] const char* code_string(DiagCode code);

/// One-line summary of what the code means (static text, no values).
[[nodiscard]] const char* code_summary(DiagCode code);

/// Severity a code carries unless the reporter overrides it.
[[nodiscard]] Severity default_severity(DiagCode code);

/// A single finding: code + severity + human text + machine context.
struct Diagnostic {
  DiagCode code;
  Severity severity;
  std::string message;  ///< human text with the offending values
  std::string context;  ///< locator, e.g. "device 1 task 12 job 3"
};

/// Ordered collection of findings from one verification run.
class Report {
 public:
  /// Adds a finding at the code's default severity.
  void add(DiagCode code, std::string message, std::string context = "");

  /// Adds a finding with an explicit severity.
  void add(DiagCode code, Severity severity, std::string message,
           std::string context);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] std::size_t error_count() const { return errors_; }
  [[nodiscard]] std::size_t warning_count() const { return warnings_; }

  /// True when no error-severity diagnostic was recorded.
  [[nodiscard]] bool ok() const { return errors_ == 0; }

  /// True when at least one finding with `code` is present.
  [[nodiscard]] bool has(DiagCode code) const;

  /// Findings with `code`, in insertion order.
  [[nodiscard]] std::vector<Diagnostic> with_code(DiagCode code) const;

  /// Appends all findings of `other`.
  void merge(const Report& other);

  /// Human-readable listing, one finding per line.
  void render_text(std::ostream& os) const;

  /// Machine-readable JSON object (stable schema, see DESIGN.md).
  void render_json(std::ostream& os) const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

}  // namespace ioguard::analysis
