#include "analysis/verify_config.hpp"

#include <algorithm>
#include <set>
#include <string>

namespace ioguard::analysis {

void verify_config(const PlatformSpec& platform,
                   const ExperimentSpec& experiment,
                   const workload::TaskSet& all_tasks, Report& report) {
  // -- floorplan geometry. -------------------------------------------------
  const bool dims_ok = platform.noc_width > 0 && platform.noc_height > 0;
  if (!dims_ok) {
    report.add(DiagCode::kCfgBadNocDims,
               "mesh dimensions " + std::to_string(platform.noc_width) + "x" +
                   std::to_string(platform.noc_height) + " are not positive");
  }
  const std::size_t nodes =
      dims_ok ? static_cast<std::size_t>(platform.noc_width) *
                    static_cast<std::size_t>(platform.noc_height)
              : 0;
  if (dims_ok &&
      platform.device_node_base + platform.device_count > nodes) {
    report.add(DiagCode::kCfgBadNocDims,
               "devices occupy nodes " +
                   std::to_string(platform.device_node_base) + ".." +
                   std::to_string(platform.device_node_base +
                                  platform.device_count - 1) +
                   " but the mesh only has " + std::to_string(nodes) +
                   " nodes");
  }

  // -- VM placement: row-major from node 0, below the device rows. ---------
  const std::size_t vm_capacity =
      dims_ok ? std::min(platform.max_vms,
                         std::min(nodes, platform.device_node_base))
              : platform.max_vms;
  if (experiment.num_vms > vm_capacity) {
    report.add(DiagCode::kCfgVmPlacementOverflow,
               std::to_string(experiment.num_vms) +
                   " VMs configured but the floorplan places at most " +
                   std::to_string(vm_capacity) +
                   " (mesh nodes below the device row, capped at " +
                   std::to_string(platform.max_vms) + ")");
  }

  // -- experiment knobs. ---------------------------------------------------
  if (experiment.target_utilization <= 0.0 ||
      experiment.target_utilization > 1.0) {
    report.add(DiagCode::kCfgBadFraction,
               "target utilization " +
                   std::to_string(experiment.target_utilization) +
                   " outside (0, 1]");
  }
  if (experiment.preload_fraction < 0.0 ||
      experiment.preload_fraction > 1.0) {
    report.add(DiagCode::kCfgBadFraction,
               "preload fraction " +
                   std::to_string(experiment.preload_fraction) +
                   " outside [0, 1]");
  }
  if (experiment.trials == 0 || experiment.min_jobs_per_task == 0) {
    report.add(DiagCode::kCfgDegenerateExperiment,
               "trials=" + std::to_string(experiment.trials) +
                   ", min_jobs_per_task=" +
                   std::to_string(experiment.min_jobs_per_task) +
                   " -- the experiment would produce no data");
  }

  // -- task references. ----------------------------------------------------
  std::set<std::uint32_t> reported_devices, reported_vms;
  for (const auto& t : all_tasks.tasks()) {
    if ((!t.device.valid() || t.device.value >= platform.device_count) &&
        reported_devices.insert(t.device.value).second) {
      report.add(DiagCode::kCfgUnknownDevice,
                 "task " + std::to_string(t.id.value) + " (" + t.name +
                     ") targets device id " + std::to_string(t.device.value) +
                     " but the platform has " +
                     std::to_string(platform.device_count) + " device(s)");
    }
    if ((!t.vm.valid() || t.vm.value >= experiment.num_vms) &&
        reported_vms.insert(t.vm.value).second) {
      report.add(DiagCode::kCfgVmOutOfRange,
                 "task " + std::to_string(t.id.value) + " (" + t.name +
                     ") belongs to VM " + std::to_string(t.vm.value) +
                     " but only " + std::to_string(experiment.num_vms) +
                     " VM(s) are configured");
    }
  }
}

}  // namespace ioguard::analysis
