// Mixed-criticality checks (MCSxxx): dual-criticality admission regimes and
// the run-time mode-switch protocol (DESIGN.md §17).
//
// The static half re-runs sched::mcs_admission_check per VM and maps each
// failing regime to a stable code (MCS002 LO, MCS003 HI, MCS004 transition)
// after validating the budget order C_lo <= C_hi (MCS001). The dynamic half
// audits the ModeTransitionRecord stream a trial emitted: a LO->HI record
// that kept LO backlog (lo_pending > jobs_shed) is a forged switch --
// the protocol sheds the whole LO backlog atomically -- and MCS005 fires;
// a VM cycling HI->LO->... faster than the recovery hysteresis window
// indicates thrashing the hysteresis was configured to prevent (MCS006,
// warning: the records may be legitimate under a pathological fault storm,
// but the configuration is not doing its job).
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/mode_controller.hpp"
#include "sched/sbf.hpp"
#include "workload/task.hpp"

namespace ioguard::analysis {

/// Static side: MCS001 budget order per task, then the three dual-
/// criticality regimes per VM (MCS002/MCS003/MCS004) via
/// sched::mcs_admission_check. Single-criticality VMs pass vacuously, so
/// calling this on a pre-MCS experiment is silent. `servers` and `vm_tasks`
/// are parallel (index = VM); a size mismatch is the caller's bug and is
/// reported through the existing LVL005 path, not here.
void verify_mcs_admission(const std::vector<sched::ServerParams>& servers,
                          const std::vector<workload::TaskSet>& vm_tasks,
                          double hi_budget_factor, Report& report);

/// Dynamic side: audits a trial's mode-transition records against the
/// protocol invariants (MCS005 forged switch, MCS006 hysteresis thrash).
/// `transitions` must be in emission (slot) order, as ModeController
/// records them.
void verify_mode_transitions(
    const std::vector<core::ModeTransitionRecord>& transitions,
    const core::ModeSwitchConfig& config, Report& report);

}  // namespace ioguard::analysis
