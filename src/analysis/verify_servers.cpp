#include "analysis/verify_servers.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"
#include "sched/admission.hpp"

namespace ioguard::analysis {

namespace {

std::string vm_ctx(std::size_t vm) { return "vm " + std::to_string(vm); }

/// LVL006: zero parameters make every admission formula divide by zero or
/// degenerate; report and exclude the task set from the theorem checks.
bool tasks_well_formed(const workload::TaskSet& tasks, std::size_t vm,
                       Report& report) {
  bool ok = true;
  for (const auto& t : tasks.tasks()) {
    if (t.period == 0 || t.wcet == 0 || t.deadline == 0) {
      report.add(DiagCode::kLvlBadTaskParams,
                 "task " + std::to_string(t.id.value) + " (" + t.name +
                     ") has (T=" + std::to_string(t.period) + ", C=" +
                     std::to_string(t.wcet) + ", D=" +
                     std::to_string(t.deadline) + ")",
                 vm_ctx(vm));
      ok = false;
    } else if (t.deadline > t.period) {
      report.add(DiagCode::kLvlDeadlineExceedsPeriod,
                 "task " + std::to_string(t.id.value) + " (" + t.name +
                     ") has deadline " + std::to_string(t.deadline) +
                     " > period " + std::to_string(t.period),
                 vm_ctx(vm));
      ok = false;
    }
  }
  return ok;
}

}  // namespace

void verify_servers(const std::vector<sched::ServerParams>& servers,
                    const std::vector<workload::TaskSet>& vm_tasks,
                    const ServerCheckOptions& options, Report& report) {
  if (servers.size() != vm_tasks.size()) {
    report.add(DiagCode::kLvlServerCountMismatch,
               std::to_string(servers.size()) + " server(s) for " +
                   std::to_string(vm_tasks.size()) + " VM task set(s)");
    return;
  }

  for (std::size_t i = 0; i < servers.size(); ++i) {
    const auto& g = servers[i];
    const auto& tasks = vm_tasks[i];

    if (g.pi == 0 || g.theta > g.pi) {
      report.add(DiagCode::kLvlBadServerParams,
                 "server (Pi=" + std::to_string(g.pi) + ", Theta=" +
                     std::to_string(g.theta) + ") violates Theta <= Pi",
                 vm_ctx(i));
      continue;
    }

    const bool well_formed = tasks_well_formed(tasks, i, report);
    if (tasks.empty() || !well_formed) continue;

    // Necessary condition before any theorem runs: the server must carry at
    // least the VM's raw utilization.
    const double deficit = tasks.utilization() - g.bandwidth();
    if (deficit > 1e-12) {
      report.add(DiagCode::kLvlBandwidthDeficit,
                 "server bandwidth Theta/Pi = " + std::to_string(g.bandwidth()) +
                     " below VM utilization " +
                     std::to_string(tasks.utilization()),
                 vm_ctx(i));
      continue;  // Theorem 4's slack precondition already fails
    }

    // Zero slack (c' = 0) is Theorem 4's stated blind spot, not a fault:
    // the pseudo-polynomial bound is undefined there, so agreement with the
    // exhaustive test is only owed when c' is strictly positive.
    if (!options.check_theorem_agreement || g.theta == 0 || -deficit <= 1e-12)
      continue;

    // Theorem 3 (exhaustive) vs Theorem 4 (pseudo-polynomial): with positive
    // slack both are exact, so disagreement means the sbf_server/dbf
    // implementation or the derived bound is wrong.
    sched::AdmissionResult exact;
    try {
      exact = sched::theorem3_exhaustive(g, tasks, /*t_max=*/0,
                                         options.lcm_cap);
    } catch (const CheckFailure&) {
      report.add(DiagCode::kLvlCheckSkipped,
                 "lcm(Pi, T...) exceeds the configured cap; Theorem 3 vs "
                 "Theorem 4 agreement not checked",
                 vm_ctx(i));
      continue;
    }
    check_vm_agreement(exact, sched::theorem4_check(g, tasks), i, report);
  }
}

void check_vm_agreement(const sched::AdmissionResult& exact,
                        const sched::AdmissionResult& pseudo, std::size_t vm,
                        Report& report) {
  if (exact.schedulable == pseudo.schedulable) return;
  std::string detail =
      "Theorem 3 says " +
      std::string(exact.schedulable ? "schedulable" : "unschedulable") +
      ", Theorem 4 says " +
      std::string(pseudo.schedulable ? "schedulable" : "unschedulable");
  if (exact.violation_t)
    detail += "; first violation at t=" + std::to_string(*exact.violation_t);
  report.add(DiagCode::kLvlTheoremDisagreement, std::move(detail), vm_ctx(vm));
}

}  // namespace ioguard::analysis
