// sigma* invariant checks (SIGxxx): proves that a Time Slot Table actually
// implements the pre-defined task set it claims to serve -- every job gets
// its C slots inside [release, release + D), no slot is double-booked or
// stray, and the bookkeeping (F, hyper-period) is consistent.
#pragma once

#include "analysis/diagnostics.hpp"
#include "sched/slot_table.hpp"
#include "workload/task.hpp"

namespace ioguard::analysis {

/// Verifies `table` against the pre-defined task set it was built from.
/// Appends SIGxxx findings to `report`; adds nothing when the table is sound.
void verify_slot_table(const sched::TimeSlotTable& table,
                       const workload::TaskSet& predefined, Report& report);

}  // namespace ioguard::analysis
