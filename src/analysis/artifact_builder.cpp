#include "analysis/artifact_builder.hpp"

#include <algorithm>
#include <utility>

#include "analysis/verify_service.hpp"
#include "sched/server_design.hpp"

namespace ioguard::analysis {

std::vector<DeviceArtifacts> ExperimentArtifacts::device_views() const {
  std::vector<DeviceArtifacts> views;
  views.reserve(tables.size());
  for (std::size_t d = 0; d < tables.size(); ++d)
    views.push_back(DeviceArtifacts{&tables[d], &predefined[d], &servers[d],
                                    &vm_tasks[d]});
  return views;
}

ExperimentArtifacts build_experiment_artifacts(
    const workload::CaseStudyConfig& cfg, std::size_t trials,
    std::size_t min_jobs, Slot dispatch_overhead_slots) {
  const auto wl = workload::build_case_study(cfg);
  ExperimentArtifacts a;
  a.all = wl.tasks;
  a.experiment.num_vms = cfg.num_vms;
  a.experiment.target_utilization = cfg.target_utilization;
  a.experiment.preload_fraction = cfg.preload_fraction;
  a.experiment.trials = trials;
  a.experiment.min_jobs_per_task = min_jobs;
  a.platform.device_count = workload::kCaseStudyDeviceCount;

  for (std::size_t d = 0; d < workload::kCaseStudyDeviceCount; ++d) {
    const DeviceId dev{static_cast<std::uint32_t>(d)};
    auto predefined = wl.predefined().filter_device(dev);
    workload::TaskSet demoted;
    auto build = sched::build_time_slot_table(predefined);
    while (!build.feasible && !predefined.empty()) {
      // Demote the least critical, largest-demand task first (same policy
      // as core::Hypervisor at initialization).
      std::vector<workload::IoTaskSpec> remaining = predefined.tasks();
      std::size_t victim = 0;
      for (std::size_t i = 1; i < remaining.size(); ++i) {
        const auto key = [](const workload::IoTaskSpec& t) {
          return std::make_pair(static_cast<int>(t.cls), t.utilization());
        };
        if (key(remaining[i]) > key(remaining[victim])) victim = i;
      }
      workload::IoTaskSpec moved = remaining[victim];
      moved.kind = workload::TaskKind::kRuntime;
      demoted.add(std::move(moved));
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(victim));
      predefined = workload::TaskSet(std::move(remaining));
      build = sched::build_time_slot_table(predefined);
    }

    auto runtime = wl.runtime().filter_device(dev);
    for (const auto& t : demoted.tasks()) runtime.add(t);
    std::vector<workload::TaskSet> vm_tasks;
    vm_tasks.reserve(cfg.num_vms);
    for (std::size_t v = 0; v < cfg.num_vms; ++v) {
      workload::TaskSet charged;
      const auto vm_set = runtime.filter_vm(VmId{static_cast<std::uint32_t>(v)});
      for (auto t : vm_set.tasks()) {
        t.wcet = std::min(t.deadline, t.wcet + dispatch_overhead_slots);
        charged.add(std::move(t));
      }
      vm_tasks.push_back(std::move(charged));
    }

    const sched::TableSupply supply(build.table);
    auto design = sched::design_system(supply, vm_tasks);
    std::vector<sched::ServerParams> servers;
    if (design.feasible || !design.servers.empty()) {
      // Hand even an infeasible design to the verifier: its job is to
      // report *why* the artifacts are unsound, not to hide them.
      servers = design.servers;
    } else {
      servers.assign(cfg.num_vms, sched::ServerParams{1, 0});
    }

    a.predefined.push_back(std::move(predefined));
    a.tables.push_back(std::move(build.table));
    a.servers.push_back(std::move(servers));
    a.vm_tasks.push_back(std::move(vm_tasks));
  }
  return a;
}

Report verify_case_study(const workload::CaseStudyConfig& cfg,
                         std::size_t trials, std::size_t min_jobs) {
  const auto a = build_experiment_artifacts(cfg, trials, min_jobs);
  Report report =
      verify_system(a.platform, a.experiment, a.all, a.device_views());
  // Admission-service coherence (ADMxxx) on every device's VM task sets:
  // the same artifacts, churned through the incremental engine.
  for (std::size_t d = 0; d < a.tables.size(); ++d)
    verify_service(a.tables[d], a.vm_tasks[d], ServiceCheckOptions{}, report);
  return report;
}

}  // namespace ioguard::analysis
