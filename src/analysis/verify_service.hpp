// Admission-service coherence checks (ADMxxx): replays a deterministic
// tenant-churn sequence through two AdmissionEngines -- one memoizing, one
// doing full re-analysis -- and cross-checks the redesigned admission API's
// core contracts:
//   ADM001  every engine verdict agrees with the Theorem 2/4 analysis run
//           directly on the decision's own fleet snapshot
//   ADM002  memoized and full decisions are byte-identical (the incremental
//           re-analysis invariant)
//   ADM003  replaying the identical sequence reproduces the identical fleet
//           fingerprint (decision determinism)
//   ADM004  no admitted fleet allocates more server bandwidth than the
//           table supplies (F/H)
//   ADM005  the engine's cache counters satisfy their accounting invariants
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "sched/slot_table.hpp"
#include "workload/task.hpp"

namespace ioguard::analysis {

struct ServiceCheckOptions {
  /// Number of churn operations replayed after the initial admissions.
  std::size_t churn_events = 24;
  /// Seed of the deterministic churn sequence.
  std::uint64_t seed = 42;
  /// Fault injection (ioguard_verify --corrupt=stale-cache): poisons the
  /// memoizing engine's Theorem 4 cache after warm-up, simulating a cache
  /// that survived an invalidation. A correct verifier must then raise
  /// ADM002 (and usually ADM001).
  bool poison_cache_for_testing = false;
};

/// Churn-replays `vm_tasks` (the VM task sets of one device; empty sets are
/// skipped) against `table` and appends ADMxxx findings to `report`.
void verify_service(const sched::TimeSlotTable& table,
                    const std::vector<workload::TaskSet>& vm_tasks,
                    const ServiceCheckOptions& options, Report& report);

}  // namespace ioguard::analysis
