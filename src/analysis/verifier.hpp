// ioguard-verify: static verification of scheduling artifacts.
//
// The admission theorems of Sec. IV only guarantee real-time behaviour when
// the artifacts they reason about -- the Time Slot Table sigma*, the server
// set {Gamma_i}, the per-VM task sets and the experiment configuration --
// are mutually consistent. This module runs every SIG/SUP/LVL/CFG check over
// one bundle of artifacts and returns a structured Report; it is the
// correctness gate simulations and benchmarks run behind.
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/verify_config.hpp"
#include "analysis/verify_servers.hpp"
#include "analysis/verify_supply.hpp"
#include "analysis/verify_table.hpp"

namespace ioguard::analysis {

/// One device's scheduling artifacts, as produced at system initialization
/// (offline table build + server synthesis).
struct DeviceArtifacts {
  const sched::TimeSlotTable* table = nullptr;        ///< sigma* (required)
  const workload::TaskSet* predefined = nullptr;      ///< P-channel tasks (required)
  const std::vector<sched::ServerParams>* servers = nullptr;  ///< optional
  const std::vector<workload::TaskSet>* vm_tasks = nullptr;   ///< optional
};

struct VerifierOptions {
  SupplyCheckOptions supply;
  ServerCheckOptions servers;
};

/// Verifies one device's artifacts (table invariants, supply shape, global
/// admission cross-check, L-level checks). `context` prefixes every finding
/// locator, e.g. "device 2".
[[nodiscard]] Report verify_device(const DeviceArtifacts& artifacts,
                                   const std::string& context = {},
                                   const VerifierOptions& options = {});

/// Verifies the experiment/platform configuration plus every device bundle.
[[nodiscard]] Report verify_system(
    const PlatformSpec& platform, const ExperimentSpec& experiment,
    const workload::TaskSet& all_tasks,
    const std::vector<DeviceArtifacts>& devices,
    const VerifierOptions& options = {});

}  // namespace ioguard::analysis
