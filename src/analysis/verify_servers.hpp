// L-level checks (LVLxxx): per-VM server parameters and task sets. A server
// Gamma = (Pi, Theta) must be well-formed (Theta <= Pi), carry at least the
// VM's utilization, and the exhaustive Theorem 3 test must agree with the
// pseudo-polynomial Theorem 4 test it stands in for.
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "sched/admission.hpp"
#include "sched/sbf.hpp"
#include "workload/task.hpp"

namespace ioguard::analysis {

struct ServerCheckOptions {
  /// lcm cap for theorem3_exhaustive; past it agreement is skipped (LVL007).
  Slot lcm_cap = Slot{1} << 22;
  /// When false, the Theorem 3 vs Theorem 4 agreement check is skipped
  /// entirely (it dominates verification cost on large task sets).
  bool check_theorem_agreement = true;
};

/// Verifies `servers[i]` against `vm_tasks[i]` for every VM. Appends LVLxxx
/// findings; silent on a sound configuration.
void verify_servers(const std::vector<sched::ServerParams>& servers,
                    const std::vector<workload::TaskSet>& vm_tasks,
                    const ServerCheckOptions& options, Report& report);

/// LVL004: compares an exhaustive Theorem 3 verdict against a Theorem 4
/// verdict for the same VM. Split out so the comparison logic is testable
/// with injected disagreements (correct implementations never disagree by
/// construction).
void check_vm_agreement(const sched::AdmissionResult& exact,
                        const sched::AdmissionResult& pseudo, std::size_t vm,
                        Report& report);

}  // namespace ioguard::analysis
