// Supply/demand cross-checks (SUPxxx): structural properties of the supply
// bound function of Eqs. (1)-(2) -- monotonicity, superadditivity, periodic
// extension -- plus agreement between the exhaustive Theorem 1 test and the
// pseudo-polynomial Theorem 2 test on the actual system, gated on the
// theorem's own slack precondition c = F/H - sum(Theta/Pi) > 0.
#pragma once

#include <cstdint>
#include <functional>

#include "analysis/diagnostics.hpp"
#include "sched/admission.hpp"
#include "sched/sbf.hpp"

namespace ioguard::analysis {

struct SupplyCheckOptions {
  /// Monotonicity / periodic-extension samples are drawn from [0, horizon];
  /// 0 derives 2H + stride coverage from the table.
  Slot sample_horizon = 0;
  /// Number of (a, b) pairs sampled for the superadditivity check.
  std::size_t superadditivity_samples = 256;
  /// lcm cap handed to theorem1_exhaustive; past it the agreement check is
  /// skipped with SUP007 instead of aborting.
  Slot lcm_cap = Slot{1} << 22;
};

/// Checks the shape properties of an arbitrary supply function claiming to
/// describe a table with hyper-period `h` and `f` free slots per period.
/// Exposed as a std::function so tests (and fault injection in the CLI) can
/// probe the checker with corrupted supplies.
void verify_supply_function(const std::function<Slot(Slot)>& sbf, Slot h,
                            Slot f, const SupplyCheckOptions& options,
                            Report& report);

/// Shape checks for the real table supply (wraps verify_supply_function).
void verify_supply(const sched::TableSupply& supply,
                   const SupplyCheckOptions& options, Report& report);

/// Global-layer admission cross-checks for (supply, servers): positive slack
/// before Theorem 2 is trusted (SUP004) and Theorem 1 vs Theorem 2 agreement
/// (SUP005; SUP007 when the exhaustive bound is out of reach).
void verify_global_admission(const sched::TableSupply& supply,
                             const std::vector<sched::ServerParams>& servers,
                             const SupplyCheckOptions& options, Report& report);

/// SUP005: compares an exhaustive Theorem 1 verdict against a Theorem 2
/// verdict for the same system. Split out so the comparison logic is
/// testable with injected disagreements (correct implementations never
/// disagree by construction).
void check_global_agreement(const sched::AdmissionResult& exact,
                            const sched::AdmissionResult& pseudo,
                            Report& report);

}  // namespace ioguard::analysis
