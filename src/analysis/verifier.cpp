#include "analysis/verifier.hpp"

#include <string>

#include "common/check.hpp"

namespace ioguard::analysis {

namespace {

/// Re-tags every finding of `sub` with the device context prefix.
void merge_with_context(Report& into, const Report& sub,
                        const std::string& context) {
  for (const auto& d : sub.diagnostics()) {
    std::string ctx = context;
    if (!d.context.empty()) {
      if (!ctx.empty()) ctx += ' ';
      ctx += d.context;
    }
    into.add(d.code, d.severity, d.message, std::move(ctx));
  }
}

}  // namespace

Report verify_device(const DeviceArtifacts& artifacts,
                     const std::string& context,
                     const VerifierOptions& options) {
  IOGUARD_CHECK_MSG(artifacts.table != nullptr, "table artifact is required");
  IOGUARD_CHECK_MSG(artifacts.predefined != nullptr,
                    "pre-defined task set is required");
  Report sub;

  verify_slot_table(*artifacts.table, *artifacts.predefined, sub);

  const sched::TableSupply supply(*artifacts.table);
  verify_supply(supply, options.supply, sub);

  if (artifacts.servers != nullptr) {
    verify_global_admission(supply, *artifacts.servers, options.supply, sub);
    if (artifacts.vm_tasks != nullptr)
      verify_servers(*artifacts.servers, *artifacts.vm_tasks, options.servers,
                     sub);
  }

  if (context.empty()) return sub;
  Report out;
  merge_with_context(out, sub, context);
  return out;
}

Report verify_system(const PlatformSpec& platform,
                     const ExperimentSpec& experiment,
                     const workload::TaskSet& all_tasks,
                     const std::vector<DeviceArtifacts>& devices,
                     const VerifierOptions& options) {
  Report report;
  verify_config(platform, experiment, all_tasks, report);
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const Report sub = verify_device(
        devices[d], "device " + std::to_string(d), options);
    report.merge(sub);
  }
  return report;
}

}  // namespace ioguard::analysis
