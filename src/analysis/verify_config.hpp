// Platform / experiment configuration sanity (CFGxxx): the NoC floorplan
// must be able to host the configured VMs and devices, every device id a
// task references must exist, and the experiment knobs must describe a run
// that can actually produce data.
#pragma once

#include <cstddef>

#include "analysis/diagnostics.hpp"
#include "workload/task.hpp"

namespace ioguard::analysis {

/// The physical platform the artifacts will run on. Defaults mirror the
/// paper's 5x5 Blueshell mesh: VMs row-major from node 0 (up to 16
/// MicroBlaze processors), devices on the last row from node 20.
struct PlatformSpec {
  int noc_width = 5;
  int noc_height = 5;
  std::size_t max_vms = 16;          ///< co-sim floorplan processor limit
  std::size_t device_count = 4;      ///< devices present on the platform
  std::size_t device_node_base = 20; ///< first mesh node hosting a device
};

/// The experiment configuration under verification (mirror of the knobs in
/// workload::CaseStudyConfig / sys::ExperimentConfig that affect validity).
struct ExperimentSpec {
  std::size_t num_vms = 0;
  double target_utilization = 0.0;
  double preload_fraction = 0.0;
  std::size_t trials = 1;
  std::size_t min_jobs_per_task = 1;
};

/// Verifies the platform floorplan, the experiment knobs, and every task's
/// device/VM reference. Appends CFGxxx findings.
void verify_config(const PlatformSpec& platform,
                   const ExperimentSpec& experiment,
                   const workload::TaskSet& all_tasks, Report& report);

}  // namespace ioguard::analysis
