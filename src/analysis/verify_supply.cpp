#include "analysis/verify_supply.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "sched/admission.hpp"

namespace ioguard::analysis {

namespace {

std::string at_t(Slot t) { return "t=" + std::to_string(t); }

/// Sample instants in [0, horizon]: dense near 0 (where sbf has the most
/// structure), strided beyond. Each fresh residue of TableSupply::sbf costs
/// O(H), so the point count is bounded to keep verification O(H * samples).
std::vector<Slot> sample_points(Slot horizon) {
  constexpr Slot kDense = 1024;
  constexpr Slot kStrided = 1024;
  std::vector<Slot> pts;
  if (horizon <= kDense + kStrided) {
    // IOGUARD_LINT_ALLOW(LNT009: tiny-horizon sampler -- every point is checked)
    for (Slot t = 0; t <= horizon; ++t) pts.push_back(t);
    return pts;
  }
  for (Slot t = 0; t <= kDense; ++t) pts.push_back(t);
  const Slot stride = (horizon - kDense) / kStrided + 1;
  // IOGUARD_LINT_ALLOW(LNT009: strided sampler, bounded point count)
  for (Slot t = kDense + stride; t < horizon; t += stride) pts.push_back(t);
  pts.push_back(horizon);
  return pts;
}

}  // namespace

void verify_supply_function(const std::function<Slot(Slot)>& sbf, Slot h,
                            Slot f, const SupplyCheckOptions& options,
                            Report& report) {
  IOGUARD_CHECK_GT(h, Slot{0});
  const Slot horizon =
      options.sample_horizon > 0 ? options.sample_horizon : 2 * h + 2;

  // sbf(0) must be 0 and the function must never out-supply the window.
  if (sbf(0) != 0)
    report.add(DiagCode::kSupExceedsWindow,
               "sbf(0) = " + std::to_string(sbf(0)) + ", expected 0", at_t(0));

  const auto pts = sample_points(horizon);
  Slot prev = 0, prev_t = 0;
  bool monotone_ok = true, window_ok = true;
  for (const Slot t : pts) {
    if (t == 0) continue;
    const Slot cur = sbf(t);
    if (window_ok && cur > t) {
      report.add(DiagCode::kSupExceedsWindow,
                 "sbf(" + std::to_string(t) + ") = " + std::to_string(cur) +
                     " exceeds the window length",
                 at_t(t));
      window_ok = false;  // one finding per property keeps reports readable
    }
    if (monotone_ok && cur < prev) {
      report.add(DiagCode::kSupNonMonotone,
                 "sbf drops from " + std::to_string(prev) + " at t=" +
                     std::to_string(prev_t) + " to " + std::to_string(cur) +
                     " at t=" + std::to_string(t),
                 at_t(t));
      monotone_ok = false;
    }
    prev = cur;
    prev_t = t;
  }

  // Eq. (2): the supply of t + H is the supply of t plus one period's F.
  bool extension_ok = true;
  for (const Slot t : sample_points(std::min(horizon, h))) {
    if (!extension_ok) break;
    const Slot lhs = sbf(t + h);
    const Slot rhs = sbf(t) + f;
    if (lhs != rhs) {
      report.add(DiagCode::kSupPeriodicExtension,
                 "sbf(t+H) = " + std::to_string(lhs) + " but sbf(t) + F = " +
                     std::to_string(rhs) + " at t=" + std::to_string(t) +
                     " (H=" + std::to_string(h) + ", F=" + std::to_string(f) +
                     ")",
                 at_t(t));
      extension_ok = false;
    }
  }

  // Superadditivity: a window of length a+b contains disjoint windows of
  // lengths a and b, so min-supply cannot fall below the sum. Deterministic
  // stride sampling over [1, horizon]^2.
  const std::size_t n = std::max<std::size_t>(options.superadditivity_samples,
                                              std::size_t{1});
  bool super_ok = true;
  for (std::size_t i = 0; i < n && super_ok; ++i) {
    const Slot a = 1 + (static_cast<Slot>(i) * 7919) % horizon;
    const Slot b = 1 + (static_cast<Slot>(i) * 104729 + 13) % horizon;
    if (sbf(a) + sbf(b) > sbf(a + b)) {
      report.add(DiagCode::kSupSuperadditivity,
                 "sbf(" + std::to_string(a) + ") + sbf(" + std::to_string(b) +
                     ") = " + std::to_string(sbf(a) + sbf(b)) +
                     " exceeds sbf(" + std::to_string(a + b) + ") = " +
                     std::to_string(sbf(a + b)),
                 "a=" + std::to_string(a) + " b=" + std::to_string(b));
      super_ok = false;
    }
  }
}

void verify_supply(const sched::TableSupply& supply,
                   const SupplyCheckOptions& options, Report& report) {
  verify_supply_function([&](Slot t) { return supply.sbf(t); },
                         supply.hyperperiod(), supply.free_per_period(),
                         options, report);
}

void verify_global_admission(const sched::TableSupply& supply,
                             const std::vector<sched::ServerParams>& servers,
                             const SupplyCheckOptions& options,
                             Report& report) {
  // Skip servers that carry no budget (placeholders for task-less VMs).
  std::vector<sched::ServerParams> active;
  for (const auto& g : servers)
    if (g.theta > 0) active.push_back(g);
  if (active.empty()) return;

  for (const auto& g : active) {
    if (g.pi == 0 || g.theta > g.pi) return;  // LVLxxx territory; bail here
  }

  double bw = 0.0;
  for (const auto& g : active) bw += g.bandwidth();
  const double slack = supply.bandwidth() - bw;
  if (slack <= 0.0) {
    report.add(DiagCode::kSupZeroSlack,
               "slack c = F/H - sum(Theta/Pi) = " + std::to_string(slack) +
                   " (F/H = " + std::to_string(supply.bandwidth()) +
                   ", sum = " + std::to_string(bw) +
                   "); Theorem 2 is inapplicable and the server set "
                   "over-commits the table");
    return;  // the pseudo-polynomial bound below is meaningless without slack
  }

  // Theorem 1 (exact, exhaustive over lcm) vs Theorem 2 (pseudo-polynomial):
  // with positive slack both are exact, so any disagreement is an
  // implementation fault in sbf/dbf or in the derived check bound.
  sched::AdmissionResult exact;
  try {
    exact = sched::theorem1_exhaustive(supply, active, /*t_max=*/0,
                                       options.lcm_cap);
  } catch (const CheckFailure&) {
    report.add(DiagCode::kSupCheckSkipped,
               "lcm(H, Pi...) exceeds the configured cap; Theorem 1 vs "
               "Theorem 2 agreement not checked");
    return;
  }
  check_global_agreement(exact, sched::theorem2_check(supply, active), report);
}

void check_global_agreement(const sched::AdmissionResult& exact,
                            const sched::AdmissionResult& pseudo,
                            Report& report) {
  if (exact.schedulable == pseudo.schedulable) return;
  std::string detail =
      "Theorem 1 says " +
      std::string(exact.schedulable ? "schedulable" : "unschedulable") +
      ", Theorem 2 says " +
      std::string(pseudo.schedulable ? "schedulable" : "unschedulable");
  if (exact.violation_t)
    detail += "; first violation at t=" + std::to_string(*exact.violation_t);
  if (pseudo.violation_t)
    detail +=
        "; Theorem 2 violation at t=" + std::to_string(*pseudo.violation_t);
  report.add(DiagCode::kSupTheoremDisagreement, std::move(detail));
}

}  // namespace ioguard::analysis
