#include "analysis/verify_modeswitch.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <utility>

#include "sched/mcs_admission.hpp"

namespace ioguard::analysis {

namespace {

std::string vm_ctx(std::size_t vm) { return "vm " + std::to_string(vm); }

/// MCS001: the dual-budget order C_lo <= C_hi. TaskSet::add() enforces it,
/// but the bulk constructor (deserialization, corruption tooling) does not,
/// so the verifier re-checks the data as presented.
bool budgets_ordered(const workload::TaskSet& tasks, std::size_t vm,
                     Report& report) {
  bool ok = true;
  for (const auto& t : tasks.tasks()) {
    if (t.wcet_hi != 0 && t.wcet_hi < t.wcet) {
      report.add(DiagCode::kMcsBudgetOrder,
                 "task " + std::to_string(t.id.value) + " (" + t.name +
                     ") has C_hi=" + std::to_string(t.wcet_hi) +
                     " < C_lo=" + std::to_string(t.wcet),
                 vm_ctx(vm));
      ok = false;
    }
  }
  return ok;
}

std::string regime_detail(const char* regime,
                          const sched::AdmissionResult& result) {
  std::string detail = std::string(regime) + " regime unschedulable";
  if (result.violation_t)
    detail += "; first dbf > sbf violation at t=" +
              std::to_string(*result.violation_t);
  return detail;
}

}  // namespace

void verify_mcs_admission(const std::vector<sched::ServerParams>& servers,
                          const std::vector<workload::TaskSet>& vm_tasks,
                          double hi_budget_factor, Report& report) {
  const std::size_t n = std::min(servers.size(), vm_tasks.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& tasks = vm_tasks[i];
    if (!budgets_ordered(tasks, i, report)) continue;  // regimes would lie
    if (!tasks.mixed_criticality()) continue;  // vacuous: pre-MCS semantics

    const auto mcs =
        sched::mcs_admission_check(servers[i], tasks, hi_budget_factor);
    if (mcs.schedulable) continue;
    if (!mcs.lo.schedulable)
      report.add(DiagCode::kMcsLoModeUnschedulable,
                 regime_detail("LO (full set at C_lo)", mcs.lo), vm_ctx(i));
    if (!mcs.hi.schedulable)
      report.add(DiagCode::kMcsHiModeUnschedulable,
                 regime_detail("HI (HI set at C_hi vs inflated server)",
                               mcs.hi),
                 vm_ctx(i));
    if (!mcs.transition.schedulable)
      report.add(DiagCode::kMcsTransitionUnschedulable,
                 regime_detail("transition (HI demand + carry-over)",
                               mcs.transition),
                 vm_ctx(i));
  }
}

void verify_mode_transitions(
    const std::vector<core::ModeTransitionRecord>& transitions,
    const core::ModeSwitchConfig& config, Report& report) {
  // Last LO->HI switch slot per VM, to measure the HI residency a recovery
  // implies. std::map for deterministic iteration order (LNT003), though
  // findings are emitted in record order anyway.
  std::map<std::uint64_t, Slot> last_switch;

  for (std::size_t i = 0; i < transitions.size(); ++i) {
    const auto& rec = transitions[i];
    const std::string ctx =
        "record " + std::to_string(i) + " slot " + std::to_string(rec.slot) +
        " vm " + std::to_string(rec.vm.value);

    if (rec.to_hi) {
      // MCS005: the protocol sheds the *entire* LO backlog atomically in
      // the switch slot; surviving LO backlog means the record (or the
      // switch it claims to describe) is forged.
      if (rec.lo_pending > rec.jobs_shed) {
        report.add(DiagCode::kMcsForgedModeSwitch,
                   "LO->HI switch kept LO backlog: lo_pending=" +
                       std::to_string(rec.lo_pending) + " > jobs_shed=" +
                       std::to_string(rec.jobs_shed),
                   ctx);
      }
      last_switch[rec.vm.value] = rec.slot;
      continue;
    }

    // Recovery record. Hysteresis guarantees a HI VM stays HI until
    // `recovery_hysteresis_slots` pass with no overrun evidence, and the
    // evidence that armed the switch is never later than the switch slot --
    // so a recovery closer to its switch than the window is thrashing.
    const auto it = last_switch.find(rec.vm.value);
    if (it == last_switch.end()) continue;  // resumed trial: switch predates
    const Slot residency = rec.slot - it->second;
    if (residency < config.recovery_hysteresis_slots) {
      report.add(DiagCode::kMcsHysteresisThrash,
                 "HI residency of " + std::to_string(residency) +
                     " slot(s) is shorter than the recovery hysteresis "
                     "window of " +
                     std::to_string(config.recovery_hysteresis_slots),
                 ctx);
    }
    last_switch.erase(it);
  }
}

}  // namespace ioguard::analysis
