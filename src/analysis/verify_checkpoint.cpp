#include "analysis/verify_checkpoint.hpp"

#include <sstream>
#include <string>

namespace ioguard::analysis {

void verify_checkpoint(const sys::CheckpointFacts& facts,
                       std::uint64_t expected_fingerprint, Report& report) {
  // --- CKP001: the on-disk pair must be internally consistent -------------
  if (facts.journal_present && !facts.manifest_present) {
    report.add(DiagCode::kCkpStaleManifest,
               "journal exists but its .manifest is missing; the journal "
               "cannot be attributed to a configuration",
               "manifest");
  } else if (facts.manifest_present && !facts.manifest_parsed) {
    report.add(DiagCode::kCkpStaleManifest,
               "manifest exists but does not parse (bad magic or missing "
               "fingerprint line)",
               "manifest");
  }
  if (facts.corrupt) {
    report.add(DiagCode::kCkpStaleManifest,
               "journal fails its record checksum inside the retained "
               "prefix; this is corruption, not a crash tail, and the "
               "checkpoint must not be resumed",
               "journal");
  } else if (facts.truncated_tail) {
    report.add(DiagCode::kCkpStaleManifest, Severity::kInfo,
               "journal ends in a partial frame (crash mid-append); resume "
               "drops the tail and re-runs that trial",
               "journal");
  }

  // --- CKP002: fingerprint must match the resuming configuration ----------
  if (expected_fingerprint != 0 && facts.manifest_parsed &&
      facts.meta.fingerprint != expected_fingerprint) {
    std::ostringstream os;
    os << "manifest fingerprint " << std::hex << facts.meta.fingerprint
       << " differs from the requested configuration's "
       << expected_fingerprint << std::dec << " (journal config: '"
       << facts.meta.config_echo << "')";
    report.add(DiagCode::kCkpConfigMismatch, std::move(os).str(), "manifest");
  }

  // --- CKP003: staging files mean a writer died mid-publish ---------------
  if (!facts.orphaned_temps.empty()) {
    std::string names;
    for (const auto& orphan : facts.orphaned_temps) {
      if (!names.empty()) names += ", ";
      names += orphan;
    }
    report.add(DiagCode::kCkpOrphanedTempFiles,
               std::to_string(facts.orphaned_temps.size()) +
                   " stale atomic-write staging file(s): " + names +
                   "; a previous writer crashed mid-publish (targets are "
                   "intact; delete the staging files)",
               "directory");
  }

  // --- CKP004: abandoned trials thin out the aggregates -------------------
  if (facts.abandoned > 0) {
    report.add(DiagCode::kCkpAbandonedTrials,
               std::to_string(facts.abandoned) + " of " +
                   std::to_string(facts.records) +
                   " journaled trial(s) are abandoned and will be excluded "
                   "from resumed aggregates",
               "journal");
  }
}

}  // namespace ioguard::analysis
