// Static verification of checkpoint/resume artifacts (CKPxxx codes).
//
// Operates on a CheckpointFacts summary produced by sys::inspect_checkpoint
// (a read-only scan: nothing is created, truncated or repaired), so the
// analysis library stays free of any journal I/O. Checks:
//   CKP001 (error)   stale manifest: the pair on disk is inconsistent --
//                    a journal with no readable manifest, or a manifest
//                    that fails to parse;
//   CKP002 (error)   config mismatch: the manifest fingerprint differs from
//                    the configuration the caller is about to resume with;
//   CKP003 (warning) orphaned atomic-write staging files next to the
//                    checkpoint (a writer crashed mid-publish);
//   CKP004 (warning) abandoned trials in the journal: the resumed sweep's
//                    aggregates will exclude them.
// A corrupt journal (CRC failure) or truncated tail is reported under
// CKP001 as well: both make the manifest's promise about the journal stale.
#pragma once

#include <cstdint>

#include "analysis/diagnostics.hpp"
#include "system/checkpoint.hpp"

namespace ioguard::analysis {

/// Appends CKP001..CKP004 findings for `facts` to `report`.
/// `expected_fingerprint` enables the CKP002 config cross-check; pass 0 to
/// skip it (e.g. when inspecting a checkpoint without knowing the flags it
/// was created under).
void verify_checkpoint(const sys::CheckpointFacts& facts,
                       std::uint64_t expected_fingerprint, Report& report);

}  // namespace ioguard::analysis
