#include "analysis/verify_service.hpp"

#include <map>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "sched/sbf.hpp"
#include "service/admission_engine.hpp"

namespace ioguard::analysis {

namespace {

using service::AdmissionEngine;
using service::AdmissionEngineConfig;
using service::AdmissionRequest;
using service::EngineCounters;
using service::RequestOp;

struct Script {
  std::vector<AdmissionRequest> requests;
  std::size_t warmup = 0;  ///< count of initial admissions before churn
};

/// Deterministic churn: admit every non-empty VM task set, then `churn`
/// seed-driven evict / re-admit / update / query events over the same
/// profiles (re-using profiles is what gives the memoizing engine its cache
/// hits, mirroring production tenant churn).
Script build_script(const std::vector<workload::TaskSet>& vm_tasks,
                    const ServiceCheckOptions& options) {
  Script script;
  std::vector<workload::TaskSet> profiles;
  for (const auto& ts : vm_tasks)
    if (!ts.empty()) profiles.push_back(ts);
  if (profiles.empty()) return script;

  const auto name_of = [](std::size_t i) { return "vm" + std::to_string(i); };
  const auto tenant_of = [](std::size_t i) {
    return "tenant" + std::to_string(i % 3);
  };

  std::vector<bool> admitted(profiles.size(), false);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    AdmissionRequest r;
    r.op = RequestOp::kAdmit;
    r.tenant = tenant_of(i);
    r.vm = name_of(i);
    r.tasks = profiles[i];
    script.requests.push_back(std::move(r));
    admitted[i] = true;
  }
  script.warmup = script.requests.size();

  std::uint64_t state = options.seed;
  const auto next = [&state] {
    state += 0x9e3779b97f4a7c15ULL;
    return splitmix64_step(state);
  };
  for (std::size_t e = 0; e < options.churn_events; ++e) {
    const std::uint64_t r = next();
    const auto i = static_cast<std::size_t>(r % profiles.size());
    AdmissionRequest req;
    req.tenant = tenant_of(i);
    req.vm = name_of(i);
    if (e % 5 == 4) {
      req.op = RequestOp::kQuery;
      req.tenant.clear();
      req.vm.clear();
    } else if (!admitted[i]) {
      req.op = RequestOp::kAdmit;
      req.tasks = profiles[i];
      admitted[i] = true;
    } else if (((r >> 32) & 1) != 0) {
      req.op = RequestOp::kUpdate;
      req.tasks = profiles[i];
    } else {
      req.op = RequestOp::kEvict;
      admitted[i] = false;
    }
    script.requests.push_back(std::move(req));
  }
  return script;
}

[[nodiscard]] bool same_result(const sched::AdmissionResult& a,
                               const sched::AdmissionResult& b) {
  return a.schedulable == b.schedulable && a.checked_until == b.checked_until &&
         a.violation_t == b.violation_t;
}

/// Replays the whole script on a fresh memoizing engine; returns the final
/// fleet fingerprint (errors on well-formed requests are impossible here and
/// simply skipped -- the fingerprint check still catches divergence).
std::uint64_t replay_fingerprint(const sched::TimeSlotTable& table,
                                 const Script& script) {
  AdmissionEngine engine(table, AdmissionEngineConfig{});
  for (const auto& req : script.requests) {
    const auto decision = engine.handle(req);
    (void)decision;
  }
  return engine.fleet_fingerprint();
}

}  // namespace

void verify_service(const sched::TimeSlotTable& table,
                    const std::vector<workload::TaskSet>& vm_tasks,
                    const ServiceCheckOptions& options, Report& report) {
  const Script script = build_script(vm_tasks, options);
  if (script.requests.empty()) return;

  AdmissionEngineConfig memo_cfg;
  memo_cfg.memoize = true;
  AdmissionEngineConfig full_cfg;
  full_cfg.memoize = false;
  AdmissionEngine memo(table, memo_cfg);
  AdmissionEngine full(table, full_cfg);
  const sched::TableSupply supply(table);

  // The verifier's own fleet model: (tenant, vm) -> task set, committed in
  // lock-step with the engines' applied decisions. It is what makes the
  // ADM001 direct-theorem re-check independent of the engine's bookkeeping.
  std::map<std::pair<std::string, std::string>, workload::TaskSet> shadow;

  bool adm1 = false, adm2 = false, adm4 = false;
  std::uint64_t memo_per_vm = 0, memo_decisions = 0;
  std::uint64_t full_per_vm = 0, full_decisions = 0;

  for (std::size_t step = 0; step < script.requests.size(); ++step) {
    if (options.poison_cache_for_testing && step == script.warmup)
      memo.poison_local_cache_for_testing();

    const AdmissionRequest& req = script.requests[step];
    const auto md = memo.handle(req);
    const auto fd = full.handle(req);

    const std::string ms =
        md.ok() ? md->canonical_string() : "error|" + md.status().to_string();
    const std::string fs =
        fd.ok() ? fd->canonical_string() : "error|" + fd.status().to_string();
    if (ms != fs) {
      if (!adm2) {
        report.add(DiagCode::kAdmCacheIncoherent,
                   "memoized and full decisions differ at step " +
                       std::to_string(step),
                   std::string("op ") + service::to_string(req.op));
        adm2 = true;
      }
      break;  // fleets diverged; later steps would only repeat the finding
    }

    if (md.ok()) {
      ++memo_decisions;
      memo_per_vm += md->per_vm.size();
    }
    if (fd.ok()) {
      ++full_decisions;
      full_per_vm += fd->per_vm.size();
    }
    if (!md.ok()) continue;

    // ADM001: re-run Theorems 2/4 directly on the decision's fleet snapshot.
    auto eval_shadow = shadow;
    if (req.op == RequestOp::kAdmit || req.op == RequestOp::kUpdate)
      eval_shadow[{req.tenant, req.vm}] = req.tasks;

    std::vector<sched::ServerParams> active;
    bool all_local = true;
    for (const auto& v : md->per_vm) {
      const auto it = eval_shadow.find({v.tenant, v.vm});
      if (it == eval_shadow.end()) {
        if (!adm1) {
          report.add(DiagCode::kAdmDecisionMismatch,
                     "decision lists a VM the request stream never admitted",
                     v.tenant + "/" + v.vm);
          adm1 = true;
        }
        continue;
      }
      if (!same_result(sched::theorem4_check(v.server, it->second), v.local) &&
          !adm1) {
        report.add(DiagCode::kAdmDecisionMismatch,
                   "engine L-level verdict disagrees with theorem4_check at "
                   "step " + std::to_string(step),
                   v.tenant + "/" + v.vm);
        adm1 = true;
      }
      if (!v.local.schedulable) all_local = false;
      if (v.server.theta > 0) active.push_back(v.server);
    }
    if (!same_result(sched::theorem2_check(supply, active), md->global) &&
        !adm1) {
      report.add(DiagCode::kAdmDecisionMismatch,
                 "engine G-level verdict disagrees with theorem2_check at "
                 "step " + std::to_string(step),
                 std::string("op ") + service::to_string(req.op));
      adm1 = true;
    }
    if (md->admitted != (md->global.schedulable && all_local) && !adm1) {
      report.add(DiagCode::kAdmDecisionMismatch,
                 "admitted flag inconsistent with the layer verdicts at step " +
                     std::to_string(step),
                 std::string("op ") + service::to_string(req.op));
      adm1 = true;
    }

    // ADM004: an admitted fleet may never out-allocate the supply.
    if (md->admitted &&
        md->allocated_bandwidth > md->supply_bandwidth + 1e-9 && !adm4) {
      report.add(DiagCode::kAdmBandwidthOverflow,
                 "admitted fleet allocates bandwidth beyond F/H at step " +
                     std::to_string(step),
                 std::string("op ") + service::to_string(req.op));
      adm4 = true;
    }

    if (md->applied) {
      switch (req.op) {
        case RequestOp::kAdmit:
        case RequestOp::kUpdate:
          shadow[{req.tenant, req.vm}] = req.tasks;
          break;
        case RequestOp::kEvict:
          shadow.erase({req.tenant, req.vm});
          break;
        case RequestOp::kEvictTenant:
          for (auto it = shadow.begin(); it != shadow.end();)
            it = it->first.first == req.tenant ? shadow.erase(it)
                                               : std::next(it);
          break;
        case RequestOp::kQuery:
          break;
      }
    }
  }

  // ADM003: identical replays must land on the identical fleet fingerprint.
  const std::uint64_t replay_a = replay_fingerprint(table, script);
  const std::uint64_t replay_b = replay_fingerprint(table, script);
  if (replay_a != replay_b)
    report.add(DiagCode::kAdmFingerprintUnstable,
               "two replays of the same request stream produced different "
               "fleet fingerprints");

  // ADM005: counter accounting invariants of both engines.
  const auto check_counters = [&report](const char* which,
                                        const EngineCounters& c,
                                        std::uint64_t per_vm_total,
                                        std::uint64_t decisions) {
    const bool ok = c.local_hits + c.local_misses == per_vm_total &&
                    c.global_hits + c.global_misses == decisions &&
                    c.hi_global_hits + c.hi_global_misses <= decisions &&
                    c.applied + c.rejected <= c.requests;
    if (!ok)
      report.add(DiagCode::kAdmCountersInconsistent,
                 std::string(which) + " engine counters violate accounting "
                 "invariants");
  };
  check_counters("memoized", memo.counters(), memo_per_vm, memo_decisions);
  check_counters("full-reanalysis", full.counters(), full_per_vm,
                 full_decisions);
}

}  // namespace ioguard::analysis
