// Fundamental types shared across the I/O-GUARD libraries.
//
// Time is modelled at two granularities:
//  * Cycle  -- one clock cycle of the 100 MHz platform (10 ns).
//  * Slot   -- one scheduler time slot. The two-layer scheduler of the paper
//              operates at slot granularity; the default mapping is
//               1 slot = 1000 cycles = 10 us (kDefaultCyclesPerSlot), matching
//              workload::kSlotsPerMs = 100.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace ioguard {

using Cycle = std::uint64_t;  ///< absolute time in clock cycles
using Slot = std::uint64_t;   ///< absolute time in scheduler slots
using SlotDelta = std::int64_t;

/// Platform clock of the paper's FPGA prototype (all systems run at 100 MHz).
inline constexpr std::uint64_t kClockHz = 100'000'000;

/// Default slot width: 1000 cycles = 10 us at 100 MHz.
inline constexpr Cycle kDefaultCyclesPerSlot = 1000;

/// Sentinel for "no time" / "never".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();
inline constexpr Slot kNeverSlot = std::numeric_limits<Slot>::max();

/// Strongly-typed small id. Tag disambiguates VmId from TaskId etc.
template <class Tag>
struct Id {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}
  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;
};

struct VmTag {};
struct TaskTag {};
struct JobTag {};
struct DeviceTag {};
struct NodeTag {};

using VmId = Id<VmTag>;        ///< virtual machine index
using TaskId = Id<TaskTag>;    ///< I/O task index (unique across VMs)
using JobId = Id<JobTag>;      ///< job (task instance) index
using DeviceId = Id<DeviceTag>;///< physical I/O device index
using NodeId = Id<NodeTag>;    ///< NoC node index (row-major in the mesh)

/// Converts cycles to whole slots (floor).
[[nodiscard]] constexpr Slot cycles_to_slots(Cycle c, Cycle cycles_per_slot) {
  return c / cycles_per_slot;
}

/// Converts slots to cycles.
[[nodiscard]] constexpr Cycle slots_to_cycles(Slot s, Cycle cycles_per_slot) {
  return s * cycles_per_slot;
}

/// Converts cycles to seconds at the platform clock.
[[nodiscard]] constexpr double cycles_to_seconds(Cycle c) {
  return static_cast<double>(c) / static_cast<double>(kClockHz);
}

/// Converts microseconds to cycles at the platform clock.
[[nodiscard]] constexpr Cycle us_to_cycles(double us) {
  return static_cast<Cycle>(us * 1e-6 * static_cast<double>(kClockHz));
}

}  // namespace ioguard

// std::hash support for strong ids (e.g. unordered_map<VmId, ...>).
template <class Tag>
struct std::hash<ioguard::Id<Tag>> {
  std::size_t operator()(ioguard::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
