// Minimal command-line flag parser for the example executables:
//   --flag=value | --switch
// (No "--flag value" space form: it is ambiguous with a switch followed by
// a positional argument.) Non-flag arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ioguard {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& flag) const;
  [[nodiscard]] std::string get(const std::string& flag,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& flag,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& flag,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& flag, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;  // name (no dashes) -> value
  std::vector<std::string> positional_;
};

}  // namespace ioguard
