// Command-line flag parsing for the example executables and benches.
//
//   --flag=value | --switch
// (No "--flag value" space form: it is ambiguous with a switch followed by
// a positional argument.) Non-flag arguments are collected in order.
//
// Two layers:
//   * CliArgs -- the raw parse (kept for library/test call sites).
//   * CliSpec -- flag *registration*: typed defaults, required flags and
//     one-line descriptions. parse() rejects unknown flags, validates
//     types, injects defaults and auto-answers --help, so no binary ever
//     hand-rolls a usage string again. Tools report errors via Status and
//     map them to exit codes in main() only.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace ioguard {

class CliSpec;

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& flag) const;
  [[nodiscard]] std::string get(const std::string& flag,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& flag,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& flag,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& flag, bool fallback) const;

  // Single-argument accessors for spec-parsed args: CliSpec::parse() injects
  // each registered flag's default, so a registered flag is always present.
  // CHECK-fails on an unregistered name (a programming error, not user input).
  [[nodiscard]] std::string get(const std::string& flag) const;
  [[nodiscard]] std::int64_t get_int(const std::string& flag) const;
  [[nodiscard]] double get_double(const std::string& flag) const;
  /// True when the switch was passed (or given a true-ish value).
  [[nodiscard]] bool get_bool(const std::string& flag) const {
    return get_bool(flag, false);
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }

  /// True when --help was passed to CliSpec::parse(); the caller prints
  /// CliSpec::help_text() and exits 0.
  [[nodiscard]] bool help_requested() const { return help_requested_; }

 private:
  friend class CliSpec;

  std::string program_;
  std::map<std::string, std::string> flags_;  // name (no dashes) -> value
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

/// Flag registration + validation. Build one per binary:
///
///   CliSpec spec("run trials of one architecture");
///   spec.flag_int("vms", 8, "active VMs")
///       .flag_double("util", 0.9, "target utilization")
///       .flag_switch("verify", "statically verify artifacts first");
///   auto args = spec.parse(argc, argv);
///   if (!args.ok()) { std::cerr << args.status() << "\n"; return 2; }
///   if (args->help_requested()) { std::cout << spec.help_text(args->program()); return 0; }
class CliSpec {
 public:
  explicit CliSpec(std::string summary) : summary_(std::move(summary)) {}

  /// Registers a string flag with a default value.
  CliSpec& flag(const std::string& name, const std::string& fallback,
                const std::string& help);
  /// Registers an integer flag with a default value.
  CliSpec& flag_int(const std::string& name, std::int64_t fallback,
                    const std::string& help);
  /// Registers a floating-point flag with a default value.
  CliSpec& flag_double(const std::string& name, double fallback,
                       const std::string& help);
  /// Registers a boolean switch (absent => false).
  CliSpec& flag_switch(const std::string& name, const std::string& help);
  /// Registers a string flag that must be provided.
  CliSpec& required(const std::string& name, const std::string& help);
  /// Documents a positional argument (parse() rejects positionals unless at
  /// least one is declared).
  CliSpec& positional(const std::string& name, const std::string& help);

  /// The auto-generated usage text.
  [[nodiscard]] std::string help_text(const std::string& program) const;

  /// Parses and validates argv against the registered flags: unknown flags
  /// and missing required flags are errors; typed flags must parse; defaults
  /// are injected so single-argument getters always succeed. `--help` short-
  /// circuits validation and sets help_requested() instead.
  [[nodiscard]] StatusOr<CliArgs> parse(int argc,
                                        const char* const* argv) const;

  /// Bench form: removes every *registered* flag from argv in place (so a
  /// downstream parser with its own flag set -- Google Benchmark -- never
  /// sees them) and validates only what was removed. Unknown flags are left
  /// in argv untouched.
  [[nodiscard]] StatusOr<CliArgs> extract(int* argc, char** argv) const;

 private:
  enum class Type : std::uint8_t { kString, kInt, kDouble, kSwitch };
  struct Flag {
    std::string name;
    std::string help;
    Type type = Type::kString;
    bool required = false;
    std::string fallback;  ///< printable default ("" for required/switch)
  };
  struct Positional {
    std::string name;
    std::string help;
  };

  [[nodiscard]] const Flag* find(const std::string& name) const;
  [[nodiscard]] Status validate(CliArgs& args) const;

  std::string summary_;
  std::vector<Flag> flags_;
  std::vector<Positional> positionals_;
};

}  // namespace ioguard
