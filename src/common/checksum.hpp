// Checksums for on-disk artifacts: CRC-32 (IEEE 802.3, reflected) guards
// checkpoint journal records against torn or bit-flipped payloads, and
// FNV-1a/64 fingerprints canonical configuration strings so a resumed run
// can refuse a journal written under different experiment parameters.
#pragma once

#include <cstdint>
#include <string_view>

namespace ioguard {

/// CRC-32 (polynomial 0xEDB88320) of `data`. Standard check value:
/// crc32("123456789") == 0xCBF43926.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Incremental form: feed `crc32_update(crc32_init(), chunk)` per chunk and
/// finish with crc32_final. crc32(s) == crc32_final(crc32_update(init, s)).
[[nodiscard]] constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFu; }
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state,
                                         std::string_view data);
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// FNV-1a 64-bit hash of `data`; stable across platforms and runs, used to
/// fingerprint canonical config strings (not a cryptographic hash).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data);

}  // namespace ioguard
