#include "common/interrupt.hpp"

#include <csignal>

#include "common/check.hpp"

namespace ioguard {

namespace {

// std::signal (not sigaction) keeps this portable; the handler only touches
// a lock-free atomic, which is the one thing async-signal-safe C++ allows.
// This component deliberately stays off the annotated Mutex primitives of
// common/sync.hpp: taking any lock inside a signal handler can deadlock, so
// the compile-time guarantee here is lock-freedom itself.
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handlers require a lock-free stop flag");
std::atomic<bool> g_guard_live{false};

extern "C" void ioguard_interrupt_handler(int /*signum*/) {
  InterruptGuard::request();
}

}  // namespace

std::atomic<bool>& InterruptGuard::stop_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

InterruptGuard::InterruptGuard() {
  IOGUARD_CHECK_MSG(!g_guard_live.exchange(true),
                    "only one InterruptGuard may be live at a time");
  reset();
  std::signal(SIGINT, &ioguard_interrupt_handler);
  std::signal(SIGTERM, &ioguard_interrupt_handler);
}

InterruptGuard::~InterruptGuard() {
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_guard_live.store(false);
}

}  // namespace ioguard
