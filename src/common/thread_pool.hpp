// Reusable fixed-size worker pool for embarrassingly parallel fan-out.
//
// The experiment drivers run hundreds of independent trials; this pool
// spreads index-based batches over N threads with dynamic (atomic-counter)
// load balance. Determinism is the caller's contract: each index writes only
// its own output slot, and order-sensitive reductions are performed by the
// caller in index order after the batch drains (see sys::ParallelRunner).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.hpp"

namespace ioguard {

/// Worker count used when a caller passes jobs == 0: the IOGUARD_JOBS
/// environment variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (at least 1).
[[nodiscard]] std::size_t default_jobs();

/// Fixed set of worker threads executing index-based parallel loops.
/// With jobs == 1 no threads are spawned and every batch runs inline on the
/// calling thread, so a single-job pool is bit-for-bit a sequential loop.
class ThreadPool {
 public:
  /// `jobs` is the total execution width including the calling thread
  /// (jobs - 1 workers are spawned); 0 means default_jobs().
  explicit ThreadPool(std::size_t jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t jobs() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), claiming indices dynamically across
  /// the workers and the calling thread; blocks until all n calls returned.
  /// Reentrancy (parallel_for from inside fn) is not supported. If any fn
  /// throws, the remaining indices still run and the first exception (in
  /// completion order) is rethrown here once the batch drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Batch;

  void worker_loop();

  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar work_cv_;  ///< workers wait for a new batch
  // Workers keep the Batch alive via shared_ptr, so a worker waking after
  // the batch drained only ever sees an exhausted index counter -- it can
  // never touch a newer batch's state or a dead caller frame.
  std::shared_ptr<Batch> current_ IOGUARD_GUARDED_BY(mutex_);
  bool shutdown_ IOGUARD_GUARDED_BY(mutex_) = false;
};

}  // namespace ioguard
