// Assertion macros. IOGUARD_CHECK is always on (throws, so tests can assert
// on violations); IOGUARD_DCHECK compiles out in release builds but still
// type-checks its condition. The comparison forms (IOGUARD_CHECK_EQ, ...)
// print both operands on failure, so a failed admission-bound or slot-count
// check reports the actual values instead of just the expression text.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

namespace ioguard {

/// Thrown when an IOGUARD_CHECK fails; carries file:line and the condition.
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw CheckFailure(os.str());
}

template <class T, class = void>
struct is_streamable : std::false_type {};
template <class T>
struct is_streamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                             << std::declval<const T&>())>>
    : std::true_type {};

/// Renders a value for a failure message; falls back to a placeholder for
/// types without operator<< (e.g. strong ids, enums).
template <class T>
std::string stringify(const T& v) {
  if constexpr (is_streamable<T>::value) {
    std::ostringstream os;
    // Stream integral values numerically even for char-like types.
    if constexpr (std::is_same_v<T, char> || std::is_same_v<T, signed char> ||
                  std::is_same_v<T, unsigned char>) {
      os << static_cast<int>(v);
    } else {
      os << v;
    }
    return os.str();
  } else if constexpr (std::is_enum_v<T>) {
    std::ostringstream os;
    os << static_cast<std::underlying_type_t<T>>(v);
    return os.str();
  } else {
    return "<unprintable>";
  }
}

/// Failure path of the comparison checks: includes both operand values.
template <class A, class B>
[[noreturn]] void check_op_failed(const char* expr, const char* file, int line,
                                  const A& a, const B& b,
                                  const std::string& msg) {
  std::string text = std::string("(") + stringify(a) + " vs " + stringify(b) +
                     ")";
  if (!msg.empty()) text += " -- " + msg;
  check_failed(expr, file, line, text);
}

}  // namespace detail

}  // namespace ioguard

#define IOGUARD_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond))                                                         \
      ::ioguard::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define IOGUARD_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond))                                                         \
      ::ioguard::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

// Comparison checks: evaluate each operand once, print both on failure.
#define IOGUARD_CHECK_OP_(op, a, b, msg)                                     \
  do {                                                                       \
    const auto& ioguard_check_a_ = (a);                                      \
    const auto& ioguard_check_b_ = (b);                                      \
    if (!(ioguard_check_a_ op ioguard_check_b_))                             \
      ::ioguard::detail::check_op_failed(#a " " #op " " #b, __FILE__,        \
                                         __LINE__, ioguard_check_a_,         \
                                         ioguard_check_b_, (msg));           \
  } while (0)

#define IOGUARD_CHECK_EQ(a, b) IOGUARD_CHECK_OP_(==, a, b, "")
#define IOGUARD_CHECK_NE(a, b) IOGUARD_CHECK_OP_(!=, a, b, "")
#define IOGUARD_CHECK_LT(a, b) IOGUARD_CHECK_OP_(<, a, b, "")
#define IOGUARD_CHECK_LE(a, b) IOGUARD_CHECK_OP_(<=, a, b, "")
#define IOGUARD_CHECK_GT(a, b) IOGUARD_CHECK_OP_(>, a, b, "")
#define IOGUARD_CHECK_GE(a, b) IOGUARD_CHECK_OP_(>=, a, b, "")

#define IOGUARD_CHECK_EQ_MSG(a, b, msg) IOGUARD_CHECK_OP_(==, a, b, msg)
#define IOGUARD_CHECK_LE_MSG(a, b, msg) IOGUARD_CHECK_OP_(<=, a, b, msg)

#ifdef NDEBUG
// Release builds: the condition is never evaluated, but sizeof() forces it
// to type-check, so a DCHECK referencing a renamed member still breaks the
// build instead of silently rotting.
#define IOGUARD_DCHECK(cond) ((void)sizeof(cond))
#define IOGUARD_DCHECK_MSG(cond, msg) ((void)sizeof(cond), (void)sizeof(msg))
#define IOGUARD_DCHECK_EQ(a, b) ((void)sizeof((a) == (b)))
#define IOGUARD_DCHECK_NE(a, b) ((void)sizeof((a) != (b)))
#define IOGUARD_DCHECK_LT(a, b) ((void)sizeof((a) < (b)))
#define IOGUARD_DCHECK_LE(a, b) ((void)sizeof((a) <= (b)))
#define IOGUARD_DCHECK_GT(a, b) ((void)sizeof((a) > (b)))
#define IOGUARD_DCHECK_GE(a, b) ((void)sizeof((a) >= (b)))
#else
#define IOGUARD_DCHECK(cond) IOGUARD_CHECK(cond)
#define IOGUARD_DCHECK_MSG(cond, msg) IOGUARD_CHECK_MSG(cond, msg)
#define IOGUARD_DCHECK_EQ(a, b) IOGUARD_CHECK_EQ(a, b)
#define IOGUARD_DCHECK_NE(a, b) IOGUARD_CHECK_NE(a, b)
#define IOGUARD_DCHECK_LT(a, b) IOGUARD_CHECK_LT(a, b)
#define IOGUARD_DCHECK_LE(a, b) IOGUARD_CHECK_LE(a, b)
#define IOGUARD_DCHECK_GT(a, b) IOGUARD_CHECK_GT(a, b)
#define IOGUARD_DCHECK_GE(a, b) IOGUARD_CHECK_GE(a, b)
#endif
