// Assertion macros. IOGUARD_CHECK is always on (throws, so tests can assert
// on violations); IOGUARD_DCHECK compiles out in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ioguard {

/// Thrown when an IOGUARD_CHECK fails; carries file:line and the condition.
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace ioguard

#define IOGUARD_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond))                                                         \
      ::ioguard::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define IOGUARD_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond))                                                         \
      ::ioguard::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define IOGUARD_DCHECK(cond) ((void)0)
#else
#define IOGUARD_DCHECK(cond) IOGUARD_CHECK(cond)
#endif
