#include "common/env.hpp"

#include <cstdlib>

namespace ioguard {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

double env_double(const std::string& name, double fallback) {
  const char* v = std::getenv(name.c_str());
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  return (v && *v) ? std::string(v) : fallback;
}

}  // namespace ioguard
