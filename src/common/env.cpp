#include "common/env.hpp"

#include <cstdlib>

// getenv() is not thread-safe against a concurrent setenv(); the tree never
// calls setenv, and these lookups happen during single-threaded driver
// startup (jobs/log/bench knobs), so each call site carries a reviewed
// NOLINT(concurrency-mt-unsafe).

namespace ioguard {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- startup-only, no setenv in tree
  const char* v = std::getenv(name.c_str());
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

double env_double(const std::string& name, double fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- startup-only, no setenv in tree
  const char* v = std::getenv(name.c_str());
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

std::string env_string(const std::string& name, const std::string& fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- startup-only, no setenv in tree
  const char* v = std::getenv(name.c_str());
  return (v && *v) ? std::string(v) : fallback;
}

}  // namespace ioguard
