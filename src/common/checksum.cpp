#include "common/checksum.hpp"

#include <array>

namespace ioguard {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, std::string_view data) {
  for (const char ch : data) {
    const auto byte = static_cast<std::uint8_t>(ch);
    state = kCrc32Table[(state ^ byte) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(std::string_view data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char ch : data) {
    hash ^= static_cast<std::uint8_t>(ch);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

}  // namespace ioguard
