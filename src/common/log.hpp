// Minimal levelled logging. Experiments run with logging off by default;
// set IOGUARD_LOG=debug|info|warn|error in the environment to enable.
#pragma once

#include <sstream>
#include <string>

namespace ioguard {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Current global threshold; initialised from the IOGUARD_LOG env var.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace ioguard

#define IOGUARD_LOG(level, expr)                                       \
  do {                                                                 \
    if (static_cast<int>(level) >=                                     \
        static_cast<int>(::ioguard::log_threshold())) {                \
      std::ostringstream ioguard_log_os;                               \
      ioguard_log_os << expr;                                          \
      ::ioguard::detail::log_emit(level, ioguard_log_os.str());        \
    }                                                                  \
  } while (0)

#define LOG_DEBUG(expr) IOGUARD_LOG(::ioguard::LogLevel::kDebug, expr)
#define LOG_INFO(expr) IOGUARD_LOG(::ioguard::LogLevel::kInfo, expr)
#define LOG_WARN(expr) IOGUARD_LOG(::ioguard::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) IOGUARD_LOG(::ioguard::LogLevel::kError, expr)
