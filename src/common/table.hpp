// Plain-text table / CSV emission for bench harnesses, so every bench binary
// can print the same rows the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ioguard {

/// Accumulates rows of strings and renders an aligned ASCII table or CSV.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with operator<<.
  template <class... Ts>
  void add(const Ts&... cells) {
    add_row({to_cell(cells)...});
  }

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  void render(std::ostream& os) const;      ///< aligned, boxed with '|'
  void render_csv(std::ostream& os) const;  ///< RFC-4180-ish CSV

 private:
  template <class T>
  static std::string to_cell(const T& v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string fmt_double(double v, int precision = 2);

template <class T>
std::string TextTable::to_cell(const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    return v;
  } else if constexpr (std::is_convertible_v<T, const char*>) {
    return std::string(v);
  } else if constexpr (std::is_floating_point_v<T>) {
    return fmt_double(static_cast<double>(v));
  } else {
    return std::to_string(v);
  }
}

}  // namespace ioguard
