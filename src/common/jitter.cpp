#include "common/jitter.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ioguard {

const char* to_string(JitterChannel channel) {
  switch (channel) {
    case JitterChannel::kPChannel: return "P";
    case JitterChannel::kRChannel: return "R";
    case JitterChannel::kFifo: return "fifo";
  }
  return "?";
}

JitterRecorder::JitterRecorder(std::size_t num_vms)
    : num_vms_(num_vms), by_channel_vm_(kJitterChannelCount * num_vms) {
  IOGUARD_CHECK(num_vms >= 1);
}

void JitterRecorder::record(JitterChannel channel, VmId vm, TaskId task,
                            Slot intended, Slot actual) {
  IOGUARD_DCHECK(actual >= intended);
  const Slot deviation = actual >= intended ? actual - intended : 0;
  const std::size_t vm_index = vm.valid() ? vm.value : 0;
  IOGUARD_CHECK(vm_index < num_vms_);
  by_channel_vm_[static_cast<std::size_t>(channel) * num_vms_ + vm_index].add(
      static_cast<double>(deviation));
  if (task.valid()) {
    if (task.value >= by_task_.size()) by_task_.resize(task.value + 1);
    TaskJitter& t = by_task_[task.value];
    t.task = task.value;
    ++t.ops;
    t.worst_slots = std::max<std::uint64_t>(t.worst_slots, deviation);
  }
}

void JitterRecorder::record_translator(DeviceId device, Cycle jitter_cycles) {
  const std::size_t index = device.valid() ? device.value : 0;
  if (index >= translator_.size()) translator_.resize(index + 1);
  translator_[index].add(static_cast<double>(jitter_cycles));
}

const SampleSet& JitterRecorder::samples(JitterChannel channel,
                                         std::size_t vm_index) const {
  IOGUARD_CHECK(vm_index < num_vms_);
  return by_channel_vm_[static_cast<std::size_t>(channel) * num_vms_ +
                        vm_index];
}

std::vector<JitterRecorder::TaskJitter> JitterRecorder::by_task() const {
  std::vector<TaskJitter> out;
  for (const TaskJitter& t : by_task_)
    if (t.ops > 0) out.push_back(t);
  return out;
}

}  // namespace ioguard
