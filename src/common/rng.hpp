// Deterministic pseudo-random number generation for reproducible experiments.
// xoshiro256** with a splitmix64 seeder; all experiment randomness flows
// through Rng so a (seed, trial) pair fully determines a run.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace ioguard {

/// One splitmix64 output step (Steele, Lea & Flood): a full-avalanche
/// 64-bit mix. Exposed for seed derivation; Rng seeding uses the same
/// function through its streaming form.
[[nodiscard]] constexpr std::uint64_t splitmix64_step(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives a trial seed from (base_seed, stream, index) by chained
/// splitmix64 rounds. Every bit of every component avalanches into the
/// result, unlike affine schemes (base * K + t) where nearby (base, t)
/// pairs collide: base and base - K produce overlapping seed sequences.
/// Used as mix_seed(base_seed, sweep_point, trial_index) by the experiment
/// drivers -- see DESIGN.md (determinism contract).
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t base,
                                               std::uint64_t stream = 0,
                                               std::uint64_t index = 0) {
  std::uint64_t x = splitmix64_step(base);
  x = splitmix64_step(x ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  x = splitmix64_step(x ^ (0xbf58476d1ce4e5b9ULL * (index + 1)));
  return x;
}

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x10c0a7d5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& w : s_) w = splitmix64(x);
  }

  /// Derives an independent stream, e.g. per trial: rng.fork(trial_index).
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    return Rng(s_[0] ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    IOGUARD_CHECK(lo <= hi);
    const std::uint64_t range = hi - lo + 1;
    if (range == 0) return (*this)();  // full 64-bit range
    // Lemire's unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto lo128 = static_cast<std::uint64_t>(m);
    if (lo128 < range) {
      const std::uint64_t t = (0 - range) % range;
      while (lo128 < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * range;
        lo128 = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::uint64_t>(m >> 64);
  }

  /// Log-uniform double in [lo, hi); classic for period generation.
  double log_uniform(double lo, double hi) {
    IOGUARD_CHECK(lo > 0.0 && hi > lo);
    return std::exp(uniform(std::log(lo), std::log(hi)));
  }

  /// Exponential with mean `mean` (for sporadic inter-arrival slack).
  double exponential(double mean) {
    IOGUARD_CHECK(mean > 0.0);
    double u = uniform();
    if (u >= 1.0) u = 0.9999999999999999;
    return -mean * std::log1p(-u);
  }

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Picks an index in [0, n) uniformly.
  std::size_t index(std::size_t n) {
    IOGUARD_CHECK(n > 0);
    return static_cast<std::size_t>(uniform_int(0, n - 1));
  }

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    const std::uint64_t z = splitmix64_step(x);
    x += 0x9e3779b97f4a7c15ULL;
    return z;
  }
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace ioguard
