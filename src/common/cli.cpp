#include "common/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "common/check.hpp"

namespace ioguard {

namespace {

bool is_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

bool parses_as_int(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  (void)std::strtoll(s.c_str(), &end, 10);
  return end && *end == '\0';
}

bool parses_as_double(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end && *end == '\0';
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!is_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      flags_[arg] = "";  // boolean switch
    }
  }
}

bool CliArgs::has(const std::string& flag) const {
  return flags_.count(flag) != 0;
}

std::string CliArgs::get(const std::string& flag,
                         const std::string& fallback) const {
  const auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& flag,
                              std::int64_t fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : fallback;
}

double CliArgs::get_double(const std::string& flag, double fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : fallback;
}

bool CliArgs::get_bool(const std::string& flag, bool fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on")
    return true;
  return false;
}

std::string CliArgs::get(const std::string& flag) const {
  const auto it = flags_.find(flag);
  IOGUARD_CHECK_MSG(it != flags_.end(), "unregistered flag --" + flag);
  return it->second;
}

std::int64_t CliArgs::get_int(const std::string& flag) const {
  IOGUARD_CHECK_MSG(has(flag), "unregistered flag --" + flag);
  return get_int(flag, 0);
}

double CliArgs::get_double(const std::string& flag) const {
  IOGUARD_CHECK_MSG(has(flag), "unregistered flag --" + flag);
  return get_double(flag, 0.0);
}

CliSpec& CliSpec::flag(const std::string& name, const std::string& fallback,
                       const std::string& help) {
  flags_.push_back(Flag{name, help, Type::kString, false, fallback});
  return *this;
}

CliSpec& CliSpec::flag_int(const std::string& name, std::int64_t fallback,
                           const std::string& help) {
  flags_.push_back(Flag{name, help, Type::kInt, false,
                        std::to_string(fallback)});
  return *this;
}

CliSpec& CliSpec::flag_double(const std::string& name, double fallback,
                              const std::string& help) {
  std::ostringstream os;
  os << fallback;
  flags_.push_back(Flag{name, help, Type::kDouble, false, os.str()});
  return *this;
}

CliSpec& CliSpec::flag_switch(const std::string& name,
                              const std::string& help) {
  flags_.push_back(Flag{name, help, Type::kSwitch, false, ""});
  return *this;
}

CliSpec& CliSpec::required(const std::string& name, const std::string& help) {
  flags_.push_back(Flag{name, help, Type::kString, true, ""});
  return *this;
}

CliSpec& CliSpec::positional(const std::string& name, const std::string& help) {
  positionals_.push_back(Positional{name, help});
  return *this;
}

const CliSpec::Flag* CliSpec::find(const std::string& name) const {
  for (const auto& f : flags_)
    if (f.name == name) return &f;
  return nullptr;
}

std::string CliSpec::help_text(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]";
  for (const auto& p : positionals_) os << " [" << p.name << "]";
  os << "\n";
  if (!summary_.empty()) os << summary_ << "\n";
  os << "\n";

  // Left column: "--name=VALUE" / "--switch"; pad to the widest entry.
  auto left_of = [](const Flag& f) {
    std::string s = "--" + f.name;
    if (f.type != Type::kSwitch) s += "=VALUE";
    return s;
  };
  std::size_t width = std::string("--help").size();
  for (const auto& f : flags_) width = std::max(width, left_of(f).size());
  for (const auto& p : positionals_)
    width = std::max(width, p.name.size() + 2);

  for (const auto& f : flags_) {
    std::string left = left_of(f);
    os << "  " << left << std::string(width - left.size() + 2, ' ') << f.help;
    if (f.required) {
      os << " (required)";
    } else if (f.type != Type::kSwitch && !f.fallback.empty()) {
      os << " (default: " << f.fallback << ")";
    }
    os << "\n";
  }
  os << "  --help" << std::string(width - 6 + 2, ' ')
     << "print this help and exit\n";
  for (const auto& p : positionals_)
    os << "  " << p.name << std::string(width - p.name.size() + 2, ' ')
       << p.help << "\n";
  return os.str();
}

Status CliSpec::validate(CliArgs& args) const {
  if (args.has("help")) {
    args.help_requested_ = true;
    return OkStatus();  // short-circuit: help trumps every other check
  }
  for (const auto& [name, value] : args.flags_) {
    const Flag* f = find(name);
    if (f == nullptr)
      return InvalidArgumentError("unknown flag --" + name +
                                  " (see --help for the flag list)");
    switch (f->type) {
      case Type::kInt:
        if (!parses_as_int(value))
          return InvalidArgumentError("flag --" + name +
                                      " expects an integer, got '" + value +
                                      "'");
        break;
      case Type::kDouble:
        if (!parses_as_double(value))
          return InvalidArgumentError("flag --" + name +
                                      " expects a number, got '" + value +
                                      "'");
        break;
      case Type::kString:
      case Type::kSwitch:
        break;
    }
  }
  for (const auto& f : flags_) {
    if (f.required && !args.has(f.name))
      return InvalidArgumentError("missing required flag --" + f.name);
    if (f.type != Type::kSwitch)
      args.flags_.emplace(f.name, f.fallback);  // inject default if absent
  }
  if (positionals_.empty() && !args.positional().empty())
    return InvalidArgumentError("unexpected positional argument '" +
                                args.positional().front() + "'");
  return OkStatus();
}

StatusOr<CliArgs> CliSpec::parse(int argc, const char* const* argv) const {
  CliArgs args(argc, argv);
  Status st = validate(args);
  if (!st.ok()) return st;
  return args;
}

StatusOr<CliArgs> CliSpec::extract(int* argc, char** argv) const {
  // Pull registered flags (and --help) out of argv; leave the rest -- the
  // downstream parser owns them.
  std::vector<const char*> ours;
  if (*argc > 0) ours.push_back(argv[0]);
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    bool take = false;
    if (is_flag(arg)) {
      const auto eq = arg.find('=');
      const std::string name =
          arg.substr(2, eq == std::string::npos ? std::string::npos : eq - 2);
      take = name == "help" || find(name) != nullptr;
    }
    if (take) {
      ours.push_back(argv[i]);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  CliArgs args(static_cast<int>(ours.size()), ours.data());
  Status st = validate(args);
  if (!st.ok()) return st;
  return args;
}

}  // namespace ioguard
