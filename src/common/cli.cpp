#include "common/cli.hpp"

#include <cstdlib>

namespace ioguard {

namespace {

bool is_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!is_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      flags_[arg] = "";  // boolean switch
    }
  }
}

bool CliArgs::has(const std::string& flag) const {
  return flags_.count(flag) != 0;
}

std::string CliArgs::get(const std::string& flag,
                         const std::string& fallback) const {
  const auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& flag,
                              std::int64_t fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : fallback;
}

double CliArgs::get_double(const std::string& flag, double fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : fallback;
}

bool CliArgs::get_bool(const std::string& flag, bool fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on")
    return true;
  return false;
}

}  // namespace ioguard
