// Environment-variable knobs used by bench harnesses to trade fidelity for
// wall-clock time (e.g. IOGUARD_TRIALS, IOGUARD_HORIZON_FACTOR).
#pragma once

#include <cstdint>
#include <string>

namespace ioguard {

/// Reads an integer env var; returns `fallback` when unset or malformed.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Reads a double env var; returns `fallback` when unset or malformed.
double env_double(const std::string& name, double fallback);

/// Reads a string env var; returns `fallback` when unset.
std::string env_string(const std::string& name, const std::string& fallback);

}  // namespace ioguard
