#include "common/atomic_file.hpp"

#include <algorithm>
#include <fstream>
#include <system_error>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "common/check.hpp"

namespace ioguard {

namespace {

[[nodiscard]] int current_pid() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<int>(::getpid());
#endif
}

[[nodiscard]] std::filesystem::path temp_path_for(
    const std::filesystem::path& target) {
  std::filesystem::path tmp = target;
  tmp += std::string(atomic_temp_marker()) + std::to_string(current_pid());
  return tmp;
}

}  // namespace

std::string_view atomic_temp_marker() { return ".tmp-ioguard."; }

Status write_file_atomic(const std::filesystem::path& path,
                         std::string_view content) {
  if (path.empty()) return InvalidArgumentError("empty output path");
  const std::filesystem::path tmp = temp_path_for(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      return UnavailableError("cannot open " + tmp.string() + " for writing");
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return UnavailableError("short write to " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    return UnavailableError("cannot rename " + tmp.string() + " to " +
                            path.string() + ": " + ec.message());
  }
  return OkStatus();
}

Status AtomicFileWriter::commit() {
  IOGUARD_CHECK_MSG(!committed_, "AtomicFileWriter::commit() called twice");
  committed_ = true;
  if (!buffer_)
    return UnavailableError("buffered write to " + path_.string() + " failed");
  return write_file_atomic(path_, buffer_.str());
}

std::vector<std::string> find_orphaned_temp_files(
    const std::filesystem::path& dir) {
  std::vector<std::string> orphans;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return orphans;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.find(atomic_temp_marker()) != std::string::npos)
      orphans.push_back(entry.path().string());
  }
  std::sort(orphans.begin(), orphans.end());
  return orphans;
}

}  // namespace ioguard
