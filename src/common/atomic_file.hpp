// Atomic (all-or-nothing) file writes: content is staged in a sibling
// temporary file and renamed over the target only after a successful flush,
// so a crash mid-write can never leave a torn output file behind. Every
// exporter that produces a consumable artifact (summary JSON, Prometheus
// text, Perfetto traces, bench reports, checkpoint manifests) routes
// through here.
#pragma once

#include <filesystem>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace ioguard {

/// Suffix marker of staging files ("<target>.<marker><pid>"). Exposed so the
/// checkpoint verifier can flag orphans left behind by a crashed writer.
[[nodiscard]] std::string_view atomic_temp_marker();

/// Writes `content` to `path` atomically (temp file + rename). On any
/// failure the target is left untouched and the temp file is removed.
[[nodiscard]] Status write_file_atomic(const std::filesystem::path& path,
                                       std::string_view content);

/// Stream-style atomic writer: build the artifact into `stream()`, then
/// `commit()` performs the temp-file+rename publish. Destroying the writer
/// without committing discards the content (nothing touches the target).
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::filesystem::path path)
      : path_(std::move(path)) {}

  [[nodiscard]] std::ostream& stream() { return buffer_; }

  /// Publishes the buffered content; returns Unavailable on I/O failure.
  /// Calling commit() twice is a programming error (checked).
  [[nodiscard]] Status commit();

 private:
  std::filesystem::path path_;
  std::ostringstream buffer_;
  bool committed_ = false;
};

/// Staging files matching `atomic_temp_marker()` in `dir` (non-recursive),
/// sorted by filename. A non-empty result after a run means a writer
/// crashed mid-publish (checkpoint diagnostic CKP003). A missing or
/// unreadable directory yields an empty list.
[[nodiscard]] std::vector<std::string> find_orphaned_temp_files(
    const std::filesystem::path& dir);

}  // namespace ioguard
