// Fixed-capacity ring buffer modelling hardware FIFO queues (the structure
// the paper identifies as the root of the I/O predictability problem).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace ioguard {

/// Bounded FIFO. push() fails (returns false) when full, mirroring hardware
/// back-pressure instead of silently growing.
template <class T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : storage_(capacity + 1) {
    IOGUARD_CHECK(capacity > 0);
  }

  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] bool full() const { return next(tail_) == head_; }
  [[nodiscard]] std::size_t capacity() const { return storage_.size() - 1; }

  [[nodiscard]] std::size_t size() const {
    return tail_ >= head_ ? tail_ - head_
                          : storage_.size() - head_ + tail_;
  }

  /// Enqueues; returns false when the FIFO is full (back-pressure).
  [[nodiscard]] bool push(T value) {
    if (full()) return false;
    storage_[tail_] = std::move(value);
    tail_ = next(tail_);
    return true;
  }

  /// Dequeues the oldest element; empty optional when the FIFO is empty.
  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T v = std::move(storage_[head_]);
    head_ = next(head_);
    return v;
  }

  /// Oldest element without removing it.
  [[nodiscard]] const T& front() const {
    IOGUARD_CHECK(!empty());
    return storage_[head_];
  }

  /// i-th element from the front (0 = oldest). FIFO hardware cannot do this;
  /// provided for test instrumentation only.
  [[nodiscard]] const T& at(std::size_t i) const {
    IOGUARD_CHECK(i < size());
    return storage_[(head_ + i) % storage_.size()];
  }

  void clear() { head_ = tail_ = 0; }

 private:
  [[nodiscard]] std::size_t next(std::size_t i) const {
    return (i + 1) % storage_.size();
  }

  std::vector<T> storage_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace ioguard
