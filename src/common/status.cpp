#include "common/status.hpp"

#include <ostream>

namespace ioguard {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
  }
  return "?";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out = ioguard::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.to_string();
}

int exit_code(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnavailable:
      return 2;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kDataLoss:
    case StatusCode::kInternal:
      return 1;
    case StatusCode::kCancelled:
      return 3;
  }
  return 1;
}

}  // namespace ioguard
