// Online statistics accumulators used by the metrics pipeline:
// Welford mean/variance, min/max, and a percentile-capable sample reservoir.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ioguard {

/// Numerically stable running mean / variance / extrema (Welford).
class OnlineStats {
 public:
  /// Exact internal state, for bit-faithful checkpoint serialization: an
  /// accumulator restored via from_raw(raw()) produces byte-identical
  /// mean/variance/extrema to the original, including the empty-state
  /// sentinels (min = +inf, max = -inf).
  struct Raw {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  void add(double x);
  void merge(const OnlineStats& other);

  [[nodiscard]] Raw raw() const {
    return {static_cast<std::uint64_t>(n_), mean_, m2_, min_, max_};
  }
  [[nodiscard]] static OnlineStats from_raw(const Raw& raw);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  /// NaN when no samples: an empty accumulator has no extrema, and a silent
  /// 0.0 would read as a genuine observed latency downstream.
  [[nodiscard]] double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; provides exact percentiles. For bounded experiment
/// sizes this is simpler and more accurate than a streaming sketch.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  /// Appends every sample of `other` (parallel-reduction building block;
  /// merging in trial-index order reproduces the sequential insert order).
  void merge(const SampleSet& other);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Samples in insertion order (mean() sums in this order, so checkpoint
  /// serialization must preserve it to stay bit-identical).
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  /// Exact percentile by linear interpolation; p in [0, 100].
  /// Both overloads share one implementation over a sorted view: the
  /// non-const overload sorts in place (cheapest when the caller owns the
  /// set); the const overload sorts a scratch copy, leaving the set
  /// untouched.
  [[nodiscard]] double percentile(double p);
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() { return percentile(50.0); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min();
  [[nodiscard]] double min() const;
  [[nodiscard]] double max();
  [[nodiscard]] double max() const;

 private:
  void ensure_sorted();
  /// The single percentile implementation: linear interpolation between
  /// neighbouring order statistics of an ascending-sorted sample vector.
  [[nodiscard]] static double percentile_sorted(
      const std::vector<double>& sorted, double p);
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range values clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t bins() const { return bins_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> bins_;
  std::size_t total_ = 0;
};

}  // namespace ioguard
