// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable carrying Clang thread-safety-analysis attributes,
// so lock discipline is checked at *compile time* (-Wthread-safety) instead
// of only at runtime under TSan. Under GCC (or Clang without the capability
// attributes) every annotation expands to nothing and the wrappers compile
// to exactly the std primitives they hold.
//
// Usage pattern (see DESIGN.md §13, "Static analysis"):
//
//   Mutex mutex_;
//   std::size_t completed_ IOGUARD_GUARDED_BY(mutex_) = 0;
//
//   void done() {
//     const MutexLock lock(mutex_);   // scoped capability
//     ++completed_;                   // checked: mutex_ must be held
//   }
//
// Every concurrent component of the tree (thread_pool, ParallelRunner,
// CheckpointJournal, the log sink) declares its shared state GUARDED_BY one
// of these wrappers; the `thread-safety` CI job builds with clang and
// -Werror=thread-safety, so an unguarded access is a build break.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

// ---- Attribute macros ------------------------------------------------------
// Prefixed (IOGUARD_) so they cannot collide with other headers' spellings.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define IOGUARD_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef IOGUARD_THREAD_ANNOTATION
#define IOGUARD_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define IOGUARD_CAPABILITY(x) IOGUARD_THREAD_ANNOTATION(capability(x))
#define IOGUARD_SCOPED_CAPABILITY IOGUARD_THREAD_ANNOTATION(scoped_lockable)
#define IOGUARD_GUARDED_BY(x) IOGUARD_THREAD_ANNOTATION(guarded_by(x))
#define IOGUARD_PT_GUARDED_BY(x) IOGUARD_THREAD_ANNOTATION(pt_guarded_by(x))
#define IOGUARD_REQUIRES(...) \
  IOGUARD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define IOGUARD_ACQUIRE(...) \
  IOGUARD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IOGUARD_TRY_ACQUIRE(...) \
  IOGUARD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define IOGUARD_RELEASE(...) \
  IOGUARD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define IOGUARD_EXCLUDES(...) \
  IOGUARD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define IOGUARD_ASSERT_CAPABILITY(x) \
  IOGUARD_THREAD_ANNOTATION(assert_capability(x))
#define IOGUARD_RETURN_CAPABILITY(x) IOGUARD_THREAD_ANNOTATION(lock_returned(x))
#define IOGUARD_NO_THREAD_SAFETY_ANALYSIS \
  IOGUARD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ioguard {

class CondVar;

/// std::mutex carrying the `capability` attribute, so members can be
/// declared IOGUARD_GUARDED_BY(mutex_) and the analysis tracks lock state.
class IOGUARD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IOGUARD_ACQUIRE() { m_.lock(); }
  void unlock() IOGUARD_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() IOGUARD_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// Scoped lock over Mutex (the only way the tree takes a lock; bare
/// lock()/unlock() pairs are reserved for the wrappers themselves).
class IOGUARD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) IOGUARD_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() IOGUARD_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to Mutex at each wait. The caller holds the
/// mutex (typically via MutexLock); wait() re-adopts that ownership for the
/// unlock/relock cycle and hands it back before returning, so the analysis
/// sees the capability held across the whole scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until pred() is true; `mutex` must be held by the caller.
  template <class Predicate>
  void wait(Mutex& mutex, Predicate pred) IOGUARD_REQUIRES(mutex) {
    std::unique_lock<std::mutex> relock(mutex.m_, std::adopt_lock);
    cv_.wait(relock, pred);
    relock.release();  // ownership stays with the caller's scope
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Debug single-writer checker for components whose concurrency contract is
/// "externally synchronized" rather than lock-based (MetricsRegistry,
/// EventTrace: one trial writes, the runner reads only after the batch
/// barrier). Binds to the first thread that calls check() and CHECK-fails
/// (via the return value; callers wrap in IOGUARD_DCHECK) when a different
/// thread writes without an intervening rebind(). Compiled away in NDEBUG
/// builds -- the hot path pays nothing in release.
class ThreadChecker {
 public:
  ThreadChecker() = default;
  // A copied or moved-into object starts unbound: the binding is an identity
  // of the *object's* writer, not transferable state (and std::atomic would
  // otherwise delete the host class's defaulted moves).
  ThreadChecker(const ThreadChecker&) noexcept {}
  ThreadChecker& operator=(const ThreadChecker&) noexcept {
    rebind();
    return *this;
  }

#ifndef NDEBUG
  /// True when the calling thread may mutate the guarded object.
  [[nodiscard]] bool check() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    // First caller binds; the checker itself must not race, hence the CAS.
    if (bound_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return true;
    }
    return expected == self;
  }
  /// Transfers ownership at a synchronization point (e.g. after the fan-out
  /// barrier, before the merge): the next writer re-binds.
  void rebind() const { bound_.store(std::thread::id{},
                                     std::memory_order_relaxed); }

 private:
  mutable std::atomic<std::thread::id> bound_{};
#else
  [[nodiscard]] bool check() const { return true; }
  void rebind() const {}
#endif
};

}  // namespace ioguard
