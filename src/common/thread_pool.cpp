#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/check.hpp"
#include "common/env.hpp"

namespace ioguard {

std::size_t default_jobs() {
  const auto env = env_int("IOGUARD_JOBS", 0);
  if (env > 0) return static_cast<std::size_t>(env);
  return std::max(1u, std::thread::hardware_concurrency());
}

/// One parallel_for invocation. Heap-allocated and shared with every worker
/// that participates, so its lifetime outlasts any late wakeup.
struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};

  Mutex mutex;
  CondVar done_cv;
  std::size_t completed IOGUARD_GUARDED_BY(mutex) = 0;
  std::exception_ptr first_error IOGUARD_GUARDED_BY(mutex);

  /// Claims and runs indices until the counter is exhausted; reports the
  /// per-executor tally so `completed` reaches n exactly once.
  void run() {
    std::size_t ran = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*fn)(i);
      } catch (...) {
        const MutexLock lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
      ++ran;
    }
    if (ran > 0) {
      const MutexLock lock(mutex);
      completed += ran;
      if (completed == n) done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t jobs) {
  if (jobs == 0) jobs = default_jobs();
  workers_.reserve(jobs - 1);
  for (std::size_t i = 0; i + 1 < jobs; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::shared_ptr<Batch> seen;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      const MutexLock lock(mutex_);
      work_cv_.wait(mutex_, [&]() IOGUARD_REQUIRES(mutex_) {
        return shutdown_ || current_ != seen;
      });
      if (shutdown_) return;
      seen = current_;
      batch = current_;
    }
    if (batch) batch->run();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline fast path: a 1-job pool is exactly a sequential loop.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  {
    const MutexLock lock(mutex_);
    IOGUARD_CHECK_MSG(current_ == nullptr || current_->next.load() >= current_->n,
                      "ThreadPool::parallel_for is not reentrant");
    current_ = batch;
  }
  work_cv_.notify_all();

  // The calling thread participates instead of idling.
  batch->run();

  std::exception_ptr error;
  {
    const MutexLock lock(batch->mutex);
    batch->done_cv.wait(batch->mutex, [&]() IOGUARD_REQUIRES(batch->mutex) {
      return batch->completed == batch->n;
    });
    error = batch->first_error;
  }
  {
    // Drop the pool's reference so the Batch (and the caller's fn with it)
    // is not considered live past this call.
    const MutexLock lock(mutex_);
    if (current_ == batch) current_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace ioguard
