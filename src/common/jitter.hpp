// Per-operation timing-jitter recorder (DESIGN.md §14, ROTA-I/O semantics).
//
// Jitter is the deviation of an operation's *actual* delivery slot from its
// *intended* trigger slot:
//   * P-channel: the intended completion slot is prescribed by the sigma*
//     Time Slot Table itself (PChannel precomputes the per-hyperperiod
//     completion schedule), so an unloaded, table-following P-channel has
//     identically zero jitter -- deviation appears only when release lag
//     wastes reserved slots.
//   * R-channel: intended = release + unloaded service demand (wcet +
//     dispatch overhead); jitter folds in queueing, scheduling and
//     retry/recovery delay.
//   * FIFO baselines: same definition as the R-channel, against the shared
//     FIFO queue.
//   * Translator: actual translation cycles minus the configured best case
//     (sub-slot, recorded in cycles, keyed per device).
//
// The recorder lives in common/ so core::VirtManager/PChannel and
// iodev::FifoController (below core in the link order) can both feed it.
// Single-writer per trial; samples are kept in insertion order so exports
// stay byte-identical across --jobs=1 vs N.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace ioguard {

enum class JitterChannel : std::uint8_t {
  kPChannel = 0,   ///< pre-defined tasks on sigma* slots
  kRChannel = 1,   ///< run-time jobs through pools/G-Sched
  kFifo = 2,       ///< baseline systems' shared FIFO path
};
inline constexpr std::size_t kJitterChannelCount = 3;

/// Prometheus label value for a channel ("P", "R", "fifo").
[[nodiscard]] const char* to_string(JitterChannel channel);

class JitterRecorder {
 public:
  explicit JitterRecorder(std::size_t num_vms);

  /// Records one delivered operation. `actual` earlier than `intended`
  /// cannot happen for any channel (intended is the unloaded best case);
  /// recorded deviation is actual - intended in slots.
  void record(JitterChannel channel, VmId vm, TaskId task, Slot intended,
              Slot actual);

  /// Records one response-translation deviation in cycles (actual cost
  /// minus the configured best case) for `device`.
  void record_translator(DeviceId device, Cycle jitter_cycles);

  [[nodiscard]] std::size_t num_vms() const { return num_vms_; }
  /// Per-(channel, VM) deviation samples in slots, insertion order.
  [[nodiscard]] const SampleSet& samples(JitterChannel channel,
                                         std::size_t vm_index) const;
  /// Per-device translator deviation samples in cycles (indexed by
  /// device id; grows on first record for a device).
  [[nodiscard]] const std::vector<SampleSet>& translator_by_device() const {
    return translator_;
  }

  struct TaskJitter {
    std::uint32_t task = 0;
    std::uint64_t ops = 0;         ///< delivered operations observed
    std::uint64_t worst_slots = 0; ///< largest deviation seen
  };
  /// Compact per-task worst-case view, ascending by task id.
  [[nodiscard]] std::vector<TaskJitter> by_task() const;

 private:
  std::size_t num_vms_;
  std::vector<SampleSet> by_channel_vm_;  // channel-major, then VM
  std::vector<SampleSet> translator_;
  std::vector<TaskJitter> by_task_;  // dense by task id; ops==0 -> unseen
};

}  // namespace ioguard
