// Cooperative SIGINT/SIGTERM handling for long sweeps: the first signal
// only sets a lock-free flag that the supervised runner polls between
// trials, so in-flight trials finish, the checkpoint journal stays
// consistent, and the driver exits with the distinct "interrupted but
// resumable" code instead of dying mid-write.
#pragma once

#include <atomic>

namespace ioguard {

/// Process exit code of a run that was interrupted after a graceful drain
/// (results up to the interruption are in the checkpoint journal). Distinct
/// from 0 (verified), 1 (errors) and 2 (usage): maps StatusCode::kCancelled.
inline constexpr int kInterruptedExitCode = 3;

/// RAII installer of SIGINT/SIGTERM handlers that request a graceful stop.
/// Construct one near the top of main(); pass `flag()` to the supervised
/// runner as its stop flag. The previous handlers are restored on
/// destruction. Only one guard may be live at a time (checked).
class InterruptGuard {
 public:
  InterruptGuard();
  ~InterruptGuard();
  InterruptGuard(const InterruptGuard&) = delete;
  InterruptGuard& operator=(const InterruptGuard&) = delete;

  /// True once SIGINT or SIGTERM has been delivered (or request() called).
  [[nodiscard]] static bool requested() {
    return stop_flag().load(std::memory_order_relaxed);
  }

  /// The underlying flag, for wiring into SupervisionPolicy::stop.
  [[nodiscard]] static const std::atomic<bool>* flag() {
    return &stop_flag();
  }

  /// Programmatic stop request (tests; also safe from a signal handler).
  static void request() {
    stop_flag().store(true, std::memory_order_relaxed);
  }

  /// Clears a pending request (tests only).
  static void reset() { stop_flag().store(false, std::memory_order_relaxed); }

 private:
  static std::atomic<bool>& stop_flag();
};

}  // namespace ioguard
