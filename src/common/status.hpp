// Canonical error propagation for tools and library parse/IO paths:
// Status carries (code, message); StatusOr<T> carries a Status or a value.
//
// The contract across the repo: libraries *return* Status/StatusOr instead
// of printing to std::cerr or calling exit(); only main() maps a Status to
// a process exit code (see exit_code()). Programming errors -- violated
// invariants inside the simulator -- stay IOGUARD_CHECK; Status is for
// errors a caller can reasonably cause (bad flag, malformed file, bad plan).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>

#include "common/check.hpp"

namespace ioguard {

/// Canonical codes (a stable subset of the usual gRPC/absl vocabulary).
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,     ///< caller passed something unusable (bad flag/spec)
  kNotFound,            ///< named entity (file, plan, flag) does not exist
  kFailedPrecondition,  ///< system state refuses the operation (verify failed)
  kOutOfRange,          ///< numeric value outside its documented range
  kDataLoss,            ///< parse target is corrupt (malformed CSV row)
  kUnavailable,         ///< environment failure (cannot write output path)
  kInternal,            ///< bug-shaped failure surfaced as a status
  kCancelled,           ///< run interrupted after a graceful, resumable drain
};

[[nodiscard]] const char* to_string(StatusCode code);

class [[nodiscard]] Status {
 public:
  /// Default: OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

[[nodiscard]] inline Status OkStatus() { return Status(); }
[[nodiscard]] inline Status InvalidArgumentError(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
[[nodiscard]] inline Status NotFoundError(std::string message) {
  return {StatusCode::kNotFound, std::move(message)};
}
[[nodiscard]] inline Status FailedPreconditionError(std::string message) {
  return {StatusCode::kFailedPrecondition, std::move(message)};
}
[[nodiscard]] inline Status OutOfRangeError(std::string message) {
  return {StatusCode::kOutOfRange, std::move(message)};
}
[[nodiscard]] inline Status DataLossError(std::string message) {
  return {StatusCode::kDataLoss, std::move(message)};
}
[[nodiscard]] inline Status UnavailableError(std::string message) {
  return {StatusCode::kUnavailable, std::move(message)};
}
[[nodiscard]] inline Status InternalError(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}
[[nodiscard]] inline Status CancelledError(std::string message) {
  return {StatusCode::kCancelled, std::move(message)};
}

/// The one place a Status becomes a process exit code (tool mains only):
/// ok -> 0; usage-shaped errors (invalid argument / not found / out of
/// range / unavailable sink) -> 2; a graceful interrupt drain (cancelled,
/// state checkpointed and resumable) -> 3; everything else (verification
/// failed, data loss, internal) -> 1. Matches the documented tool contract:
/// "0 verified, 1 errors found, 2 usage error, 3 interrupted".
[[nodiscard]] int exit_code(const Status& status);

/// A Status or a value of type T; mirrors absl::StatusOr's core API.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    IOGUARD_CHECK_MSG(!status_.ok(),
                      "StatusOr constructed from an OK status without a value");
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    IOGUARD_CHECK_MSG(ok(), "StatusOr::value() on error: " + status_.message());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    IOGUARD_CHECK_MSG(ok(), "StatusOr::value() on error: " + status_.message());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    IOGUARD_CHECK_MSG(ok(), "StatusOr::value() on error: " + status_.message());
    return std::move(*value_);
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  /// The contained value, or `fallback` on error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ioguard

// Propagation helpers for Status-returning code paths.
#define IOGUARD_STATUS_CONCAT_INNER_(a, b) a##b
#define IOGUARD_STATUS_CONCAT_(a, b) IOGUARD_STATUS_CONCAT_INNER_(a, b)

/// Evaluates `expr` (a Status); returns it from the enclosing function when
/// not OK.
#define IOGUARD_RETURN_IF_ERROR(expr)                                     \
  do {                                                                    \
    ::ioguard::Status ioguard_status_tmp_ = (expr);                       \
    if (!ioguard_status_tmp_.ok()) return ioguard_status_tmp_;            \
  } while (false)

/// Evaluates `expr` (a StatusOr<T>); on error returns its status from the
/// enclosing function, otherwise assigns the value to `lhs` (which may be a
/// declaration, e.g. `const auto x`, or an existing lvalue).
#define IOGUARD_ASSIGN_OR_RETURN(lhs, expr)                               \
  auto IOGUARD_STATUS_CONCAT_(ioguard_statusor_, __LINE__) = (expr);      \
  if (!IOGUARD_STATUS_CONCAT_(ioguard_statusor_, __LINE__).ok())          \
    return IOGUARD_STATUS_CONCAT_(ioguard_statusor_, __LINE__).status();  \
  lhs = std::move(IOGUARD_STATUS_CONCAT_(ioguard_statusor_, __LINE__)).value()
