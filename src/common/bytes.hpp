// Little-endian byte codecs for on-disk binary records (checkpoint journal,
// metrics snapshots). Doubles travel as their IEEE-754 bit patterns
// (std::bit_cast), so a decoded value is bit-identical to the encoded one --
// the foundation of the resume byte-identity guarantee.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace ioguard {

/// Appends fixed-width little-endian values to a std::string buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void put_u8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }
  /// Length-prefixed (u32) byte string.
  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

 private:
  std::string* out_;
};

/// Consumes fixed-width little-endian values from a buffer. Reads past the
/// end latch the failure flag and return zeros; callers check ok() once at
/// the end instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::string_view in) : in_(in) {}

  [[nodiscard]] std::uint8_t get_u8() {
    if (!ensure(1)) return 0;
    return static_cast<std::uint8_t>(in_[pos_++]);
  }
  [[nodiscard]] std::uint32_t get_u32() {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(in_[pos_++]))
           << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t get_u64() {
    if (!ensure(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in_[pos_++]))
           << (8 * i);
    return v;
  }
  [[nodiscard]] double get_f64() { return std::bit_cast<double>(get_u64()); }
  [[nodiscard]] std::string_view get_string() {
    const std::uint32_t len = get_u32();
    if (!ensure(len)) return {};
    std::string_view s = in_.substr(pos_, len);
    pos_ += len;
    return s;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool at_end() const { return ok_ && pos_ == in_.size(); }

 private:
  [[nodiscard]] bool ensure(std::size_t n) {
    if (!ok_ || in_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ioguard
