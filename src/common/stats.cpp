#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ioguard {

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

OnlineStats OnlineStats::from_raw(const Raw& raw) {
  OnlineStats s;
  s.n_ = static_cast<std::size_t>(raw.n);
  s.mean_ = raw.mean;
  s.m2_ = raw.m2;
  s.min_ = raw.min;
  s.max_ = raw.max;
  return s;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::merge(const SampleSet& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void SampleSet::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile_sorted(const std::vector<double>& sorted,
                                    double p) {
  IOGUARD_CHECK(!sorted.empty());
  IOGUARD_CHECK(p >= 0.0 && p <= 100.0);
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double SampleSet::percentile(double p) {
  ensure_sorted();
  return percentile_sorted(samples_, p);
}

double SampleSet::percentile(double p) const {
  if (sorted_) return percentile_sorted(samples_, p);
  std::vector<double> scratch = samples_;
  std::sort(scratch.begin(), scratch.end());
  return percentile_sorted(scratch, p);
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() {
  IOGUARD_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double SampleSet::min() const {
  IOGUARD_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() {
  IOGUARD_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

double SampleSet::max() const {
  IOGUARD_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0) {
  IOGUARD_CHECK(hi > lo);
  IOGUARD_CHECK(bins > 0);
}

void Histogram::add(double x) {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = bins_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= bins_.size()) i = bins_.size() - 1;
  }
  ++bins_[i];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace ioguard
