#include "common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace ioguard {

namespace {

LogLevel parse_level(const char* s) {
  if (!s) return LogLevel::kOff;
  std::string v(s);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

std::atomic<LogLevel>& threshold_storage() {
  static std::atomic<LogLevel> t{parse_level(std::getenv("IOGUARD_LOG"))};
  return t;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

LogLevel log_threshold() { return threshold_storage().load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  threshold_storage().store(level, std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << '[' << level_name(level) << "] " << msg << '\n';
}

}  // namespace detail
}  // namespace ioguard
