#include "common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "common/sync.hpp"

namespace ioguard {

namespace {

LogLevel parse_level(const char* s) {
  if (!s) return LogLevel::kOff;
  std::string v(s);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

std::atomic<LogLevel>& threshold_storage() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read once under the magic-static
  // init lock, before any worker thread exists; the tree never calls setenv.
  static std::atomic<LogLevel> t{parse_level(std::getenv("IOGUARD_LOG"))};
  return t;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

LogLevel log_threshold() { return threshold_storage().load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  threshold_storage().store(level, std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  // Serializes whole lines across threads (cerr is race-free per character,
  // not per message).
  static Mutex mu;
  const MutexLock lock(mu);
  std::cerr << '[' << level_name(level) << "] " << msg << '\n';
}

}  // namespace detail
}  // namespace ioguard
