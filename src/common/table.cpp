#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace ioguard {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  IOGUARD_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  IOGUARD_CHECK_MSG(cells.size() == header_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    os << '\n';
  };
  auto emit_rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
}

void TextTable::render_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace ioguard
