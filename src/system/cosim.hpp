// Cycle-accurate full-system co-simulation: the mesh NoC in the loop.
//
// The Fig. 7 sweeps use the slot-level runner with an analytic transit
// model (DESIGN.md substitution table). This module runs the same workload
// with the *real* cycle-level wormhole mesh carrying every request and
// response packet:
//
//   * processors (VMs) sit on mesh nodes; each I/O device has its own node;
//   * on the baselines, requests serialize into packets, traverse the mesh,
//     and queue at the device node's FIFO controller; responses return the
//     same way;
//   * on I/O-GUARD, processors use dedicated point-to-point links to the
//     hypervisor (no routers on the path, per Sec. II-A), modeled as a
//     fixed small latency; the mesh still exists and carries background
//     traffic if configured.
//
// It is ~100x slower per simulated second than the analytic runner, so it
// serves validation (tests compare the two) and latency studies rather
// than 1000-trial sweeps.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "system/config.hpp"
#include "workload/generator.hpp"

namespace ioguard::sys {

struct CosimConfig {
  SystemKind kind = SystemKind::kLegacy;
  workload::CaseStudyConfig workload;   ///< preload used only by I/O-GUARD
  Slot horizon_slots = 20000;           ///< 200 ms at 10 us slots
  std::uint64_t seed = 1;
  Calibration cal;
  /// Background traffic injected per node per cycle (memory/kernel traffic
  /// sharing the mesh with I/O, kBackground packets).
  double background_rate = 0.0;
};

struct CosimResult {
  std::uint64_t jobs_counted = 0;
  std::uint64_t jobs_on_time = 0;
  std::uint64_t critical_misses = 0;
  std::uint64_t dropped = 0;
  /// Request packet latency through the interconnect, cycles.
  SampleSet request_latency_cycles;
  /// End-to-end response time of critical jobs, slots.
  SampleSet response_slots;
  std::uint64_t noc_packets_delivered = 0;

  [[nodiscard]] bool success() const { return critical_misses == 0; }
};

/// Runs one cycle-accurate trial. Deterministic in `config`.
CosimResult run_cosim(const CosimConfig& config);

}  // namespace ioguard::sys
