// Parallel experiment runner: multi-threaded trial fan-out with a
// deterministic merge, plus supervised execution (soft deadlines, bounded
// deterministic re-execution, checkpoint restore, graceful stop).
//
// Every headline figure is an aggregate over independent `run_trial`
// invocations, each "deterministic in (config)". The runner fans a batch of
// trials out over a thread pool and re-establishes the sequential order at
// the merge: results land in an index-addressed vector, per-trial metrics
// registries are folded into the caller's registry in trial-index order,
// and per-trial seeds come from mix_seed rather than execution order. The
// contract (see DESIGN.md, "Determinism contract"): for a fixed config and
// base seed, every aggregate -- TrialResult fields, merged MetricsRegistry,
// exported Prometheus text -- is bit-identical for any --jobs value.
// Supervision extends that contract across process crashes: a trial
// restored from a checkpoint journal, or re-executed after a throw, merges
// bit-identically to one that ran uninterrupted (same mix_seed).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "system/runner.hpp"
#include "telemetry/metrics.hpp"

namespace ioguard::sys {

class CheckpointJournal;

/// Wall-clock accounting of one fan-out batch. Timing values are the only
/// non-deterministic output of the runner; everything derived from trial
/// *results* stays bit-identical across --jobs values.
struct BatchTiming {
  std::size_t trials = 0;  ///< trials actually executed in this invocation
  std::size_t jobs = 1;
  double wall_seconds = 0.0;
  double trial_seconds_sum = 0.0;  ///< sum of per-trial wall times
  OnlineStats trial_seconds;       ///< per-trial wall-time distribution

  [[nodiscard]] double trials_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds
                              : 0.0;
  }
  /// Estimated speedup over a sequential run of the same batch: the summed
  /// per-trial time is what one thread would have spent.
  [[nodiscard]] double speedup_estimate() const {
    return wall_seconds > 0.0 ? trial_seconds_sum / wall_seconds : 1.0;
  }

  /// Folds another batch in (multi-point sweeps accumulate one timing).
  void accumulate(const BatchTiming& other);
};

/// How one trial of a supervised batch reached its result.
enum class TrialOutcome : std::uint8_t {
  kCompleted,  ///< executed in this invocation, first attempt succeeded
  kRestored,   ///< loaded intact from the checkpoint journal
  kRetried,    ///< succeeded after >= 1 deterministic re-execution
  kAbandoned,  ///< every attempt threw; result is an empty placeholder
  kSkipped,    ///< never started: a stop was requested first (resumable)
};

[[nodiscard]] const char* to_string(TrialOutcome outcome);

/// Supervision knobs for run_supervised. The zero-argument default gives
/// plain fan-out semantics plus one bounded re-execution of throwing trials.
struct SupervisionPolicy {
  /// Soft per-trial deadline in seconds; a trial exceeding it is *flagged*
  /// as wedged (never killed: trials hold no cancellable I/O). 0 = off.
  double trial_timeout_seconds = 0.0;
  /// Total executions allowed per trial (first run + re-executions). A
  /// re-execution reuses the same mix_seed-derived config, so a successful
  /// retry is bit-identical to a first-attempt success.
  std::size_t max_attempts = 2;
  /// Legacy run_trials semantics: propagate the exception of a trial whose
  /// attempts are exhausted instead of abandoning it.
  bool rethrow_on_failure = false;
  /// Graceful stop: when set, trials not yet started are skipped (in-flight
  /// trials finish and are journaled). Wire InterruptGuard::flag() here.
  const std::atomic<bool>* stop = nullptr;
  /// Crash-safe journal: finished trials are appended per trial, and trials
  /// already journaled under `point_key` are restored instead of executed.
  CheckpointJournal* journal = nullptr;
  std::uint64_t point_key = 0;  ///< journal key of this batch (checkpoint_point_key)
  /// Test hook: replaces run_trial as the trial body.
  std::function<TrialResult(const TrialConfig&)> trial_fn;
};

/// Outcome of one supervised batch. `results` is index-addressed like
/// run_trials; consult `outcomes` before aggregating -- abandoned and
/// skipped slots hold empty placeholders that must not be folded in.
struct BatchResult {
  std::vector<TrialResult> results;
  std::vector<TrialOutcome> outcomes;
  std::size_t completed = 0;
  std::size_t restored = 0;
  std::size_t retried = 0;
  std::size_t abandoned = 0;
  std::size_t skipped = 0;
  std::size_t wedged = 0;  ///< executed trials that blew the soft deadline
  /// True when a stop request cut the batch short; the journal (if any)
  /// holds every finished trial, so the sweep is resumable.
  bool interrupted = false;
  /// First journal-append failure, OK otherwise (results are still valid).
  Status journal_error;
  /// Human-readable per-trial incidents ("trial 3: ..."), in index order.
  std::vector<std::string> notes;

  [[nodiscard]] std::size_t executed() const { return completed + retried; }
};

/// Fans independent trials out over worker threads and merges their outputs
/// deterministically. Reusable across batches; construct once per driver.
class ParallelRunner {
 public:
  /// `jobs` = total worker width (0 = default_jobs(): IOGUARD_JOBS env or
  /// hardware concurrency). jobs == 1 runs inline with no threads.
  explicit ParallelRunner(std::size_t jobs = 0) : pool_(jobs) {}

  [[nodiscard]] std::size_t jobs() const { return pool_.jobs(); }

  /// Runs `make_config(t)` -> run_trial for t in [0, n). Results are
  /// returned in trial-index order. When `metrics` is non-null, each trial
  /// accumulates into a private registry and the registries are merged into
  /// `metrics` in trial-index order after the batch drains -- bit-identical
  /// to sequentially passing `metrics` to every trial.
  ///
  /// make_config must not set TrialConfig::metrics (checked); a shared
  /// registry would be a data race. TrialConfig::trace is passed through:
  /// the caller must attach a given EventTrace to at most one trial.
  /// make_config itself may be called concurrently from worker threads.
  ///
  /// A trial that throws propagates its exception after the batch drains
  /// (equivalent to run_supervised with max_attempts = 1 + rethrow).
  std::vector<TrialResult> run_trials(
      std::size_t n,
      const std::function<TrialConfig(std::size_t)>& make_config,
      telemetry::MetricsRegistry* metrics = nullptr,
      BatchTiming* timing = nullptr);

  /// Supervised fan-out: same deterministic merge as run_trials, plus
  /// checkpoint restore (policy.journal), bounded deterministic
  /// re-execution of throwing trials, soft-deadline flagging, and graceful
  /// stop. Restored trials contribute their journaled results and metrics
  /// deltas, so the merged aggregates are byte-identical to an
  /// uninterrupted run at any jobs width.
  BatchResult run_supervised(
      std::size_t n,
      const std::function<TrialConfig(std::size_t)>& make_config,
      const SupervisionPolicy& policy,
      telemetry::MetricsRegistry* metrics = nullptr,
      BatchTiming* timing = nullptr);

 private:
  ThreadPool pool_;
};

}  // namespace ioguard::sys
