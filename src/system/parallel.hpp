// Parallel experiment runner: multi-threaded trial fan-out with a
// deterministic merge.
//
// Every headline figure is an aggregate over independent `run_trial`
// invocations, each "deterministic in (config)". The runner fans a batch of
// trials out over a thread pool and re-establishes the sequential order at
// the merge: results land in an index-addressed vector, per-trial metrics
// registries are folded into the caller's registry in trial-index order,
// and per-trial seeds come from mix_seed rather than execution order. The
// contract (see DESIGN.md, "Determinism contract"): for a fixed config and
// base seed, every aggregate -- TrialResult fields, merged MetricsRegistry,
// exported Prometheus text -- is bit-identical for any --jobs value.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "system/runner.hpp"
#include "telemetry/metrics.hpp"

namespace ioguard::sys {

/// Wall-clock accounting of one fan-out batch. Timing values are the only
/// non-deterministic output of the runner; everything derived from trial
/// *results* stays bit-identical across --jobs values.
struct BatchTiming {
  std::size_t trials = 0;
  std::size_t jobs = 1;
  double wall_seconds = 0.0;
  double trial_seconds_sum = 0.0;  ///< sum of per-trial wall times
  OnlineStats trial_seconds;       ///< per-trial wall-time distribution

  [[nodiscard]] double trials_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds
                              : 0.0;
  }
  /// Estimated speedup over a sequential run of the same batch: the summed
  /// per-trial time is what one thread would have spent.
  [[nodiscard]] double speedup_estimate() const {
    return wall_seconds > 0.0 ? trial_seconds_sum / wall_seconds : 1.0;
  }

  /// Folds another batch in (multi-point sweeps accumulate one timing).
  void accumulate(const BatchTiming& other);
};

/// Fans independent trials out over worker threads and merges their outputs
/// deterministically. Reusable across batches; construct once per driver.
class ParallelRunner {
 public:
  /// `jobs` = total worker width (0 = default_jobs(): IOGUARD_JOBS env or
  /// hardware concurrency). jobs == 1 runs inline with no threads.
  explicit ParallelRunner(std::size_t jobs = 0) : pool_(jobs) {}

  [[nodiscard]] std::size_t jobs() const { return pool_.jobs(); }

  /// Runs `make_config(t)` -> run_trial for t in [0, n). Results are
  /// returned in trial-index order. When `metrics` is non-null, each trial
  /// accumulates into a private registry and the registries are merged into
  /// `metrics` in trial-index order after the batch drains -- bit-identical
  /// to sequentially passing `metrics` to every trial.
  ///
  /// make_config must not set TrialConfig::metrics (checked); a shared
  /// registry would be a data race. TrialConfig::trace is passed through:
  /// the caller must attach a given EventTrace to at most one trial.
  /// make_config itself may be called concurrently from worker threads.
  std::vector<TrialResult> run_trials(
      std::size_t n,
      const std::function<TrialConfig(std::size_t)>& make_config,
      telemetry::MetricsRegistry* metrics = nullptr,
      BatchTiming* timing = nullptr);

 private:
  ThreadPool pool_;
};

}  // namespace ioguard::sys
