#include "system/runner.hpp"

#include <algorithm>
#include <iomanip>
#include <memory>
#include <ostream>
#include <queue>
#include <string>

#include "common/check.hpp"
#include "faults/injector.hpp"
#include "iodev/fifo_controller.hpp"
#include "system/stages.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/hdr_histogram.hpp"
#include "telemetry/spans.hpp"

namespace ioguard::sys {

namespace {

/// A request in flight between pipeline stages, due at `arrival`.
struct InFlight {
  Slot arrival;
  workload::Job job;
};
struct ArriveLater {
  bool operator()(const InFlight& a, const InFlight& b) const {
    return a.arrival != b.arrival
               ? a.arrival > b.arrival
               : a.job.id.value > b.job.id.value;
  }
};

/// Per-trace-job bookkeeping for miss accounting.
struct Outcome {
  Slot deadline = 0;
  bool counted = false;    ///< deadline falls inside the horizon
  bool critical = false;   ///< safety or function class
  bool hi = false;         ///< HI-criticality task (mixed-criticality runs)
  bool on_time = false;
  std::uint32_t payload = 0;
  std::uint32_t task = 0;
};

/// End-of-trial export into the caller's MetricsRegistry. Counters add up
/// across trials sharing one registry; gauges keep the last trial's value.
/// Fault/resilience metric block; called only when an injector was active,
/// so fault-free Prometheus output stays byte-identical to pre-fault builds.
void fill_fault_metrics(telemetry::MetricsRegistry& reg,
                        const TrialConfig& config, const TrialResult& result,
                        const faults::FaultInjector& injector) {
  using telemetry::Labels;
  for (faults::FaultKind kind : faults::all_fault_kinds()) {
    if (config.faults.rate(kind) <= 0.0) continue;  // kind not in the plan
    reg.counter("ioguard_faults_injected_total",
                {{"kind", faults::to_string(kind)}})
        .inc(injector.injected(kind));
  }
  auto action = [&](const char* a) -> telemetry::Counter& {
    return reg.counter("ioguard_resilience_actions_total", {{"action", a}});
  };
  action("watchdog_abort").inc(result.faults.watchdog_aborts);
  action("retry").inc(result.faults.retries);
  action("retry_exhausted").inc(result.faults.retries_exhausted);
  action("shed").inc(result.faults.jobs_shed);
  reg.counter("ioguard_fault_stalled_slots_total", {})
      .inc(result.faults.stalled_slots + result.faults.fifo_stalled_slots);
  reg.counter("ioguard_fault_lost_frames_total", {})
      .inc(result.faults.frame_faults + result.faults.fifo_frames_lost);
  reg.counter("ioguard_fault_transit_drops_total", {})
      .inc(result.faults.transit_drops);
  reg.gauge("ioguard_degraded_vms", {})
      .set(static_cast<double>(result.faults.degraded_vms));
}

void fill_metrics(telemetry::MetricsRegistry& reg, const TrialConfig& config,
                  const TrialResult& result, const core::Hypervisor* hyp,
                  const std::vector<iodev::FifoController>& fifos) {
  using telemetry::Labels;
  const Labels sys_label{{"system", to_string(config.kind)}};

  auto outcome = [&](const char* o) {
    return Labels{{"system", to_string(config.kind)}, {"outcome", o}};
  };
  reg.counter("ioguard_trial_jobs_total", outcome("counted"))
      .inc(result.jobs_counted);
  reg.counter("ioguard_trial_jobs_total", outcome("on_time"))
      .inc(result.jobs_on_time);
  reg.counter("ioguard_trial_jobs_total", outcome("missed"))
      .inc(result.misses);
  reg.counter("ioguard_trial_jobs_total", outcome("critical_miss"))
      .inc(result.critical_misses);
  reg.counter("ioguard_trial_jobs_total", outcome("dropped"))
      .inc(result.dropped);

  reg.gauge("ioguard_trial_goodput_bytes_per_second", sys_label)
      .set(result.goodput_bytes_per_s);
  reg.gauge("ioguard_trial_device_busy_fraction", sys_label)
      .set(result.device_busy_frac);
  reg.gauge("ioguard_trial_admitted", sys_label)
      .set(result.admitted ? 1.0 : 0.0);
  reg.gauge("ioguard_trial_horizon_slots", sys_label)
      .set(static_cast<double>(result.horizon));

  if (hyp) {
    for (std::size_t d = 0; d < hyp->device_count(); ++d) {
      const auto& vm = hyp->manager(DeviceId{static_cast<std::uint32_t>(d)});
      const std::string dev = std::to_string(d);
      const Labels dev_label{{"device", dev}};
      reg.counter("ioguard_device_busy_slots_total", dev_label)
          .inc(vm.busy_slots());
      reg.counter("ioguard_device_runtime_jobs_completed_total", dev_label)
          .inc(vm.runtime_jobs_completed());
      reg.counter("ioguard_translations_total", dev_label)
          .inc(vm.request_translator().translations());
      reg.gauge("ioguard_translation_worst_cycles", dev_label)
          .set(static_cast<double>(vm.request_translator().worst_observed()));
      for (std::size_t v = 0; v < vm.num_vms(); ++v) {
        const Labels dv{{"device", dev}, {"vm", std::to_string(v)}};
        reg.counter("ioguard_pool_dropped_total", dv).inc(vm.pool(v).dropped());
        reg.counter("ioguard_gsched_granted_slots_total", dv)
            .inc(static_cast<std::uint64_t>(vm.gsched().granted(v)));
        reg.counter("ioguard_gsched_slack_slots_total", dv)
            .inc(static_cast<std::uint64_t>(vm.gsched().slack_granted(v)));
      }
    }
  }
  for (std::size_t d = 0; d < fifos.size(); ++d) {
    const Labels dev_label{{"device", std::to_string(d)}};
    reg.counter("ioguard_fifo_jobs_completed_total", dev_label)
        .inc(fifos[d].jobs_completed());
    reg.counter("ioguard_fifo_bytes_completed_total", dev_label)
        .inc(fifos[d].bytes_completed());
    reg.counter("ioguard_fifo_rejected_total", dev_label)
        .inc(fifos[d].rejected());
  }
}

/// Jitter/profile export (DESIGN.md §14). Jitter bucket bounds come from the
/// HDR histogram layout, so the Prometheus LatencyHistogram lands every
/// integer sample in the bucket an HdrHistogram would -- one encoding, two
/// export paths. Emits nothing when the trial collected nothing, keeping
/// observability-off runs byte-identical to older builds.
void fill_observability_metrics(telemetry::MetricsRegistry& reg,
                                const TrialConfig& config,
                                const TrialResult& result) {
  using telemetry::Labels;
  if (result.jitter.collected) {
    const std::vector<double> bounds = telemetry::HdrHistogram{}.bounds();
    const double cycles_per_slot =
        static_cast<double>(config.cal.cycles_per_slot);
    auto observe = [&](const char* channel, const char* key, std::size_t i,
                       const SampleSet& samples, double scale) {
      auto& h = reg.histogram(
          "ioguard_timing_jitter_cycles",
          {{"channel", channel}, {key, std::to_string(i)}}, bounds);
      for (double v : samples.samples()) h.observe(v * scale);
    };
    const JitterSummary& j = result.jitter;
    for (std::size_t v = 0; v < j.p_by_vm.size(); ++v)
      observe("P", "vm", v, j.p_by_vm[v], cycles_per_slot);
    for (std::size_t v = 0; v < j.r_by_vm.size(); ++v)
      observe("R", "vm", v, j.r_by_vm[v], cycles_per_slot);
    for (std::size_t v = 0; v < j.fifo_by_vm.size(); ++v)
      observe("fifo", "vm", v, j.fifo_by_vm[v], cycles_per_slot);
    for (std::size_t d = 0; d < j.translator_by_device.size(); ++d)
      observe("translator", "device", d, j.translator_by_device[d], 1.0);
  }
  for (const auto& c : result.profile) {
    auto state = [&](const char* s, std::uint64_t slots) {
      reg.counter("ioguard_profile_cycles_total",
                  {{"component", c.name}, {"state", s}})
          .inc(slots * config.cal.cycles_per_slot);
    };
    state("busy", c.busy_slots);
    state("stall", c.stall_slots);
    state("quiescent", c.quiescent_slots);
  }
  if (!config.flight_dir.empty())
    reg.counter("ioguard_flight_dumps_total", {}).inc(result.flight_dumps);
}

/// Mixed-criticality metric block (DESIGN.md §17). Called whenever the
/// feature flag is on, not when a counter happens to be non-zero: every
/// series is registered even at zero, so metric baselines cannot become
/// order-dependent on whether a switch fired in a particular trial.
void fill_mode_metrics(telemetry::MetricsRegistry& reg,
                       const TrialResult& result) {
  auto dir = [&](const char* d) -> telemetry::Counter& {
    return reg.counter("ioguard_mode_switches_total", {{"direction", d}});
  };
  dir("to_hi").inc(result.mcs.switches_to_hi);
  dir("to_lo").inc(result.mcs.recoveries);
  reg.counter("ioguard_mode_switches_propagated_total", {})
      .inc(result.mcs.propagated);
  reg.counter("ioguard_mode_overruns_observed_total", {})
      .inc(result.mcs.overruns_observed);
  reg.counter("ioguard_mode_lo_jobs_shed_total", {})
      .inc(result.mcs.lo_jobs_shed);
  reg.counter("ioguard_mode_lo_rejected_total", {})
      .inc(result.mcs.lo_rejected);
  reg.counter("ioguard_mode_hi_misses_total", {}).inc(result.mcs.hi_misses);
  reg.gauge("ioguard_mode_hi_vms", {})
      .set(static_cast<double>(result.mcs.hi_vms_at_end));
  auto& latency =
      reg.histogram("ioguard_mode_switch_latency_slots", {},
                    telemetry::HdrHistogram{}.bounds());
  for (double v : result.mcs.switch_latency_slots.samples())
    latency.observe(v);
}

}  // namespace

StatusOr<TrialConfig> TrialConfig::validated(TrialConfig raw) {
  const auto& w = raw.workload;
  if (w.num_vms < 1 || w.num_vms > 64)
    return InvalidArgumentError("num_vms must be in [1, 64], got " +
                                std::to_string(w.num_vms));
  if (!(w.target_utilization > 0.0) || w.target_utilization > 2.0)
    return OutOfRangeError("target_utilization must be in (0, 2], got " +
                           std::to_string(w.target_utilization));
  if (w.preload_fraction < 0.0 || w.preload_fraction > 1.0)
    return OutOfRangeError("preload_fraction must be in [0, 1], got " +
                           std::to_string(w.preload_fraction));
  if (raw.min_jobs_per_task < 1)
    return InvalidArgumentError("min_jobs_per_task must be >= 1");
  if (raw.cal.cycles_per_slot == 0)
    return InvalidArgumentError("cycles_per_slot must be > 0");
  if (raw.resilience.watchdog_timeout_slots == 0)
    return InvalidArgumentError("watchdog_timeout_slots must be > 0");
  if (raw.resilience.retry_backoff_base_slots < 1)
    return InvalidArgumentError("retry_backoff_base_slots must be >= 1");
  if (raw.resilience.max_retries > 16)
    return OutOfRangeError("max_retries must be <= 16, got " +
                           std::to_string(raw.resilience.max_retries));
  if (raw.mode_switch.enabled) {
    if (raw.mode_switch.overrun_threshold < 1)
      return InvalidArgumentError("mode_switch.overrun_threshold must be >= 1");
    if (raw.mode_switch.recovery_hysteresis_slots < 1)
      return InvalidArgumentError(
          "mode_switch.recovery_hysteresis_slots must be >= 1");
    if (!(raw.mode_switch.hi_budget_factor >= 1.0))
      return OutOfRangeError(
          "mode_switch.hi_budget_factor must be >= 1.0, got " +
          std::to_string(raw.mode_switch.hi_budget_factor));
  }
  return raw;
}

TrialResult run_trial(const TrialConfig& config) {
  // ---- 1. Build the workload and the release trace. ----------------------
  workload::CaseStudyConfig wl_cfg = config.workload;
  if (config.kind != SystemKind::kIoGuard) wl_cfg.preload_fraction = 0.0;
  wl_cfg.seed = config.trial_seed * 1000003ULL + 17;
  const auto wl = workload::build_case_study(wl_cfg);

  TrialResult result;
  const Slot horizon =
      config.horizon > 0
          ? config.horizon
          : workload::horizon_for_min_jobs(wl.tasks, config.min_jobs_per_task);
  result.horizon = horizon;

  workload::ArrivalConfig arr;
  arr.horizon = horizon;
  arr.seed = config.trial_seed * 2654435761ULL + 99;
  const auto trace = workload::generate_trace(wl.tasks, arr);

  // Task class lookup (task ids are dense).
  std::vector<workload::TaskClass> task_class(wl.tasks.size());
  std::vector<workload::TaskKind> task_kind(wl.tasks.size());
  std::vector<std::uint8_t> task_hi(wl.tasks.size(), 0);
  for (const auto& t : wl.tasks.tasks()) {
    task_class[t.id.value] = t.cls;
    task_kind[t.id.value] = t.kind;
    task_hi[t.id.value] = t.hi_criticality() ? 1 : 0;
  }
  auto is_critical = [&](TaskId id) {
    return task_class[id.value] != workload::TaskClass::kSynthetic;
  };
  auto is_hi = [&](TaskId id) { return task_hi[id.value] != 0; };

  // ---- 2. Instantiate the system under test. -----------------------------
  const std::size_t num_vms = wl_cfg.num_vms;
  const Calibration& cal = config.cal;

  std::vector<IssueStage> issue;
  issue.reserve(num_vms);
  for (std::size_t v = 0; v < num_vms; ++v)
    issue.emplace_back(issue_cycles(cal, config.kind), cal.cycles_per_slot);

  std::unique_ptr<VmmStage> vmm;
  if (config.kind == SystemKind::kRtXen)
    vmm = std::make_unique<VmmStage>(cal, num_vms, config.trial_seed ^ 0xabc);

  TransitModel request_transit(cal, config.kind, num_vms,
                               wl_cfg.target_utilization,
                               config.trial_seed ^ 0x111);
  TransitModel response_transit(cal, config.kind, num_vms,
                                wl_cfg.target_utilization,
                                config.trial_seed ^ 0x222);

  // Fault injector: only constructed for a non-empty plan so the fault-free
  // path takes zero extra branches inside the components (null injector).
  std::unique_ptr<faults::FaultInjector> injector;
  if (!config.faults.empty())
    injector = std::make_unique<faults::FaultInjector>(config.faults,
                                                       config.trial_seed);

  // Device back-ends: legacy FIFO controllers or the I/O-GUARD hypervisor.
  std::vector<iodev::FifoController> fifos;
  std::unique_ptr<core::Hypervisor> hyp;
  if (config.kind == SystemKind::kIoGuard) {
    core::HypervisorConfig hc;
    hc.num_vms = num_vms;
    hc.pool_capacity = cal.pool_capacity;
    hc.dispatch_overhead_slots = cal.dispatch_overhead_slots;
    hc.policy = config.gsched_policy;
    hc.translator.wcet_cycles = cal.translation_wcet_cycles;
    hc.injector = injector.get();
    hc.resilience = config.resilience;
    hc.mode_switch = config.mode_switch;
    hyp = std::make_unique<core::Hypervisor>(wl, hc);
    result.admitted = hyp->fully_admitted();
    if (config.trace) hyp->set_tracer(config.trace);
    // Event-driven mode skips provably-quiescent managers inside tick_slot
    // too (per-device wake calendar) -- the cursor jump below only helps
    // when *every* device sleeps at once.
    if (!config.stepped) hyp->set_slot_skipping(true);
  } else {
    for (std::size_t d = 0; d < workload::kCaseStudyDeviceCount; ++d) {
      fifos.emplace_back(cal.device_fifo_capacity,
                         cal.dispatch_overhead_slots);
      fifos.back().set_fault_injector(injector.get(), d);
    }
  }

  // ---- 2b. Observability taps (DESIGN.md §14). ---------------------------
  std::unique_ptr<JitterRecorder> jitter;
  if (config.collect_jitter) {
    jitter = std::make_unique<JitterRecorder>(num_vms);
    if (hyp) hyp->set_jitter_recorder(jitter.get());
    for (auto& f : fifos) f.set_jitter_recorder(jitter.get());
  }

  // Flight recorder (I/O-GUARD back-end only): observes the trace ring; a
  // trial without an attached trace gets a private ring just for it.
  std::unique_ptr<core::EventTrace> flight_ring_storage;
  std::unique_ptr<telemetry::FlightRecorder> flight;
  core::EventTrace* flight_ring = nullptr;
  if (hyp && !config.flight_dir.empty()) {
    flight_ring = config.trace;
    if (flight_ring == nullptr) {
      flight_ring_storage = std::make_unique<core::EventTrace>(4096);
      hyp->set_tracer(flight_ring_storage.get());
      flight_ring = flight_ring_storage.get();
    }
    telemetry::FlightRecorderConfig fr;
    fr.dir = config.flight_dir;
    fr.stem = config.flight_stem;
    fr.last_n = config.flight_last_n;
    fr.max_dumps = config.flight_max_dumps;
    flight = std::make_unique<telemetry::FlightRecorder>(std::move(fr));
    core::Hypervisor* h = hyp.get();
    flight->set_state_writer(
        [h](std::ostream& os) { h->dump_scheduler_state(os); });
    flight_ring->set_observer(flight.get());
  }

  // Slot attribution of the runner-owned software stages. A stage is busy
  // in a slot when it holds work at the start of that slot (it spends
  // issue/VMM cycles there), quiescent otherwise; the transit link is busy
  // while any transfer is in flight. These single-server stages never
  // stall, so their stall count stays 0; the device back-ends attribute
  // their own slots internally.
  std::vector<std::uint64_t> issue_busy;
  std::uint64_t vmm_busy = 0;
  std::uint64_t transit_busy = 0;
  if (config.collect_profile) issue_busy.assign(num_vms, 0);

  // ---- 3. Miss accounting setup. ------------------------------------------
  std::vector<Outcome> outcomes(trace.size());
  // Dense per-task miss counters (task ids are dense); compacted into
  // result.misses_by_task at tally so the hot path never touches a map.
  std::vector<std::uint32_t> miss_counts(wl.tasks.size(), 0);
  std::uint64_t bytes_on_time = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& j = trace[i];
    // Tasks the P-channel actually owns execute from the Time Slot Table and
    // emit their own completions; their trace entries are skipped entirely.
    // (Pre-defined tasks the hypervisor demoted flow through the R-channel
    // like run-time jobs.)
    const bool pchannel_job = hyp && hyp->pchannel_task(j.task);
    outcomes[i].deadline = j.absolute_deadline;
    outcomes[i].counted = !pchannel_job && j.absolute_deadline <= horizon;
    outcomes[i].critical = is_critical(j.task);
    outcomes[i].hi = is_hi(j.task);
    outcomes[i].payload = j.payload_bytes;
    outcomes[i].task = j.task.value;
  }

  auto record_completion = [&](const iodev::Completion& done, Slot finish) {
    if (done.job.id.value < outcomes.size() &&
        config.kind != SystemKind::kIoGuard) {
      Outcome& o = outcomes[done.job.id.value];
      if (o.counted && finish <= o.deadline) {
        o.on_time = true;
        bytes_on_time += o.payload;
      }
    } else if (config.kind == SystemKind::kIoGuard) {
      // Runtime jobs carry trace ids; P-channel jobs carry synthetic ids but
      // are distinguished by their owning channel.
      const bool pchannel_job = hyp->pchannel_task(done.job.task);
      if (pchannel_job) {
        if (done.job.absolute_deadline <= horizon) {
          ++result.jobs_counted;
          if (finish <= done.job.absolute_deadline) {
            ++result.jobs_on_time;
            bytes_on_time += done.job.payload_bytes;
          } else {
            ++result.misses;
            ++miss_counts[done.job.task.value];
            if (is_critical(done.job.task)) ++result.critical_misses;
            if (is_hi(done.job.task)) ++result.mcs.hi_misses;
          }
        }
      } else if (done.job.id.value < outcomes.size()) {
        Outcome& o = outcomes[done.job.id.value];
        if (o.counted && finish <= o.deadline) {
          o.on_time = true;
          bytes_on_time += o.payload;
        }
      }
      if (config.collect_response_times &&
          is_critical(done.job.task)) {
        result.response_slots.add(
            static_cast<double>(finish - done.job.release));
      }
    }
  };

  // ---- 4. Slot-level main loop. -------------------------------------------
  // Pre-size the scratch buffers so the per-slot loop never reallocates.
  std::vector<InFlight> transit_storage;
  transit_storage.reserve(64);
  std::priority_queue<InFlight, std::vector<InFlight>, ArriveLater> transit_q(
      ArriveLater{}, std::move(transit_storage));
  std::vector<workload::Job> issued, vmm_done;
  issued.reserve(num_vms);
  vmm_done.reserve(num_vms);
  std::vector<iodev::Completion> completions;
  completions.reserve(workload::kCaseStudyDeviceCount);
  std::size_t next_release = 0;

  // Stage timestamps per trace job (kNeverSlot = not reached).
  std::vector<Slot> t_issue, t_vmm, t_arrive;
  if (config.collect_stage_latencies) {
    t_issue.assign(trace.size(), kNeverSlot);
    t_vmm.assign(trace.size(), kNeverSlot);
    t_arrive.assign(trace.size(), kNeverSlot);
  }
  auto stamp = [&](std::vector<Slot>& v, JobId id, Slot now) {
    if (config.collect_stage_latencies && id.value < v.size())
      v[id.value] = now;
  };

  // Event-driven advance (DESIGN.md §15): the loop body is stepped exactly as
  // before, but when everything in flight is provably quiescent the cursor
  // jumps to the next interesting slot (release, transit arrival, or device
  // wake hint) and the gap is batch-attributed. `config.stepped` pins the
  // advance to +1, retaining the slot-stepped loop as the reference oracle.
  // IOGUARD_LINT_ALLOW(LNT009: sanctioned stepped-reference main loop)
  for (Slot now = 0; now < horizon;) {
    // (a) releases -> per-VM issue stage (runtime jobs only on I/O-GUARD).
    while (next_release < trace.size() && trace[next_release].release <= now) {
      const auto& j = trace[next_release++];
      const bool pchannel_job = hyp && hyp->pchannel_task(j.task);
      if (!pchannel_job) issue[j.vm.value].push(j);
    }

    if (config.collect_profile) {
      for (std::size_t v = 0; v < num_vms; ++v)
        if (!issue[v].idle()) ++issue_busy[v];
      if (vmm && !vmm->idle()) ++vmm_busy;
    }

    // (b) issue stages emit; requests enter the VMM (RT-XEN) or transit.
    issued.clear();
    for (auto& stage : issue) stage.tick_slot(issued);
    for (const auto& j : issued) {
      stamp(t_issue, j.id, now);
      if (vmm) {
        vmm->push(j, now);
      } else {
        transit_q.push(InFlight{now + request_transit.sample(), j});
      }
    }
    if (vmm) {
      vmm_done.clear();
      vmm->tick_slot(now, vmm_done);
      for (const auto& j : vmm_done) {
        stamp(t_vmm, j.id, now);
        transit_q.push(InFlight{now + request_transit.sample(), j});
      }
    }

    if (config.collect_profile && !transit_q.empty()) ++transit_busy;

    // (c) arrivals reach the device back-end.
    while (!transit_q.empty() && transit_q.top().arrival <= now) {
      const workload::Job j = transit_q.top().job;
      transit_q.pop();
      // Interconnect fault surface: a fired kLinkFlitLoss eats the request
      // packet in transit -- it never reaches the back-end, so the job can
      // only miss (mirrors a whole-packet drop in the NoC model).
      if (injector && injector->drop_packet(j.device.value)) {
        ++result.faults.transit_drops;
        if (config.trace) {
          core::TraceEvent ev;
          ev.slot = now;
          ev.kind = core::TraceEventKind::kFaultInject;
          ev.device = j.device;
          ev.vm = j.vm;
          ev.task = j.task;
          ev.job = j.id;
          ev.aux = static_cast<std::uint32_t>(faults::FaultKind::kLinkFlitLoss);
          config.trace->record(ev);
        }
        continue;
      }
      stamp(t_arrive, j.id, now);
      bool accepted;
      if (hyp) {
        accepted = hyp->submit(j, now);
      } else {
        accepted = fifos[j.device.value].enqueue(j, now);
      }
      if (!accepted) ++result.dropped;  // overflow: job is lost -> miss
    }

    // (d) device back-ends advance one slot.
    completions.clear();
    if (hyp) {
      hyp->tick_slot(now, completions);
    } else {
      for (auto& f : fifos)
        if (auto done = f.tick_slot(now)) completions.push_back(*done);
    }
    for (const auto& done : completions) {
      const Slot finish = done.completed_at + response_transit.sample();
      record_completion(done, finish);
      if (config.collect_stage_latencies &&
          done.job.id.value < t_issue.size() &&
          is_critical(done.job.task) &&
          t_issue[done.job.id.value] != kNeverSlot) {
        const auto id = done.job.id.value;
        const Slot issued_at = t_issue[id];
        result.stage_issue.add(
            static_cast<double>(issued_at - done.job.release));
        Slot after_sw = issued_at;
        if (vmm && t_vmm[id] != kNeverSlot) {
          result.stage_vmm.add(static_cast<double>(t_vmm[id] - issued_at));
          after_sw = t_vmm[id];
        }
        if (t_arrive[id] != kNeverSlot) {
          result.stage_transit.add(
              static_cast<double>(t_arrive[id] - after_sw));
          result.stage_backend.add(
              static_cast<double>(done.completed_at - t_arrive[id]));
        }
      }
      if (config.collect_response_times && config.kind != SystemKind::kIoGuard &&
          is_critical(done.job.task)) {
        result.response_slots.add(
            static_cast<double>(finish - done.job.release));
      }
    }

    // (e) advance. Default is the next-event jump; it only engages when the
    // software pipeline is drained (issue stages + VMM idle), so every
    // skipped slot would have been a provable no-op in the stepped loop:
    // releases are drained through `now` (a), transit arrivals through `now`
    // (c), and the back-end wake hints bound the first slot a device could
    // execute or mutate anything. Skipped slots are batch-attributed as
    // quiescent so busy + stall + quiescent == horizon still holds exactly.
    Slot next = now + 1;
    if (!config.stepped) {
      bool software_busy = vmm && !vmm->idle();
      if (!software_busy) {
        for (const auto& stage : issue) {
          if (!stage.idle()) {
            software_busy = true;
            break;
          }
        }
      }
      if (!software_busy) {
        Slot wake = horizon;
        if (next_release < trace.size())
          wake = std::min(wake, trace[next_release].release);
        if (!transit_q.empty()) wake = std::min(wake, transit_q.top().arrival);
        if (hyp) {
          wake = std::min(wake, hyp->next_busy_slot(next));
        } else {
          for (const auto& f : fifos)
            wake = std::min(wake, f.next_busy_slot(next));
        }
        if (wake > next) {
          const Slot skipped = std::min(wake, horizon) - next;
          // In-flight packets keep the transit stage "busy" for the profiler
          // even across a jump (their composition cannot change in the gap).
          if (config.collect_profile && !transit_q.empty())
            transit_busy += skipped;
          if (hyp) {
            hyp->note_skipped_slots(skipped);
          } else {
            for (auto& f : fifos) f.note_skipped_slots(skipped);
          }
          next += skipped;
        }
      }
    }
    now = next;
  }

  // ---- 5. Tally. -----------------------------------------------------------
  for (const auto& o : outcomes) {
    if (!o.counted) continue;
    ++result.jobs_counted;
    if (o.on_time) {
      ++result.jobs_on_time;
    } else {
      ++result.misses;
      ++miss_counts[o.task];
      if (o.critical) ++result.critical_misses;
      if (o.hi) ++result.mcs.hi_misses;
    }
  }
  for (std::uint32_t task = 0; task < miss_counts.size(); ++task)
    if (miss_counts[task] > 0)
      result.misses_by_task.emplace_back(task, miss_counts[task]);
  const double seconds =
      cycles_to_seconds(slots_to_cycles(horizon, cal.cycles_per_slot));
  result.goodput_bytes_per_s = static_cast<double>(bytes_on_time) / seconds;

  Slot busy = 0;
  const std::size_t n_dev = workload::kCaseStudyDeviceCount;
  if (hyp) {
    for (std::size_t d = 0; d < n_dev; ++d)
      busy += hyp->manager(DeviceId{static_cast<std::uint32_t>(d)}).busy_slots();
  } else {
    for (const auto& f : fifos) busy += f.busy_slots();
  }
  result.device_busy_frac = static_cast<double>(busy) /
                            static_cast<double>(horizon * n_dev);

  if (injector) {
    result.faults.injected_total = injector->total_injected();
    if (hyp) {
      result.faults.watchdog_aborts = hyp->watchdog_aborts();
      result.faults.retries = hyp->retries_scheduled();
      result.faults.retries_exhausted = hyp->retries_exhausted();
      result.faults.max_retry_attempt = hyp->max_retry_attempt();
      result.faults.jobs_shed = hyp->jobs_shed();
      result.faults.degraded_vms = hyp->degraded_vms();
      result.faults.frame_faults = hyp->frame_faults();
      result.faults.stalled_slots = hyp->stalled_slots();
      result.faults.spurious_irq_slots = hyp->spurious_irq_slots();
    }
    for (const auto& f : fifos) {
      result.faults.fifo_frames_lost += f.frames_lost();
      result.faults.fifo_stalled_slots += f.stalled_slots();
    }
  }

  // Mixed-criticality harvest (DESIGN.md §17); the controller exists only
  // when the feature was enabled on an I/O-GUARD trial.
  if (hyp && hyp->mode_controller() != nullptr) {
    const core::ModeController& mc = *hyp->mode_controller();
    result.mcs.switches_to_hi = mc.switches_to_hi();
    result.mcs.recoveries = mc.recoveries();
    result.mcs.propagated = mc.propagated_switches();
    result.mcs.overruns_observed = mc.overruns_observed();
    result.mcs.lo_jobs_shed = hyp->mode_jobs_shed();
    result.mcs.lo_rejected = hyp->lo_mode_rejected();
    result.mcs.hi_vms_at_end = mc.hi_vms();
    for (const Slot latency : mc.switch_latencies())
      result.mcs.switch_latency_slots.add(static_cast<double>(latency));
  }

  // ---- 6. Observability harvest (DESIGN.md §14). -------------------------
  if (jitter) {
    result.jitter.collected = true;
    auto harvest = [&](JitterChannel ch, std::vector<SampleSet>& out) {
      out.reserve(num_vms);
      for (std::size_t v = 0; v < num_vms; ++v)
        out.push_back(jitter->samples(ch, v));
    };
    harvest(JitterChannel::kPChannel, result.jitter.p_by_vm);
    harvest(JitterChannel::kRChannel, result.jitter.r_by_vm);
    harvest(JitterChannel::kFifo, result.jitter.fifo_by_vm);
    result.jitter.translator_by_device = jitter->translator_by_device();
    result.jitter.by_task = jitter->by_task();
  }
  if (config.collect_profile) {
    auto add = [&](std::string name, std::uint64_t busy_n,
                   std::uint64_t stall_n, std::uint64_t quiescent_n) {
      result.profile.push_back(
          ComponentProfile{std::move(name), busy_n, stall_n, quiescent_n});
    };
    for (std::size_t v = 0; v < num_vms; ++v)
      add("issue_vm" + std::to_string(v), issue_busy[v], 0,
          horizon - issue_busy[v]);
    if (vmm) add("vmm", vmm_busy, 0, horizon - vmm_busy);
    add("transit", transit_busy, 0, horizon - transit_busy);
    if (hyp) {
      for (std::size_t d = 0; d < n_dev; ++d) {
        const auto& vm = hyp->manager(DeviceId{static_cast<std::uint32_t>(d)});
        add("device" + std::to_string(d), vm.busy_slots(),
            vm.profile_stall_slots(), vm.profile_quiescent_slots());
      }
    } else {
      for (std::size_t d = 0; d < fifos.size(); ++d)
        add("fifo" + std::to_string(d), fifos[d].busy_slots(),
            fifos[d].profile_stall_slots(), fifos[d].profile_quiescent_slots());
    }
  }
  if (flight_ring != nullptr) {
    flight_ring->set_observer(nullptr);
    result.flight_dumps = flight->dumps_written();
  }

  if (config.metrics) {
    fill_metrics(*config.metrics, config, result, hyp.get(), fifos);
    fill_observability_metrics(*config.metrics, config, result);
    if (config.mode_switch.enabled)
      fill_mode_metrics(*config.metrics, result);
    if (injector)
      fill_fault_metrics(*config.metrics, config, result, *injector);
    if (config.trace)
      telemetry::register_span_metrics(*config.trace, *config.metrics);
  }
  return result;
}

namespace {

void json_kv(std::ostream& os, const char* key, double v, bool comma = true) {
  os << "  \"" << key << "\": ";
  if (v != v) {
    os << "null";
  } else {
    os << v;
  }
  if (comma) os << ",";
  os << "\n";
}

void json_kv(std::ostream& os, const char* key, std::uint64_t v,
             bool comma = true) {
  os << "  \"" << key << "\": " << v;
  if (comma) os << ",";
  os << "\n";
}

void json_stats(std::ostream& os, const char* key, const OnlineStats& s,
                bool comma = true) {
  os << "  \"" << key << "\": ";
  if (s.count() == 0) {
    os << "null";
  } else {
    os << "{\"count\": " << s.count() << ", \"mean\": " << s.mean()
       << ", \"min\": " << s.min() << ", \"max\": " << s.max() << "}";
  }
  if (comma) os << ",";
  os << "\n";
}

/// One HDR quantile record inside the "jitter_cycles" block (two-space
/// extra indent: these keys nest one level deeper than the top level).
void json_hdr(std::ostream& os, const char* key,
              const telemetry::HdrHistogram& h, bool comma = true) {
  os << "    \"" << key << "\": ";
  if (h.count() == 0) {
    os << "null";
  } else {
    os << "{\"count\": " << h.count()
       << ", \"p50\": " << h.value_at_percentile(50.0)
       << ", \"p99\": " << h.value_at_percentile(99.0)
       << ", \"p999\": " << h.value_at_percentile(99.9)
       << ", \"p9999\": " << h.value_at_percentile(99.99)
       << ", \"max\": " << h.max() << "}";
  }
  if (comma) os << ",";
  os << "\n";
}

}  // namespace

void write_trial_summary_json(std::ostream& os, const TrialConfig& config,
                              const TrialResult& result) {
  const auto prev_precision = os.precision(15);
  os << "{\n";
  os << "  \"system\": \"" << to_string(config.kind) << "\",\n";
  json_kv(os, "num_vms", static_cast<std::uint64_t>(config.workload.num_vms));
  json_kv(os, "target_utilization", config.workload.target_utilization);
  json_kv(os, "preload_fraction", config.workload.preload_fraction);
  json_kv(os, "trial_seed", config.trial_seed);
  json_kv(os, "horizon_slots", static_cast<std::uint64_t>(result.horizon));
  json_kv(os, "jobs_counted", result.jobs_counted);
  json_kv(os, "jobs_on_time", result.jobs_on_time);
  json_kv(os, "misses", result.misses);
  json_kv(os, "critical_misses", result.critical_misses);
  json_kv(os, "dropped", result.dropped);
  json_kv(os, "goodput_bytes_per_s", result.goodput_bytes_per_s);
  json_kv(os, "device_busy_frac", result.device_busy_frac);
  os << "  \"admitted\": " << (result.admitted ? "true" : "false") << ",\n";
  os << "  \"success\": " << (result.success() ? "true" : "false") << ",\n";

  os << "  \"response_slots\": ";
  if (result.response_slots.empty()) {
    os << "null";
  } else {
    const auto& r = result.response_slots;
    os << "{\"count\": " << r.count() << ", \"mean\": " << r.mean()
       << ", \"p50\": " << r.percentile(50.0)
       << ", \"p95\": " << r.percentile(95.0)
       << ", \"p99\": " << r.percentile(99.0)
       << ", \"p999\": " << r.percentile(99.9) << ", \"max\": " << r.max()
       << "}";
  }
  os << ",\n";

  json_stats(os, "stage_issue_slots", result.stage_issue);
  json_stats(os, "stage_vmm_slots", result.stage_vmm);
  json_stats(os, "stage_transit_slots", result.stage_transit);
  json_stats(os, "stage_backend_slots", result.stage_backend);

  // Fault block only for trials that ran a plan, so fault-free summaries
  // stay byte-identical to pre-fault builds.
  if (!config.faults.empty()) {
    os << "  \"fault_plan\": \"" << config.faults.spec_string() << "\",\n";
    const FaultCounters& fc = result.faults;
    os << "  \"faults\": {\"injected\": " << fc.injected_total
       << ", \"watchdog_aborts\": " << fc.watchdog_aborts
       << ", \"retries\": " << fc.retries
       << ", \"retries_exhausted\": " << fc.retries_exhausted
       << ", \"max_retry_attempt\": " << fc.max_retry_attempt
       << ", \"jobs_shed\": " << fc.jobs_shed
       << ", \"degraded_vms\": " << fc.degraded_vms
       << ", \"frame_faults\": " << fc.frame_faults
       << ", \"stalled_slots\": " << fc.stalled_slots
       << ", \"spurious_irq_slots\": " << fc.spurious_irq_slots
       << ", \"transit_drops\": " << fc.transit_drops
       << ", \"fifo_frames_lost\": " << fc.fifo_frames_lost
       << ", \"fifo_stalled_slots\": " << fc.fifo_stalled_slots << "},\n";
  }

  // Mixed-criticality block only when the feature flag is on, so pre-MCS
  // summaries stay byte-identical. Inside the block every field always
  // appears (even at zero) -- same no-order-dependence rule as the metrics.
  if (config.mode_switch.enabled) {
    const ModeSwitchCounters& mc = result.mcs;
    os << "  \"mcs\": {\"switches_to_hi\": " << mc.switches_to_hi
       << ", \"recoveries\": " << mc.recoveries
       << ", \"propagated\": " << mc.propagated
       << ", \"overruns_observed\": " << mc.overruns_observed
       << ", \"lo_jobs_shed\": " << mc.lo_jobs_shed
       << ", \"lo_rejected\": " << mc.lo_rejected
       << ", \"hi_vms_at_end\": " << mc.hi_vms_at_end
       << ", \"hi_misses\": " << mc.hi_misses << ", \"switch_latency\": ";
    if (mc.switch_latency_slots.empty()) {
      os << "null";
    } else {
      const auto& s = mc.switch_latency_slots;
      os << "{\"count\": " << s.count() << ", \"mean\": " << s.mean()
         << ", \"p50\": " << s.percentile(50.0)
         << ", \"p99\": " << s.percentile(99.0) << ", \"max\": " << s.max()
         << "}";
    }
    os << "},\n";
  }

  // Observability blocks appear only when collected, so plain trials keep
  // byte-identical summaries. Channel jitter is converted slots -> cycles
  // here; translator samples are already cycles.
  if (result.jitter.collected) {
    const double cps = static_cast<double>(config.cal.cycles_per_slot);
    auto hdr_of = [](const std::vector<SampleSet>& sets, double scale) {
      telemetry::HdrHistogram h;
      for (const auto& s : sets)
        for (double v : s.samples())
          h.record(static_cast<std::uint64_t>(v * scale));
      return h;
    };
    os << "  \"jitter_cycles\": {\n";
    json_hdr(os, "P", hdr_of(result.jitter.p_by_vm, cps));
    json_hdr(os, "R", hdr_of(result.jitter.r_by_vm, cps));
    json_hdr(os, "fifo", hdr_of(result.jitter.fifo_by_vm, cps));
    json_hdr(os, "translator", hdr_of(result.jitter.translator_by_device, 1.0),
             false);
    os << "  },\n";
    os << "  \"jitter_by_task\": {";
    bool jt_first = true;
    for (const auto& t : result.jitter.by_task) {
      if (!jt_first) os << ", ";
      jt_first = false;
      os << "\"" << t.task << "\": {\"ops\": " << t.ops
         << ", \"worst_slots\": " << t.worst_slots << "}";
    }
    os << "},\n";
  }
  if (!result.profile.empty()) {
    os << "  \"profile_slots\": {\n";
    for (std::size_t i = 0; i < result.profile.size(); ++i) {
      const ComponentProfile& c = result.profile[i];
      os << "    \"" << c.name << "\": {\"busy\": " << c.busy_slots
         << ", \"stall\": " << c.stall_slots
         << ", \"quiescent\": " << c.quiescent_slots << "}"
         << (i + 1 < result.profile.size() ? ",\n" : "\n");
    }
    os << "  },\n";
  }
  if (!config.flight_dir.empty())
    json_kv(os, "flight_dumps", result.flight_dumps);

  os << "  \"misses_by_task\": {";
  bool first = true;
  for (const auto& [task, count] : result.misses_by_task) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << task << "\": " << count;
  }
  os << "}\n";
  os << "}\n";
  os.precision(prev_precision);
}

}  // namespace ioguard::sys
