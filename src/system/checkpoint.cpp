#include "system/checkpoint.hpp"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/bytes.hpp"
#include "common/checksum.hpp"
#include "telemetry/metrics_io.hpp"

namespace ioguard::sys {

namespace {

// Frame layout: [magic][payload_len][payload][crc32(payload)]. The magic
// makes a torn tail distinguishable from garbage mid-file; the CRC guards
// the payload bytes the frame claims to carry.
constexpr std::uint32_t kFrameMagic = 0x314B5043u;  // "CPK1"
constexpr std::uint32_t kMaxPayload = 64u << 20;    // sanity bound, 64 MiB
constexpr std::string_view kManifestMagic = "ioguard-checkpoint-v2";

constexpr std::uint8_t kFlagAbandoned = 1u << 0;
constexpr std::uint8_t kFlagHasMetrics = 1u << 1;

[[nodiscard]] std::string manifest_path_for(const std::string& path) {
  return path + ".manifest";
}

void put_online_stats(ByteWriter& w, const OnlineStats& stats) {
  const OnlineStats::Raw raw = stats.raw();
  w.put_u64(raw.n);
  w.put_f64(raw.mean);
  w.put_f64(raw.m2);
  w.put_f64(raw.min);
  w.put_f64(raw.max);
}

[[nodiscard]] OnlineStats get_online_stats(ByteReader& r) {
  OnlineStats::Raw raw;
  raw.n = r.get_u64();
  raw.mean = r.get_f64();
  raw.m2 = r.get_f64();
  raw.min = r.get_f64();
  raw.max = r.get_f64();
  return OnlineStats::from_raw(raw);
}

// SampleSets serialize in insertion order for the same reason response_slots
// does below: mean() sums sequentially, so order is part of the value.
void put_sample_set(ByteWriter& w, const SampleSet& set) {
  const auto& samples = set.samples();
  w.put_u32(static_cast<std::uint32_t>(samples.size()));
  for (const double s : samples) w.put_f64(s);
}

[[nodiscard]] SampleSet get_sample_set(ByteReader& r) {
  SampleSet set;
  const std::uint32_t n = r.get_u32();
  if (r.ok()) set.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) set.add(r.get_f64());
  return set;
}

void put_sample_sets(ByteWriter& w, const std::vector<SampleSet>& sets) {
  w.put_u32(static_cast<std::uint32_t>(sets.size()));
  for (const auto& s : sets) put_sample_set(w, s);
}

[[nodiscard]] std::vector<SampleSet> get_sample_sets(ByteReader& r) {
  std::vector<SampleSet> sets;
  const std::uint32_t n = r.get_u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i)
    sets.push_back(get_sample_set(r));
  return sets;
}

void encode_trial_result(ByteWriter& w, const TrialResult& result) {
  w.put_u64(result.horizon);
  w.put_u64(result.jobs_counted);
  w.put_u64(result.jobs_on_time);
  w.put_u64(result.misses);
  w.put_u64(result.critical_misses);
  w.put_u64(result.dropped);
  w.put_f64(result.goodput_bytes_per_s);
  w.put_f64(result.device_busy_frac);
  w.put_u8(result.admitted ? 1 : 0);
  // Insertion order matters: SampleSet::mean() sums sequentially, so a
  // reordered restore would change the last few bits of the mean.
  const auto& samples = result.response_slots.samples();
  w.put_u32(static_cast<std::uint32_t>(samples.size()));
  for (const double s : samples) w.put_f64(s);
  w.put_u32(static_cast<std::uint32_t>(result.misses_by_task.size()));
  for (const auto& [task, misses] : result.misses_by_task) {
    w.put_u32(task);
    w.put_u32(misses);
  }
  put_online_stats(w, result.stage_issue);
  put_online_stats(w, result.stage_vmm);
  put_online_stats(w, result.stage_transit);
  put_online_stats(w, result.stage_backend);
  const FaultCounters& fc = result.faults;
  w.put_u64(fc.injected_total);
  w.put_u64(fc.watchdog_aborts);
  w.put_u64(fc.retries);
  w.put_u64(fc.retries_exhausted);
  w.put_u32(fc.max_retry_attempt);
  w.put_u64(fc.jobs_shed);
  w.put_u64(fc.degraded_vms);
  w.put_u64(fc.frame_faults);
  w.put_u64(fc.stalled_slots);
  w.put_u64(fc.spurious_irq_slots);
  w.put_u64(fc.transit_drops);
  w.put_u64(fc.fifo_frames_lost);
  w.put_u64(fc.fifo_stalled_slots);
  // Observability harvest (appended last so the field order above matches
  // older journals byte-for-byte up to this point).
  const JitterSummary& js = result.jitter;
  w.put_u8(js.collected ? 1 : 0);
  put_sample_sets(w, js.p_by_vm);
  put_sample_sets(w, js.r_by_vm);
  put_sample_sets(w, js.fifo_by_vm);
  put_sample_sets(w, js.translator_by_device);
  w.put_u32(static_cast<std::uint32_t>(js.by_task.size()));
  for (const auto& t : js.by_task) {
    w.put_u32(t.task);
    w.put_u64(t.ops);
    w.put_u64(t.worst_slots);
  }
  w.put_u32(static_cast<std::uint32_t>(result.profile.size()));
  for (const auto& c : result.profile) {
    w.put_string(c.name);
    w.put_u64(c.busy_slots);
    w.put_u64(c.stall_slots);
    w.put_u64(c.quiescent_slots);
  }
  w.put_u64(result.flight_dumps);
  // Mixed-criticality counters, appended last (the manifest magic is v2:
  // v1 journals predate this block and are rejected, not misread).
  const ModeSwitchCounters& mc = result.mcs;
  w.put_u64(mc.switches_to_hi);
  w.put_u64(mc.recoveries);
  w.put_u64(mc.propagated);
  w.put_u64(mc.overruns_observed);
  w.put_u64(mc.lo_jobs_shed);
  w.put_u64(mc.lo_rejected);
  w.put_u64(mc.hi_vms_at_end);
  w.put_u64(mc.hi_misses);
  put_sample_set(w, mc.switch_latency_slots);
}

[[nodiscard]] TrialResult decode_trial_result(ByteReader& r) {
  TrialResult result;
  result.horizon = r.get_u64();
  result.jobs_counted = r.get_u64();
  result.jobs_on_time = r.get_u64();
  result.misses = r.get_u64();
  result.critical_misses = r.get_u64();
  result.dropped = r.get_u64();
  result.goodput_bytes_per_s = r.get_f64();
  result.device_busy_frac = r.get_f64();
  result.admitted = r.get_u8() != 0;
  const std::uint32_t sample_count = r.get_u32();
  if (r.ok()) result.response_slots.reserve(sample_count);
  for (std::uint32_t i = 0; i < sample_count && r.ok(); ++i)
    result.response_slots.add(r.get_f64());
  const std::uint32_t miss_count = r.get_u32();
  for (std::uint32_t i = 0; i < miss_count && r.ok(); ++i) {
    const std::uint32_t task = r.get_u32();
    const std::uint32_t misses = r.get_u32();
    result.misses_by_task.emplace_back(task, misses);
  }
  result.stage_issue = get_online_stats(r);
  result.stage_vmm = get_online_stats(r);
  result.stage_transit = get_online_stats(r);
  result.stage_backend = get_online_stats(r);
  FaultCounters& fc = result.faults;
  fc.injected_total = r.get_u64();
  fc.watchdog_aborts = r.get_u64();
  fc.retries = r.get_u64();
  fc.retries_exhausted = r.get_u64();
  fc.max_retry_attempt = r.get_u32();
  fc.jobs_shed = r.get_u64();
  fc.degraded_vms = r.get_u64();
  fc.frame_faults = r.get_u64();
  fc.stalled_slots = r.get_u64();
  fc.spurious_irq_slots = r.get_u64();
  fc.transit_drops = r.get_u64();
  fc.fifo_frames_lost = r.get_u64();
  fc.fifo_stalled_slots = r.get_u64();
  JitterSummary& js = result.jitter;
  js.collected = r.get_u8() != 0;
  js.p_by_vm = get_sample_sets(r);
  js.r_by_vm = get_sample_sets(r);
  js.fifo_by_vm = get_sample_sets(r);
  js.translator_by_device = get_sample_sets(r);
  const std::uint32_t task_count = r.get_u32();
  for (std::uint32_t i = 0; i < task_count && r.ok(); ++i) {
    JitterRecorder::TaskJitter t;
    t.task = r.get_u32();
    t.ops = r.get_u64();
    t.worst_slots = r.get_u64();
    js.by_task.push_back(t);
  }
  const std::uint32_t profile_count = r.get_u32();
  for (std::uint32_t i = 0; i < profile_count && r.ok(); ++i) {
    ComponentProfile c;
    c.name = std::string(r.get_string());
    c.busy_slots = r.get_u64();
    c.stall_slots = r.get_u64();
    c.quiescent_slots = r.get_u64();
    result.profile.push_back(std::move(c));
  }
  result.flight_dumps = r.get_u64();
  ModeSwitchCounters& mc = result.mcs;
  mc.switches_to_hi = r.get_u64();
  mc.recoveries = r.get_u64();
  mc.propagated = r.get_u64();
  mc.overruns_observed = r.get_u64();
  mc.lo_jobs_shed = r.get_u64();
  mc.lo_rejected = r.get_u64();
  mc.hi_vms_at_end = r.get_u64();
  mc.hi_misses = r.get_u64();
  mc.switch_latency_slots = get_sample_set(r);
  return result;
}

[[nodiscard]] std::string encode_record(const CheckpointRecord& record) {
  std::string payload;
  ByteWriter w(&payload);
  w.put_u64(record.point_key);
  w.put_u32(record.trial);
  std::uint8_t flags = 0;
  if (record.abandoned) flags |= kFlagAbandoned;
  if (record.has_metrics) flags |= kFlagHasMetrics;
  w.put_u8(flags);
  encode_trial_result(w, record.result);
  w.put_string(record.note);
  if (record.has_metrics) w.put_string(record.metrics_blob);
  return payload;
}

[[nodiscard]] StatusOr<CheckpointRecord> decode_record(
    std::string_view payload) {
  ByteReader r(payload);
  CheckpointRecord record;
  record.point_key = r.get_u64();
  record.trial = r.get_u32();
  const std::uint8_t flags = r.get_u8();
  record.abandoned = (flags & kFlagAbandoned) != 0;
  record.has_metrics = (flags & kFlagHasMetrics) != 0;
  record.result = decode_trial_result(r);
  record.note = std::string(r.get_string());
  if (record.has_metrics) record.metrics_blob = std::string(r.get_string());
  if (!r.ok() || !r.at_end())
    return DataLossError("checkpoint record payload is malformed");
  return record;
}

/// Outcome of scanning the journal byte stream.
struct JournalScan {
  std::vector<CheckpointRecord> records;
  std::size_t valid_bytes = 0;  ///< prefix length covered by intact frames
  bool truncated_tail = false;
  Status corrupt = OkStatus();  ///< DataLoss when a retained frame fails CRC
};

[[nodiscard]] JournalScan scan_journal(std::string_view bytes) {
  JournalScan scan;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    scan.valid_bytes = pos;
    ByteReader header(bytes.substr(pos));
    const std::uint32_t magic = header.get_u32();
    const std::uint32_t len = header.get_u32();
    if (!header.ok()) {  // partial frame header: crash mid-append
      scan.truncated_tail = true;
      return scan;
    }
    if (magic != kFrameMagic || len > kMaxPayload) {
      scan.corrupt = DataLossError(
          "checkpoint journal: bad frame magic at byte offset " +
          std::to_string(pos));
      return scan;
    }
    const std::size_t frame_size = 4 + 4 + static_cast<std::size_t>(len) + 4;
    if (bytes.size() - pos < frame_size) {  // partial payload or CRC
      scan.truncated_tail = true;
      return scan;
    }
    const std::string_view payload = bytes.substr(pos + 8, len);
    ByteReader crc_reader(bytes.substr(pos + 8 + len, 4));
    const std::uint32_t stored_crc = crc_reader.get_u32();
    if (crc32(payload) != stored_crc) {
      scan.corrupt = DataLossError(
          "checkpoint journal: CRC mismatch in record " +
          std::to_string(scan.records.size()) + " (byte offset " +
          std::to_string(pos) + "); the journal is corrupt, not truncated");
      return scan;
    }
    auto record = decode_record(payload);
    if (!record.ok()) {
      scan.corrupt = record.status();
      return scan;
    }
    scan.records.push_back(std::move(record).value());
    pos += frame_size;
  }
  scan.valid_bytes = pos;
  return scan;
}

[[nodiscard]] StatusOr<std::string> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

[[nodiscard]] std::string render_manifest(const CheckpointMeta& meta) {
  std::ostringstream os;
  os << kManifestMagic << "\n";
  os << "fingerprint " << std::hex << meta.fingerprint << std::dec << "\n";
  os << "trials " << meta.planned_trials << "\n";
  os << "config " << meta.config_echo << "\n";
  return std::move(os).str();
}

[[nodiscard]] StatusOr<CheckpointMeta> parse_manifest(
    const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kManifestMagic)
    return DataLossError("checkpoint manifest: bad or missing magic line");
  CheckpointMeta meta;
  bool have_fingerprint = false;
  while (std::getline(is, line)) {
    if (line.rfind("fingerprint ", 0) == 0) {
      meta.fingerprint = std::strtoull(line.c_str() + 12, nullptr, 16);
      have_fingerprint = true;
    } else if (line.rfind("trials ", 0) == 0) {
      meta.planned_trials = std::strtoull(line.c_str() + 7, nullptr, 10);
    } else if (line.rfind("config ", 0) == 0) {
      meta.config_echo = line.substr(7);
    }
  }
  if (!have_fingerprint)
    return DataLossError("checkpoint manifest: no fingerprint line");
  return meta;
}

}  // namespace

struct CheckpointJournal::Sink {
  // IOGUARD_LINT_ALLOW(LNT005: append-only journal -- rename cannot append)
  std::ofstream out;  // torn tails are healed by the reader's line scan
};

CheckpointJournal::~CheckpointJournal() = default;

StatusOr<std::unique_ptr<CheckpointJournal>> CheckpointJournal::open(
    const std::string& path, const CheckpointMeta& meta, bool resume) {
  if (path.empty())
    return InvalidArgumentError("checkpoint path must not be empty");
  const std::string manifest_path = manifest_path_for(path);
  std::unique_ptr<CheckpointJournal> journal(new CheckpointJournal());
  journal->path_ = path;

  if (resume) {
    auto manifest_text = read_all(manifest_path);
    if (!manifest_text.ok())
      return NotFoundError("--resume: no manifest at " + manifest_path +
                           " (was this sweep ever started with "
                           "--checkpoint?)");
    IOGUARD_ASSIGN_OR_RETURN(const CheckpointMeta on_disk,
                             parse_manifest(*manifest_text));
    if (on_disk.fingerprint != meta.fingerprint)
      return FailedPreconditionError(
          "CKP002: checkpoint " + path +
          " was written under a different configuration (journal: '" +
          on_disk.config_echo + "', requested: '" + meta.config_echo +
          "'); rerun with matching flags or start a fresh checkpoint");
    auto bytes = read_all(path);
    if (bytes.ok()) {
      JournalScan scan = scan_journal(*bytes);
      IOGUARD_RETURN_IF_ERROR(scan.corrupt);
      journal->truncated_tail_ = scan.truncated_tail;
      if (scan.truncated_tail) {
        // Drop the partial frame physically too, so this run's appends
        // produce a journal indistinguishable from a clean one.
        std::error_code ec;
        std::filesystem::resize_file(path, scan.valid_bytes, ec);
        if (ec)
          return UnavailableError("cannot drop truncated tail of " + path +
                                  ": " + ec.message());
      }
      for (auto& record : scan.records) {
        const auto key = std::make_pair(record.point_key, record.trial);
        journal->records_[key] = std::move(record);
      }
    }
  } else {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    std::filesystem::remove(manifest_path, ec);
  }

  // The manifest is (re)published atomically on every open: a fresh run
  // records its config before the first trial lands, and a resumed run
  // refreshes mtime ordering so manifest-older-than-journal means stale.
  IOGUARD_RETURN_IF_ERROR(
      write_file_atomic(manifest_path, render_manifest(meta)));

  const MutexLock lock(journal->mutex_);
  journal->sink_ = std::make_unique<Sink>();
  journal->sink_->out.open(path, std::ios::binary | std::ios::app);
  if (!journal->sink_->out)
    return UnavailableError("cannot open checkpoint journal " + path +
                            " for appending");
  return journal;
}

const CheckpointRecord* CheckpointJournal::find(std::uint64_t point_key,
                                                std::uint32_t trial) const {
  const auto it = records_.find(std::make_pair(point_key, trial));
  return it == records_.end() ? nullptr : &it->second;
}

Status CheckpointJournal::append(std::uint64_t point_key, std::uint32_t trial,
                                 bool abandoned, const TrialResult& result,
                                 const telemetry::MetricsRegistry* metrics,
                                 const std::string& note) {
  CheckpointRecord record;
  record.point_key = point_key;
  record.trial = trial;
  record.abandoned = abandoned;
  record.note = note;
  record.result = result;
  if (metrics) {
    record.has_metrics = true;
    telemetry::encode_metrics(*metrics, record.metrics_blob);
  }
  const std::string payload = encode_record(record);

  std::string frame;
  ByteWriter w(&frame);
  w.put_u32(kFrameMagic);
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  ByteWriter crc_writer(&frame);
  crc_writer.put_u32(crc32(payload));

  const MutexLock lock(mutex_);
  sink_->out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  sink_->out.flush();
  if (!sink_->out)
    return UnavailableError("short write to checkpoint journal " + path_);
  ++appended_;
  if (crash_after_ != 0 && appended_ >= crash_after_) {
    // Simulated SIGKILL: no unwinding, no destructor flushes. The record
    // just written is durable; anything in flight is lost, exactly like a
    // real kill at a trial boundary.
    std::_Exit(kCrashHookExitCode);
  }
  return OkStatus();
}

CheckpointFacts inspect_checkpoint(const std::string& path) {
  CheckpointFacts facts;
  const std::string manifest_path = manifest_path_for(path);

  auto manifest_text = read_all(manifest_path);
  facts.manifest_present = manifest_text.ok();
  if (facts.manifest_present) {
    auto meta = parse_manifest(*manifest_text);
    facts.manifest_parsed = meta.ok();
    if (meta.ok()) facts.meta = std::move(meta).value();
  }

  auto bytes = read_all(path);
  facts.journal_present = bytes.ok();
  if (facts.journal_present) {
    const JournalScan scan = scan_journal(*bytes);
    facts.records = scan.records.size();
    facts.truncated_tail = scan.truncated_tail;
    facts.corrupt = !scan.corrupt.ok();
    for (const auto& record : scan.records)
      if (record.abandoned) ++facts.abandoned;
  }

  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  facts.orphaned_temps = find_orphaned_temp_files(dir);
  return facts;
}

std::uint64_t checkpoint_point_key(SystemKind kind, double preload_fraction,
                                   std::size_t num_vms,
                                   double target_utilization,
                                   std::uint64_t salt) {
  std::ostringstream os;
  os << "point;kind=" << static_cast<int>(kind)
     << ";preload=" << std::llround(preload_fraction * 10000.0)
     << ";vms=" << num_vms
     << ";util=" << std::llround(target_utilization * 10000.0)
     << ";salt=" << salt;
  return fnv1a64(std::move(os).str());
}

std::string point_config_string(SystemKind kind, std::size_t num_vms,
                                double target_utilization,
                                double preload_fraction, std::size_t trials,
                                std::size_t min_jobs, std::uint64_t seed,
                                const faults::FaultPlan& plan,
                                const faults::ResilienceConfig& resilience,
                                bool mixed_criticality,
                                const core::ModeSwitchConfig& mode_switch) {
  std::ostringstream os;
  os << "system=" << to_string(kind) << " vms=" << num_vms
     << " util_ticks=" << std::llround(target_utilization * 10000.0)
     << " preload_ticks=" << std::llround(preload_fraction * 10000.0)
     << " trials=" << trials << " min_jobs=" << min_jobs << " seed=" << seed
     << " faults=" << (plan.empty() ? "none" : plan.spec_string())
     << " resilience=" << resilience.watchdog_timeout_slots << "/"
     << resilience.max_retries << "/" << resilience.retry_backoff_base_slots
     << "/" << resilience.degradation_threshold << "/"
     << (resilience.degradation_enabled ? 1 : 0);
  // Mixed-criticality tokens appear only when the features are on: resuming
  // a criticality-aware run under different MCS parameters changes results,
  // while pre-MCS config strings keep their exact historical bytes.
  if (mixed_criticality) os << " criticality=1";
  if (mode_switch.enabled)
    os << " mcs=" << mode_switch.overrun_threshold << "/"
       << mode_switch.recovery_hysteresis_slots << "/"
       << mode_switch.propagation_threshold << "/"
       << std::llround(mode_switch.hi_budget_factor * 10000.0);
  return std::move(os).str();
}

}  // namespace ioguard::sys
