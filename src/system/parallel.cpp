#include "system/parallel.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "common/check.hpp"
#include "common/sync.hpp"
#include "core/event_trace.hpp"
#include "system/checkpoint.hpp"
#include "telemetry/metrics_io.hpp"

namespace ioguard::sys {

void BatchTiming::accumulate(const BatchTiming& other) {
  trials += other.trials;
  jobs = other.jobs > jobs ? other.jobs : jobs;
  wall_seconds += other.wall_seconds;
  trial_seconds_sum += other.trial_seconds_sum;
  trial_seconds.merge(other.trial_seconds);
}

const char* to_string(TrialOutcome outcome) {
  switch (outcome) {
    case TrialOutcome::kCompleted: return "completed";
    case TrialOutcome::kRestored: return "restored";
    case TrialOutcome::kRetried: return "retried";
    case TrialOutcome::kAbandoned: return "abandoned";
    case TrialOutcome::kSkipped: return "skipped";
  }
  return "?";
}

std::vector<TrialResult> ParallelRunner::run_trials(
    std::size_t n, const std::function<TrialConfig(std::size_t)>& make_config,
    telemetry::MetricsRegistry* metrics, BatchTiming* timing) {
  SupervisionPolicy policy;
  policy.max_attempts = 1;
  policy.rethrow_on_failure = true;
  BatchResult batch = run_supervised(n, make_config, policy, metrics, timing);
  return std::move(batch.results);
}

BatchResult ParallelRunner::run_supervised(
    std::size_t n, const std::function<TrialConfig(std::size_t)>& make_config,
    const SupervisionPolicy& policy, telemetry::MetricsRegistry* metrics,
    BatchTiming* timing) {
  using clock = std::chrono::steady_clock;
  const auto seconds_since = [](clock::time_point t0) {
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  const std::size_t max_attempts =
      policy.max_attempts > 0 ? policy.max_attempts : 1;

  BatchResult batch;
  batch.results.resize(n);
  batch.outcomes.assign(n, TrialOutcome::kCompleted);
  // One registry per trial, merged in index order below: counter/histogram
  // merges are commutative sums, but gauges are last-writer-wins, so the
  // merge order must reproduce the sequential write order exactly.
  std::vector<telemetry::MetricsRegistry> registries(metrics ? n : 0);
  std::vector<double> trial_secs(n, 0.0);
  std::vector<std::string> errors(n);
  std::vector<std::size_t> attempts(n, 0);
  // Only cross-trial shared mutable of the fan-out (everything else above is
  // per-index-disjoint); first journal failure wins, under an annotated lock.
  struct JournalErrorSlot {
    Mutex mutex;
    Status first IOGUARD_GUARDED_BY(mutex);
  } journal_error;

  // Restore pass: trials already journaled under this point key skip
  // execution entirely; their results (and metrics deltas, when this run
  // needs them) merge exactly as if they had just run. A record without a
  // metrics delta cannot satisfy a metrics-collecting run, so that trial is
  // deterministically re-executed instead (same mix_seed, same result).
  std::vector<std::size_t> pending;
  pending.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    const CheckpointRecord* record =
        policy.journal ? policy.journal->find(
                             policy.point_key,
                             static_cast<std::uint32_t>(t))
                       : nullptr;
    if (record == nullptr || (metrics && !record->has_metrics &&
                              !record->abandoned)) {
      pending.push_back(t);
      continue;
    }
    if (record->abandoned) {
      batch.outcomes[t] = TrialOutcome::kAbandoned;
      errors[t] = record->note.empty() ? "abandoned in a previous run"
                                       : record->note;
      continue;
    }
    if (metrics) {
      const Status decoded =
          telemetry::decode_metrics(record->metrics_blob, registries[t]);
      if (!decoded.ok()) {
        // A CRC-valid record with an undecodable blob is a format skew
        // (e.g. journal from an older build); re-executing is always safe.
        registries[t] = telemetry::MetricsRegistry{};
        pending.push_back(t);
        continue;
      }
    }
    batch.results[t] = record->result;
    batch.outcomes[t] = TrialOutcome::kRestored;
    ++batch.restored;
  }

  const auto batch_start = clock::now();
  pool_.parallel_for(pending.size(), [&](std::size_t i) {
    const std::size_t t = pending[i];
    if (policy.stop != nullptr &&
        policy.stop->load(std::memory_order_relaxed)) {
      batch.outcomes[t] = TrialOutcome::kSkipped;
      return;
    }
    TrialConfig tc = make_config(t);
    IOGUARD_CHECK_MSG(tc.metrics == nullptr,
                      "pass the registry to run_trials, not TrialConfig: a "
                      "registry shared across trials is a data race");
    if (metrics) tc.metrics = &registries[t];

    const auto trial_start = clock::now();
    std::size_t attempt = 0;
    bool failed = false;
    for (;;) {
      try {
        batch.results[t] = policy.trial_fn ? policy.trial_fn(tc)
                                           : run_trial(tc);
        break;
      } catch (const std::exception& e) {
        errors[t] = e.what();
        ++attempt;
        if (attempt >= max_attempts) {
          if (policy.rethrow_on_failure) throw;
          failed = true;
          break;
        }
        // Deterministic re-execution: rebuild the config and wipe every
        // sink the failed attempt may have half-filled, so a successful
        // retry is indistinguishable from a first-attempt success.
        tc = make_config(t);
        if (tc.trace != nullptr) tc.trace->clear();
        if (metrics) {
          registries[t] = telemetry::MetricsRegistry{};
          tc.metrics = &registries[t];
        }
      }
    }
    trial_secs[t] = seconds_since(trial_start);
    attempts[t] = attempt;

    if (failed) {
      batch.results[t] = TrialResult{};  // placeholder; callers skip it
      batch.outcomes[t] = TrialOutcome::kAbandoned;
      if (metrics) registries[t] = telemetry::MetricsRegistry{};
    } else if (attempt > 0) {
      batch.outcomes[t] = TrialOutcome::kRetried;
    }

    if (policy.journal != nullptr) {
      const bool abandoned = batch.outcomes[t] == TrialOutcome::kAbandoned;
      const Status appended = policy.journal->append(
          policy.point_key, static_cast<std::uint32_t>(t), abandoned,
          batch.results[t],
          metrics && !abandoned ? &registries[t] : nullptr, errors[t]);
      if (!appended.ok()) {
        const MutexLock lock(journal_error.mutex);
        if (journal_error.first.ok()) journal_error.first = appended;
      }
    }
  });
  const double wall = seconds_since(batch_start);
  {
    // The pool has drained: workers are quiescent, so this read is the
    // happens-after edge of every failed append.
    const MutexLock lock(journal_error.mutex);
    batch.journal_error = journal_error.first;
  }

  if (metrics) {
    for (const auto& reg : registries) {
      // The barrier above transferred ownership of each per-trial registry
      // from its worker to this thread; re-bind the single-writer checker
      // so the debug build accepts the merge.
      reg.rebind_writer();
      metrics->merge(reg);
    }
  }

  for (std::size_t t = 0; t < n; ++t) {
    switch (batch.outcomes[t]) {
      case TrialOutcome::kCompleted: ++batch.completed; break;
      case TrialOutcome::kRetried: ++batch.retried; break;
      case TrialOutcome::kSkipped: ++batch.skipped; break;
      case TrialOutcome::kAbandoned: ++batch.abandoned; break;
      case TrialOutcome::kRestored: break;  // counted in the restore pass
    }
    const bool executed = batch.outcomes[t] == TrialOutcome::kCompleted ||
                          batch.outcomes[t] == TrialOutcome::kRetried;
    if (executed && policy.trial_timeout_seconds > 0.0 &&
        trial_secs[t] > policy.trial_timeout_seconds) {
      ++batch.wedged;
      batch.notes.push_back(
          "trial " + std::to_string(t) + ": wedged (ran " +
          std::to_string(trial_secs[t]) + " s, soft deadline " +
          std::to_string(policy.trial_timeout_seconds) + " s)");
    }
    if (!errors[t].empty() &&
        batch.outcomes[t] != TrialOutcome::kRestored) {
      const std::string prefix = "trial " + std::to_string(t) + ": ";
      if (attempts[t] == 0) {  // abandonment carried over from the journal
        batch.notes.push_back(prefix + "abandoned (journaled): " + errors[t]);
      } else {
        batch.notes.push_back(
            prefix +
            (batch.outcomes[t] == TrialOutcome::kAbandoned ? "abandoned"
                                                           : "recovered") +
            " after " + std::to_string(attempts[t]) +
            " failed attempt(s): " + errors[t]);
      }
    }
  }
  batch.interrupted =
      batch.skipped > 0 ||
      (policy.stop != nullptr &&
       policy.stop->load(std::memory_order_relaxed));

  if (timing) {
    timing->trials = batch.executed();
    timing->jobs = pool_.jobs();
    timing->wall_seconds = wall;
    timing->trial_seconds_sum = 0.0;
    timing->trial_seconds = OnlineStats{};
    for (std::size_t t = 0; t < n; ++t) {
      const bool executed = batch.outcomes[t] == TrialOutcome::kCompleted ||
                            batch.outcomes[t] == TrialOutcome::kRetried;
      if (!executed) continue;
      timing->trial_seconds_sum += trial_secs[t];
      timing->trial_seconds.add(trial_secs[t]);
    }
  }
  return batch;
}

}  // namespace ioguard::sys
