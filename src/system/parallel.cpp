#include "system/parallel.hpp"

#include <chrono>

#include "common/check.hpp"

namespace ioguard::sys {

void BatchTiming::accumulate(const BatchTiming& other) {
  trials += other.trials;
  jobs = other.jobs > jobs ? other.jobs : jobs;
  wall_seconds += other.wall_seconds;
  trial_seconds_sum += other.trial_seconds_sum;
  trial_seconds.merge(other.trial_seconds);
}

std::vector<TrialResult> ParallelRunner::run_trials(
    std::size_t n, const std::function<TrialConfig(std::size_t)>& make_config,
    telemetry::MetricsRegistry* metrics, BatchTiming* timing) {
  using clock = std::chrono::steady_clock;
  const auto seconds_since = [](clock::time_point t0) {
    return std::chrono::duration<double>(clock::now() - t0).count();
  };

  std::vector<TrialResult> results(n);
  // One registry per trial, merged in index order below: counter/histogram
  // merges are commutative sums, but gauges are last-writer-wins, so the
  // merge order must reproduce the sequential write order exactly.
  std::vector<telemetry::MetricsRegistry> registries(metrics ? n : 0);
  std::vector<double> trial_secs(n, 0.0);

  const auto batch_start = clock::now();
  pool_.parallel_for(n, [&](std::size_t t) {
    TrialConfig tc = make_config(t);
    IOGUARD_CHECK_MSG(tc.metrics == nullptr,
                      "pass the registry to run_trials, not TrialConfig: a "
                      "registry shared across trials is a data race");
    if (metrics) tc.metrics = &registries[t];
    const auto trial_start = clock::now();
    results[t] = run_trial(tc);
    trial_secs[t] = seconds_since(trial_start);
  });
  const double wall = seconds_since(batch_start);

  if (metrics)
    for (const auto& reg : registries) metrics->merge(reg);

  if (timing) {
    timing->trials = n;
    timing->jobs = pool_.jobs();
    timing->wall_seconds = wall;
    timing->trial_seconds_sum = 0.0;
    timing->trial_seconds = OnlineStats{};
    for (double s : trial_secs) {
      timing->trial_seconds_sum += s;
      timing->trial_seconds.add(s);
    }
  }
  return results;
}

}  // namespace ioguard::sys
