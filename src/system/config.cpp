#include "system/config.hpp"

#include "common/check.hpp"

namespace ioguard::sys {

const char* to_string(SystemKind k) {
  switch (k) {
    case SystemKind::kLegacy: return "BS|Legacy";
    case SystemKind::kRtXen: return "BS|RT-XEN";
    case SystemKind::kBlueVisor: return "BS|BV";
    case SystemKind::kIoGuard: return "I/O-GUARD";
  }
  return "?";
}

Cycle issue_cycles(const Calibration& cal, SystemKind kind) {
  switch (kind) {
    case SystemKind::kLegacy: return cal.legacy_issue_cycles;
    case SystemKind::kRtXen: return cal.rtxen_issue_cycles;
    case SystemKind::kBlueVisor: return cal.bv_issue_cycles;
    case SystemKind::kIoGuard: return cal.ioguard_issue_cycles;
  }
  IOGUARD_CHECK_MSG(false, "unknown system kind");
  __builtin_unreachable();
}

}  // namespace ioguard::sys
