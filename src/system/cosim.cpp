#include "system/cosim.hpp"

#include <map>
#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/hypervisor.hpp"
#include "iodev/fifo_controller.hpp"
#include "noc/mesh.hpp"
#include "system/stages.hpp"
#include "workload/arrivals.hpp"

namespace ioguard::sys {

CosimResult run_cosim(const CosimConfig& config) {
  // ---- Workload (same builder as the analytic runner). -------------------
  workload::CaseStudyConfig wl_cfg = config.workload;
  if (config.kind != SystemKind::kIoGuard) wl_cfg.preload_fraction = 0.0;
  wl_cfg.seed = config.seed * 1000003ULL + 17;
  const auto wl = workload::build_case_study(wl_cfg);

  workload::ArrivalConfig arr;
  arr.horizon = config.horizon_slots;
  arr.seed = config.seed * 2654435761ULL + 99;
  const auto trace = workload::generate_trace(wl.tasks, arr);

  std::vector<workload::TaskClass> task_class(wl.tasks.size());
  for (const auto& t : wl.tasks.tasks()) task_class[t.id.value] = t.cls;
  auto is_critical = [&](TaskId id) {
    return task_class[id.value] != workload::TaskClass::kSynthetic;
  };

  // ---- Platform: 5x5 mesh; VMs row-major from node 0, devices on the last
  // row (nodes 20..23), mirroring the paper's floorplan. -------------------
  noc::MeshConfig mesh_cfg;
  noc::Mesh mesh(mesh_cfg);
  const std::size_t num_vms = wl_cfg.num_vms;
  IOGUARD_CHECK_MSG(num_vms <= 16, "co-sim floorplan hosts up to 16 VMs");
  auto vm_node = [&](VmId vm) {
    return NodeId{static_cast<std::uint32_t>(vm.value)};
  };
  auto device_node = [&](DeviceId dev) {
    return NodeId{static_cast<std::uint32_t>(20 + dev.value)};
  };

  const Calibration& cal = config.cal;
  const Cycle cps = cal.cycles_per_slot;

  // ---- Back-ends. ---------------------------------------------------------
  std::vector<iodev::FifoController> fifos;
  std::unique_ptr<core::Hypervisor> hyp;
  if (config.kind == SystemKind::kIoGuard) {
    core::HypervisorConfig hc;
    hc.num_vms = num_vms;
    hc.pool_capacity = cal.pool_capacity;
    hc.dispatch_overhead_slots = cal.dispatch_overhead_slots;
    hyp = std::make_unique<core::Hypervisor>(wl, hc);
  } else {
    for (std::size_t d = 0; d < workload::kCaseStudyDeviceCount; ++d)
      fifos.emplace_back(cal.device_fifo_capacity,
                         cal.dispatch_overhead_slots);
  }

  std::vector<IssueStage> issue;
  for (std::size_t v = 0; v < num_vms; ++v)
    issue.emplace_back(issue_cycles(cal, config.kind), cps);
  std::unique_ptr<VmmStage> vmm;
  if (config.kind == SystemKind::kRtXen)
    vmm = std::make_unique<VmmStage>(cal, num_vms, config.seed ^ 0xabc);

  // ---- Accounting. --------------------------------------------------------
  CosimResult result;
  struct Outcome {
    Slot deadline = 0;
    bool counted = false;
    bool critical = false;
    bool on_time = false;
    Slot release = 0;
  };
  std::vector<Outcome> outcomes(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& j = trace[i];
    const bool pchannel_job = hyp && hyp->pchannel_task(j.task);
    outcomes[i].deadline = j.absolute_deadline;
    outcomes[i].counted =
        !pchannel_job && j.absolute_deadline <= config.horizon_slots;
    outcomes[i].critical = is_critical(j.task);
    outcomes[i].release = j.release;
  }
  auto record_final = [&](const workload::Job& j, Slot finish) {
    if (j.id.value >= outcomes.size()) return;  // P-channel synthetic id
    Outcome& o = outcomes[j.id.value];
    if (!o.counted) return;
    if (finish <= o.deadline) o.on_time = true;
    if (o.critical)
      result.response_slots.add(static_cast<double>(finish - o.release));
  };

  // In-flight jobs keyed by packet tag (== trace job id).
  std::map<std::uint64_t, workload::Job> in_flight;

  // Request packets deliver into the device FIFO / pending response packets
  // deliver back to the VM nodes.
  for (std::size_t d = 0; d < workload::kCaseStudyDeviceCount; ++d) {
    mesh.set_delivery_handler(
        device_node(DeviceId{static_cast<std::uint32_t>(d)}),
        [&, d](const noc::Packet& p, Cycle now) {
          if (p.kind != noc::PacketKind::kIoRequest) return;
          result.request_latency_cycles.add(static_cast<double>(p.latency()));
          const auto it = in_flight.find(p.tag);
          IOGUARD_CHECK(it != in_flight.end());
          const Slot slot = now / cps;
          if (!fifos[d].enqueue(it->second, slot)) ++result.dropped;
        });
  }
  for (std::size_t v = 0; v < num_vms; ++v) {
    mesh.set_delivery_handler(
        vm_node(VmId{static_cast<std::uint32_t>(v)}),
        [&](const noc::Packet& p, Cycle now) {
          if (p.kind != noc::PacketKind::kIoResponse) return;
          const auto it = in_flight.find(p.tag);
          IOGUARD_CHECK(it != in_flight.end());
          record_final(it->second, now / cps + 1);
          in_flight.erase(it);
        });
  }

  // ---- Main cycle loop. ----------------------------------------------------
  Rng bg_rng(config.seed ^ 0x5151);
  std::vector<workload::Job> issued, vmm_done;
  std::vector<iodev::Completion> completions;
  std::size_t next_release = 0;
  const Cycle horizon_cycles = static_cast<Cycle>(config.horizon_slots) * cps;

  // IOGUARD_LINT_ALLOW(LNT009: cycle-accurate cosim is dense by definition)
  for (Cycle now = 0; now < horizon_cycles; ++now) {
    if (now % cps == 0) {
      const Slot slot = now / cps;

      // (a) releases into the per-VM issue stages.
      while (next_release < trace.size() &&
             trace[next_release].release <= slot) {
        const auto& j = trace[next_release++];
        const bool pchannel_job = hyp && hyp->pchannel_task(j.task);
        if (!pchannel_job) issue[j.vm.value].push(j);
      }

      // (b) issue; requests become packets (baselines) or direct submits.
      issued.clear();
      for (auto& stage : issue) stage.tick_slot(issued);
      if (vmm) {
        for (const auto& j : issued) vmm->push(j, slot);
        issued.clear();
        vmm->tick_slot(slot, issued);
      }
      for (const auto& j : issued) {
        if (hyp) {
          if (!hyp->submit(j, slot)) ++result.dropped;
        } else {
          in_flight[j.id.value] = j;
          noc::Packet p;
          p.src = vm_node(j.vm);
          p.dst = device_node(j.device);
          p.kind = noc::PacketKind::kIoRequest;
          p.priority = 1;
          p.payload_bytes = 32;  // command descriptor
          p.tag = j.id.value;
          mesh.send(p, now);
        }
      }

      // (c) back-ends advance one slot; completions return as packets
      //     (baselines) or complete directly (I/O-GUARD's pass-through
      //     response channel + dedicated link).
      completions.clear();
      if (hyp) {
        hyp->tick_slot(slot, completions);
        for (const auto& done : completions)
          record_final(done.job, done.completed_at);
      } else {
        for (std::size_t d = 0; d < fifos.size(); ++d) {
          if (auto done = fifos[d].tick_slot(slot)) {
            noc::Packet p;
            p.src = device_node(DeviceId{static_cast<std::uint32_t>(d)});
            p.dst = vm_node(done->job.vm);
            p.kind = noc::PacketKind::kIoResponse;
            p.priority = 1;
            p.payload_bytes = done->job.payload_bytes;
            p.tag = done->job.id.value;
            mesh.send(p, now);
          }
        }
      }
    }

    // (d) background traffic (memory/kernel packets sharing the mesh).
    if (config.background_rate > 0.0) {
      for (std::uint32_t n = 0; n < num_vms; ++n) {
        if (bg_rng.bernoulli(config.background_rate)) {
          noc::Packet p;
          p.src = NodeId{n};
          p.dst = NodeId{static_cast<std::uint32_t>(
              16 + bg_rng.index(4))};  // memory nodes on row 3
          p.kind = noc::PacketKind::kBackground;
          p.priority = 5;
          p.payload_bytes = 64;
          mesh.send(p, now);
        }
      }
    }

    mesh.tick(now);
  }

  // ---- Tally. ---------------------------------------------------------------
  for (const auto& o : outcomes) {
    if (!o.counted) continue;
    ++result.jobs_counted;
    if (o.on_time) {
      ++result.jobs_on_time;
    } else if (o.critical) {
      ++result.critical_misses;
    }
  }
  result.noc_packets_delivered = mesh.packets_delivered();
  return result;
}

}  // namespace ioguard::sys
