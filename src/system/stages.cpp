#include "system/stages.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ioguard::sys {

IssueStage::IssueStage(Cycle issue_cycles, Cycle cycles_per_slot)
    : issue_cycles_(issue_cycles), cycles_per_slot_(cycles_per_slot) {
  IOGUARD_CHECK(issue_cycles > 0);
  IOGUARD_CHECK(cycles_per_slot > 0);
}

void IssueStage::tick_slot(std::vector<workload::Job>& out) {
  Cycle budget = cycles_per_slot_;
  while (!queue_.empty()) {
    const Cycle needed = issue_cycles_ - accumulated_;
    if (needed > budget) {
      accumulated_ += budget;
      return;
    }
    budget -= needed;
    accumulated_ = 0;
    out.push_back(queue_.front());
    queue_.pop_front();
  }
}

VmmStage::VmmStage(const Calibration& cal, std::size_t num_vms,
                   std::uint64_t seed)
    : op_cycles_(cal.vmm_op_base_cycles +
                 cal.vmm_op_per_vm_cycles * static_cast<Cycle>(num_vms)),
      cycles_per_slot_(cal.cycles_per_slot),
      quantum_(cal.vmm_quantum_slots),
      num_vms_(num_vms),
      rng_(seed) {
  IOGUARD_CHECK(quantum_ > 0);
  IOGUARD_CHECK(num_vms_ > 0);
}

void VmmStage::push(const workload::Job& job, Slot now) {
  // The issuing VCPU's request becomes visible to the VMM's I/O scheduling
  // at that VM's next event-processing boundary. Boundaries are staggered
  // across VMs (per-VCPU event channels), so one boundary never re-aligns
  // every VM's pending ops into a single burst.
  const Slot offset =
      quantum_ * static_cast<Slot>(job.vm.value % num_vms_) /
      static_cast<Slot>(num_vms_);
  // Smallest boundary >= now with boundary = offset (mod quantum).
  const Slot rem = (now + quantum_ - offset) % quantum_;
  const Slot ready = rem == 0 ? now : now + quantum_ - rem;
  waiting_.push_back(Pending{job, ready});
}

void VmmStage::tick_slot(Slot now, std::vector<workload::Job>& out) {
  // Move quantum-released ops into the service queue (stable order).
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    if (it->ready_at <= now) {
      queue_.push_back(it->job);
      it = waiting_.erase(it);
    } else {
      ++it;
    }
  }
  // Serve with this slot's cycle budget.
  Cycle budget = cycles_per_slot_;
  while (!queue_.empty()) {
    const Cycle needed = op_cycles_ - accumulated_;
    if (needed > budget) {
      accumulated_ += budget;
      return;
    }
    budget -= needed;
    accumulated_ = 0;
    out.push_back(queue_.front());
    queue_.pop_front();
  }
}

TransitModel::TransitModel(const Calibration& cal, SystemKind kind,
                           std::size_t num_vms, double device_load,
                           std::uint64_t seed)
    : cycles_per_slot_(cal.cycles_per_slot), rng_(seed) {
  if (kind == SystemKind::kIoGuard) {
    // Dedicated point-to-point link plus bounded hardware translation.
    base_cycles_ = cal.ioguard_link_cycles + cal.translation_wcet_cycles;
    contention_mean_ = 0.0;
  } else {
    // Shared NoC: zero-load traversal + contention that grows with the
    // number of active VMs and with the offered load.
    const double rho = std::min(0.95, 0.2 + 0.6 * device_load);
    base_cycles_ = cal.noc_base_cycles +
                   cal.noc_per_vm_cycles * static_cast<Cycle>(num_vms);
    contention_mean_ =
        cal.noc_util_factor * rho / (1.0 - rho) *
        static_cast<double>(cal.noc_per_vm_cycles * num_vms);
    if (kind == SystemKind::kBlueVisor)
      base_cycles_ += cal.translation_wcet_cycles;
  }
  mean_cycles_ = static_cast<double>(base_cycles_) + contention_mean_;
}

Slot TransitModel::sample() {
  double cycles = static_cast<double>(base_cycles_);
  if (contention_mean_ > 0.0) cycles += rng_.exponential(contention_mean_);
  const double slots = cycles / static_cast<double>(cycles_per_slot_);
  // Stochastic rounding keeps the sub-slot mean unbiased.
  const auto whole = static_cast<Slot>(slots);
  const double frac = slots - static_cast<double>(whole);
  return whole + (rng_.uniform() < frac ? 1 : 0);
}

}  // namespace ioguard::sys
