// Run-time software memory-footprint model (Fig. 6).
//
// The paper evaluates software overhead via the memory footprint (BSS, data
// and text segments) of the hypervisor, the OS kernel and the I/O drivers on
// each system. Anchors from the paper's text: BS|RT-XEN adds 61 KB (129.8%)
// over the legacy system's kernel stack; hardware-assisted virtualization
// (BS|BV, I/O-GUARD) removes most of it; I/O-GUARD eliminates the VMM
// entirely and reduces each I/O driver to a request-forwarding stub.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "system/config.hpp"

namespace ioguard::sys {

/// Software components whose footprint Fig. 6 reports.
enum class SwComponent : std::uint8_t {
  kHypervisor,   ///< VMM / software part of the hypervisor
  kKernel,       ///< guest OS kernel (FreeRTOS v10.4 derived)
  kUartDriver,
  kSpiDriver,
  kI2cDriver,
  kEthernetDriver,
  kFlexRayDriver,
};

[[nodiscard]] const char* to_string(SwComponent c);
[[nodiscard]] const std::vector<SwComponent>& all_sw_components();

/// Segment breakdown in bytes.
struct Footprint {
  std::uint32_t text = 0;
  std::uint32_t data = 0;
  std::uint32_t bss = 0;
  [[nodiscard]] std::uint32_t total() const { return text + data + bss; }
  [[nodiscard]] double total_kb() const { return total() / 1024.0; }

  Footprint operator+(const Footprint& o) const {
    return Footprint{text + o.text, data + o.data, bss + o.bss};
  }
};

/// Footprint of one component on one system (zero when absent).
[[nodiscard]] Footprint sw_footprint(SystemKind system, SwComponent component);

/// Kernel-stack footprint (hypervisor + kernel), the Fig. 6 headline.
[[nodiscard]] Footprint kernel_stack_footprint(SystemKind system);

/// Sum over every component including drivers.
[[nodiscard]] Footprint total_sw_footprint(SystemKind system);

}  // namespace ioguard::sys
