#include "system/sw_footprint.hpp"

#include "common/check.hpp"

namespace ioguard::sys {

const char* to_string(SwComponent c) {
  switch (c) {
    case SwComponent::kHypervisor: return "hypervisor";
    case SwComponent::kKernel: return "os_kernel";
    case SwComponent::kUartDriver: return "uart_driver";
    case SwComponent::kSpiDriver: return "spi_driver";
    case SwComponent::kI2cDriver: return "i2c_driver";
    case SwComponent::kEthernetDriver: return "ethernet_driver";
    case SwComponent::kFlexRayDriver: return "flexray_driver";
  }
  return "?";
}

const std::vector<SwComponent>& all_sw_components() {
  static const std::vector<SwComponent> all = {
      SwComponent::kHypervisor,     SwComponent::kKernel,
      SwComponent::kUartDriver,     SwComponent::kSpiDriver,
      SwComponent::kI2cDriver,      SwComponent::kEthernetDriver,
      SwComponent::kFlexRayDriver,
  };
  return all;
}

namespace {

constexpr std::uint32_t KB = 1024;

/// Full low-level driver footprints on the legacy system (text/data/bss).
Footprint legacy_driver(SwComponent c) {
  switch (c) {
    case SwComponent::kUartDriver: return {3 * KB, 512, 512};
    case SwComponent::kSpiDriver: return {4 * KB, 512, 768};
    case SwComponent::kI2cDriver: return {4 * KB, 512, 640};
    case SwComponent::kEthernetDriver: return {13 * KB, 2 * KB, 3 * KB};
    case SwComponent::kFlexRayDriver: return {9 * KB, 1 * KB, 2 * KB};
    default: return {};
  }
}

/// Scales a footprint by num/den with per-segment rounding.
Footprint scale(const Footprint& f, std::uint32_t num, std::uint32_t den) {
  return Footprint{f.text * num / den, f.data * num / den, f.bss * num / den};
}

}  // namespace

Footprint sw_footprint(SystemKind system, SwComponent component) {
  // Kernel stacks. Legacy: fully-featured FreeRTOS + kernel I/O manager,
  // ~47 KB (so that RT-XEN's +61 KB is +129.8%, the paper's figure).
  const Footprint legacy_kernel{32 * KB, 6 * KB, 9 * KB};   // 47 KB
  const Footprint rtxen_kernel{36 * KB, 7 * KB, 9 * KB};    // 52 KB, modified
  const Footprint xen_vmm{40 * KB, 6 * KB, 10 * KB};        // 56 KB
  const Footprint bv_kernel{26 * KB, 5 * KB, 7 * KB};       // 38 KB
  const Footprint bv_stub{4 * KB, 1 * KB, 1 * KB};          // 6 KB shim
  const Footprint ioguard_kernel{21 * KB, 4 * KB, 5 * KB};  // 30 KB

  switch (component) {
    case SwComponent::kHypervisor:
      switch (system) {
        case SystemKind::kLegacy: return {};
        case SystemKind::kRtXen: return xen_vmm;
        case SystemKind::kBlueVisor: return bv_stub;
        case SystemKind::kIoGuard: return {};  // fully in hardware
      }
      break;
    case SwComponent::kKernel:
      switch (system) {
        case SystemKind::kLegacy: return legacy_kernel;
        case SystemKind::kRtXen: return rtxen_kernel;
        case SystemKind::kBlueVisor: return bv_kernel;
        case SystemKind::kIoGuard: return ioguard_kernel;
      }
      break;
    default: {
      const Footprint base = legacy_driver(component);
      switch (system) {
        case SystemKind::kLegacy:
          return base;
        case SystemKind::kRtXen:
          // Split front-end/back-end drivers plus ring-buffer glue.
          return scale(base, 8, 5);
        case SystemKind::kBlueVisor:
          // Low-level halves in hardware; guest keeps protocol framing.
          return scale(base, 1, 2);
        case SystemKind::kIoGuard:
          // Forwarding stub only ("the I/O drivers ... only forward the
          // I/O requests to the hypervisor").
          return scale(base, 1, 10);
      }
      break;
    }
  }
  IOGUARD_CHECK_MSG(false, "unknown system/component combination");
  __builtin_unreachable();
}

Footprint kernel_stack_footprint(SystemKind system) {
  return sw_footprint(system, SwComponent::kHypervisor) +
         sw_footprint(system, SwComponent::kKernel);
}

Footprint total_sw_footprint(SystemKind system) {
  Footprint sum;
  for (SwComponent c : all_sw_components()) sum = sum + sw_footprint(system, c);
  return sum;
}

}  // namespace ioguard::sys
