// Pipeline stages of the request path, modelled at slot granularity with
// cycle-accurate budgets inside each slot.
//
//  IssueStage    -- per-VM/core: software cost of issuing one I/O request.
//                   A core issues requests serially; the per-slot cycle
//                   budget limits how many requests leave a VM per slot.
//  VmmStage      -- RT-XEN only: the VMM is a single shared software server;
//                   every I/O operation pays backend/scheduling cycles, and
//                   ops are admitted at scheduling-quantum granularity.
//  TransitModel  -- transport latency samplers: contended NoC for the
//                   baselines, dedicated point-to-point link for I/O-GUARD.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "system/config.hpp"
#include "workload/task.hpp"

namespace ioguard::sys {

/// Serial per-core software issue stage. Each slot grants the core
/// `cycles_per_slot` cycles; issuing one request costs `issue_cycles`.
/// Left-over cycles carry into the next slot (a request can straddle slots).
class IssueStage {
 public:
  IssueStage(Cycle issue_cycles, Cycle cycles_per_slot);

  void push(const workload::Job& job) { queue_.push_back(job); }

  /// Advances one slot; emits the requests that finished issuing.
  void tick_slot(std::vector<workload::Job>& out);

  [[nodiscard]] std::size_t backlog() const { return queue_.size(); }
  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  Cycle issue_cycles_;
  Cycle cycles_per_slot_;
  Cycle accumulated_ = 0;  ///< cycles already spent on the head request
  std::deque<workload::Job> queue_;
};

/// RT-XEN's VMM: a single shared software server. Ops wait for their VM's
/// next scheduling-quantum boundary (per-VCPU event processing is staggered
/// across VMs, as in Xen), then queue for the server, whose per-op service
/// time grows with the number of active VMs.
class VmmStage {
 public:
  VmmStage(const Calibration& cal, std::size_t num_vms, std::uint64_t seed);

  void push(const workload::Job& job, Slot now);

  /// Advances one slot; emits ops whose VMM processing completed.
  void tick_slot(Slot now, std::vector<workload::Job>& out);

  [[nodiscard]] std::size_t backlog() const {
    return waiting_.size() + queue_.size();
  }
  [[nodiscard]] bool idle() const { return waiting_.empty() && queue_.empty(); }

  /// Per-op service cycles of this configuration (for calibration output).
  [[nodiscard]] Cycle op_cycles() const { return op_cycles_; }

 private:
  struct Pending {
    workload::Job job;
    Slot ready_at;  ///< quantum boundary after which the op enters service
  };

  Cycle op_cycles_;
  Cycle cycles_per_slot_;
  Slot quantum_;
  std::size_t num_vms_;
  Rng rng_;
  std::vector<Pending> waiting_;   // pre-quantum
  std::deque<workload::Job> queue_;  // in service order
  Cycle accumulated_ = 0;
};

/// Transport latency sampler, in slots (sub-slot latencies round
/// stochastically so their mean is preserved).
class TransitModel {
 public:
  TransitModel(const Calibration& cal, SystemKind kind, std::size_t num_vms,
               double device_load, std::uint64_t seed);

  /// Latency of one request/response transfer, in slots.
  [[nodiscard]] Slot sample();

  /// Mean latency in cycles (closed form, for tests/calibration).
  [[nodiscard]] double mean_cycles() const { return mean_cycles_; }

 private:
  double mean_cycles_;
  Cycle base_cycles_;
  double contention_mean_;  ///< exponential tail mean, cycles
  Cycle cycles_per_slot_;
  Rng rng_;
};

}  // namespace ioguard::sys
