// System-under-test identities and the calibration constants of the
// mechanistic software/transport models.
//
// The four architectures of the evaluation (Sec. V):
//  * BS|Legacy  -- NoC system without virtualization; kernel I/O manager on
//    each core; FIFO I/O controllers; router-level arbitration only.
//  * BS|RT-XEN  -- software hypervisor (Xen + RT patches + I/O enhancement):
//    guest driver -> trap into VMM -> VMM I/O scheduling (quantum granular,
//    shared software server) -> backend driver -> NoC -> FIFO controller.
//  * BS|BV      -- BlueVisor hardware hypervisor: thin guest driver -> NoC ->
//    hardware translation (bounded) -> FIFO controller. Parallel hardware,
//    no software bottleneck, but no preemptive I/O scheduling.
//  * I/O-GUARD  -- this paper: thin para-virtual driver -> dedicated link ->
//    two-layer preemptive EDF in hardware (P-channel + R-channel).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace ioguard::sys {

enum class SystemKind : std::uint8_t {
  kLegacy,
  kRtXen,
  kBlueVisor,
  kIoGuard,
};

[[nodiscard]] const char* to_string(SystemKind k);

/// All tunable constants of the mechanistic models, with their provenance.
/// Values are cycles at the 100 MHz platform clock unless noted.
struct Calibration {
  // --- per-request software issue cost on the requesting core -----------
  // Legacy: full I/O manager in the kernel (Fig. 3a path).
  Cycle legacy_issue_cycles = 1000;       // 10 us: driver + kernel manager
  // RT-Xen guest side: para-driver + trap into VMM ("trap into VMM" [9]).
  Cycle rtxen_issue_cycles = 1500;        // 15 us
  // BlueVisor: thin driver, virtualization done in hardware.
  Cycle bv_issue_cycles = 250;            // 2.5 us
  // I/O-GUARD: "the I/O drivers ... only forward the I/O requests".
  Cycle ioguard_issue_cycles = 150;       // 1.5 us

  // --- RT-XEN VMM stage (shared software server) -------------------------
  Cycle vmm_op_base_cycles = 500;         // 5 us backend/scheduling per op
  Cycle vmm_op_per_vm_cycles = 150;       // VCPU-switch share, per active VM
  Slot vmm_quantum_slots = 3;             // 30 us scheduling granularity
                                          // (RT-patched Xen, small quantum)

  // --- NoC transport (baselines; I/O-GUARD uses a dedicated link) --------
  Cycle noc_base_cycles = 30;             // ~zero-load request traversal
  Cycle noc_per_vm_cycles = 8;            // contention per active VM
  double noc_util_factor = 2.0;           // contention blow-up vs device load
  Cycle ioguard_link_cycles = 4;          // point-to-point processor link

  // --- hardware translation (BV and I/O-GUARD virtualization driver) -----
  Cycle translation_wcet_cycles = 40;     // bounded (BlueVisor translators)

  // --- queue capacities ---------------------------------------------------
  std::size_t device_fifo_capacity = 32;  // shallow hw FIFO (paper premise)
  std::size_t pool_capacity = 8;          // I/O-pool entry registers per VM
  // Per-job controller setup / translation occupancy on the device, slots.
  // Paid identically by every architecture (same physical controller).
  Slot dispatch_overhead_slots = 1;

  // --- slot mapping -------------------------------------------------------
  Cycle cycles_per_slot = kDefaultCyclesPerSlot;  // 1 us slots
};

/// Issue cost for one request on the given system.
[[nodiscard]] Cycle issue_cycles(const Calibration& cal, SystemKind kind);

}  // namespace ioguard::sys
