// Single-trial full-system simulator (Sec. V-C methodology).
//
// One trial = one workload instance executed for `horizon` slots on one of
// the four system architectures. The trial succeeds when no safety or
// function task misses a deadline ("success ratio recorded the percentage of
// trials that executed successfully"). I/O throughput counts the payload of
// jobs completed by their deadlines (goodput).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/jitter.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "core/event_trace.hpp"
#include "core/hypervisor.hpp"
#include "faults/fault_plan.hpp"
#include "system/config.hpp"
#include "telemetry/metrics.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

namespace ioguard::sys {

struct TrialConfig {
  SystemKind kind = SystemKind::kIoGuard;
  workload::CaseStudyConfig workload;  ///< preload_fraction: 0 for baselines
  Slot horizon = 0;                    ///< 0 = derive from min_jobs_per_task
  std::size_t min_jobs_per_task = 50;  ///< paper: >= 250 per 100 s run
  std::uint64_t trial_seed = 1;
  Calibration cal;
  core::GschedPolicy gsched_policy = core::GschedPolicy::kServerEdf;
  bool collect_response_times = false;
  bool collect_stage_latencies = false;  ///< fill TrialResult::stage_*

  // --- fault injection (empty plan = bit-identical fault-free baseline) ---
  faults::FaultPlan faults;
  faults::ResilienceConfig resilience;

  // --- mixed-criticality mode switching (DESIGN.md §17) -------------------
  /// Disabled by default: trials stay byte-identical to pre-MCS builds.
  /// When enabled (I/O-GUARD back-end only), translator WCET overruns
  /// switch the affected VM LO->HI, shed its LO R-channel backlog and
  /// inflate its server budget; recovery is hysteretic.
  core::ModeSwitchConfig mode_switch;

  /// The single validated construction path for trial configs: every range
  /// check the benches / run_point / CLI preflight used to duplicate lives
  /// here. Returns the config unchanged when valid.
  [[nodiscard]] static StatusOr<TrialConfig> validated(TrialConfig raw);

  // --- telemetry hooks (both off by default: zero overhead) ---------------
  /// Attached to the hypervisor as its on-chip trace buffer (I/O-GUARD
  /// back-end only; not owned).
  core::EventTrace* trace = nullptr;
  /// Filled with run counters/gauges/histograms at the end of the trial
  /// (not owned; pass the same registry across trials to aggregate).
  telemetry::MetricsRegistry* metrics = nullptr;

  // --- timing-accuracy observability (DESIGN.md §14) ----------------------
  /// Record per-operation jitter (intended vs actual delivery slot) at the
  /// P-/R-channel, FIFO and translator completion points into
  /// TrialResult::jitter (and `ioguard_timing_jitter_cycles` when a metrics
  /// registry is attached).
  bool collect_jitter = false;
  /// Fill TrialResult::profile with per-component busy/stall/quiescent slot
  /// attribution (cycle-attribution profiler).
  bool collect_profile = false;
  /// Flight recorder: when non-empty, deadline misses and fault recoveries
  /// dump the last flight_last_n trace events + scheduler state into
  /// bounded per-trial files under this directory (I/O-GUARD only; the
  /// directory must exist). A trial without an attached trace gets a
  /// private ring just for the recorder.
  std::string flight_dir;
  std::string flight_stem = "trial0";  ///< per-trial filename stem
  std::size_t flight_last_n = 64;
  std::size_t flight_max_dumps = 4;

  // --- execution mode (DESIGN.md §15) -------------------------------------
  /// Force the retained slot-stepped reference loop instead of the
  /// event-driven next-slot advance. Both modes are bit-identical by
  /// contract (results, telemetry, checkpoints, flight dumps); the stepped
  /// loop exists as the trusted oracle CI diffs the calendar path against,
  /// and as an escape hatch (`ioguard_cli --stepped` / IOGUARD_STEPPED=1).
  bool stepped = false;
};

/// Fault/resilience outcome of one trial; every field is 0 when the plan is
/// empty, so zero-fault TrialResults compare equal to pre-fault baselines.
struct FaultCounters {
  std::uint64_t injected_total = 0;      ///< faults fired, all kinds
  std::uint64_t watchdog_aborts = 0;     ///< hypervisor watchdog recoveries
  std::uint64_t retries = 0;             ///< retry submissions scheduled
  std::uint64_t retries_exhausted = 0;   ///< jobs given up (attempts/deadline)
  std::uint32_t max_retry_attempt = 0;   ///< never exceeds max_retries
  std::uint64_t jobs_shed = 0;           ///< degradation queue sheds
  std::uint64_t degraded_vms = 0;        ///< VMs in degraded mode at end
  std::uint64_t frame_faults = 0;        ///< dropped/corrupt response frames
  std::uint64_t stalled_slots = 0;       ///< device-stall slots served
  std::uint64_t spurious_irq_slots = 0;  ///< free slots burned on phantom IRQs
  std::uint64_t transit_drops = 0;       ///< requests eaten on the interconnect
  std::uint64_t fifo_frames_lost = 0;    ///< baseline FIFOs: unrecovered loss
  std::uint64_t fifo_stalled_slots = 0;  ///< baseline FIFOs: stall slots
};

/// Mixed-criticality outcome of one trial (TrialConfig::mode_switch). All
/// fields stay 0 when the feature is disabled, so pre-MCS TrialResults
/// compare equal; `hi_misses` is maintained whenever the workload carries
/// HI tasks (it is the 0-admitted-HI-misses acceptance gate).
struct ModeSwitchCounters {
  std::uint64_t switches_to_hi = 0;   ///< LO->HI transitions applied
  std::uint64_t recoveries = 0;       ///< HI->LO hysteresis recoveries
  std::uint64_t propagated = 0;       ///< switches via block escalation
  std::uint64_t overruns_observed = 0;///< translator WCET overrun evidence
  std::uint64_t lo_jobs_shed = 0;     ///< LO backlog shed by switches
  std::uint64_t lo_rejected = 0;      ///< LO submissions refused in HI mode
  std::uint64_t hi_vms_at_end = 0;    ///< VMs still in HI mode at horizon
  std::uint64_t hi_misses = 0;        ///< deadline misses of HI tasks
  SampleSet switch_latency_slots;     ///< first evidence -> switch applied
};

/// Per-trial jitter harvest (TrialConfig::collect_jitter). Channel samples
/// are in slots; translator samples are sub-slot, in cycles. Vectors are
/// indexed by VM / device; SampleSets keep insertion order so checkpointed
/// and merged results stay bit-identical.
struct JitterSummary {
  bool collected = false;
  std::vector<SampleSet> p_by_vm;
  std::vector<SampleSet> r_by_vm;
  std::vector<SampleSet> fifo_by_vm;
  std::vector<SampleSet> translator_by_device;  ///< cycles
  std::vector<JitterRecorder::TaskJitter> by_task;
};

/// One component's slot attribution (TrialConfig::collect_profile); the
/// three counters sum to the trial horizon for every component.
struct ComponentProfile {
  std::string name;
  std::uint64_t busy_slots = 0;
  std::uint64_t stall_slots = 0;
  std::uint64_t quiescent_slots = 0;
  [[nodiscard]] std::uint64_t total_slots() const {
    return busy_slots + stall_slots + quiescent_slots;
  }
};

struct TrialResult {
  Slot horizon = 0;
  std::uint64_t jobs_counted = 0;       ///< jobs with deadline inside horizon
  std::uint64_t jobs_on_time = 0;
  std::uint64_t misses = 0;             ///< all classes
  std::uint64_t critical_misses = 0;    ///< safety + function tasks only
  std::uint64_t dropped = 0;            ///< queue-overflow rejections
  double goodput_bytes_per_s = 0.0;
  double device_busy_frac = 0.0;
  bool admitted = true;                 ///< I/O-GUARD: Theorems 2/4 held
  SampleSet response_slots;             ///< critical tasks, when collected
  /// (TaskId value, miss count) of every task with misses, ascending by
  /// task. Compacted from a dense per-task array at end of trial, so miss
  /// accounting on the hot path is an indexed increment, not a map insert.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> misses_by_task;

  // Per-stage latency decomposition (slots) of *critical* (safety/function)
  // jobs, filled when collect_stage_latencies is set. "backend" covers
  // device queueing + service (+ scheduler wait on I/O-GUARD). Synthetic
  // background jobs are excluded: EDF deliberately defers them, which would
  // swamp the means without saying anything about timeliness.
  OnlineStats stage_issue;    ///< release -> left the core's issue stage
  OnlineStats stage_vmm;      ///< issue -> left the VMM (RT-XEN only)
  OnlineStats stage_transit;  ///< VMM/issue -> arrived at the back-end
  OnlineStats stage_backend;  ///< arrival -> completion at the device

  FaultCounters faults;  ///< all-zero unless the trial ran a fault plan
  ModeSwitchCounters mcs;  ///< all-zero unless mode switching was enabled

  // --- timing-accuracy observability (empty unless collected) -------------
  JitterSummary jitter;
  std::vector<ComponentProfile> profile;
  std::uint64_t flight_dumps = 0;  ///< flight-recorder files written

  /// Paper's per-trial success criterion.
  [[nodiscard]] bool success() const { return critical_misses == 0; }
};

/// Runs one trial. Deterministic in (config).
TrialResult run_trial(const TrialConfig& config);

/// Machine-readable run summary (one JSON object): configuration echo,
/// outcome counters, and -- when collected -- response-time percentiles and
/// the per-stage latency decomposition. Percentiles are extracted without
/// mutating `result` (nth_element on a scratch copy), so one result can be
/// summarized and still aggregated afterwards.
void write_trial_summary_json(std::ostream& os, const TrialConfig& config,
                              const TrialResult& result);

}  // namespace ioguard::sys
