// Single-trial full-system simulator (Sec. V-C methodology).
//
// One trial = one workload instance executed for `horizon` slots on one of
// the four system architectures. The trial succeeds when no safety or
// function task misses a deadline ("success ratio recorded the percentage of
// trials that executed successfully"). I/O throughput counts the payload of
// jobs completed by their deadlines (goodput).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/status.hpp"
#include "core/event_trace.hpp"
#include "core/hypervisor.hpp"
#include "faults/fault_plan.hpp"
#include "system/config.hpp"
#include "telemetry/metrics.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

namespace ioguard::sys {

struct TrialConfig {
  SystemKind kind = SystemKind::kIoGuard;
  workload::CaseStudyConfig workload;  ///< preload_fraction: 0 for baselines
  Slot horizon = 0;                    ///< 0 = derive from min_jobs_per_task
  std::size_t min_jobs_per_task = 50;  ///< paper: >= 250 per 100 s run
  std::uint64_t trial_seed = 1;
  Calibration cal;
  core::GschedPolicy gsched_policy = core::GschedPolicy::kServerEdf;
  bool collect_response_times = false;
  bool collect_stage_latencies = false;  ///< fill TrialResult::stage_*

  // --- fault injection (empty plan = bit-identical fault-free baseline) ---
  faults::FaultPlan faults;
  faults::ResilienceConfig resilience;

  /// The single validated construction path for trial configs: every range
  /// check the benches / run_point / CLI preflight used to duplicate lives
  /// here. Returns the config unchanged when valid.
  [[nodiscard]] static StatusOr<TrialConfig> validated(TrialConfig raw);

  // --- telemetry hooks (both off by default: zero overhead) ---------------
  /// Attached to the hypervisor as its on-chip trace buffer (I/O-GUARD
  /// back-end only; not owned).
  core::EventTrace* trace = nullptr;
  /// Filled with run counters/gauges/histograms at the end of the trial
  /// (not owned; pass the same registry across trials to aggregate).
  telemetry::MetricsRegistry* metrics = nullptr;
};

/// Fault/resilience outcome of one trial; every field is 0 when the plan is
/// empty, so zero-fault TrialResults compare equal to pre-fault baselines.
struct FaultCounters {
  std::uint64_t injected_total = 0;      ///< faults fired, all kinds
  std::uint64_t watchdog_aborts = 0;     ///< hypervisor watchdog recoveries
  std::uint64_t retries = 0;             ///< retry submissions scheduled
  std::uint64_t retries_exhausted = 0;   ///< jobs given up (attempts/deadline)
  std::uint32_t max_retry_attempt = 0;   ///< never exceeds max_retries
  std::uint64_t jobs_shed = 0;           ///< degradation queue sheds
  std::uint64_t degraded_vms = 0;        ///< VMs in degraded mode at end
  std::uint64_t frame_faults = 0;        ///< dropped/corrupt response frames
  std::uint64_t stalled_slots = 0;       ///< device-stall slots served
  std::uint64_t spurious_irq_slots = 0;  ///< free slots burned on phantom IRQs
  std::uint64_t transit_drops = 0;       ///< requests eaten on the interconnect
  std::uint64_t fifo_frames_lost = 0;    ///< baseline FIFOs: unrecovered loss
  std::uint64_t fifo_stalled_slots = 0;  ///< baseline FIFOs: stall slots
};

struct TrialResult {
  Slot horizon = 0;
  std::uint64_t jobs_counted = 0;       ///< jobs with deadline inside horizon
  std::uint64_t jobs_on_time = 0;
  std::uint64_t misses = 0;             ///< all classes
  std::uint64_t critical_misses = 0;    ///< safety + function tasks only
  std::uint64_t dropped = 0;            ///< queue-overflow rejections
  double goodput_bytes_per_s = 0.0;
  double device_busy_frac = 0.0;
  bool admitted = true;                 ///< I/O-GUARD: Theorems 2/4 held
  SampleSet response_slots;             ///< critical tasks, when collected
  /// (TaskId value, miss count) of every task with misses, ascending by
  /// task. Compacted from a dense per-task array at end of trial, so miss
  /// accounting on the hot path is an indexed increment, not a map insert.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> misses_by_task;

  // Per-stage latency decomposition (slots) of *critical* (safety/function)
  // jobs, filled when collect_stage_latencies is set. "backend" covers
  // device queueing + service (+ scheduler wait on I/O-GUARD). Synthetic
  // background jobs are excluded: EDF deliberately defers them, which would
  // swamp the means without saying anything about timeliness.
  OnlineStats stage_issue;    ///< release -> left the core's issue stage
  OnlineStats stage_vmm;      ///< issue -> left the VMM (RT-XEN only)
  OnlineStats stage_transit;  ///< VMM/issue -> arrived at the back-end
  OnlineStats stage_backend;  ///< arrival -> completion at the device

  FaultCounters faults;  ///< all-zero unless the trial ran a fault plan

  /// Paper's per-trial success criterion.
  [[nodiscard]] bool success() const { return critical_misses == 0; }
};

/// Runs one trial. Deterministic in (config).
TrialResult run_trial(const TrialConfig& config);

/// Machine-readable run summary (one JSON object): configuration echo,
/// outcome counters, and -- when collected -- response-time percentiles and
/// the per-stage latency decomposition. Percentiles are extracted without
/// mutating `result` (nth_element on a scratch copy), so one result can be
/// summarized and still aggregated afterwards.
void write_trial_summary_json(std::ostream& os, const TrialConfig& config,
                              const TrialResult& result);

}  // namespace ioguard::sys
