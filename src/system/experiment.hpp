// Multi-trial experiment driver for the case study (Fig. 7) and ablations.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "system/parallel.hpp"
#include "system/runner.hpp"

namespace ioguard::sys {

/// One evaluated configuration (system + P-channel preload fraction).
struct EvaluatedSystem {
  SystemKind kind;
  double preload_fraction = 0.0;
  std::string label;
};

/// The five systems of Fig. 7.
[[nodiscard]] std::vector<EvaluatedSystem> figure7_systems();

/// Aggregated result of `trials` runs at one (system, vms, utilization).
struct PointResult {
  EvaluatedSystem system;
  std::size_t num_vms = 0;
  double target_utilization = 0.0;
  std::size_t trials = 0;
  std::size_t successes = 0;
  OnlineStats goodput_mbps;       ///< goodput in Mbit/s across trials
  OnlineStats critical_miss_rate; ///< critical misses / counted jobs
  OnlineStats busy_frac;

  // Supervision bookkeeping (all zero / false on an unsupervised run).
  std::size_t restored = 0;   ///< trials replayed from the checkpoint journal
  std::size_t retried = 0;    ///< trials that needed a re-execution
  std::size_t abandoned = 0;  ///< trials excluded from the aggregates
  std::size_t skipped = 0;    ///< trials not started (graceful stop)
  bool interrupted = false;   ///< a stop request cut this point short

  [[nodiscard]] double success_ratio() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
};

struct ExperimentConfig {
  std::size_t trials = 20;            ///< paper: 1000 (see DESIGN.md scaling)
  std::size_t min_jobs_per_task = 50; ///< paper: >= 250
  std::uint64_t base_seed = 42;
  /// Trial fan-out width: 0 = default_jobs() (IOGUARD_JOBS env or hardware
  /// concurrency), 1 = sequential. Aggregates are bit-identical either way.
  std::size_t jobs = 1;
  Calibration cal;
  /// Fault plan applied to every trial (empty = fault-free baseline; trial
  /// seeds still differ per trial, so fault schedules differ per trial too).
  faults::FaultPlan faults;
  faults::ResilienceConfig resilience;

  /// Run every trial on the slot-stepped reference loop instead of the
  /// event-driven advance (TrialConfig::stepped). Results are bit-identical
  /// either way; this is the CI equivalence oracle / escape hatch.
  bool stepped = false;

  // --- supervision / crash safety (all optional; see DESIGN.md §12) ------
  /// Soft per-trial deadline in seconds (0 = off); overruns are flagged as
  /// wedged in the point result, never killed.
  double trial_timeout_seconds = 0.0;
  /// Total executions allowed for a throwing trial (>= 1; retries replay
  /// the same mix_seed, so a successful retry is bit-identical).
  std::size_t trial_attempts = 2;
  /// Crash-safe journal: finished trials land here per trial, and journaled
  /// trials are restored instead of re-run (not owned; may be null).
  CheckpointJournal* checkpoint = nullptr;
  /// Graceful-stop flag polled between trials (not owned; may be null).
  const std::atomic<bool>* stop = nullptr;

  /// Single validated construction path (mirrors TrialConfig::validated).
  [[nodiscard]] static StatusOr<ExperimentConfig> validated(
      ExperimentConfig raw);
};

/// Stable identifier of one (num_vms, utilization) sweep point, used as the
/// `stream` component of per-trial seed derivation (mix_seed). The system
/// under test is deliberately excluded: all systems evaluated at one sweep
/// point must see identical workloads and release traces.
[[nodiscard]] std::uint64_t sweep_point_key(std::size_t num_vms,
                                            double target_utilization);

/// Seed of trial `t` at one sweep point: mix_seed over
/// (base_seed, sweep_point_key, t). Exposed so single-trial drivers (CLI
/// --verify preflight, export paths) can reproduce exactly what a batch ran.
[[nodiscard]] std::uint64_t trial_seed_for(const ExperimentConfig& cfg,
                                           std::size_t num_vms,
                                           double target_utilization,
                                           std::size_t t);

/// Runs `trials` trials of one point, fanned out over cfg.jobs threads.
/// Trial seeds depend only on (base_seed, sweep point, trial index), so all
/// systems see identical workloads/traces; aggregation happens in trial-
/// index order, so the result is independent of cfg.jobs. When `timing` is
/// non-null, the batch's wall-clock accounting is accumulated into it.
PointResult run_point(const EvaluatedSystem& system, std::size_t num_vms,
                      double target_utilization, const ExperimentConfig& cfg,
                      BatchTiming* timing = nullptr);

/// Utilization sweep of the paper: 40%..100% step 5%.
[[nodiscard]] std::vector<double> utilization_sweep();

}  // namespace ioguard::sys
