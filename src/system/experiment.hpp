// Multi-trial experiment driver for the case study (Fig. 7) and ablations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "system/runner.hpp"

namespace ioguard::sys {

/// One evaluated configuration (system + P-channel preload fraction).
struct EvaluatedSystem {
  SystemKind kind;
  double preload_fraction = 0.0;
  std::string label;
};

/// The five systems of Fig. 7.
[[nodiscard]] std::vector<EvaluatedSystem> figure7_systems();

/// Aggregated result of `trials` runs at one (system, vms, utilization).
struct PointResult {
  EvaluatedSystem system;
  std::size_t num_vms = 0;
  double target_utilization = 0.0;
  std::size_t trials = 0;
  std::size_t successes = 0;
  OnlineStats goodput_mbps;       ///< goodput in Mbit/s across trials
  OnlineStats critical_miss_rate; ///< critical misses / counted jobs
  OnlineStats busy_frac;

  [[nodiscard]] double success_ratio() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
};

struct ExperimentConfig {
  std::size_t trials = 20;            ///< paper: 1000 (see DESIGN.md scaling)
  std::size_t min_jobs_per_task = 50; ///< paper: >= 250
  std::uint64_t base_seed = 42;
  Calibration cal;
};

/// Runs `trials` trials of one point. Trial seeds depend only on
/// (base_seed, trial index), so all systems see identical workloads/traces.
PointResult run_point(const EvaluatedSystem& system, std::size_t num_vms,
                      double target_utilization, const ExperimentConfig& cfg);

/// Utilization sweep of the paper: 40%..100% step 5%.
[[nodiscard]] std::vector<double> utilization_sweep();

}  // namespace ioguard::sys
