#include "system/experiment.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "system/checkpoint.hpp"

namespace ioguard::sys {

std::vector<EvaluatedSystem> figure7_systems() {
  return {
      {SystemKind::kLegacy, 0.0, "BS|Legacy"},
      {SystemKind::kRtXen, 0.0, "BS|RT-XEN"},
      {SystemKind::kBlueVisor, 0.0, "BS|BV"},
      {SystemKind::kIoGuard, 0.4, "I/O-GUARD-40"},
      {SystemKind::kIoGuard, 0.7, "I/O-GUARD-70"},
  };
}

std::uint64_t sweep_point_key(std::size_t num_vms, double target_utilization) {
  // Utilization is quantized to 1e-4 so the key survives parsing round
  // trips (0.85 from a flag == 0.85 from the sweep generator).
  const auto util_ticks =
      static_cast<std::uint64_t>(std::llround(target_utilization * 10000.0));
  return (static_cast<std::uint64_t>(num_vms) << 32) | util_ticks;
}

std::uint64_t trial_seed_for(const ExperimentConfig& cfg, std::size_t num_vms,
                             double target_utilization, std::size_t t) {
  return mix_seed(cfg.base_seed, sweep_point_key(num_vms, target_utilization),
                  t);
}

StatusOr<ExperimentConfig> ExperimentConfig::validated(ExperimentConfig raw) {
  if (raw.trials < 1) return InvalidArgumentError("trials must be >= 1");
  if (raw.min_jobs_per_task < 1)
    return InvalidArgumentError("min_jobs_per_task must be >= 1");
  if (raw.trial_timeout_seconds < 0.0)
    return OutOfRangeError("trial_timeout_seconds must be >= 0");
  if (raw.trial_attempts < 1)
    return InvalidArgumentError("trial_attempts must be >= 1");
  if (raw.trial_attempts > 8)
    return OutOfRangeError("trial_attempts must be <= 8");
  if (raw.resilience.watchdog_timeout_slots == 0)
    return InvalidArgumentError("watchdog_timeout_slots must be > 0");
  if (raw.resilience.retry_backoff_base_slots < 1)
    return InvalidArgumentError("retry_backoff_base_slots must be >= 1");
  if (raw.resilience.max_retries > 16)
    return OutOfRangeError("max_retries must be <= 16");
  return raw;
}

PointResult run_point(const EvaluatedSystem& system, std::size_t num_vms,
                      double target_utilization, const ExperimentConfig& cfg,
                      BatchTiming* timing) {
  PointResult point;
  point.system = system;
  point.num_vms = num_vms;
  point.target_utilization = target_utilization;
  point.trials = cfg.trials;

  ParallelRunner runner(cfg.jobs);
  BatchTiming batch;
  SupervisionPolicy policy;
  policy.trial_timeout_seconds = cfg.trial_timeout_seconds;
  policy.max_attempts = cfg.trial_attempts;
  policy.stop = cfg.stop;
  policy.journal = cfg.checkpoint;
  policy.point_key =
      checkpoint_point_key(system.kind, system.preload_fraction, num_vms,
                           target_utilization);
  const BatchResult supervised = runner.run_supervised(
      cfg.trials,
      [&](std::size_t t) {
        TrialConfig tc;
        tc.kind = system.kind;
        tc.workload.num_vms = num_vms;
        tc.workload.target_utilization = target_utilization;
        tc.workload.preload_fraction = system.preload_fraction;
        tc.min_jobs_per_task = cfg.min_jobs_per_task;
        tc.trial_seed = trial_seed_for(cfg, num_vms, target_utilization, t);
        tc.cal = cfg.cal;
        tc.faults = cfg.faults;
        tc.resilience = cfg.resilience;
        tc.stepped = cfg.stepped;
        return tc;
      },
      policy, /*metrics=*/nullptr, timing ? &batch : nullptr);

  // Deterministic merge: fold trial results in index order, exactly as the
  // sequential loop used to. Abandoned and skipped slots hold placeholders
  // (a default TrialResult would count as a success) and stay out.
  for (std::size_t t = 0; t < supervised.results.size(); ++t) {
    const TrialOutcome outcome = supervised.outcomes[t];
    if (outcome == TrialOutcome::kAbandoned ||
        outcome == TrialOutcome::kSkipped)
      continue;
    const TrialResult& r = supervised.results[t];
    if (r.success()) ++point.successes;
    point.goodput_mbps.add(r.goodput_bytes_per_s * 8.0 / 1e6);
    point.busy_frac.add(r.device_busy_frac);
    if (r.jobs_counted > 0)
      point.critical_miss_rate.add(static_cast<double>(r.critical_misses) /
                                   static_cast<double>(r.jobs_counted));
  }
  point.restored = supervised.restored;
  point.retried = supervised.retried;
  point.abandoned = supervised.abandoned;
  point.skipped = supervised.skipped;
  point.interrupted = supervised.interrupted;
  if (timing) timing->accumulate(batch);
  return point;
}

std::vector<double> utilization_sweep() {
  std::vector<double> sweep;
  for (int pct = 40; pct <= 100; pct += 5)
    sweep.push_back(static_cast<double>(pct) / 100.0);
  return sweep;
}

}  // namespace ioguard::sys
