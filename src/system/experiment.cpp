#include "system/experiment.hpp"

namespace ioguard::sys {

std::vector<EvaluatedSystem> figure7_systems() {
  return {
      {SystemKind::kLegacy, 0.0, "BS|Legacy"},
      {SystemKind::kRtXen, 0.0, "BS|RT-XEN"},
      {SystemKind::kBlueVisor, 0.0, "BS|BV"},
      {SystemKind::kIoGuard, 0.4, "I/O-GUARD-40"},
      {SystemKind::kIoGuard, 0.7, "I/O-GUARD-70"},
  };
}

PointResult run_point(const EvaluatedSystem& system, std::size_t num_vms,
                      double target_utilization, const ExperimentConfig& cfg) {
  PointResult point;
  point.system = system;
  point.num_vms = num_vms;
  point.target_utilization = target_utilization;
  point.trials = cfg.trials;

  for (std::size_t t = 0; t < cfg.trials; ++t) {
    TrialConfig tc;
    tc.kind = system.kind;
    tc.workload.num_vms = num_vms;
    tc.workload.target_utilization = target_utilization;
    tc.workload.preload_fraction = system.preload_fraction;
    tc.min_jobs_per_task = cfg.min_jobs_per_task;
    tc.trial_seed = cfg.base_seed * 7919ULL + t;
    tc.cal = cfg.cal;

    const TrialResult r = run_trial(tc);
    if (r.success()) ++point.successes;
    point.goodput_mbps.add(r.goodput_bytes_per_s * 8.0 / 1e6);
    point.busy_frac.add(r.device_busy_frac);
    if (r.jobs_counted > 0)
      point.critical_miss_rate.add(static_cast<double>(r.critical_misses) /
                                   static_cast<double>(r.jobs_counted));
  }
  return point;
}

std::vector<double> utilization_sweep() {
  std::vector<double> sweep;
  for (int pct = 40; pct <= 100; pct += 5)
    sweep.push_back(static_cast<double>(pct) / 100.0);
  return sweep;
}

}  // namespace ioguard::sys
