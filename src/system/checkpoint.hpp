// Crash-safe checkpointing of trial fan-outs (DESIGN.md §12).
//
// A checkpoint is two files:
//   <path>           append-only record journal: one framed, CRC-guarded
//                    binary record per finished trial (O_APPEND-style
//                    appends, flushed per record);
//   <path>.manifest  small text header (format version, config fingerprint,
//                    planned trial count, config echo), published via
//                    atomic temp-file+rename.
//
// Reload tolerates a truncated trailing frame -- the signature of a crash
// mid-append -- by dropping it, but rejects checksum corruption inside the
// retained prefix with a clear DataLoss status. Records serialize the full
// TrialResult (doubles as IEEE-754 bit patterns, SampleSet in insertion
// order, OnlineStats as raw Welford state) plus the trial's private metrics
// delta, so a resumed sweep merges restored trials bit-identically to an
// uninterrupted run at any --jobs value.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/sync.hpp"
#include "system/config.hpp"
#include "system/runner.hpp"
#include "telemetry/metrics.hpp"

namespace ioguard::sys {

/// Exit code of the --crash-after=N chaos hook: the process dies with
/// std::_Exit (no unwinding, no flush) to model a SIGKILL at an arbitrary
/// trial boundary, and CI asserts this exact code to tell a simulated crash
/// from a genuine failure.
inline constexpr int kCrashHookExitCode = 70;

/// Header of one checkpoint (the manifest contents).
struct CheckpointMeta {
  std::uint64_t fingerprint = 0;   ///< fnv1a64 over the canonical config
  std::uint64_t planned_trials = 0;
  std::string config_echo;         ///< one-line human-readable config
};

/// One journaled trial.
struct CheckpointRecord {
  std::uint64_t point_key = 0;
  std::uint32_t trial = 0;
  bool abandoned = false;     ///< trial kept throwing; result is a placeholder
  bool has_metrics = false;   ///< a metrics delta was captured
  TrialResult result;
  std::string metrics_blob;   ///< encode_metrics snapshot when has_metrics
  std::string note;           ///< abandonment reason, empty otherwise
};

/// Read-only summary of a checkpoint pair on disk, for the CKP verifier.
struct CheckpointFacts {
  bool journal_present = false;
  bool manifest_present = false;
  bool manifest_parsed = false;   ///< manifest existed and parsed cleanly
  CheckpointMeta meta;            ///< valid when manifest_parsed
  std::size_t records = 0;        ///< CRC-valid records in the journal
  std::size_t abandoned = 0;      ///< records flagged abandoned
  bool truncated_tail = false;    ///< journal ends in a partial frame
  bool corrupt = false;           ///< CRC failure inside the retained prefix
  std::vector<std::string> orphaned_temps;  ///< stale atomic-write staging files
};

/// The append-only per-trial journal plus its manifest.
class CheckpointJournal {
 public:
  /// Opens `path` for writing. `resume == false` starts fresh (truncates any
  /// existing pair); `resume == true` reloads every intact record and
  /// refuses a manifest whose fingerprint differs from `meta.fingerprint`
  /// (FailedPrecondition, diagnostic CKP002) or a journal with checksum
  /// corruption (DataLoss). A truncated trailing frame is dropped silently
  /// (it is the expected crash signature).
  [[nodiscard]] static StatusOr<std::unique_ptr<CheckpointJournal>> open(
      const std::string& path, const CheckpointMeta& meta, bool resume);

  /// The reloaded record for (point_key, trial), or nullptr.
  [[nodiscard]] const CheckpointRecord* find(std::uint64_t point_key,
                                             std::uint32_t trial) const;

  /// Appends one finished trial and flushes the frame. Thread-safe.
  [[nodiscard]] Status append(std::uint64_t point_key, std::uint32_t trial,
                              bool abandoned, const TrialResult& result,
                              const telemetry::MetricsRegistry* metrics,
                              const std::string& note = {});

  [[nodiscard]] std::size_t loaded() const { return records_.size(); }
  [[nodiscard]] bool truncated_tail() const { return truncated_tail_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Chaos hook: die with std::_Exit(kCrashHookExitCode) immediately after
  /// the n-th successful append of this process (0 = disabled). Exercised
  /// by the chaos-resume CI job to SIGKILL-interrupt a sweep at a
  /// deterministic trial boundary.
  void set_crash_after(std::size_t n) {
    const MutexLock lock(mutex_);
    crash_after_ = n;
  }

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;
  ~CheckpointJournal();

 private:
  CheckpointJournal() = default;

  std::string path_;
  // Written only inside open() (single-threaded setup), read-only afterwards
  // (find() during the restore pass); appends never touch the in-memory map.
  std::map<std::pair<std::uint64_t, std::uint32_t>, CheckpointRecord>
      records_;
  bool truncated_tail_ = false;
  Mutex mutex_;  ///< serializes appends
  std::size_t crash_after_ IOGUARD_GUARDED_BY(mutex_) = 0;
  std::size_t appended_ IOGUARD_GUARDED_BY(mutex_) = 0;
  struct Sink;  ///< append-mode file handle
  std::unique_ptr<Sink> sink_ IOGUARD_PT_GUARDED_BY(mutex_);
};

/// Read-only inspection of a checkpoint pair (never creates or truncates
/// anything); feeds the CKP001-CKP004 diagnostics.
[[nodiscard]] CheckpointFacts inspect_checkpoint(const std::string& path);

/// Journal key of one (system, preload, vms, utilization) batch. Unlike
/// sweep_point_key -- which deliberately excludes the system under test so
/// all systems see identical workloads -- the checkpoint key must tell the
/// five Fig. 7 systems at one sweep point apart, so it folds the system
/// kind and preload fraction in. `salt` disambiguates batches a driver runs
/// with otherwise identical parameters (e.g. ablation policy variants).
[[nodiscard]] std::uint64_t checkpoint_point_key(SystemKind kind,
                                                 double preload_fraction,
                                                 std::size_t num_vms,
                                                 double target_utilization,
                                                 std::uint64_t salt = 0);

/// Canonical single-point config string shared by ioguard_cli and
/// ioguard_verify; its fnv1a64 hash is the manifest fingerprint. Excludes
/// --jobs (resuming at a different fan-out width is supported and
/// bit-identical) and telemetry flags (metrics presence is tracked per
/// record instead). Mixed-criticality parameters contribute tokens only
/// when the respective feature is on, so pre-MCS fingerprints are stable.
[[nodiscard]] std::string point_config_string(
    SystemKind kind, std::size_t num_vms, double target_utilization,
    double preload_fraction, std::size_t trials, std::size_t min_jobs,
    std::uint64_t seed, const faults::FaultPlan& plan,
    const faults::ResilienceConfig& resilience,
    bool mixed_criticality = false,
    const core::ModeSwitchConfig& mode_switch = {});

}  // namespace ioguard::sys
