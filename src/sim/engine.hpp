// Event-driven simulation engine (DESIGN.md §15).
//
// All hardware models (NoC routers, hypervisor channels, device controllers)
// are Tickables clocked by a single Engine — matching the paper's assumption
// (iii): "the system elements are synchronized by a single source of timing
// (global timer)". A timed event queue supplements the tick loop for sparse
// events (job releases); components that can predict their next interesting
// cycle hand the engine a wake hint and are parked on an indexed calendar,
// so a fully quiescent system jumps straight to the next event instead of
// crawling cycle by cycle. Results are bit-identical to dense stepping:
// parked cycles are attributed as quiescent, and hinted components must be
// no-ops on the cycles they hint away (ticking them early is always safe).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/wake_calendar.hpp"

namespace ioguard::sim {

/// What a component spent its most recent cycle on, for the engine's
/// cycle-attribution profiler (DESIGN.md §14).
enum class Activity : std::uint8_t {
  kBusy,       ///< did useful work this cycle
  kStall,      ///< had work but could not progress (backpressure, faults)
  kQuiescent,  ///< nothing to do
};

/// Interface for components clocked by the engine.
class Tickable {
 public:
  virtual ~Tickable() = default;

  /// Advances the component by one clock cycle ending at time `now` and
  /// returns what the cycle was spent on. Returning the Activity directly
  /// keeps the profiled path at one virtual call per component per cycle;
  /// components that do not track idleness return kBusy (conservative: the
  /// profiler then attributes their cycles to work, never hiding cost).
  virtual Activity tick(Cycle now) = 0;

  /// Human-readable instance name (for traces and error messages).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Legacy accessor: classification of the cycle most recently ticked.
  /// Retained as a shim for callers that inspect a component between runs;
  /// the engine itself consumes tick()'s return value.
  [[nodiscard]] virtual Activity activity() const { return Activity::kBusy; }

  /// Optional wake hint, consulted after each tick only when
  /// provides_wake_hints() is true: the earliest future cycle at which this
  /// component next has work. Contract: every tick on a cycle in
  /// (now, next_event(now)) must be a quiescent no-op — the engine may
  /// still tick the component early (e.g. after Engine::wake), it only
  /// promises to tick it no later than the hinted cycle. Return `now + 1`
  /// (or any cycle <= now + 1) to stay in the dense per-cycle set.
  [[nodiscard]] virtual Cycle next_event(Cycle now) const { return now + 1; }

  /// Opt-in for next_event(): checked once at Engine::add so dense legacy
  /// components never pay the extra per-cycle virtual call.
  [[nodiscard]] virtual bool provides_wake_hints() const { return false; }
};

/// Per-component cycle attribution gathered by Engine profiling. The three
/// counters partition the profiled cycles exactly (parked cycles count as
/// quiescent, exactly as if the component had been ticked while idle).
struct ComponentProfile {
  std::string name;
  std::uint64_t busy_cycles = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t quiescent_cycles = 0;
  [[nodiscard]] std::uint64_t total_cycles() const {
    return busy_cycles + stall_cycles + quiescent_cycles;
  }
};

/// Single-clock engine: dense per-cycle ticking for components with no wake
/// hints, an indexed wake calendar for parked ones, and a timed event heap
/// for sparse scheduled work. When every component is parked, `now_` jumps
/// to the earliest of (next event, next calendar wake, end of run).
class Engine {
 public:
  /// Registers a component; ticked in registration order each cycle.
  /// The engine does not own the component; it must outlive the engine run.
  void add(Tickable* component);

  /// Schedules `fn` to run at absolute cycle `when` (before components tick).
  void at(Cycle when, std::function<void(Cycle)> fn);

  /// Schedules `fn` every `period` cycles starting at `start`. The handler
  /// lives in an engine-owned repeater table; each firing re-arms a small
  /// index-capturing thunk, so periodic events never copy the handler.
  void every(Cycle start, Cycle period, std::function<void(Cycle)> fn);

  /// Runs until (and including) cycle `end`.
  void run_until(Cycle end);

  /// Runs `n` further cycles.
  void run_for(Cycle n) { run_until(now_ + n); }

  /// Requests the run loop to stop after the current cycle (honored even
  /// when the cycle was reached by a calendar jump).
  void stop() { stop_requested_ = true; }

  /// Resume edge: immediately re-arms a parked component so it ticks again
  /// from the next processed cycle (external stimulus arrived before its
  /// hinted wake). No-op for active or unregistered components.
  void wake(Tickable* component);

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] std::size_t component_count() const { return components_.size(); }
  /// Components currently parked on the wake calendar.
  [[nodiscard]] std::size_t parked_count() const {
    return components_.size() - active_count_;
  }

  /// Enables the cycle-attribution profiler: every subsequent tick counts
  /// the Activity returned by the component. Off by default — the counters
  /// cost one array increment per component per cycle.
  void enable_profiling(bool on = true);
  [[nodiscard]] bool profiling() const { return profiling_; }

  /// Per-component attribution in registration order (empty counters for
  /// cycles run before enable_profiling()).
  [[nodiscard]] std::vector<ComponentProfile> profile() const;

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;  // FIFO tie-break for same-cycle events
    std::function<void(Cycle)> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };
  struct Repeater {
    Cycle period;
    std::function<void(Cycle)> fn;
  };

  void schedule_repeater(std::size_t index, Cycle when);
  void park(std::size_t index, Cycle until);
  void unpark(std::size_t index);
  /// Folds pending parked time into the quiescent counters and restarts the
  /// parked clocks at now_ (profiling-boundary bookkeeping).
  void sync_parked_attribution();

  std::vector<Tickable*> components_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::vector<Repeater> repeaters_;
  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  bool stop_requested_ = false;
  bool profiling_ = false;
  /// Parallel to components_: [busy, stall, quiescent] cycle counts.
  std::vector<std::array<std::uint64_t, 3>> activity_counts_;
  /// Parallel to components_: wake-hint opt-in, parked flag, and the first
  /// cycle of the current parked stretch (for lazy quiescent attribution).
  std::vector<std::uint8_t> hinted_;
  std::vector<std::uint8_t> parked_;
  std::vector<Cycle> parked_since_;
  std::size_t active_count_ = 0;
  WakeCalendar calendar_;
  std::vector<std::uint32_t> due_scratch_;
};

}  // namespace ioguard::sim
