// Cycle-driven simulation engine.
//
// All hardware models (NoC routers, hypervisor channels, device controllers)
// are Tickables clocked by a single Engine — matching the paper's assumption
// (iii): "the system elements are synchronized by a single source of timing
// (global timer)". A timed event queue supplements the tick loop for sparse
// events (job releases) so idle components cost nothing.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ioguard::sim {

/// What a component spent its most recent cycle on, for the engine's
/// cycle-attribution profiler (DESIGN.md §14).
enum class Activity : std::uint8_t {
  kBusy,       ///< did useful work this cycle
  kStall,      ///< had work but could not progress (backpressure, faults)
  kQuiescent,  ///< nothing to do
};

/// Interface for components clocked every cycle.
class Tickable {
 public:
  virtual ~Tickable() = default;

  /// Advances the component by one clock cycle ending at time `now`.
  virtual void tick(Cycle now) = 0;

  /// Human-readable instance name (for traces and error messages).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Classification of the cycle most recently ticked. Components that do
  /// not track idleness default to kBusy (conservative: the profiler then
  /// attributes their cycles to work, never hiding cost).
  [[nodiscard]] virtual Activity activity() const { return Activity::kBusy; }
};

/// Per-component cycle attribution gathered by Engine profiling. The three
/// counters partition the profiled cycles exactly.
struct ComponentProfile {
  std::string name;
  std::uint64_t busy_cycles = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t quiescent_cycles = 0;
  [[nodiscard]] std::uint64_t total_cycles() const {
    return busy_cycles + stall_cycles + quiescent_cycles;
  }
};

/// Single-clock cycle-driven engine with a supplementary timed event queue.
class Engine {
 public:
  /// Registers a component; ticked in registration order each cycle.
  /// The engine does not own the component; it must outlive the engine run.
  void add(Tickable* component);

  /// Schedules `fn` to run at absolute cycle `when` (before components tick).
  void at(Cycle when, std::function<void(Cycle)> fn);

  /// Schedules `fn` every `period` cycles starting at `start`.
  void every(Cycle start, Cycle period, std::function<void(Cycle)> fn);

  /// Runs until (and including) cycle `end`.
  void run_until(Cycle end);

  /// Runs `n` further cycles.
  void run_for(Cycle n) { run_until(now_ + n); }

  /// Requests the run loop to stop after the current cycle.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] std::size_t component_count() const { return components_.size(); }

  /// Enables the cycle-attribution profiler: every subsequent tick asks
  /// each component for its Activity and counts it. Off by default -- the
  /// query is one virtual call per component per cycle.
  void enable_profiling(bool on = true) { profiling_ = on; }
  [[nodiscard]] bool profiling() const { return profiling_; }

  /// Per-component attribution in registration order (empty counters for
  /// cycles run before enable_profiling()).
  [[nodiscard]] std::vector<ComponentProfile> profile() const;

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;  // FIFO tie-break for same-cycle events
    std::function<void(Cycle)> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  std::vector<Tickable*> components_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  bool stop_requested_ = false;
  bool profiling_ = false;
  /// Parallel to components_: [busy, stall, quiescent] cycle counts.
  std::vector<std::array<std::uint64_t, 3>> activity_counts_;
};

}  // namespace ioguard::sim
