// Indexed calendar queue for the event-driven engine (DESIGN.md §15).
//
// Parked components are keyed by the absolute cycle at which they asked to
// be re-armed. An ordered map of small buckets keeps the structure fully
// deterministic (arm order within a bucket is preserved, bucket order is
// the cycle order) and gives O(log n) arm / O(1) next-wake, which is far
// below the cost of the component ticks it replaces. A hierarchical time
// wheel would shave the log factor; the calendar is deliberately the
// simpler structure because engine populations are small (tens of
// components) while the win comes from jumping `now_`, not from the queue.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ioguard::sim {

class WakeCalendar {
 public:
  /// Arms `id` to wake at absolute cycle `when`. Ids may be armed more than
  /// once (an early Engine::wake leaves a stale entry behind); consumers
  /// must treat popped ids as hints and ignore ones no longer parked.
  void arm(Cycle when, std::uint32_t id) {
    buckets_[when].push_back(id);
    ++armed_;
  }

  [[nodiscard]] bool empty() const { return buckets_.empty(); }
  [[nodiscard]] std::size_t armed() const { return armed_; }

  /// Earliest armed wake cycle; calendar must be non-empty.
  [[nodiscard]] Cycle next_wake() const {
    IOGUARD_CHECK(!buckets_.empty());
    return buckets_.begin()->first;
  }

  /// Appends every id armed at or before `now` to `out` (ascending cycle,
  /// then arm order -- fully deterministic) and drops their buckets.
  void pop_due_through(Cycle now, std::vector<std::uint32_t>& out) {
    while (!buckets_.empty() && buckets_.begin()->first <= now) {
      auto& ids = buckets_.begin()->second;
      armed_ -= ids.size();
      out.insert(out.end(), ids.begin(), ids.end());
      buckets_.erase(buckets_.begin());
    }
  }

 private:
  std::map<Cycle, std::vector<std::uint32_t>> buckets_;
  std::size_t armed_ = 0;
};

}  // namespace ioguard::sim
