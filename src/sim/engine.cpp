#include "sim/engine.hpp"

#include <memory>

namespace ioguard::sim {

void Engine::add(Tickable* component) {
  IOGUARD_CHECK(component != nullptr);
  components_.push_back(component);
}

void Engine::at(Cycle when, std::function<void(Cycle)> fn) {
  IOGUARD_CHECK_MSG(when >= now_, "cannot schedule event in the past");
  events_.push(Event{when, seq_++, std::move(fn)});
}

void Engine::every(Cycle start, Cycle period, std::function<void(Cycle)> fn) {
  IOGUARD_CHECK(period > 0);
  // Self-rescheduling wrapper; shared_ptr lets the lambda re-capture itself.
  auto repeat = std::make_shared<std::function<void(Cycle)>>();
  *repeat = [this, period, fn = std::move(fn), repeat](Cycle t) {
    fn(t);
    at(t + period, *repeat);
  };
  at(start, *repeat);
}

void Engine::run_until(Cycle end) {
  stop_requested_ = false;
  while (now_ <= end && !stop_requested_) {
    while (!events_.empty() && events_.top().when == now_) {
      // Copy out before pop: fn may schedule new events.
      auto fn = events_.top().fn;
      events_.pop();
      fn(now_);
    }
    for (Tickable* c : components_) c->tick(now_);
    ++now_;
  }
}

}  // namespace ioguard::sim
