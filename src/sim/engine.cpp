#include "sim/engine.hpp"

#include <algorithm>

namespace ioguard::sim {

void Engine::add(Tickable* component) {
  IOGUARD_CHECK(component != nullptr);
  components_.push_back(component);
  activity_counts_.push_back({0, 0, 0});
  hinted_.push_back(component->provides_wake_hints() ? 1 : 0);
  parked_.push_back(0);
  parked_since_.push_back(0);
  ++active_count_;
}

void Engine::enable_profiling(bool on) {
  // Parked stretches must not straddle a profiling boundary: flush what was
  // accrued under the old setting and restart the parked clocks, so counts
  // cover exactly the cycles run while profiling was enabled.
  sync_parked_attribution();
  profiling_ = on;
}

void Engine::sync_parked_attribution() {
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (!parked_[i]) continue;
    if (profiling_) {
      activity_counts_[i][static_cast<std::size_t>(Activity::kQuiescent)] +=
          now_ - parked_since_[i];
    }
    parked_since_[i] = now_;
  }
}

std::vector<ComponentProfile> Engine::profile() const {
  std::vector<ComponentProfile> out;
  out.reserve(components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    ComponentProfile p;
    p.name = components_[i]->name();
    p.busy_cycles = activity_counts_[i][0];
    p.stall_cycles = activity_counts_[i][1];
    p.quiescent_cycles = activity_counts_[i][2];
    // A still-parked component's quiescent time accrues lazily; fold the
    // open stretch in so the partition covers every profiled cycle.
    if (profiling_ && parked_[i]) p.quiescent_cycles += now_ - parked_since_[i];
    out.push_back(std::move(p));
  }
  return out;
}

void Engine::at(Cycle when, std::function<void(Cycle)> fn) {
  IOGUARD_CHECK_MSG(when >= now_, "cannot schedule event in the past");
  events_.push(Event{when, seq_++, std::move(fn)});
}

void Engine::every(Cycle start, Cycle period, std::function<void(Cycle)> fn) {
  IOGUARD_CHECK(period > 0);
  const std::size_t index = repeaters_.size();
  repeaters_.push_back(Repeater{period, std::move(fn)});
  schedule_repeater(index, start);
}

void Engine::schedule_repeater(std::size_t index, Cycle when) {
  // The handler stays in its stable repeaters_ slot; each firing re-arms
  // this two-word thunk (fits std::function's small-buffer storage), so a
  // periodic event costs no per-period handler copy or heap allocation.
  at(when, [this, index](Cycle t) {
    repeaters_[index].fn(t);
    schedule_repeater(index, t + repeaters_[index].period);
  });
}

void Engine::park(std::size_t index, Cycle until) {
  parked_[index] = 1;
  parked_since_[index] = now_ + 1;  // first cycle it will not be ticked
  --active_count_;
  calendar_.arm(until, static_cast<std::uint32_t>(index));
}

void Engine::unpark(std::size_t index) {
  if (!parked_[index]) return;  // stale calendar entry after an early wake
  parked_[index] = 0;
  ++active_count_;
  if (profiling_) {
    // Cycles parked_since_..now_-1 passed without a tick; the component had
    // hinted them away, so they are quiescent by contract.
    activity_counts_[index][static_cast<std::size_t>(Activity::kQuiescent)] +=
        now_ - parked_since_[index];
  }
}

void Engine::wake(Tickable* component) {
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] == component) {
      unpark(i);
      return;
    }
  }
}

void Engine::run_until(Cycle end) {
  stop_requested_ = false;
  while (now_ <= end && !stop_requested_) {
    if (active_count_ == 0) {
      // Everything is parked: nothing observable can happen before the next
      // timed event or calendar wake, so jump straight there (or past the
      // end of the run, which terminates the loop with now_ == end + 1,
      // exactly where dense stepping would have left it).
      Cycle target = end + 1;
      if (!events_.empty()) target = std::min(target, events_.top().when);
      if (!calendar_.empty()) target = std::min(target, calendar_.next_wake());
      now_ = std::max(now_, target);
      if (now_ > end) break;
    }
    if (!calendar_.empty() && calendar_.next_wake() <= now_) {
      // Due wakes re-enter the dense set before events fire and components
      // tick, so a woken component ticks this cycle in registration order.
      due_scratch_.clear();
      calendar_.pop_due_through(now_, due_scratch_);
      for (const std::uint32_t id : due_scratch_) unpark(id);
    }
    while (!events_.empty() && events_.top().when == now_) {
      // Detach before pop: fn may schedule new events. Moving the handler
      // out of the (const) top element is safe -- the heap is ordered by
      // (when, seq) only, which the move leaves untouched.
      auto fn = std::move(const_cast<Event&>(events_.top()).fn);
      events_.pop();
      fn(now_);
    }
    for (std::size_t i = 0; i < components_.size(); ++i) {
      if (parked_[i]) continue;
      const Activity act = components_[i]->tick(now_);
      if (profiling_) ++activity_counts_[i][static_cast<std::size_t>(act)];
      if (hinted_[i]) {
        const Cycle wake_at = components_[i]->next_event(now_);
        if (wake_at > now_ + 1) park(i, wake_at);
      }
    }
    ++now_;
  }
}

}  // namespace ioguard::sim
