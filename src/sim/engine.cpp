#include "sim/engine.hpp"

#include <memory>

namespace ioguard::sim {

void Engine::add(Tickable* component) {
  IOGUARD_CHECK(component != nullptr);
  components_.push_back(component);
  activity_counts_.push_back({0, 0, 0});
}

std::vector<ComponentProfile> Engine::profile() const {
  std::vector<ComponentProfile> out;
  out.reserve(components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    ComponentProfile p;
    p.name = components_[i]->name();
    p.busy_cycles = activity_counts_[i][0];
    p.stall_cycles = activity_counts_[i][1];
    p.quiescent_cycles = activity_counts_[i][2];
    out.push_back(std::move(p));
  }
  return out;
}

void Engine::at(Cycle when, std::function<void(Cycle)> fn) {
  IOGUARD_CHECK_MSG(when >= now_, "cannot schedule event in the past");
  events_.push(Event{when, seq_++, std::move(fn)});
}

namespace {

// Self-rescheduling wrapper for Engine::every. Each firing copies itself
// into the next event, so ownership stays with the event queue -- no
// shared_ptr self-capture cycle.
struct Repeater {
  Engine* engine;
  Cycle period;
  std::function<void(Cycle)> fn;

  void operator()(Cycle t) const {
    fn(t);
    engine->at(t + period, *this);
  }
};

}  // namespace

void Engine::every(Cycle start, Cycle period, std::function<void(Cycle)> fn) {
  IOGUARD_CHECK(period > 0);
  at(start, Repeater{this, period, std::move(fn)});
}

void Engine::run_until(Cycle end) {
  stop_requested_ = false;
  while (now_ <= end && !stop_requested_) {
    while (!events_.empty() && events_.top().when == now_) {
      // Detach before pop: fn may schedule new events. Moving the handler
      // out of the (const) top element is safe -- the heap is ordered by
      // (when, seq) only, which the move leaves untouched.
      auto fn = std::move(const_cast<Event&>(events_.top()).fn);
      events_.pop();
      fn(now_);
    }
    if (profiling_) {
      for (std::size_t i = 0; i < components_.size(); ++i) {
        components_[i]->tick(now_);
        ++activity_counts_[i][static_cast<std::size_t>(
            components_[i]->activity())];
      }
    } else {
      for (Tickable* c : components_) c->tick(now_);
    }
    ++now_;
  }
}

}  // namespace ioguard::sim
