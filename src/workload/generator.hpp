// Case-study workload construction (Sec. V-C).
//
// Builds the task sets the paper evaluates: the 40 automotive tasks spread
// round-robin over the active VMs, plus per-device synthetic filler tasks
// (UUniFast utilization split) that raise every device to the target
// utilization. "Target utilization" is interpreted per I/O device: the
// virtualization manager of the paper is instantiated per I/O, so the slot
// supply that the two-layer scheduler allocates is a per-device resource.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workload/automotive.hpp"
#include "workload/task.hpp"

namespace ioguard::workload {

/// UUniFast (Bini & Buttazzo): splits `total_util` over `n` tasks uniformly
/// over the valid simplex. Returns n positive utilizations summing to total.
[[nodiscard]] std::vector<double> uunifast(Rng& rng, std::size_t n,
                                           double total_util);

/// Parameters of a case-study workload.
struct CaseStudyConfig {
  std::size_t num_vms = 4;        ///< active VMs (paper: 4 or 8)
  double target_utilization = 0.4;///< per-device target, 0.40 .. 1.00
  double preload_fraction = 0.0;  ///< x of I/O-GUARD-x: share of tasks pre-loaded
  std::uint64_t seed = 1;         ///< deterministic workload seed
  /// Utilization contributed by each synthetic filler task; the builder adds
  /// ceil(missing / this) tasks per device, so higher target utilization
  /// means *more* background streams (not monster jobs) -- matching how the
  /// paper "added synthetic workloads into the system to control overall
  /// system utilization".
  double synthetic_util_each = 0.055;
  /// Largest I/O demand of a synthetic filler task, in slots. EEMBC kernels
  /// are short; without a cap, high-utilization filler tasks would occupy a
  /// device for ms at a time and dominate every baseline's blocking.
  Slot synthetic_wcet_cap = 60;
  /// Smallest filler period (7.5 ms): filler tasks model background load,
  /// not tight-deadline streams.
  Slot synthetic_min_period = 750;
  /// Relative deadline of safety/function tasks as a fraction of the period.
  /// Sec. IV analyses constrained deadlines (D <= T); 0.8 reflects that I/O
  /// results must land with margin before the next control-loop iteration.
  /// Synthetic filler keeps implicit deadlines (background load).
  double deadline_frac = 0.75;
  /// Pre-defined tasks snap their periods to this menu (ms) so that the
  /// Time Slot Table hyper-period stays bounded (lcm = 100 ms).
  std::vector<std::uint32_t> period_menu_ms = {1, 2, 4, 5, 10, 20, 25, 50, 100};
  /// Mixed-criticality mode (DESIGN.md §17): safety tasks become
  /// HI-criticality with C_hi = ceil(hi_wcet_factor * C_lo); function and
  /// synthetic tasks stay LO. Off by default -- and the assignment draws no
  /// RNG, so flag-off workloads are byte-identical to pre-MCS builds.
  bool mixed_criticality = false;
  /// HI-budget inflation factor (C_hi / C_lo) applied to HI tasks.
  double hi_wcet_factor = 1.5;
};

/// A fully-built workload: the task set, with `kind` assigned according to
/// the preload fraction (pre-defined tasks get periodic offsets).
struct CaseStudyWorkload {
  TaskSet tasks;
  CaseStudyConfig config;

  [[nodiscard]] TaskSet predefined() const {
    return tasks.filter_kind(TaskKind::kPredefined);
  }
  [[nodiscard]] TaskSet runtime() const {
    return tasks.filter_kind(TaskKind::kRuntime);
  }
};

/// Builds the case-study workload for one trial.
///
/// Deterministic in (config, config.seed). Tasks are assigned to VMs
/// round-robin in a shuffled order; synthetic filler tasks are generated per
/// device with UUniFast and log-uniform periods; `preload_fraction` of the
/// *periodic-friendly* tasks (safety first, then function) are marked
/// kPredefined with menu-snapped periods and staggered offsets.
[[nodiscard]] CaseStudyWorkload build_case_study(const CaseStudyConfig& config);

/// Converts an AutomotiveEntry to an IoTaskSpec (slot units, implicit
/// deadline). VM/TaskId are left for the builder to assign.
[[nodiscard]] IoTaskSpec to_spec(const AutomotiveEntry& entry);

}  // namespace ioguard::workload
