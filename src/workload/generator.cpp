#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

namespace ioguard::workload {

std::vector<double> uunifast(Rng& rng, std::size_t n, double total_util) {
  IOGUARD_CHECK(n > 0);
  IOGUARD_CHECK(total_util > 0.0);
  std::vector<double> utils(n);
  double sum = total_util;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next =
        sum * std::pow(rng.uniform(), 1.0 / static_cast<double>(n - 1 - i));
    utils[i] = sum - next;
    sum = next;
  }
  utils[n - 1] = sum;
  return utils;
}

IoTaskSpec to_spec(const AutomotiveEntry& entry) {
  IoTaskSpec spec;
  spec.name = std::string(entry.name);
  spec.cls = entry.cls;
  spec.kind = TaskKind::kRuntime;
  spec.device = device_id(entry.device);
  spec.period = static_cast<Slot>(entry.period_ms) * kSlotsPerMs;
  // 1 slot = 10 us at the default mapping; demands are given in us.
  spec.wcet = std::max<Slot>(1, (entry.io_demand_us + 9) / 10);
  spec.deadline = spec.period;  // implicit deadlines in the case study
  spec.payload_bytes = entry.payload_bytes;
  return spec;
}

namespace {

/// Largest menu period (in slots) not exceeding `period`; falls back to the
/// smallest menu entry when `period` is below the whole menu.
Slot snap_to_menu(Slot period, const std::vector<std::uint32_t>& menu_ms) {
  IOGUARD_CHECK(!menu_ms.empty());
  Slot best = 0;
  Slot smallest = kNeverSlot;
  for (std::uint32_t ms : menu_ms) {
    const Slot p = static_cast<Slot>(ms) * kSlotsPerMs;
    smallest = std::min(smallest, p);
    if (p <= period) best = std::max(best, p);
  }
  return best > 0 ? best : smallest;
}

}  // namespace

CaseStudyWorkload build_case_study(const CaseStudyConfig& config) {
  IOGUARD_CHECK(config.num_vms > 0);
  // Above 1.0 is a deliberate overload workload (mixed-criticality mode-
  // switch experiments): admission will refuse it, LO filler will miss, but
  // the generator still produces a well-formed task set. 2.0 matches
  // TrialConfig::validated's ceiling.
  IOGUARD_CHECK(config.target_utilization > 0.0 &&
                config.target_utilization <= 2.0);
  IOGUARD_CHECK(config.preload_fraction >= 0.0 &&
                config.preload_fraction <= 1.0);

  Rng rng(config.seed);
  std::vector<IoTaskSpec> specs;
  specs.reserve(80);

  // 1. The 40 automotive tasks, shuffled, assigned round-robin to VMs.
  for (const auto& entry : automotive_entries()) {
    IoTaskSpec s = to_spec(entry);
    s.deadline = std::max<Slot>(
        s.wcet, static_cast<Slot>(std::llround(
                    config.deadline_frac * static_cast<double>(s.period))));
    specs.push_back(std::move(s));
  }
  rng.shuffle(specs);

  // 2. Per-device synthetic filler to reach the target utilization.
  double base_util[kCaseStudyDeviceCount] = {};
  for (const auto& s : specs) base_util[s.device.value] += s.utilization();

  for (std::size_t d = 0; d < kCaseStudyDeviceCount; ++d) {
    const double missing = config.target_utilization - base_util[d];
    if (missing <= 1e-9) continue;
    // Near-even split with mild jitter: a single fat filler share would turn
    // into one tight-deadline high-rate stream once the WCET cap applies,
    // which no background workload looks like.
    const auto n_filler = static_cast<std::size_t>(
        std::ceil(missing / config.synthetic_util_each));
    std::vector<double> utils(std::max<std::size_t>(1, n_filler));
    double weight_sum = 0.0;
    for (auto& u : utils) {
      u = rng.uniform(0.7, 1.3);
      weight_sum += u;
    }
    for (auto& u : utils) u *= missing / weight_sum;
    for (std::size_t i = 0; i < utils.size(); ++i) {
      IoTaskSpec s;
      s.name = "synthetic_d" + std::to_string(d) + "_" + std::to_string(i);
      s.cls = TaskClass::kSynthetic;
      s.kind = TaskKind::kRuntime;
      s.device = DeviceId{static_cast<std::uint32_t>(d)};
      const double period_ms = rng.log_uniform(10.0, 100.0);
      s.period = static_cast<Slot>(std::llround(period_ms * kSlotsPerMs));
      s.wcet = std::max<Slot>(
          1, static_cast<Slot>(std::llround(utils[i] * static_cast<double>(s.period))));
      if (s.wcet > config.synthetic_wcet_cap) {
        // Keep the utilization but shorten the job: more frequent, smaller
        // kernels (the EEMBC workloads are short-running).
        s.wcet = config.synthetic_wcet_cap;
        s.period = static_cast<Slot>(
            std::llround(static_cast<double>(s.wcet) / utils[i]));
      }
      if (s.period < config.synthetic_min_period) {
        // Filler is background load: keep its period civilized and scale the
        // demand to preserve the utilization share.
        s.period = config.synthetic_min_period;
        s.wcet = std::max<Slot>(
            1, static_cast<Slot>(
                   std::llround(utils[i] * static_cast<double>(s.period))));
      }
      s.deadline = std::max<Slot>(
          s.wcet, static_cast<Slot>(std::llround(
                      config.deadline_frac * static_cast<double>(s.period))));
      s.payload_bytes =
          static_cast<std::uint32_t>(rng.uniform_int(64, 1024));
      specs.push_back(std::move(s));
    }
  }

  // 3. Assign ids and VMs round-robin over the shuffled order.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].id = TaskId{static_cast<std::uint32_t>(i)};
    specs[i].vm = VmId{static_cast<std::uint32_t>(i % config.num_vms)};
  }

  // 4. Pre-load the requested fraction of *each class* ("pre-loaded x% of
  //    I/O tasks"): within a class, safety-style strictly periodic behaviour
  //    is assumed for whichever tasks the designer selects. Proportional
  //    selection keeps the I/O-GUARD-40 vs -70 distinction meaningful at
  //    every utilization (count-based selection would cover all critical
  //    tasks once enough filler exists). Pre-defined periods snap to the
  //    menu so the per-device hyper-period stays at lcm(menu) = 100 ms.
  std::vector<std::size_t> order;
  for (int cls = 0; cls < 3; ++cls) {
    std::vector<std::size_t> in_class;
    for (std::size_t i = 0; i < specs.size(); ++i)
      if (static_cast<int>(specs[i].cls) == cls) in_class.push_back(i);
    const auto take = static_cast<std::size_t>(std::floor(
        config.preload_fraction * static_cast<double>(in_class.size())));
    for (std::size_t i = 0; i < take; ++i) order.push_back(in_class[i]);
  }
  const std::size_t preload_count = order.size();

  std::size_t preload_seq[kCaseStudyDeviceCount] = {};
  for (std::size_t i = 0; i < preload_count; ++i) {
    IoTaskSpec& s = specs[order[i]];
    s.kind = TaskKind::kPredefined;
    const Slot snapped = snap_to_menu(s.period, config.period_menu_ms);
    if (snapped != s.period) {
      // Preserve the task's utilization share across the snap.
      s.wcet = std::max<Slot>(
          1, static_cast<Slot>(std::llround(
                 static_cast<double>(s.wcet) * static_cast<double>(snapped) /
                 static_cast<double>(s.period))));
      s.period = snapped;
    }
    // Pre-defined tasks are time-triggered: the designer fixes their start
    // times and the result is consumed at the next period boundary, so the
    // P-channel schedules them with implicit deadlines.
    s.deadline = s.period;
    s.wcet = std::min(s.wcet, s.deadline);
    // Staggered nominal offsets; the Time Slot Table builder performs the
    // actual conflict-free slot placement by offline EDF.
    s.offset = static_cast<Slot>(preload_seq[s.device.value]++ * 7 % s.period);
  }

  // 5. Criticality assignment (no RNG draws: flag-off builds stay
  //    byte-identical). Safety tasks carry HI criticality with an inflated
  //    C_hi; everything else is LO and sheddable under HI mode. C_hi is
  //    clamped to the deadline so an admitted HI task can still finish by
  //    construction when the mode switch inflates its budget.
  if (config.mixed_criticality) {
    IOGUARD_CHECK(config.hi_wcet_factor >= 1.0);
    for (IoTaskSpec& s : specs) {
      if (s.cls != TaskClass::kSafety) continue;
      s.criticality = Criticality::kHi;
      const auto inflated = static_cast<Slot>(std::llround(
          std::ceil(config.hi_wcet_factor * static_cast<double>(s.wcet))));
      s.wcet_hi = std::min(std::max(inflated, s.wcet), s.deadline);
    }
  }

  CaseStudyWorkload out;
  out.tasks = TaskSet(std::move(specs));
  out.config = config;
  return out;
}

}  // namespace ioguard::workload
