#include "workload/trace_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace ioguard::workload {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

Status row_error(std::size_t line_no, const std::string& what) {
  return InvalidArgumentError("CSV line " + std::to_string(line_no) + ": " +
                              what);
}

StatusOr<std::uint64_t> to_u64(const std::string& s, std::size_t line_no) {
  if (s.empty()) return row_error(line_no, "empty numeric cell");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (!end || *end != '\0')
    return row_error(line_no, "malformed numeric cell '" + s + "'");
  return static_cast<std::uint64_t>(v);
}

StatusOr<TaskClass> parse_class(const std::string& s, std::size_t line_no) {
  if (s == "safety") return TaskClass::kSafety;
  if (s == "function") return TaskClass::kFunction;
  if (s == "synthetic") return TaskClass::kSynthetic;
  return row_error(line_no, "unknown task class: " + s);
}

StatusOr<TaskKind> parse_kind(const std::string& s, std::size_t line_no) {
  if (s == "predefined") return TaskKind::kPredefined;
  if (s == "runtime") return TaskKind::kRuntime;
  return row_error(line_no, "unknown task kind: " + s);
}

}  // namespace

void write_taskset_csv(std::ostream& os, const TaskSet& tasks) {
  os << "id,vm,device,name,class,kind,period,wcet,deadline,offset,payload\n";
  for (const auto& t : tasks.tasks()) {
    os << t.id.value << ',' << t.vm.value << ',' << t.device.value << ','
       << t.name << ',' << to_string(t.cls) << ',' << to_string(t.kind) << ','
       << t.period << ',' << t.wcet << ',' << t.deadline << ',' << t.offset
       << ',' << t.payload_bytes << '\n';
  }
}

StatusOr<TaskSet> read_taskset_csv(std::istream& is) {
  TaskSet out;
  std::string line;
  if (!std::getline(is, line))
    return InvalidArgumentError("missing task-set CSV header");
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() != 11)
      return row_error(line_no, "task-set row needs 11 cells, got " +
                                    std::to_string(cells.size()));
    IoTaskSpec t;
    IOGUARD_ASSIGN_OR_RETURN(const auto id, to_u64(cells[0], line_no));
    IOGUARD_ASSIGN_OR_RETURN(const auto vm, to_u64(cells[1], line_no));
    IOGUARD_ASSIGN_OR_RETURN(const auto device, to_u64(cells[2], line_no));
    t.id = TaskId{static_cast<std::uint32_t>(id)};
    t.vm = VmId{static_cast<std::uint32_t>(vm)};
    t.device = DeviceId{static_cast<std::uint32_t>(device)};
    t.name = cells[3];
    IOGUARD_ASSIGN_OR_RETURN(t.cls, parse_class(cells[4], line_no));
    IOGUARD_ASSIGN_OR_RETURN(t.kind, parse_kind(cells[5], line_no));
    IOGUARD_ASSIGN_OR_RETURN(t.period, to_u64(cells[6], line_no));
    IOGUARD_ASSIGN_OR_RETURN(t.wcet, to_u64(cells[7], line_no));
    IOGUARD_ASSIGN_OR_RETURN(t.deadline, to_u64(cells[8], line_no));
    IOGUARD_ASSIGN_OR_RETURN(t.offset, to_u64(cells[9], line_no));
    IOGUARD_ASSIGN_OR_RETURN(const auto payload, to_u64(cells[10], line_no));
    t.payload_bytes = static_cast<std::uint32_t>(payload);
    out.add(std::move(t));
  }
  return out;
}

void write_trace_csv(std::ostream& os, const std::vector<Job>& trace) {
  os << "id,task,vm,device,release,deadline,wcet,payload\n";
  for (const auto& j : trace) {
    os << j.id.value << ',' << j.task.value << ',' << j.vm.value << ','
       << j.device.value << ',' << j.release << ',' << j.absolute_deadline
       << ',' << j.wcet << ',' << j.payload_bytes << '\n';
  }
}

StatusOr<std::vector<Job>> read_trace_csv(std::istream& is) {
  std::vector<Job> out;
  std::string line;
  if (!std::getline(is, line))
    return InvalidArgumentError("missing trace CSV header");
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() != 8)
      return row_error(line_no, "trace row needs 8 cells, got " +
                                    std::to_string(cells.size()));
    Job j;
    IOGUARD_ASSIGN_OR_RETURN(const auto id, to_u64(cells[0], line_no));
    IOGUARD_ASSIGN_OR_RETURN(const auto task, to_u64(cells[1], line_no));
    IOGUARD_ASSIGN_OR_RETURN(const auto vm, to_u64(cells[2], line_no));
    IOGUARD_ASSIGN_OR_RETURN(const auto device, to_u64(cells[3], line_no));
    j.id = JobId{static_cast<std::uint32_t>(id)};
    j.task = TaskId{static_cast<std::uint32_t>(task)};
    j.vm = VmId{static_cast<std::uint32_t>(vm)};
    j.device = DeviceId{static_cast<std::uint32_t>(device)};
    IOGUARD_ASSIGN_OR_RETURN(j.release, to_u64(cells[4], line_no));
    IOGUARD_ASSIGN_OR_RETURN(j.absolute_deadline, to_u64(cells[5], line_no));
    IOGUARD_ASSIGN_OR_RETURN(j.wcet, to_u64(cells[6], line_no));
    IOGUARD_ASSIGN_OR_RETURN(const auto payload, to_u64(cells[7], line_no));
    j.payload_bytes = static_cast<std::uint32_t>(payload);
    out.push_back(j);
  }
  return out;
}

}  // namespace ioguard::workload
