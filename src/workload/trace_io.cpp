#include "workload/trace_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/check.hpp"

namespace ioguard::workload {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

std::uint64_t to_u64(const std::string& s) {
  IOGUARD_CHECK_MSG(!s.empty(), "empty numeric CSV cell");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  IOGUARD_CHECK_MSG(end && *end == '\0', "malformed numeric CSV cell");
  return v;
}

TaskClass parse_class(const std::string& s) {
  if (s == "safety") return TaskClass::kSafety;
  if (s == "function") return TaskClass::kFunction;
  if (s == "synthetic") return TaskClass::kSynthetic;
  IOGUARD_CHECK_MSG(false, "unknown task class: " + s);
  __builtin_unreachable();
}

TaskKind parse_kind(const std::string& s) {
  if (s == "predefined") return TaskKind::kPredefined;
  if (s == "runtime") return TaskKind::kRuntime;
  IOGUARD_CHECK_MSG(false, "unknown task kind: " + s);
  __builtin_unreachable();
}

}  // namespace

void write_taskset_csv(std::ostream& os, const TaskSet& tasks) {
  os << "id,vm,device,name,class,kind,period,wcet,deadline,offset,payload\n";
  for (const auto& t : tasks.tasks()) {
    os << t.id.value << ',' << t.vm.value << ',' << t.device.value << ','
       << t.name << ',' << to_string(t.cls) << ',' << to_string(t.kind) << ','
       << t.period << ',' << t.wcet << ',' << t.deadline << ',' << t.offset
       << ',' << t.payload_bytes << '\n';
  }
}

TaskSet read_taskset_csv(std::istream& is) {
  TaskSet out;
  std::string line;
  IOGUARD_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
                    "missing task-set CSV header");
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    IOGUARD_CHECK_MSG(cells.size() == 11, "task-set CSV row needs 11 cells");
    IoTaskSpec t;
    t.id = TaskId{static_cast<std::uint32_t>(to_u64(cells[0]))};
    t.vm = VmId{static_cast<std::uint32_t>(to_u64(cells[1]))};
    t.device = DeviceId{static_cast<std::uint32_t>(to_u64(cells[2]))};
    t.name = cells[3];
    t.cls = parse_class(cells[4]);
    t.kind = parse_kind(cells[5]);
    t.period = to_u64(cells[6]);
    t.wcet = to_u64(cells[7]);
    t.deadline = to_u64(cells[8]);
    t.offset = to_u64(cells[9]);
    t.payload_bytes = static_cast<std::uint32_t>(to_u64(cells[10]));
    out.add(std::move(t));
  }
  return out;
}

void write_trace_csv(std::ostream& os, const std::vector<Job>& trace) {
  os << "id,task,vm,device,release,deadline,wcet,payload\n";
  for (const auto& j : trace) {
    os << j.id.value << ',' << j.task.value << ',' << j.vm.value << ','
       << j.device.value << ',' << j.release << ',' << j.absolute_deadline
       << ',' << j.wcet << ',' << j.payload_bytes << '\n';
  }
}

std::vector<Job> read_trace_csv(std::istream& is) {
  std::vector<Job> out;
  std::string line;
  IOGUARD_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
                    "missing trace CSV header");
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    IOGUARD_CHECK_MSG(cells.size() == 8, "trace CSV row needs 8 cells");
    Job j;
    j.id = JobId{static_cast<std::uint32_t>(to_u64(cells[0]))};
    j.task = TaskId{static_cast<std::uint32_t>(to_u64(cells[1]))};
    j.vm = VmId{static_cast<std::uint32_t>(to_u64(cells[2]))};
    j.device = DeviceId{static_cast<std::uint32_t>(to_u64(cells[3]))};
    j.release = to_u64(cells[4]);
    j.absolute_deadline = to_u64(cells[5]);
    j.wcet = to_u64(cells[6]);
    j.payload_bytes = static_cast<std::uint32_t>(to_u64(cells[7]));
    out.push_back(j);
  }
  return out;
}

}  // namespace ioguard::workload
