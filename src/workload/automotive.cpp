#include "workload/automotive.hpp"

namespace ioguard::workload {

namespace {

// Period classes follow automotive rate groups; I/O demand is the slot-level
// device occupancy per job (in microseconds; 1 slot = 10 us at the default
// mapping, so demands are multiples of 10 us).
//
// Safety tasks (Renesas automotive use cases): watchdog, CRC integrity,
// cryptographic attestation, sensor guards -- short payloads on
// CAN / SPI / FlexRay.
//
// Function tasks (EEMBC AutoBench): signal-processing kernels fed by the
// 1 Gbps Ethernet stream, larger payloads.
const std::vector<AutomotiveEntry> kEntries = {
    // --- 20 safety tasks (Renesas) ------------------------------------
    {"crc32_frame_guard", TaskClass::kSafety, CaseStudyDevice::kCan, 5, 40, 64},
    {"rsa32_attest", TaskClass::kSafety, CaseStudyDevice::kSpi, 100, 800, 128},
    {"aes128_mac", TaskClass::kSafety, CaseStudyDevice::kSpi, 50, 400, 128},
    {"secure_watchdog", TaskClass::kSafety, CaseStudyDevice::kSpi, 10, 30, 8},
    {"brake_pressure_guard", TaskClass::kSafety, CaseStudyDevice::kCan, 5, 50, 32},
    {"steer_angle_guard", TaskClass::kSafety, CaseStudyDevice::kCan, 5, 50, 32},
    {"airbag_arm_check", TaskClass::kSafety, CaseStudyDevice::kCan, 10, 60, 16},
    {"battery_cell_monitor", TaskClass::kSafety, CaseStudyDevice::kSpi, 20, 120, 64},
    {"lidar_sync_pulse", TaskClass::kSafety, CaseStudyDevice::kSpi, 10, 40, 16},
    {"radar_self_test", TaskClass::kSafety, CaseStudyDevice::kSpi, 100, 500, 256},
    {"ecu_heartbeat", TaskClass::kSafety, CaseStudyDevice::kFlexRay, 10, 110, 32},
    {"flexray_sync_guard", TaskClass::kSafety, CaseStudyDevice::kFlexRay, 20, 160, 64},
    {"door_lock_confirm", TaskClass::kSafety, CaseStudyDevice::kCan, 50, 90, 16},
    {"seatbelt_sensor_poll", TaskClass::kSafety, CaseStudyDevice::kCan, 25, 70, 16},
    {"throttle_plausibility", TaskClass::kSafety, CaseStudyDevice::kCan, 5, 60, 32},
    {"abs_wheel_pulse", TaskClass::kSafety, CaseStudyDevice::kCan, 5, 50, 16},
    {"esc_yaw_guard", TaskClass::kSafety, CaseStudyDevice::kCan, 10, 80, 32},
    {"fuel_cutoff_check", TaskClass::kSafety, CaseStudyDevice::kSpi, 50, 200, 32},
    {"crash_recorder_flush", TaskClass::kSafety, CaseStudyDevice::kSpi, 100, 600, 512},
    {"temp_overrun_guard", TaskClass::kSafety, CaseStudyDevice::kSpi, 25, 100, 16},

    // --- 20 function tasks (EEMBC AutoBench) ---------------------------
    {"fft_radar_256", TaskClass::kFunction, CaseStudyDevice::kEthernet, 10, 250, 1024},
    {"ifft_radar_256", TaskClass::kFunction, CaseStudyDevice::kEthernet, 10, 250, 1024},
    {"fir_lane_filter", TaskClass::kFunction, CaseStudyDevice::kEthernet, 5, 120, 512},
    {"iir_suspension", TaskClass::kFunction, CaseStudyDevice::kEthernet, 10, 150, 512},
    {"speed_calc", TaskClass::kFunction, CaseStudyDevice::kEthernet, 5, 80, 256},
    {"angle_to_time", TaskClass::kFunction, CaseStudyDevice::kEthernet, 5, 70, 128},
    {"tooth_to_spark", TaskClass::kFunction, CaseStudyDevice::kEthernet, 5, 100, 128},
    {"road_speed_lookup", TaskClass::kFunction, CaseStudyDevice::kEthernet, 10, 90, 256},
    {"table_interp_engine", TaskClass::kFunction, CaseStudyDevice::kEthernet, 10, 110, 512},
    {"can_msg_router", TaskClass::kFunction, CaseStudyDevice::kCan, 5, 60, 64},
    {"matrix_ctrl_3x3", TaskClass::kFunction, CaseStudyDevice::kEthernet, 20, 200, 1024},
    {"pointer_chase_diag", TaskClass::kFunction, CaseStudyDevice::kEthernet, 50, 300, 1500},
    {"pulse_width_mod", TaskClass::kFunction, CaseStudyDevice::kSpi, 10, 100, 64},
    {"bit_manip_status", TaskClass::kFunction, CaseStudyDevice::kEthernet, 20, 150, 256},
    {"cache_buster_log", TaskClass::kFunction, CaseStudyDevice::kEthernet, 100, 400, 1500},
    {"idct_video_8x8", TaskClass::kFunction, CaseStudyDevice::kEthernet, 20, 250, 1500},
    {"rgb_to_yiq_conv", TaskClass::kFunction, CaseStudyDevice::kEthernet, 25, 250, 1500},
    {"infotainment_mix", TaskClass::kFunction, CaseStudyDevice::kEthernet, 50, 300, 1500},
    {"telemetry_pack", TaskClass::kFunction, CaseStudyDevice::kFlexRay, 25, 260, 128},
    {"diag_result_tx", TaskClass::kFunction, CaseStudyDevice::kFlexRay, 50, 420, 256},
};

}  // namespace

const std::vector<AutomotiveEntry>& automotive_entries() { return kEntries; }

double automotive_base_utilization() {
  double u = 0.0;
  for (const auto& e : kEntries)
    u += static_cast<double>(e.io_demand_us) /
         (static_cast<double>(e.period_ms) * 1000.0);
  return u;
}

}  // namespace ioguard::workload
