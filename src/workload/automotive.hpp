// Automotive case-study task database (Sec. V-C).
//
// The paper selects 20 safety tasks from the Renesas automotive use-case
// database and 20 function tasks from the EEMBC AutoBench suite, with WCETs
// obtained by hybrid measurement. Those parameter tables are not published;
// this module reconstructs them from the suites' public characteristics
// (automotive rate classes 1..1000 ms, payload sizes of the named kernels)
// with deterministic values, so experiments are reproducible byte-for-byte.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "workload/task.hpp"

namespace ioguard::workload {

/// Canonical device roles in the case study. Raw input data arrives via
/// Ethernet (1 Gbps) and results leave via FlexRay (10 Mbps); safety I/O
/// also touches CAN and SPI peripherals.
enum class CaseStudyDevice : std::uint32_t {
  kEthernet = 0,
  kFlexRay = 1,
  kCan = 2,
  kSpi = 3,
};
inline constexpr std::size_t kCaseStudyDeviceCount = 4;

[[nodiscard]] constexpr DeviceId device_id(CaseStudyDevice d) {
  return DeviceId{static_cast<std::uint32_t>(d)};
}

/// One row of the reconstructed benchmark table.
struct AutomotiveEntry {
  std::string_view name;
  TaskClass cls;
  CaseStudyDevice device;
  std::uint32_t period_ms;      ///< automotive rate class
  std::uint32_t io_demand_us;   ///< per-job I/O service demand
  std::uint32_t payload_bytes;  ///< payload moved per job
};

/// The 20 safety + 20 function entries (40 total), in a stable order.
[[nodiscard]] const std::vector<AutomotiveEntry>& automotive_entries();

/// Total utilization of the 40-entry table (per the paper, ~40% before
/// synthetic filler is added -- see Sec. V-C "overall system utilization
/// approximately 40%" for the base task sets).
[[nodiscard]] double automotive_base_utilization();

}  // namespace ioguard::workload
