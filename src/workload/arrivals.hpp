// Job release trace generation.
//
// Pre-defined tasks release strictly periodically at offset + k*T.
// Run-time tasks are sporadic: consecutive releases are separated by
// T + Exp(jitter_frac * T), honouring the minimum-separation model of
// Sec. IV while keeping the achieved utilization below the target -- the
// paper's "adding synthetic workloads only gives a *target* utilization".
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workload/task.hpp"

namespace ioguard::workload {

struct ArrivalConfig {
  Slot horizon = 0;            ///< generate releases in [0, horizon)
  double jitter_frac = 0.005;  ///< sporadic slack: mean extra separation / T
  double exec_frac_lo = 0.98;  ///< actual demand lower bound, fraction of C
  double exec_frac_hi = 1.0;   ///< actual demand upper bound, fraction of C
  std::uint64_t seed = 1;      ///< trace seed (vary per trial)
};

/// Generates all job releases of `tasks` in [0, horizon), sorted by release
/// slot (ties broken by task id). JobIds are dense and trace-unique.
[[nodiscard]] std::vector<Job> generate_trace(const TaskSet& tasks,
                                              const ArrivalConfig& config);

/// Minimum horizon guaranteeing at least `min_jobs` releases of every task.
[[nodiscard]] Slot horizon_for_min_jobs(const TaskSet& tasks,
                                        std::size_t min_jobs);

}  // namespace ioguard::workload
