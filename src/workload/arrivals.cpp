#include "workload/arrivals.hpp"

#include <algorithm>
#include <cmath>

namespace ioguard::workload {

std::vector<Job> generate_trace(const TaskSet& tasks,
                                const ArrivalConfig& config) {
  IOGUARD_CHECK(config.horizon > 0);
  IOGUARD_CHECK(config.exec_frac_lo > 0.0 &&
                config.exec_frac_lo <= config.exec_frac_hi &&
                config.exec_frac_hi <= 1.0);
  Rng rng(config.seed);
  std::vector<Job> jobs;

  for (const auto& t : tasks.tasks()) {
    Rng task_rng = rng.fork(t.id.value);
    Slot release = t.kind == TaskKind::kPredefined ? t.offset : Slot{0};
    while (release < config.horizon) {
      Job j;
      j.task = t.id;
      j.vm = t.vm;
      j.device = t.device;
      j.release = release;
      j.absolute_deadline = release + t.deadline;
      const double frac =
          task_rng.uniform(config.exec_frac_lo, config.exec_frac_hi);
      j.wcet = std::max<Slot>(
          1, static_cast<Slot>(std::llround(frac * static_cast<double>(t.wcet))));
      j.payload_bytes = t.payload_bytes;
      jobs.push_back(j);

      if (t.kind == TaskKind::kPredefined) {
        release += t.period;
      } else {
        const double slack = config.jitter_frac <= 0.0
                                 ? 0.0
                                 : task_rng.exponential(
                                       config.jitter_frac *
                                       static_cast<double>(t.period));
        release += t.period + static_cast<Slot>(std::llround(slack));
      }
    }
  }

  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.release != b.release ? a.release < b.release
                                  : a.task.value < b.task.value;
  });
  for (std::size_t i = 0; i < jobs.size(); ++i)
    jobs[i].id = JobId{static_cast<std::uint32_t>(i)};
  return jobs;
}

Slot horizon_for_min_jobs(const TaskSet& tasks, std::size_t min_jobs) {
  Slot max_period = 0;
  for (const auto& t : tasks.tasks()) max_period = std::max(max_period, t.period);
  return max_period * static_cast<Slot>(min_jobs) + 1;
}

}  // namespace ioguard::workload
