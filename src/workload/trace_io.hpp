// CSV import/export for task sets and job traces, so workloads can be
// inspected, versioned, or replayed from files.
//
// Task-set columns:
//   id,vm,device,name,class,kind,period,wcet,deadline,offset,payload
// Job-trace columns:
//   id,task,vm,device,release,deadline,wcet,payload
#pragma once

#include <iosfwd>
#include <vector>

#include "common/status.hpp"
#include "workload/task.hpp"

namespace ioguard::workload {

void write_taskset_csv(std::ostream& os, const TaskSet& tasks);

/// Parses a task-set CSV (header required). Malformed rows yield
/// kInvalidArgument with the offending line number; TaskSet invariant
/// violations (duplicate ids etc.) still fail the process-wide CHECK.
[[nodiscard]] StatusOr<TaskSet> read_taskset_csv(std::istream& is);

void write_trace_csv(std::ostream& os, const std::vector<Job>& trace);

[[nodiscard]] StatusOr<std::vector<Job>> read_trace_csv(std::istream& is);

}  // namespace ioguard::workload
