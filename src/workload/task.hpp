// I/O task and job model (Sec. IV of the paper).
//
// An I/O task is a sporadic task tau_k = (T_k, C_k, D_k) in *time slots*:
// it releases jobs at least T_k slots apart; each job needs C_k slots of
// I/O-device service and must finish within D_k slots of release.
// Pre-defined (P-channel) tasks are strictly periodic with a known offset;
// run-time (R-channel) tasks are sporadic.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ioguard::workload {

/// Default slot width for the case study: 1 slot = 10 us => 100 slots per ms.
inline constexpr Slot kSlotsPerMs = 100;

/// Task provenance in the automotive case study (Sec. V-C).
enum class TaskClass : std::uint8_t {
  kSafety,     ///< Renesas automotive safety tasks (CRC, RSA32, ...)
  kFunction,   ///< EEMBC automotive function tasks (FFT, speed calc, ...)
  kSynthetic,  ///< EEMBC-derived filler controlling target utilization
};

/// Which hypervisor channel executes the task (Sec. II-B).
enum class TaskKind : std::uint8_t {
  kPredefined,  ///< periodic, loaded into the P-channel before run-time
  kRuntime,     ///< sporadic, scheduled by the R-channel at run-time
};

[[nodiscard]] const char* to_string(TaskClass c);
[[nodiscard]] const char* to_string(TaskKind k);

/// Static description of one I/O task.
struct IoTaskSpec {
  TaskId id;
  VmId vm;
  DeviceId device;
  std::string name;
  TaskClass cls = TaskClass::kSynthetic;
  TaskKind kind = TaskKind::kRuntime;

  Slot period = 0;    ///< T_k: period / minimum inter-release separation
  Slot wcet = 0;      ///< C_k: worst-case I/O service demand, in slots
  Slot deadline = 0;  ///< D_k: relative deadline (D_k <= T_k)
  Slot offset = 0;    ///< release offset of the first job (pre-defined tasks)

  std::uint32_t payload_bytes = 0;  ///< I/O payload per job (throughput acct.)

  [[nodiscard]] double utilization() const {
    IOGUARD_DCHECK(period > 0);
    return static_cast<double>(wcet) / static_cast<double>(period);
  }
  [[nodiscard]] bool constrained_deadline() const { return deadline <= period; }
  [[nodiscard]] bool implicit_deadline() const { return deadline == period; }
};

/// One released instance of a task.
struct Job {
  JobId id;
  TaskId task;
  VmId vm;
  DeviceId device;
  Slot release = 0;            ///< absolute release slot
  Slot absolute_deadline = 0;  ///< release + D_k
  Slot wcet = 0;               ///< service demand of this job, in slots
  std::uint32_t payload_bytes = 0;
};

/// A set of I/O tasks with filtered views and aggregate measures.
class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<IoTaskSpec> tasks) : tasks_(std::move(tasks)) {}

  void add(IoTaskSpec spec);

  [[nodiscard]] const std::vector<IoTaskSpec>& tasks() const { return tasks_; }
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] bool empty() const { return tasks_.empty(); }
  [[nodiscard]] const IoTaskSpec& operator[](std::size_t i) const { return tasks_.at(i); }
  [[nodiscard]] const IoTaskSpec& by_id(TaskId id) const;

  [[nodiscard]] TaskSet filter_vm(VmId vm) const;
  [[nodiscard]] TaskSet filter_device(DeviceId dev) const;
  [[nodiscard]] TaskSet filter_kind(TaskKind kind) const;

  /// Sum of C/T over all tasks.
  [[nodiscard]] double utilization() const;

  /// Utilization restricted to tasks on `dev`.
  [[nodiscard]] double utilization_on(DeviceId dev) const;

  /// Distinct VM ids present, ascending.
  [[nodiscard]] std::vector<VmId> vms() const;

  /// Distinct device ids present, ascending.
  [[nodiscard]] std::vector<DeviceId> devices() const;

  /// LCM of all task periods; throws on overflow past `cap`.
  [[nodiscard]] Slot hyperperiod(Slot cap = Slot{1} << 40) const;

 private:
  std::vector<IoTaskSpec> tasks_;
};

/// Overflow-checked LCM helper (throws CheckFailure past `cap`).
[[nodiscard]] Slot checked_lcm(Slot a, Slot b, Slot cap);

}  // namespace ioguard::workload
