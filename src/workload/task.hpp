// I/O task and job model (Sec. IV of the paper).
//
// An I/O task is a sporadic task tau_k = (T_k, C_k, D_k) in *time slots*:
// it releases jobs at least T_k slots apart; each job needs C_k slots of
// I/O-device service and must finish within D_k slots of release.
// Pre-defined (P-channel) tasks are strictly periodic with a known offset;
// run-time (R-channel) tasks are sporadic.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ioguard::workload {

/// Default slot width for the case study: 1 slot = 10 us => 100 slots per ms.
inline constexpr Slot kSlotsPerMs = 100;

/// Task provenance in the automotive case study (Sec. V-C).
enum class TaskClass : std::uint8_t {
  kSafety,     ///< Renesas automotive safety tasks (CRC, RSA32, ...)
  kFunction,   ///< EEMBC automotive function tasks (FFT, speed calc, ...)
  kSynthetic,  ///< EEMBC-derived filler controlling target utilization
};

/// Which hypervisor channel executes the task (Sec. II-B).
enum class TaskKind : std::uint8_t {
  kPredefined,  ///< periodic, loaded into the P-channel before run-time
  kRuntime,     ///< sporadic, scheduled by the R-channel at run-time
};

/// Vestal-style criticality level of a task (DESIGN.md §17).
///
/// LO tasks are guaranteed only while the system is in LO mode; after a
/// budget overrun switches a VM (or the hypervisor block) into HI mode,
/// LO-criticality R-channel work is shed and only HI tasks keep their
/// guarantees -- at the inflated budget C_hi.
enum class Criticality : std::uint8_t {
  kLo,  ///< best-effort under overload; shed on LO->HI mode switch
  kHi,  ///< guaranteed in both modes; budget inflates to C_hi in HI mode
};

[[nodiscard]] const char* to_string(TaskClass c);
[[nodiscard]] const char* to_string(TaskKind k);
[[nodiscard]] const char* to_string(Criticality c);

/// Static description of one I/O task.
struct IoTaskSpec {
  TaskId id;
  VmId vm;
  DeviceId device;
  std::string name;
  TaskClass cls = TaskClass::kSynthetic;
  TaskKind kind = TaskKind::kRuntime;

  Slot period = 0;    ///< T_k: period / minimum inter-release separation
  Slot wcet = 0;      ///< C_k (= C_lo): worst-case I/O service demand, slots
  Slot deadline = 0;  ///< D_k: relative deadline (D_k <= T_k)
  Slot offset = 0;    ///< release offset of the first job (pre-defined tasks)

  /// Criticality level; single-criticality workloads leave every task at kLo
  /// with wcet_hi == 0, which reproduces the pre-MCS behavior exactly.
  Criticality criticality = Criticality::kLo;
  /// C_hi: pessimistic HI-mode budget (0 means "same as wcet"). Invariant:
  /// wcet <= wcet_hi whenever wcet_hi is set.
  Slot wcet_hi = 0;

  std::uint32_t payload_bytes = 0;  ///< I/O payload per job (throughput acct.)

  [[nodiscard]] double utilization() const {
    IOGUARD_DCHECK(period > 0);
    return static_cast<double>(wcet) / static_cast<double>(period);
  }
  /// Effective HI-mode budget: wcet_hi when set, else the LO budget.
  [[nodiscard]] Slot effective_wcet_hi() const {
    return wcet_hi == 0 ? wcet : wcet_hi;
  }
  [[nodiscard]] double utilization_hi() const {
    IOGUARD_DCHECK(period > 0);
    return static_cast<double>(effective_wcet_hi()) /
           static_cast<double>(period);
  }
  [[nodiscard]] bool hi_criticality() const {
    return criticality == Criticality::kHi;
  }
  [[nodiscard]] bool constrained_deadline() const { return deadline <= period; }
  [[nodiscard]] bool implicit_deadline() const { return deadline == period; }
};

/// One released instance of a task.
struct Job {
  JobId id;
  TaskId task;
  VmId vm;
  DeviceId device;
  Slot release = 0;            ///< absolute release slot
  Slot absolute_deadline = 0;  ///< release + D_k
  Slot wcet = 0;               ///< service demand of this job, in slots
  std::uint32_t payload_bytes = 0;
};

/// A set of I/O tasks with filtered views and aggregate measures.
class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<IoTaskSpec> tasks) : tasks_(std::move(tasks)) {}

  void add(IoTaskSpec spec);

  [[nodiscard]] const std::vector<IoTaskSpec>& tasks() const { return tasks_; }
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] bool empty() const { return tasks_.empty(); }
  [[nodiscard]] const IoTaskSpec& operator[](std::size_t i) const { return tasks_.at(i); }
  [[nodiscard]] const IoTaskSpec& by_id(TaskId id) const;

  [[nodiscard]] TaskSet filter_vm(VmId vm) const;
  [[nodiscard]] TaskSet filter_device(DeviceId dev) const;
  [[nodiscard]] TaskSet filter_kind(TaskKind kind) const;
  [[nodiscard]] TaskSet filter_criticality(Criticality level) const;

  /// Sum of C/T over all tasks.
  [[nodiscard]] double utilization() const;

  /// Sum of C_hi/T over all tasks (HI-mode demand; LO tasks use C_lo).
  [[nodiscard]] double utilization_hi() const;

  /// True when at least one task carries HI criticality or a distinct C_hi.
  [[nodiscard]] bool mixed_criticality() const;

  /// Utilization restricted to tasks on `dev`.
  [[nodiscard]] double utilization_on(DeviceId dev) const;

  /// Distinct VM ids present, ascending.
  [[nodiscard]] std::vector<VmId> vms() const;

  /// Distinct device ids present, ascending.
  [[nodiscard]] std::vector<DeviceId> devices() const;

  /// LCM of all task periods; throws on overflow past `cap`.
  [[nodiscard]] Slot hyperperiod(Slot cap = Slot{1} << 40) const;

 private:
  std::vector<IoTaskSpec> tasks_;
};

/// Overflow-checked LCM helper (throws CheckFailure past `cap`).
[[nodiscard]] Slot checked_lcm(Slot a, Slot b, Slot cap);

}  // namespace ioguard::workload
