#include "workload/task.hpp"

#include <algorithm>
#include <numeric>

namespace ioguard::workload {

const char* to_string(TaskClass c) {
  switch (c) {
    case TaskClass::kSafety: return "safety";
    case TaskClass::kFunction: return "function";
    case TaskClass::kSynthetic: return "synthetic";
  }
  return "?";
}

const char* to_string(TaskKind k) {
  switch (k) {
    case TaskKind::kPredefined: return "predefined";
    case TaskKind::kRuntime: return "runtime";
  }
  return "?";
}

const char* to_string(Criticality c) {
  switch (c) {
    case Criticality::kLo: return "LO";
    case Criticality::kHi: return "HI";
  }
  return "?";
}

void TaskSet::add(IoTaskSpec spec) {
  IOGUARD_CHECK_MSG(spec.period > 0, "task period must be positive");
  IOGUARD_CHECK_MSG(spec.wcet > 0, "task WCET must be positive");
  IOGUARD_CHECK_MSG(spec.deadline > 0, "task deadline must be positive");
  IOGUARD_CHECK_MSG(spec.deadline <= spec.period,
                    "constrained deadlines required (D <= T)");
  IOGUARD_CHECK_MSG(spec.wcet <= spec.deadline,
                    "WCET must fit within the deadline");
  IOGUARD_CHECK_MSG(spec.wcet_hi == 0 || spec.wcet_hi >= spec.wcet,
                    "HI-mode budget must dominate the LO budget (C_lo <= C_hi)");
  tasks_.push_back(std::move(spec));
}

const IoTaskSpec& TaskSet::by_id(TaskId id) const {
  for (const auto& t : tasks_)
    if (t.id == id) return t;
  IOGUARD_CHECK_MSG(false, "unknown task id");
  __builtin_unreachable();
}

TaskSet TaskSet::filter_vm(VmId vm) const {
  TaskSet out;
  for (const auto& t : tasks_)
    if (t.vm == vm) out.tasks_.push_back(t);
  return out;
}

TaskSet TaskSet::filter_device(DeviceId dev) const {
  TaskSet out;
  for (const auto& t : tasks_)
    if (t.device == dev) out.tasks_.push_back(t);
  return out;
}

TaskSet TaskSet::filter_kind(TaskKind kind) const {
  TaskSet out;
  for (const auto& t : tasks_)
    if (t.kind == kind) out.tasks_.push_back(t);
  return out;
}

TaskSet TaskSet::filter_criticality(Criticality level) const {
  TaskSet out;
  for (const auto& t : tasks_)
    if (t.criticality == level) out.tasks_.push_back(t);
  return out;
}

double TaskSet::utilization() const {
  double u = 0.0;
  for (const auto& t : tasks_) u += t.utilization();
  return u;
}

double TaskSet::utilization_hi() const {
  double u = 0.0;
  for (const auto& t : tasks_) u += t.utilization_hi();
  return u;
}

bool TaskSet::mixed_criticality() const {
  for (const auto& t : tasks_)
    if (t.criticality == Criticality::kHi || t.wcet_hi != 0) return true;
  return false;
}

double TaskSet::utilization_on(DeviceId dev) const {
  double u = 0.0;
  for (const auto& t : tasks_)
    if (t.device == dev) u += t.utilization();
  return u;
}

std::vector<VmId> TaskSet::vms() const {
  std::vector<VmId> ids;
  for (const auto& t : tasks_)
    if (std::find(ids.begin(), ids.end(), t.vm) == ids.end())
      ids.push_back(t.vm);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<DeviceId> TaskSet::devices() const {
  std::vector<DeviceId> ids;
  for (const auto& t : tasks_)
    if (std::find(ids.begin(), ids.end(), t.device) == ids.end())
      ids.push_back(t.device);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Slot checked_lcm(Slot a, Slot b, Slot cap) {
  IOGUARD_CHECK(a > 0 && b > 0);
  const Slot g = std::gcd(a, b);
  const Slot q = a / g;
  IOGUARD_CHECK_MSG(q <= cap / b, "hyperperiod overflow");
  return q * b;
}

Slot TaskSet::hyperperiod(Slot cap) const {
  IOGUARD_CHECK(!tasks_.empty());
  Slot h = 1;
  for (const auto& t : tasks_) h = checked_lcm(h, t.period, cap);
  return h;
}

}  // namespace ioguard::workload
