// ioguard_lint: the determinism linter (DESIGN.md §13).
//
// The repo's headline contract -- bit-identical TrialResults at any --jobs,
// resume byte-equal to an uninterrupted run -- dies by a thousand innocent
// cuts: a rand() here, an unordered_map iteration there, a raw ofstream that
// tears on a crash. This linter scans C++ sources for the result-affecting
// nondeterminism patterns that code review keeps missing and reports each
// with a stable LNTxxx code (house style: the SIG/RES/CKP families of
// analysis/diagnostics.hpp), a JSON report, and inline suppressions:
//
//   // IOGUARD_LINT_ALLOW(LNT005: append-only journal; rename cannot append)
//
// A suppression covers its own line and the line below, must name a known
// code and carry a non-empty reason (else LNT006), and must actually hit
// something (else LNT007: stale suppressions rot into false confidence).
//
// The scan is token-level on comment- and string-stripped lines -- fast,
// dependency-free, and deliberately conservative: module-scoped rules fire
// only in the modules whose bytes reach TrialResult or exported artifacts
// (deterministic_module()), and anything cleverer than that belongs in the
// clang -Wthread-safety layer, not here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ioguard::lint {

/// Stable lint codes. Never renumber an existing entry; append only.
enum class LintCode : std::uint16_t {
  kNondeterministicRandom = 1,  ///< LNT001: RNG outside common/rng.hpp
  kWallClock = 2,               ///< LNT002: wall-clock time source
  kUnorderedContainer = 3,      ///< LNT003: hash container in result module
  kPointerOrderDependence = 4,  ///< LNT004: pointer-value ordering
  kRawArtifactWrite = 5,        ///< LNT005: ofstream bypassing atomic writes
  kMalformedSuppression = 6,    ///< LNT006: bad IOGUARD_LINT_ALLOW marker
  kStaleSuppression = 7,        ///< LNT007: suppression with no finding
  kEnvDependentResult = 8,      ///< LNT008: env read in result module
  kFullHorizonLoop = 9,         ///< LNT009: dense per-slot loop over horizon
  kRawModeStateAccess = 10,     ///< LNT010: mode state outside ModeController
};

inline constexpr std::size_t kLintCodeCount = 10;

/// Stable string form, e.g. kUnorderedContainer -> "LNT003".
[[nodiscard]] const char* code_string(LintCode code);

/// One-line summary of what the code means (static text, no values).
[[nodiscard]] const char* code_summary(LintCode code);

/// Parses "LNT003" -> kUnorderedContainer; false for unknown spellings.
[[nodiscard]] bool parse_code(std::string_view text, LintCode* out);

/// True for files whose bytes can reach TrialResult or an exported artifact:
/// any path component names one of the deterministic modules (core, sim,
/// sched, noc, iodev, workload, faults, system, analysis, telemetry).
/// Module-scoped rules (LNT003/LNT004/LNT008) fire only there.
[[nodiscard]] bool deterministic_module(std::string_view path);

/// One finding: code + location + message, plus its suppression state.
/// Suppressed findings stay in the report (audits read them); only active
/// (unsuppressed) findings fail a run.
struct LintFinding {
  LintCode code = LintCode::kNondeterministicRandom;
  std::string file;
  std::size_t line = 0;
  std::string message;   ///< human text naming the offending token
  std::string excerpt;   ///< trimmed source line
  bool suppressed = false;
  std::string suppress_reason;  ///< the ALLOW reason when suppressed
};

/// Scans sources and accumulates findings across files.
class Linter {
 public:
  Linter() = default;

  /// Scans one already-loaded source; `file` is the reported location label.
  void scan_source(std::string_view file, std::string_view content);

  /// Loads and scans one file from disk; unreadable files yield a finding-
  /// free scan and a false return (the CLI reports them as usage errors).
  [[nodiscard]] bool scan_file(const std::string& path);

  [[nodiscard]] const std::vector<LintFinding>& findings() const {
    return findings_;
  }
  [[nodiscard]] std::size_t files_scanned() const { return files_scanned_; }
  /// Findings that are not suppressed; a nonzero count fails the run.
  [[nodiscard]] std::size_t active_count() const;
  [[nodiscard]] std::size_t suppressed_count() const {
    return findings_.size() - active_count();
  }

  /// Human-readable listing, one finding per line (compiler-style).
  void render_text(std::ostream& os) const;

  /// Machine-readable JSON object (stable schema, see DESIGN.md §13).
  void render_json(std::ostream& os) const;

 private:
  std::vector<LintFinding> findings_;
  std::size_t files_scanned_ = 0;
};

/// Strips // and /* */ comments and the contents of string/char literals
/// (ordinary and raw) from one translation unit, preserving line structure,
/// so token rules never fire on prose or on the linter's own pattern
/// tables. Exposed for tests.
[[nodiscard]] std::vector<std::string> strip_to_code_lines(
    std::string_view content);

}  // namespace ioguard::lint
