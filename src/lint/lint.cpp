#include "lint/lint.hpp"

#include <algorithm>
#include <fstream>  // IOGUARD_LINT_ALLOW(LNT005: linter reads sources, writes nothing)
#include <ostream>
#include <sstream>

namespace ioguard::lint {

namespace {

// Spelled split so the linter does not mistake its own marker constant for a
// suppression comment when pointed at this file.
constexpr const char* kAllowMarker = "IOGUARD_LINT_" "ALLOW";

constexpr const char* kDeterministicModules[] = {
    "core", "sim",    "sched",    "noc",      "iodev",  "workload",
    "faults", "system", "analysis", "telemetry", "service",
};

[[nodiscard]] bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// True when `line` contains `name` as a whole identifier followed
/// (optionally after spaces) by '(' -- i.e. a call of that function.
[[nodiscard]] bool has_token_call(std::string_view line,
                                  std::string_view name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    std::size_t after = pos + name.size();
    if (left_ok && (after >= line.size() || !is_ident_char(line[after]))) {
      while (after < line.size() && line[after] == ' ') ++after;
      if (after < line.size() && line[after] == '(') return true;
    }
    pos += name.size();
  }
  return false;
}

[[nodiscard]] bool contains(std::string_view line, std::string_view pat) {
  return line.find(pat) != std::string_view::npos;
}

/// True when `line` contains `name` as a whole identifier (no call required;
/// member accesses like `x.vm_modes_` and `ctl->block_hi_` count).
[[nodiscard]] bool has_identifier(std::string_view line,
                                  std::string_view name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t after = pos + name.size();
    if (left_ok && (after >= line.size() || !is_ident_char(line[after])))
      return true;
    pos += name.size();
  }
  return false;
}

/// True when a std::less< / std::greater< instantiation on this line names a
/// pointer type (ordering by address is a per-run accident, not a property).
[[nodiscard]] bool has_pointer_comparator(std::string_view line) {
  for (const std::string_view head : {"std::less<", "std::greater<"}) {
    std::size_t pos = 0;
    while ((pos = line.find(head, pos)) != std::string_view::npos) {
      int depth = 1;
      for (std::size_t i = pos + head.size();
           i < line.size() && depth > 0; ++i) {
        if (line[i] == '<') ++depth;
        else if (line[i] == '>') --depth;
        else if (line[i] == '*') return true;
      }
      pos += head.size();
    }
  }
  return false;
}

[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

[[nodiscard]] std::string trimmed(std::string_view s) {
  const auto begin = s.find_first_not_of(" \t");
  if (begin == std::string_view::npos) return "";
  const auto end = s.find_last_not_of(" \t");
  return std::string(s.substr(begin, end - begin + 1));
}

/// One parsed IOGUARD_LINT_ALLOW marker.
struct Suppression {
  std::size_t line = 0;   ///< 1-based source line it sits on
  LintCode code = LintCode::kNondeterministicRandom;
  std::string reason;
  bool well_formed = false;
  std::string problem;    ///< why it is malformed (LNT006 text)
  bool used = false;
};

/// Parses every marker on one raw source line. A marker must spell
/// `<marker>(LNTxxx: reason)` with a known code and a non-empty reason;
/// anything else is recorded as malformed so it cannot silently fail open.
void parse_suppressions(std::string_view raw, std::size_t line_no,
                        std::vector<Suppression>& out) {
  std::size_t pos = 0;
  const std::string_view marker(kAllowMarker);
  while ((pos = raw.find(marker, pos)) != std::string_view::npos) {
    Suppression sup;
    sup.line = line_no;
    std::size_t i = pos + marker.size();
    pos = i;
    if (i >= raw.size() || raw[i] != '(') {
      sup.problem = "expected '(' after the marker";
      out.push_back(std::move(sup));
      continue;
    }
    const std::size_t close = raw.find(')', i);
    if (close == std::string_view::npos) {
      sup.problem = "unterminated suppression (missing ')')";
      out.push_back(std::move(sup));
      continue;
    }
    const std::string_view body = raw.substr(i + 1, close - i - 1);
    const std::size_t colon = body.find(':');
    if (colon == std::string_view::npos) {
      sup.problem = "expected 'LNTxxx: reason' inside the suppression";
      out.push_back(std::move(sup));
      continue;
    }
    const std::string code_text = trimmed(body.substr(0, colon));
    const std::string reason = trimmed(body.substr(colon + 1));
    if (!parse_code(code_text, &sup.code)) {
      sup.problem = "unknown lint code '" + code_text + "'";
      out.push_back(std::move(sup));
      continue;
    }
    if (reason.empty()) {
      sup.problem = std::string("suppression of ") + code_string(sup.code) +
                    " carries no reason";
      out.push_back(std::move(sup));
      continue;
    }
    sup.reason = reason;
    sup.well_formed = true;
    out.push_back(std::move(sup));
  }
}

void json_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

const char* code_string(LintCode code) {
  switch (code) {
    case LintCode::kNondeterministicRandom: return "LNT001";
    case LintCode::kWallClock: return "LNT002";
    case LintCode::kUnorderedContainer: return "LNT003";
    case LintCode::kPointerOrderDependence: return "LNT004";
    case LintCode::kRawArtifactWrite: return "LNT005";
    case LintCode::kMalformedSuppression: return "LNT006";
    case LintCode::kStaleSuppression: return "LNT007";
    case LintCode::kEnvDependentResult: return "LNT008";
    case LintCode::kFullHorizonLoop: return "LNT009";
    case LintCode::kRawModeStateAccess: return "LNT010";
  }
  return "LNT???";
}

const char* code_summary(LintCode code) {
  switch (code) {
    case LintCode::kNondeterministicRandom:
      return "nondeterministic or implementation-defined RNG; all experiment "
             "randomness must flow through common/rng.hpp (seeded xoshiro)";
    case LintCode::kWallClock:
      return "wall-clock time source; results must be a function of (config, "
             "seed), and run timing uses steady_clock only";
    case LintCode::kUnorderedContainer:
      return "hash container in a module that feeds TrialResult or exported "
             "artifacts; iteration order would leak the bucket layout";
    case LintCode::kPointerOrderDependence:
      return "ordering by pointer value; addresses differ per run, so any "
             "order derived from them is nondeterministic";
    case LintCode::kRawArtifactWrite:
      return "raw ofstream write; consumable artifacts must route through "
             "write_file_atomic()/AtomicFileWriter (crash = torn file)";
    case LintCode::kMalformedSuppression:
      return "malformed suppression marker; must spell '(LNTxxx: reason)' "
             "with a known code and a written reason";
    case LintCode::kStaleSuppression:
      return "suppression matches no finding on its line or the next; "
             "delete it so it cannot mask a future regression";
    case LintCode::kEnvDependentResult:
      return "environment read in a module that feeds TrialResult; config "
             "must flow through TrialConfig, not process state";
    case LintCode::kFullHorizonLoop:
      return "dense per-slot loop over the full horizon; the event-driven "
             "runner (DESIGN.md §15) skips quiescent slots -- iterate "
             "releases/wake hints instead, or suppress with the reason "
             "(the stepped reference loop is the one sanctioned user)";
    case LintCode::kRawModeStateAccess:
      return "criticality-mode state touched outside ModeController; every "
             "mode read must go through its accessors (vm_mode()/hi()/"
             "block_hi()) so LO->HI switches stay atomic and auditable";
  }
  return "?";
}

bool parse_code(std::string_view text, LintCode* out) {
  if (text.size() != 6 || text.substr(0, 3) != "LNT") return false;
  std::uint32_t value = 0;
  for (const char c : text.substr(3)) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (value < 1 || value > kLintCodeCount) return false;
  *out = static_cast<LintCode>(value);
  return true;
}

bool deterministic_module(std::string_view path) {
  std::size_t begin = 0;
  while (begin <= path.size()) {
    std::size_t end = path.find('/', begin);
    if (end == std::string_view::npos) end = path.size();
    const std::string_view component = path.substr(begin, end - begin);
    for (const char* module : kDeterministicModules)
      if (component == module) return true;
    begin = end + 1;
  }
  return false;
}

std::vector<std::string> strip_to_code_lines(std::string_view content) {
  enum class State : std::uint8_t {
    kCode, kLineComment, kBlockComment, kString, kChar, kRawString,
  };
  std::vector<std::string> lines;
  std::string current;
  State state = State::kCode;
  std::string raw_delim;  // the )delim" closer of an active raw string

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      lines.push_back(std::move(current));
      current.clear();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < content.size() && content[i + 1] == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && i + 1 < content.size() &&
                   content[i + 1] == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && i + 1 < content.size() &&
                   content[i + 1] == '"' &&
                   (i == 0 || !is_ident_char(content[i - 1]))) {
          // Raw string: R"delim( ... )delim"
          std::size_t open = i + 2;
          std::string delim;
          while (open < content.size() && content[open] != '(')
            delim += content[open++];
          raw_delim = ")" + delim + "\"";
          i = open;  // skip past the '('
          state = State::kRawString;
        } else if (c == '"') {
          current += '"';
          state = State::kString;
        } else if (c == '\'') {
          current += '\'';
          state = State::kChar;
        } else {
          current += c;
        }
        break;
      case State::kLineComment:
        break;  // dropped until newline
      case State::kBlockComment:
        if (c == '*' && i + 1 < content.size() && content[i + 1] == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip the escaped character
        } else if (c == '"') {
          current += '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          current += '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

void Linter::scan_source(std::string_view file, std::string_view content) {
  ++files_scanned_;
  // The linter's own sources are the pattern tables; scanning them reports
  // the rules, not violations of them.
  if (ends_with(file, "lint/lint.hpp") || ends_with(file, "lint/lint.cpp"))
    return;

  // Raw lines (suppressions live in comments) ...
  std::vector<std::string> raw_lines;
  {
    std::string line;
    std::istringstream is{std::string(content)};
    while (std::getline(is, line)) raw_lines.push_back(line);
  }
  // ... and code-only lines (rules must not fire on prose or literals).
  const std::vector<std::string> code_lines = strip_to_code_lines(content);

  std::vector<Suppression> suppressions;
  for (std::size_t i = 0; i < raw_lines.size(); ++i)
    parse_suppressions(raw_lines[i], i + 1, suppressions);

  std::vector<LintFinding> local;
  const bool det_module = deterministic_module(file);
  const bool rng_impl = ends_with(file, "common/rng.hpp");
  const bool atomic_impl = ends_with(file, "common/atomic_file.cpp");
  const bool mode_impl = ends_with(file, "core/mode_controller.hpp") ||
                         ends_with(file, "core/mode_controller.cpp");

  const auto add = [&](LintCode code, std::size_t line_no, std::string msg) {
    LintFinding f;
    f.code = code;
    f.file = std::string(file);
    f.line = line_no;
    f.message = std::move(msg);
    f.excerpt = line_no <= raw_lines.size()
                    ? trimmed(raw_lines[line_no - 1])
                    : "";
    local.push_back(std::move(f));
  };

  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    const std::string_view line = code_lines[i];
    const std::size_t no = i + 1;
    if (line.empty()) continue;

    // --- LNT001: nondeterministic / implementation-defined randomness. ----
    if (!rng_impl) {
      for (const char* fn :
           {"rand", "srand", "drand48", "lrand48", "mrand48", "random",
            "arc4random", "rand_r"}) {
        if (has_token_call(line, fn))
          add(LintCode::kNondeterministicRandom, no,
              std::string(fn) + "() is seeded from process state; use "
                                "ioguard::Rng (common/rng.hpp)");
      }
      for (const char* pat :
           {"std::random_device", "std::mt19937", "std::minstd_rand",
            "std::default_random_engine", "std::uniform_int_distribution",
            "std::uniform_real_distribution", "std::normal_distribution",
            "std::bernoulli_distribution"}) {
        if (contains(line, pat))
          add(LintCode::kNondeterministicRandom, no,
              std::string(pat) + " is nondeterministic or implementation-"
                                 "defined across standard libraries; use "
                                 "ioguard::Rng (common/rng.hpp)");
      }
    }

    // --- LNT002: wall-clock time sources. ---------------------------------
    for (const char* pat :
         {"std::chrono::system_clock", "system_clock::now", "gettimeofday",
          "clock_gettime", "CLOCK_REALTIME", "std::time(", "time(nullptr",
          "time(NULL", "time(0)"}) {
      if (contains(line, pat)) {
        add(LintCode::kWallClock, no,
            std::string(pat) +
                " reads the wall clock; results must depend only on "
                "(config, seed), and run timing uses steady_clock");
        break;  // one wall-clock finding per line is enough
      }
    }

    // --- Module-scoped rules. ---------------------------------------------
    if (det_module) {
      // LNT003: hash containers whose iteration order is the bucket layout.
      for (const char* pat : {"unordered_map<", "unordered_set<",
                              "unordered_multimap<", "unordered_multiset<"}) {
        if (contains(line, pat))
          add(LintCode::kUnorderedContainer, no,
              std::string(pat) +
                  "...> in a result-affecting module; iteration order is "
                  "the hash bucket layout -- use std::map / a dense array, "
                  "or suppress with the reason it is never iterated");
      }
      // LNT004: ordering by pointer value.
      if (has_pointer_comparator(line))
        add(LintCode::kPointerOrderDependence, no,
            "std::less/std::greater over a pointer type orders by address; "
            "order by a stable id instead");
      for (const char* pat : {"reinterpret_cast<std::uintptr_t>",
                              "reinterpret_cast<uintptr_t>",
                              "reinterpret_cast<std::intptr_t>"}) {
        if (contains(line, pat))
          add(LintCode::kPointerOrderDependence, no,
              "casting a pointer to an integer bakes the allocator's "
              "addresses into values; derive ids from stable state");
      }
      for (const char* pat : {".get() <", ".get() >", ".get()<", ".get()>"}) {
        if (contains(line, pat)) {
          add(LintCode::kPointerOrderDependence, no,
              "comparing smart-pointer addresses orders by allocation; "
              "order by a stable id instead");
          break;
        }
      }
      // LNT009: dense full-horizon stepping. A `for (Slot ...)` / `for
      // (Cycle ...)` loop bounded by a horizon re-introduces O(horizon)
      // work that the event-driven advance exists to skip; new code should
      // iterate releases or wake hints. Token-level on purpose: a loop
      // whose bound is spelled `horizon` (any identifier containing it,
      // e.g. `horizon_slots`) is exactly the pattern being retired.
      for (const char* head : {"for (Slot ", "for (Cycle "}) {
        if (contains(line, head) && contains(line, "horizon"))
          add(LintCode::kFullHorizonLoop, no,
              std::string(head) +
                  "...; ... < horizon ...) steps every slot densely; the "
                  "event-driven core (DESIGN.md §15) jumps quiescent "
                  "stretches -- iterate releases/wake hints, or suppress "
                  "naming why dense stepping is required");
      }
      // LNT010: criticality-mode state touched outside ModeController. The
      // raw members (`vm_modes_`, `block_hi_`) live only in
      // core/mode_controller.*; any other result-affecting file naming them
      // is reaching around the accessor surface that keeps LO->HI switches
      // atomic (a shadow copy of the mode bypasses the hysteresis and the
      // transition ledger the MCS verifier audits).
      if (!mode_impl) {
        for (const char* pat : {"vm_modes_", "block_hi_"}) {
          if (has_identifier(line, pat))
            add(LintCode::kRawModeStateAccess, no,
                std::string(pat) +
                    " is ModeController's private mode state; read modes "
                    "through vm_mode()/hi()/block_hi() so switches stay "
                    "atomic and recorded");
        }
      }
      // LNT008: process environment reaching result bytes.
      if (has_token_call(line, "getenv") || contains(line, "std::getenv") ||
          has_token_call(line, "env_int") ||
          has_token_call(line, "env_double") ||
          has_token_call(line, "env_string"))
        add(LintCode::kEnvDependentResult, no,
            "environment read in a result-affecting module; configuration "
            "must flow through TrialConfig/flags so runs are reproducible");
    }

    // --- LNT005: artifact writes that bypass the atomic-write layer. ------
    if (!atomic_impl) {
      for (const char* pat : {"std::ofstream", "std::fstream"}) {
        if (contains(line, pat))
          add(LintCode::kRawArtifactWrite, no,
              std::string(pat) +
                  " writes in place; a crash mid-write tears the file. "
                  "Route artifacts through write_file_atomic()/"
                  "AtomicFileWriter, or suppress with the reason "
                  "(e.g. append-only journal)");
      }
    }
  }

  // --- Suppression application + LNT006/LNT007 hygiene. -------------------
  for (Suppression& sup : suppressions) {
    if (sup.well_formed) continue;
    add(LintCode::kMalformedSuppression, sup.line, sup.problem);
  }
  for (LintFinding& f : local) {
    if (f.code == LintCode::kMalformedSuppression ||
        f.code == LintCode::kStaleSuppression)
      continue;  // hygiene findings are themselves unsuppressible
    for (Suppression& sup : suppressions) {
      if (!sup.well_formed || sup.code != f.code) continue;
      if (sup.line == f.line || sup.line + 1 == f.line) {
        sup.used = true;
        f.suppressed = true;
        f.suppress_reason = sup.reason;
      }
    }
  }
  for (const Suppression& sup : suppressions) {
    if (!sup.well_formed || sup.used) continue;
    add(LintCode::kStaleSuppression, sup.line,
        std::string("suppression of ") + code_string(sup.code) +
            " matches no finding on its line or the next; delete it");
  }

  std::stable_sort(local.begin(), local.end(),
                   [](const LintFinding& a, const LintFinding& b) {
                     return a.line < b.line;
                   });
  for (LintFinding& f : local) findings_.push_back(std::move(f));
}

bool Linter::scan_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  scan_source(path, buffer.str());
  return true;
}

std::size_t Linter::active_count() const {
  std::size_t n = 0;
  for (const auto& f : findings_)
    if (!f.suppressed) ++n;
  return n;
}

void Linter::render_text(std::ostream& os) const {
  for (const auto& f : findings_) {
    os << f.file << ':' << f.line << ": " << code_string(f.code);
    if (f.suppressed) os << " [suppressed: " << f.suppress_reason << ']';
    os << ": " << f.message << '\n';
    if (!f.excerpt.empty()) os << "    | " << f.excerpt << '\n';
  }
  os << files_scanned() << " file(s) scanned, " << active_count()
     << " active finding(s), " << suppressed_count() << " suppressed\n";
}

void Linter::render_json(std::ostream& os) const {
  os << "{\n";
  os << "  \"tool\": \"ioguard_lint\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"files_scanned\": " << files_scanned() << ",\n";
  os << "  \"active\": " << active_count() << ",\n";
  os << "  \"suppressed\": " << suppressed_count() << ",\n";
  os << "  \"findings\": [";
  bool first = true;
  for (const auto& f : findings_) {
    if (!first) os << ',';
    first = false;
    os << "\n    {\"code\": \"" << code_string(f.code) << "\", \"file\": \"";
    json_escape(os, f.file);
    os << "\", \"line\": " << f.line << ", \"suppressed\": "
       << (f.suppressed ? "true" : "false") << ", \"message\": \"";
    json_escape(os, f.message);
    os << "\", \"reason\": \"";
    json_escape(os, f.suppress_reason);
    os << "\", \"excerpt\": \"";
    json_escape(os, f.excerpt);
    os << "\"}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace ioguard::lint
