// Deadline-miss flight recorder (DESIGN.md §14).
//
// Hangs off the EventTrace observer hook: on every trigger event
// (kDeadlineMiss, kWatchdogAbort, kShed -- a missed delivery or a fault
// recovery) it snapshots the last-N ring entries plus the scheduler state
// into a bounded per-trial dump, written atomically through
// common/atomic_file. The dump is the "what led up to this" evidence a
// post-mortem needs when the miss itself is long gone from the ring.
//
// Dump format ("ioguard-flight v1", line-oriented text):
//   ioguard-flight v1
//   trigger=<event kind>
//   slot=<trigger slot>
//   seq=<1-based dump number within the trial>
//   stem=<per-trial filename stem>
//   events=<N>
//   slot,kind,device,vm,task,job,aux     <- same columns as EventTrace CSV
//   <N event rows, oldest first>
//   state,...                            <- scheduler state lines (optional)
//   end                                  <- absence means a truncated file
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/event_trace.hpp"

namespace ioguard::telemetry {

struct FlightRecorderConfig {
  std::string dir;            ///< output directory (must already exist)
  std::string stem = "trial0";///< per-trial filename stem (carries the trial
                              ///< index so parallel trials never collide)
  std::size_t last_n = 64;    ///< ring entries snapshotted per dump
  std::size_t max_dumps = 4;  ///< hard per-trial bound on dumps written
};

/// True for the event kinds that trigger a dump.
[[nodiscard]] bool flight_trigger(core::TraceEventKind kind);

class FlightRecorder : public core::TraceObserver {
 public:
  explicit FlightRecorder(FlightRecorderConfig config);

  /// Optional scheduler-state snapshotter, invoked at dump time to append
  /// `state,...` lines (e.g. Hypervisor::dump_scheduler_state).
  using StateWriter = std::function<void(std::ostream&)>;
  void set_state_writer(StateWriter writer) { state_writer_ = std::move(writer); }

  void on_record(const core::EventTrace& trace,
                 const core::TraceEvent& event) override;

  [[nodiscard]] std::uint64_t dumps_written() const { return dumps_written_; }
  /// Trigger events seen, including those beyond the max_dumps bound.
  [[nodiscard]] std::uint64_t triggers_seen() const { return triggers_seen_; }
  /// First write failure, if any (recording never throws mid-trial).
  [[nodiscard]] const Status& status() const { return status_; }

 private:
  FlightRecorderConfig config_;
  StateWriter state_writer_;
  std::uint64_t dumps_written_ = 0;
  std::uint64_t triggers_seen_ = 0;
  Status status_;
};

/// A parsed flight dump (trace_inspector --flight).
struct FlightDump {
  std::string trigger;
  Slot slot = 0;
  std::uint64_t seq = 0;
  std::string stem;
  std::vector<core::TraceEvent> events;
  std::vector<std::string> state_lines;  ///< raw "state,..." lines
};

/// Parses a v1 flight dump; kInvalidArgument (exit 2) with a line-level
/// diagnostic on a truncated or malformed file, kNotFound when unreadable.
[[nodiscard]] StatusOr<FlightDump> read_flight_dump(const std::string& path);

/// Parses an EventTrace::dump_csv file back into events (same columns the
/// flight dump uses); kInvalidArgument (exit 2) with a path:line diagnostic
/// on a bad header or malformed row, kNotFound when unreadable.
[[nodiscard]] StatusOr<std::vector<core::TraceEvent>> read_trace_csv(
    const std::string& path);

}  // namespace ioguard::telemetry
