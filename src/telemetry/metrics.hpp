// Metrics registry of the telemetry subsystem: named counters, gauges and
// fixed-bucket latency histograms, labelled by VM/device/channel.
//
// Concurrency model: single-writer. The hypervisor pipeline is a
// deterministic slot-level simulation driven from one thread, so instruments
// are plain (lock-free) fields; per-thread registries from parallel trials
// are combined with merge(), mirroring how per-core hardware counters are
// read out and aggregated. That contract is machine-checked two ways: a
// debug-build ThreadChecker (common/sync.hpp) binds each registry to its
// writing thread and rebind_writer() marks the barrier handoff (the
// ParallelRunner merge), and the fan-out sites themselves build under
// -Wthread-safety (DESIGN.md §13).
//
// Naming follows Prometheus conventions: snake_case metric names
// ([a-zA-Z_][a-zA-Z0-9_]*), `_total` suffix on counters, unit suffix on
// histograms (e.g. ioguard_stage_latency_slots). Instrument references
// returned by the registry stay valid for the registry's lifetime.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.hpp"

namespace ioguard::telemetry {

/// One key="value" pair attached to an instrument.
struct Label {
  std::string key;
  std::string value;
  friend bool operator==(const Label&, const Label&) = default;
};
using Labels = std::vector<Label>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (backlog depth, utilization fraction...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket latency histogram. Bucket i counts observations
/// x <= bound(i); a final implicit +Inf bucket catches the tail. Bounds are
/// fixed at creation (hardware counters have fixed comparators), and two
/// histograms merge only when their bounds match.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::vector<double> upper_bounds);

  void observe(double x);
  void merge(const LatencyHistogram& other);

  /// Replaces the histogram's state with a checkpointed snapshot: per-bucket
  /// counts (bounds().size() + 1 entries, checked) and the exact observation
  /// sum. The total count is recomputed from the buckets, so a restored
  /// histogram is bit-identical to the one that was encoded.
  void load(const std::vector<std::uint64_t>& counts, double sum);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  /// Finite buckets only; the +Inf bucket is counts().back().
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Size bounds().size() + 1; last entry is the +Inf bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  /// Cumulative count of observations <= bounds()[i] (Prometheus `le`).
  [[nodiscard]] std::uint64_t cumulative(std::size_t i) const;

  /// Estimated quantile (p in [0,100]) by linear interpolation inside the
  /// owning bucket; NaN when empty. The +Inf bucket reports the largest
  /// finite bound (the histogram cannot resolve beyond its range).
  [[nodiscard]] double percentile(double p) const;

 private:
  std::vector<double> bounds_;          // ascending, finite
  std::vector<std::uint64_t> counts_;   // bounds_.size() + 1 (last = +Inf)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Default bucket ladder for slot-granularity latencies: powers of two from
/// 1 slot (10 us) to 16384 slots (~164 ms).
[[nodiscard]] std::vector<double> default_slot_buckets();

/// Default bucket ladder for sub-slot cycle costs (translator): 4..512.
[[nodiscard]] std::vector<double> default_cycle_buckets();

/// Owns every instrument of a run. Lookup is (name, labels) -> instrument;
/// a name is bound to exactly one instrument type (checked).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  LatencyHistogram& histogram(std::string_view name, const Labels& labels = {},
                              const std::vector<double>& upper_bounds = {});

  /// Folds `other` in: counters and histograms add; gauges take the other
  /// registry's value (last writer wins, matching a counter read-out order).
  void merge(const MetricsRegistry& other);

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  /// One labelled instrument, exposed for exporters (ordered by name, then
  /// by serialized labels -- deterministic output).
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const LatencyHistogram* histogram = nullptr;
  };
  [[nodiscard]] std::vector<Entry> entries() const;

  [[nodiscard]] std::size_t size() const;

  /// Transfers single-writer ownership to the calling thread at an external
  /// synchronization point (the post-fan-out barrier in ParallelRunner).
  /// Debug builds CHECK-fail on a mutation from any other thread without
  /// this; release builds compile it away.
  void rebind_writer() const { writer_checker_.rebind(); }

 private:
  struct Instrument;
  struct Family;

  Family& family(std::string_view name, Kind kind);
  Instrument& instrument(std::string_view name, Kind kind,
                         const Labels& labels);

  // map keeps families sorted by name for deterministic exposition.
  std::map<std::string, Family, std::less<>> families_;
  ThreadChecker writer_checker_;  ///< single-writer contract (debug builds)
};

/// Serializes labels canonically: {a="x",b="y"} (keys in insertion order).
[[nodiscard]] std::string format_labels(const Labels& labels);

struct MetricsRegistry::Instrument {
  Labels labels;
  // Exactly one engaged, matching the family kind. unique_ptr keeps
  // references stable across map rehash/moves.
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<LatencyHistogram> histogram;
};

struct MetricsRegistry::Family {
  Kind kind = Kind::kCounter;
  std::map<std::string, Instrument> by_labels;  // key = format_labels()
};

}  // namespace ioguard::telemetry
