#include "telemetry/perfetto.hpp"

#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <set>
#include <string>

#include "telemetry/spans.hpp"

namespace ioguard::telemetry {

namespace {

constexpr int kVmPid = 1;
constexpr int kDevicePid = 2;

/// Escapes a string for a JSON literal (all emitted names are ASCII).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  /// Starts one event object; caller appends fields via kv/raw, then end().
  void begin() {
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << "  {";
    field_first_ = true;
  }
  void kv(const char* key, const std::string& value) {
    sep();
    os_ << '"' << key << "\":\"" << json_escape(value) << '"';
  }
  void kv(const char* key, double value) {
    sep();
    os_ << '"' << key << "\":" << value;
  }
  void kv(const char* key, std::uint64_t value) {
    sep();
    os_ << '"' << key << "\":" << value;
  }
  void kv(const char* key, int value) {
    sep();
    os_ << '"' << key << "\":" << value;
  }
  void raw(const char* key, const std::string& json) {
    sep();
    os_ << '"' << key << "\":" << json;
  }
  void end() { os_ << '}'; }

 private:
  void sep() {
    if (!field_first_) os_ << ',';
    field_first_ = false;
  }
  std::ostream& os_;
  bool first_ = true;
  bool field_first_ = true;
};

void write_thread_name(EventWriter& w, int pid, std::uint64_t tid,
                       const std::string& name) {
  w.begin();
  w.kv("ph", std::string("M"));
  w.kv("name", std::string("thread_name"));
  w.kv("pid", pid);
  w.kv("tid", tid);
  w.raw("args", "{\"name\":\"" + json_escape(name) + "\"}");
  w.end();
}

void write_process_name(EventWriter& w, int pid, const std::string& name) {
  w.begin();
  w.kv("ph", std::string("M"));
  w.kv("name", std::string("process_name"));
  w.kv("pid", pid);
  w.kv("tid", std::uint64_t{0});
  w.raw("args", "{\"name\":\"" + json_escape(name) + "\"}");
  w.end();
}

}  // namespace

void write_perfetto_json(std::ostream& os, const core::EventTrace& trace,
                         const PerfettoOptions& options,
                         const std::vector<ProfileCounterTrack>& profile) {
  const auto saved_precision = os.precision(15);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  EventWriter w(os);

  // ---- Track metadata: one thread per VM, one per device. ----------------
  std::set<std::uint32_t> vms, devices;
  const std::size_t n = trace.size();
  for (std::size_t i = 0; i < n; ++i) {
    const core::TraceEvent& e = trace.ordered(i);
    if (e.vm.valid()) vms.insert(e.vm.value);
    if (e.device.valid()) devices.insert(e.device.value);
  }
  write_process_name(w, kVmPid, options.process_vms);
  write_process_name(w, kDevicePid, options.process_devices);
  for (std::uint32_t vm : vms)
    write_thread_name(w, kVmPid, vm, "VM " + std::to_string(vm));
  for (std::uint32_t dev : devices)
    write_thread_name(w, kDevicePid, dev, "device " + std::to_string(dev));

  const double us = options.us_per_slot;

  // ---- VM tracks: one complete ("X") event per finished job span. --------
  for (const JobSpan& s : collect_spans(trace)) {
    if (!s.vm.valid()) continue;
    if (s.dropped || s.submit == kNeverSlot) continue;
    if (!s.finished()) continue;
    w.begin();
    w.kv("ph", std::string("X"));
    w.kv("name", "job " + std::to_string(s.job.value) + " (task " +
                     std::to_string(s.task.value) + ")");
    w.kv("cat", std::string(s.deadline_missed ? "job,missed" : "job"));
    w.kv("pid", kVmPid);
    w.kv("tid", std::uint64_t{s.vm.value});
    w.kv("ts", static_cast<double>(s.submit) * us);
    w.kv("dur", static_cast<double>(s.complete + 1 - s.submit) * us);
    std::string args = "{\"device\":" + std::to_string(s.device.value);
    if (s.expose != kNeverSlot)
      args += ",\"shadow_expose_slot\":" + std::to_string(s.expose);
    if (s.first_grant != kNeverSlot)
      args += ",\"first_grant_slot\":" + std::to_string(s.first_grant);
    if (s.deadline_missed)
      args += ",\"lateness_slots\":" + std::to_string(s.lateness_slots);
    args += '}';
    w.raw("args", args);
    w.end();
  }

  // ---- Device tracks: slot-aligned channel activity + instants. ----------
  for (std::size_t i = 0; i < n; ++i) {
    const core::TraceEvent& e = trace.ordered(i);
    const auto ts = static_cast<double>(e.slot) * us;
    switch (e.kind) {
      case core::TraceEventKind::kPchannelSlot:
      case core::TraceEventKind::kRchannelGrant: {
        const bool pch = e.kind == core::TraceEventKind::kPchannelSlot;
        w.begin();
        w.kv("ph", std::string("X"));
        w.kv("name", pch ? std::string("P-channel")
                         : "R-grant vm" + std::to_string(e.vm.value));
        w.kv("cat", std::string(pch ? "pchannel" : "rchannel"));
        w.kv("pid", kDevicePid);
        w.kv("tid", std::uint64_t{e.device.value});
        w.kv("ts", ts);
        w.kv("dur", us);
        w.end();
        break;
      }
      case core::TraceEventKind::kDrop:
      case core::TraceEventKind::kDeadlineMiss:
      case core::TraceEventKind::kDemote:
      case core::TraceEventKind::kFaultInject:
      case core::TraceEventKind::kRetry:
      case core::TraceEventKind::kWatchdogAbort:
      case core::TraceEventKind::kShed: {
        w.begin();
        w.kv("ph", std::string("i"));
        w.kv("s", std::string("t"));
        w.kv("name", std::string(core::to_string(e.kind)) + " task " +
                         std::to_string(e.task.value));
        w.kv("cat", std::string("alert"));
        w.kv("pid", kDevicePid);
        w.kv("tid", std::uint64_t{e.device.value});
        w.kv("ts", ts);
        w.end();
        break;
      }
      default:
        break;
    }
  }

  // ---- Cycle-attribution counters (one "C" sample per component). --------
  for (const ProfileCounterTrack& c : profile) {
    w.begin();
    w.kv("ph", std::string("C"));
    w.kv("name", "profile " + c.name);
    w.kv("pid", kDevicePid);
    w.kv("tid", std::uint64_t{0});
    w.kv("ts", 0.0);
    w.raw("args", "{\"busy\":" + std::to_string(c.busy) +
                      ",\"stall\":" + std::to_string(c.stall) +
                      ",\"quiescent\":" + std::to_string(c.quiescent) + "}");
    w.end();
  }

  os << "\n]}\n";
  os.precision(saved_precision);
}

}  // namespace ioguard::telemetry
