#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace ioguard::telemetry {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name.front())) return false;
  return std::all_of(name.begin(), name.end(), [&](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

}  // namespace

std::string format_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].key;
    out += "=\"";
    out += labels[i].value;
    out += '"';
  }
  out += '}';
  return out;
}

// ------------------------------------------------------- LatencyHistogram

LatencyHistogram::LatencyHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  IOGUARD_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket");
  IOGUARD_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "histogram bounds must ascend");
  IOGUARD_CHECK_MSG(std::isfinite(bounds_.back()),
                    "histogram bounds must be finite (+Inf is implicit)");
  counts_.assign(bounds_.size() + 1, 0);
}

void LatencyHistogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());
  ++counts_[i];  // i == bounds_.size() -> +Inf bucket
  ++count_;
  sum_ += x;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  IOGUARD_CHECK_MSG(bounds_ == other.bounds_,
                    "merging histograms with different bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::load(const std::vector<std::uint64_t>& counts,
                            double sum) {
  IOGUARD_CHECK_MSG(counts.size() == bounds_.size() + 1,
                    "histogram snapshot bucket count mismatch");
  counts_ = counts;
  count_ = 0;
  for (const std::uint64_t c : counts_) count_ += c;
  sum_ = sum;
}

std::uint64_t LatencyHistogram::cumulative(std::size_t i) const {
  IOGUARD_CHECK(i < counts_.size());
  std::uint64_t acc = 0;
  for (std::size_t k = 0; k <= i; ++k) acc += counts_[k];
  return acc;
}

double LatencyHistogram::percentile(double p) const {
  IOGUARD_CHECK(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    if (static_cast<double>(acc) < rank) continue;
    if (counts_[i] == 0) continue;
    if (i == bounds_.size()) return bounds_.back();  // +Inf bucket: clamp
    const double hi = bounds_[i];
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const auto below = static_cast<double>(acc - counts_[i]);
    const double frac =
        (rank - below) / static_cast<double>(counts_[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds_.back();
}

std::vector<double> default_slot_buckets() {
  std::vector<double> b;
  for (double x = 1.0; x <= 16384.0; x *= 2.0) b.push_back(x);
  return b;
}

std::vector<double> default_cycle_buckets() {
  std::vector<double> b;
  for (double x = 4.0; x <= 512.0; x *= 2.0) b.push_back(x);
  return b;
}

// -------------------------------------------------------- MetricsRegistry

MetricsRegistry::Family& MetricsRegistry::family(std::string_view name,
                                                 Kind kind) {
  IOGUARD_DCHECK_MSG(writer_checker_.check(),
                     "MetricsRegistry is single-writer: mutate from one "
                     "thread, or rebind_writer() at a synchronization point");
  IOGUARD_CHECK_MSG(valid_metric_name(name), "invalid metric name");
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{}).first;
    it->second.kind = kind;
  }
  IOGUARD_CHECK_MSG(it->second.kind == kind,
                    "metric name reused with a different instrument type");
  return it->second;
}

MetricsRegistry::Instrument& MetricsRegistry::instrument(
    std::string_view name, Kind kind, const Labels& labels) {
  Family& fam = family(name, kind);
  const std::string key = format_labels(labels);
  auto it = fam.by_labels.find(key);
  if (it == fam.by_labels.end()) {
    Instrument inst;
    inst.labels = labels;
    it = fam.by_labels.emplace(key, std::move(inst)).first;
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  const Labels& labels) {
  Instrument& inst = instrument(name, Kind::kCounter, labels);
  if (!inst.counter) inst.counter = std::make_unique<Counter>();
  return *inst.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  Instrument& inst = instrument(name, Kind::kGauge, labels);
  if (!inst.gauge) inst.gauge = std::make_unique<Gauge>();
  return *inst.gauge;
}

LatencyHistogram& MetricsRegistry::histogram(
    std::string_view name, const Labels& labels,
    const std::vector<double>& upper_bounds) {
  Instrument& inst = instrument(name, Kind::kHistogram, labels);
  if (!inst.histogram)
    inst.histogram = std::make_unique<LatencyHistogram>(
        upper_bounds.empty() ? default_slot_buckets() : upper_bounds);
  return *inst.histogram;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, fam] : other.families_) {
    for (const auto& [key, inst] : fam.by_labels) {
      switch (fam.kind) {
        case Kind::kCounter:
          counter(name, inst.labels).inc(inst.counter->value());
          break;
        case Kind::kGauge:
          gauge(name, inst.labels).set(inst.gauge->value());
          break;
        case Kind::kHistogram:
          histogram(name, inst.labels, inst.histogram->bounds())
              .merge(*inst.histogram);
          break;
      }
    }
  }
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::entries() const {
  std::vector<Entry> out;
  for (const auto& [name, fam] : families_) {
    for (const auto& [key, inst] : fam.by_labels) {
      Entry e;
      e.name = name;
      e.labels = inst.labels;
      e.kind = fam.kind;
      e.counter = inst.counter.get();
      e.gauge = inst.gauge.get();
      e.histogram = inst.histogram.get();
      out.push_back(std::move(e));
    }
  }
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::size_t n = 0;
  for (const auto& [name, fam] : families_) n += fam.by_labels.size();
  return n;
}

}  // namespace ioguard::telemetry
