#include "telemetry/metrics_io.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace ioguard::telemetry {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x4D455452u;  // "METR"

[[nodiscard]] bool plausible_name(std::string_view name) {
  if (name.empty()) return false;
  const char c = name.front();
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

}  // namespace

void encode_metrics(const MetricsRegistry& reg, std::string& out) {
  ByteWriter w(&out);
  const auto entries = reg.entries();
  w.put_u32(kSnapshotMagic);
  w.put_u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.put_u8(static_cast<std::uint8_t>(e.kind));
    w.put_string(e.name);
    w.put_u32(static_cast<std::uint32_t>(e.labels.size()));
    for (const auto& label : e.labels) {
      w.put_string(label.key);
      w.put_string(label.value);
    }
    switch (e.kind) {
      case MetricsRegistry::Kind::kCounter:
        w.put_u64(e.counter->value());
        break;
      case MetricsRegistry::Kind::kGauge:
        w.put_f64(e.gauge->value());
        break;
      case MetricsRegistry::Kind::kHistogram: {
        const auto& bounds = e.histogram->bounds();
        w.put_u32(static_cast<std::uint32_t>(bounds.size()));
        for (const double b : bounds) w.put_f64(b);
        for (const std::uint64_t c : e.histogram->counts()) w.put_u64(c);
        w.put_f64(e.histogram->sum());
        break;
      }
    }
  }
}

Status decode_metrics(std::string_view in, MetricsRegistry& reg) {
  ByteReader r(in);
  const auto bad = [](const char* what) {
    return DataLossError(std::string("metrics snapshot: ") + what);
  };
  if (r.get_u32() != kSnapshotMagic) return bad("bad magic");
  const std::uint32_t n = r.get_u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const auto kind = static_cast<MetricsRegistry::Kind>(r.get_u8());
    const std::string name(r.get_string());
    if (!plausible_name(name)) return bad("bad instrument name");
    const std::uint32_t label_count = r.get_u32();
    if (label_count > 64) return bad("implausible label count");
    Labels labels;
    labels.reserve(label_count);
    for (std::uint32_t k = 0; k < label_count; ++k) {
      Label label;
      label.key = std::string(r.get_string());
      label.value = std::string(r.get_string());
      labels.push_back(std::move(label));
    }
    switch (kind) {
      case MetricsRegistry::Kind::kCounter:
        reg.counter(name, labels).inc(r.get_u64());
        break;
      case MetricsRegistry::Kind::kGauge:
        reg.gauge(name, labels).set(r.get_f64());
        break;
      case MetricsRegistry::Kind::kHistogram: {
        const std::uint32_t bound_count = r.get_u32();
        if (bound_count == 0 || bound_count > 4096)
          return bad("implausible histogram bucket count");
        std::vector<double> bounds(bound_count);
        for (double& b : bounds) b = r.get_f64();
        std::vector<std::uint64_t> counts(bound_count + 1);
        for (std::uint64_t& c : counts) c = r.get_u64();
        const double sum = r.get_f64();
        if (!r.ok()) return bad("truncated histogram");
        if (!std::is_sorted(bounds.begin(), bounds.end()) ||
            !std::isfinite(bounds.back()))
          return bad("invalid histogram bounds");
        LatencyHistogram snapshot(bounds);
        snapshot.load(counts, sum);
        reg.histogram(name, labels, bounds).merge(snapshot);
        break;
      }
      default:
        return bad("unknown instrument kind");
    }
  }
  if (!r.ok() || !r.at_end()) return bad("truncated snapshot");
  return OkStatus();
}

}  // namespace ioguard::telemetry
