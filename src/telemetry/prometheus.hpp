// Prometheus text exposition (version 0.0.4) for a MetricsRegistry:
// `# TYPE` headers, labelled samples, and the `_bucket`/`_sum`/`_count`
// triplet with cumulative `le` buckets for histograms. Output is
// deterministic (families sorted by name, series by label key) so CI can
// diff it.
#pragma once

#include <iosfwd>

#include "telemetry/metrics.hpp"

namespace ioguard::telemetry {

void write_prometheus(std::ostream& os, const MetricsRegistry& registry);

}  // namespace ioguard::telemetry
