// HDR-style log-linear integer histogram (DESIGN.md §14).
//
// Values in [0, max_value] are bucketed with a bounded relative error: each
// power-of-two "bucket" is split into 2^sub_bucket_bits linear sub-buckets,
// so the recorded-to-reported error is at most 1/2^sub_bucket_bits of the
// value. Values below 2^sub_bucket_bits are exact. This is the canonical
// HdrHistogram layout (Gil Tene) restricted to unit_magnitude 0 and integer
// counts, which keeps record() branch-free except for the saturation clamp
// and makes merge() an element-wise integer add -- deterministic regardless
// of merge order, which is what lets jitter/latency series stay
// byte-identical across --jobs=1 vs N.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ioguard::telemetry {

struct HdrConfig {
  /// Linear sub-bucket resolution: 2^bits sub-buckets per power-of-two
  /// bucket, i.e. relative quantization error <= 2^-bits.
  std::uint32_t sub_bucket_bits = 4;
  /// Largest distinguishable value; larger samples saturate into the top
  /// bucket (and are counted by saturated()).
  std::uint64_t max_value = std::uint64_t{1} << 24;

  friend bool operator==(const HdrConfig&, const HdrConfig&) = default;
};

class HdrHistogram {
 public:
  explicit HdrHistogram(HdrConfig config = {});

  /// Records one sample. Values above max_value count as saturated and are
  /// clamped into the top bucket (the clamp is what sum()/max() see, so two
  /// histograms fed the same samples agree bit-for-bit however merged).
  void record(std::uint64_t value);

  /// Element-wise add; both histograms must share the same HdrConfig.
  void merge(const HdrHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  /// 0 when empty (a jitter series with no samples has no deviation).
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return count_ ? max_ : 0; }
  [[nodiscard]] std::uint64_t saturated() const { return saturated_; }
  [[nodiscard]] const HdrConfig& config() const { return config_; }

  /// Highest value equivalent to the bucket holding the p-th percentile
  /// (p in [0, 100]); 0 when empty. p=100 returns the top non-empty
  /// bucket's upper bound.
  [[nodiscard]] std::uint64_t value_at_percentile(double p) const;

  // ---- bucket introspection (tests, Prometheus bridge) ------------------
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count_at(std::size_t index) const {
    return counts_[index];
  }
  [[nodiscard]] std::uint64_t bucket_lower(std::size_t index) const;
  [[nodiscard]] std::uint64_t bucket_upper(std::size_t index) const;
  [[nodiscard]] std::size_t index_of(std::uint64_t value) const;

  /// Upper bounds of every bucket as doubles, ascending -- the exact bound
  /// vector to hand MetricsRegistry::histogram() so a LatencyHistogram fed
  /// the same integer samples lands them in the same buckets.
  [[nodiscard]] std::vector<double> bounds() const;

 private:
  HdrConfig config_;
  std::uint32_t sub_bucket_count_ = 0;       // 2^bits
  std::uint32_t sub_bucket_half_count_ = 0;  // 2^(bits-1)
  std::uint64_t sub_bucket_mask_ = 0;        // sub_bucket_count - 1
  std::uint64_t max_trackable_ = 0;          // top bucket's upper bound
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t saturated_ = 0;
};

}  // namespace ioguard::telemetry
