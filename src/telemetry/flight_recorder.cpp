#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "common/atomic_file.hpp"

namespace ioguard::telemetry {

namespace {

constexpr std::string_view kMagic = "ioguard-flight v1";
constexpr std::string_view kColumns = "slot,kind,device,vm,task,job,aux";

void write_event_row(std::ostream& os, const core::TraceEvent& e) {
  os << e.slot << ',' << core::to_string(e.kind) << ',' << e.device.value
     << ',' << e.vm.value << ',' << e.task.value << ',' << e.job.value << ','
     << e.aux << '\n';
}

/// Strict decimal parse of a full field; false on empty/overflow/garbage.
bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

bool parse_u32(std::string_view text, std::uint32_t& out) {
  std::uint64_t wide = 0;
  if (!parse_u64(text, wide) || wide > 0xffffffffu) return false;
  out = static_cast<std::uint32_t>(wide);
  return true;
}

Status malformed(const std::string& path, std::size_t line_no,
                 const std::string& what) {
  return InvalidArgumentError(path + ":" + std::to_string(line_no) +
                              ": malformed flight dump: " + what);
}

/// Splits `line` at commas into exactly `n` fields; false otherwise.
bool split_fields(std::string_view line, std::size_t n,
                  std::vector<std::string_view>& out) {
  out.clear();
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return out.size() == n;
}

/// Parses one event row (the shared flight-dump / trace-CSV column set).
bool parse_event_row(std::string_view row,
                     std::vector<std::string_view>& fields,
                     core::TraceEvent& e) {
  if (!split_fields(row, 7, fields)) return false;
  std::uint32_t device = 0;
  std::uint32_t vm = 0;
  std::uint32_t task = 0;
  std::uint32_t job = 0;
  if (!parse_u64(fields[0], e.slot) ||
      !core::trace_event_kind_from_string(fields[1], e.kind) ||
      !parse_u32(fields[2], device) || !parse_u32(fields[3], vm) ||
      !parse_u32(fields[4], task) || !parse_u32(fields[5], job) ||
      !parse_u32(fields[6], e.aux))
    return false;
  e.device = DeviceId{device};
  e.vm = VmId{vm};
  e.task = TaskId{task};
  e.job = JobId{job};
  return true;
}

}  // namespace

bool flight_trigger(core::TraceEventKind kind) {
  return kind == core::TraceEventKind::kDeadlineMiss ||
         kind == core::TraceEventKind::kWatchdogAbort ||
         kind == core::TraceEventKind::kShed;
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)) {}

void FlightRecorder::on_record(const core::EventTrace& trace,
                               const core::TraceEvent& event) {
  if (!flight_trigger(event.kind)) return;
  ++triggers_seen_;
  if (dumps_written_ >= config_.max_dumps) return;

  const std::size_t take = std::min(config_.last_n, trace.size());
  std::ostringstream out;
  out << kMagic << '\n';
  out << "trigger=" << core::to_string(event.kind) << '\n';
  out << "slot=" << event.slot << '\n';
  out << "seq=" << (dumps_written_ + 1) << '\n';
  out << "stem=" << config_.stem << '\n';
  out << "events=" << take << '\n';
  out << kColumns << '\n';
  for (std::size_t i = trace.size() - take; i < trace.size(); ++i)
    write_event_row(out, trace.ordered(i));
  if (state_writer_) state_writer_(out);
  out << "end\n";

  const std::filesystem::path path =
      std::filesystem::path(config_.dir) /
      (config_.stem + ".flight" + std::to_string(dumps_written_ + 1) +
       ".txt");
  const Status written = write_file_atomic(path, out.str());
  if (written.ok()) {
    ++dumps_written_;
  } else if (status_.ok()) {
    status_ = written;  // keep the first failure; later triggers still count
  }
}

StatusOr<FlightDump> read_flight_dump(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return NotFoundError("cannot open flight dump: " + path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  if (in.bad())
    return UnavailableError("read error on flight dump: " + path);

  std::size_t at = 0;
  auto next = [&]() -> const std::string* {
    return at < lines.size() ? &lines[at++] : nullptr;
  };
  auto header_value = [&](const char* key,
                          std::string& out) -> Status {
    const std::string* line = next();
    const std::string prefix = std::string(key) + "=";
    if (line == nullptr || line->rfind(prefix, 0) != 0)
      return malformed(path, at, std::string("expected ") + prefix + "...");
    out = line->substr(prefix.size());
    return OkStatus();
  };

  const std::string* magic = next();
  if (magic == nullptr || *magic != kMagic)
    return malformed(path, 1, "missing 'ioguard-flight v1' header");

  FlightDump dump;
  std::string slot_text;
  std::string seq_text;
  std::string events_text;
  IOGUARD_RETURN_IF_ERROR(header_value("trigger", dump.trigger));
  core::TraceEventKind trigger_kind{};
  if (!core::trace_event_kind_from_string(dump.trigger, trigger_kind))
    return malformed(path, at, "unknown trigger kind '" + dump.trigger + "'");
  IOGUARD_RETURN_IF_ERROR(header_value("slot", slot_text));
  if (!parse_u64(slot_text, dump.slot))
    return malformed(path, at, "bad slot '" + slot_text + "'");
  IOGUARD_RETURN_IF_ERROR(header_value("seq", seq_text));
  if (!parse_u64(seq_text, dump.seq))
    return malformed(path, at, "bad seq '" + seq_text + "'");
  IOGUARD_RETURN_IF_ERROR(header_value("stem", dump.stem));
  IOGUARD_RETURN_IF_ERROR(header_value("events", events_text));
  std::uint64_t n_events = 0;
  if (!parse_u64(events_text, n_events))
    return malformed(path, at, "bad events count '" + events_text + "'");

  const std::string* columns = next();
  if (columns == nullptr || *columns != kColumns)
    return malformed(path, at,
                     std::string("expected column header '") +
                         std::string(kColumns) + "'");

  std::vector<std::string_view> fields;
  dump.events.reserve(static_cast<std::size_t>(n_events));
  for (std::uint64_t i = 0; i < n_events; ++i) {
    const std::string* row = next();
    if (row == nullptr)
      return malformed(path, at,
                       "truncated: expected " + std::to_string(n_events) +
                           " event rows, got " + std::to_string(i));
    core::TraceEvent e;
    if (!parse_event_row(*row, fields, e))
      return malformed(path, at, "bad event row '" + *row + "'");
    dump.events.push_back(e);
  }

  // Zero or more state lines, then the mandatory end marker.
  while (true) {
    const std::string* line = next();
    if (line == nullptr)
      return malformed(path, at,
                       "truncated: missing 'end' marker (interrupted write?)");
    if (*line == "end") break;
    if (line->rfind("state,", 0) != 0)
      return malformed(path, at, "unexpected line '" + *line + "'");
    dump.state_lines.push_back(*line);
  }
  return dump;
}

StatusOr<std::vector<core::TraceEvent>> read_trace_csv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open trace CSV: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kColumns)
    return InvalidArgumentError(path + ":1: not a trace CSV (expected '" +
                                std::string(kColumns) + "' header)");
  std::vector<core::TraceEvent> events;
  std::vector<std::string_view> fields;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    core::TraceEvent e;
    if (!parse_event_row(line, fields, e))
      return malformed(path, line_no,
                       "bad event row '" + line + "' (truncated write?)");
    events.push_back(e);
  }
  if (in.bad()) return UnavailableError("read error on trace CSV: " + path);
  return events;
}

}  // namespace ioguard::telemetry
