#include "telemetry/prometheus.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <string>

namespace ioguard::telemetry {

namespace {

std::string fmt_value(double v) {
  if (std::isnan(v)) return "NaN";
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

/// Renders {a="x"} or, with an extra pair appended, {a="x",le="1"}.
std::string label_block(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& l : labels) {
    if (!first) out += ',';
    first = false;
    out += l.key + "=\"" + l.value + '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + '"';
  }
  out += '}';
  return out;
}

const char* type_name(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::kCounter: return "counter";
    case MetricsRegistry::Kind::kGauge: return "gauge";
    case MetricsRegistry::Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricsRegistry& registry) {
  std::string current_family;
  for (const auto& e : registry.entries()) {
    if (e.name != current_family) {
      current_family = e.name;
      os << "# TYPE " << e.name << ' ' << type_name(e.kind) << '\n';
    }
    switch (e.kind) {
      case MetricsRegistry::Kind::kCounter:
        os << e.name << label_block(e.labels) << ' ' << e.counter->value()
           << '\n';
        break;
      case MetricsRegistry::Kind::kGauge:
        os << e.name << label_block(e.labels) << ' '
           << fmt_value(e.gauge->value()) << '\n';
        break;
      case MetricsRegistry::Kind::kHistogram: {
        const LatencyHistogram& h = *e.histogram;
        for (std::size_t i = 0; i < h.bounds().size(); ++i)
          os << e.name << "_bucket"
             << label_block(e.labels, "le", fmt_value(h.bounds()[i])) << ' '
             << h.cumulative(i) << '\n';
        os << e.name << "_bucket" << label_block(e.labels, "le", "+Inf")
           << ' ' << h.count() << '\n';
        os << e.name << "_sum" << label_block(e.labels) << ' '
           << fmt_value(h.sum()) << '\n';
        os << e.name << "_count" << label_block(e.labels) << ' ' << h.count()
           << '\n';
        break;
      }
    }
  }
}

}  // namespace ioguard::telemetry
