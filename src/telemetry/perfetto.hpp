// Chrome trace_event / Perfetto JSON exporter for the hypervisor EventTrace.
//
// Produces the legacy "traceEvents" JSON array that ui.perfetto.dev and
// chrome://tracing load directly: one track ("thread") per VM carrying the
// reconstructed job spans, one track per device carrying the slot-aligned
// channel activity (P-channel slots, R-channel grants), and instant events
// for drops, deadline misses and demotions. Timestamps are microseconds
// (slot * us_per_slot), matching the platform's 10 us slot width.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/event_trace.hpp"

namespace ioguard::telemetry {

struct PerfettoOptions {
  double us_per_slot = 10.0;  ///< 1 slot = 1000 cycles = 10 us at 100 MHz
  std::string process_vms = "R-channel jobs";   ///< pid 1 display name
  std::string process_devices = "Devices";      ///< pid 2 display name
};

/// One component's cycle attribution riding along in the trace file as a
/// Perfetto counter ("C") sample (DESIGN.md §14). Callers convert from
/// whatever profile struct they hold; telemetry stays independent of sys.
struct ProfileCounterTrack {
  std::string name;
  std::uint64_t busy = 0;
  std::uint64_t stall = 0;
  std::uint64_t quiescent = 0;
};

void write_perfetto_json(std::ostream& os, const core::EventTrace& trace,
                         const PerfettoOptions& options = {},
                         const std::vector<ProfileCounterTrack>& profile = {});

}  // namespace ioguard::telemetry
