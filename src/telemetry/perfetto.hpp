// Chrome trace_event / Perfetto JSON exporter for the hypervisor EventTrace.
//
// Produces the legacy "traceEvents" JSON array that ui.perfetto.dev and
// chrome://tracing load directly: one track ("thread") per VM carrying the
// reconstructed job spans, one track per device carrying the slot-aligned
// channel activity (P-channel slots, R-channel grants), and instant events
// for drops, deadline misses and demotions. Timestamps are microseconds
// (slot * us_per_slot), matching the platform's 10 us slot width.
#pragma once

#include <iosfwd>
#include <string>

#include "core/event_trace.hpp"

namespace ioguard::telemetry {

struct PerfettoOptions {
  double us_per_slot = 10.0;  ///< 1 slot = 1000 cycles = 10 us at 100 MHz
  std::string process_vms = "R-channel jobs";   ///< pid 1 display name
  std::string process_devices = "Devices";      ///< pid 2 display name
};

void write_perfetto_json(std::ostream& os, const core::EventTrace& trace,
                         const PerfettoOptions& options = {});

}  // namespace ioguard::telemetry
