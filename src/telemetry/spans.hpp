// Job-lifecycle spans: folds the hypervisor's EventTrace into per-job spans
// (submit -> pool-enqueue -> shadow-expose -> grant/device-begin ->
// complete/drop/deadline-miss) and per-stage latency views -- the Fig.-6
// style software-overhead decomposition of the paper, measured instead of
// estimated.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/event_trace.hpp"
#include "telemetry/metrics.hpp"

namespace ioguard::telemetry {

/// The reconstructed lifecycle of one R-channel job. Timestamps are absolute
/// slots; kNeverSlot marks a phase the job never reached (still queued when
/// the run ended, or the event was overwritten in the ring).
struct JobSpan {
  JobId job;
  TaskId task;
  VmId vm;
  DeviceId device;
  Slot submit = kNeverSlot;        ///< accepted into its VM's I/O pool
  Slot expose = kNeverSlot;        ///< first latched into the shadow register
  Slot first_grant = kNeverSlot;   ///< first G-Sched grant for this job
  Slot device_begin = kNeverSlot;  ///< first device slot of its service
  Slot complete = kNeverSlot;      ///< event slot of completion (done at +1)
  bool dropped = false;
  bool deadline_missed = false;
  std::uint32_t lateness_slots = 0;  ///< kDeadlineMiss aux, 0 when on time

  [[nodiscard]] bool finished() const { return complete != kNeverSlot; }
};

/// Reconstructs spans from the trace, one per R-channel job seen (insertion
/// order of their first event). Jobs whose submit fell off a saturated ring
/// are reported with the phases that survived. P-channel slots carry no
/// lifecycle and are not spanned.
[[nodiscard]] std::vector<JobSpan> collect_spans(const core::EventTrace& trace);

/// Per-stage latency decomposition over the finished spans, in slots.
struct StageBreakdown {
  SampleSet pool_wait;    ///< submit -> shadow-expose (queued behind the pool)
  SampleSet shadow_wait;  ///< shadow-expose -> first grant (waiting for a slot)
  SampleSet service;      ///< first device slot -> completion, inclusive
  SampleSet total;        ///< submit -> completion
  std::size_t finished_jobs = 0;
  std::size_t unfinished_jobs = 0;
  std::size_t dropped_jobs = 0;
  std::size_t missed_jobs = 0;
};

[[nodiscard]] StageBreakdown fold_stages(const std::vector<JobSpan>& spans);

/// Renders the breakdown as a p50/p95/max table (the Fig.-6 view).
void print_stage_breakdown(std::ostream& os, StageBreakdown& breakdown,
                           double us_per_slot = 10.0);

/// Folds spans and raw event counts into `registry`:
///   ioguard_stage_latency_slots{stage=...,device=...}   (histogram)
///   ioguard_trace_events_total{kind=...}                (counter)
///   ioguard_translation_cycles{device=...}              (histogram)
///   ioguard_jobs_dropped_total / ioguard_deadline_misses_total{device=...}
void register_span_metrics(const core::EventTrace& trace,
                           MetricsRegistry& registry);

}  // namespace ioguard::telemetry
