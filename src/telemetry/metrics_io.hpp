// Binary snapshot codec for a MetricsRegistry, used by the checkpoint
// journal to persist each trial's private metrics delta. The encoding walks
// entries() (sorted by name, then serialized labels), stores counters and
// gauges verbatim and histograms as (bounds, bucket counts, exact sum), so
// decode(encode(reg)) merged into an aggregate is bit-identical to merging
// the live registry -- including the Prometheus text rendered from it.
#pragma once

#include <string>
#include <string_view>

#include "common/status.hpp"
#include "telemetry/metrics.hpp"

namespace ioguard::telemetry {

/// Appends a self-delimiting snapshot of `reg` to `out`.
void encode_metrics(const MetricsRegistry& reg, std::string& out);

/// Decodes a snapshot produced by encode_metrics into `reg` (instruments are
/// created on demand; decoding into a non-empty registry merges counter
/// increments and histogram buckets and overwrites gauges). Returns
/// DataLoss on a malformed or truncated snapshot.
[[nodiscard]] Status decode_metrics(std::string_view in, MetricsRegistry& reg);

}  // namespace ioguard::telemetry
