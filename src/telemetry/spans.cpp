#include "telemetry/spans.hpp"

#include <ostream>
#include <string>
#include <unordered_map>

#include "common/table.hpp"

namespace ioguard::telemetry {

namespace {

/// P-channel completions carry hypervisor-generated ids (high bit set, see
/// PChannel); they have no submit/grant lifecycle and are not spanned.
bool pchannel_job_id(JobId id) { return (id.value & 0x40000000u) != 0; }

}  // namespace

std::vector<JobSpan> collect_spans(const core::EventTrace& trace) {
  std::vector<JobSpan> spans;
  // Span order comes from the trace's own event order, so no hash order
  // can reach the artifact.
  // IOGUARD_LINT_ALLOW(LNT003: lookup-only scratch index, never iterated)
  std::unordered_map<std::uint32_t, std::size_t> index;  // JobId -> spans idx

  auto span_for = [&](const core::TraceEvent& e) -> JobSpan& {
    auto [it, fresh] = index.emplace(e.job.value, spans.size());
    if (fresh) {
      JobSpan s;
      s.job = e.job;
      s.task = e.task;
      s.vm = e.vm;
      s.device = e.device;
      spans.push_back(s);
    }
    return spans[it->second];
  };

  const std::size_t n = trace.size();
  for (std::size_t i = 0; i < n; ++i) {
    const core::TraceEvent& e = trace.ordered(i);
    if (!e.job.valid() || pchannel_job_id(e.job)) continue;
    switch (e.kind) {
      case core::TraceEventKind::kSubmit:
        span_for(e).submit = e.slot;
        break;
      case core::TraceEventKind::kDrop: {
        JobSpan& s = span_for(e);
        s.submit = s.submit == kNeverSlot ? e.slot : s.submit;
        s.dropped = true;
        break;
      }
      case core::TraceEventKind::kShadowExpose: {
        JobSpan& s = span_for(e);
        if (s.expose == kNeverSlot) s.expose = e.slot;
        break;
      }
      case core::TraceEventKind::kRchannelGrant: {
        JobSpan& s = span_for(e);
        if (s.first_grant == kNeverSlot) s.first_grant = e.slot;
        break;
      }
      case core::TraceEventKind::kDeviceBegin: {
        JobSpan& s = span_for(e);
        if (s.device_begin == kNeverSlot) s.device_begin = e.slot;
        break;
      }
      case core::TraceEventKind::kComplete:
        span_for(e).complete = e.slot;
        break;
      case core::TraceEventKind::kDeadlineMiss: {
        JobSpan& s = span_for(e);
        s.deadline_missed = true;
        s.lateness_slots = e.aux;
        break;
      }
      case core::TraceEventKind::kTranslate:
      case core::TraceEventKind::kPchannelSlot:
      case core::TraceEventKind::kDemote:
      case core::TraceEventKind::kFaultInject:
      case core::TraceEventKind::kRetry:
      case core::TraceEventKind::kWatchdogAbort:
      case core::TraceEventKind::kShed:
        break;  // no lifecycle phase
    }
  }
  return spans;
}

StageBreakdown fold_stages(const std::vector<JobSpan>& spans) {
  StageBreakdown out;
  for (const JobSpan& s : spans) {
    if (s.dropped) {
      ++out.dropped_jobs;
      continue;
    }
    if (!s.finished()) {
      ++out.unfinished_jobs;
      continue;
    }
    ++out.finished_jobs;
    if (s.deadline_missed) ++out.missed_jobs;
    if (s.submit == kNeverSlot) continue;  // head lost to ring overwrite
    if (s.expose != kNeverSlot && s.expose >= s.submit)
      out.pool_wait.add(static_cast<double>(s.expose - s.submit));
    if (s.expose != kNeverSlot && s.first_grant != kNeverSlot &&
        s.first_grant >= s.expose)
      out.shadow_wait.add(static_cast<double>(s.first_grant - s.expose));
    const Slot begin = s.device_begin != kNeverSlot ? s.device_begin
                                                    : s.first_grant;
    if (begin != kNeverSlot && s.complete >= begin)
      out.service.add(static_cast<double>(s.complete - begin + 1));
    out.total.add(static_cast<double>(s.complete - s.submit + 1));
  }
  return out;
}

void print_stage_breakdown(std::ostream& os, StageBreakdown& b,
                           double us_per_slot) {
  TextTable table({"stage", "jobs", "p50 (us)", "p95 (us)", "max (us)"});
  auto row = [&](const char* name, SampleSet& set) {
    if (set.empty()) {
      table.add(std::string(name), 0, "-", "-", "-");
      return;
    }
    table.add(std::string(name), set.count(),
              fmt_double(set.percentile(50.0) * us_per_slot, 1),
              fmt_double(set.percentile(95.0) * us_per_slot, 1),
              fmt_double(set.max() * us_per_slot, 1));
  };
  row("pool wait (submit->shadow)", b.pool_wait);
  row("sched wait (shadow->grant)", b.shadow_wait);
  row("service (device slots)", b.service);
  row("total (submit->complete)", b.total);
  table.render(os);
  os << b.finished_jobs << " finished, " << b.unfinished_jobs
     << " still in flight, " << b.dropped_jobs << " dropped, "
     << b.missed_jobs << " deadline misses\n";
}

void register_span_metrics(const core::EventTrace& trace,
                           MetricsRegistry& registry) {
  // Raw event-kind totals (includes events overwritten in the ring).
  // Fault/resilience and mode-transition kinds appear only when they
  // occurred, so the exported metric set of a run that never engaged those
  // features is byte-identical to pre-fault / pre-MCS builds.
  for (auto kind : core::all_trace_event_kinds()) {
    if (core::is_conditional_kind(kind) && trace.count(kind) == 0) continue;
    registry
        .counter("ioguard_trace_events_total",
                 {{"kind", core::to_string(kind)}})
        .inc(trace.count(kind));
  }

  // Per-device stage histograms from the reconstructed spans.
  const auto spans = collect_spans(trace);
  auto observe = [&](const char* stage, DeviceId dev, double slots) {
    registry
        .histogram("ioguard_stage_latency_slots",
                   {{"stage", stage}, {"device", std::to_string(dev.value)}})
        .observe(slots);
  };
  for (const JobSpan& s : spans) {
    const std::string dev = std::to_string(s.device.value);
    if (s.dropped) {
      registry.counter("ioguard_jobs_dropped_total", {{"device", dev}}).inc();
      continue;
    }
    if (s.deadline_missed)
      registry.counter("ioguard_deadline_misses_total", {{"device", dev}})
          .inc();
    if (!s.finished() || s.submit == kNeverSlot) continue;
    if (s.expose != kNeverSlot && s.expose >= s.submit)
      observe("pool_wait", s.device,
              static_cast<double>(s.expose - s.submit));
    if (s.expose != kNeverSlot && s.first_grant != kNeverSlot &&
        s.first_grant >= s.expose)
      observe("sched_wait", s.device,
              static_cast<double>(s.first_grant - s.expose));
    const Slot begin = s.device_begin != kNeverSlot ? s.device_begin
                                                    : s.first_grant;
    if (begin != kNeverSlot && s.complete >= begin)
      observe("service", s.device,
              static_cast<double>(s.complete - begin + 1));
    observe("total", s.device, static_cast<double>(s.complete - s.submit + 1));
  }

  // Translator sub-slot costs (aux payload of kTranslate events still in
  // the ring).
  const std::size_t n = trace.size();
  for (std::size_t i = 0; i < n; ++i) {
    const core::TraceEvent& e = trace.ordered(i);
    if (e.kind != core::TraceEventKind::kTranslate) continue;
    registry
        .histogram("ioguard_translation_cycles",
                   {{"device", std::to_string(e.device.value)}},
                   default_cycle_buckets())
        .observe(static_cast<double>(e.aux));
  }
}

}  // namespace ioguard::telemetry
